// End-to-end reproduction checks: on a 7-day corpus at reduced volume,
// the qualitative findings of the paper must hold. These are the
// "shape" assertions — who wins, in which direction the effects point —
// not absolute numbers (those are reported by the bench binaries).

#include <gtest/gtest.h>

#include "eval/daily_runner.h"
#include "eval/dataset.h"
#include "eval/load_experiment.h"
#include "eval/timeout_experiment.h"
#include "stats/descriptive.h"

namespace logmine::eval {
namespace {

class PaperShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 7;
    config.simulation.scale = 0.35;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());

    auto l3 = RunL3Daily(*dataset_, core::L3Config{});
    ASSERT_TRUE(l3.ok());
    l3_ = new DailyRunResult(std::move(l3).value());

    auto l2 = RunL2Daily(*dataset_, core::L2Config{}, &session_stats_);
    ASSERT_TRUE(l2.ok());
    l2_ = new DailyRunResult(std::move(l2).value());

    core::L1Config l1_config;
    l1_config.minlogs = 15;  // volume-scaled minlogs
    l1_config.test.sample_size = 100;
    auto l1 = RunL1Daily(*dataset_, l1_config);
    ASSERT_TRUE(l1.ok());
    l1_ = new DailyRunResult(std::move(l1).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete l1_;
    delete l2_;
    delete l3_;
  }

  static Dataset* dataset_;
  static DailyRunResult* l1_;
  static DailyRunResult* l2_;
  static DailyRunResult* l3_;
  static std::vector<core::SessionBuildStats> session_stats_;
};

Dataset* PaperShapeTest::dataset_ = nullptr;
DailyRunResult* PaperShapeTest::l1_ = nullptr;
DailyRunResult* PaperShapeTest::l2_ = nullptr;
DailyRunResult* PaperShapeTest::l3_ = nullptr;
std::vector<core::SessionBuildStats> PaperShapeTest::session_stats_;

double MedianTpRatio(const DailyRunResult& result) {
  return stats::Median(result.series.TpRatios());
}

TEST_F(PaperShapeTest, PrecisionOrderingL3OverL2OverL1) {
  // §6: "a performance that is proportional to the amount of semantic
  // content of log messages considered".
  const double p1 = MedianTpRatio(*l1_);
  const double p2 = MedianTpRatio(*l2_);
  const double p3 = MedianTpRatio(*l3_);
  EXPECT_GT(p3, p2);
  EXPECT_GT(p3, 0.85);           // paper: [0.93, 0.96]
  EXPECT_GT(p2, 0.5);            // paper: [0.71, 0.78]
  EXPECT_GT(p1, 0.4);            // paper: [0.63, 0.73]
  EXPECT_GT(p3, p1);
}

TEST_F(PaperShapeTest, L3RecallDominates) {
  // L3 detects most true dependencies; L1 detects few (paper: 141-152 of
  // 177 vs 30-46 of 178).
  double l3_recall = 0, l1_recall = 0, l2_recall = 0;
  for (int day = 0; day < 7; ++day) {
    l3_recall += l3_->series.days[static_cast<size_t>(day)].recall();
    l2_recall += l2_->series.days[static_cast<size_t>(day)].recall();
    l1_recall += l1_->series.days[static_cast<size_t>(day)].recall();
  }
  EXPECT_GT(l3_recall, l2_recall);
  EXPECT_GT(l2_recall, l1_recall);
}

TEST_F(PaperShapeTest, MedianTpRatioCisAtPaperLevel) {
  auto ci3 = l3_->TpRatioCi(0.98);
  ASSERT_TRUE(ci3.ok());
  EXPECT_NEAR(ci3.value().coverage, 0.984375, 1e-9);
  EXPECT_GT(ci3.value().lower, 0.8);
  auto ci2 = l2_->TpRatioCi(0.98);
  ASSERT_TRUE(ci2.ok());
  EXPECT_GT(ci2.value().lower, 0.45);
}

TEST_F(PaperShapeTest, WeekendDipInL2AndL3Detections) {
  // Days 4 and 5 (2005-12-10/11) are the weekend.
  auto weekday_mean = [](const DailyRunResult& r) {
    return (r.series.days[0].true_positives +
            r.series.days[1].true_positives +
            r.series.days[2].true_positives +
            r.series.days[3].true_positives +
            r.series.days[6].true_positives) /
           5.0;
  };
  auto weekend_mean = [](const DailyRunResult& r) {
    return (r.series.days[4].true_positives +
            r.series.days[5].true_positives) /
           2.0;
  };
  EXPECT_LT(weekend_mean(*l3_), weekday_mean(*l3_));
  EXPECT_LT(weekend_mean(*l2_), weekday_mean(*l2_));
}

TEST_F(PaperShapeTest, SessionCountsDipOnWeekend) {
  // Paper: ~4000 weekday vs ~1000 weekend sessions.
  const double weekday =
      static_cast<double>(session_stats_[0].num_sessions +
                          session_stats_[1].num_sessions) / 2.0;
  const double weekend =
      static_cast<double>(session_stats_[4].num_sessions +
                          session_stats_[5].num_sessions) / 2.0;
  EXPECT_LT(weekend, 0.6 * weekday);
}

TEST_F(PaperShapeTest, StopPatternsSuppressInvertedDependencies) {
  core::L3Config no_stop;
  no_stop.use_stop_patterns = false;
  auto without = RunL3Daily(*dataset_, no_stop);
  ASSERT_TRUE(without.ok());
  auto inverted_count = [&](const core::DependencyModel& model) {
    int count = 0;
    for (const core::NamePair& pair :
         model.Minus(dataset_->reference_services)) {
      auto owner = dataset_->entry_owner.find(pair.second);
      if (owner != dataset_->entry_owner.end() &&
          owner->second == pair.first) {
        ++count;
      }
    }
    return count;
  };
  const int with_patterns = inverted_count(l3_->UnionModel());
  const int without_patterns =
      inverted_count(without.value().UnionModel());
  // Paper: 2 with stop patterns vs 24 without.
  EXPECT_LE(with_patterns, 4);
  EXPECT_GE(without_patterns, 15);
  EXPECT_GT(without_patterns, with_patterns);
}

TEST_F(PaperShapeTest, L3UnionErrorBudgetNearPaper) {
  const core::ConfusionCounts union_counts =
      core::Evaluate(l3_->UnionModel(), dataset_->reference_services,
                     dataset_->universe_services);
  // Paper: 161 detected, 19 FP, 16 FN (of ~177). Tolerate scale effects.
  EXPECT_GT(union_counts.true_positives, 140);
  EXPECT_LT(union_counts.false_positives, 30);
  EXPECT_LT(union_counts.false_negatives, 35);
}

TEST_F(PaperShapeTest, TimeoutRaisesPrecisionLowersAbsoluteTps) {
  auto experiment = RunTimeoutExperiment(*dataset_, core::L2Config{},
                                         {300, 600, 800, 1000}, 0.98);
  ASSERT_TRUE(experiment.ok());
  for (const TimeoutRow& row : experiment.value().rows) {
    // Table 2's two one-sided conclusions.
    EXPECT_GT(row.tpr_diff_median, 0.0) << row.timeout;
    EXPECT_LT(row.tp_diff_median, 0.0) << row.timeout;
    // The Wilcoxon p for the ratio differences should reach the paper's
    // 0.0156 region when all 7 days agree in sign.
    EXPECT_LT(row.wilcoxon_p_tpr, 0.1) << row.timeout;
  }
}

TEST_F(PaperShapeTest, LoadHurtsL1MoreThanL2) {
  // Figure 9's qualitative claim at reduced scale: the hourly recall of
  // L1 declines with load while L2's does not decline (the exact CI
  // claims are checked at full volume by bench/fig9_load_influence).
  LoadExperimentConfig config;
  config.l1.minlogs = 12;
  config.l1.num_threads = 0;
  auto result = RunLoadExperiment(*dataset_, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().hours.size(), 168u);
  EXPECT_LT(result.value().fit_p1.slope, 0.0);
  EXPECT_LT(result.value().fit_p1.slope_ci_hi, 0.02);
  EXPECT_GT(result.value().fit_p2.slope, result.value().fit_p1.slope);
}

TEST_F(PaperShapeTest, L1ErrorRateOnUnrelatedPairsIsLow) {
  // §4.5: ~2% classification error on the 1253 unrelated pairs.
  for (const core::ConfusionCounts& day : l1_->series.days) {
    EXPECT_LT(day.false_positive_rate(), 0.05);
  }
}

}  // namespace
}  // namespace logmine::eval
