// Guard on the observability tax: a fully instrumented pipeline run may
// not cost more than 3% over the same run with observability disabled
// (plus a small absolute epsilon so the check stays meaningful near the
// timer noise floor). Uses best-of-N wall times on both sides, which is
// the standard way to compare means in the presence of scheduler noise.

#include <algorithm>
#include <chrono>
#include <limits>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/dataset.h"
#include "obs/obs.h"

namespace logmine::eval {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(ObsOverheadTest, InstrumentationCostsAtMostThreePercent) {
  DatasetConfig config;
  config.simulation.num_days = 1;
  config.simulation.scale = 0.2;
  auto built = BuildDataset(config);
  ASSERT_TRUE(built.ok()) << built.status();
  const Dataset& dataset = built.value();

  core::PipelineConfig pipeline_config;
  pipeline_config.l1.minlogs = 8;
  pipeline_config.l1.test.sample_size = 50;
  const core::MiningPipeline pipeline(dataset.vocabulary, pipeline_config);
  const TimeMs begin = dataset.day_begin(0);
  const TimeMs end = dataset.day_end(0);

  // Warm up caches and the executor's worker pool once per mode.
  ASSERT_TRUE(pipeline.Run(dataset.store, begin, end).ok());
  {
    obs::ObsContext warm;
    obs::ScopedGlobalObs scoped(&warm);
    ASSERT_TRUE(pipeline.Run(dataset.store, begin, end, nullptr, &warm).ok());
  }

  constexpr int kReps = 5;
  int64_t best_plain_ns = std::numeric_limits<int64_t>::max();
  int64_t best_obs_ns = std::numeric_limits<int64_t>::max();
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave the two modes so drift (thermal, background load) hits
    // both sides equally.
    {
      const int64_t t0 = NowNs();
      auto result = pipeline.Run(dataset.store, begin, end);
      const int64_t elapsed = NowNs() - t0;
      ASSERT_TRUE(result.ok()) << result.status();
      best_plain_ns = std::min(best_plain_ns, elapsed);
    }
    {
      obs::ObsContext context;
      obs::ScopedGlobalObs scoped(&context);
      const int64_t t0 = NowNs();
      auto result = pipeline.Run(dataset.store, begin, end, nullptr, &context);
      const int64_t elapsed = NowNs() - t0;
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_TRUE(result.value().metrics.has_value());
      best_obs_ns = std::min(best_obs_ns, elapsed);
    }
  }

  // 3% relative budget, with a 2ms absolute epsilon: on a sub-70ms
  // workload a single scheduler hiccup is larger than the entire
  // instrumentation cost, and the guard must not flake on it.
  const double budget_ns = static_cast<double>(best_plain_ns) * 1.03 + 2e6;
  EXPECT_LE(static_cast<double>(best_obs_ns), budget_ns)
      << "obs-enabled best " << best_obs_ns << "ns vs plain best "
      << best_plain_ns << "ns";
}

}  // namespace
}  // namespace logmine::eval
