// The tentpole acceptance property of the checkpoint/recovery layer: a
// multi-technique sweep killed at *every* named kill point — after a day
// is mined, mid-snapshot-write (torn file on disk), after a durable
// checkpoint, and between miners — and then restarted, converges to a
// final result byte-identical to an uninterrupted run. Identity is
// asserted on CheckpointBytes, the exact serialized form the runner
// itself persists, so any drift in models, series rows, session stats
// or tracker state anywhere in the stack fails the test.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "eval/dataset.h"
#include "eval/resumable_runner.h"
#include "simulation/crash_injector.h"

namespace logmine::eval {
namespace {

namespace fs = std::filesystem;

class CrashRecoveryTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.1;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());

    ResumableOptions options;
    options.checkpoint.dir = FreshDir("crash_reference");
    auto reference = RunSweepResumable(*dataset_, Config(), options);
    ASSERT_TRUE(reference.ok()) << reference.status();
    reference_ = new SweepResult(std::move(reference).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete reference_;
    reference_ = nullptr;
  }

  static SweepConfig Config() {
    SweepConfig config;
    // Scaled-down corpus (0.1 of production volume): proportionally
    // lower L1 support floor, coarser slots to keep the test fast.
    config.l1.minlogs = 8;
    config.l1.slot_length = 2 * kMillisPerHour;
    return config;
  }

  static std::string FreshDir(const std::string& name) {
    // Suffixed with the pid: ctest runs each case of this suite as its
    // own parallel process, and every process rebuilds the suite-level
    // reference dir in SetUpTestSuite — fixed names would collide.
    const fs::path dir = fs::path(::testing::TempDir()) /
                         (name + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

  /// The serialized form of one technique's run — the byte string whose
  /// equality the recovery contract promises.
  static std::string Bytes(Technique technique, uint64_t config_fp,
                           const ResumableOptions& options,
                           const ResumableDailyResult& run) {
    return CheckpointBytes(
        technique, CheckpointStateHash(config_fp, *dataset_, options.tracker),
        dataset_->num_days(), run);
  }

  /// Asserts `sweep` is byte-identical to the uninterrupted reference,
  /// technique by technique.
  static void ExpectIdenticalToReference(const SweepResult& sweep,
                                         const ResumableOptions& options,
                                         const std::string& context) {
    const SweepConfig config = Config();
    ASSERT_TRUE(sweep.l1.has_value()) << context;
    ASSERT_TRUE(sweep.l2.has_value()) << context;
    ASSERT_TRUE(sweep.l3.has_value()) << context;
    EXPECT_EQ(Bytes(Technique::kL1, core::ConfigFingerprint(config.l1),
                    options, *sweep.l1),
              Bytes(Technique::kL1, core::ConfigFingerprint(config.l1),
                    options, *reference_->l1))
        << context << ": L1 diverged";
    EXPECT_EQ(Bytes(Technique::kL2, core::ConfigFingerprint(config.l2),
                    options, *sweep.l2),
              Bytes(Technique::kL2, core::ConfigFingerprint(config.l2),
                    options, *reference_->l2))
        << context << ": L2 diverged";
    EXPECT_EQ(Bytes(Technique::kL3, core::ConfigFingerprint(config.l3),
                    options, *sweep.l3),
              Bytes(Technique::kL3, core::ConfigFingerprint(config.l3),
                    options, *reference_->l3))
        << context << ": L3 diverged";
  }

  static Dataset* dataset_;
  static SweepResult* reference_;
};

Dataset* CrashRecoveryTest::dataset_ = nullptr;
SweepResult* CrashRecoveryTest::reference_ = nullptr;

/// Kills one sweep at `plan`, asserts the death was the simulated one,
/// reruns without the injector and checks byte-identity.
void KillAndRecover(const Dataset& dataset, const SweepConfig& config,
                    sim::CrashPlan plan, ResumableOptions options,
                    const std::string& context,
                    SweepResult* recovered_out = nullptr) {
  sim::CrashInjector injector(plan);
  options.crash = &injector;
  auto killed = RunSweepResumable(dataset, config, options);
  ASSERT_FALSE(killed.ok()) << context << ": injector never reached";
  ASSERT_TRUE(injector.fired()) << context;
  EXPECT_EQ(killed.status().code(), StatusCode::kInternal) << context;
  EXPECT_NE(killed.status().message().find("simulated crash"),
            std::string::npos)
      << context << ": " << killed.status();

  options.crash = nullptr;
  auto recovered = RunSweepResumable(dataset, config, options);
  ASSERT_TRUE(recovered.ok()) << context << ": " << recovered.status();
  if (recovered_out != nullptr) *recovered_out = recovered.value();
  CrashRecoveryTest::ExpectIdenticalToReference(recovered.value(), options,
                                                context);
}

TEST_F(CrashRecoveryTest, EveryKillPointRecoversToIdenticalBytes) {
  for (const sim::KillPoint point :
       {sim::KillPoint::kAfterDayMined, sim::KillPoint::kMidSnapshotWrite,
        sim::KillPoint::kAfterCheckpoint}) {
    for (int day = 0; day < dataset_->num_days(); ++day) {
      const std::string context = std::string(sim::KillPointName(point)) +
                                  " #" + std::to_string(day);
      ResumableOptions options;
      options.checkpoint.dir = FreshDir("crash_" + std::to_string(
                                            static_cast<int>(point)) +
                                        "_" + std::to_string(day));
      SweepResult recovered;
      KillAndRecover(*dataset_, Config(), sim::CrashPlan{point, day},
                     options, context, &recovered);
      if (HasFatalFailure()) return;
      if (point == sim::KillPoint::kMidSnapshotWrite) {
        // The torn file reached the final checkpoint path; recovery must
        // have discarded it and fallen back (or restarted fresh).
        ASSERT_TRUE(recovered.l1.has_value());
        EXPECT_GE(recovered.l1->resume.generations_discarded, 1) << context;
        EXPECT_EQ(recovered.l1->resume.days_loaded, day) << context;
      }
    }
  }
}

TEST_F(CrashRecoveryTest, TechniqueBoundaryKillsRecoverToIdenticalBytes) {
  // index = completed techniques - 1: 0 kills after L1, 1 after L2.
  for (int boundary = 0; boundary < 2; ++boundary) {
    const std::string context =
        "between-miners #" + std::to_string(boundary);
    ResumableOptions options;
    options.checkpoint.dir = FreshDir("crash_boundary_" +
                                      std::to_string(boundary));
    SweepResult recovered;
    KillAndRecover(*dataset_, Config(),
                   sim::CrashPlan{sim::KillPoint::kBetweenMiners, boundary},
                   options, context, &recovered);
    if (HasFatalFailure()) return;
    // Techniques finished before the boundary are loaded wholesale.
    ASSERT_TRUE(recovered.l1.has_value());
    EXPECT_EQ(recovered.l1->resume.days_loaded, dataset_->num_days())
        << context;
    EXPECT_EQ(recovered.l1->resume.days_mined, 0) << context;
    if (boundary >= 1) {
      ASSERT_TRUE(recovered.l2.has_value());
      EXPECT_EQ(recovered.l2->resume.days_mined, 0) << context;
    }
  }
}

TEST_F(CrashRecoveryTest, RandomSeededPlansAllRecover) {
  // The fuzzing entry point of the harness: a handful of seeded random
  // plans, each exactly reproducible from its seed.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const sim::CrashPlan plan =
        sim::RandomCrashPlan(&rng, dataset_->num_days(), /*num_techniques=*/3);
    const std::string context = "seed " + std::to_string(seed) + ": " +
                                std::string(sim::KillPointName(plan.point)) +
                                " #" + std::to_string(plan.index);
    ResumableOptions options;
    options.checkpoint.dir = FreshDir("crash_seed_" + std::to_string(seed));
    KillAndRecover(*dataset_, Config(), plan, options, context);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashRecoveryTest, DoubleCrashStillConverges) {
  // Two successive deaths — one torn write, then a clean kill later —
  // followed by a final recovery.
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("crash_double");
  const SweepConfig config = Config();

  sim::CrashInjector first(
      sim::CrashPlan{sim::KillPoint::kMidSnapshotWrite, 0});
  options.crash = &first;
  ASSERT_FALSE(RunSweepResumable(*dataset_, config, options).ok());
  ASSERT_TRUE(first.fired());

  sim::CrashInjector second(
      sim::CrashPlan{sim::KillPoint::kBetweenMiners, 1});
  options.crash = &second;
  ASSERT_FALSE(RunSweepResumable(*dataset_, config, options).ok());
  ASSERT_TRUE(second.fired());

  options.crash = nullptr;
  auto recovered = RunSweepResumable(*dataset_, config, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectIdenticalToReference(recovered.value(), options, "double crash");
}

}  // namespace
}  // namespace logmine::eval
