// The tentpole acceptance property of the sharded sweep supervisor: a
// multi-day L1 sweep partitioned into (day × pair-range) shards and run
// under seeded chaos — workers killed, hung past their deadline,
// delivering corrupt partial models, or merely slow — converges to
// bytes identical to a fault-free run whenever every fault is
// recoverable, and to an exactly-accounted degraded model when it is
// not. Identity is asserted on MergedModelBytes, the serialized form
// the supervisor itself merges and persists.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "eval/daily_runner.h"
#include "eval/dataset.h"
#include "eval/shard_supervisor.h"
#include "simulation/crash_injector.h"
#include "util/rng.h"

namespace logmine::eval {
namespace {

namespace fs = std::filesystem;

constexpr int kNumRanges = 3;

class ChaosSweepTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.1;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());

    auto clean = RunL1ShardedSweep(*dataset_, L1Cfg(), Supervisor());
    ASSERT_TRUE(clean.ok()) << clean.status();
    ASSERT_EQ(clean.value().outcome, SweepOutcome::kComplete);
    reference_ = new std::string(core::MergedModelBytes(clean.value().merged));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete reference_;
    reference_ = nullptr;
  }

  static core::L1Config L1Cfg() {
    core::L1Config config;
    // Scaled-down corpus (0.1 of production volume): proportionally
    // lower support floor, coarser slots to keep the test fast.
    config.minlogs = 8;
    config.slot_length = 2 * kMillisPerHour;
    return config;
  }

  static ShardSupervisorConfig Supervisor() {
    ShardSupervisorConfig config;
    config.num_ranges = kNumRanges;
    // Tight enough that an injected hang trips fast, loose enough that
    // real mining of this corpus never does.
    config.shard_deadline_ms = 2000;
    config.retry.initial_backoff_ms = 1;
    config.retry.max_backoff_ms = 2;
    config.poll_ms = 1;
    return config;
  }

  static std::string FreshDir(const std::string& name) {
    // Pid-suffixed: ctest runs each case as its own parallel process
    // and every process rebuilds the suite-level reference.
    const fs::path dir = fs::path(::testing::TempDir()) /
                         (name + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

 protected:
  static Dataset* dataset_;
  static std::string* reference_;  // fault-free MergedModelBytes
};

Dataset* ChaosSweepTest::dataset_ = nullptr;
std::string* ChaosSweepTest::reference_ = nullptr;

TEST_F(ChaosSweepTest, ShardedSweepMatchesPerDayMining) {
  // Ground truth from a different code path: mine each day unsliced
  // with the plain daily runner and union.
  core::DependencyModel expected_union;
  auto clean = RunL1ShardedSweep(*dataset_, L1Cfg(), Supervisor());
  ASSERT_TRUE(clean.ok()) << clean.status();
  for (int day = 0; day < dataset_->num_days(); ++day) {
    auto outcome = RunL1Day(*dataset_, L1Cfg(), day);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(clean.value().merged.daily[day].pairs(),
              outcome.value().model.pairs())
        << "day " << day;
    expected_union = expected_union.Union(outcome.value().model);
  }
  EXPECT_EQ(clean.value().merged.model.pairs(), expected_union.pairs());
}

TEST_F(ChaosSweepTest, RecoverableChaosConvergesToByteIdenticalModels) {
  // Seeded fault plans with no permanent faults: every kill, hang,
  // corruption and slowdown is eventually retried or hedged away, so
  // the merged bytes must equal the fault-free reference — the sharded
  // analogue of the crash-recovery byte-identity contract.
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    sim::ShardFaultPlanOptions options;
    options.max_faulty_shards = 3;
    options.max_times = 2;
    options.permanent_fraction = 0.0;
    const sim::ShardFaultPlan plan = sim::RandomShardFaultPlan(
        &rng, dataset_->num_days(), kNumRanges, options);
    sim::ShardFaultInjector injector(plan);
    ASSERT_TRUE(injector.PermanentlyPoisoned().empty());

    ShardSupervisorConfig config = Supervisor();
    config.faults = &injector;
    auto chaotic = RunL1ShardedSweep(*dataset_, L1Cfg(), config);
    ASSERT_TRUE(chaotic.ok()) << "seed " << seed << ": " << chaotic.status();
    EXPECT_EQ(chaotic.value().outcome, SweepOutcome::kComplete) << seed;
    EXPECT_TRUE(chaotic.value().merged.coverage.complete()) << seed;
    EXPECT_EQ(core::MergedModelBytes(chaotic.value().merged), *reference_)
        << "seed " << seed << " diverged from the fault-free run";
    // Slow shards complete without failing, so a plan may inject zero
    // failures; anything the plan did break must show in the stats.
    EXPECT_GE(chaotic.value().stats.attempts,
              static_cast<int64_t>(dataset_->num_days() * kNumRanges))
        << seed;
  }
}

TEST_F(ChaosSweepTest, PermanentFaultsDegradeWithExactCoverageAccounting) {
  // Two permanently broken shards: the sweep must degrade (not fail,
  // not lie), report exactly those cells missing, and deliver the union
  // of every surviving shard's true model.
  sim::ShardFaultPlan plan;
  plan.faults.push_back({/*day=*/0, /*range_index=*/1,
                         sim::ShardFault::kFailTransient,
                         sim::kShardFaultAlways});
  plan.faults.push_back({/*day=*/1, /*range_index=*/2, sim::ShardFault::kHang,
                         sim::kShardFaultAlways, /*slow_ms=*/5});
  sim::ShardFaultInjector injector(plan);

  ShardSupervisorConfig config = Supervisor();
  config.shard_deadline_ms = 30;  // hangs trip fast
  config.faults = &injector;
  config.partial_dir = FreshDir("chaos_partials");
  auto degraded = RunL1ShardedSweep(*dataset_, L1Cfg(), config);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.value().outcome, SweepOutcome::kDegraded);

  // Coverage names exactly the injector's permanently poisoned cells.
  EXPECT_EQ(degraded.value().merged.coverage.MissingCells(),
            injector.PermanentlyPoisoned());
  EXPECT_EQ(degraded.value().stats.shards_poisoned, 2);
  EXPECT_EQ(degraded.value().stats.breaker_trips, 2);

  // The merged model is exactly the union of direct per-shard mining
  // over the covered cells — a lost shard subtracts its own pairs only.
  core::L1ActivityMiner miner(L1Cfg());
  core::DependencyModel expected;
  for (int day = 0; day < dataset_->num_days(); ++day) {
    for (int range = 0; range < kNumRanges; ++range) {
      if (!degraded.value().merged.coverage.IsCovered(day, range)) continue;
      auto sliced = miner.Mine(
          dataset_->store, dataset_->day_begin(day), dataset_->day_end(day),
          core::PairRange{static_cast<uint32_t>(range), kNumRanges});
      ASSERT_TRUE(sliced.ok()) << sliced.status();
      expected = expected.Union(sliced.value().Dependencies(dataset_->store));
    }
  }
  EXPECT_EQ(degraded.value().merged.model.pairs(), expected.pairs());

  // Surviving partials were persisted; poisoned cells were not.
  int persisted = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator(config.partial_dir)) {
    ++persisted;
  }
  EXPECT_EQ(persisted, dataset_->num_days() * kNumRanges - 2);
  EXPECT_FALSE(fs::exists(fs::path(config.partial_dir) / "partial-d0-r1.snap"));
  EXPECT_TRUE(fs::exists(fs::path(config.partial_dir) / "partial-d0-r0.snap"));
}

TEST_F(ChaosSweepTest, PersistedPartialsParseBackToTheMergedInputs) {
  ShardSupervisorConfig config = Supervisor();
  config.partial_dir = FreshDir("clean_partials");
  auto swept = RunL1ShardedSweep(*dataset_, L1Cfg(), config);
  ASSERT_TRUE(swept.ok()) << swept.status();
  std::vector<core::PartialModel> parts;
  for (const auto& entry : fs::directory_iterator(config.partial_dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    auto parsed = core::ParsePartialModelBytes(std::move(bytes));
    ASSERT_TRUE(parsed.ok()) << entry.path() << ": " << parsed.status();
    EXPECT_EQ(parsed.value().state_hash, swept.value().state_hash);
    parts.push_back(std::move(parsed).value());
  }
  ASSERT_EQ(parts.size(),
            static_cast<size_t>(dataset_->num_days() * kNumRanges));
  auto remerged = core::MergePartialModels(dataset_->num_days(), kNumRanges,
                                           parts);
  ASSERT_TRUE(remerged.ok()) << remerged.status();
  EXPECT_EQ(core::MergedModelBytes(remerged.value()),
            core::MergedModelBytes(swept.value().merged));
}

}  // namespace
}  // namespace logmine::eval
