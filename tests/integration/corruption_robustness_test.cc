// End-to-end robustness property: corrupt the simulated corpus at
// increasing rates, re-ingest leniently, re-mine, and check that
//   (a) at rate 0 the lenient path is byte-identical to the strict one,
//   (b) the ingest report matches the injected faults class by class,
//   (c) mining completes with partial-result semantics and the three
//       techniques degrade gracefully (documented bound: precision and
//       recall stay within 0.25 of the clean run at <= 10% corruption).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "eval/dataset.h"
#include "simulation/corruptor.h"

namespace logmine::eval {
namespace {

// How far each score may fall below the clean run (see DESIGN.md §8).
constexpr double kMaxDegradation = 0.25;

struct MiningScores {
  core::ConfusionCounts l1;
  core::ConfusionCounts l2;
  core::ConfusionCounts l3;
};

class CorruptionRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 1;
    config.simulation.scale = 0.3;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());

    std::vector<LogRecord> records;
    records.reserve(dataset_->store.size());
    for (uint32_t idx : dataset_->store.TimeOrder()) {
      records.push_back(dataset_->store.GetRecord(idx));
    }
    clean_text_ = new std::string(LineCodec::EncodeAll(records));

    clean_scores_ = new MiningScores(Mine(dataset_->store));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete clean_text_;
    clean_text_ = nullptr;
    delete clean_scores_;
    clean_scores_ = nullptr;
  }

  static core::PipelineConfig MiningConfig() {
    core::PipelineConfig config;
    config.l1.minlogs = 20;  // scaled corpus
    return config;
  }

  // Mines the whole day-0 window and scores each technique against the
  // scenario reference models. Fails the test if any miner fails.
  static MiningScores Mine(const LogStore& store) {
    core::MiningPipeline pipeline(dataset_->vocabulary, MiningConfig());
    auto result =
        pipeline.Run(store, dataset_->day_begin(0), dataset_->day_end(0));
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result.value().all_ok()) << result.value().first_error();
    MiningScores scores;
    scores.l1 = core::Evaluate(result.value().l1->Dependencies(store),
                               dataset_->reference_pairs,
                               dataset_->universe_pairs);
    scores.l2 = core::Evaluate(result.value().l2->Dependencies(store),
                               dataset_->reference_pairs,
                               dataset_->universe_pairs);
    scores.l3 = core::Evaluate(
        result.value().l3->Dependencies(store, dataset_->vocabulary),
        dataset_->reference_services, dataset_->universe_services);
    return scores;
  }

  // Corrupts the clean corpus at `rate`, re-ingests it leniently
  // (verifying the report against the ingest stats) and returns the
  // reloaded store.
  static LogStore CorruptAndReload(double rate, uint64_t seed) {
    sim::CorruptorConfig config;
    config.rate = rate;
    Rng rng(seed);
    sim::CorruptionReport report;
    const std::string corrupted =
        sim::CorruptCorpusText(*clean_text_, config, &rng, &report);

    DecodeOptions options;
    options.policy = DecodePolicy::kQuarantine;
    options.max_bad_fraction = 0.2;
    IngestStats stats;
    auto records = LineCodec::DecodeAll(corrupted, options, &stats);
    EXPECT_TRUE(records.ok()) << records.status();
    // Injected == reported, class by class.
    EXPECT_EQ(stats.records_decoded, report.expected_records);
    EXPECT_EQ(stats.lines_quarantined, report.expected_quarantined);
    for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
      EXPECT_EQ(stats.by_class[c], report.expected_by_class[c]) << c;
    }

    LogStore store;
    for (const LogRecord& record : records.value()) {
      EXPECT_TRUE(store.Append(record).ok());
    }
    store.BuildIndex();
    return store;
  }

  static void ExpectWithinBound(const core::ConfusionCounts& corrupted,
                                const core::ConfusionCounts& clean,
                                const char* technique) {
    EXPECT_GE(corrupted.precision(), clean.precision() - kMaxDegradation)
        << technique << ": precision fell from " << clean.precision()
        << " to " << corrupted.precision();
    EXPECT_GE(corrupted.recall(), clean.recall() - kMaxDegradation)
        << technique << ": recall fell from " << clean.recall() << " to "
        << corrupted.recall();
  }

  static Dataset* dataset_;
  static std::string* clean_text_;
  static MiningScores* clean_scores_;
};

Dataset* CorruptionRobustnessTest::dataset_ = nullptr;
std::string* CorruptionRobustnessTest::clean_text_ = nullptr;
MiningScores* CorruptionRobustnessTest::clean_scores_ = nullptr;

TEST_F(CorruptionRobustnessTest, CleanRunIsWorthDegradingFrom) {
  // Guard the baseline itself so a degraded bound cannot pass vacuously.
  EXPECT_GT(clean_scores_->l1.true_positives, 3);
  EXPECT_GT(clean_scores_->l2.true_positives, 3);
  EXPECT_GT(clean_scores_->l3.true_positives, 50);
  EXPECT_GT(clean_scores_->l3.precision(), 0.8);
}

TEST_F(CorruptionRobustnessTest, ZeroCorruptionQuarantineMatchesFailFast) {
  sim::CorruptorConfig config;
  config.rate = 0.0;
  Rng rng(99);
  EXPECT_EQ(sim::CorruptCorpusText(*clean_text_, config, &rng), *clean_text_);

  auto strict = LineCodec::DecodeAll(*clean_text_);
  ASSERT_TRUE(strict.ok()) << strict.status();
  DecodeOptions lenient;
  lenient.policy = DecodePolicy::kQuarantine;
  lenient.max_bad_fraction = 0.2;
  IngestStats stats;
  auto quarantine = LineCodec::DecodeAll(*clean_text_, lenient, &stats);
  ASSERT_TRUE(quarantine.ok()) << quarantine.status();
  EXPECT_EQ(stats.lines_quarantined, 0u);
  // Byte-identical round trip: the lenient path decoded the same records.
  EXPECT_EQ(LineCodec::EncodeAll(quarantine.value()),
            LineCodec::EncodeAll(strict.value()));
}

TEST_F(CorruptionRobustnessTest, OnePercentCorruptionBarelyDents) {
  const LogStore store = CorruptAndReload(0.01, 4242);
  const MiningScores scores = Mine(store);
  ExpectWithinBound(scores.l1, clean_scores_->l1, "L1");
  ExpectWithinBound(scores.l2, clean_scores_->l2, "L2");
  ExpectWithinBound(scores.l3, clean_scores_->l3, "L3");
}

TEST_F(CorruptionRobustnessTest, TenPercentCorruptionDegradesGracefully) {
  const LogStore store = CorruptAndReload(0.10, 4242);
  const MiningScores scores = Mine(store);
  ExpectWithinBound(scores.l1, clean_scores_->l1, "L1");
  ExpectWithinBound(scores.l2, clean_scores_->l2, "L2");
  ExpectWithinBound(scores.l3, clean_scores_->l3, "L3");
}

TEST_F(CorruptionRobustnessTest, FailingMinerStillDeliversSiblingModels) {
  const LogStore store = CorruptAndReload(0.10, 777);
  core::MiningPipeline pipeline(core::ServiceVocabulary{}, MiningConfig());
  auto result =
      pipeline.Run(store, dataset_->day_begin(0), dataset_->day_end(0));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().all_ok());
  EXPECT_FALSE(result.value().l3_status.ok());
  EXPECT_TRUE(result.value().l1_status.ok());
  EXPECT_TRUE(result.value().l2_status.ok());
  ASSERT_TRUE(result.value().l1.has_value());
  ASSERT_TRUE(result.value().l2.has_value());
  EXPECT_FALSE(result.value().l3.has_value());
  EXPECT_GT(
      core::Evaluate(result.value().l1->Dependencies(store),
                     dataset_->reference_pairs, dataset_->universe_pairs)
          .true_positives,
      0);
}

}  // namespace
}  // namespace logmine::eval
