// Chaos acceptance of the streaming mining service: across a seed
// matrix of randomized fault plans the service must never serve a torn
// or config-mismatched generation, shed load instead of erroring while
// overloaded, report a health state consistent with its publish age,
// and recover from an injected crash to the byte-identical state of a
// run that never crashed.

#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/dataset.h"
#include "serve/streaming_service.h"
#include "simulation/service_faults.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace logmine::serve {
namespace {

eval::Dataset BuildSeededDataset(uint64_t seed) {
  eval::DatasetConfig config;
  config.scenario.seed = seed;
  config.simulation.seed = seed * 31 + 7;
  config.simulation.num_days = 1;
  config.simulation.scale = 0.04;
  auto built = eval::BuildDataset(config);
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built).value();
}

std::string FreshStatePath(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("logmine_chaos_" + name);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir);
  return (dir / "state.snapshot").string();
}

ServiceConfig ChaosConfig(const eval::Dataset& dataset,
                          std::shared_ptr<int64_t> clock,
                          std::string state_path) {
  ServiceConfig config;
  config.window.epoch_length = kMillisPerHour;
  config.window.window_epochs = 6;
  config.window.l1.minlogs = 6;  // scaled-down corpus
  config.window.vocabulary = dataset.vocabulary;
  config.entry_owner = dataset.entry_owner;
  config.max_queue_batches = 3;
  config.publish_every_epochs = 1;
  config.degraded_after_ms = 3'000;
  config.stale_after_ms = 8'000;
  config.state_path = std::move(state_path);
  config.now_ms = [clock] { return *clock; };
  return config;
}

/// Drives one service through a day of batches under a seeded fault
/// plan, shadowing the queue so every externally visible effect —
/// queue depth, sheds, the ingest watermark, health — can be checked
/// against first principles at every step.
class ChaosDriver {
 public:
  ChaosDriver(const eval::Dataset& dataset, ServiceConfig config,
              const sim::ServiceFaultInjector& injector,
              std::shared_ptr<int64_t> clock)
      : config_(std::move(config)),
        injector_(injector),
        clock_(std::move(clock)) {
    auto batches =
        SplitIntoEpochBatches(dataset.store, dataset.day_begin(0),
                              dataset.day_end(0), kMillisPerHour);
    EXPECT_TRUE(batches.ok()) << batches.status();
    batches_ = std::move(batches).value();
    config_.faults = &injector_;
    auto created = StreamingMiningService::Create(config_);
    EXPECT_TRUE(created.ok()) << created.status();
    service_ = std::move(created).value();
  }

  StreamingMiningService& service() { return *service_; }
  TimeMs ingest_watermark() const { return ingest_watermark_; }
  int64_t crashes() const { return crashes_; }
  size_t shadow_depth() const { return shadow_.size(); }

  void Submit(const EpochBatch& batch) {
    const int64_t index = submit_calls_++;
    const bool injected = injector_.OnEpoch(index, 1) ==
                          sim::ServiceFault::kClockRegression;
    const bool genuine = batch.begin <= submit_watermark_;
    const SubmitResult result = service_->SubmitBatch(batch);
    if (injected || genuine) {
      EXPECT_EQ(result.outcome, SubmitOutcome::kRejectedClockRegression)
          << "submission " << index;
    } else {
      submit_watermark_ = batch.begin;
      if (result.outcome == SubmitOutcome::kAcceptedShedOldest) {
        ASSERT_FALSE(shadow_.empty());
        shadow_.pop_front();
      } else {
        EXPECT_EQ(result.outcome, SubmitOutcome::kAccepted)
            << "submission " << index;
      }
      shadow_.push_back(batch.begin);
    }
    EXPECT_EQ(service_->queue_depth(), shadow_.size());
  }

  /// One Step, absorbing an injected crash by rebuilding the service
  /// from its snapshot and blindly resubmitting the whole day (the
  /// feeder has no memory of what was already ingested — the watermark
  /// guard must make that safe). Returns false once idle.
  bool StepOnce() {
    auto step = service_->Step();
    if (!step.ok()) {
      EXPECT_EQ(step.status().code(), StatusCode::kInternal)
          << step.status();
      ++crashes_;
      // The dying step ingested and persisted the queue head; the rest
      // of the queue died with the process.
      if (shadow_.empty()) {
        ADD_FAILURE() << "crash with nothing queued";
        return false;
      }
      ingest_watermark_ = shadow_.front();
      shadow_.clear();
      service_.reset();
      auto rebuilt = StreamingMiningService::Create(config_);
      if (!rebuilt.ok()) {
        ADD_FAILURE() << "rebuild after crash: " << rebuilt.status();
        return false;
      }
      service_ = std::move(rebuilt).value();
      EXPECT_TRUE(service_->recovered());
      auto model = service_->CurrentModel();
      if (model == nullptr) {
        ADD_FAILURE() << "recovery served no generation";
        return false;
      }
      // Recovery re-serves the generation the crash tore mid-publish.
      EXPECT_EQ(model->models.window_end,
                ingest_watermark_ + kMillisPerHour);
      submit_calls_ = 0;
      submit_watermark_ = ingest_watermark_;
      for (const EpochBatch& batch : batches_) Submit(batch);
      return true;
    }
    switch (step.value()) {
      case StepOutcome::kIdle:
        return false;
      case StepOutcome::kStalled:
        return true;  // the attempt still consumed stall budget
      case StepOutcome::kIngested:
      case StepOutcome::kPublished:
        if (shadow_.empty()) {
          ADD_FAILURE() << "ingest with nothing queued";
          return false;
        }
        ingest_watermark_ = shadow_.front();
        shadow_.pop_front();
        return true;
      case StepOutcome::kPoisoned:
        if (shadow_.empty()) {
          ADD_FAILURE() << "poison with nothing queued";
          return false;
        }
        shadow_.pop_front();  // quarantined, never ingested
        return true;
    }
    return true;
  }

  /// The torn-model check: whatever generation a reader can hold right
  /// now must prove its own integrity and carry this config's
  /// fingerprint.
  void CheckModel() {
    auto model = service_->CurrentModel();
    if (model == nullptr) return;
    EXPECT_EQ(model->config_fingerprint, service_->config_fingerprint());
    if (model->number == checked_generation_) return;
    checked_generation_ = model->number;
    EXPECT_EQ(model->self_crc, Crc32(SerializeGeneration(*model)))
        << "generation " << model->number;
  }

  /// Health must agree with the publish age it itself reports.
  void CheckHealth() {
    const HealthReport report = service_->Health();
    if (report.generation == 0) {
      EXPECT_EQ(report.state, HealthState::kStarting);
      return;
    }
    const int64_t age = report.ms_since_publish;
    ASSERT_GE(age, 0);
    const HealthState expected =
        age < config_.degraded_after_ms  ? HealthState::kHealthy
        : age < config_.stale_after_ms   ? HealthState::kDegraded
                                         : HealthState::kStaleServing;
    EXPECT_EQ(report.state, expected) << "publish age " << age << " ms";
  }

  const std::vector<EpochBatch>& batches() const { return batches_; }

 private:
  ServiceConfig config_;
  const sim::ServiceFaultInjector& injector_;
  std::shared_ptr<int64_t> clock_;
  std::vector<EpochBatch> batches_;
  std::unique_ptr<StreamingMiningService> service_;
  std::deque<TimeMs> shadow_;       ///< begins of the queued batches
  int64_t submit_calls_ = 0;        ///< per service incarnation
  TimeMs submit_watermark_ = INT64_MIN;
  TimeMs ingest_watermark_ = INT64_MIN;
  int64_t checked_generation_ = 0;
  int64_t crashes_ = 0;
};

class StreamingChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingChaosTest, ServiceSurvivesARandomFaultPlan) {
  const uint64_t seed = GetParam();
  const eval::Dataset dataset = BuildSeededDataset(seed);
  Rng rng(seed * 977 + 11);
  sim::ServiceFaultPlanOptions fault_options;
  fault_options.max_faults = 4;
  fault_options.max_stall_steps = 2;
  fault_options.slow_ms = 30;
  const sim::ServiceFaultInjector injector(RandomServiceFaultPlan(
      &rng, /*num_epochs=*/24, /*num_queries=*/12, fault_options));

  auto clock = std::make_shared<int64_t>(0);
  ChaosDriver driver(
      dataset,
      ChaosConfig(dataset, clock,
                  FreshStatePath("sweep_" + std::to_string(seed))),
      injector, clock);
  if (::testing::Test::HasFatalFailure()) return;

  const std::string target = dataset.entry_owner.empty()
                                 ? std::string("app")
                                 : dataset.entry_owner.begin()->second;
  int64_t queries_issued = 0;
  for (size_t i = 0; i < driver.batches().size(); ++i) {
    driver.Submit(driver.batches()[i]);
    *clock += 500;
    driver.StepOnce();
    if (::testing::Test::HasFatalFailure()) return;
    driver.CheckModel();
    driver.CheckHealth();
    if (i % 2 == 0) {
      // A tight deadline so an armed slow consumer trips it; whatever
      // happens, a query never surfaces anything but these codes.
      QueryOptions options;
      options.deadline_ms = 20;
      auto result =
          driver.service().WhatDependsOn(target, options);
      ++queries_issued;
      const StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kOk ||
                  code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kCancelled ||
                  code == StatusCode::kFailedPrecondition)
          << result.status();
    }
  }

  // Drain what chaos left behind; stalls expire, so this terminates.
  int guard = 0;
  while (driver.StepOnce() && ++guard < 500) {
    if (::testing::Test::HasFatalFailure()) return;
    driver.CheckModel();
  }
  ASSERT_LT(guard, 500) << "drain did not converge";

  EXPECT_EQ(driver.service().queue_depth(), 0u);
  EXPECT_EQ(driver.shadow_depth(), 0u);
  auto model = driver.service().CurrentModel();
  ASSERT_NE(model, nullptr);
  // The served window ends exactly at the newest ingested hour.
  EXPECT_EQ(model->models.window_end,
            driver.ingest_watermark() + kMillisPerHour);
  driver.CheckModel();
  driver.CheckHealth();
  EXPECT_GE(queries_issued, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingChaosTest,
                         ::testing::Values(3u, 11u, 42u, 97u, 1009u,
                                           52711u));

TEST(StreamingChaosIdentityTest, CrashRecoveryIsByteIdenticalToCleanRun) {
  const eval::Dataset dataset = BuildSeededDataset(7);
  auto clock = std::make_shared<int64_t>(0);
  auto batches = SplitIntoEpochBatches(dataset.store, dataset.day_begin(0),
                                       dataset.day_end(0), kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();

  // The reference: the same day, never interrupted.
  const std::string reference_path = FreshStatePath("identity_reference");
  {
    ServiceConfig config = ChaosConfig(dataset, clock, reference_path);
    config.max_queue_batches = 25;
    auto created = StreamingMiningService::Create(config);
    ASSERT_TRUE(created.ok()) << created.status();
    for (const EpochBatch& batch : batches.value()) {
      created.value()->SubmitBatch(batch);
    }
    ASSERT_TRUE(created.value()->Drain().ok());
  }
  auto reference_state = ReadFileToString(reference_path);
  ASSERT_TRUE(reference_state.ok()) << reference_state.status();

  ServiceConfig reference_config =
      ChaosConfig(dataset, clock, reference_path);
  auto reference = StreamingMiningService::Create(reference_config);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_generation =
      SerializeGeneration(*reference.value()->CurrentModel());

  for (const int64_t crash_index : {int64_t{2}, int64_t{7}, int64_t{17}}) {
    SCOPED_TRACE("crash at epoch " + std::to_string(crash_index));
    sim::ServiceFaultPlan plan;
    plan.faults.push_back(
        {crash_index, sim::ServiceFault::kCrashMidPublish});
    const sim::ServiceFaultInjector injector(plan);
    const std::string state_path =
        FreshStatePath("identity_" + std::to_string(crash_index));
    ServiceConfig config = ChaosConfig(dataset, clock, state_path);
    config.max_queue_batches = 25;
    config.faults = &injector;

    auto created = StreamingMiningService::Create(config);
    ASSERT_TRUE(created.ok()) << created.status();
    for (const EpochBatch& batch : batches.value()) {
      created.value()->SubmitBatch(batch);
    }
    auto drained = created.value()->Drain();
    ASSERT_FALSE(drained.ok());  // the injected death
    EXPECT_EQ(drained.status().code(), StatusCode::kInternal);
    created.value().reset();

    // Rebuild and blindly replay the whole day; already-ingested hours
    // bounce off the recovered watermark. The resubmitted epochs land
    // on different submission indices, so the armed crash never
    // re-fires — the fault has cleared.
    auto recovered = StreamingMiningService::Create(config);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE(recovered.value()->recovered());
    for (const EpochBatch& batch : batches.value()) {
      recovered.value()->SubmitBatch(batch);
    }
    ASSERT_TRUE(recovered.value()->Drain().ok());

    // Identity: the state file and the served generation are the very
    // bytes of the run that never crashed.
    auto state = ReadFileToString(state_path);
    ASSERT_TRUE(state.ok()) << state.status();
    EXPECT_EQ(state.value(), reference_state.value());
    ASSERT_NE(recovered.value()->CurrentModel(), nullptr);
    EXPECT_EQ(SerializeGeneration(*recovered.value()->CurrentModel()),
              reference_generation);
  }
}

TEST(StreamingChaosOverloadTest, SustainedOverloadShedsButStillPublishes) {
  const eval::Dataset dataset = BuildSeededDataset(19);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = ChaosConfig(dataset, clock, /*state_path=*/"");
  config.max_queue_batches = 2;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  auto batches = SplitIntoEpochBatches(dataset.store, dataset.day_begin(0),
                                       dataset.day_end(0), kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  // A consumer that never keeps up: the whole day arrives before a
  // single step runs. Nothing errors; the queue holds the 2 freshest
  // hours and everything older was shed.
  int sheds = 0;
  for (const EpochBatch& batch : batches.value()) {
    const SubmitResult result = service.SubmitBatch(batch);
    ASSERT_NE(result.outcome, SubmitOutcome::kRejectedClockRegression);
    if (result.outcome == SubmitOutcome::kAcceptedShedOldest) ++sheds;
  }
  EXPECT_EQ(sheds, 22);
  EXPECT_EQ(service.stats().batches_shed, 22);
  EXPECT_EQ(service.queue_depth(), 2u);

  auto drained = service.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(drained.value(), 2);
  EXPECT_EQ(service.stats().epochs_ingested, 2);
  auto model = service.CurrentModel();
  ASSERT_NE(model, nullptr);
  // The freshest data won through: the model covers the end of the day.
  EXPECT_EQ(model->models.window_end, dataset.day_end(0));
  EXPECT_EQ(service.Health().state, HealthState::kHealthy);
}

}  // namespace
}  // namespace logmine::serve
