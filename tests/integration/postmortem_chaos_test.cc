// Dump-on-failure acceptance: every failure class the observability
// layer promises to capture — a degraded sweep, a quarantined batch, a
// health-ladder regression — must leave exactly one parseable
// postmortem bundle behind, carrying the run id, the trigger span, the
// config fingerprint of the run that failed, and enough journal tail to
// reconstruct what happened. Plus the live half of the contract: the
// introspection socket of a running service answers HEALTH / METRICS /
// JOURNAL TAIL with the service's real state.

#include <unistd.h>

#include <filesystem>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/dataset.h"
#include "eval/shard_supervisor.h"
#include "obs/introspect.h"
#include "obs/obs.h"
#include "obs/postmortem.h"
#include "serve/streaming_service.h"
#include "simulation/crash_injector.h"
#include "simulation/service_faults.h"

namespace logmine {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> BundlePaths(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".lmpm") {
      paths.push_back(entry.path().string());
    }
  }
  return paths;
}

std::string JoinedTail(const obs::PostmortemBundle& bundle) {
  std::string joined;
  for (const std::string& line : bundle.journal_tail) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

TEST(PostmortemChaosTest, DegradedSweepCapturesABundle) {
  eval::DatasetConfig dataset_config;
  dataset_config.simulation.num_days = 1;
  dataset_config.simulation.scale = 0.1;
  auto dataset = eval::BuildDataset(dataset_config);
  ASSERT_TRUE(dataset.ok()) << dataset.status();

  core::L1Config l1;
  l1.minlogs = 8;
  l1.slot_length = 2 * kMillisPerHour;

  // One permanently broken shard: the sweep degrades instead of failing
  // and must dump exactly one bundle on the way out.
  sim::ShardFaultPlan plan;
  plan.faults.push_back({/*day=*/0, /*range_index=*/1,
                         sim::ShardFault::kFailTransient,
                         sim::kShardFaultAlways});
  sim::ShardFaultInjector injector(plan);

  obs::ObsContext context;
  eval::ShardSupervisorConfig config;
  config.num_ranges = 2;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  config.poll_ms = 1;
  config.faults = &injector;
  config.obs = &context;
  config.postmortem.dir = FreshDir("pm_sweep");

  auto swept = eval::RunL1ShardedSweep(dataset.value(), l1, config);
  ASSERT_TRUE(swept.ok()) << swept.status();
  ASSERT_EQ(swept.value().outcome, eval::SweepOutcome::kDegraded);

  const std::vector<std::string> bundles =
      BundlePaths(config.postmortem.dir);
  ASSERT_EQ(bundles.size(), 1u);
  auto bundle = obs::ReadPostmortemBundle(bundles[0]);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().reason, "sweep_degraded");
  EXPECT_EQ(bundle.value().run_id, context.journal().run_id());
  EXPECT_EQ(bundle.value().trigger_span.rfind("sweep-", 0), 0u);
  // The fingerprint is the sweep's own state hash, so the bundle can be
  // matched to the exact config that degraded.
  EXPECT_EQ(bundle.value().config_fingerprint, swept.value().state_hash);
  // The tail holds the forensic trail: the poisoned shard and the
  // degraded sweep end were journaled before the capture.
  const std::string tail = JoinedTail(bundle.value());
  EXPECT_NE(tail.find("shard_poisoned"), std::string::npos);
  EXPECT_NE(tail.find("sweep_end"), std::string::npos);
  EXPECT_NE(bundle.value().metrics_json.find("sweep"), std::string::npos);
}

eval::Dataset ServeDataset(uint64_t seed) {
  eval::DatasetConfig config;
  config.scenario.seed = seed;
  config.simulation.seed = seed * 31 + 7;
  config.simulation.num_days = 1;
  config.simulation.scale = 0.04;
  auto built = eval::BuildDataset(config);
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built).value();
}

serve::ServiceConfig ServeConfig(const eval::Dataset& dataset,
                                 std::shared_ptr<int64_t> clock,
                                 obs::ObsContext* context) {
  serve::ServiceConfig config;
  config.window.epoch_length = kMillisPerHour;
  config.window.window_epochs = 6;
  config.window.l1.minlogs = 6;
  config.window.vocabulary = dataset.vocabulary;
  config.entry_owner = dataset.entry_owner;
  config.max_queue_batches = 25;
  config.publish_every_epochs = 1;
  config.degraded_after_ms = 3'000;
  config.stale_after_ms = 8'000;
  config.now_ms = [clock] { return *clock; };
  config.obs = context;
  return config;
}

TEST(PostmortemChaosTest, QuarantinedBatchCapturesABundle) {
  const eval::Dataset dataset = ServeDataset(5);
  auto clock = std::make_shared<int64_t>(0);
  obs::ObsContext context;
  serve::ServiceConfig config = ServeConfig(dataset, clock, &context);
  config.postmortem.dir = FreshDir("pm_poison");

  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/2, sim::ServiceFault::kPoisonBatch});
  const sim::ServiceFaultInjector injector(plan);
  config.faults = &injector;

  auto created = serve::StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  auto batches = serve::SplitIntoEpochBatches(
      dataset.store, dataset.day_begin(0), dataset.day_end(0),
      kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  for (const serve::EpochBatch& batch : batches.value()) {
    created.value()->SubmitBatch(batch);
  }
  ASSERT_TRUE(created.value()->Drain().ok());
  EXPECT_EQ(created.value()->stats().batches_poisoned, 1);

  const std::vector<std::string> bundles =
      BundlePaths(config.postmortem.dir);
  ASSERT_EQ(bundles.size(), 1u);
  auto bundle = obs::ReadPostmortemBundle(bundles[0]);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().reason, "batch_quarantined");
  // The trigger names the poisoned epoch's span under the serve root.
  EXPECT_EQ(bundle.value().trigger_span.rfind("serve-", 0), 0u);
  EXPECT_NE(bundle.value().trigger_span.find("/e"), std::string::npos);
  EXPECT_EQ(bundle.value().config_fingerprint,
            created.value()->config_fingerprint());
  EXPECT_NE(JoinedTail(bundle.value()).find("batch_quarantined"),
            std::string::npos);
}

TEST(PostmortemChaosTest, CrashMidPublishCapturesABundle) {
  const eval::Dataset dataset = ServeDataset(7);
  auto clock = std::make_shared<int64_t>(0);
  obs::ObsContext context;
  serve::ServiceConfig config = ServeConfig(dataset, clock, &context);
  config.postmortem.dir = FreshDir("pm_crash");
  config.state_path = FreshDir("pm_crash_state") + "/state.snapshot";

  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/2, sim::ServiceFault::kCrashMidPublish});
  const sim::ServiceFaultInjector injector(plan);
  config.faults = &injector;

  auto created = serve::StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  auto batches = serve::SplitIntoEpochBatches(
      dataset.store, dataset.day_begin(0), dataset.day_end(0),
      kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  for (const serve::EpochBatch& batch : batches.value()) {
    created.value()->SubmitBatch(batch);
  }
  // The injected death surfaces as the usual kInternal...
  auto drained = created.value()->Drain();
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.status().code(), StatusCode::kInternal);

  // ...but the dying process left its black box behind: the bundle
  // correlates (by run id and span) the fault with the journal trail
  // the crash interrupted.
  const std::vector<std::string> bundles =
      BundlePaths(config.postmortem.dir);
  ASSERT_EQ(bundles.size(), 1u);
  auto bundle = obs::ReadPostmortemBundle(bundles[0]);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().reason, "crash_mid_publish");
  EXPECT_EQ(bundle.value().run_id, context.journal().run_id());
  EXPECT_NE(bundle.value().trigger_span.find("/e"), std::string::npos);
  const std::string tail = JoinedTail(bundle.value());
  EXPECT_NE(tail.find("crash_mid_publish"), std::string::npos);
  EXPECT_NE(tail.find("epoch_ingested"), std::string::npos);
}

TEST(PostmortemChaosTest, HealthRegressionCapturesABundle) {
  const eval::Dataset dataset = ServeDataset(9);
  auto clock = std::make_shared<int64_t>(0);
  obs::ObsContext context;
  serve::ServiceConfig config = ServeConfig(dataset, clock, &context);
  config.postmortem.dir = FreshDir("pm_health");

  auto created = serve::StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  serve::StreamingMiningService& service = *created.value();
  auto batches = serve::SplitIntoEpochBatches(
      dataset.store, dataset.day_begin(0), dataset.day_end(0),
      kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  service.SubmitBatch(batches.value().front());
  ASSERT_TRUE(service.Drain().ok());
  ASSERT_EQ(service.Health().state, serve::HealthState::kHealthy);
  EXPECT_TRUE(BundlePaths(config.postmortem.dir).empty());

  // No publish while the clock runs past the degraded threshold: the
  // next step observes healthy -> degraded and dumps.
  *clock += config.degraded_after_ms + 1'000;
  ASSERT_TRUE(service.Step().ok());
  EXPECT_EQ(service.Health().state, serve::HealthState::kDegraded);

  const std::vector<std::string> bundles =
      BundlePaths(config.postmortem.dir);
  ASSERT_EQ(bundles.size(), 1u);
  auto bundle = obs::ReadPostmortemBundle(bundles[0]);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().reason, "health_regression");
  EXPECT_EQ(bundle.value().config_fingerprint,
            service.config_fingerprint());
  EXPECT_NE(JoinedTail(bundle.value()).find("health_transition"),
            std::string::npos);

  // A steady degraded state is not a regression: stepping again while
  // still degraded must not dump a second bundle.
  ASSERT_TRUE(service.Step().ok());
  EXPECT_EQ(BundlePaths(config.postmortem.dir).size(), 1u);
}

TEST(PostmortemChaosTest, IntrospectionSocketServesTheLiveService) {
  const eval::Dataset dataset = ServeDataset(13);
  auto clock = std::make_shared<int64_t>(0);
  obs::ObsContext context;
  serve::ServiceConfig config = ServeConfig(dataset, clock, &context);
  config.introspection_socket =
      "/tmp/logmine_pm_introspect_" + std::to_string(::getpid()) + ".sock";

  auto created = serve::StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  auto batches = serve::SplitIntoEpochBatches(
      dataset.store, dataset.day_begin(0), dataset.day_end(0),
      kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  for (const serve::EpochBatch& batch : batches.value()) {
    created.value()->SubmitBatch(batch);
  }
  ASSERT_TRUE(created.value()->Drain().ok());

  // HEALTH reflects the service's own report, not a canned string.
  auto health = obs::IntrospectionQuery(config.introspection_socket,
                                        "HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().message();
  EXPECT_EQ(health.value().rfind("healthy generation=", 0), 0u);
  EXPECT_NE(health.value().find("queue_depth=0"), std::string::npos);

  // METRICS is the OpenMetrics rendering of the live registry: the
  // drain above ingested epochs, so serve counters are non-zero.
  auto metrics = obs::IntrospectionQuery(config.introspection_socket,
                                         "METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("logmine_serve_ingest_ns"),
            std::string::npos);

  // STATUSZ carries the run id that stamps every journal line.
  auto statusz = obs::IntrospectionQuery(config.introspection_socket,
                                         "STATUSZ");
  ASSERT_TRUE(statusz.ok());
  EXPECT_NE(statusz.value().find(context.journal().run_id()),
            std::string::npos);

  // The journal tail shows the lifecycle the drain just journaled.
  auto tail = obs::IntrospectionQuery(config.introspection_socket,
                                      "JOURNAL TAIL 200");
  ASSERT_TRUE(tail.ok());
  EXPECT_NE(tail.value().find("service_start"), std::string::npos);
  EXPECT_NE(tail.value().find("generation_published"), std::string::npos);

  // Tearing down the service stops the server and removes the socket.
  created.value().reset();
  EXPECT_NE(::access(config.introspection_socket.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace logmine
