#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::ParseError("f"), StatusCode::kParseError},
      {Status::Internal("g"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::ParseError("bad line");
  EXPECT_EQ(os.str(), "ParseError: bad line");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

Status FailsThenPropagates(bool fail) {
  LOGMINE_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  const Status failed = FailsThenPropagates(true);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(failed.message(), "inner");
}

}  // namespace
}  // namespace logmine
