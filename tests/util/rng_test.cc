#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(SplitMix64Test, AdvancesStateAndIsDeterministic) {
  uint64_t s1 = 123, s2 = 123;
  const uint64_t a = SplitMix64(&s1);
  const uint64_t b = SplitMix64(&s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(s1, 123u);
  EXPECT_NE(SplitMix64(&s1), a);  // stream moves on
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 16u);  // not stuck at a fixed point
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.Fork("worker");
  parent.Next();  // consuming the parent must not change future forks...
  Rng parent2(7);
  Rng child2 = parent2.Fork("worker");
  EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(RngTest, ForksWithDifferentLabelsDiffer) {
  Rng parent(7);
  Rng a = parent.Fork("a");
  Rng b = parent.Fork("b");
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearOneHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.UniformInt(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<size_t>(v - 10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 6, n / 60);  // within 10% of expectation
  }
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0, ss = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Rng rng(23);
  const int n = 50000;
  double sum = 0, ss = 0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.Poisson(lambda));
    EXPECT_GE(x, 0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  // Poisson: mean = variance = lambda (both branches of the sampler).
  EXPECT_NEAR(mean, lambda, std::max(0.05, lambda * 0.05));
  EXPECT_NEAR(var, lambda, std::max(0.1, lambda * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonTest,
                         ::testing::Values(0.2, 1.0, 4.0, 20.0, 100.0));

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

}  // namespace
}  // namespace logmine
