#include "util/executor.h"

#include <gtest/gtest.h>

#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace logmine {
namespace {

TEST(ExecutorTest, ParallelForVisitsEveryIndexExactlyOnce) {
  Executor executor(3);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  executor.ParallelFor(kCount, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ExecutorTest, PerIndexOutputsMergeInIndexOrder) {
  // The determinism contract: workers race, but each index writes its
  // own slot, so the merged sequence is the identity regardless of
  // scheduling.
  Executor executor(4);
  std::vector<size_t> out(500, SIZE_MAX);
  executor.ParallelFor(out.size(), [&](size_t i) { out[i] = i; });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i);
  }
}

TEST(ExecutorTest, MaxParallelismOneRunsOnTheCallingThread) {
  Executor executor(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  executor.ParallelFor(
      ran.size(), [&](size_t i) { ran[i] = std::this_thread::get_id(); },
      /*max_parallelism=*/1);
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ExecutorTest, ExceptionPropagatesAndLoopStillDrains) {
  Executor executor(2);
  std::atomic<size_t> completed{0};
  EXPECT_THROW(
      executor.ParallelFor(100,
                           [&](size_t i) {
                             if (i == 17) throw std::runtime_error("boom");
                             completed.fetch_add(1);
                           }),
      std::runtime_error);
  // Every non-throwing index still ran: no index is abandoned mid-loop.
  EXPECT_EQ(completed.load(), 99u);
}

TEST(ExecutorTest, ReusableAcrossManyCalls) {
  Executor executor(2);
  int64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<int64_t> parts(16, 0);
    executor.ParallelFor(parts.size(), [&](size_t i) {
      parts[i] = static_cast<int64_t>(i) + round;
    });
    total += std::accumulate(parts.begin(), parts.end(), int64_t{0});
  }
  // sum over rounds of (sum i) + 16 * round
  int64_t expected = 0;
  for (int round = 0; round < 200; ++round) expected += 120 + 16 * round;
  EXPECT_EQ(total, expected);
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  Executor executor(1);  // worst case: a single worker
  std::atomic<int64_t> sum{0};
  executor.ParallelFor(4, [&](size_t outer) {
    executor.ParallelFor(50, [&](size_t inner) {
      sum.fetch_add(static_cast<int64_t>(outer * 1000 + inner));
    });
  });
  int64_t expected = 0;
  for (size_t outer = 0; outer < 4; ++outer) {
    for (size_t inner = 0; inner < 50; ++inner) {
      expected += static_cast<int64_t>(outer * 1000 + inner);
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ExecutorTest, ChunksPartitionTheRangeWithFixedBoundaries) {
  Executor executor(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  executor.ParallelForChunks(103, 10, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 11u);
  size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(end - begin, 10u);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ExecutorTest, SubmitRunsTaskAndPropagatesException) {
  Executor executor(2);
  std::atomic<bool> ran{false};
  auto ok = executor.Submit([&] { ran.store(true); });
  ok.get();
  EXPECT_TRUE(ran.load());
  auto bad = executor.Submit([] { throw std::logic_error("bad task"); });
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ExecutorTest, SharedPoolIsAProcessWideSingleton) {
  Executor& a = Executor::Shared();
  Executor& b = Executor::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1);
}

TEST(ExecutorTest, EmptyLoopReturnsImmediately) {
  Executor executor(2);
  bool touched = false;
  executor.ParallelFor(0, [&](size_t) { touched = true; });
  executor.ParallelForChunks(0, 8, [&](size_t, size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ExecutorTest, ThrowingTaskDoesNotPoisonSubsequentLoops) {
  // Failure isolation: a throwing index must neither deadlock the pool
  // nor leak the exception anywhere but the submitting call; the very
  // next ParallelFor on the same pool must behave normally.
  Executor executor(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        executor.ParallelFor(
            64, [&](size_t i) { if (i % 7 == 0) throw std::runtime_error("x"); }),
        std::runtime_error);
    std::atomic<size_t> visited{0};
    executor.ParallelFor(64, [&](size_t) { visited.fetch_add(1); });
    EXPECT_EQ(visited.load(), 64u);
  }
}

TEST(ExecutorTest, ThrowingSubmittedTaskConfinesToItsFuture) {
  Executor executor(2);
  auto bad = executor.Submit([] { throw std::logic_error("task"); });
  EXPECT_THROW(bad.get(), std::logic_error);
  // The worker that ran the throwing task is still serving the queue.
  std::atomic<bool> ran{false};
  executor.Submit([&] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
  std::vector<size_t> out(32, 0);
  executor.ParallelFor(out.size(), [&](size_t i) { out[i] = i + 1; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ExecutorTest, SerialLoopAlsoDrainsPastAnException) {
  Executor executor(2);
  std::atomic<size_t> completed{0};
  RunOptions options;
  options.max_parallelism = 1;
  EXPECT_THROW(executor.ParallelFor(
                   10,
                   [&](size_t i) {
                     if (i == 3) throw std::runtime_error("serial");
                     completed.fetch_add(1);
                   },
                   options),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 9u);
}

TEST(ExecutorTest, CancelTokenSkipsRemainingIndices) {
  Executor executor(2);
  CancelToken token;
  std::atomic<size_t> completed{0};
  RunOptions options;
  options.max_parallelism = 1;  // serial: the skip point is exact
  options.cancel = &token;
  Status status = executor.ParallelFor(
      100,
      [&](size_t i) {
        completed.fetch_add(1);
        if (i == 9) token.Cancel();
      },
      options);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(completed.load(), 10u);
  EXPECT_NE(status.message().find("skipped 90 of 100"), std::string::npos)
      << status;
}

TEST(ExecutorTest, PreCancelledTokenSkipsEverything) {
  Executor executor(3);
  CancelToken token;
  token.Cancel();
  std::atomic<size_t> completed{0};
  RunOptions options;
  options.cancel = &token;
  Status status = executor.ParallelFor(
      50, [&](size_t) { completed.fetch_add(1); }, options);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(completed.load(), 0u);
}

TEST(ExecutorTest, DeadlineStopsClaimingNewIndices) {
  Executor executor(2);
  std::atomic<size_t> completed{0};
  RunOptions options;
  options.deadline = std::chrono::milliseconds(30);
  Status status = executor.ParallelFor(
      10000,
      [&](size_t) {
        completed.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      options);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status;
  // Far fewer than all indices ran, and none were abandoned mid-flight.
  EXPECT_GT(completed.load(), 0u);
  EXPECT_LT(completed.load(), 10000u);
}

TEST(ExecutorTest, OptionsWithNothingFiringReturnOk) {
  Executor executor(2);
  CancelToken token;  // never cancelled
  RunOptions options;
  options.cancel = &token;
  options.deadline = std::chrono::minutes(5);
  std::atomic<size_t> completed{0};
  Status status = executor.ParallelFor(
      128, [&](size_t) { completed.fetch_add(1); }, options);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(completed.load(), 128u);
}

TEST(ExecutorTest, PoolIsReusableAfterACancelledLoop) {
  Executor executor(2);
  CancelToken token;
  token.Cancel();
  RunOptions options;
  options.cancel = &token;
  (void)executor.ParallelFor(64, [](size_t) {}, options);
  std::atomic<size_t> visited{0};
  executor.ParallelFor(64, [&](size_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 64u);
}

// Regression: a worker's post-task metric writes happen after the task
// has already signalled its waiters, so a global context destroyed
// right after ParallelFor returns was a use-after-free until workers
// pinned the context. Tight install/run/teardown cycles make the race
// window land under TSan.
TEST(ExecutorTest, GlobalObsContextCanBeTornDownRightAfterAWait) {
  Executor executor(4);
  for (int round = 0; round < 200; ++round) {
    obs::ObsContext context;
    obs::ScopedGlobalObs scoped(&context);
    executor.ParallelFor(16, [](size_t) {});
  }
}

TEST(ExecutorTest, SubmitBeyondBusyWorkersCountsSaturation) {
  obs::ObsContext context;
  obs::ScopedGlobalObs scoped(&context);
  Executor executor(1);

  // Occupy the lone worker and wait until it has actually dequeued the
  // blocker, so everything submitted next sits in the queue.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> started{false};
  auto blocker = executor.Submit([&] {
    started.store(true);
    gate.wait();
  });
  while (!started.load()) std::this_thread::yield();

  // First waiter finds an empty queue (the blocker already left it);
  // the second finds the first still waiting — that is saturation.
  auto second = executor.Submit([] {});
  auto third = executor.Submit([] {});
  release.set_value();
  blocker.wait();
  second.wait();
  third.wait();

  const obs::MetricsSnapshot snapshot = context.metrics().Snapshot();
  EXPECT_GE(snapshot.Value(
                obs::MetricName(obs::Metric::kExecutorSaturation)),
            1);
  // The depth gauge nets out to zero once the queue drains.
  EXPECT_EQ(snapshot.Value(
                obs::MetricName(obs::Metric::kExecutorQueueDepth)),
            0);
}

TEST(ExecutorTest, SubmitRecordsQueueWaitSketch) {
  obs::ObsContext context;
  obs::ScopedGlobalObs scoped(&context);
  Executor executor(2);

  for (int i = 0; i < 32; ++i) {
    executor.Submit([] {}).wait();
  }

  const obs::MetricsSnapshot snapshot = context.metrics().Snapshot();
  const obs::MetricsSnapshot::Entry* wait = snapshot.Find(
      obs::MetricName(obs::Metric::kExecutorQueueWaitNs));
  ASSERT_NE(wait, nullptr);
  // Every submitted task records its enqueue->dequeue wait, so the
  // sketch count matches the task count even with zero saturation.
  EXPECT_EQ(wait->sketch.count(), 32);
  EXPECT_GE(wait->sketch.Quantile(0.5), 0);
  EXPECT_GE(wait->sketch.max(), wait->sketch.Quantile(0.5));
}

}  // namespace
}  // namespace logmine
