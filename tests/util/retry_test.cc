#include "util/retry.h"

#include <vector>

#include <gtest/gtest.h>

namespace logmine {
namespace {

SleepFn Recorder(std::vector<int64_t>* delays) {
  return [delays](int64_t ms) { delays->push_back(ms); };
}

TEST(RetryTest, FirstTrySuccessNeverSleeps) {
  std::vector<int64_t> delays;
  RetryStats stats;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, "op", [] { return Status::OK(); }, &stats,
      Recorder(&delays));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.total_backoff_ms, 0);
  EXPECT_TRUE(delays.empty());
}

TEST(RetryTest, TransientFailureRetriesUntilSuccess) {
  int calls = 0;
  std::vector<int64_t> delays;
  RetryStats stats;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, "op",
      [&] {
        ++calls;
        return calls < 3 ? Status::Internal("transient") : Status::OK();
      },
      &stats, Recorder(&delays));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(delays.size(), 2u);
}

TEST(RetryTest, NonRetryableCodeFailsImmediately) {
  for (Status failure :
       {Status::InvalidArgument("bad"), Status::FailedPrecondition("pre"),
        Status::ParseError("parse"), Status::NotFound("gone"),
        Status::Cancelled("stop")}) {
    int calls = 0;
    std::vector<int64_t> delays;
    const Status status = RetryWithBackoff(
        RetryPolicy{}, "op",
        [&] {
          ++calls;
          return failure;
        },
        nullptr, Recorder(&delays));
    EXPECT_EQ(status, failure);
    EXPECT_EQ(calls, 1) << failure.ToString();
    EXPECT_TRUE(delays.empty());
  }
}

TEST(RetryTest, ExhaustedAttemptsReturnLastStatus) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  std::vector<int64_t> delays;
  RetryStats stats;
  const Status status = RetryWithBackoff(
      policy, "op",
      [&] {
        ++calls;
        return Status::Internal("always " + std::to_string(calls));
      },
      &stats, Recorder(&delays));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "always 4");
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(stats.attempts, 4);
}

TEST(RetryTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_ms = 100;
  policy.jitter = 0.0;
  std::vector<int64_t> delays;
  (void)RetryWithBackoff(
      policy, "op", [] { return Status::Internal("x"); }, nullptr,
      Recorder(&delays));
  // 10, 30, 90, then capped at 100.
  ASSERT_EQ(delays.size(), 4u);
  EXPECT_EQ(delays[0], 10);
  EXPECT_EQ(delays[1], 30);
  EXPECT_EQ(delays[2], 90);
  EXPECT_EQ(delays[3], 100);
}

TEST(RetryTest, JitterIsDeterministicInSeedAndOpName) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.jitter = 0.5;
  auto run = [&policy](std::string_view name) {
    std::vector<int64_t> delays;
    (void)RetryWithBackoff(
        policy, name, [] { return Status::Internal("x"); }, nullptr,
        Recorder(&delays));
    return delays;
  };
  // Same seed + op name => identical delays; distinct op names draw
  // from independent streams.
  const std::vector<int64_t> original = run("alpha");
  EXPECT_EQ(original, run("alpha"));
  EXPECT_NE(original, run("beta"));

  policy.seed ^= 0x1234;
  EXPECT_NE(original, run("alpha")) << "seed change must move jitter";
}

TEST(RetryTest, JitterStaysWithinPolicyBounds) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 100;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ms = 100;
  policy.jitter = 0.25;
  std::vector<int64_t> delays;
  (void)RetryWithBackoff(
      policy, "bounds", [] { return Status::Internal("x"); }, nullptr,
      Recorder(&delays));
  ASSERT_EQ(delays.size(), 9u);
  for (int64_t ms : delays) {
    EXPECT_GE(ms, 75);
    EXPECT_LT(ms, 125);
  }
}

TEST(RetryTest, PredicateHookWidensTheRetryableClass) {
  // A caller-installed predicate can treat kDeadlineExceeded as
  // transient (the shard supervisor's view of a tripped per-shard
  // deadline) — the default classification never retries it.
  RetryPolicy policy;
  policy.retryable = [](StatusCode code) {
    return code == StatusCode::kInternal ||
           code == StatusCode::kDeadlineExceeded;
  };
  int calls = 0;
  std::vector<int64_t> delays;
  const Status status = RetryWithBackoff(
      policy, "op",
      [&] {
        ++calls;
        return calls < 3 ? Status::DeadlineExceeded("straggler")
                         : Status::OK();
      },
      nullptr, Recorder(&delays));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(delays.size(), 2u);
}

TEST(RetryTest, PredicateHookCanNarrowToNothing) {
  RetryPolicy policy;
  policy.retryable = [](StatusCode) { return false; };
  int calls = 0;
  std::vector<int64_t> delays;
  const Status status = RetryWithBackoff(
      policy, "op",
      [&] {
        ++calls;
        return Status::Internal("would have been retryable");
      },
      nullptr, Recorder(&delays));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(delays.empty());
}

TEST(RetryTest, UnsetPredicateKeepsTheDefaultClassification) {
  // Snapshot I/O's behavior must be unchanged: kInternal retries,
  // kDeadlineExceeded does not.
  RetryPolicy policy;  // no predicate installed
  std::vector<int64_t> delays;
  int internal_calls = 0;
  (void)RetryWithBackoff(
      policy, "op",
      [&] {
        ++internal_calls;
        return Status::Internal("x");
      },
      nullptr, Recorder(&delays));
  EXPECT_EQ(internal_calls, policy.max_attempts);

  int deadline_calls = 0;
  const Status status = RetryWithBackoff(
      policy, "op",
      [&] {
        ++deadline_calls;
        return Status::DeadlineExceeded("x");
      },
      nullptr, Recorder(&delays));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline_calls, 1);
}

TEST(RetryTest, ZeroAndNegativeMaxAttemptsStillRunOnce) {
  for (int max_attempts : {0, -3}) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    int calls = 0;
    std::vector<int64_t> delays;
    const Status status = RetryWithBackoff(
        policy, "op",
        [&] {
          ++calls;
          return Status::Internal("x");
        },
        nullptr, Recorder(&delays));
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(calls, 1);
  }
}

}  // namespace
}  // namespace logmine
