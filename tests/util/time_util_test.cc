#include "util/time_util.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(CivilTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(TimeFromCivil({.year = 1970, .month = 1, .day = 1}), 0);
}

TEST(CivilTest, KnownDates) {
  // 2005-12-06 (the paper's first test day) is day 13123 since the epoch.
  EXPECT_EQ(DaysFromCivil(2005, 12, 6), 13123);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

TEST(CivilTest, RoundTripThroughDays) {
  for (int64_t days : {-1000, -1, 0, 1, 13123, 20000, 100000}) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days) << days;
  }
}

TEST(CivilTest, LeapYearHandling) {
  int y, m, d;
  CivilFromDays(DaysFromCivil(2004, 2, 29), &y, &m, &d);
  EXPECT_EQ(y, 2004);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
  // 2000 is a leap year (divisible by 400), 1900 is not.
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
}

TEST(CivilTest, TimeRoundTrip) {
  const CivilTime civil{.year = 2005, .month = 12, .day = 12, .hour = 23,
                        .minute = 59, .second = 59, .millisecond = 999};
  const CivilTime back = CivilFromTime(TimeFromCivil(civil));
  EXPECT_EQ(back.year, 2005);
  EXPECT_EQ(back.month, 12);
  EXPECT_EQ(back.day, 12);
  EXPECT_EQ(back.hour, 23);
  EXPECT_EQ(back.minute, 59);
  EXPECT_EQ(back.second, 59);
  EXPECT_EQ(back.millisecond, 999);
}

TEST(CivilTest, NegativeTimesBeforeEpoch) {
  const CivilTime civil = CivilFromTime(-1);
  EXPECT_EQ(civil.year, 1969);
  EXPECT_EQ(civil.month, 12);
  EXPECT_EQ(civil.day, 31);
  EXPECT_EQ(civil.hour, 23);
  EXPECT_EQ(civil.millisecond, 999);
}

TEST(DayOfWeekTest, KnownDays) {
  // 1970-01-01 was a Thursday (index 3, Monday = 0).
  EXPECT_EQ(DayOfWeek(0), 3);
  // 2005-12-06 was a Tuesday; 2005-12-10 a Saturday; 2005-12-11 a Sunday.
  const TimeMs dec6 = TimeFromCivil({.year = 2005, .month = 12, .day = 6});
  EXPECT_EQ(DayOfWeek(dec6), 1);
  EXPECT_FALSE(IsWeekend(dec6));
  EXPECT_TRUE(IsWeekend(dec6 + 4 * kMillisPerDay));
  EXPECT_TRUE(IsWeekend(dec6 + 5 * kMillisPerDay));
  EXPECT_FALSE(IsWeekend(dec6 + 6 * kMillisPerDay));
}

TEST(HourOfDayTest, WrapsCorrectly) {
  const TimeMs dec6 = TimeFromCivil({.year = 2005, .month = 12, .day = 6});
  EXPECT_EQ(HourOfDay(dec6), 0);
  EXPECT_EQ(HourOfDay(dec6 + 13 * kMillisPerHour + 5), 13);
  EXPECT_EQ(HourOfDay(dec6 - 1), 23);
}

TEST(StartOfDayTest, TruncatesToMidnight) {
  const TimeMs dec6 = TimeFromCivil({.year = 2005, .month = 12, .day = 6});
  EXPECT_EQ(StartOfDay(dec6 + 5 * kMillisPerHour + 123), dec6);
  EXPECT_EQ(StartOfDay(dec6), dec6);
}

TEST(FormatTest, FormatsMilliseconds) {
  const TimeMs t = TimeFromCivil({.year = 2005, .month = 12, .day = 6,
                                  .hour = 8, .minute = 1, .second = 2,
                                  .millisecond = 34});
  EXPECT_EQ(FormatTime(t), "2005-12-06 08:01:02.034");
  EXPECT_EQ(FormatDate(t), "2005-12-06");
}

TEST(ParseTest, RoundTripsFormat) {
  const TimeMs t = TimeFromCivil({.year = 2005, .month = 12, .day = 12,
                                  .hour = 23, .minute = 45, .second = 6,
                                  .millisecond = 789});
  auto parsed = ParseTime(FormatTime(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), t);
}

TEST(ParseTest, AcceptsBareDateAndNoMillis) {
  auto date_only = ParseTime("2005-12-06");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(date_only.value(),
            TimeFromCivil({.year = 2005, .month = 12, .day = 6}));
  auto no_ms = ParseTime("2005-12-06 08:00:05");
  ASSERT_TRUE(no_ms.ok());
  EXPECT_EQ(HourOfDay(no_ms.value()), 8);
}

TEST(ParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTime("not a time").ok());
  EXPECT_FALSE(ParseTime("2005-13-06").ok());
  EXPECT_FALSE(ParseTime("2005-12-32").ok());
  EXPECT_FALSE(ParseTime("2005-12-06 25:00:00").ok());
  EXPECT_FALSE(ParseTime("2005-12-06 10:61:00").ok());
}

}  // namespace
}  // namespace logmine
