#include "util/snapshot.h"

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace logmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Crc32Test, KnownVectors) {
  // The zlib/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(SnapshotTest, RoundTripsEveryPrimitive) {
  SnapshotWriter w;
  w.BeginSection("prims");
  w.PutU32(42);
  w.PutU64(0xDEADBEEFCAFEF00DULL);
  w.PutI64(-12345678901234LL);
  w.PutDouble(3.25);
  w.PutBool(true);
  w.PutBool(false);
  w.PutString("hello snapshot");
  w.PutString("");
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader.value().version(), kSnapshotVersion);
  auto cursor = reader.value().Section("prims");
  ASSERT_TRUE(cursor.ok());
  SectionCursor& c = cursor.value();
  EXPECT_EQ(c.ReadU32().value(), 42u);
  EXPECT_EQ(c.ReadU64().value(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(c.ReadI64().value(), -12345678901234LL);
  EXPECT_EQ(c.ReadDouble().value(), 3.25);
  EXPECT_TRUE(c.ReadBool().value());
  EXPECT_FALSE(c.ReadBool().value());
  EXPECT_EQ(c.ReadString().value(), "hello snapshot");
  EXPECT_EQ(c.ReadString().value(), "");
  EXPECT_TRUE(c.ExpectEnd().ok());
}

TEST(SnapshotTest, MultipleSectionsAddressableByName) {
  SnapshotWriter w;
  w.BeginSection("first");
  w.PutU32(1);
  w.EndSection();
  w.BeginSection("second");
  w.PutU32(2);
  w.EndSection();
  w.BeginSection("empty");
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE(reader.value().HasSection("first"));
  EXPECT_TRUE(reader.value().HasSection("empty"));
  EXPECT_FALSE(reader.value().HasSection("third"));
  EXPECT_EQ(reader.value().Section("second").value().ReadU32().value(), 2u);
  EXPECT_EQ(reader.value().Section("first").value().ReadU32().value(), 1u);
  EXPECT_EQ(reader.value().Section("empty").value().remaining(), 0u);
  EXPECT_EQ(reader.value().Section("third").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, TruncationAnywhereIsRejected) {
  SnapshotWriter w;
  w.BeginSection("data");
  for (int i = 0; i < 100; ++i) w.PutU64(static_cast<uint64_t>(i));
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  // Every strict prefix must fail to parse — no truncation point may
  // yield a valid snapshot.
  for (size_t len : {size_t{0}, size_t{7}, size_t{15}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto reader = SnapshotReader::Parse(bytes.substr(0, len));
    EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SnapshotTest, BitFlipAnywhereIsRejected) {
  SnapshotWriter w;
  w.BeginSection("data");
  w.PutString("payload payload payload");
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    auto reader = SnapshotReader::Parse(corrupt);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << i << " parsed";
  }
}

TEST(SnapshotTest, VersionMismatchIsFailedPrecondition) {
  SnapshotWriter w(kSnapshotVersion + 1);
  w.BeginSection("data");
  w.PutU32(7);
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  // The same bytes parse fine when the reader expects that version.
  EXPECT_TRUE(SnapshotReader::Parse(bytes, kSnapshotVersion + 1).ok());
}

TEST(SnapshotTest, CursorNeverReadsPastSectionEnd) {
  SnapshotWriter w;
  w.BeginSection("small");
  w.PutU32(9);
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  SectionCursor c = reader.value().Section("small").value();
  EXPECT_TRUE(c.ReadU32().ok());
  EXPECT_EQ(c.ReadU64().status().code(), StatusCode::kParseError);
  EXPECT_EQ(c.ReadString().status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, StringLengthBeyondPayloadIsRejected) {
  SnapshotWriter w;
  w.BeginSection("s");
  w.PutU64(1000);  // a string length prefix with no bytes behind it
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  SectionCursor c = reader.value().Section("s").value();
  EXPECT_EQ(c.ReadString().status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, ExpectEndFlagsUndecodedBytes) {
  SnapshotWriter w;
  w.BeginSection("s");
  w.PutU32(1);
  w.PutU32(2);
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  SectionCursor c = reader.value().Section("s").value();
  EXPECT_TRUE(c.ReadU32().ok());
  EXPECT_EQ(c.ExpectEnd().code(), StatusCode::kParseError);
}

TEST(SnapshotFileTest, WriteReadRoundTrip) {
  SnapshotWriter w;
  w.BeginSection("file");
  w.PutString("on disk");
  w.EndSection();
  const std::string bytes = std::move(w).Finish();

  const std::string path = TempPath("snapshot_roundtrip.snap");
  ASSERT_TRUE(WriteSnapshotFile(path, bytes).ok());
  // The tmp file is gone after the rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  auto reader = SnapshotReader::Parse(read.value());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Section("file").value().ReadString().value(),
            "on disk");
  std::filesystem::remove(path);
}

TEST(SnapshotFileTest, MissingFileIsNotFound) {
  auto read = ReadFileToString(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFileTest, UnwritableDirectoryIsInternal) {
  const Status status =
      WriteSnapshotFile(TempPath("no/such/dir/x.snap"), "bytes");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace logmine
