#include "util/wildcard.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace logmine {
namespace {

// The compiled matcher must agree with the reference backtracking
// matcher on every input — it is a pure compilation of the same
// semantics.
void ExpectAgreement(const std::string& pattern, const std::string& text) {
  const CompiledWildcard compiled(pattern);
  EXPECT_EQ(compiled.Matches(text), WildcardMatch(pattern, text))
      << "pattern=\"" << pattern << "\" text=\"" << text << "\"";
}

TEST(CompiledWildcardTest, AnchorsAndInfixes) {
  ExpectAgreement("Received call *", "Received call foo");
  ExpectAgreement("Received call *", "Received call ");
  ExpectAgreement("Received call *", "received call foo");
  ExpectAgreement("*keepalive*", "sent keepalive ping");
  ExpectAgreement("*keepalive*", "keepalive");
  ExpectAgreement("*keepalive*", "keep alive");
  ExpectAgreement("serve *<-*", "serve request <- worker 3");
  ExpectAgreement("serve *<-*", "serve request -> worker 3");
  ExpectAgreement("ACK *", "ACK 123");
  ExpectAgreement("ACK *", "NACK 123");
}

TEST(CompiledWildcardTest, EdgeCases) {
  ExpectAgreement("", "");
  ExpectAgreement("", "x");
  ExpectAgreement("*", "");
  ExpectAgreement("*", "anything");
  ExpectAgreement("**", "anything");
  ExpectAgreement("?", "");
  ExpectAgreement("?", "a");
  ExpectAgreement("?", "ab");
  ExpectAgreement("a?c", "abc");
  ExpectAgreement("a?c", "ac");
  ExpectAgreement("a?c", "axxc");
  ExpectAgreement("abc", "abc");
  ExpectAgreement("abc", "abcd");
  ExpectAgreement("abc", "ab");
}

TEST(CompiledWildcardTest, OverlapTraps) {
  // Head/middle/tail segments must not overlap each other in the text.
  ExpectAgreement("aa*aa", "aaa");
  ExpectAgreement("aa*aa", "aaaa");
  ExpectAgreement("aa*aa", "aaaaa");
  ExpectAgreement("ab*ab", "abab");
  ExpectAgreement("ab*ab", "abcab");
  ExpectAgreement("ab*ab", "abc");
  ExpectAgreement("*aba*aba*", "abaaba");
  ExpectAgreement("*aba*aba*", "abaxaba");
  ExpectAgreement("*aba*aba*", "ababa");  // middles may not overlap
  ExpectAgreement("a*a?a", "aaa");
  ExpectAgreement("a*a?a", "aaaa");
  ExpectAgreement("a*b*c", "abc");
  ExpectAgreement("a*b*c", "acb");
}

TEST(CompiledWildcardTest, FuzzAgainstReferenceMatcher) {
  // Random patterns over {a, b, *, ?} against random texts over {a, b}:
  // small alphabets maximize collisions, stars and overlaps.
  Rng rng(20051206);
  const char pattern_alphabet[] = {'a', 'b', '*', '?'};
  const char text_alphabet[] = {'a', 'b'};
  for (int round = 0; round < 20000; ++round) {
    std::string pattern;
    const int64_t pattern_len = rng.UniformInt(0, 8);
    for (int64_t i = 0; i < pattern_len; ++i) {
      pattern += pattern_alphabet[rng.UniformInt(0, 3)];
    }
    std::string text;
    const int64_t text_len = rng.UniformInt(0, 10);
    for (int64_t i = 0; i < text_len; ++i) {
      text += text_alphabet[rng.UniformInt(0, 1)];
    }
    const CompiledWildcard compiled(pattern);
    ASSERT_EQ(compiled.Matches(text), WildcardMatch(pattern, text))
        << "pattern=\"" << pattern << "\" text=\"" << text << "\"";
  }
}

TEST(WildcardSetTest, MatchesAnyMirrorsTheStopPatternLoop) {
  const std::vector<std::string> patterns = {
      "Received call *",
      "*incoming request*",
      "ACK *",
  };
  const WildcardSet set(patterns);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.MatchesAny("Received call transfer"));
  EXPECT_TRUE(set.MatchesAny("queued incoming request #4"));
  EXPECT_TRUE(set.MatchesAny("ACK 99"));
  EXPECT_FALSE(set.MatchesAny("calling BillingService"));
  EXPECT_FALSE(set.MatchesAny(""));
}

TEST(WildcardSetTest, FirstByteGateNeverFalseNegative) {
  // The gate only skips a pattern when its anchored literal first byte
  // cannot match; '?'-led and '*'-led patterns must not be gated.
  const CompiledWildcard anchored("Received *");
  EXPECT_EQ(anchored.first_byte_gate(), 'R');
  const CompiledWildcard question("?CK *");
  EXPECT_EQ(question.first_byte_gate(), '\0');
  const CompiledWildcard floating("*ACK*x");
  EXPECT_EQ(floating.first_byte_gate(), '\0');

  const WildcardSet set({"Received *", "?CK *", "*conn* lost"});
  EXPECT_TRUE(set.MatchesAny("Received call"));
  EXPECT_FALSE(set.MatchesAny("received call"));  // gate is case-exact
  EXPECT_TRUE(set.MatchesAny("ACK 99"));
  EXPECT_TRUE(set.MatchesAny("xCK !"));
  EXPECT_TRUE(set.MatchesAny("the connection lost"));
  EXPECT_FALSE(set.MatchesAny(""));
}

TEST(WildcardSetTest, NonInfixAndInfixSplitCoversMatchesAny) {
  // MatchesAny == MatchesAnyNonInfix || (some position passes
  // InfixMatchesAt); the fused L3 scan relies on exactly this split.
  const WildcardSet set({"Received *", "*keepalive*", "*incoming call*"});
  const std::vector<std::string> texts = {
      "Received ping",       "sent keepalive now", "an incoming call here",
      "incoming callx",      "keepaliv",           "",
      "Receive",             "xkeepalive",         "KEEPALIVE"};
  for (const std::string& text : texts) {
    bool infix_hit = false;
    for (size_t pos = 0; pos < text.size() && !infix_hit; ++pos) {
      infix_hit = set.InfixMatchesAt(text, pos);
    }
    EXPECT_EQ(set.MatchesAny(text), set.MatchesAnyNonInfix(text) || infix_hit)
        << "text=\"" << text << "\"";
  }
  EXPECT_FALSE(set.MatchesAnyNonInfix("sent keepalive now"));
  EXPECT_TRUE(set.InfixMatchesAt("sent keepalive now", 5));
  EXPECT_FALSE(set.InfixMatchesAt("sent keepalive now", 6));
}

}  // namespace
}  // namespace logmine
