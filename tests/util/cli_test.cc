#include "util/cli.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

CliFlags ParseOrDie(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  CliFlags flags;
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(s.ok()) << s;
  return flags;
}

TEST(CliFlagsTest, ParsesNameValuePairs) {
  CliFlags flags = ParseOrDie({"--scale=0.5", "--days=3", "--name=hug"});
  EXPECT_TRUE(flags.Has("scale"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("days", 7), 3);
  EXPECT_EQ(flags.GetString("name", ""), "hug");
}

TEST(CliFlagsTest, BareFlagIsTrue) {
  CliFlags flags = ParseOrDie({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(CliFlagsTest, FallbacksWhenAbsent) {
  CliFlags flags = ParseOrDie({});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(flags.GetString("missing", "def"), "def");
  EXPECT_TRUE(flags.GetBool("missing", true));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(CliFlagsTest, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  CliFlags flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(CliFlagsTest, RejectsShortOptions) {
  const char* argv[] = {"prog", "-x"};
  CliFlags flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(CliFlagsTest, MalformedNumbersFallBack) {
  CliFlags flags = ParseOrDie({"--n=abc", "--d=1.2.3"});
  EXPECT_EQ(flags.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 7.0), 7.0);
}

TEST(CliFlagsTest, BoolSpellings) {
  CliFlags flags = ParseOrDie({"--a=TRUE", "--b=0", "--c=Yes", "--d=no",
                               "--e=weird"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // unparseable -> fallback
}

TEST(CliFlagsTest, ValueMayContainEquals) {
  CliFlags flags = ParseOrDie({"--expr=a=b"});
  EXPECT_EQ(flags.GetString("expr", ""), "a=b");
}

TEST(CliFlagsTest, LastValueWins) {
  CliFlags flags = ParseOrDie({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0), 2);
}

}  // namespace
}  // namespace logmine
