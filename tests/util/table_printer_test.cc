#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"day", "#logs"});
  table.AddRow({"06", "10.3"});
  table.AddRow({"07", "9.4"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("day | #logs"), std::string::npos);
  EXPECT_NE(out.find("06  | 10.3"), std::string::npos);
  EXPECT_NE(out.find("07  | 9.4"), std::string::npos);
}

TEST(TablePrinterTest, HeaderSeparatorPresent) {
  TablePrinter table({"a"});
  table.AddRow({"x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
  // Must not crash and must still render 1 row + header.
  const std::string out = table.ToString();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TablePrinterTest, LongRowsWidenTable) {
  TablePrinter table({"a"});
  table.AddRow({"1", "2", "3"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("1 | 2 | 3"), std::string::npos);
}

TEST(TablePrinterTest, HeaderlessTable) {
  TablePrinter table({});
  table.AddRow({"x", "y"});
  const std::string out = table.ToString();
  EXPECT_EQ(out, "x | y\n");
}

TEST(TablePrinterTest, EmptyTableRendersNothing) {
  TablePrinter table({});
  EXPECT_EQ(table.ToString(), "");
}

TEST(AsciiBarTest, FullAndEmpty) {
  EXPECT_EQ(AsciiBar(10, 10, 4), "####");
  EXPECT_EQ(AsciiBar(0, 10, 4), "....");
}

TEST(AsciiBarTest, ProportionalFill) {
  EXPECT_EQ(AsciiBar(5, 10, 10), "#####.....");
}

TEST(AsciiBarTest, ClampsOutOfRange) {
  EXPECT_EQ(AsciiBar(15, 10, 4), "####");
  EXPECT_EQ(AsciiBar(-3, 10, 4), "....");
  EXPECT_EQ(AsciiBar(1, 0, 4), "");
  EXPECT_EQ(AsciiBar(1, 10, 0), "");
}

}  // namespace
}  // namespace logmine
