#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<std::string> ok(std::string("hello"));
  Result<std::string> bad(Status::Internal("x"));
  EXPECT_EQ(ok.value_or("fallback"), "hello");
  EXPECT_EQ(bad.value_or("fallback"), "fallback");
}

TEST(ResultTest, MoveOnlyValueCanBeExtracted) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(*extracted, 7);
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "def";
  EXPECT_EQ(r.value(), "abcdef");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LOGMINE_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  // 6 / 2 = 3, which is odd -> the inner error propagates.
  Result<int> bad = Quarter(6);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace logmine
