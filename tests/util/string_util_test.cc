#include "util/string_util.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a||b", '|'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("|", '|'), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "", "yz", "w"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("DPINotifier-42"), "dpinotifier-42");
  EXPECT_EQ(ToLower(""), "");
}

TEST(EqualsIgnoreCaseTest, Basics) {
  EXPECT_TRUE(EqualsIgnoreCase("UPSRV2", "upsrv2"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("UPSRV", "UPSRV2"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(WildcardMatchTest, LiteralMatch) {
  EXPECT_TRUE(WildcardMatch("abc", "abc"));
  EXPECT_FALSE(WildcardMatch("abc", "abd"));
  EXPECT_FALSE(WildcardMatch("abc", "ab"));
}

TEST(WildcardMatchTest, StarSemantics) {
  EXPECT_TRUE(WildcardMatch("*", ""));
  EXPECT_TRUE(WildcardMatch("*", "anything"));
  EXPECT_TRUE(WildcardMatch("Received call *", "Received call notify from x"));
  EXPECT_FALSE(WildcardMatch("Received call *", "a Received call notify"));
  EXPECT_TRUE(WildcardMatch("*incoming request*", "x incoming request y"));
  EXPECT_TRUE(WildcardMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(WildcardMatch("a*b*c", "aXXcYYb"));
}

TEST(WildcardMatchTest, QuestionMark) {
  EXPECT_TRUE(WildcardMatch("a?c", "abc"));
  EXPECT_FALSE(WildcardMatch("a?c", "ac"));
  EXPECT_TRUE(WildcardMatch("??", "ab"));
}

TEST(WildcardMatchTest, BacktrackingCase) {
  // Requires re-expanding the first '*' after a failed tail match.
  EXPECT_TRUE(WildcardMatch("*abc", "ababc"));
  EXPECT_TRUE(WildcardMatch("serve *<-*", "serve DPIX.notify <- ws-004"));
}

TEST(WildcardMatchTest, PathologicalBacktrackingTerminatesQuickly) {
  // The classic exponential-blowup input for naive recursive matchers;
  // the iterative matcher must answer (false) essentially instantly.
  const std::string text(200, 'a');
  std::string pattern;
  for (int i = 0; i < 30; ++i) pattern += "a*";
  pattern += "b";
  EXPECT_FALSE(WildcardMatch(pattern, text));
  pattern.pop_back();
  EXPECT_TRUE(WildcardMatch(pattern, text));
}

TEST(TokenizeIdentifiersTest, SplitsOnNonIdentifierChars) {
  const auto tokens =
      TokenizeIdentifiers("Invoke [fct [notify] srv.hug.ch:9980/upsrv2]");
  const std::vector<std::string_view> expected = {
      "Invoke", "fct", "notify", "srv", "hug", "ch", "9980", "upsrv2"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeIdentifiersTest, UnderscoresArePartOfTokens) {
  const auto tokens = TokenizeIdentifiers("a_b-c");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "a_b");
  EXPECT_EQ(tokens[1], "c");
}

TEST(TokenizeIdentifiersTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeIdentifiers("").empty());
  EXPECT_TRUE(TokenizeIdentifiers("... !! ::").empty());
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(ReplaceAllTest, Basics) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("xyz", "q", "r"), "xyz");
  EXPECT_EQ(ReplaceAll("abc", "", "r"), "abc");  // empty needle is a no-op
}

}  // namespace
}  // namespace logmine
