#include "simulation/clock_skew.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

TEST(ClockSkewTest, NtpHostsWithinOneMillisecond) {
  ClockSkewModel model(42);
  for (int day = 0; day < 7; ++day) {
    const TimeMs skew = model.SkewFor("srv01.hug.ch", false, day);
    EXPECT_LE(std::abs(skew), 1);
  }
}

TEST(ClockSkewTest, NtServersWithinOneSecond) {
  // §4.2: "we have verified that deviation ... is less than 1 sec".
  ClockSkewModel model(42);
  for (int host = 0; host < 50; ++host) {
    for (int day = 0; day < 7; ++day) {
      const TimeMs skew = model.SkewFor(
          "ntsrv" + std::to_string(host), true, day);
      EXPECT_LT(std::abs(skew), 1000);
    }
  }
}

TEST(ClockSkewTest, WorkstationsMayExceedServersButStayBounded) {
  ClockSkewModel model(42);
  TimeMs max_abs = 0;
  for (int ws = 0; ws < 200; ++ws) {
    const TimeMs skew =
        model.SkewFor("ws-" + std::to_string(ws), true, 0);
    max_abs = std::max<TimeMs>(max_abs, std::abs(skew));
    EXPECT_LE(std::abs(skew), 1800);
  }
  EXPECT_GT(max_abs, 1000);  // some workstations drift beyond the servers
}

TEST(ClockSkewTest, StableWithinDayDriftsAcrossDays) {
  ClockSkewModel model(7);
  const TimeMs day0 = model.SkewFor("ws-001", true, 0);
  EXPECT_EQ(model.SkewFor("ws-001", true, 0), day0);  // deterministic
  bool drifted = false;
  for (int day = 1; day < 7; ++day) {
    if (model.SkewFor("ws-001", true, day) != day0) drifted = true;
  }
  EXPECT_TRUE(drifted);
}

TEST(ClockSkewTest, DistinctHostsDistinctSkews) {
  ClockSkewModel model(7);
  int distinct = 0;
  const TimeMs base = model.SkewFor("ws-000", true, 0);
  for (int ws = 1; ws < 20; ++ws) {
    if (model.SkewFor("ws-" + std::to_string(ws), true, 0) != base) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 18);
}

TEST(ClockSkewTest, SeedChangesSkews) {
  ClockSkewModel a(1), b(2);
  int differing = 0;
  for (int ws = 0; ws < 20; ++ws) {
    const std::string host = "ws-" + std::to_string(ws);
    if (a.SkewFor(host, true, 0) != b.SkewFor(host, true, 0)) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST(ClockSkewTest, BufferDelayPositiveAndQuantized) {
  ClockSkewModel model(11);
  for (TimeMs t = 0; t < 100000; t += 7777) {
    const TimeMs delay = model.BufferDelayFor("ws-001", t);
    EXPECT_GT(delay, 0);
    EXPECT_LT(delay, 5100);  // max cycle + network
  }
}

TEST(ClockSkewTest, BufferDelayAlignsToFlushBoundary) {
  // Two messages shortly before the same flush must be received at
  // (nearly) the same wall time.
  ClockSkewModel model(13);
  const TimeMs t1 = 100000;
  const TimeMs t2 = t1 + 1;
  const TimeMs r1 = t1 + model.BufferDelayFor("ws-001", t1);
  const TimeMs r2 = t2 + model.BufferDelayFor("ws-001", t2);
  EXPECT_LE(std::abs(r1 - r2), 40);  // same flush, network jitter only
}

}  // namespace
}  // namespace logmine::sim
