#include "simulation/simulator.h"

#include <gtest/gtest.h>

#include "simulation/hug_scenario.h"

namespace logmine::sim {
namespace {

// A small, fast configuration shared by the suite.
SimulationConfig SmallConfig(int days = 2, double scale = 0.05) {
  SimulationConfig config;
  config.num_days = days;
  config.scale = scale;
  return config;
}

class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HugScenarioConfig config;
    auto built = BuildHugScenario(config);
    ASSERT_TRUE(built.ok());
    scenario_ = new HugScenario(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static HugScenario* scenario_;
};

HugScenario* SimulatorTest::scenario_ = nullptr;

TEST_F(SimulatorTest, GeneratesLogsWithBuiltIndex) {
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig());
  LogStore store;
  SimulationSummary summary;
  ASSERT_TRUE(simulator.Run(&store, &summary).ok());
  EXPECT_GT(store.size(), 10000u);
  EXPECT_TRUE(store.index_built());
  EXPECT_EQ(summary.total_logs, static_cast<int64_t>(store.size()));
  EXPECT_EQ(summary.logs_per_day.size(), 2u);
  EXPECT_GT(summary.num_identified_sessions, 0);
  EXPECT_GT(summary.num_anonymous_executions, 0);
  EXPECT_GT(summary.num_batch_executions, 0);
}

TEST_F(SimulatorTest, AllSourcesAreKnownApplications) {
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig(1));
  LogStore store;
  ASSERT_TRUE(simulator.Run(&store, nullptr).ok());
  for (size_t s = 0; s < store.num_sources(); ++s) {
    EXPECT_GE(scenario_->topology.FindApp(
                  store.source_name(static_cast<uint32_t>(s))),
              0)
        << store.source_name(static_cast<uint32_t>(s));
  }
  // Every application logs something, even at small scale.
  EXPECT_EQ(store.num_sources(), scenario_->topology.apps.size());
}

TEST_F(SimulatorTest, DeterministicForSameSeed) {
  LogStore a, b;
  SimulationSummary sa, sb;
  Simulator s1(scenario_->topology, scenario_->directory, SmallConfig(1));
  ASSERT_TRUE(s1.Run(&a, &sa).ok());
  Simulator s2(scenario_->topology, scenario_->directory, SmallConfig(1));
  ASSERT_TRUE(s2.Run(&b, &sb).ok());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(sa.context_logs, sb.context_logs);
  for (size_t i = 0; i < std::min<size_t>(a.size(), 500); ++i) {
    EXPECT_EQ(a.client_ts(i), b.client_ts(i));
    EXPECT_EQ(a.message(i), b.message(i));
  }
}

TEST_F(SimulatorTest, SeedChangesTheCorpus) {
  SimulationConfig config = SmallConfig(1);
  config.seed = 777;
  LogStore a, b;
  Simulator s1(scenario_->topology, scenario_->directory, SmallConfig(1));
  ASSERT_TRUE(s1.Run(&a, nullptr).ok());
  Simulator s2(scenario_->topology, scenario_->directory, config);
  ASSERT_TRUE(s2.Run(&b, nullptr).ok());
  EXPECT_NE(a.size(), b.size());
}

TEST_F(SimulatorTest, VolumeScalesRoughlyLinearly) {
  LogStore small, large;
  Simulator s1(scenario_->topology, scenario_->directory,
               SmallConfig(1, 0.05));
  ASSERT_TRUE(s1.Run(&small, nullptr).ok());
  Simulator s2(scenario_->topology, scenario_->directory,
               SmallConfig(1, 0.15));
  ASSERT_TRUE(s2.Run(&large, nullptr).ok());
  const double ratio =
      static_cast<double>(large.size()) / static_cast<double>(small.size());
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(SimulatorTest, WeekendVolumeDips) {
  // Days 5 and 6 of the default start (2005-12-10/11) fall on a weekend.
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig(7, 0.05));
  LogStore store;
  SimulationSummary summary;
  ASSERT_TRUE(simulator.Run(&store, &summary).ok());
  const double weekday_mean =
      static_cast<double>(summary.logs_per_day[0] + summary.logs_per_day[1] +
                          summary.logs_per_day[2] + summary.logs_per_day[3] +
                          summary.logs_per_day[6]) /
      5.0;
  const double weekend_mean =
      static_cast<double>(summary.logs_per_day[4] + summary.logs_per_day[5]) /
      2.0;
  EXPECT_LT(weekend_mean, 0.6 * weekday_mean);
  EXPECT_GT(weekend_mean, 0.2 * weekday_mean);
}

TEST_F(SimulatorTest, ContextFractionInPaperBand) {
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig(2, 0.3));
  LogStore store;
  SimulationSummary summary;
  ASSERT_TRUE(simulator.Run(&store, &summary).ok());
  const double fraction = static_cast<double>(summary.context_logs) /
                          static_cast<double>(summary.total_logs);
  // Paper: 7.5 - 11% of logs can be assigned to a session. Allow slack
  // for the small scale.
  EXPECT_GT(fraction, 0.04);
  EXPECT_LT(fraction, 0.14);
}

TEST_F(SimulatorTest, DualTimestampsBehaveLikeTheHugSystem) {
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig(1));
  LogStore store;
  ASSERT_TRUE(simulator.Run(&store, nullptr).ok());
  int64_t server_after_client = 0;
  for (size_t i = 0; i < store.size(); ++i) {
    // Server reception lags creation by buffering; client clocks may
    // skew either way, but reception minus creation must stay within
    // buffer cycle + max skew.
    const TimeMs delta = store.server_ts(i) - store.client_ts(i);
    EXPECT_GT(delta, -2000);
    EXPECT_LT(delta, 7000);
    if (delta > 0) ++server_after_client;
  }
  EXPECT_GT(server_after_client, static_cast<int64_t>(store.size() / 2));
}

TEST_F(SimulatorTest, RejectsBadConfigAndNullOutput) {
  SimulationConfig bad = SmallConfig();
  bad.num_days = 0;
  Simulator s1(scenario_->topology, scenario_->directory, bad);
  LogStore store;
  EXPECT_FALSE(s1.Run(&store, nullptr).ok());

  SimulationConfig bad_scale = SmallConfig();
  bad_scale.scale = 0.0;
  Simulator s2(scenario_->topology, scenario_->directory, bad_scale);
  EXPECT_FALSE(s2.Run(&store, nullptr).ok());

  Simulator s3(scenario_->topology, scenario_->directory, SmallConfig());
  EXPECT_FALSE(s3.Run(nullptr, nullptr).ok());
}

TEST_F(SimulatorTest, FailureWindowSilencesAppAndRaisesCallerErrors) {
  const int victim = scenario_->topology.FindApp("PatientDB");
  ASSERT_GE(victim, 0);
  SimulationConfig config = SmallConfig(1, 0.2);
  const TimeMs start = DefaultSimulationStart();
  const TimeMs outage_begin = start + 10 * kMillisPerHour;
  const TimeMs outage_end = outage_begin + kMillisPerHour;
  config.failures.push_back(FailureWindow{victim, outage_begin, outage_end});

  Simulator simulator(scenario_->topology, scenario_->directory, config);
  LogStore store;
  ASSERT_TRUE(simulator.Run(&store, nullptr).ok());

  // The victim is (nearly) silent during the outage: only clock skew can
  // leak a handful of boundary logs into the window.
  auto source = store.FindSource("PatientDB");
  ASSERT_TRUE(source.ok());
  const int64_t during = store.CountInRange(source.value(),
                                            outage_begin + 5000,
                                            outage_end - 5000);
  const int64_t before = store.CountInRange(
      source.value(), outage_begin - kMillisPerHour, outage_begin);
  EXPECT_LT(during, before / 10) << "victim logged during its outage";

  // Callers log timeout errors citing the victim's service id during the
  // window and (essentially) not before.
  int64_t timeouts_during = 0, timeouts_before = 0;
  for (size_t i = 0; i < store.size(); ++i) {
    if (store.message(i).find("timeout waiting for") ==
        std::string_view::npos) {
      continue;
    }
    const TimeMs t = store.client_ts(i);
    if (t >= outage_begin && t < outage_end) ++timeouts_during;
    if (t < outage_begin) ++timeouts_before;
  }
  EXPECT_GT(timeouts_during, 10);
  EXPECT_EQ(timeouts_before, 0);
}

TEST_F(SimulatorTest, EdgeLifecycleMovesTheLandscape) {
  // Deactivate the heavy DPIFormidoc -> DPIPublication edge for day 0
  // and activate it from day 1: the callee's Formidoc-driven traffic
  // must appear only on day 1.
  Topology topology = scenario_->topology;  // mutable copy
  const int formidoc = topology.FindApp("DPIFormidoc");
  const int publication = topology.FindApp("DPIPublication");
  for (InvocationEdge& edge : topology.edges) {
    if (edge.caller == formidoc && edge.callee == publication) {
      edge.active_from_day = 1;
    }
  }
  Simulator simulator(topology, scenario_->directory, SmallConfig(2, 0.1));
  LogStore store;
  ASSERT_TRUE(simulator.Run(&store, nullptr).ok());
  // Count L3-style citations of the publication service by Formidoc.
  const auto source = store.FindSource("DPIFormidoc");
  ASSERT_TRUE(source.ok());
  const TimeMs start = DefaultSimulationStart();
  int64_t day0 = 0, day1 = 0;
  for (size_t i = 0; i < store.size(); ++i) {
    if (store.source_id(i) != source.value()) continue;
    if (store.message(i).find("dpipublication") == std::string_view::npos &&
        store.message(i).find("DPIPUBLICATION") == std::string_view::npos) {
      continue;
    }
    if (store.client_ts(i) < start + kMillisPerDay) {
      ++day0;
    } else {
      ++day1;
    }
  }
  EXPECT_EQ(day0, 0);
  EXPECT_GT(day1, 0);
}

TEST_F(SimulatorTest, WeekdayOnlyAppsSilentOnWeekends) {
  Simulator simulator(scenario_->topology, scenario_->directory,
                      SmallConfig(7, 0.05));
  LogStore store;
  ASSERT_TRUE(simulator.Run(&store, nullptr).ok());
  const TimeMs start = DefaultSimulationStart();
  const TimeMs saturday = start + 4 * kMillisPerDay;
  for (size_t a = 0; a < scenario_->topology.apps.size(); ++a) {
    const Application& app = scenario_->topology.apps[a];
    if (!app.weekday_only || app.tier != Tier::kClient) continue;
    auto source = store.FindSource(app.name);
    ASSERT_TRUE(source.ok());
    // Only background chatter remains: interaction logs (which dominate
    // weekdays) disappear.
    const int64_t weekend_logs =
        store.CountInRange(source.value(), saturday,
                           saturday + 2 * kMillisPerDay);
    const int64_t weekday_logs =
        store.CountInRange(source.value(), start, start + 2 * kMillisPerDay);
    EXPECT_LT(weekend_logs, weekday_logs / 2) << app.name;
  }
}

}  // namespace
}  // namespace logmine::sim
