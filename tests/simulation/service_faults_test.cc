#include "simulation/service_faults.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace logmine::sim {
namespace {

TEST(ServiceFaultsTest, NamesRoundTrip) {
  for (ServiceFault fault :
       {ServiceFault::kNone, ServiceFault::kStallEpoch,
        ServiceFault::kPoisonBatch, ServiceFault::kClockRegression,
        ServiceFault::kSlowConsumer, ServiceFault::kCrashMidPublish}) {
    auto parsed = ServiceFaultFromName(ServiceFaultName(fault));
    ASSERT_TRUE(parsed.ok()) << ServiceFaultName(fault);
    EXPECT_EQ(parsed.value(), fault);
  }
  EXPECT_FALSE(ServiceFaultFromName("coffee-spill").ok());
}

TEST(ServiceFaultsTest, RandomPlansAreSeedDeterministic) {
  ServiceFaultPlanOptions options;
  options.max_faults = 5;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng a(seed);
    Rng b(seed);
    const ServiceFaultPlan plan_a =
        RandomServiceFaultPlan(&a, /*num_epochs=*/24, /*num_queries=*/10,
                               options);
    const ServiceFaultPlan plan_b =
        RandomServiceFaultPlan(&b, 24, 10, options);
    ASSERT_EQ(plan_a.faults.size(), plan_b.faults.size()) << seed;
    for (size_t i = 0; i < plan_a.faults.size(); ++i) {
      EXPECT_EQ(plan_a.faults[i].fault, plan_b.faults[i].fault) << seed;
      EXPECT_EQ(plan_a.faults[i].index, plan_b.faults[i].index) << seed;
      EXPECT_EQ(plan_a.faults[i].times, plan_b.faults[i].times) << seed;
    }
  }
}

TEST(ServiceFaultsTest, RandomPlansStayInBoundsAndNeverClash) {
  ServiceFaultPlanOptions options;
  options.max_faults = 6;
  options.max_stall_steps = 4;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const ServiceFaultPlan plan =
        RandomServiceFaultPlan(&rng, /*num_epochs=*/12, /*num_queries=*/5,
                               options);
    ASSERT_LE(plan.faults.size(), 6u);
    ASSERT_GE(plan.faults.size(), 1u);
    for (size_t i = 0; i < plan.faults.size(); ++i) {
      const ServiceFaultSpec& spec = plan.faults[i];
      EXPECT_NE(spec.fault, ServiceFault::kNone);
      const bool query_scoped = spec.fault == ServiceFault::kSlowConsumer;
      EXPECT_GE(spec.index, 0);
      EXPECT_LT(spec.index, query_scoped ? 5 : 12);
      EXPECT_GE(spec.times, 1);
      EXPECT_LE(spec.times, 4);
      for (size_t j = 0; j < i; ++j) {
        const bool other_query =
            plan.faults[j].fault == ServiceFault::kSlowConsumer;
        EXPECT_FALSE(other_query == query_scoped &&
                     plan.faults[j].index == spec.index)
            << "seed " << seed << ": two faults on one event";
      }
    }
  }
}

TEST(ServiceFaultsTest, StallExpiresAfterItsAttemptBudget) {
  ServiceFaultPlan plan;
  plan.faults.push_back(
      {/*index=*/3, ServiceFault::kStallEpoch, /*times=*/2});
  const ServiceFaultInjector injector(plan);
  EXPECT_EQ(injector.OnEpoch(3, 1), ServiceFault::kStallEpoch);
  EXPECT_EQ(injector.OnEpoch(3, 2), ServiceFault::kStallEpoch);
  EXPECT_EQ(injector.OnEpoch(3, 3), ServiceFault::kNone);
  EXPECT_EQ(injector.OnEpoch(2, 1), ServiceFault::kNone);
  // Statelessness: asking again for an earlier attempt still stalls —
  // the injector is a pure function of (plan, event, attempt).
  EXPECT_EQ(injector.OnEpoch(3, 1), ServiceFault::kStallEpoch);
}

TEST(ServiceFaultsTest, QueryAndEpochScopesAreSeparate) {
  ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/1, ServiceFault::kSlowConsumer,
                         /*times=*/1, /*slow_ms=*/25});
  plan.faults.push_back({/*index=*/1, ServiceFault::kPoisonBatch});
  const ServiceFaultInjector injector(plan);
  // Epoch 1 sees only the poison fault, query 1 only the slow consumer.
  EXPECT_EQ(injector.OnEpoch(1, 1), ServiceFault::kPoisonBatch);
  EXPECT_EQ(injector.OnQuery(1), ServiceFault::kSlowConsumer);
  EXPECT_EQ(injector.OnQuery(0), ServiceFault::kNone);
  const ServiceFaultSpec* spec =
      injector.SpecFor(1, ServiceFault::kSlowConsumer);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->slow_ms, 25);
  EXPECT_EQ(injector.SpecFor(2, ServiceFault::kSlowConsumer), nullptr);
}

TEST(ServiceFaultsTest, KilledStatusNamesTheFault) {
  const Status killed = ServiceFaultInjector::KilledStatus(7);
  EXPECT_EQ(killed.code(), StatusCode::kInternal);
  EXPECT_NE(killed.message().find("crash-mid-publish"), std::string::npos);
  EXPECT_NE(killed.message().find("7"), std::string::npos);
}

}  // namespace
}  // namespace logmine::sim
