#include "simulation/crash_injector.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::sim {
namespace {

TEST(CrashInjectorTest, FiresExactlyOnceAtTheArmedPoint) {
  CrashInjector injector(CrashPlan{KillPoint::kAfterCheckpoint, 2});
  EXPECT_FALSE(injector.fired());
  // Other points and indices never fire.
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterDayMined, 2));
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 0));
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 1));
  // The armed (point, index) fires...
  EXPECT_TRUE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 2));
  EXPECT_TRUE(injector.fired());
  // ...and only once, even if the same instant comes around again.
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 2));
}

TEST(CrashInjectorTest, UnarmedInjectorNeverFires) {
  CrashInjector injector(CrashPlan{});
  for (KillPoint point :
       {KillPoint::kAfterDayMined, KillPoint::kMidSnapshotWrite,
        KillPoint::kAfterCheckpoint, KillPoint::kBetweenMiners}) {
    for (int index = 0; index < 5; ++index) {
      EXPECT_FALSE(injector.ShouldKill(point, index));
    }
  }
  EXPECT_FALSE(injector.fired());
}

TEST(CrashInjectorTest, NamesRoundTrip) {
  for (KillPoint point :
       {KillPoint::kNone, KillPoint::kAfterDayMined,
        KillPoint::kMidSnapshotWrite, KillPoint::kAfterCheckpoint,
        KillPoint::kBetweenMiners}) {
    auto parsed = KillPointFromName(KillPointName(point));
    ASSERT_TRUE(parsed.ok()) << KillPointName(point);
    EXPECT_EQ(parsed.value(), point);
  }
  EXPECT_EQ(KillPointFromName("not-a-kill-point").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CrashInjectorTest, KilledStatusIsInternalAndNamesThePoint) {
  const Status status =
      CrashInjector::KilledStatus(KillPoint::kMidSnapshotWrite, 1);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("mid-snapshot-write"),
            std::string::npos);
  EXPECT_NE(status.message().find("simulated crash"), std::string::npos);
}

TEST(CrashInjectorTest, RandomPlanStaysInBoundsAndCoversAllPoints) {
  Rng rng(99);
  std::set<KillPoint> seen_points;
  for (int trial = 0; trial < 500; ++trial) {
    const CrashPlan plan = RandomCrashPlan(&rng, /*num_days=*/3,
                                           /*num_techniques=*/3);
    ASSERT_NE(plan.point, KillPoint::kNone);
    seen_points.insert(plan.point);
    ASSERT_GE(plan.index, 0);
    if (plan.point == KillPoint::kBetweenMiners) {
      // index counts completed techniques (0 = after the first); the
      // boundary after the last technique does not exist, so the top
      // index is num_techniques - 2.
      ASSERT_LT(plan.index, 2);
    } else {
      ASSERT_LT(plan.index, 3) << KillPointName(plan.point);
    }
  }
  // All four real kill points are drawn within 500 trials.
  EXPECT_EQ(seen_points.size(), 4u);
}

TEST(CrashInjectorTest, RandomPlanIsDeterministicInSeed) {
  Rng a(7), b(7), c(8);
  const CrashPlan pa = RandomCrashPlan(&a, 5, 3);
  const CrashPlan pb = RandomCrashPlan(&b, 5, 3);
  const CrashPlan pc = RandomCrashPlan(&c, 5, 3);
  EXPECT_EQ(pa.point, pb.point);
  EXPECT_EQ(pa.index, pb.index);
  // A different seed eventually diverges; draw a few to be robust.
  bool diverged = pa.point != pc.point || pa.index != pc.index;
  for (int i = 0; i < 20 && !diverged; ++i) {
    const CrashPlan xa = RandomCrashPlan(&a, 5, 3);
    const CrashPlan xc = RandomCrashPlan(&c, 5, 3);
    diverged = xa.point != xc.point || xa.index != xc.index;
  }
  EXPECT_TRUE(diverged);
}

TEST(ShardFaultInjectorTest, NamesRoundTrip) {
  for (ShardFault fault :
       {ShardFault::kNone, ShardFault::kFailTransient, ShardFault::kHang,
        ShardFault::kCorruptModel, ShardFault::kSlow}) {
    auto parsed = ShardFaultFromName(ShardFaultName(fault));
    ASSERT_TRUE(parsed.ok()) << ShardFaultName(fault);
    EXPECT_EQ(parsed.value(), fault);
  }
  EXPECT_EQ(ShardFaultFromName("explode").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardFaultInjectorTest, FaultsSpendTheirTimesThenClear) {
  ShardFaultPlan plan;
  plan.faults.push_back({/*day=*/1, /*range_index=*/0,
                         ShardFault::kFailTransient, /*times=*/2});
  plan.faults.push_back({/*day=*/0, /*range_index=*/1, ShardFault::kHang,
                         kShardFaultAlways});
  const ShardFaultInjector injector(std::move(plan));

  // Transient: fires on attempts 1 and 2, clean from 3 on.
  EXPECT_EQ(injector.OnAttempt(1, 0, 1), ShardFault::kFailTransient);
  EXPECT_EQ(injector.OnAttempt(1, 0, 2), ShardFault::kFailTransient);
  EXPECT_EQ(injector.OnAttempt(1, 0, 3), ShardFault::kNone);
  // Stateless: asking again for attempt 1 still reports the fault.
  EXPECT_EQ(injector.OnAttempt(1, 0, 1), ShardFault::kFailTransient);
  // Permanent: every attempt, forever.
  EXPECT_EQ(injector.OnAttempt(0, 1, 1), ShardFault::kHang);
  EXPECT_EQ(injector.OnAttempt(0, 1, 1000), ShardFault::kHang);
  // Unlisted shards behave normally.
  EXPECT_EQ(injector.OnAttempt(0, 0, 1), ShardFault::kNone);
  EXPECT_EQ(injector.SpecFor(0, 0), nullptr);
  ASSERT_NE(injector.SpecFor(1, 0), nullptr);
  EXPECT_EQ(injector.SpecFor(1, 0)->times, 2);
}

TEST(ShardFaultInjectorTest, PermanentlyPoisonedListsOnlyFatalPermanents) {
  ShardFaultPlan plan;
  plan.faults.push_back({2, 1, ShardFault::kHang, kShardFaultAlways});
  plan.faults.push_back({0, 3, ShardFault::kFailTransient, kShardFaultAlways});
  // Permanent slowness completes eventually — not poisoned.
  plan.faults.push_back({1, 0, ShardFault::kSlow, kShardFaultAlways});
  // Transient faults recover — not poisoned.
  plan.faults.push_back({1, 2, ShardFault::kCorruptModel, /*times=*/3});
  const ShardFaultInjector injector(std::move(plan));
  const auto poisoned = injector.PermanentlyPoisoned();
  ASSERT_EQ(poisoned.size(), 2u);
  EXPECT_EQ(poisoned[0], std::make_pair(0, 3));
  EXPECT_EQ(poisoned[1], std::make_pair(2, 1));
}

TEST(ShardFaultInjectorTest, RandomPlanPicksDistinctShardsInBounds) {
  Rng rng(17);
  ShardFaultPlanOptions options;
  options.max_faulty_shards = 4;
  options.max_times = 3;
  options.permanent_fraction = 0.5;
  for (int trial = 0; trial < 200; ++trial) {
    const ShardFaultPlan plan = RandomShardFaultPlan(&rng, 3, 2, options);
    ASSERT_GE(plan.faults.size(), 1u);
    ASSERT_LE(plan.faults.size(), 4u);
    std::set<std::pair<int, int>> cells;
    for (const ShardFaultSpec& spec : plan.faults) {
      ASSERT_GE(spec.day, 0);
      ASSERT_LT(spec.day, 3);
      ASSERT_GE(spec.range_index, 0);
      ASSERT_LT(spec.range_index, 2);
      ASSERT_NE(spec.fault, ShardFault::kNone);
      ASSERT_TRUE(spec.times == kShardFaultAlways ||
                  (spec.times >= 1 && spec.times <= 3));
      cells.emplace(spec.day, spec.range_index);
    }
    // At most one spec per shard cell.
    EXPECT_EQ(cells.size(), plan.faults.size());
  }
}

TEST(ShardFaultInjectorTest, RandomPlanIsDeterministicInSeed) {
  Rng a(5), b(5);
  ShardFaultPlanOptions options;
  options.permanent_fraction = 0.3;
  const ShardFaultPlan pa = RandomShardFaultPlan(&a, 4, 4, options);
  const ShardFaultPlan pb = RandomShardFaultPlan(&b, 4, 4, options);
  ASSERT_EQ(pa.faults.size(), pb.faults.size());
  for (size_t i = 0; i < pa.faults.size(); ++i) {
    EXPECT_EQ(pa.faults[i].day, pb.faults[i].day);
    EXPECT_EQ(pa.faults[i].range_index, pb.faults[i].range_index);
    EXPECT_EQ(pa.faults[i].fault, pb.faults[i].fault);
    EXPECT_EQ(pa.faults[i].times, pb.faults[i].times);
  }
}

}  // namespace
}  // namespace logmine::sim
