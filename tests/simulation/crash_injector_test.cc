#include "simulation/crash_injector.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::sim {
namespace {

TEST(CrashInjectorTest, FiresExactlyOnceAtTheArmedPoint) {
  CrashInjector injector(CrashPlan{KillPoint::kAfterCheckpoint, 2});
  EXPECT_FALSE(injector.fired());
  // Other points and indices never fire.
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterDayMined, 2));
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 0));
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 1));
  // The armed (point, index) fires...
  EXPECT_TRUE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 2));
  EXPECT_TRUE(injector.fired());
  // ...and only once, even if the same instant comes around again.
  EXPECT_FALSE(injector.ShouldKill(KillPoint::kAfterCheckpoint, 2));
}

TEST(CrashInjectorTest, UnarmedInjectorNeverFires) {
  CrashInjector injector(CrashPlan{});
  for (KillPoint point :
       {KillPoint::kAfterDayMined, KillPoint::kMidSnapshotWrite,
        KillPoint::kAfterCheckpoint, KillPoint::kBetweenMiners}) {
    for (int index = 0; index < 5; ++index) {
      EXPECT_FALSE(injector.ShouldKill(point, index));
    }
  }
  EXPECT_FALSE(injector.fired());
}

TEST(CrashInjectorTest, NamesRoundTrip) {
  for (KillPoint point :
       {KillPoint::kNone, KillPoint::kAfterDayMined,
        KillPoint::kMidSnapshotWrite, KillPoint::kAfterCheckpoint,
        KillPoint::kBetweenMiners}) {
    auto parsed = KillPointFromName(KillPointName(point));
    ASSERT_TRUE(parsed.ok()) << KillPointName(point);
    EXPECT_EQ(parsed.value(), point);
  }
  EXPECT_EQ(KillPointFromName("not-a-kill-point").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CrashInjectorTest, KilledStatusIsInternalAndNamesThePoint) {
  const Status status =
      CrashInjector::KilledStatus(KillPoint::kMidSnapshotWrite, 1);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("mid-snapshot-write"),
            std::string::npos);
  EXPECT_NE(status.message().find("simulated crash"), std::string::npos);
}

TEST(CrashInjectorTest, RandomPlanStaysInBoundsAndCoversAllPoints) {
  Rng rng(99);
  std::set<KillPoint> seen_points;
  for (int trial = 0; trial < 500; ++trial) {
    const CrashPlan plan = RandomCrashPlan(&rng, /*num_days=*/3,
                                           /*num_techniques=*/3);
    ASSERT_NE(plan.point, KillPoint::kNone);
    seen_points.insert(plan.point);
    ASSERT_GE(plan.index, 0);
    if (plan.point == KillPoint::kBetweenMiners) {
      // index counts completed techniques (0 = after the first); the
      // boundary after the last technique does not exist, so the top
      // index is num_techniques - 2.
      ASSERT_LT(plan.index, 2);
    } else {
      ASSERT_LT(plan.index, 3) << KillPointName(plan.point);
    }
  }
  // All four real kill points are drawn within 500 trials.
  EXPECT_EQ(seen_points.size(), 4u);
}

TEST(CrashInjectorTest, RandomPlanIsDeterministicInSeed) {
  Rng a(7), b(7), c(8);
  const CrashPlan pa = RandomCrashPlan(&a, 5, 3);
  const CrashPlan pb = RandomCrashPlan(&b, 5, 3);
  const CrashPlan pc = RandomCrashPlan(&c, 5, 3);
  EXPECT_EQ(pa.point, pb.point);
  EXPECT_EQ(pa.index, pb.index);
  // A different seed eventually diverges; draw a few to be robust.
  bool diverged = pa.point != pc.point || pa.index != pc.index;
  for (int i = 0; i < 20 && !diverged; ++i) {
    const CrashPlan xa = RandomCrashPlan(&a, 5, 3);
    const CrashPlan xc = RandomCrashPlan(&c, 5, 3);
    diverged = xa.point != xc.point || xa.index != xc.index;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace logmine::sim
