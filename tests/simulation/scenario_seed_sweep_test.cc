// Property sweep: the scenario generator and simulator must be robust
// across seeds — every seed must yield a valid topology with the full
// defect catalog placed, and a simulation that runs to completion with
// sane volume structure. This guards the seed-dependent generation
// paths (candidate pools for defects, v2-entry citation choices, ...).

#include <gtest/gtest.h>

#include "simulation/hug_scenario.h"
#include "simulation/simulator.h"

namespace logmine::sim {
namespace {

class ScenarioSeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioSeedSweepTest, ScenarioInvariantsHoldForAnySeed) {
  HugScenarioConfig config;
  config.seed = GetParam();
  auto built = BuildHugScenario(config);
  ASSERT_TRUE(built.ok()) << built.status();
  const HugScenario& scenario = built.value();

  EXPECT_EQ(scenario.topology.apps.size(), 54u);
  EXPECT_EQ(scenario.directory.size(), 47u);
  EXPECT_TRUE(scenario.topology.Validate(scenario.directory).ok());

  // Reference models in the paper's ballpark for every seed.
  EXPECT_GE(scenario.interaction_pairs.size(), 130u);
  EXPECT_LE(scenario.interaction_pairs.size(), 230u);
  EXPECT_GE(scenario.app_service_deps.size(), 130u);
  EXPECT_LE(scenario.app_service_deps.size(), 230u);

  // Full defect catalog placed.
  const DefectCatalog defaults;
  EXPECT_EQ(scenario.defects.unlogged_edges.size(),
            static_cast<size_t>(defaults.unlogged_edges));
  EXPECT_EQ(scenario.defects.server_side_apps.size(),
            static_cast<size_t>(defaults.server_side_loggers));
  EXPECT_EQ(scenario.defects.coincidences.size(),
            static_cast<size_t>(defaults.coincidence_pairs));

  // Stale ids never collide with the directory, for any seed.
  for (int e : scenario.defects.wrong_name_edges) {
    const auto& edge = scenario.topology.edges[static_cast<size_t>(e)];
    EXPECT_FALSE(scenario.directory.FindById(edge.miscited_id).ok());
  }
}

TEST_P(ScenarioSeedSweepTest, SimulationRunsAndKeepsVolumeStructure) {
  HugScenarioConfig scenario_config;
  scenario_config.seed = GetParam();
  auto scenario = BuildHugScenario(scenario_config);
  ASSERT_TRUE(scenario.ok());

  SimulationConfig config;
  config.seed = GetParam() * 31 + 7;
  config.num_days = 1;
  config.scale = 0.05;
  Simulator simulator(scenario.value().topology, scenario.value().directory,
                      config);
  LogStore store;
  SimulationSummary summary;
  ASSERT_TRUE(simulator.Run(&store, &summary).ok());
  EXPECT_GT(store.size(), 5000u);
  EXPECT_EQ(store.num_sources(), 54u);
  // Context share stays in a sane band across seeds.
  const double context = static_cast<double>(summary.context_logs) /
                         static_cast<double>(summary.total_logs);
  EXPECT_GT(context, 0.03);
  EXPECT_LT(context, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioSeedSweepTest,
                         ::testing::Values(1, 7, 42, 20051206, 987654321));

}  // namespace
}  // namespace logmine::sim
