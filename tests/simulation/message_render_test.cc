#include "simulation/message_render.h"

#include <gtest/gtest.h>

#include "core/l3_text_miner.h"
#include "util/string_util.h"

namespace logmine::sim {
namespace {

bool ContainsToken(const std::string& message, std::string_view token) {
  for (std::string_view t : TokenizeIdentifiers(message)) {
    if (EqualsIgnoreCase(t, token)) return true;
  }
  return false;
}

class InvocationStyleTest
    : public ::testing::TestWithParam<InvocationLogStyle> {};

TEST_P(InvocationStyleTest, EveryStyleCitesTheDirectoryEntry) {
  Rng rng(1);
  const std::string message = RenderInvocationMessage(
      GetParam(), "notify", "DPINOTIFICATION",
      "http://srv01.hug.ch:9980/dpinotification", &rng);
  EXPECT_FALSE(message.empty());
  // Whatever the developer style, the id must be recoverable by the L3
  // tokenizer — directly or through the URL.
  EXPECT_TRUE(ContainsToken(message, "DPINOTIFICATION")) << message;
}

INSTANTIATE_TEST_SUITE_P(
    Styles, InvocationStyleTest,
    ::testing::Values(InvocationLogStyle::kBracketedServer,
                      InvocationLogStyle::kParenGroup,
                      InvocationLogStyle::kProseCall,
                      InvocationLogStyle::kArrowUrl,
                      InvocationLogStyle::kKeyValue));

TEST(ServerSideStyleTest, StopPatternCoverageMatchesDesign) {
  // Styles 0..4 are covered by the default stop patterns; style 5 is the
  // idiosyncratic survivor that produces residual inverted dependencies.
  Rng rng(2);
  core::L3TextMiner miner(
      core::ServiceVocabulary{{{"DPINOTIFICATION", "http://x/y"}}},
      core::L3Config{});
  for (int style = 0; style < kNumServerSideStyles; ++style) {
    const std::string message = RenderServerSideMessage(
        style, "notify", "DPINOTIFICATION", "ws-004", &rng);
    EXPECT_TRUE(ContainsToken(message, "DPINOTIFICATION")) << message;
    if (style < kNumServerSideStyles - 1) {
      EXPECT_TRUE(miner.IsStopped(message)) << style << ": " << message;
    } else {
      EXPECT_FALSE(miner.IsStopped(message)) << message;
    }
  }
}

TEST(ExceptionMessageTest, CitesBothIntermediaryAndDeepService) {
  Rng rng(3);
  const std::string message =
      RenderExceptionMessage("LABRES", "PATDB", "query", &rng);
  EXPECT_TRUE(ContainsToken(message, "LABRES"));
  EXPECT_TRUE(ContainsToken(message, "PATDB"));
}

TEST(CoincidenceMessageTest, EmbedsEntryIdAsData) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const std::string message =
        RenderCoincidenceMessage("AdmissionDesk", "UPSRV2", &rng);
    EXPECT_TRUE(ContainsToken(message, "UPSRV2")) << message;
  }
}

TEST(ProcessingAndBackgroundTest, NoAccidentalCitations) {
  // Processing/background chatter must never cite service ids — those
  // citations are what L3 keys on.
  Rng rng(5);
  core::L3TextMiner miner(
      core::ServiceVocabulary{{{"DPINOTIFICATION", "u"},
                               {"UPSRV2", "u"},
                               {"LABRES", "u"},
                               {"PATDB", "u"}}},
      core::L3Config{});
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(miner.CitedEntries(RenderProcessingMessage("App", &rng))
                    .empty());
    EXPECT_TRUE(miner.CitedEntries(RenderBackgroundMessage("App", &rng))
                    .empty());
    EXPECT_TRUE(
        miner.CitedEntries(RenderUserActionMessage("uc-1", &rng)).empty());
  }
}

TEST(FunctionNameForTest, DeterministicAndVaried) {
  EXPECT_EQ(FunctionNameFor("DPINOTIFICATION", 0),
            FunctionNameFor("DPINOTIFICATION", 0));
  // Different variants or ids should (usually) give different names.
  int distinct = 0;
  const std::string base = FunctionNameFor("AAA", 0);
  for (int v = 1; v < 6; ++v) {
    if (FunctionNameFor("AAA", v) != base) ++distinct;
  }
  EXPECT_GE(distinct, 3);
  EXPECT_FALSE(FunctionNameFor("anything", 0).empty());
}

}  // namespace
}  // namespace logmine::sim
