#include "simulation/directory.h"

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

ServiceEntry Entry(std::string id) {
  ServiceEntry entry;
  entry.id = std::move(id);
  entry.root_url = "http://srv01.hug.ch:9980/x";
  entry.server_host = "srv01.hug.ch";
  entry.num_replicas = 2;
  return entry;
}

TEST(ServiceDirectoryTest, AddAndFind) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.Add(Entry("DPINOTIFICATION")).ok());
  ASSERT_TRUE(dir.Add(Entry("UPSRV2")).ok());
  EXPECT_EQ(dir.size(), 2u);
  auto found = dir.FindById("UPSRV2");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1u);
  EXPECT_FALSE(dir.FindById("UPSRV").ok());
}

TEST(ServiceDirectoryTest, FindIsCaseInsensitive) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.Add(Entry("DPINOTIFICATION")).ok());
  EXPECT_TRUE(dir.FindById("dpinotification").ok());
  EXPECT_TRUE(dir.FindById("DpiNotification").ok());
}

TEST(ServiceDirectoryTest, RejectsDuplicatesAndEmptyIds) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.Add(Entry("A")).ok());
  EXPECT_FALSE(dir.Add(Entry("A")).ok());
  EXPECT_FALSE(dir.Add(Entry("a")).ok());  // case-insensitive key
  EXPECT_FALSE(dir.Add(Entry("")).ok());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(ServiceDirectoryTest, XmlRoundTrip) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.Add(Entry("DPINOTIFICATION")).ok());
  ASSERT_TRUE(dir.Add(Entry("UPSRV2")).ok());
  auto parsed = ServiceDirectory::FromXml(dir.ToXml());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().entry(0).id, "DPINOTIFICATION");
  EXPECT_EQ(parsed.value().entry(0).root_url, "http://srv01.hug.ch:9980/x");
  EXPECT_EQ(parsed.value().entry(0).server_host, "srv01.hug.ch");
  EXPECT_EQ(parsed.value().entry(0).num_replicas, 2);
}

TEST(ServiceDirectoryTest, XmlShapeMatchesHugStyle) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.Add(Entry("X")).ok());
  const std::string xml = dir.ToXml();
  EXPECT_NE(xml.find("<directory>"), std::string::npos);
  EXPECT_NE(xml.find("<group id=\"X\""), std::string::npos);
  EXPECT_NE(xml.find("</directory>"), std::string::npos);
}

TEST(ServiceDirectoryTest, FromXmlRejectsMalformedInput) {
  EXPECT_FALSE(ServiceDirectory::FromXml("<group id=\"A\"/>").ok());  // no root
  EXPECT_FALSE(ServiceDirectory::FromXml("<directory><group/></directory>")
                   .ok());  // missing attributes
  EXPECT_FALSE(
      ServiceDirectory::FromXml("<directory><oops/></directory>").ok());
  EXPECT_FALSE(ServiceDirectory::FromXml("<directory").ok());
}

TEST(ServiceDirectoryTest, EmptyDirectoryRoundTrips) {
  ServiceDirectory dir;
  auto parsed = ServiceDirectory::FromXml(dir.ToXml());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 0u);
}

}  // namespace
}  // namespace logmine::sim
