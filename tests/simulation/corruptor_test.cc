#include "simulation/corruptor.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/columnar.h"
#include "log/corpus_io.h"

namespace logmine::sim {
namespace {

std::vector<LogRecord> CleanRecords(size_t count) {
  std::vector<LogRecord> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LogRecord record;
    record.client_ts = static_cast<TimeMs>(1000 + i * 250);
    record.server_ts = record.client_ts + 3;
    record.severity = i % 5 == 0 ? Severity::kWarning : Severity::kInfo;
    record.source = i % 2 == 0 ? "WebShop" : "DirSrv";
    record.host = "srv" + std::to_string(i % 4) + ".hug.ch";
    record.user = "u" + std::to_string(i % 7);
    record.message = "request " + std::to_string(i) + " handled | ok";
    records.push_back(std::move(record));
  }
  return records;
}

std::string CleanText(size_t count) {
  return LineCodec::EncodeAll(CleanRecords(count));
}

TEST(CorruptorTest, ZeroRateIsByteIdentical) {
  const std::string clean = CleanText(50);
  CorruptorConfig config;
  config.rate = 0.0;
  Rng rng(1);
  CorruptionReport report;
  const std::string out = CorruptCorpusText(clean, config, &rng, &report);
  EXPECT_EQ(out, clean);
  EXPECT_EQ(report.lines_total, 50u);
  EXPECT_EQ(report.lines_corrupted, 0u);
  EXPECT_EQ(report.expected_records, 50u);
  EXPECT_EQ(report.expected_quarantined, 0u);
}

TEST(CorruptorTest, BlankLinesAndTrailingStructureSurvive) {
  const std::string clean = "\n" + CleanText(3) + "\n";
  CorruptorConfig config;
  config.rate = 0.0;
  Rng rng(2);
  EXPECT_EQ(CorruptCorpusText(clean, config, &rng), clean);
}

TEST(CorruptorTest, SameSeedProducesIdenticalOutput) {
  const std::string clean = CleanText(120);
  CorruptorConfig config;
  config.rate = 0.5;
  Rng rng_a(42);
  Rng rng_b(42);
  CorruptionReport report_a;
  CorruptionReport report_b;
  const std::string out_a = CorruptCorpusText(clean, config, &rng_a, &report_a);
  const std::string out_b = CorruptCorpusText(clean, config, &rng_b, &report_b);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(report_a.lines_corrupted, report_b.lines_corrupted);
  EXPECT_EQ(report_a.by_kind, report_b.by_kind);
  EXPECT_EQ(report_a.expected_by_class, report_b.expected_by_class);
  EXPECT_GT(report_a.lines_corrupted, 0u);
}

TEST(CorruptorTest, ReportMatchesQuarantineDecodeExactly) {
  // The acceptance bar for the whole robustness story: the counts the
  // corruptor says it injected are the counts lenient ingest reports,
  // class by class.
  const std::string clean = CleanText(300);
  CorruptorConfig config;
  config.rate = 0.3;
  Rng rng(7);
  CorruptionReport report;
  const std::string corrupted = CorruptCorpusText(clean, config, &rng, &report);

  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 1.0;
  IngestStats stats;
  auto records = LineCodec::DecodeAll(corrupted, options, &stats);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records.value().size(), report.expected_records);
  EXPECT_EQ(stats.records_decoded, report.expected_records);
  EXPECT_EQ(stats.lines_quarantined, report.expected_quarantined);
  EXPECT_EQ(stats.lines_total,
            report.expected_records + report.expected_quarantined);
  for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
    EXPECT_EQ(stats.by_class[c], report.expected_by_class[c]) << c;
  }
  EXPECT_GT(report.lines_corrupted, 0u);
}

TEST(CorruptorTest, SemanticKindsKeepEveryLineDecodable) {
  const std::string clean = CleanText(80);
  CorruptorConfig config;
  config.rate = 1.0;
  config.truncate_weight = 0.0;
  config.mangle_escape_weight = 0.0;
  config.garbage_weight = 0.0;
  Rng rng(11);
  CorruptionReport report;
  const std::string corrupted = CorruptCorpusText(clean, config, &rng, &report);
  EXPECT_EQ(report.expected_quarantined, 0u);
  const size_t duplicates =
      report.by_kind[static_cast<size_t>(CorruptionKind::kDuplicate)];
  EXPECT_EQ(report.expected_records, report.lines_total + duplicates);
  // And the whole corpus still decodes fail-fast.
  auto records = LineCodec::DecodeAll(corrupted);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records.value().size(), report.expected_records);
}

TEST(CorruptorTest, ClockJumpShiftsBothTimestampsWithinTheBound) {
  const std::vector<LogRecord> originals = CleanRecords(40);
  const std::string clean = LineCodec::EncodeAll(originals);
  CorruptorConfig config;
  config.rate = 1.0;
  config.truncate_weight = 0.0;
  config.mangle_escape_weight = 0.0;
  config.garbage_weight = 0.0;
  config.reorder_weight = 0.0;
  config.duplicate_weight = 0.0;
  config.blank_context_weight = 0.0;
  config.max_clock_jump_ms = 5000;
  Rng rng(13);
  CorruptionReport report;
  const std::string corrupted = CorruptCorpusText(clean, config, &rng, &report);
  EXPECT_EQ(report.lines_corrupted, 40u);
  auto records = LineCodec::DecodeAll(corrupted);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records.value().size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    const TimeMs jump =
        records.value()[i].client_ts - originals[i].client_ts;
    EXPECT_NE(jump, 0) << i;
    EXPECT_LE(std::abs(jump), 5000) << i;
    // Client and server clocks jump together: the record's skew survives.
    EXPECT_EQ(records.value()[i].server_ts - originals[i].server_ts, jump);
    EXPECT_EQ(records.value()[i].message, originals[i].message);
  }
}

TEST(CorruptorTest, BlankContextClearsHostAndUserOnly) {
  const std::vector<LogRecord> originals = CleanRecords(30);
  const std::string clean = LineCodec::EncodeAll(originals);
  CorruptorConfig config;
  config.rate = 1.0;
  config.truncate_weight = 0.0;
  config.mangle_escape_weight = 0.0;
  config.garbage_weight = 0.0;
  config.reorder_weight = 0.0;
  config.duplicate_weight = 0.0;
  config.clock_jump_weight = 0.0;
  Rng rng(17);
  const std::string corrupted = CorruptCorpusText(clean, config, &rng);
  auto records = LineCodec::DecodeAll(corrupted);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records.value().size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(records.value()[i].host.empty()) << i;
    EXPECT_TRUE(records.value()[i].user.empty()) << i;
    EXPECT_EQ(records.value()[i].source, originals[i].source);
    EXPECT_EQ(records.value()[i].client_ts, originals[i].client_ts);
  }
}

TEST(CorruptorTest, FileWrapperRoundTripsAndReportsMissingInput) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string in_path = (dir / "logmine_corruptor_in.log").string();
  const std::string out_path = (dir / "logmine_corruptor_out.log").string();
  const std::string clean = CleanText(25);
  {
    std::ofstream out(in_path, std::ios::trunc);
    out << clean;
  }
  CorruptorConfig config;
  config.rate = 0.2;
  Rng rng_file(23);
  CorruptionReport report;
  ASSERT_TRUE(
      CorruptCorpusFile(in_path, out_path, config, &rng_file, &report).ok());
  // Byte-for-byte the same as corrupting the text directly with the seed.
  Rng rng_text(23);
  const std::string expected = CorruptCorpusText(clean, config, &rng_text);
  std::ifstream round(out_path);
  std::string written((std::istreambuf_iterator<char>(round)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(written, expected);
  // The corrupted file loads under quarantine ingest.
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 1.0;
  IngestStats stats;
  auto loaded = ReadCorpusFile(out_path, options, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), report.expected_records);
  EXPECT_EQ(stats.lines_quarantined, report.expected_quarantined);

  EXPECT_FALSE(
      CorruptCorpusFile("/nonexistent/in.log", out_path, config, &rng_file)
          .ok());
  std::error_code ec;
  std::filesystem::remove(in_path, ec);
  std::filesystem::remove(out_path, ec);
}


TEST(CorruptorTest, ColumnarDictionaryCorruptionIsDetectedOnRead) {
  LogStore store;
  for (const LogRecord& record : CleanRecords(30)) {
    ASSERT_TRUE(store.Append(record).ok());
  }
  const std::string clean = EncodeColumnar(store);
  // Sanity: the clean bytes decode.
  ASSERT_TRUE(DecodeColumnar(clean).ok());

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ColumnarFaultReport report;
    auto dirty = CorruptColumnarBytes(
        clean, ColumnarFaultKind::kCorruptDictionaryEntry, &rng, &report);
    ASSERT_TRUE(dirty.ok()) << dirty.status();
    EXPECT_EQ(report.kind, ColumnarFaultKind::kCorruptDictionaryEntry);
    EXPECT_GT(report.bytes_affected, 0u);
    EXPECT_NE(dirty.value(), clean);
    // The detection guarantee: never silently wrong records.
    auto loaded = DecodeColumnar(dirty.value());
    ASSERT_FALSE(loaded.ok()) << "seed " << seed;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST(CorruptorTest, ColumnarTruncatedColumnBlockIsDetectedOnRead) {
  LogStore store;
  for (const LogRecord& record : CleanRecords(30)) {
    ASSERT_TRUE(store.Append(record).ok());
  }
  const std::string clean = EncodeColumnar(store);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ColumnarFaultReport report;
    auto dirty = CorruptColumnarBytes(
        clean, ColumnarFaultKind::kTruncatedColumnBlock, &rng, &report);
    ASSERT_TRUE(dirty.ok()) << dirty.status();
    EXPECT_LT(dirty.value().size(), clean.size());
    EXPECT_EQ(report.bytes_affected, clean.size() - dirty.value().size());
    auto loaded = DecodeColumnar(dirty.value());
    ASSERT_FALSE(loaded.ok()) << "seed " << seed;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST(CorruptorTest, ColumnarCorruptorRefusesNonColumnarInput) {
  Rng rng(7);
  auto result = CorruptColumnarBytes(
      CleanText(5), ColumnarFaultKind::kCorruptDictionaryEntry, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorruptorTest, ColumnarFileWrapperIsDeterministic) {
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::string in_path = (dir / "logmine_columnar_in.lmc").string();
  const std::string out_path = (dir / "logmine_columnar_out.lmc").string();
  LogStore store;
  for (const LogRecord& record : CleanRecords(20)) {
    ASSERT_TRUE(store.Append(record).ok());
  }
  ASSERT_TRUE(WriteColumnarFile(in_path, store).ok());

  Rng rng_file(23);
  ColumnarFaultReport report;
  ASSERT_TRUE(CorruptColumnarFile(in_path, out_path,
                                  ColumnarFaultKind::kTruncatedColumnBlock,
                                  &rng_file, &report)
                  .ok());
  std::ifstream round(out_path, std::ios::binary);
  std::string written((std::istreambuf_iterator<char>(round)),
                      std::istreambuf_iterator<char>());
  Rng rng_bytes(23);
  auto expected = CorruptColumnarBytes(
      EncodeColumnar(store), ColumnarFaultKind::kTruncatedColumnBlock,
      &rng_bytes);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(written, expected.value());
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace logmine::sim
