#include "simulation/bank_scenario.h"

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

class BankScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BankScenarioConfig config;
    auto built = BuildBankScenario(config);
    ASSERT_TRUE(built.ok()) << built.status();
    scenario_ = new HugScenario(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static HugScenario* scenario_;
};

HugScenario* BankScenarioTest::scenario_ = nullptr;

TEST_F(BankScenarioTest, ShapeOfTheLandscape) {
  EXPECT_EQ(scenario_->topology.apps.size(), 18u);
  EXPECT_EQ(scenario_->directory.size(), 14u);
  EXPECT_TRUE(scenario_->topology.Validate(scenario_->directory).ok());
  EXPECT_GE(scenario_->interaction_pairs.size(), 25u);
  EXPECT_GE(scenario_->app_service_deps.size(), 20u);
}

TEST_F(BankScenarioTest, ScaledDefectCatalogApplied) {
  const DefectCatalog expected = BankScenarioConfig::SmallCatalog();
  EXPECT_EQ(scenario_->defects.unlogged_edges.size(),
            static_cast<size_t>(expected.unlogged_edges));
  EXPECT_EQ(scenario_->defects.server_side_apps.size(),
            static_cast<size_t>(expected.server_side_loggers));
  EXPECT_EQ(scenario_->defects.coincidences.size(),
            static_cast<size_t>(expected.coincidence_pairs));
}

TEST_F(BankScenarioTest, DeterministicPerSeed) {
  BankScenarioConfig config;
  auto again = BuildBankScenario(config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().interaction_pairs, scenario_->interaction_pairs);
  config.seed = 99;
  auto other = BuildBankScenario(config);
  ASSERT_TRUE(other.ok());
  // Topology edges are hand-written, but defects/citations vary by seed.
  EXPECT_EQ(other.value().topology.apps.size(), 18u);
}

TEST_F(BankScenarioTest, SimulatesEndToEnd) {
  SimulationConfig config = BankSimulationDefaults();
  config.num_days = 1;
  config.scale = 0.3;
  Simulator simulator(scenario_->topology, scenario_->directory, config);
  LogStore store;
  SimulationSummary summary;
  ASSERT_TRUE(simulator.Run(&store, &summary).ok());
  EXPECT_GT(store.size(), 5000u);
  EXPECT_EQ(store.num_sources(), 18u);
  EXPECT_GT(summary.num_identified_sessions, 50);
  // Banking sessions are context-rich relative to the hospital.
  const double context = static_cast<double>(summary.context_logs) /
                         static_cast<double>(summary.total_logs);
  EXPECT_GT(context, 0.08);
}

}  // namespace
}  // namespace logmine::sim
