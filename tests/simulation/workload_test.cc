#include "simulation/workload.h"

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

TEST(DiurnalProfileTest, HospitalShape) {
  const DiurnalProfile profile = DiurnalProfile::Hospital();
  // Deep night well below the morning peak.
  EXPECT_LT(profile.weekday[3], 0.2);
  EXPECT_GT(profile.weekday[9], 2.0);
  // Weekend substantially below weekday at every hour.
  for (size_t h = 0; h < 24; ++h) {
    EXPECT_LT(profile.weekend[h], profile.weekday[h] + 0.2) << h;
    EXPECT_GT(profile.weekend[h], 0.0) << h;
  }
}

TEST(DiurnalProfileTest, IntensityAtPicksDayType) {
  const DiurnalProfile profile = DiurnalProfile::Hospital();
  const TimeMs tue = TimeFromCivil({.year = 2005, .month = 12, .day = 6});
  const TimeMs sat = TimeFromCivil({.year = 2005, .month = 12, .day = 10});
  EXPECT_DOUBLE_EQ(profile.IntensityAt(tue + 9 * kMillisPerHour),
                   profile.weekday[9]);
  EXPECT_DOUBLE_EQ(profile.IntensityAt(sat + 9 * kMillisPerHour),
                   profile.weekend[9]);
}

TEST(LogNormalTest, MedianAndPositivity) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = LogNormal(100.0, 0.8, &rng);
    EXPECT_GT(x, 0);
    xs.push_back(x);
  }
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 100.0, 5.0);
}

TEST(LogNormalTest, ZeroSigmaIsDegenerate) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(LogNormal(42.0, 0.0, &rng), 42.0);
}

class PlanSessionsTest : public ::testing::Test {
 protected:
  DiurnalProfile profile_ = DiurnalProfile::Hospital();
  WorkloadConfig config_;
  const TimeMs weekday_ =
      TimeFromCivil({.year = 2005, .month = 12, .day = 6});
  const TimeMs weekend_ =
      TimeFromCivil({.year = 2005, .month = 12, .day = 10});
};

TEST_F(PlanSessionsTest, CountTracksConfigAndDayType) {
  Rng rng(7);
  const auto weekday_plans = PlanDaySessions(weekday_, profile_, config_,
                                             {0, 1, 2}, {}, &rng);
  Rng rng2(7);
  const auto weekend_plans = PlanDaySessions(weekend_, profile_, config_,
                                             {0, 1, 2}, {}, &rng2);
  // Weekday count near the configured rate (night floor adds a little).
  EXPECT_GT(weekday_plans.size(), config_.sessions_per_weekday * 0.8);
  EXPECT_LT(weekday_plans.size(), config_.sessions_per_weekday * 1.6);
  // Weekend clearly lower.
  EXPECT_LT(weekend_plans.size(), weekday_plans.size() * 0.7);
}

TEST_F(PlanSessionsTest, PlansAreWellFormed) {
  Rng rng(11);
  for (const SessionPlan& plan :
       PlanDaySessions(weekday_, profile_, config_, {5, 6}, {}, &rng)) {
    EXPECT_GE(plan.start, weekday_);
    EXPECT_LT(plan.start, weekday_ + kMillisPerDay);
    EXPECT_GT(plan.end, plan.start);
    EXPECT_GE(plan.user, 0);
    EXPECT_LT(plan.user, config_.num_users);
    EXPECT_GE(plan.workstation, 0);
    EXPECT_LT(plan.workstation, config_.num_workstations);
    EXPECT_TRUE(plan.client_app == 5 || plan.client_app == 6);
  }
}

TEST_F(PlanSessionsTest, NightRegimeUsesNightClients) {
  Rng rng(13);
  const auto plans = PlanDaySessions(weekday_, profile_, config_,
                                     {1, 2, 3, 4}, {9}, &rng);
  bool saw_night_session = false;
  for (const SessionPlan& plan : plans) {
    const double intensity = profile_.IntensityAt(plan.start);
    if (intensity < kNightRegimeIntensity) {
      saw_night_session = true;
      EXPECT_EQ(plan.client_app, 9);
    } else {
      EXPECT_NE(plan.client_app, 9);
    }
  }
  EXPECT_TRUE(saw_night_session);  // the night floor guarantees some
}

TEST_F(PlanSessionsTest, DeterministicGivenRng) {
  Rng rng1(17), rng2(17);
  const auto a = PlanDaySessions(weekday_, profile_, config_, {0}, {}, &rng1);
  const auto b = PlanDaySessions(weekday_, profile_, config_, {0}, {}, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].user, b[i].user);
  }
}

}  // namespace
}  // namespace logmine::sim
