#include "simulation/topology.h"

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

ServiceDirectory TwoEntryDirectory() {
  ServiceDirectory dir;
  ServiceEntry a;
  a.id = "SRVA";
  a.root_url = "http://h/srva";
  a.server_host = "h";
  EXPECT_TRUE(dir.Add(a).ok());
  ServiceEntry b;
  b.id = "SRVB";
  b.root_url = "http://h/srvb";
  b.server_host = "h";
  EXPECT_TRUE(dir.Add(b).ok());
  return dir;
}

Topology SmallTopology() {
  Topology topology;
  Application client;
  client.name = "Client";
  client.tier = Tier::kClient;
  topology.apps.push_back(client);
  Application service;
  service.name = "Service";
  service.tier = Tier::kService;
  service.provided_entries = {0};
  service.host = "h";
  topology.apps.push_back(service);
  Application backend;
  backend.name = "Backend";
  backend.tier = Tier::kBackend;
  backend.provided_entries = {1};
  backend.host = "h";
  topology.apps.push_back(backend);

  InvocationEdge e1;  // Client -> Service
  e1.caller = 0;
  e1.callee = 1;
  e1.cited_entry = 0;
  e1.true_entry = 0;
  topology.edges.push_back(e1);
  InvocationEdge e2;  // Service -> Backend
  e2.caller = 1;
  e2.callee = 2;
  e2.cited_entry = 1;
  e2.true_entry = 1;
  topology.edges.push_back(e2);

  UseCase uc;
  uc.name = "open";
  uc.root_app = 0;
  CallStep step;
  step.edge = 0;
  step.children.push_back(CallStep{1, {}});
  uc.steps.push_back(step);
  topology.use_cases.push_back(uc);
  return topology;
}

TEST(TopologyTest, FindApp) {
  const Topology topology = SmallTopology();
  EXPECT_EQ(topology.FindApp("Client"), 0);
  EXPECT_EQ(topology.FindApp("Backend"), 2);
  EXPECT_EQ(topology.FindApp("Nope"), -1);
}

TEST(TopologyTest, InteractionPairsAreUnorderedAndDeduplicated) {
  Topology topology = SmallTopology();
  // Add the reverse edge Service -> Client (notification); pair must not
  // duplicate.
  InvocationEdge reverse;
  reverse.caller = 1;
  reverse.callee = 0;
  reverse.cited_entry = -1;
  reverse.true_entry = -1;
  topology.edges.push_back(reverse);
  const auto pairs = topology.InteractionPairs();
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs.count({"Client", "Service"}));
  EXPECT_TRUE(pairs.count({"Backend", "Service"}));
}

TEST(TopologyTest, AppServiceDepsUseTrueEntry) {
  Topology topology = SmallTopology();
  // Simulate the erroneous-id defect: cited differs from true.
  topology.edges[0].cited_entry = 1;
  const ServiceDirectory dir = TwoEntryDirectory();
  const auto deps = topology.AppServiceDeps(dir);
  EXPECT_TRUE(deps.count({"Client", "SRVA"}));   // truth, not citation
  EXPECT_FALSE(deps.count({"Client", "SRVB"}));
  EXPECT_TRUE(deps.count({"Service", "SRVB"}));
}

TEST(TopologyTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(SmallTopology().Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, ValidateRejectsBadEdgeEndpoints) {
  Topology topology = SmallTopology();
  topology.edges[0].callee = 99;
  EXPECT_FALSE(topology.Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, ValidateRejectsSelfLoop) {
  Topology topology = SmallTopology();
  topology.edges[0].callee = topology.edges[0].caller;
  EXPECT_FALSE(topology.Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, ValidateRejectsUnknownEntry) {
  Topology topology = SmallTopology();
  topology.edges[0].cited_entry = 7;
  EXPECT_FALSE(topology.Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, ValidateRejectsMismatchedUseCaseTree) {
  Topology topology = SmallTopology();
  // The nested step's edge is rooted at the Service, not at the Backend.
  topology.use_cases[0].steps[0].children[0].edge = 0;
  EXPECT_FALSE(topology.Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, ValidateRejectsEmptyAppName) {
  Topology topology = SmallTopology();
  topology.apps[0].name.clear();
  EXPECT_FALSE(topology.Validate(TwoEntryDirectory()).ok());
}

TEST(TopologyTest, TierNames) {
  EXPECT_EQ(TierName(Tier::kClient), "client");
  EXPECT_EQ(TierName(Tier::kDaemon), "daemon");
  EXPECT_EQ(TierName(Tier::kIntegration), "integration");
}

}  // namespace
}  // namespace logmine::sim
