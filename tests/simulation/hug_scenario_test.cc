#include "simulation/hug_scenario.h"

#include <functional>
#include <set>

#include <gtest/gtest.h>

namespace logmine::sim {
namespace {

class HugScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HugScenarioConfig config;
    auto built = BuildHugScenario(config);
    ASSERT_TRUE(built.ok()) << built.status();
    scenario_ = new HugScenario(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static HugScenario* scenario_;
};

HugScenario* HugScenarioTest::scenario_ = nullptr;

TEST_F(HugScenarioTest, FiftyFourApplicationsFortySevenEntries) {
  EXPECT_EQ(scenario_->topology.apps.size(), 54u);
  EXPECT_EQ(scenario_->directory.size(), 47u);
}

TEST_F(HugScenarioTest, TierCensusMatchesDesign) {
  int clients = 0, services = 0, backends = 0, integrations = 0, daemons = 0;
  for (const Application& app : scenario_->topology.apps) {
    switch (app.tier) {
      case Tier::kClient: ++clients; break;
      case Tier::kService: ++services; break;
      case Tier::kBackend: ++backends; break;
      case Tier::kIntegration: ++integrations; break;
      case Tier::kDaemon: ++daemons; break;
    }
  }
  EXPECT_EQ(clients, 12);
  EXPECT_EQ(services, 26);
  EXPECT_EQ(backends, 8);
  EXPECT_EQ(integrations, 4);
  EXPECT_EQ(daemons, 4);
}

TEST_F(HugScenarioTest, ReferenceModelSizesNearPaper) {
  // Paper: 178 interacting pairs of 1431; 177 app-service dependencies.
  EXPECT_GE(scenario_->interaction_pairs.size(), 150u);
  EXPECT_LE(scenario_->interaction_pairs.size(), 210u);
  EXPECT_GE(scenario_->app_service_deps.size(), 150u);
  EXPECT_LE(scenario_->app_service_deps.size(), 210u);
}

TEST_F(HugScenarioTest, TopologyValidates) {
  EXPECT_TRUE(
      scenario_->topology.Validate(scenario_->directory).ok());
}

TEST_F(HugScenarioTest, PaperIllustrationEdgeExists) {
  const int formidoc = scenario_->topology.FindApp("DPIFormidoc");
  const int publication = scenario_->topology.FindApp("DPIPublication");
  ASSERT_GE(formidoc, 0);
  ASSERT_GE(publication, 0);
  EXPECT_TRUE(scenario_->interaction_pairs.count(
      {"DPIFormidoc", "DPIPublication"}));
}

TEST_F(HugScenarioTest, DefectCountsMatchCatalog) {
  const DefectCatalog defaults;
  const AppliedDefects& defects = scenario_->defects;
  EXPECT_EQ(defects.unlogged_edges.size(),
            static_cast<size_t>(defaults.unlogged_edges));
  EXPECT_EQ(defects.wrong_name_edges.size(),
            static_cast<size_t>(defaults.wrong_name_edges));
  EXPECT_EQ(defects.erroneous_id_edges.size(),
            static_cast<size_t>(defaults.erroneous_id_edges));
  EXPECT_EQ(defects.server_side_apps.size(),
            static_cast<size_t>(defaults.server_side_loggers));
  EXPECT_EQ(defects.uncovered_server_side_apps.size(),
            static_cast<size_t>(defaults.uncovered_server_side_loggers));
  EXPECT_EQ(defects.exception_edges.size(),
            static_cast<size_t>(defaults.exception_edges));
  EXPECT_EQ(defects.coincidences.size(),
            static_cast<size_t>(defaults.coincidence_pairs));
  EXPECT_EQ(defects.rare_edges.size(),
            static_cast<size_t>(defaults.rare_edges));
}

TEST_F(HugScenarioTest, UnloggedEdgesConcentrateOnFewApps) {
  // The paper removes 4 applications "which do not log all of their
  // invocations" in §4.9.
  EXPECT_LE(scenario_->defects.apps_with_unlogged_invocations.size(), 5u);
  EXPECT_GE(scenario_->defects.apps_with_unlogged_invocations.size(), 1u);
}

TEST_F(HugScenarioTest, WrongNameIdsAreAbsentFromDirectory) {
  for (int e : scenario_->defects.wrong_name_edges) {
    const InvocationEdge& edge =
        scenario_->topology.edges[static_cast<size_t>(e)];
    ASSERT_FALSE(edge.miscited_id.empty());
    EXPECT_FALSE(scenario_->directory.FindById(edge.miscited_id).ok())
        << edge.miscited_id;
  }
}

TEST_F(HugScenarioTest, ErroneousIdEdgesCiteValidButWrongEntry) {
  for (int e : scenario_->defects.erroneous_id_edges) {
    const InvocationEdge& edge =
        scenario_->topology.edges[static_cast<size_t>(e)];
    EXPECT_NE(edge.cited_entry, edge.true_entry);
    EXPECT_GE(edge.cited_entry, 0);
    EXPECT_LT(edge.cited_entry, static_cast<int>(scenario_->directory.size()));
  }
}

TEST_F(HugScenarioTest, ExceptionEdgesPointToDeeperEntries) {
  for (int e : scenario_->defects.exception_edges) {
    const InvocationEdge& edge =
        scenario_->topology.edges[static_cast<size_t>(e)];
    EXPECT_GE(edge.exception_deep_entry, 0);
    EXPECT_NE(edge.exception_deep_entry, edge.cited_entry);
    EXPECT_GT(edge.failure_prob, 0.0);
  }
}

TEST_F(HugScenarioTest, CoincidencesAreNotTrueDependencies) {
  for (const auto& [app, entry] : scenario_->defects.coincidences) {
    const std::string& name =
        scenario_->topology.apps[static_cast<size_t>(app)].name;
    const std::string& id =
        scenario_->directory.entry(static_cast<size_t>(entry)).id;
    EXPECT_FALSE(scenario_->app_service_deps.count({name, id}))
        << name << " -> " << id;
  }
}

TEST_F(HugScenarioTest, EveryNonRareEdgeIsReachableInSomeUseCase) {
  std::set<int> reachable;
  std::function<void(const CallStep&)> visit = [&](const CallStep& step) {
    reachable.insert(step.edge);
    for (const CallStep& child : step.children) visit(child);
  };
  for (const UseCase& uc : scenario_->topology.use_cases) {
    for (const CallStep& step : uc.steps) visit(step);
  }
  for (const UseCase& uc : scenario_->topology.batch_use_cases) {
    for (const CallStep& step : uc.steps) visit(step);
  }
  for (size_t e = 0; e < scenario_->topology.edges.size(); ++e) {
    EXPECT_TRUE(reachable.count(static_cast<int>(e)))
        << "edge " << e << " unreachable";
  }
}

TEST_F(HugScenarioTest, DeterministicForSameSeed) {
  HugScenarioConfig config;
  auto again = BuildHugScenario(config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().interaction_pairs, scenario_->interaction_pairs);
  EXPECT_EQ(again.value().app_service_deps, scenario_->app_service_deps);
  EXPECT_EQ(again.value().topology.edges.size(),
            scenario_->topology.edges.size());
}

TEST_F(HugScenarioTest, DifferentSeedDifferentTopology) {
  HugScenarioConfig config;
  config.seed = 999;
  auto other = BuildHugScenario(config);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value().interaction_pairs, scenario_->interaction_pairs);
}

TEST_F(HugScenarioTest, NightAndWeekdayFlagsSet) {
  int night = 0, office = 0;
  for (const Application& app : scenario_->topology.apps) {
    night += app.night_active;
    office += app.weekday_only;
  }
  EXPECT_EQ(night, 5);
  EXPECT_EQ(office, 4);
}

TEST_F(HugScenarioTest, UpsrvStoryIsPresent) {
  // The paper's concrete example: UPSRV2 is in the directory; the stale
  // name UPSRV is not.
  EXPECT_TRUE(scenario_->directory.FindById("UPSRV2").ok());
  EXPECT_FALSE(scenario_->directory.FindById("UPSRV").ok());
}

}  // namespace
}  // namespace logmine::sim
