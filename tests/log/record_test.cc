#include "log/record.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(SeverityTest, NamesAreStable) {
  EXPECT_EQ(SeverityName(Severity::kDebug), "DEBUG");
  EXPECT_EQ(SeverityName(Severity::kInfo), "INFO");
  EXPECT_EQ(SeverityName(Severity::kWarning), "WARN");
  EXPECT_EQ(SeverityName(Severity::kError), "ERROR");
}

TEST(LogRecordTest, EqualityComparesAllFields) {
  LogRecord a;
  a.client_ts = 1;
  a.server_ts = 2;
  a.severity = Severity::kInfo;
  a.source = "App";
  a.host = "h";
  a.user = "u";
  a.message = "m";
  LogRecord b = a;
  EXPECT_EQ(a, b);

  LogRecord c = a;
  c.client_ts = 99;
  EXPECT_FALSE(a == c);
  c = a;
  c.severity = Severity::kError;
  EXPECT_FALSE(a == c);
  c = a;
  c.message = "other";
  EXPECT_FALSE(a == c);
  c = a;
  c.user = "";
  EXPECT_FALSE(a == c);
}

TEST(LogRecordTest, DefaultsAreEmpty) {
  LogRecord record;
  EXPECT_EQ(record.client_ts, 0);
  EXPECT_EQ(record.severity, Severity::kInfo);
  EXPECT_TRUE(record.source.empty());
  EXPECT_TRUE(record.user.empty());
}

}  // namespace
}  // namespace logmine
