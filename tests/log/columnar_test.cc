#include "log/columnar.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/codec.h"
#include "log/corpus_io.h"
#include "util/rng.h"

namespace logmine {
namespace {

LogRecord Rec(TimeMs ts, std::string source, std::string message,
              std::string host = "h1", std::string user = "u1") {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts + 7;
  record.severity = Severity::kWarning;
  record.source = std::move(source);
  record.host = std::move(host);
  record.user = std::move(user);
  record.message = std::move(message);
  return record;
}

// Exact record-for-record equality through the text codec: two stores
// are equal iff they encode to the same text.
void ExpectStoresEqual(const LogStore& a, const LogStore& b) {
  ASSERT_EQ(a.size(), b.size());
  std::vector<LogRecord> a_records, b_records;
  for (size_t i = 0; i < a.size(); ++i) {
    a_records.push_back(a.GetRecord(i));
    b_records.push_back(b.GetRecord(i));
  }
  EXPECT_EQ(LineCodec::EncodeAll(a_records), LineCodec::EncodeAll(b_records));
}

TEST(ColumnarTest, RoundTripsRecordsDictionariesAndSentinels) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "first")).ok());
  ASSERT_TRUE(store.Append(Rec(250, "B", "pipe | and \\ newline \n", "h2",
                               ""))  // no user
                  .ok());
  ASSERT_TRUE(store.Append(Rec(90, "A", "", "", "")).ok());  // out of order
  const std::string bytes = EncodeColumnar(store);
  ASSERT_TRUE(LooksColumnar(bytes));

  auto loaded = DecodeColumnar(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStoresEqual(store, loaded.value());
  // Dictionary ids survive verbatim, not merely the names.
  EXPECT_EQ(loaded.value().source_id(0), store.source_id(0));
  EXPECT_EQ(loaded.value().host_id(2), LogStore::kNoHost);
  EXPECT_EQ(loaded.value().user_id(1), LogStore::kNoUser);
}

TEST(ColumnarTest, TextAndColumnarConvertLosslesslyBothWays) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1000, "svc-a", "alpha")).ok());
  ASSERT_TRUE(store.Append(Rec(2000, "svc-b", "beta")).ok());
  const std::string text = [&] {
    std::vector<LogRecord> records;
    for (size_t i = 0; i < store.size(); ++i)
      records.push_back(store.GetRecord(i));
    return LineCodec::EncodeAll(records);
  }();

  // text -> store -> columnar -> store -> text
  auto from_text = LineCodec::DecodeAll(text);
  ASSERT_TRUE(from_text.ok());
  LogStore text_store;
  ASSERT_TRUE(text_store.AppendBatch(from_text.value()).ok());
  auto from_columnar = DecodeColumnar(EncodeColumnar(text_store));
  ASSERT_TRUE(from_columnar.ok()) << from_columnar.status();
  std::vector<LogRecord> back;
  for (size_t i = 0; i < from_columnar.value().size(); ++i) {
    back.push_back(from_columnar.value().GetRecord(i));
  }
  EXPECT_EQ(LineCodec::EncodeAll(back), text);
}

TEST(ColumnarTest, FuzzRoundTripRandomCorpora) {
  Rng rng(20260808);
  for (int round = 0; round < 20; ++round) {
    LogStore store;
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    TimeMs ts = rng.UniformInt(0, 1'000'000);
    for (int i = 0; i < n; ++i) {
      // Deliberately adversarial values: negative deltas, empty and
      // escape-heavy strings, absent context, every severity.
      ts += rng.UniformInt(-5000, 5000);
      LogRecord record;
      record.client_ts = ts;
      record.server_ts = ts + rng.UniformInt(-100, 100);
      record.severity = static_cast<Severity>(rng.UniformInt(0, 3));
      record.source = "src" + std::to_string(rng.UniformInt(0, 5));
      if (rng.Bernoulli(0.5)) {
        record.host = "host" + std::to_string(rng.UniformInt(0, 3));
      }
      if (rng.Bernoulli(0.5)) {
        record.user = "user" + std::to_string(rng.UniformInt(0, 3));
      }
      std::string message;
      const int len = static_cast<int>(rng.UniformInt(0, 40));
      for (int c = 0; c < len; ++c) {
        message += static_cast<char>(rng.UniformInt(1, 126));
      }
      record.message = message;
      ASSERT_TRUE(store.Append(record).ok());
    }
    auto loaded = DecodeColumnar(EncodeColumnar(store));
    ASSERT_TRUE(loaded.ok()) << "round " << round << ": " << loaded.status();
    ExpectStoresEqual(store, loaded.value());
  }
}

TEST(ColumnarTest, QuarantinedCorpusSurvivesTheColumnarHop) {
  // A dirty text corpus ingested leniently, then rewritten columnar:
  // the *surviving* records round-trip; the quarantined line is gone in
  // both representations identically.
  LogStore clean;
  ASSERT_TRUE(clean.Append(Rec(100, "A", "good one")).ok());
  ASSERT_TRUE(clean.Append(Rec(200, "B", "good two")).ok());
  std::string text = LineCodec::Encode(clean.GetRecord(0)) + "\n" +
                     "garbage line\n" +
                     LineCodec::Encode(clean.GetRecord(1)) + "\n";
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.5;
  IngestStats stats;
  auto records = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(stats.lines_quarantined, 1u);
  LogStore survivors;
  ASSERT_TRUE(survivors.AppendBatch(records.value()).ok());
  auto loaded = DecodeColumnar(EncodeColumnar(survivors));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStoresEqual(survivors, loaded.value());
}

TEST(ColumnarTest, SkippingMessagesLoadsEverythingElse) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "a long message body")).ok());
  ASSERT_TRUE(store.Append(Rec(200, "B", "another")).ok());
  ColumnarReadOptions options;
  options.load_messages = false;
  auto loaded = DecodeColumnar(EncodeColumnar(store), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().message(0), "");
  EXPECT_EQ(loaded.value().message(1), "");
  EXPECT_EQ(loaded.value().client_ts(1), store.client_ts(1));
  EXPECT_EQ(loaded.value().source_name(loaded.value().source_id(0)), "A");
  EXPECT_EQ(loaded.value().host_id(0), store.host_id(0));
}

TEST(ColumnarTest, BitRotAnywhereIsAParseError) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "payload")).ok());
  const std::string clean = EncodeColumnar(store);
  // Flip one byte at a spread of positions; every single one must be a
  // detected failure, never silently wrong records.
  for (size_t at = 0; at < clean.size(); at += 7) {
    std::string dirty = clean;
    dirty[at] = static_cast<char>(dirty[at] ^ 0x20);
    auto loaded = DecodeColumnar(dirty);
    EXPECT_FALSE(loaded.ok()) << "byte " << at << " flip went undetected";
  }
}

TEST(ColumnarTest, TruncationIsAParseError) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "payload")).ok());
  const std::string clean = EncodeColumnar(store);
  for (size_t keep : {clean.size() - 1, clean.size() / 2, size_t{3}}) {
    auto loaded = DecodeColumnar(clean.substr(0, keep));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST(ColumnarTest, FileRoundTripAndCorpusAutodetection) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "logmine_columnar_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "corpus.lmc").string();

  LogStore store;
  ASSERT_TRUE(store.Append(Rec(300, "B", "later")).ok());
  ASSERT_TRUE(store.Append(Rec(100, "A", "earlier")).ok());
  ASSERT_TRUE(WriteColumnarFile(path, store).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  auto direct = ReadColumnarFile(path);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectStoresEqual(store, direct.value());

  // The generic corpus reader autodetects the binary format by magic
  // bytes and returns an indexed store, like any text corpus.
  auto detected = ReadCorpusFile(path);
  ASSERT_TRUE(detected.ok()) << detected.status();
  EXPECT_TRUE(detected.value().index_built());
  EXPECT_EQ(detected.value().size(), 2u);
  EXPECT_EQ(detected.value().GetRecord(0).source, "B");  // insertion order

  std::filesystem::remove_all(dir);
}

TEST(ColumnarTest, TextCorpusIsNotMistakenForColumnar) {
  EXPECT_FALSE(LooksColumnar("2006-01-02 03:04:05.678|..."));
  EXPECT_FALSE(LooksColumnar(""));
  EXPECT_FALSE(LooksColumnar("LMS"));
  EXPECT_TRUE(LooksColumnar(std::string("LMSN") + "rest"));
}

TEST(ColumnarTest, EmptyStoreRoundTrips) {
  LogStore store;
  auto loaded = DecodeColumnar(EncodeColumnar(store));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value().empty());
  EXPECT_EQ(loaded.value().num_sources(), 0u);
}

}  // namespace
}  // namespace logmine
