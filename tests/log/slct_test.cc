#include "log/slct.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

TEST(SlctTest, ClustersFixedTemplateWithVariablePosition) {
  std::vector<std::string> owned;
  for (int i = 0; i < 30; ++i) {
    owned.push_back("request processed in " + std::to_string(i * 37) + " ms");
  }
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer clusterer(SlctConfig{.support = 10, .max_words = 32});
  const SlctResult result = clusterer.Cluster(messages);
  ASSERT_EQ(result.templates.size(), 1u);
  EXPECT_EQ(result.templates[0].ToString(), "request processed in * ms");
  EXPECT_EQ(result.templates[0].count, 30);
  EXPECT_EQ(result.outliers, 0);
  EXPECT_EQ(result.messages, 30);
}

TEST(SlctTest, SeparatesDistinctTemplates) {
  std::vector<std::string> owned;
  for (int i = 0; i < 20; ++i) {
    owned.push_back("cache refresh completed (" + std::to_string(i) +
                    " entries)");
    owned.push_back("queue depth " + std::to_string(i));
  }
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer clusterer(SlctConfig{.support = 10, .max_words = 32});
  const SlctResult result = clusterer.Cluster(messages);
  ASSERT_EQ(result.templates.size(), 2u);
  // Sorted by count descending, ties by token order.
  EXPECT_EQ(result.templates[0].count, 20);
  EXPECT_EQ(result.templates[1].count, 20);
}

TEST(SlctTest, RareMessagesBecomeOutliers) {
  std::vector<std::string> owned;
  for (int i = 0; i < 15; ++i) owned.push_back("heartbeat ok");
  owned.push_back("something unique happened once");
  owned.push_back("another oddity");
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer clusterer(SlctConfig{.support = 10, .max_words = 32});
  const SlctResult result = clusterer.Cluster(messages);
  ASSERT_EQ(result.templates.size(), 1u);
  EXPECT_EQ(result.templates[0].ToString(), "heartbeat ok");
  EXPECT_EQ(result.outliers, 2);
}

TEST(SlctTest, SupportThresholdGates) {
  std::vector<std::string> owned;
  for (int i = 0; i < 9; ++i) owned.push_back("just below support");
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer strict(SlctConfig{.support = 10, .max_words = 32});
  EXPECT_TRUE(strict.Cluster(messages).templates.empty());
  SlctClusterer loose(SlctConfig{.support = 9, .max_words = 32});
  EXPECT_EQ(loose.Cluster(messages).templates.size(), 1u);
}

TEST(SlctTest, EmptyInputAndEmptyMessages) {
  SlctClusterer clusterer(SlctConfig{.support = 2, .max_words = 32});
  EXPECT_TRUE(clusterer.Cluster({}).templates.empty());
  std::vector<std::string_view> blanks = {"", "  ", ""};
  const SlctResult result = clusterer.Cluster(blanks);
  EXPECT_TRUE(result.templates.empty());
  EXPECT_EQ(result.messages, 3);
}

TEST(SlctTest, DifferentLengthsDoNotMerge) {
  std::vector<std::string> owned;
  for (int i = 0; i < 12; ++i) owned.push_back("job started");
  for (int i = 0; i < 12; ++i) owned.push_back("job started late");
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer clusterer(SlctConfig{.support = 10, .max_words = 32});
  const SlctResult result = clusterer.Cluster(messages);
  EXPECT_EQ(result.templates.size(), 2u);
}

TEST(SlctTest, ClusterSourceFiltersByAppAndWindow) {
  LogStore store;
  for (int i = 0; i < 25; ++i) {
    LogRecord record;
    record.client_ts = i * 100;
    record.server_ts = record.client_ts;
    record.source = i % 2 == 0 ? "A" : "B";
    record.message = "tick " + std::to_string(i);
    ASSERT_TRUE(store.Append(record).ok());
  }
  store.BuildIndex();
  SlctClusterer clusterer(SlctConfig{.support = 5, .max_words = 32});
  const SlctResult a_result = clusterer.ClusterSource(
      store, store.FindSource("A").value(), 0, 10000);
  EXPECT_EQ(a_result.messages, 13);
  ASSERT_EQ(a_result.templates.size(), 1u);
  EXPECT_EQ(a_result.templates[0].ToString(), "tick *");
  // Narrow window.
  const SlctResult windowed = clusterer.ClusterSource(
      store, store.FindSource("A").value(), 0, 500);
  EXPECT_EQ(windowed.messages, 3);
}

TEST(SlctTest, MaxWordsTruncates) {
  std::vector<std::string> owned;
  for (int i = 0; i < 12; ++i) {
    owned.push_back("a b c d e f " + std::to_string(i));
  }
  std::vector<std::string_view> messages(owned.begin(), owned.end());
  SlctClusterer clusterer(SlctConfig{.support = 10, .max_words = 3});
  const SlctResult result = clusterer.Cluster(messages);
  ASSERT_EQ(result.templates.size(), 1u);
  EXPECT_EQ(result.templates[0].ToString(), "a b c");
}

}  // namespace
}  // namespace logmine
