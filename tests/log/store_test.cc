#include "log/store.h"

#include <gtest/gtest.h>

#include <span>
#include <utility>
#include <vector>

namespace logmine {
namespace {

LogRecord Rec(TimeMs ts, std::string source, std::string user = "",
              std::string host = "") {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts + 100;
  record.source = std::move(source);
  record.user = std::move(user);
  record.host = std::move(host);
  record.message = "m" + std::to_string(ts);
  return record;
}

TEST(LogStoreTest, EmptyStore) {
  LogStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.num_sources(), 0u);
  EXPECT_EQ(store.min_ts(), 0);
  EXPECT_EQ(store.max_ts(), 0);
  store.BuildIndex();
  EXPECT_TRUE(store.index_built());
}

TEST(LogStoreTest, AppendRejectsEmptySource) {
  LogStore store;
  LogRecord record = Rec(1, "A");
  record.source.clear();
  EXPECT_FALSE(store.Append(record).ok());
  EXPECT_TRUE(store.empty());
}

TEST(LogStoreTest, InternsDictionaries) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1, "A", "alice", "h1")).ok());
  ASSERT_TRUE(store.Append(Rec(2, "B", "", "h1")).ok());
  ASSERT_TRUE(store.Append(Rec(3, "A", "alice", "h2")).ok());
  EXPECT_EQ(store.num_sources(), 2u);
  EXPECT_EQ(store.num_hosts(), 2u);
  EXPECT_EQ(store.num_users(), 1u);
  EXPECT_EQ(store.source_id(0), store.source_id(2));
  EXPECT_EQ(store.source_name(store.source_id(0)), "A");
  EXPECT_EQ(store.user_id(1), LogStore::kNoUser);
  EXPECT_EQ(store.user_name(store.user_id(0)), "alice");
}

TEST(LogStoreTest, GetRecordRoundTrips) {
  LogStore store;
  const LogRecord original = Rec(42, "App", "u1", "host9");
  ASSERT_TRUE(store.Append(original).ok());
  EXPECT_EQ(store.GetRecord(0), original);
}

TEST(LogStoreTest, FindSource) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1, "Alpha")).ok());
  auto found = store.FindSource("Alpha");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), store.source_id(0));
  EXPECT_FALSE(store.FindSource("Beta").ok());
  EXPECT_FALSE(store.FindSource("alpha").ok());  // exact match only
}

TEST(LogStoreTest, SourceTimestampsSortedEvenWithSkewedAppends) {
  LogStore store;
  // Out-of-order appends, as produced by clock skew.
  ASSERT_TRUE(store.Append(Rec(50, "A")).ok());
  ASSERT_TRUE(store.Append(Rec(10, "A")).ok());
  ASSERT_TRUE(store.Append(Rec(30, "B")).ok());
  ASSERT_TRUE(store.Append(Rec(20, "A")).ok());
  store.BuildIndex();
  const auto a = store.FindSource("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(store.SourceTimestamps(a.value()),
            (std::vector<TimeMs>{10, 20, 50}));
}

TEST(LogStoreTest, TimeOrderIsStable) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(10, "A")).ok());  // index 0
  ASSERT_TRUE(store.Append(Rec(10, "B")).ok());  // index 1, same ts
  ASSERT_TRUE(store.Append(Rec(5, "C")).ok());   // index 2
  store.BuildIndex();
  EXPECT_EQ(store.TimeOrder(), (std::vector<uint32_t>{2, 0, 1}));
}

TEST(LogStoreTest, CountInRangeHalfOpen) {
  LogStore store;
  for (TimeMs t : {10, 20, 30, 40}) {
    ASSERT_TRUE(store.Append(Rec(t, "A")).ok());
  }
  store.BuildIndex();
  const auto a = store.FindSource("A").value();
  EXPECT_EQ(store.CountInRange(a, 10, 40), 3);  // [10, 40) excludes 40
  EXPECT_EQ(store.CountInRange(a, 0, 100), 4);
  EXPECT_EQ(store.CountInRange(a, 41, 100), 0);
  EXPECT_EQ(store.CountInRange(a, 20, 20), 0);
}

TEST(LogStoreTest, SourceTimestampsInRangeIsAZeroCopyViewOfTheIndex) {
  LogStore store;
  for (TimeMs t : {10, 20, 30, 40}) {
    ASSERT_TRUE(store.Append(Rec(t, "A")).ok());
  }
  store.BuildIndex();
  const auto a = store.FindSource("A").value();
  const std::vector<TimeMs>& all = store.SourceTimestamps(a);
  for (const auto& [begin, end] : std::vector<std::pair<TimeMs, TimeMs>>{
           {10, 40}, {0, 100}, {41, 100}, {20, 20}, {15, 35}}) {
    const std::span<const TimeMs> view =
        store.SourceTimestampsInRange(a, begin, end);
    // The view agrees with CountInRange and with a filtered copy...
    EXPECT_EQ(static_cast<int64_t>(view.size()),
              store.CountInRange(a, begin, end));
    std::vector<TimeMs> expected;
    for (TimeMs t : all) {
      if (t >= begin && t < end) expected.push_back(t);
    }
    EXPECT_EQ(std::vector<TimeMs>(view.begin(), view.end()), expected);
    // ...and aliases the sorted per-source index, copying nothing.
    if (!view.empty()) {
      EXPECT_GE(view.data(), all.data());
      EXPECT_LE(view.data() + view.size(), all.data() + all.size());
    }
  }
}

TEST(LogStoreTest, MinMaxTs) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(500, "A")).ok());
  ASSERT_TRUE(store.Append(Rec(100, "B")).ok());
  ASSERT_TRUE(store.Append(Rec(900, "A")).ok());
  EXPECT_EQ(store.min_ts(), 100);  // works without index
  EXPECT_EQ(store.max_ts(), 900);
  store.BuildIndex();
  EXPECT_EQ(store.min_ts(), 100);  // and with it
  EXPECT_EQ(store.max_ts(), 900);
}

TEST(LogStoreTest, AppendInvalidatesIndex) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1, "A")).ok());
  store.BuildIndex();
  EXPECT_TRUE(store.index_built());
  ASSERT_TRUE(store.Append(Rec(2, "A")).ok());
  EXPECT_FALSE(store.index_built());
  store.BuildIndex();
  EXPECT_EQ(store.SourceTimestamps(store.FindSource("A").value()).size(), 2u);
}

TEST(LogStoreTest, BuildIndexIsIdempotent) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1, "A")).ok());
  store.BuildIndex();
  store.BuildIndex();
  EXPECT_EQ(store.TimeOrder().size(), 1u);
}


TEST(LogStoreTest, AppendBatchMatchesPerRecordAppend) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(Rec(1000 + i * 3, "src" + std::to_string(i % 4),
                          i % 2 == 0 ? "user" + std::to_string(i % 3) : "",
                          i % 3 == 0 ? "host" + std::to_string(i % 5) : ""));
  }
  LogStore one_by_one;
  for (const LogRecord& record : records) {
    ASSERT_TRUE(one_by_one.Append(record).ok());
  }
  LogStore batched;
  ASSERT_TRUE(batched.AppendBatch(records).ok());
  ASSERT_EQ(batched.size(), one_by_one.size());
  // Same interned ids, columns and dictionaries — batch is a pure
  // fast path, not a different ingest semantics.
  EXPECT_EQ(batched.num_sources(), one_by_one.num_sources());
  EXPECT_EQ(batched.num_hosts(), one_by_one.num_hosts());
  EXPECT_EQ(batched.num_users(), one_by_one.num_users());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(batched.source_id(i), one_by_one.source_id(i));
    EXPECT_EQ(batched.host_id(i), one_by_one.host_id(i));
    EXPECT_EQ(batched.user_id(i), one_by_one.user_id(i));
    EXPECT_EQ(batched.message(i), one_by_one.message(i));
  }
}

TEST(LogStoreTest, AppendBatchStopsAtFirstInvalidRecord) {
  std::vector<LogRecord> records = {Rec(1, "A"), Rec(2, ""), Rec(3, "C")};
  LogStore store;
  EXPECT_FALSE(store.AppendBatch(records).ok());
  // Mirrors a loop of Append calls: the valid prefix stays.
  EXPECT_EQ(store.size(), 1u);
}

TEST(LogStoreTest, FromColumnsRoundTripsAndValidates) {
  LogStore original;
  ASSERT_TRUE(original.Append(Rec(100, "A", "u1", "h1")).ok());
  ASSERT_TRUE(original.Append(Rec(200, "B", "", "")).ok());

  auto columns_of = [](const LogStore& store) {
    LogStore::Columns columns;
    for (size_t i = 0; i < store.size(); ++i) {
      columns.client_ts.push_back(store.client_ts(i));
      columns.server_ts.push_back(store.server_ts(i));
      columns.severity.push_back(store.severity(i));
      columns.source_ids.push_back(store.source_id(i));
      columns.host_ids.push_back(store.host_id(i));
      columns.user_ids.push_back(store.user_id(i));
      columns.message_data += store.message(i);
      columns.message_ends.push_back(columns.message_data.size());
    }
    for (size_t i = 0; i < store.num_sources(); ++i)
      columns.source_names.emplace_back(
          store.source_name(static_cast<uint32_t>(i)));
    for (size_t i = 0; i < store.num_hosts(); ++i)
      columns.host_names.emplace_back(
          store.host_name(static_cast<uint32_t>(i)));
    for (size_t i = 0; i < store.num_users(); ++i)
      columns.user_names.emplace_back(
          store.user_name(static_cast<uint32_t>(i)));
    return columns;
  };

  auto rebuilt = LogStore::FromColumns(columns_of(original));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ASSERT_EQ(rebuilt.value().size(), 2u);
  EXPECT_EQ(rebuilt.value().host_id(1), LogStore::kNoHost);
  EXPECT_EQ(rebuilt.value().user_id(1), LogStore::kNoUser);
  // The intern maps are rebuilt, not just the name vectors.
  EXPECT_EQ(rebuilt.value().FindSource("B").value(), original.source_id(1));

  // Ragged columns are rejected.
  auto ragged = columns_of(original);
  ragged.server_ts.pop_back();
  EXPECT_FALSE(LogStore::FromColumns(std::move(ragged)).ok());

  // Out-of-range ids are rejected.
  auto bad_id = columns_of(original);
  bad_id.source_ids[0] = 99;
  EXPECT_FALSE(LogStore::FromColumns(std::move(bad_id)).ok());

  // Duplicate dictionary names are rejected.
  auto dup = columns_of(original);
  dup.source_names.push_back(dup.source_names[0]);
  EXPECT_FALSE(LogStore::FromColumns(std::move(dup)).ok());

  // Message offsets that overrun the arena are rejected.
  auto bad_arena = columns_of(original);
  bad_arena.message_ends.back() += 1;
  EXPECT_FALSE(LogStore::FromColumns(std::move(bad_arena)).ok());

  // Non-monotone message offsets are rejected.
  auto backwards = columns_of(original);
  std::swap(backwards.message_ends.front(), backwards.message_ends.back());
  EXPECT_FALSE(LogStore::FromColumns(std::move(backwards)).ok());
}

TEST(LogStoreTest, ReserveDoesNotChangeContents) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(1, "A")).ok());
  store.Reserve(1000);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Append(Rec(2, "B")).ok());
  EXPECT_EQ(store.size(), 2u);
}

}  // namespace
}  // namespace logmine
