#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/codec.h"
#include "util/rng.h"

namespace logmine {
namespace {

// The determinism contract of DecodeOptions::num_chunks: for ANY chunk
// count, records, stats (counts, per-class tallies, first-K samples with
// their global line numbers and byte offsets), budget judgement and
// fail-fast error are identical to the serial decode. These tests pin it
// property-style over hand-built and randomized corpora.

const std::vector<int> kChunkCounts = {1, 2, 7, 16};

std::string GoodLine(int i) {
  LogRecord record;
  record.client_ts = 1000 + i * 10;
  record.server_ts = record.client_ts + 3;
  record.source = "src" + std::to_string(i % 5);
  record.host = "h";
  record.user = "u";
  record.message = "message " + std::to_string(i);
  return LineCodec::Encode(record);
}

struct DecodeOutcome {
  bool ok = false;
  std::string error;
  std::string encoded_records;
  IngestStats stats;
};

DecodeOutcome DecodeWith(std::string_view text, DecodeOptions options,
                         int num_chunks) {
  options.num_chunks = num_chunks;
  DecodeOutcome outcome;
  auto result = LineCodec::DecodeAll(text, options, &outcome.stats);
  outcome.ok = result.ok();
  if (result.ok()) {
    outcome.encoded_records = LineCodec::EncodeAll(result.value());
  } else {
    outcome.error = result.status().message();
  }
  return outcome;
}

void ExpectSameOutcome(const DecodeOutcome& serial,
                       const DecodeOutcome& chunked, int num_chunks) {
  SCOPED_TRACE("num_chunks=" + std::to_string(num_chunks));
  EXPECT_EQ(serial.ok, chunked.ok);
  EXPECT_EQ(serial.error, chunked.error);
  EXPECT_EQ(serial.encoded_records, chunked.encoded_records);
  EXPECT_EQ(serial.stats.lines_total, chunked.stats.lines_total);
  EXPECT_EQ(serial.stats.records_decoded, chunked.stats.records_decoded);
  EXPECT_EQ(serial.stats.lines_quarantined, chunked.stats.lines_quarantined);
  EXPECT_EQ(serial.stats.by_class, chunked.stats.by_class);
  ASSERT_EQ(serial.stats.samples.size(), chunked.stats.samples.size());
  for (size_t i = 0; i < serial.stats.samples.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(serial.stats.samples[i].line_number,
              chunked.stats.samples[i].line_number);
    EXPECT_EQ(serial.stats.samples[i].byte_offset,
              chunked.stats.samples[i].byte_offset);
    EXPECT_EQ(static_cast<int>(serial.stats.samples[i].error_class),
              static_cast<int>(chunked.stats.samples[i].error_class));
    EXPECT_EQ(serial.stats.samples[i].error, chunked.stats.samples[i].error);
    EXPECT_EQ(serial.stats.samples[i].text, chunked.stats.samples[i].text);
  }
}

void ExpectChunkCountInvariant(std::string_view text,
                               const DecodeOptions& options) {
  const DecodeOutcome serial = DecodeWith(text, options, 1);
  for (int num_chunks : kChunkCounts) {
    if (num_chunks == 1) continue;
    ExpectSameOutcome(serial, DecodeWith(text, options, num_chunks),
                      num_chunks);
  }
}

TEST(ParallelDecodeTest, CleanCorpusIsChunkCountInvariant) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += GoodLine(i) + "\n";
  ExpectChunkCountInvariant(text, DecodeOptions{});

  DecodeOptions quarantine;
  quarantine.policy = DecodePolicy::kQuarantine;
  quarantine.max_bad_fraction = 0.2;
  ExpectChunkCountInvariant(text, quarantine);
}

TEST(ParallelDecodeTest, QuarantinedCorpusIsChunkCountInvariant) {
  // Bad lines sprayed through the file, including blank lines and a
  // run of consecutive offenders, under a budget that passes.
  std::string text;
  for (int i = 0; i < 120; ++i) {
    if (i % 11 == 0) {
      text += "definitely not a log line " + std::to_string(i) + "\n";
    } else if (i % 17 == 0) {
      text += "\n";  // blank — not a line at all for the tally
    } else {
      text += GoodLine(i) + "\n";
    }
  }
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.5;
  options.max_samples = 5;  // fewer samples than offenders: first-K only
  ExpectChunkCountInvariant(text, options);
}

TEST(ParallelDecodeTest, BudgetRejectionIsChunkCountInvariant) {
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += (i % 3 == 0) ? "garbage\n" : GoodLine(i) + "\n";
  }
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.1;  // 1/3 bad: must fail identically
  ExpectChunkCountInvariant(text, options);
}

TEST(ParallelDecodeTest, FailFastErrorIsChunkCountInvariant) {
  // The offending line sits mid-file; every chunking must report the
  // same global line number and byte offset.
  std::string text;
  for (int i = 0; i < 80; ++i) {
    text += (i == 47) ? "broken | line | here\n" : GoodLine(i) + "\n";
  }
  ExpectChunkCountInvariant(text, DecodeOptions{});
}

TEST(ParallelDecodeTest, TruncatedFinalLineIsChunkCountInvariant) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += GoodLine(i) + "\n";
  text += GoodLine(50).substr(0, 9);  // cut mid-timestamp, no newline

  DecodeOptions options;
  options.lenient_truncated_tail = true;
  ExpectChunkCountInvariant(text, options);

  // And without the lenient tail the cut line fails identically too.
  ExpectChunkCountInvariant(text, DecodeOptions{});
}

TEST(ParallelDecodeTest, MoreChunksThanLinesIsFine) {
  std::string text = GoodLine(0) + "\n" + GoodLine(1) + "\n";
  ExpectChunkCountInvariant(text, DecodeOptions{});
  DecodeOptions options;
  options.num_chunks = 16;
  IngestStats stats;
  auto result = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().size(), 2u);
  EXPECT_EQ(stats.records_decoded, 2u);
}

TEST(ParallelDecodeTest, EmptyAndBlankOnlyBuffers) {
  for (const std::string text : {std::string(), std::string("\n\n\n"),
                                 std::string("   \n\t\n")}) {
    ExpectChunkCountInvariant(text, DecodeOptions{});
    DecodeOptions options;
    options.num_chunks = 7;
    auto result = LineCodec::DecodeAll(text, options, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().empty());
  }
}

TEST(ParallelDecodeTest, RandomizedCorporaAreChunkCountInvariant) {
  Rng rng(424242);
  for (int round = 0; round < 15; ++round) {
    std::string text;
    const int lines = static_cast<int>(rng.UniformInt(0, 150));
    for (int i = 0; i < lines; ++i) {
      const int64_t roll = rng.UniformInt(0, 9);
      if (roll == 0) {
        text += "junk " + std::to_string(rng.UniformInt(0, 1000)) + "\n";
      } else if (roll == 1) {
        text += "\n";
      } else {
        text += GoodLine(static_cast<int>(rng.UniformInt(0, 500))) + "\n";
      }
    }
    // Half the rounds: cut the trailing newline (or a few final bytes).
    if (rng.Bernoulli(0.5) && !text.empty()) {
      text.resize(text.size() -
                  static_cast<size_t>(rng.UniformInt(
                      1, std::min<int64_t>(5, static_cast<int64_t>(
                                                  text.size())))));
    }
    DecodeOptions options;
    options.policy = DecodePolicy::kQuarantine;
    options.max_bad_fraction = 0.4;
    options.lenient_truncated_tail = rng.Bernoulli(0.5);
    options.max_samples = static_cast<size_t>(rng.UniformInt(0, 8));
    SCOPED_TRACE("round " + std::to_string(round));
    ExpectChunkCountInvariant(text, options);
  }
}

TEST(ParallelDecodeTest, AutoModeDecodesCorrectly) {
  // num_chunks = 0 picks chunking from the pool size; correctness must
  // not depend on what it picks. Make the buffer big enough to actually
  // split (the auto floor is ~64 KiB per chunk).
  std::string text;
  while (text.size() < 200 * 1024) {
    text += GoodLine(static_cast<int>(text.size() % 997)) + "\n";
  }
  const DecodeOutcome serial = DecodeWith(text, DecodeOptions{}, 1);
  const DecodeOutcome auto_mode = DecodeWith(text, DecodeOptions{}, 0);
  ExpectSameOutcome(serial, auto_mode, 0);
}

}  // namespace
}  // namespace logmine
