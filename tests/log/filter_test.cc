#include "log/filter.h"

#include <gtest/gtest.h>

namespace logmine {
namespace {

LogRecord Rec(TimeMs ts, std::string source, std::string user = "") {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.user = std::move(user);
  record.message = "x";
  return record;
}

class FilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (TimeMs t : {5, 10, 15, 20, 25}) {
      ASSERT_TRUE(store_.Append(Rec(t, t % 10 == 5 ? "A" : "B",
                                    t >= 15 ? "u1" : "")).ok());
    }
    store_.BuildIndex();
  }
  LogStore store_;
};

TEST_F(FilterTest, IndicesInRangeHalfOpenAndOrdered) {
  const auto idx = IndicesInRange(store_, 10, 25);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(store_.client_ts(idx[0]), 10);
  EXPECT_EQ(store_.client_ts(idx[1]), 15);
  EXPECT_EQ(store_.client_ts(idx[2]), 20);
}

TEST_F(FilterTest, IndicesInRangeEmptyWindow) {
  EXPECT_TRUE(IndicesInRange(store_, 100, 200).empty());
  EXPECT_TRUE(IndicesInRange(store_, 11, 11).empty());
}

TEST_F(FilterTest, IndicesWherePredicate) {
  const auto with_user = IndicesWhere(
      store_, [](const LogStore& s, size_t i) {
        return s.user_id(i) != LogStore::kNoUser;
      });
  EXPECT_EQ(with_user.size(), 3u);
}

TEST_F(FilterTest, SliceByTimeCopiesWindow) {
  const LogStore slice = SliceByTime(store_, 10, 21);
  EXPECT_EQ(slice.size(), 3u);
  EXPECT_TRUE(slice.index_built());
  EXPECT_EQ(slice.min_ts(), 10);
  EXPECT_EQ(slice.max_ts(), 20);
  // Dictionary ids re-interned but names preserved.
  EXPECT_TRUE(slice.FindSource("A").ok());
  EXPECT_TRUE(slice.FindSource("B").ok());
}

TEST_F(FilterTest, CountsPerSource) {
  const auto counts = CountsPerSource(store_, 0, 100);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 5);
  EXPECT_EQ(counts.size(), store_.num_sources());
  const auto a = store_.FindSource("A").value();
  EXPECT_EQ(counts[a], 3);  // 5, 15, 25
}

}  // namespace
}  // namespace logmine
