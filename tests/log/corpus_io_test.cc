#include "log/corpus_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace logmine {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("logmine_corpus_io_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             ".log");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::filesystem::path path_;
};

LogRecord Rec(TimeMs ts, std::string source, std::string message) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts + 5;
  record.source = std::move(source);
  record.host = "h";
  record.user = "u";
  record.message = std::move(message);
  return record;
}

TEST_F(CorpusIoTest, RoundTripsStore) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(300, "B", "later")).ok());
  ASSERT_TRUE(store.Append(Rec(100, "A", "pipe | in message")).ok());
  store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(store, path_.string()).ok());

  auto loaded = ReadCorpusFile(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_TRUE(loaded.value().index_built());
  // Written in time order -> record 0 is the earlier one.
  EXPECT_EQ(loaded.value().GetRecord(0).source, "A");
  EXPECT_EQ(loaded.value().GetRecord(0).message, "pipe | in message");
  EXPECT_EQ(loaded.value().GetRecord(1).source, "B");
}

TEST_F(CorpusIoTest, EmptyStoreYieldsEmptyFile) {
  LogStore store;
  store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(store, path_.string()).ok());
  auto loaded = ReadCorpusFile(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(CorpusIoTest, MissingFileIsNotFound) {
  auto loaded = ReadCorpusFile("/nonexistent/dir/corpus.log");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusIoTest, UnwritablePathFails) {
  LogStore store;
  store.BuildIndex();
  EXPECT_FALSE(WriteCorpusFile(store, "/nonexistent/dir/out.log").ok());
}

TEST_F(CorpusIoTest, CorruptFileReportsParseError) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a log line\n", f);
    std::fclose(f);
  }
  auto loaded = ReadCorpusFile(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(CorpusIoTest, WriteLeavesNoTempFileBehind) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "one")).ok());
  store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(store, path_.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".tmp"));
}

TEST_F(CorpusIoTest, WriteReplacesExistingCorpusAtomically) {
  // An existing corpus must survive intact up to the rename; after a
  // successful write the file holds exactly the new content.
  LogStore old_store;
  ASSERT_TRUE(old_store.Append(Rec(100, "OLD", "old corpus")).ok());
  old_store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(old_store, path_.string()).ok());

  LogStore new_store;
  ASSERT_TRUE(new_store.Append(Rec(200, "NEW", "new corpus")).ok());
  ASSERT_TRUE(new_store.Append(Rec(300, "NEW", "second")).ok());
  new_store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(new_store, path_.string()).ok());

  auto loaded = ReadCorpusFile(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().GetRecord(0).source, "NEW");
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".tmp"));
}

TEST_F(CorpusIoTest, QuarantineReadSkipsBadLinesAndReportsStats) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    LogStore store;
    ASSERT_TRUE(store.Append(Rec(100, "A", "first")).ok());
    ASSERT_TRUE(store.Append(Rec(200, "B", "second")).ok());
    store.BuildIndex();
    std::fputs(LineCodec::Encode(store.GetRecord(0)).c_str(), f);
    std::fputs("\nnot a log line\n", f);
    std::fputs(LineCodec::Encode(store.GetRecord(1)).c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }

  // Fail-fast still rejects the file ...
  ASSERT_FALSE(ReadCorpusFile(path_.string()).ok());

  // ... while quarantine mode loads the two good records.
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.5;
  IngestStats stats;
  auto loaded = ReadCorpusFile(path_.string(), options, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_TRUE(loaded.value().index_built());
  EXPECT_EQ(stats.lines_total, 3u);
  EXPECT_EQ(stats.lines_quarantined, 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(
                IngestErrorClass::kFieldCount)],
            1u);

  // A tighter budget rejects the same file; the reused stats struct
  // accumulates the second read's tallies on top of the first.
  options.max_bad_fraction = 0.1;
  auto rejected = ReadCorpusFile(path_.string(), options, &stats);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(stats.lines_total, 6u);
  EXPECT_EQ(stats.lines_quarantined, 2u);
}

TEST_F(CorpusIoTest, TruncatedFinalLineIsQuarantinedNotFatal) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "first")).ok());
  ASSERT_TRUE(store.Append(Rec(200, "B", "second")).ok());
  ASSERT_TRUE(store.Append(Rec(300, "C", "third")).ok());
  store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(store, path_.string()).ok());

  // Cut the file a few bytes into the last record — the shape a foreign
  // writer killed mid-append (or a live tail read mid-line) leaves.
  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const size_t last_line = text.rfind('\n', text.size() - 2) + 1;
  {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << text.substr(0, last_line + 5);  // mid-timestamp: unparsable
  }

  // Even the fail-fast read loses only the cut-off line, not the file.
  auto loaded = ReadCorpusFile(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().GetRecord(0).source, "A");
  EXPECT_EQ(loaded.value().GetRecord(1).source, "B");

  // The stats variant reports it under its distinct error class.
  DecodeOptions options;
  IngestStats stats;
  auto again = ReadCorpusFile(path_.string(), options, &stats);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again.value().size(), 2u);
  EXPECT_EQ(stats.lines_quarantined, 1u);
  EXPECT_EQ(
      stats.by_class[static_cast<size_t>(IngestErrorClass::kTruncatedLine)],
      1u);
}


TEST_F(CorpusIoTest, FailedWriteNeverLeavesATempFile) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "one")).ok());
  store.BuildIndex();
  const std::string bad_path = "/nonexistent/dir/out.log";
  ASSERT_FALSE(WriteCorpusFile(store, bad_path).ok());
  EXPECT_FALSE(std::filesystem::exists(bad_path + ".tmp"));
}

TEST_F(CorpusIoTest, ChunkedReadMatchesSerialRead) {
  LogStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.Append(Rec(1000 + i, "S" + std::to_string(i % 7),
                         "message " + std::to_string(i)))
            .ok());
  }
  store.BuildIndex();
  ASSERT_TRUE(WriteCorpusFile(store, path_.string()).ok());

  DecodeOptions serial;
  serial.num_chunks = 1;
  auto serial_store = ReadCorpusFile(path_.string(), serial);
  ASSERT_TRUE(serial_store.ok()) << serial_store.status();
  for (int num_chunks : {2, 7, 16}) {
    DecodeOptions chunked;
    chunked.num_chunks = num_chunks;
    auto chunked_store = ReadCorpusFile(path_.string(), chunked);
    ASSERT_TRUE(chunked_store.ok()) << chunked_store.status();
    ASSERT_EQ(chunked_store.value().size(), serial_store.value().size());
    for (size_t i = 0; i < serial_store.value().size(); i += 13) {
      EXPECT_EQ(LineCodec::Encode(chunked_store.value().GetRecord(i)),
                LineCodec::Encode(serial_store.value().GetRecord(i)));
    }
  }
}

}  // namespace
}  // namespace logmine
