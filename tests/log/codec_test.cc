#include "log/codec.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace logmine {
namespace {

LogRecord MakeRecord() {
  LogRecord record;
  record.client_ts = TimeFromCivil({.year = 2005, .month = 12, .day = 6,
                                    .hour = 8, .minute = 30, .second = 1,
                                    .millisecond = 250});
  record.server_ts = record.client_ts + 1234;
  record.severity = Severity::kWarning;
  record.source = "DPIFormidoc";
  record.host = "ws-042";
  record.user = "u0007";
  record.message = "Invoke externalService [fct [notify]]";
  return record;
}

TEST(LineCodecTest, EncodeProducesSevenFields) {
  const std::string line = LineCodec::Encode(MakeRecord());
  EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 6);
  EXPECT_NE(line.find("2005-12-06 08:30:01.250"), std::string::npos);
  EXPECT_NE(line.find("WARN"), std::string::npos);
}

TEST(LineCodecTest, RoundTrip) {
  const LogRecord record = MakeRecord();
  auto decoded = LineCodec::Decode(LineCodec::Encode(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
}

TEST(LineCodecTest, RoundTripEmptyOptionalFields) {
  LogRecord record = MakeRecord();
  record.host.clear();
  record.user.clear();
  record.message.clear();
  auto decoded = LineCodec::Decode(LineCodec::Encode(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
}

TEST(LineCodecTest, EscapesSpecialCharacters) {
  LogRecord record = MakeRecord();
  record.message = "pipes | and \\ backslashes\nand newlines";
  const std::string line = LineCodec::Encode(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto decoded = LineCodec::Decode(line);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().message, record.message);
}

TEST(LineCodecTest, FuzzRoundTripArbitraryMessages) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    LogRecord record = MakeRecord();
    record.message.clear();
    const int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      record.message +=
          static_cast<char>(rng.UniformInt(1, 126));  // any non-NUL ASCII
    }
    auto decoded = LineCodec::Decode(LineCodec::Encode(record));
    ASSERT_TRUE(decoded.ok()) << record.message;
    EXPECT_EQ(decoded.value().message, record.message);
  }
}

TEST(LineCodecTest, RejectsWrongFieldCount) {
  EXPECT_FALSE(LineCodec::Decode("a|b|c").ok());
  EXPECT_FALSE(LineCodec::Decode("").ok());
  const std::string line = LineCodec::Encode(MakeRecord());
  EXPECT_FALSE(LineCodec::Decode(line + "|extra").ok());
}

TEST(LineCodecTest, RejectsBadTimestampSeverityAndEscapes) {
  const std::string good = LineCodec::Encode(MakeRecord());
  std::string bad_ts = good;
  bad_ts.replace(0, 4, "20xx");
  EXPECT_FALSE(LineCodec::Decode(bad_ts).ok());

  std::string bad_sev = ReplaceAll(good, "WARN", "LOUD");
  EXPECT_FALSE(LineCodec::Decode(bad_sev).ok());

  EXPECT_FALSE(LineCodec::Decode(good + "\\").ok());      // dangling escape
  EXPECT_FALSE(LineCodec::Decode(good + "\\q").ok());     // unknown escape
}

TEST(LineCodecTest, RejectsEmptySource) {
  LogRecord record = MakeRecord();
  record.source.clear();
  // Encode happily writes it; Decode must reject.
  EXPECT_FALSE(LineCodec::Decode(LineCodec::Encode(record)).ok());
}

TEST(LineCodecTest, DecodeArbitraryGarbageNeverCrashes) {
  // Robustness property: Decode on random bytes must return cleanly
  // (usually a ParseError) for any input.
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const int len = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < len; ++i) {
      line += static_cast<char>(rng.UniformInt(1, 255));
    }
    auto result = LineCodec::Decode(line);  // must not crash or hang
    if (result.ok()) {
      // If it decoded, re-encoding must round-trip.
      auto again = LineCodec::Decode(LineCodec::Encode(result.value()));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value(), result.value());
    }
  }
}

TEST(LineCodecTest, EncodeAllDecodeAllRoundTrip) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 5; ++i) {
    LogRecord record = MakeRecord();
    record.client_ts += i * 1000;
    record.message = "line " + std::to_string(i);
    records.push_back(record);
  }
  auto decoded = LineCodec::DecodeAll(LineCodec::EncodeAll(records));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), records);
}

TEST(LineCodecTest, DecodeAllSkipsBlankLinesAndReportsLineNumbers) {
  const std::string text =
      LineCodec::Encode(MakeRecord()) + "\n\n  \n" +
      LineCodec::Encode(MakeRecord()) + "\n";
  auto decoded = LineCodec::DecodeAll(text);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 2u);

  auto failed = LineCodec::DecodeAll("\n\ngarbage\n");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace logmine
