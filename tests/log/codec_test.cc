#include "log/codec.h"

#include <gtest/gtest.h>

#include <utility>

#include "util/rng.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace logmine {
namespace {

LogRecord MakeRecord() {
  LogRecord record;
  record.client_ts = TimeFromCivil({.year = 2005, .month = 12, .day = 6,
                                    .hour = 8, .minute = 30, .second = 1,
                                    .millisecond = 250});
  record.server_ts = record.client_ts + 1234;
  record.severity = Severity::kWarning;
  record.source = "DPIFormidoc";
  record.host = "ws-042";
  record.user = "u0007";
  record.message = "Invoke externalService [fct [notify]]";
  return record;
}

TEST(LineCodecTest, EncodeProducesSevenFields) {
  const std::string line = LineCodec::Encode(MakeRecord());
  EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 6);
  EXPECT_NE(line.find("2005-12-06 08:30:01.250"), std::string::npos);
  EXPECT_NE(line.find("WARN"), std::string::npos);
}

TEST(LineCodecTest, RoundTrip) {
  const LogRecord record = MakeRecord();
  auto decoded = LineCodec::Decode(LineCodec::Encode(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
}

TEST(LineCodecTest, RoundTripEmptyOptionalFields) {
  LogRecord record = MakeRecord();
  record.host.clear();
  record.user.clear();
  record.message.clear();
  auto decoded = LineCodec::Decode(LineCodec::Encode(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
}

TEST(LineCodecTest, EscapesSpecialCharacters) {
  LogRecord record = MakeRecord();
  record.message = "pipes | and \\ backslashes\nand newlines";
  const std::string line = LineCodec::Encode(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto decoded = LineCodec::Decode(line);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().message, record.message);
}

TEST(LineCodecTest, FuzzRoundTripArbitraryMessages) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    LogRecord record = MakeRecord();
    record.message.clear();
    const int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      record.message +=
          static_cast<char>(rng.UniformInt(1, 126));  // any non-NUL ASCII
    }
    auto decoded = LineCodec::Decode(LineCodec::Encode(record));
    ASSERT_TRUE(decoded.ok()) << record.message;
    EXPECT_EQ(decoded.value().message, record.message);
  }
}

TEST(LineCodecTest, RejectsWrongFieldCount) {
  EXPECT_FALSE(LineCodec::Decode("a|b|c").ok());
  EXPECT_FALSE(LineCodec::Decode("").ok());
  const std::string line = LineCodec::Encode(MakeRecord());
  EXPECT_FALSE(LineCodec::Decode(line + "|extra").ok());
}

TEST(LineCodecTest, RejectsBadTimestampSeverityAndEscapes) {
  const std::string good = LineCodec::Encode(MakeRecord());
  std::string bad_ts = good;
  bad_ts.replace(0, 4, "20xx");
  EXPECT_FALSE(LineCodec::Decode(bad_ts).ok());

  std::string bad_sev = ReplaceAll(good, "WARN", "LOUD");
  EXPECT_FALSE(LineCodec::Decode(bad_sev).ok());

  EXPECT_FALSE(LineCodec::Decode(good + "\\").ok());      // dangling escape
  EXPECT_FALSE(LineCodec::Decode(good + "\\q").ok());     // unknown escape
}

TEST(LineCodecTest, RejectsEmptySource) {
  LogRecord record = MakeRecord();
  record.source.clear();
  // Encode happily writes it; Decode must reject.
  EXPECT_FALSE(LineCodec::Decode(LineCodec::Encode(record)).ok());
}

TEST(LineCodecTest, DecodeArbitraryGarbageNeverCrashes) {
  // Robustness property: Decode on random bytes must return cleanly
  // (usually a ParseError) for any input.
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const int len = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < len; ++i) {
      line += static_cast<char>(rng.UniformInt(1, 255));
    }
    auto result = LineCodec::Decode(line);  // must not crash or hang
    if (result.ok()) {
      // If it decoded, re-encoding must round-trip.
      auto again = LineCodec::Decode(LineCodec::Encode(result.value()));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value(), result.value());
    }
  }
}

TEST(LineCodecTest, EncodeAllDecodeAllRoundTrip) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 5; ++i) {
    LogRecord record = MakeRecord();
    record.client_ts += i * 1000;
    record.message = "line " + std::to_string(i);
    records.push_back(record);
  }
  auto decoded = LineCodec::DecodeAll(LineCodec::EncodeAll(records));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), records);
}

TEST(LineCodecTest, DecodeAllSkipsBlankLinesAndReportsLineNumbers) {
  const std::string text =
      LineCodec::Encode(MakeRecord()) + "\n\n  \n" +
      LineCodec::Encode(MakeRecord()) + "\n";
  auto decoded = LineCodec::DecodeAll(text);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 2u);

  auto failed = LineCodec::DecodeAll("\n\ngarbage\n");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("line 3"), std::string::npos);
}

TEST(LineCodecTest, DecodeAllReportsByteOffsetAlongsideLineNumber) {
  const std::string good = LineCodec::Encode(MakeRecord());
  const std::string text = good + "\n\ngarbage\n";
  auto failed = LineCodec::DecodeAll(text);
  ASSERT_FALSE(failed.ok());
  const size_t offset = text.find("garbage");
  EXPECT_NE(failed.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(failed.status().message().find(
                "(byte " + std::to_string(offset) + ")"),
            std::string::npos) << failed.status();
}

TEST(LineCodecTest, DecodeAllFailsFastOnEmptySourceField) {
  LogRecord no_source = MakeRecord();
  no_source.source.clear();
  const std::string text = LineCodec::Encode(MakeRecord()) + "\n" +
                           LineCodec::Encode(no_source) + "\n";
  auto failed = LineCodec::DecodeAll(text);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(failed.status().message().find("empty source field"),
            std::string::npos);
}

TEST(LineCodecTest, DecodeAllFailsFastOnDanglingEscape) {
  const std::string text = LineCodec::Encode(MakeRecord()) + "\\\n";
  auto failed = LineCodec::DecodeAll(text);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(failed.status().message().find("dangling escape"),
            std::string::npos);
}

TEST(LineCodecTest, DecodeClassifiesEveryErrorClass) {
  const std::string good = LineCodec::Encode(MakeRecord());
  LogRecord no_source = MakeRecord();
  no_source.source.clear();
  const std::vector<std::pair<std::string, IngestErrorClass>> cases = {
      {good + "\\", IngestErrorClass::kBadEscape},
      {good + "\\q", IngestErrorClass::kBadEscape},
      {"a|b|c", IngestErrorClass::kFieldCount},
      {ReplaceAll(good, "2005", "20xx"), IngestErrorClass::kBadTimestamp},
      {ReplaceAll(good, "WARN", "LOUD"), IngestErrorClass::kBadSeverity},
      {LineCodec::Encode(no_source), IngestErrorClass::kEmptySource},
  };
  for (const auto& [line, expected] : cases) {
    IngestErrorClass error_class = IngestErrorClass::kFieldCount;
    auto result = LineCodec::Decode(line, &error_class);
    ASSERT_FALSE(result.ok()) << line;
    EXPECT_EQ(error_class, expected) << line;
  }
}

TEST(LineCodecTest, QuarantineDecodeSkipsBadLinesAndTalliesStats) {
  LogRecord no_source = MakeRecord();
  no_source.source.clear();
  const std::string good = LineCodec::Encode(MakeRecord());
  const std::string text = good + "\n" +                       // ok
                           "garbage\n" +                       // field count
                           good + "\\\n" +                     // bad escape
                           LineCodec::Encode(no_source) +      // empty source
                           "\n\n" +                            // blank
                           ReplaceAll(good, "WARN", "LOUD") +  // bad severity
                           "\n" +
                           ReplaceAll(good, "2005", "20xx") +  // bad ts
                           "\n" + good + "\n";                 // ok

  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 1.0;
  IngestStats stats;
  auto decoded = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().size(), 2u);

  EXPECT_EQ(stats.lines_total, 7u);
  EXPECT_EQ(stats.records_decoded, 2u);
  EXPECT_EQ(stats.lines_quarantined, 5u);
  EXPECT_DOUBLE_EQ(stats.bad_fraction(), 5.0 / 7.0);
  using C = IngestErrorClass;
  EXPECT_EQ(stats.by_class[static_cast<size_t>(C::kFieldCount)], 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(C::kBadEscape)], 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(C::kEmptySource)], 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(C::kBadSeverity)], 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(C::kBadTimestamp)], 1u);

  ASSERT_EQ(stats.samples.size(), 5u);
  EXPECT_EQ(stats.samples[0].line_number, 2u);
  EXPECT_EQ(stats.samples[0].byte_offset, text.find("garbage"));
  EXPECT_EQ(stats.samples[0].error_class, C::kFieldCount);
  EXPECT_EQ(stats.samples[0].text, "garbage");
  const std::string report = stats.ToString();
  EXPECT_NE(report.find("FieldCount=1"), std::string::npos) << report;
  EXPECT_NE(report.find("quarantined"), std::string::npos) << report;
}

TEST(LineCodecTest, QuarantineCapsTheSampleList) {
  std::string text;
  for (int i = 0; i < 20; ++i) text += "bad line " + std::to_string(i) + "\n";
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 1.0;
  options.max_samples = 3;
  IngestStats stats;
  ASSERT_TRUE(LineCodec::DecodeAll(text, options, &stats).ok());
  EXPECT_EQ(stats.lines_quarantined, 20u);
  ASSERT_EQ(stats.samples.size(), 3u);
  EXPECT_EQ(stats.samples[2].line_number, 3u);
}

TEST(LineCodecTest, QuarantineEnforcesTheBadFractionBudget) {
  const std::string good = LineCodec::Encode(MakeRecord());
  std::string text;
  for (int i = 0; i < 8; ++i) text += good + "\n";
  text += "garbage one\ngarbage two\n";  // 2 of 10 bad

  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.25;
  IngestStats stats;
  auto ok = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 8u);

  options.max_bad_fraction = 0.1;  // 20% bad > 10% budget
  auto over = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("exceeds budget"),
            std::string::npos);
  // Stats accumulate across calls (two decodes of the same text by now)
  // and are fully populated even on a rejected decode.
  EXPECT_EQ(stats.lines_total, 20u);
  EXPECT_EQ(stats.lines_quarantined, 4u);

  // A zero budget (the default) quarantines nothing silently.
  options.max_bad_fraction = 0.0;
  EXPECT_FALSE(LineCodec::DecodeAll(text, options, &stats).ok());
}

TEST(LineCodecTest, IngestStatsAccumulateAcrossDecodeAllCalls) {
  const std::string good = LineCodec::Encode(MakeRecord());
  const std::string dirty = good + "\nbroken line\n" + good + "\n";

  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.5;
  options.max_samples = 3;
  IngestStats stats;
  ASSERT_TRUE(LineCodec::DecodeAll(dirty, options, &stats).ok());
  EXPECT_EQ(stats.lines_total, 3u);
  EXPECT_EQ(stats.lines_quarantined, 1u);
  ASSERT_EQ(stats.samples.size(), 1u);

  // A second decode into the same struct adds on top of the first —
  // a multi-file ingest reports one combined health summary.
  ASSERT_TRUE(LineCodec::DecodeAll(dirty, options, &stats).ok());
  EXPECT_EQ(stats.lines_total, 6u);
  EXPECT_EQ(stats.records_decoded, 4u);
  EXPECT_EQ(stats.lines_quarantined, 2u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(IngestErrorClass::kFieldCount)],
            2u);
  EXPECT_EQ(stats.samples.size(), 2u);

  // The budget is judged per call: a clean decode succeeds under a zero
  // budget even though the accumulated stats carry earlier quarantines.
  options.max_bad_fraction = 0.0;
  ASSERT_TRUE(LineCodec::DecodeAll(good + "\n", options, &stats).ok());
  EXPECT_EQ(stats.lines_total, 7u);
  EXPECT_EQ(stats.lines_quarantined, 2u);

  // Samples stop accumulating at the call's max_samples cap.
  options.max_bad_fraction = 0.5;
  ASSERT_TRUE(LineCodec::DecodeAll(dirty, options, &stats).ok());
  ASSERT_TRUE(LineCodec::DecodeAll(dirty, options, &stats).ok());
  EXPECT_EQ(stats.lines_quarantined, 4u);
  EXPECT_EQ(stats.samples.size(), 3u);
}

TEST(LineCodecTest, LenientTailQuarantinesUnterminatedFinalLine) {
  const std::string good = LineCodec::Encode(MakeRecord());
  // A writer died mid-append: the last line is cut off and has no
  // terminating newline.
  const std::string text = good + "\n" + good.substr(0, good.size() / 2);

  // The strict default fails fast on it ...
  ASSERT_FALSE(LineCodec::DecodeAll(text).ok());

  // ... while the lenient-tail option quarantines exactly that one
  // line, with its own error class, even under kFailFast.
  DecodeOptions options;
  options.lenient_truncated_tail = true;
  IngestStats stats;
  auto decoded = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().size(), 1u);
  EXPECT_EQ(stats.records_decoded, 1u);
  EXPECT_EQ(stats.lines_quarantined, 1u);
  EXPECT_EQ(
      stats.by_class[static_cast<size_t>(IngestErrorClass::kTruncatedLine)],
      1u);
  ASSERT_EQ(stats.samples.size(), 1u);
  EXPECT_EQ(stats.samples[0].error_class, IngestErrorClass::kTruncatedLine);
  EXPECT_NE(stats.ToString().find("TruncatedLine=1"), std::string::npos);
}

TEST(LineCodecTest, LenientTailDoesNotExcuseInteriorOrTerminatedDamage) {
  const std::string good = LineCodec::Encode(MakeRecord());
  DecodeOptions options;
  options.lenient_truncated_tail = true;
  // Interior damage still fails fast ...
  EXPECT_FALSE(LineCodec::DecodeAll("garbage\n" + good + "\n", options,
                                    /*stats=*/nullptr)
                   .ok());
  // ... and so does a malformed final line *with* its newline: a
  // terminated line was fully written, so it is corrupt, not cut off.
  EXPECT_FALSE(
      LineCodec::DecodeAll(good + "\ngarbage\n", options, nullptr).ok());
}

TEST(LineCodecTest, TruncatedTailNeverCountsAgainstTheBadBudget) {
  const std::string good = LineCodec::Encode(MakeRecord());
  const std::string text = good + "\n" + good.substr(0, good.size() / 2);
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = 0.0;  // zero tolerance for interior damage
  options.lenient_truncated_tail = true;
  IngestStats stats;
  auto decoded = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(stats.lines_quarantined, 1u);

  // The same zero budget still rejects interior damage in a file that
  // *also* has a truncated tail — leniency is surgical.
  IngestStats dirty_stats;
  auto rejected =
      LineCodec::DecodeAll("garbage\n" + text, options, &dirty_stats);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("exceeds budget"),
            std::string::npos)
      << rejected.status();
}

TEST(LineCodecTest, QuarantineOnCleanInputMatchesFailFast) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 10; ++i) {
    LogRecord record = MakeRecord();
    record.client_ts += i * 777;
    record.message = "clean " + std::to_string(i);
    records.push_back(record);
  }
  const std::string text = LineCodec::EncodeAll(records);
  auto strict = LineCodec::DecodeAll(text);
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  IngestStats stats;
  auto lenient = LineCodec::DecodeAll(text, options, &stats);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(strict.value(), lenient.value());
  EXPECT_EQ(stats.lines_quarantined, 0u);
  EXPECT_EQ(stats.records_decoded, 10u);
}

}  // namespace
}  // namespace logmine
