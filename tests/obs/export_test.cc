#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace logmine::obs {
namespace {

TEST(MangleMetricNameTest, ReplacesIllegalCharacters) {
  EXPECT_EQ(MangleMetricName("serve.query_ns"), "serve_query_ns");
  EXPECT_EQ(MangleMetricName("foo.bar-baz/qux"), "foo_bar_baz_qux");
  EXPECT_EQ(MangleMetricName("already_legal_123"), "already_legal_123");
}

TEST(MangleMetricNameTest, PrefixesLeadingDigit) {
  EXPECT_EQ(MangleMetricName("9lives"), "_9lives");
  EXPECT_EQ(MangleMetricName("0"), "_0");
}

// The golden: a fresh registry with only dynamic metrics touched renders
// exactly these series (include_zero=false hides the untouched
// well-known ones). Counter, gauge and histogram values are exact by
// construction; bucket bounds come from the log2 layout (<=1, then
// powers of two).
TEST(ToOpenMetricsTest, GoldenRendering) {
  MetricsRegistry registry;
  const auto requests = registry.RegisterCounter("demo.requests");
  const auto depth = registry.RegisterGauge("demo.depth");
  const auto latency = registry.RegisterHistogram("demo.latency_ms");
  registry.Add(requests, 7);
  registry.Add(depth, 3);
  registry.Observe(latency, 1);
  registry.Observe(latency, 1);
  registry.Observe(latency, 1);
  registry.Observe(latency, 100);

  OpenMetricsOptions options;
  options.include_zero = false;
  const std::string text = ToOpenMetrics(registry.Snapshot(), options);
  const std::string expected =
      "# TYPE logmine_demo_requests counter\n"
      "logmine_demo_requests_total 7\n"
      "# TYPE logmine_demo_depth gauge\n"
      "logmine_demo_depth 3\n"
      "# TYPE logmine_demo_latency_ms histogram\n"
      "logmine_demo_latency_ms_bucket{le=\"1\"} 3\n"
      "logmine_demo_latency_ms_bucket{le=\"128\"} 4\n"
      "logmine_demo_latency_ms_bucket{le=\"+Inf\"} 4\n"
      "logmine_demo_latency_ms_sum 103\n"
      "logmine_demo_latency_ms_count 4\n";
  EXPECT_EQ(text, expected);
}

TEST(ToOpenMetricsTest, SketchRendersAsSummaryWithinRelativeError) {
  MetricsRegistry registry;
  const auto sketch = registry.RegisterSketch("demo.sketch_ms");
  for (int i = 0; i < 100; ++i) registry.Observe(sketch, 1000);

  OpenMetricsOptions options;
  options.include_zero = false;
  const std::string text = ToOpenMetrics(registry.Snapshot(), options);
  EXPECT_NE(text.find("# TYPE logmine_demo_sketch_ms summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("logmine_demo_sketch_ms_sum 100000\n"),
            std::string::npos);
  EXPECT_NE(text.find("logmine_demo_sketch_ms_count 100\n"),
            std::string::npos);
  for (const char* quantile : {"0.5", "0.9", "0.99", "0.999"}) {
    const std::string needle =
        std::string("logmine_demo_sketch_ms{quantile=\"") + quantile +
        "\"} ";
    const size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos) << needle;
    const long value = std::strtol(text.c_str() + at + needle.size(),
                                   nullptr, 10);
    // Every quantile of a constant stream is the constant, up to the
    // sketch's 1% relative-error bound.
    EXPECT_NEAR(static_cast<double>(value), 1000.0, 10.0) << quantile;
  }
}

TEST(ToOpenMetricsTest, IncludeZeroRendersWellKnownMetrics) {
  MetricsRegistry registry;
  const std::string text = ToOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE logmine_pipeline_runs counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("logmine_pipeline_runs_total 0\n"), std::string::npos);
  // Untouched histograms still render their +Inf bucket, sum and count.
  EXPECT_NE(text.find("logmine_serve_ingest_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

TEST(ToOpenMetricsTest, CounterAlreadyNamedTotalIsNotDoubled) {
  MetricsRegistry registry;
  const auto id = registry.RegisterCounter("ingest.lines_total");
  registry.Add(id, 5);
  OpenMetricsOptions options;
  options.include_zero = false;
  EXPECT_EQ(ToOpenMetrics(registry.Snapshot(), options),
            "# TYPE logmine_ingest_lines counter\n"
            "logmine_ingest_lines_total 5\n");
}

TEST(ToOpenMetricsTest, CustomPrefix) {
  MetricsRegistry registry;
  const auto id = registry.RegisterCounter("x");
  registry.Add(id, 1);
  OpenMetricsOptions options;
  options.prefix = "acme_";
  options.include_zero = false;
  EXPECT_EQ(ToOpenMetrics(registry.Snapshot(), options),
            "# TYPE acme_x counter\nacme_x_total 1\n");
}

}  // namespace
}  // namespace logmine::obs
