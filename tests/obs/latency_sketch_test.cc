#include "obs/latency_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/snapshot.h"

namespace logmine::obs {
namespace {

int64_t ExactQuantile(std::vector<int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(q * static_cast<double>(values.size()))),
      1, static_cast<int64_t>(values.size()));
  return values[static_cast<size_t>(rank - 1)];
}

// |sketch - exact| / exact must stay within alpha (plus floating slack).
void ExpectWithinAlpha(const LatencySketch& sketch,
                       const std::vector<int64_t>& values, double q) {
  const int64_t exact = ExactQuantile(values, q);
  const int64_t estimated = sketch.Quantile(q);
  if (exact == 0) {
    EXPECT_EQ(estimated, 0) << "q=" << q;
    return;
  }
  const double relative_error =
      std::abs(static_cast<double>(estimated) - static_cast<double>(exact)) /
      static_cast<double>(exact);
  EXPECT_LE(relative_error, sketch.alpha() + 1e-9)
      << "q=" << q << " exact=" << exact << " estimated=" << estimated;
}

TEST(LatencySketchTest, EmptySketchIsZero) {
  LatencySketch sketch;
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.sum(), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0);
  EXPECT_EQ(sketch.min(), 0);
  EXPECT_EQ(sketch.max(), 0);
}

TEST(LatencySketchTest, SingleObservationReportsItself) {
  LatencySketch sketch;
  sketch.Observe(123'456'789);
  EXPECT_EQ(sketch.count(), 1);
  EXPECT_EQ(sketch.Quantile(0.0), 123'456'789);
  EXPECT_EQ(sketch.Quantile(0.5), 123'456'789);
  EXPECT_EQ(sketch.Quantile(1.0), 123'456'789);
}

TEST(LatencySketchTest, ZeroAndNegativeLandInZeroBucket) {
  LatencySketch sketch;
  sketch.Observe(0);
  sketch.Observe(-5);
  sketch.Observe(1000);
  EXPECT_EQ(sketch.count(), 3);
  EXPECT_EQ(sketch.Quantile(0.1), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0);
  ExpectWithinAlpha(sketch, {0, 0, 1000}, 1.0);
}

TEST(LatencySketchTest, RelativeErrorBoundOnRandomWorkloads) {
  // Several shapes: uniform, heavy-tailed (log-uniform over 6 decades),
  // and a latency-like mixture with a far tail. Every documented
  // quantile must be within alpha of the exact nearest-rank value.
  Rng rng(20260808);
  const double quantiles[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                              0.99, 0.999, 1.0};
  for (int shape = 0; shape < 3; ++shape) {
    LatencySketch sketch;
    std::vector<int64_t> values;
    for (int i = 0; i < 20'000; ++i) {
      int64_t v = 0;
      switch (shape) {
        case 0:
          v = rng.UniformInt(1, 1'000'000);
          break;
        case 1:
          v = static_cast<int64_t>(
              std::pow(10.0, 1.0 + 6.0 * rng.Uniform()));
          break;
        default:
          v = rng.UniformInt(0, 100) == 0 ? rng.UniformInt(1'000'000'000,
                                                           4'000'000'000)
                                          : rng.UniformInt(10'000, 90'000);
      }
      values.push_back(v);
      sketch.Observe(v);
    }
    for (double q : quantiles) ExpectWithinAlpha(sketch, values, q);
  }
}

TEST(LatencySketchTest, CoarserAlphaStillBounded) {
  Rng rng(7);
  LatencySketch sketch(0.05);
  std::vector<int64_t> values;
  for (int i = 0; i < 5'000; ++i) {
    const int64_t v = rng.UniformInt(1, 50'000'000);
    values.push_back(v);
    sketch.Observe(v);
  }
  EXPECT_DOUBLE_EQ(sketch.alpha(), 0.05);
  for (double q : {0.5, 0.9, 0.99}) ExpectWithinAlpha(sketch, values, q);
}

TEST(LatencySketchTest, MergeMatchesSingleSketchExactly) {
  // Split one stream across 4 sketches; the merge must equal the
  // sketch that saw everything — same counts, same quantiles.
  Rng rng(99);
  LatencySketch whole;
  LatencySketch parts[4];
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(0, 10'000'000);
    whole.Observe(v);
    parts[i % 4].Observe(v);
  }
  LatencySketch merged;
  for (const LatencySketch& part : parts) ASSERT_TRUE(merged.Merge(part));
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencySketchTest, MergeIsOrderIndependent) {
  Rng rng(4242);
  std::vector<LatencySketch> parts(6);
  for (int p = 0; p < 6; ++p) {
    for (int i = 0; i < 500 * (p + 1); ++i) {
      parts[static_cast<size_t>(p)].Observe(rng.UniformInt(1, 1'000'000'000));
    }
  }
  LatencySketch forward;
  for (const LatencySketch& part : parts) ASSERT_TRUE(forward.Merge(part));
  LatencySketch backward;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    ASSERT_TRUE(backward.Merge(*it));
  }
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.sum(), backward.sum());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_EQ(forward.Quantile(q), backward.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencySketchTest, MergeIsAssociative) {
  Rng rng(31337);
  LatencySketch a, b, c;
  for (int i = 0; i < 3'000; ++i) a.Observe(rng.UniformInt(1, 1'000));
  for (int i = 0; i < 3'000; ++i) b.Observe(rng.UniformInt(1'000, 1'000'000));
  for (int i = 0; i < 3'000; ++i) {
    c.Observe(rng.UniformInt(1'000'000, 1'000'000'000));
  }
  // (a + b) + c
  LatencySketch left = a;
  ASSERT_TRUE(left.Merge(b));
  ASSERT_TRUE(left.Merge(c));
  // a + (b + c)
  LatencySketch right_inner = b;
  ASSERT_TRUE(right_inner.Merge(c));
  LatencySketch right = a;
  ASSERT_TRUE(right.Merge(right_inner));
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(left.Quantile(q), right.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencySketchTest, MergeRefusesMismatchedAlpha) {
  LatencySketch fine(0.01);
  LatencySketch coarse(0.05);
  coarse.Observe(10);
  EXPECT_FALSE(fine.Merge(coarse));
  EXPECT_EQ(fine.count(), 0);
  // Merging an *empty* sketch of any alpha is a no-op, not an error.
  EXPECT_TRUE(fine.Merge(LatencySketch(0.2)));
}

TEST(LatencySketchTest, EncodeDecodeRoundTrip) {
  Rng rng(11);
  LatencySketch sketch(0.02);
  for (int i = 0; i < 2'000; ++i) {
    sketch.Observe(rng.UniformInt(0, 100'000'000));
  }
  SnapshotWriter writer;
  writer.BeginSection("sketch");
  sketch.Encode(&writer);
  writer.EndSection();
  const std::string bytes = std::move(writer).Finish();

  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  auto cursor = reader.value().Section("sketch");
  ASSERT_TRUE(cursor.ok());
  LatencySketch decoded;
  ASSERT_TRUE(LatencySketch::Decode(&cursor.value(), &decoded));
  EXPECT_TRUE(cursor.value().ExpectEnd().ok());
  EXPECT_EQ(decoded.count(), sketch.count());
  EXPECT_EQ(decoded.sum(), sketch.sum());
  EXPECT_DOUBLE_EQ(decoded.alpha(), sketch.alpha());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(decoded.Quantile(q), sketch.Quantile(q));
  }
}

TEST(LatencySketchTest, SparseStorageStaysSmall) {
  // ns .. minutes is ~12 decades of dynamic range; at alpha = 1% that
  // is ~1400 possible buckets, and a real stream touches far fewer.
  Rng rng(5);
  LatencySketch sketch;
  for (int i = 0; i < 100'000; ++i) {
    sketch.Observe(static_cast<int64_t>(
        std::pow(10.0, 12.0 * rng.Uniform())));
  }
  EXPECT_LE(sketch.num_buckets(), 1500u);
}

}  // namespace
}  // namespace logmine::obs
