#include "obs/resource_probe.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace logmine::obs {
namespace {

TEST(ResourceSampleTest, NowReadsMonotoneCumulativeCounters) {
  const ResourceSample a = ResourceSample::Now();
  // Burn a little CPU so the deltas are visibly positive.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20'000'000; ++i) sink += i;
  const ResourceSample b = ResourceSample::Now();

  EXPECT_GT(b.wall_ns, a.wall_ns);
  EXPECT_GE(b.user_cpu_ns + b.system_cpu_ns,
            a.user_cpu_ns + a.system_cpu_ns);
  EXPECT_GT(b.thread_cpu_ns, a.thread_cpu_ns);
  EXPECT_GE(b.max_rss_kb, a.max_rss_kb);
  EXPECT_GT(a.max_rss_kb, 0);
}

TEST(ResourceProbeTest, AccumulatesStagesByName) {
  ResourceProbe probe;
  {
    ResourceProbe::ScopedStage stage(&probe, "mine");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    ResourceProbe::ScopedStage stage(&probe, "mine");
  }
  {
    ResourceProbe::ScopedStage stage(&probe, "publish");
  }

  const std::vector<StageUsage> stages = probe.Stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].stage, "mine");
  EXPECT_EQ(stages[0].invocations, 2);
  EXPECT_GE(stages[0].wall_ns, 2'000'000);
  EXPECT_EQ(stages[1].stage, "publish");
  EXPECT_EQ(stages[1].invocations, 1);
}

TEST(ResourceProbeTest, NullProbeScopedStageIsANoOp) {
  ResourceProbe::ScopedStage stage(nullptr, "ignored");
  SUCCEED();
}

TEST(ResourceProbeTest, ToJsonNamesEveryStage) {
  ResourceProbe probe;
  {
    ResourceProbe::ScopedStage stage(&probe, "pipeline/l1");
  }
  const std::string json = probe.ToJson();
  EXPECT_EQ(json.rfind("{\"stages\":[", 0), 0u);
  EXPECT_NE(json.find("\"stage\":\"pipeline/l1\""), std::string::npos);
  EXPECT_NE(json.find("\"invocations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_kb\":"), std::string::npos);
}

TEST(ResourceProbeTest, ConcurrentOverlappingStagesAreSafe) {
  ResourceProbe probe;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&probe, t] {
      for (int i = 0; i < 50; ++i) {
        ResourceProbe::ScopedStage stage(
            &probe, t % 2 == 0 ? "even" : "odd");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<StageUsage> stages = probe.Stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].invocations + stages[1].invocations, 200);
}

}  // namespace
}  // namespace logmine::obs
