#include "obs/introspect.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace logmine::obs {
namespace {

std::string SocketPath(const std::string& tag) {
  return "/tmp/logmine_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

IntrospectionHandlers TestHandlers() {
  IntrospectionHandlers handlers;
  handlers.statusz = [] { return std::string("status page"); };
  handlers.metrics = [] { return std::string("metric_total 1\n"); };
  handlers.health = [] { return std::string("healthy generation=3"); };
  handlers.journal_tail = [](size_t n) {
    std::vector<std::string> lines;
    for (size_t i = 0; i < std::min<size_t>(n, 5); ++i) {
      lines.push_back("{\"i\":" + std::to_string(i) + "}");
    }
    return lines;
  };
  return handlers;
}

TEST(IntrospectionServerTest, AnswersEveryCommand) {
  const std::string path = SocketPath("cmds");
  auto server = IntrospectionServer::Start(path, TestHandlers());
  ASSERT_TRUE(server.ok()) << server.status().message();

  Result<std::string> statusz = IntrospectionQuery(path, "STATUSZ");
  ASSERT_TRUE(statusz.ok()) << statusz.status().message();
  EXPECT_EQ(statusz.value(), "status page\n");

  Result<std::string> metrics = IntrospectionQuery(path, "METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value(), "metric_total 1\n");

  Result<std::string> health = IntrospectionQuery(path, "HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), "healthy generation=3\n");

  Result<std::string> tail = IntrospectionQuery(path, "JOURNAL TAIL 2");
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value(), "{\"i\":0}\n{\"i\":1}\n");

  Result<std::string> unknown = IntrospectionQuery(path, "NONSENSE");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value(), "ERR unknown command\n");

  EXPECT_EQ(server.value()->requests_served(), 5u);
  server.value()->Stop();
  // The socket file is gone after Stop, and a second Stop is harmless.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  server.value()->Stop();
}

TEST(IntrospectionServerTest, RejectsOverlongSocketPath) {
  const std::string path = "/tmp/" + std::string(200, 'x') + ".sock";
  auto server = IntrospectionServer::Start(path, TestHandlers());
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(IntrospectionServerTest, ReplacesStaleSocketFile) {
  const std::string path = SocketPath("stale");
  {
    auto first = IntrospectionServer::Start(path, TestHandlers());
    ASSERT_TRUE(first.ok());
    // Simulate a crashed predecessor: drop the server without unlinking
    // by re-binding over the live file from a second Start.
    auto second = IntrospectionServer::Start(path, TestHandlers());
    ASSERT_TRUE(second.ok());
    Result<std::string> health = IntrospectionQuery(path, "HEALTH");
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value(), "healthy generation=3\n");
  }
}

TEST(IntrospectionServerTest, ConcurrentScrapersAllGetAnswers) {
  const std::string path = SocketPath("scrape");
  auto server = IntrospectionServer::Start(path, TestHandlers());
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<std::string> answer =
            IntrospectionQuery(path, i % 2 == 0 ? "HEALTH" : "METRICS");
        if (answer.ok() && !answer.value().empty()) ++ok_counts[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok_counts[t], kPerThread) << "thread " << t;
  }
  EXPECT_EQ(server.value()->requests_served(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(IntrospectionServerTest, ObsHandlersServeTheContext) {
  ObsContext context;
  context.metrics().Add(Metric::kPipelineRuns, 2);
  context.journal().Emit("test-1", "hello");
  {
    ResourceProbe::ScopedStage stage(&context.probe(), "unit");
  }

  const std::string path = SocketPath("obs");
  auto server = IntrospectionServer::Start(path, MakeObsHandlers(&context));
  ASSERT_TRUE(server.ok());

  Result<std::string> statusz = IntrospectionQuery(path, "STATUSZ");
  ASSERT_TRUE(statusz.ok());
  EXPECT_NE(statusz.value().find(context.journal().run_id()),
            std::string::npos);
  EXPECT_NE(statusz.value().find("pipeline.runs"), std::string::npos);
  EXPECT_NE(statusz.value().find("\"stage\":\"unit\""), std::string::npos);

  Result<std::string> metrics = IntrospectionQuery(path, "METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("logmine_pipeline_runs_total 2"),
            std::string::npos);

  // No service-specific health handler installed: the default reports ok.
  Result<std::string> health = IntrospectionQuery(path, "HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), "ok\n");

  Result<std::string> tail = IntrospectionQuery(path, "JOURNAL TAIL 8");
  ASSERT_TRUE(tail.ok());
  EXPECT_NE(tail.value().find("\"event\":\"hello\""), std::string::npos);
}

TEST(IntrospectionQueryTest, ConnectToAbsentSocketFails) {
  Result<std::string> answer =
      IntrospectionQuery(SocketPath("absent"), "HEALTH");
  EXPECT_FALSE(answer.ok());
}

}  // namespace
}  // namespace logmine::obs
