#include "obs/postmortem.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace logmine::obs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(PostmortemBundleTest, WriteReadRoundTrip) {
  const std::string dir = TempDir("logmine_pm_roundtrip");
  PostmortemOptions options;
  options.dir = dir + "/bundles";  // does not exist yet: created on write

  PostmortemBundle bundle;
  bundle.run_id = "run-test-1";
  bundle.reason = "sweep_degraded";
  bundle.trigger_span = "sweep-1/d0.r2";
  bundle.config_fingerprint = 0xDEADBEEFCAFEBABEull;
  bundle.captured_at_ns = 12345;
  bundle.metrics_json = "{\"metrics\":[]}";
  bundle.probe_json = "{\"stages\":[]}";
  bundle.trace_json = "{\"traceEvents\":[]}";
  bundle.journal_tail = {"{\"event\":\"a\"}", "{\"event\":\"b\"}"};

  Result<std::string> path = WritePostmortemBundle(options, bundle);
  ASSERT_TRUE(path.ok()) << path.status().message();
  EXPECT_NE(path.value().find("postmortem-run-test-1-"), std::string::npos);

  Result<PostmortemBundle> read = ReadPostmortemBundle(path.value());
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read.value().run_id, bundle.run_id);
  EXPECT_EQ(read.value().reason, bundle.reason);
  EXPECT_EQ(read.value().trigger_span, bundle.trigger_span);
  EXPECT_EQ(read.value().config_fingerprint, bundle.config_fingerprint);
  EXPECT_EQ(read.value().captured_at_ns, bundle.captured_at_ns);
  EXPECT_EQ(read.value().metrics_json, bundle.metrics_json);
  EXPECT_EQ(read.value().probe_json, bundle.probe_json);
  EXPECT_EQ(read.value().trace_json, bundle.trace_json);
  EXPECT_EQ(read.value().journal_tail, bundle.journal_tail);
}

TEST(PostmortemBundleTest, DisabledDirIsNotFound) {
  PostmortemBundle bundle;
  EXPECT_EQ(WritePostmortemBundle(PostmortemOptions{}, bundle).status().code(),
            StatusCode::kNotFound);
  ObsContext context;
  EXPECT_EQ(CapturePostmortem(PostmortemOptions{}, &context, "x", "y", 0)
                .status()
                .code(),
            StatusCode::kNotFound);
  // A disabled capture leaves no side effects behind.
  EXPECT_EQ(context.journal().events_emitted(), 0u);
}

TEST(PostmortemBundleTest, CorruptFileIsParseError) {
  const std::string dir = TempDir("logmine_pm_corrupt");
  PostmortemOptions options;
  options.dir = dir;
  PostmortemBundle bundle;
  bundle.run_id = "run-c";
  Result<std::string> path = WritePostmortemBundle(options, bundle);
  ASSERT_TRUE(path.ok());

  // Flip one byte in the middle: the container CRC must catch it.
  std::string bytes;
  {
    std::ifstream in(path.value(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x5A;
  {
    std::ofstream out(path.value(), std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_EQ(ReadPostmortemBundle(path.value()).status().code(),
            StatusCode::kParseError);
}

TEST(CapturePostmortemTest, CapturesLiveContextAndJournalsTheBundle) {
  const std::string dir = TempDir("logmine_pm_capture");
  PostmortemOptions options;
  options.dir = dir;
  options.journal_tail = 4;

  ObsContext context;
  context.metrics().Add(Metric::kPipelineRuns, 3);
  for (int i = 0; i < 10; ++i) {
    context.journal().Emit("serve-1", "epoch_ingested",
                           {JournalField::Num("epoch", i)});
  }
  {
    TraceSpan span(&context, "unit/stage");
  }
  {
    ResourceProbe::ScopedStage stage(&context.probe(), "unit/stage");
  }

  Result<std::string> path =
      CapturePostmortem(options, &context, "health_regression", "serve-1",
                        /*config_fingerprint=*/42);
  ASSERT_TRUE(path.ok()) << path.status().message();

  Result<PostmortemBundle> read = ReadPostmortemBundle(path.value());
  ASSERT_TRUE(read.ok()) << read.status().message();
  const PostmortemBundle& bundle = read.value();
  EXPECT_EQ(bundle.run_id, context.journal().run_id());
  EXPECT_EQ(bundle.reason, "health_regression");
  EXPECT_EQ(bundle.trigger_span, "serve-1");
  EXPECT_EQ(bundle.config_fingerprint, 42u);
  EXPECT_NE(bundle.metrics_json.find("pipeline.runs"), std::string::npos);
  EXPECT_NE(bundle.probe_json.find("unit/stage"), std::string::npos);
  EXPECT_NE(bundle.trace_json.find("unit/stage"), std::string::npos);
  // The tail is capped at the configured depth and holds the newest lines.
  ASSERT_EQ(bundle.journal_tail.size(), 4u);
  EXPECT_NE(bundle.journal_tail.back().find("\"epoch\":9"),
            std::string::npos);

  // The capture itself journaled a "postmortem" event naming the bundle
  // and bumped the counter.
  const std::vector<std::string> tail = context.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_NE(tail[0].find("\"event\":\"postmortem\""), std::string::npos);
  EXPECT_NE(tail[0].find("health_regression"), std::string::npos);
  const MetricsSnapshot snap = context.metrics().Snapshot();
  const MetricsSnapshot::Entry* written =
      snap.Find("postmortem.bundles_written");
  ASSERT_NE(written, nullptr);
  EXPECT_EQ(written->value, 1);
}

TEST(CapturePostmortemTest, SequenceNumbersKeepBundlesDistinct) {
  const std::string dir = TempDir("logmine_pm_seq");
  PostmortemOptions options;
  options.dir = dir;
  ObsContext context;
  Result<std::string> first =
      CapturePostmortem(options, &context, "a", "s", 1);
  Result<std::string> second =
      CapturePostmortem(options, &context, "b", "s", 1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value(), second.value());
  EXPECT_TRUE(fs::exists(first.value()));
  EXPECT_TRUE(fs::exists(second.value()));
}

}  // namespace
}  // namespace logmine::obs
