#include "obs/metrics.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace logmine::obs {
namespace {

TEST(MetricsRegistryTest, WellKnownMetricsStartAtZeroAndAdd) {
  MetricsRegistry registry;
  registry.Add(Metric::kIngestLinesTotal, 7);
  registry.Add(Metric::kIngestLinesTotal, 3);
  registry.Add(Metric::kExecutorQueueDepth, 5);
  registry.Add(Metric::kExecutorQueueDepth, -2);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("ingest.lines_total"), 10);
  EXPECT_EQ(snap.Value("executor.queue_depth"), 3);
  EXPECT_EQ(snap.Value("l2.bigrams_counted"), 0);

  const MetricsSnapshot::Entry* gauge = snap.Find("executor.queue_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricKind::kGauge);
}

TEST(MetricsRegistryTest, EveryWellKnownMetricHasANameAndAnEntry) {
  MetricsRegistry registry;
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_GE(snap.entries.size(), kNumWellKnownMetrics);
  for (size_t i = 0; i < kNumWellKnownMetrics; ++i) {
    const Metric metric = static_cast<Metric>(i);
    EXPECT_FALSE(MetricName(metric).empty()) << i;
    EXPECT_NE(snap.Find(MetricName(metric)), nullptr) << MetricName(metric);
  }
}

TEST(MetricsRegistryTest, HistogramTracksCountSumAndQuantiles) {
  MetricsRegistry registry;
  for (int64_t v : {1, 2, 4, 100, 1000}) {
    registry.Observe(Metric::kIngestDecodeNs, v);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snap.Find("ingest.decode_ns");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kHistogram);
  EXPECT_EQ(entry->hist.count, 5);
  EXPECT_EQ(entry->hist.sum, 1107);
  EXPECT_DOUBLE_EQ(entry->hist.mean(), 1107.0 / 5.0);
  // The p100 upper bound covers the largest observation.
  EXPECT_GE(entry->hist.QuantileUpperBound(1.0), 1000);
  EXPECT_LE(entry->hist.QuantileUpperBound(0.0), 1);
}

TEST(MetricsRegistryTest, QuantileUsesNearestRankNotInterpolation) {
  // Two observations, far apart: a high quantile must report the large
  // one. (A truncating rank formula returned the small bucket here.)
  MetricsRegistry registry;
  registry.Observe(Metric::kExecutorTaskNs, 100);
  registry.Observe(Metric::kExecutorTaskNs, 10'000'000);
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snap.Find("executor.task_ns");
  ASSERT_NE(entry, nullptr);
  EXPECT_GE(entry->hist.QuantileUpperBound(0.99), 10'000'000);
  EXPECT_GE(entry->hist.QuantileUpperBound(0.51), 10'000'000);
  EXPECT_LE(entry->hist.QuantileUpperBound(0.50), 128);
}

TEST(MetricsRegistryTest, QuantileClampsToObservedMax) {
  // Observations in the open-ended top bucket (and single observations
  // anywhere) must report the recorded max, never the bucket's nominal
  // INT64_MAX bound.
  MetricsRegistry registry;
  const int64_t huge = int64_t{1} << 62;
  registry.Observe(Metric::kExecutorTaskNs, huge);
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snap.Find("executor.task_ns");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist.max, huge);
  EXPECT_EQ(entry->hist.QuantileUpperBound(0.5), huge);
  EXPECT_EQ(entry->hist.QuantileUpperBound(0.99), huge);
  EXPECT_EQ(entry->hist.QuantileUpperBound(1.0), huge);

  MetricsRegistry single;
  single.Observe(Metric::kIngestDecodeNs, 3);
  const MetricsSnapshot single_snap = single.Snapshot();
  const MetricsSnapshot::Entry* one = single_snap.Find("ingest.decode_ns");
  ASSERT_NE(one, nullptr);
  // One observation of 3 lands in the (2, 4] bucket; the clamp reports
  // the observation itself rather than the bound 4.
  EXPECT_EQ(one->hist.QuantileUpperBound(0.99), 3);
}

TEST(MetricsRegistryTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(HistogramSnapshot::BucketOf(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketOf(1), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketOf(2), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketOf(3), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketOf(4), 2u);
  // Every bucket's upper bound contains the bucket of its own value.
  for (size_t i = 0; i + 1 < HistogramSnapshot::kNumBuckets; ++i) {
    EXPECT_EQ(HistogramSnapshot::BucketOf(HistogramSnapshot::BucketUpperBound(i)),
              i);
  }
}

TEST(MetricsRegistryTest, DynamicRegistrationFindsExistingNames) {
  MetricsRegistry registry;
  const auto id1 = registry.RegisterCounter("custom.widgets");
  const auto id2 = registry.RegisterCounter("custom.widgets");
  ASSERT_NE(id1, MetricsRegistry::kInvalidMetricId);
  EXPECT_EQ(id1, id2);
  // Same name with a different kind is refused.
  EXPECT_EQ(registry.RegisterHistogram("custom.widgets"),
            MetricsRegistry::kInvalidMetricId);

  registry.Add(id1, 42);
  EXPECT_EQ(registry.Snapshot().Value("custom.widgets"), 42);
}

TEST(MetricsRegistryTest, ExhaustedCapacityReportsResourceExhausted) {
  MetricsRegistry registry;
  // Fill the scalar family to its configured cap, then one more: the
  // strict API must say kResourceExhausted (not a silent drop), and the
  // lenient API must degrade to the invalid id.
  Result<MetricsRegistry::MetricId> last = MetricsRegistry::kInvalidMetricId;
  for (size_t i = 0; i < registry.options().max_scalars + 8; ++i) {
    last = registry.TryRegisterCounter("overflow." + std::to_string(i));
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(last.status().message().find("scalar"), std::string::npos);
  EXPECT_EQ(registry.RegisterCounter("overflow.one_more"),
            MetricsRegistry::kInvalidMetricId);
  registry.Add(MetricsRegistry::kInvalidMetricId, 999);  // must not crash
  EXPECT_EQ(registry.Snapshot().Value("overflow.one_more"), 0);

  // Existing names still resolve at capacity (lookup, not insert).
  const auto again = registry.TryRegisterCounter("overflow.0");
  EXPECT_TRUE(again.ok());
}

TEST(MetricsRegistryTest, CapacityIsConfigurablePerRegistry) {
  MetricsOptions small;
  small.max_histograms = kNumWellKnownMetrics;  // plenty
  MetricsOptions large = small;
  large.max_histograms = small.max_histograms + 64;
  MetricsRegistry constrained(small);
  MetricsRegistry roomy(large);
  // Exhaust `constrained`'s histogram family; `roomy` keeps going.
  Result<MetricsRegistry::MetricId> last = MetricsRegistry::kInvalidMetricId;
  for (size_t i = 0; i < small.max_histograms; ++i) {
    last = constrained.TryRegisterHistogram("dyn." + std::to_string(i));
    roomy.TryRegisterHistogram("dyn." + std::to_string(i));
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.status().code(), StatusCode::kResourceExhausted);
  const auto fits = roomy.TryRegisterHistogram("dyn.extra");
  ASSERT_TRUE(fits.ok());
  roomy.Observe(fits.value(), 42);
  EXPECT_EQ(roomy.Snapshot().Value("dyn.extra"), 1);
}

TEST(MetricsRegistryTest, SketchMetricsRecordAndSnapshot) {
  MetricsRegistry registry;
  EXPECT_EQ(MetricKindOf(Metric::kServeQueryNs), MetricKind::kSketch);
  EXPECT_EQ(MetricKindOf(Metric::kExecutorQueueWaitNs), MetricKind::kSketch);
  for (int i = 1; i <= 1000; ++i) {
    registry.Observe(Metric::kServeQueryNs, i * 1000);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snap.Find("serve.query_ns");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kSketch);
  EXPECT_EQ(entry->sketch.count(), 1000);
  EXPECT_EQ(snap.Value("serve.query_ns"), 1000);
  // p50 within 1% of 500us, p99 within 1% of 990us.
  EXPECT_NEAR(static_cast<double>(entry->sketch.Quantile(0.5)), 500'000.0,
              500'000.0 * 0.011);
  EXPECT_NEAR(static_cast<double>(entry->sketch.Quantile(0.99)), 990'000.0,
              990'000.0 * 0.011);
}

TEST(MetricsRegistryTest, DynamicSketchRegistrationAndKindConflicts) {
  MetricsRegistry registry;
  const auto sketch_id = registry.TryRegisterSketch("custom.latency");
  ASSERT_TRUE(sketch_id.ok());
  EXPECT_EQ(registry.RegisterSketch("custom.latency"), sketch_id.value());
  // Same name as a different kind is refused with kAlreadyExists.
  const auto as_counter = registry.TryRegisterCounter("custom.latency");
  ASSERT_FALSE(as_counter.ok());
  EXPECT_EQ(as_counter.status().code(), StatusCode::kAlreadyExists);
  registry.Observe(sketch_id.value(), 777);
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snap.Find("custom.latency");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->sketch.count(), 1);
  EXPECT_EQ(entry->sketch.Quantile(0.5), 777);
}

// Sketch merge across shards is exact and associative, so quantiles —
// not just counts — must be identical for any thread count.
TEST(MetricsRegistryTest, SketchSnapshotIsThreadCountInvariant) {
  constexpr int64_t kTotalWrites = 8000;
  std::vector<std::string> rendered;
  for (int num_threads : {1, 2, 5, 8}) {
    MetricsRegistry registry;
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&registry, t, num_threads] {
        for (int64_t i = t; i < kTotalWrites; i += num_threads) {
          registry.Observe(Metric::kServeQueryNs, (i * 37) % 1'000'000);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const MetricsSnapshot snap = registry.Snapshot();
    const MetricsSnapshot::Entry* entry = snap.Find("serve.query_ns");
    ASSERT_NE(entry, nullptr);
    std::string key = std::to_string(entry->sketch.count()) + "/" +
                      std::to_string(entry->sketch.sum());
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      key += "," + std::to_string(entry->sketch.Quantile(q));
    }
    rendered.push_back(std::move(key));
  }
  for (size_t i = 1; i < rendered.size(); ++i) {
    EXPECT_EQ(rendered[0], rendered[i]) << "thread-count variant " << i;
  }
}

// The tentpole concurrency property: writers on many threads, each with
// its own shard, and a sum-merged snapshot that is exact once they
// quiesce. Run under the tsan preset this also proves the fast path is
// race-free.
TEST(MetricsRegistryTest, ConcurrentHammeringSumsExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.Add(Metric::kIngestLinesTotal, 1);
        registry.Add(Metric::kExecutorQueueDepth, (i % 2 == 0) ? 1 : -1);
        registry.Observe(Metric::kIngestDecodeNs, t * kIterations + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("ingest.lines_total"),
            static_cast<int64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.Value("executor.queue_depth"), 0);
  const MetricsSnapshot::Entry* hist = snap.Find("ingest.decode_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, static_cast<int64_t>(kThreads) * kIterations);
}

// Merging is a sum over shards, so the snapshot must be identical no
// matter how the same logical writes were spread across threads.
TEST(MetricsRegistryTest, SnapshotIsDeterministicForAnyThreadCount) {
  constexpr int64_t kTotalWrites = 12000;
  std::vector<std::string> rendered;
  for (int num_threads : {1, 2, 3, 8}) {
    MetricsRegistry registry;
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&registry, t, num_threads] {
        for (int64_t i = t; i < kTotalWrites; i += num_threads) {
          registry.Add(Metric::kL2BigramsCounted, 2);
          registry.Observe(Metric::kL2MineNs, i % 4096);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    rendered.push_back(registry.Snapshot().ToJson());
  }
  for (size_t i = 1; i < rendered.size(); ++i) {
    EXPECT_EQ(rendered[0], rendered[i]) << "thread-count variant " << i;
  }
}

TEST(MetricsSnapshotTest, TextReportSkipsZeroRowsByDefault) {
  MetricsRegistry registry;
  registry.Add(Metric::kL1Runs, 2);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("l1.runs"), std::string::npos);
  EXPECT_EQ(text.find("l3.runs"), std::string::npos);
  const std::string full = snap.ToText(/*include_zero=*/true);
  EXPECT_NE(full.find("l3.runs"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonExportIsWellFormedAndComplete) {
  MetricsRegistry registry;
  registry.Add(Metric::kPipelineRuns, 1);
  registry.Observe(Metric::kPipelineRunNs, 12345);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"pipeline.runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.run_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Balanced braces (no raw metric value can inject structure).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsContextTest, NullSafeHelpersAndScopedGlobal) {
  // All helpers are no-ops on a null context.
  Count(nullptr, Metric::kL1Runs);
  Observe(nullptr, Metric::kL1MineNs, 1);
  ASSERT_EQ(Global(), nullptr);

  ObsContext context;
  {
    ScopedGlobalObs scoped(&context);
    EXPECT_EQ(Global(), &context);
    Count(Metric::kL1Runs);
    { LOGMINE_SPAN_GLOBAL("test/span", Metric::kL1MineNs); }
  }
  EXPECT_EQ(Global(), nullptr);
  Count(Metric::kL1Runs);  // dropped: no global context

  const MetricsSnapshot snap = context.metrics().Snapshot();
  EXPECT_EQ(snap.Value("l1.runs"), 1);
  const MetricsSnapshot::Entry* span_hist = snap.Find("l1.mine_ns");
  ASSERT_NE(span_hist, nullptr);
  EXPECT_EQ(span_hist->hist.count, 1);
  EXPECT_EQ(context.trace().total_recorded(), 1u);
}

}  // namespace
}  // namespace logmine::obs
