#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace logmine::obs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(JournalTest, EmitsWideEventsWithRunAndSpanIds) {
  const std::string dir = TempDir("logmine_journal_emit");
  JournalOptions options;
  options.path = dir + "/journal.jsonl";
  Journal journal(options);

  const std::string span = journal.BeginRootSpan("sweep");
  EXPECT_EQ(span, "sweep-1");
  journal.Emit(span + "/d0.r1/a2", "shard_attempt",
               {JournalField::Num("attempt", 2),
                JournalField::Flag("hedged", true),
                JournalField::Str("note", "with \"quotes\"\n")});

  const std::string content = ReadAll(options.path);
  EXPECT_NE(content.find("\"run\":\"" + journal.run_id() + "\""),
            std::string::npos);
  EXPECT_NE(content.find("\"span\":\"sweep-1/d0.r1/a2\""), std::string::npos);
  EXPECT_NE(content.find("\"event\":\"shard_attempt\""), std::string::npos);
  EXPECT_NE(content.find("\"attempt\":2"), std::string::npos);
  EXPECT_NE(content.find("\"hedged\":true"), std::string::npos);
  // Quotes and newlines inside string fields are escaped, so the file
  // stays one event per line.
  EXPECT_NE(content.find("with \\\"quotes\\\"\\n"), std::string::npos);
  EXPECT_EQ(CountLines(content), 1u);
  EXPECT_EQ(journal.events_emitted(), 1u);
}

TEST(JournalTest, RunIdsAreProcessUniquePerJournal) {
  Journal a;
  Journal b;
  EXPECT_NE(a.run_id(), b.run_id());
  EXPECT_EQ(a.run_id().rfind("run-", 0), 0u);
}

TEST(JournalTest, MemoryOnlyJournalStillKeepsTail) {
  Journal journal;  // no path
  for (int i = 0; i < 5; ++i) {
    journal.Emit("serve-1", "epoch_ingested", {JournalField::Num("epoch", i)});
  }
  const std::vector<std::string> tail = journal.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_NE(tail.front().find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(tail.back().find("\"epoch\":4"), std::string::npos);
}

TEST(JournalTest, TailIsBoundedByCapacity) {
  JournalOptions options;
  options.tail_capacity = 4;
  Journal journal(options);
  for (int i = 0; i < 100; ++i) {
    journal.Emit("span", "event", {JournalField::Num("i", i)});
  }
  EXPECT_EQ(journal.Tail(1000).size(), 4u);
  EXPECT_NE(journal.Tail(1000).back().find("\"i\":99"), std::string::npos);
}

TEST(JournalTest, RotatesWhenFileExceedsThreshold) {
  const std::string dir = TempDir("logmine_journal_rotate");
  JournalOptions options;
  options.path = dir + "/journal.jsonl";
  options.max_bytes_per_file = 512;
  options.max_rotated_files = 2;
  MetricsRegistry metrics;
  Journal journal(options, &metrics);

  for (int i = 0; i < 100; ++i) {
    journal.Emit("span-1", "event", {JournalField::Num("i", i)});
  }
  EXPECT_GT(journal.rotations(), 0u);
  EXPECT_TRUE(fs::exists(options.path + ".1"));
  // No generation beyond the configured cap survives.
  EXPECT_FALSE(fs::exists(options.path + ".3"));
  // The live file restarted below the threshold at the last rotation.
  EXPECT_LE(fs::file_size(options.path), 2 * options.max_bytes_per_file);

  const MetricsSnapshot snap = metrics.Snapshot();
  const MetricsSnapshot::Entry* emitted = snap.Find("journal.events_emitted");
  ASSERT_NE(emitted, nullptr);
  EXPECT_EQ(emitted->value, 100);
  const MetricsSnapshot::Entry* rotations = snap.Find("journal.rotations");
  ASSERT_NE(rotations, nullptr);
  EXPECT_EQ(rotations->value, static_cast<int64_t>(journal.rotations()));
}

TEST(JournalTest, ConcurrentEmittersNeverTearLines) {
  const std::string dir = TempDir("logmine_journal_concurrent");
  JournalOptions options;
  options.path = dir + "/journal.jsonl";
  Journal journal(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Emit("writer-" + std::to_string(t), "tick",
                     {JournalField::Num("i", i)});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::string content = ReadAll(options.path);
  EXPECT_EQ(CountLines(content),
            static_cast<size_t>(kThreads * kPerThread));
  // Every line is a complete object: starts with '{' and ends with '}'.
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(JournalToChromeTraceTest, ConvertsEventsAndSkipsTornLines) {
  std::string jsonl;
  jsonl +=
      "{\"ts_ns\":1000000,\"run\":\"run-x\",\"span\":\"sweep-1/d0.r0\","
      "\"event\":\"shard_done\",\"dur_ns\":2000000}\n";
  jsonl +=
      "{\"ts_ns\":3000000,\"run\":\"run-x\",\"span\":\"serve-1\","
      "\"event\":\"health_transition\"}\n";
  jsonl += "{\"ts_ns\":4000000,\"run\":\"run-x\",\"spa";  // torn final line

  const std::string trace = JournalToChromeTrace(jsonl);
  // The complete event became an "X" span with its duration in us.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":2000"), std::string::npos);
  // The durationless event became an instant.
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  // Two root spans -> two distinct tids; the torn line contributed nothing.
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(trace.find("4000"), std::string::npos);
}

TEST(JournalToChromeTraceTest, FileConverterRoundTrips) {
  const std::string dir = TempDir("logmine_journal_convert");
  JournalOptions options;
  options.path = dir + "/journal.jsonl";
  {
    Journal journal(options);
    const std::string span = journal.BeginRootSpan("pipeline");
    journal.Emit(span, "pipeline_start");
    journal.Emit(span + "/l1", "miner_done",
                 {JournalField::Num("dur_ns", 5000000)});
  }
  const std::string trace_path = dir + "/trace.json";
  ASSERT_TRUE(ConvertJournalToChromeTrace(options.path, trace_path).ok());
  const std::string trace = ReadAll(trace_path);
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("pipeline-1/l1 miner_done"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  EXPECT_EQ(
      ConvertJournalToChromeTrace(dir + "/absent.jsonl", trace_path).code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace logmine::obs
