#include "obs/trace.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace logmine::obs {
namespace {

TraceEvent Event(const char* name, int64_t start_ns, int64_t dur_ns) {
  TraceEvent event;
  event.name = name;
  event.tid = CurrentTraceThreadId();
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  return event;
}

TEST(TraceRecorderTest, KeepsEventsInOrder) {
  TraceRecorder recorder(8);
  recorder.Record(Event("first", 100, 10));
  recorder.Record(Event("second", 200, 20));
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_EQ(recorder.total_recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

// The flight-recorder contract: overflow forgets the OLDEST events and
// counts them as dropped; the retained window is the most recent
// `capacity` spans, oldest first.
TEST(TraceRecorderTest, RingOverflowKeepsTheMostRecentWindow) {
  TraceRecorder recorder(4);
  for (int64_t i = 0; i < 10; ++i) {
    recorder.Record(Event("span", i * 100, 50));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, static_cast<int64_t>(6 + i) * 100) << i;
  }
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNothingUnderCapacity) {
  TraceRecorder recorder(100000);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(Event("worker", MonotonicNowNs(), 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.Events().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

// Structural checks on the Chrome trace_event format: the envelope, one
// complete ("X") event per span, pid/tid/ts/dur fields, and escaping
// that keeps the JSON balanced.
TEST(TraceRecorderTest, ChromeTraceJsonHasTheExpectedStructure) {
  TraceRecorder recorder(8);
  recorder.Record(Event("pipeline/run", 1500, 2500));
  recorder.Record(Event("l1/mine", 2000, 1000));
  const std::string json = recorder.ToChromeTraceJson();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pipeline/run\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"l1/mine\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  // 1500 ns / 2500 ns render as fixed-point microseconds.
  EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos);

  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  // Ends with the closed envelope plus a trailing newline.
  ASSERT_GE(json.size(), 3u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(TraceRecorderTest, EmptyRecorderStillExportsAValidEnvelope) {
  TraceRecorder recorder(4);
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(TraceSpanTest, SpanRecordsDurationAndOptionalHistogram) {
  ObsContext context;
  {
    TraceSpan span(&context, "unit/scope", Metric::kEvalDayNs);
    // Spin briefly so the duration is visibly non-negative.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const std::vector<TraceEvent> events = context.trace().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit/scope");
  EXPECT_GE(events[0].dur_ns, 0);
  const MetricsSnapshot snap = context.metrics().Snapshot();
  const MetricsSnapshot::Entry* hist = snap.Find("eval.day_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 1);
}

TEST(TraceSpanTest, NullContextSpanIsANoop) {
  { TraceSpan span(nullptr, "noop"); }
  { LOGMINE_SPAN(nullptr, "noop/macro"); }
  SUCCEED();
}

TEST(MonotonicClockTest, NowIsMonotonicAndThreadIdsAreStable) {
  const int64_t a = MonotonicNowNs();
  const int64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
  const uint32_t tid = CurrentTraceThreadId();
  EXPECT_EQ(CurrentTraceThreadId(), tid);
  uint32_t other = tid;
  std::thread([&other] { other = CurrentTraceThreadId(); }).join();
  EXPECT_NE(other, tid);
}

}  // namespace
}  // namespace logmine::obs
