#include "core/agrawal_miner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::core {
namespace {

void AddUniform(LogStore* store, const std::string& source, TimeMs begin,
                TimeMs end, int count, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    LogRecord record;
    record.client_ts = rng->UniformInt(begin, end - 1);
    record.server_ts = record.client_ts;
    record.source = source;
    record.message = "x";
    ASSERT_TRUE(store->Append(record).ok());
  }
}

AgrawalConfig FastConfig() {
  AgrawalConfig config;
  config.minlogs = 50;
  config.sample_size = 300;
  return config;
}

TEST(AgrawalMinerTest, TestSlotDetectsTypicalDelays) {
  Rng rng(1);
  std::vector<TimeMs> a, b;
  for (int i = 0; i < 400; ++i) {
    const TimeMs t = rng.UniformInt(0, kMillisPerHour - 1000);
    a.push_back(t);
    b.push_back(t + rng.UniformInt(80, 160));  // typical delay band
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  AgrawalDelayMiner miner(FastConfig());
  EXPECT_TRUE(miner.TestSlot(a, b, 0, kMillisPerHour, 1));
}

TEST(AgrawalMinerTest, TestSlotNegativeOnIndependentStreams) {
  int positives = 0;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(100 + seed);
    std::vector<TimeMs> a, b;
    for (int i = 0; i < 400; ++i) {
      a.push_back(rng.UniformInt(0, kMillisPerHour - 1));
      b.push_back(rng.UniformInt(0, kMillisPerHour - 1));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    AgrawalDelayMiner miner(FastConfig());
    positives += miner.TestSlot(a, b, 0, kMillisPerHour, seed);
  }
  EXPECT_LE(positives, 2);
}

TEST(AgrawalMinerTest, TestSlotDegeneratesGracefully) {
  AgrawalDelayMiner miner(FastConfig());
  const std::vector<TimeMs> none, five{5}, six{6}, one{1};
  const std::vector<TimeMs> triple{1, 2, 3}, sparse{2, 100000};
  EXPECT_FALSE(miner.TestSlot(none, triple, 0, 1000, 0));
  EXPECT_FALSE(miner.TestSlot(triple, none, 0, 1000, 0));
  EXPECT_FALSE(miner.TestSlot(five, six, 0, 0, 0));
  // Too few delays within the window.
  EXPECT_FALSE(miner.TestSlot(one, sparse, 0, kMillisPerHour, 0));
}

TEST(AgrawalMinerTest, MineFindsDependentPair) {
  const TimeMs horizon = 4 * kMillisPerHour;
  Rng rng(7);
  LogStore store;
  AddUniform(&store, "Caller", 0, horizon, 800, &rng);
  AddUniform(&store, "Loner", 0, horizon, 800, &rng);
  store.BuildIndex();
  const auto caller = store.FindSource("Caller").value();
  for (TimeMs t : store.SourceTimestamps(caller)) {
    LogRecord record;
    record.client_ts = t + rng.UniformInt(60, 200);
    record.server_ts = record.client_ts;
    record.source = "Callee";
    record.message = "y";
    ASSERT_TRUE(store.Append(record).ok());
  }
  store.BuildIndex();

  AgrawalDelayMiner miner(FastConfig());
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps = result.value().Dependencies(store);
  EXPECT_TRUE(deps.Contains(MakeUnorderedPair("Caller", "Callee")));
  EXPECT_FALSE(deps.Contains(MakeUnorderedPair("Caller", "Loner")));
}

TEST(AgrawalMinerTest, DegradesWithParallelism) {
  // The authors' own caveat (§2.1): accuracy is inversely proportional
  // to the degree of parallelism. Embed the same dependent pair in an
  // increasingly busy environment and watch per-slot positives fall.
  auto positives_at = [](int noise_per_hour) {
    Rng rng(42);
    const TimeMs horizon = 2 * kMillisPerHour;
    LogStore store;
    AddUniform(&store, "A", 0, horizon,
               2 * noise_per_hour, &rng);  // A is also busier
    store.BuildIndex();
    const auto a = store.FindSource("A").value();
    int added = 0;
    for (TimeMs t : store.SourceTimestamps(a)) {
      if (++added % 4 != 0) continue;  // B answers a quarter of A's calls
      LogRecord record;
      record.client_ts = t + 100;
      record.server_ts = record.client_ts;
      record.source = "B";
      record.message = "y";
      EXPECT_TRUE(store.Append(record).ok());
    }
    // Concurrent independent chatter from B itself.
    AddUniform(&store, "B", 0, horizon, 2 * noise_per_hour, &rng);
    store.BuildIndex();
    AgrawalConfig config;
    config.minlogs = 30;
    AgrawalDelayMiner miner(config);
    auto result = miner.Mine(store, 0, horizon);
    EXPECT_TRUE(result.ok());
    int positive_slots = 0;
    for (const AgrawalPairResult& pair : result.value().pairs) {
      positive_slots += pair.slots_positive;
    }
    return positive_slots;
  };
  // The signal-to-noise ratio of the delay histogram falls with load;
  // detection must not improve when the parallel load explodes.
  EXPECT_GE(positives_at(300), positives_at(20000));
}

TEST(AgrawalMinerTest, RequiresIndexAndValidInterval) {
  LogStore store;
  LogRecord record;
  record.source = "A";
  ASSERT_TRUE(store.Append(record).ok());
  AgrawalDelayMiner miner(FastConfig());
  EXPECT_FALSE(miner.Mine(store, 0, 100).ok());
  store.BuildIndex();
  EXPECT_FALSE(miner.Mine(store, 100, 100).ok());
}

}  // namespace
}  // namespace logmine::core
