#include "core/l2_session_builder.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

LogRecord Rec(TimeMs ts, std::string source, std::string user) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.user = std::move(user);
  record.message = "x";
  return record;
}

LogStore MakeStore(const std::vector<LogRecord>& records) {
  LogStore store;
  for (const LogRecord& record : records) {
    EXPECT_TRUE(store.Append(record).ok());
  }
  store.BuildIndex();
  return store;
}

SessionBuilderConfig SmallConfig() {
  SessionBuilderConfig config;
  config.max_gap = 1000;
  config.min_logs = 2;
  return config;
}

TEST(SessionBuilderTest, GroupsByUser) {
  const LogStore store = MakeStore({
      Rec(0, "A", "alice"),
      Rec(10, "B", "bob"),
      Rec(20, "C", "alice"),
      Rec(30, "D", "bob"),
  });
  SessionBuilder builder(SmallConfig());
  SessionBuildStats stats;
  const auto sessions = builder.Build(store, 0, 100, &stats);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(stats.num_sessions, 2u);
  EXPECT_EQ(stats.logs_assigned, 4);
  for (const Session& session : sessions) {
    EXPECT_EQ(session.entries.size(), 2u);
    // Ordered by time within the session.
    EXPECT_LE(session.entries[0].ts, session.entries[1].ts);
  }
}

TEST(SessionBuilderTest, ContextFreeLogsIgnored) {
  const LogStore store = MakeStore({
      Rec(0, "A", "alice"),
      Rec(5, "B", ""),  // no user context
      Rec(10, "C", "alice"),
  });
  SessionBuilder builder(SmallConfig());
  SessionBuildStats stats;
  const auto sessions = builder.Build(store, 0, 100, &stats);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].entries.size(), 2u);
  EXPECT_EQ(stats.logs_considered, 3);
  EXPECT_EQ(stats.logs_with_context, 2);
  EXPECT_NEAR(stats.assigned_fraction, 2.0 / 3.0, 1e-12);
}

TEST(SessionBuilderTest, SplitsOnInactivityGap) {
  const LogStore store = MakeStore({
      Rec(0, "A", "alice"),
      Rec(100, "B", "alice"),
      Rec(5000, "C", "alice"),  // gap > 1000 -> new session
      Rec(5100, "D", "alice"),
  });
  SessionBuilder builder(SmallConfig());
  const auto sessions = builder.Build(store, 0, 10000, nullptr);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].start(), 0);
  EXPECT_EQ(sessions[0].end(), 100);
  EXPECT_EQ(sessions[1].start(), 5000);
}

TEST(SessionBuilderTest, DiscardsTooShortSessions) {
  const LogStore store = MakeStore({
      Rec(0, "A", "alice"),     // singleton -> dropped (min_logs = 2)
      Rec(9000, "B", "alice"),  // singleton after gap -> dropped
      Rec(20000, "C", "bob"),
      Rec(20010, "D", "bob"),
  });
  SessionBuilder builder(SmallConfig());
  SessionBuildStats stats;
  const auto sessions = builder.Build(store, 0, 30000, &stats);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].user, store.user_id(2));
  EXPECT_EQ(stats.logs_assigned, 2);
  EXPECT_EQ(stats.logs_with_context, 4);
}

TEST(SessionBuilderTest, RespectsTimeWindow) {
  const LogStore store = MakeStore({
      Rec(0, "A", "alice"),
      Rec(10, "B", "alice"),
      Rec(500, "C", "alice"),
  });
  SessionBuilder builder(SmallConfig());
  const auto sessions = builder.Build(store, 0, 100, nullptr);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].entries.size(), 2u);  // the log at 500 is outside
}

TEST(SessionBuilderTest, InterleavedUsersStaySeparated) {
  // The "machine shared by different users" scenario: interleaved in
  // time, distinct in identity.
  std::vector<LogRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Rec(i * 10, "A", i % 2 == 0 ? "alice" : "bob"));
  }
  const LogStore store = MakeStore(records);
  SessionBuilder builder(SmallConfig());
  const auto sessions = builder.Build(store, 0, 1000, nullptr);
  ASSERT_EQ(sessions.size(), 2u);
  for (const Session& session : sessions) {
    EXPECT_EQ(session.entries.size(), 5u);
  }
}

TEST(SessionBuilderTest, EmptyWindowYieldsNothing) {
  const LogStore store = MakeStore({Rec(0, "A", "alice")});
  SessionBuilder builder(SmallConfig());
  SessionBuildStats stats;
  const auto sessions = builder.Build(store, 1000, 2000, &stats);
  EXPECT_TRUE(sessions.empty());
  EXPECT_EQ(stats.logs_considered, 0);
  EXPECT_EQ(stats.assigned_fraction, 0.0);
}

}  // namespace
}  // namespace logmine::core
