#include "core/slotting.h"

#include <cmath>

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

TEST(MakeSlotsTest, EvenDivision) {
  const auto slots = MakeSlots(0, 24 * kMillisPerHour, kMillisPerHour);
  ASSERT_EQ(slots.size(), 24u);
  EXPECT_EQ(slots.front().begin, 0);
  EXPECT_EQ(slots.front().end, kMillisPerHour);
  EXPECT_EQ(slots.back().begin, 23 * kMillisPerHour);
  EXPECT_EQ(slots.back().end, 24 * kMillisPerHour);
}

TEST(MakeSlotsTest, TruncatedLastSlot) {
  const auto slots = MakeSlots(0, 250, 100);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[2].begin, 200);
  EXPECT_EQ(slots[2].end, 250);
  EXPECT_EQ(slots[2].length(), 50);
}

TEST(MakeSlotsTest, EmptyInterval) {
  EXPECT_TRUE(MakeSlots(100, 100, 10).empty());
  EXPECT_TRUE(MakeSlots(100, 50, 10).empty());
}

TEST(MakeSlotsTest, ContiguousCoverage) {
  const auto slots = MakeSlots(1000, 12345, 777);
  for (size_t i = 1; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].begin, slots[i - 1].end);
  }
  EXPECT_EQ(slots.front().begin, 1000);
  EXPECT_EQ(slots.back().end, 12345);
}

AdaptiveSlottingConfig TightAdaptive() {
  AdaptiveSlottingConfig config;
  config.min_slot = 1000;
  config.max_slot = 100000;
  config.min_events = 100;
  return config;
}

TEST(MakeAdaptiveSlotsTest, StationaryStreamStaysCoarse) {
  // Uniform events: no split below max_slot.
  std::vector<TimeMs> events;
  for (int i = 0; i < 5000; ++i) events.push_back(i * 16);  // ~ [0, 80000)
  const auto slots = MakeAdaptiveSlots(events, 0, 80000, TightAdaptive());
  EXPECT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].begin, 0);
  EXPECT_EQ(slots[0].end, 80000);
}

TEST(MakeAdaptiveSlotsTest, StepChangeSplitsOnce) {
  // Density 10x higher in the second half; each half is uniform, so one
  // split at the midpoint suffices.
  std::vector<TimeMs> events;
  for (int i = 0; i < 500; ++i) events.push_back(i * 80);           // [0, 40000)
  for (int i = 0; i < 5000; ++i) events.push_back(40000 + i * 8);   // [40000, 80000)
  std::sort(events.begin(), events.end());
  const auto slots = MakeAdaptiveSlots(events, 0, 80000, TightAdaptive());
  EXPECT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].end, 40000);
}

TEST(MakeAdaptiveSlotsTest, RampSplitsWhereIntensityMoves) {
  // Continuous ramp: density keeps rising, so halves stay non-uniform
  // and the recursion goes deeper than one level.
  std::vector<TimeMs> events;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / n;
    events.push_back(static_cast<TimeMs>(80000.0 * std::sqrt(u)));
  }
  std::sort(events.begin(), events.end());
  const auto slots = MakeAdaptiveSlots(events, 0, 80000, TightAdaptive());
  EXPECT_GT(slots.size(), 2u);
  // Coverage stays contiguous and complete.
  EXPECT_EQ(slots.front().begin, 0);
  EXPECT_EQ(slots.back().end, 80000);
  for (size_t i = 1; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].begin, slots[i - 1].end);
  }
  // No slot shorter than the floor.
  for (const TimeSlot& slot : slots) {
    EXPECT_GE(slot.length(), 1000);
  }
}

TEST(MakeAdaptiveSlotsTest, MaxSlotForcesSplits) {
  AdaptiveSlottingConfig config = TightAdaptive();
  config.max_slot = 10000;
  std::vector<TimeMs> events;  // even empty streams obey max_slot
  const auto slots = MakeAdaptiveSlots(events, 0, 40000, config);
  EXPECT_EQ(slots.size(), 4u);
}

TEST(MakeAdaptiveSlotsTest, SparseStreamNeverSplits) {
  AdaptiveSlottingConfig config = TightAdaptive();
  std::vector<TimeMs> events = {1, 2, 3};  // below min_events
  const auto slots = MakeAdaptiveSlots(events, 0, 80000, config);
  EXPECT_EQ(slots.size(), 1u);
}

TEST(MakeAdaptiveSlotsTest, EmptyInterval) {
  EXPECT_TRUE(MakeAdaptiveSlots({}, 50, 50, TightAdaptive()).empty());
}

}  // namespace
}  // namespace logmine::core
