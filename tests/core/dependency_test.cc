#include "core/dependency.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

TEST(MakeUnorderedPairTest, Normalizes) {
  EXPECT_EQ(MakeUnorderedPair("B", "A"), (NamePair{"A", "B"}));
  EXPECT_EQ(MakeUnorderedPair("A", "B"), (NamePair{"A", "B"}));
  EXPECT_EQ(MakeUnorderedPair("X", "X"), (NamePair{"X", "X"}));
}

TEST(DependencyModelTest, InsertContainsDeduplicates) {
  DependencyModel model;
  EXPECT_TRUE(model.empty());
  model.Insert(MakeUnorderedPair("A", "B"));
  model.Insert(MakeUnorderedPair("B", "A"));  // same pair
  EXPECT_EQ(model.size(), 1u);
  EXPECT_TRUE(model.Contains(MakeUnorderedPair("A", "B")));
  EXPECT_FALSE(model.Contains(MakeUnorderedPair("A", "C")));
}

TEST(DependencyModelTest, SetOperations) {
  DependencyModel a;
  a.Insert({"A", "B"});
  a.Insert({"C", "D"});
  DependencyModel b;
  b.Insert({"C", "D"});
  b.Insert({"E", "F"});

  const DependencyModel u = a.Union(b);
  EXPECT_EQ(u.size(), 3u);
  const DependencyModel i = a.Intersect(b);
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.Contains({"C", "D"}));
  const auto minus = a.Minus(b);
  ASSERT_EQ(minus.size(), 1u);
  EXPECT_EQ(minus[0], (NamePair{"A", "B"}));
}

TEST(DependencyModelTest, ToStringSortedLines) {
  DependencyModel model;
  model.Insert({"B", "C"});
  model.Insert({"A", "Z"});
  EXPECT_EQ(model.ToString(), "A -- Z\nB -- C\n");
}

TEST(DependencyModelTest, ToDotDirectedAndUndirected) {
  DependencyModel model;
  model.Insert({"App", "SRV"});
  const std::string directed = model.ToDot("g", true);
  EXPECT_NE(directed.find("digraph g {"), std::string::npos);
  EXPECT_NE(directed.find("\"App\" -> \"SRV\";"), std::string::npos);
  const std::string undirected = model.ToDot("g", false);
  EXPECT_NE(undirected.find("graph g {"), std::string::npos);
  EXPECT_NE(undirected.find("\"App\" -- \"SRV\";"), std::string::npos);
}

TEST(DependencyModelTest, ConstructFromSet) {
  std::set<NamePair> pairs = {{"A", "B"}, {"C", "D"}};
  DependencyModel model(pairs);
  EXPECT_EQ(model.size(), 2u);
}

}  // namespace
}  // namespace logmine::core
