// Merge determinism is what lets a fault-tolerant sharded sweep promise
// byte-identical output: whatever order shards finish in — and however
// many times a hedged shard delivers — merging the surviving partial
// models must produce the same bytes. The property tests here drive
// MergePartialModels over seeded random corpora, shard counts and
// permutations and assert identity on MergedModelBytes, the exact
// serialized form the chaos harness compares.

#include "core/partial_model.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "util/rng.h"

namespace logmine::core {
namespace {

/// A deterministic random model: pair names drawn from a small alphabet
/// so different cells overlap (the merge must dedup across shards).
DependencyModel RandomModel(Rng* rng, int max_pairs) {
  DependencyModel model;
  const int64_t n = rng->UniformInt(0, max_pairs);
  for (int64_t i = 0; i < n; ++i) {
    const std::string a = "app" + std::to_string(rng->UniformInt(0, 9));
    const std::string b = "app" + std::to_string(rng->UniformInt(10, 19));
    model.Insert(MakeUnorderedPair(a, b));
  }
  return model;
}

std::vector<PartialModel> RandomCorpus(Rng* rng, int num_days,
                                       int num_ranges, uint64_t state_hash) {
  std::vector<PartialModel> parts;
  for (int day = 0; day < num_days; ++day) {
    for (int range = 0; range < num_ranges; ++range) {
      PartialModel part;
      part.shard = {day, range};
      part.num_days = num_days;
      part.num_ranges = num_ranges;
      part.state_hash = state_hash;
      part.model = RandomModel(rng, 6);
      parts.push_back(std::move(part));
    }
  }
  return parts;
}

std::string MergedBytes(int num_days, int num_ranges,
                        const std::vector<PartialModel>& parts) {
  auto merged = MergePartialModels(num_days, num_ranges, parts);
  EXPECT_TRUE(merged.ok()) << merged.status();
  return MergedModelBytes(merged.value());
}

TEST(PartialModelMergeTest, OrderIndependentForAnyShardCountAndPermutation) {
  Rng seeds(20260808);
  for (const auto& [num_days, num_ranges] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 4}, {3, 1}, {3, 4},
                                        {7, 8}}) {
    Rng rng = seeds.Fork(std::to_string(num_days) + "x" +
                         std::to_string(num_ranges));
    std::vector<PartialModel> parts =
        RandomCorpus(&rng, num_days, num_ranges, /*state_hash=*/42);
    const std::string reference = MergedBytes(num_days, num_ranges, parts);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<PartialModel> shuffled = parts;
      rng.Shuffle(&shuffled);
      EXPECT_EQ(MergedBytes(num_days, num_ranges, shuffled), reference)
          << num_days << "x" << num_ranges << " trial " << trial;
    }
  }
}

TEST(PartialModelMergeTest, DuplicateShardsAreIdempotent) {
  Rng rng(7);
  std::vector<PartialModel> parts = RandomCorpus(&rng, 2, 3, 1);
  const std::string reference = MergedBytes(2, 3, parts);
  // A hedged shard delivering its (identical) model twice changes nothing.
  std::vector<PartialModel> with_dups = parts;
  with_dups.push_back(parts[2]);
  with_dups.push_back(parts[5]);
  rng.Shuffle(&with_dups);
  EXPECT_EQ(MergedBytes(2, 3, with_dups), reference);
}

TEST(PartialModelMergeTest, MissingShardsReportExactCoverage) {
  Rng rng(11);
  const int num_days = 3, num_ranges = 4;
  std::vector<PartialModel> parts =
      RandomCorpus(&rng, num_days, num_ranges, 9);
  // Drop two specific cells, as if the supervisor had poisoned them.
  std::vector<PartialModel> surviving;
  for (const PartialModel& part : parts) {
    if (part.shard == ShardId{1, 2} || part.shard == ShardId{2, 0}) continue;
    surviving.push_back(part);
  }
  auto merged = MergePartialModels(num_days, num_ranges, surviving);
  ASSERT_TRUE(merged.ok()) << merged.status();
  const CoverageReport& coverage = merged.value().coverage;
  EXPECT_FALSE(coverage.complete());
  EXPECT_EQ(coverage.covered_cells(), num_days * num_ranges - 2);
  EXPECT_DOUBLE_EQ(coverage.fraction(), 10.0 / 12.0);
  const std::vector<std::pair<int, int>> missing = coverage.MissingCells();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], std::make_pair(1, 2));
  EXPECT_EQ(missing[1], std::make_pair(2, 0));
  // The merged model is exactly the union of the surviving parts: a
  // missing shard subtracts its pairs, never anyone else's.
  DependencyModel expected;
  for (const PartialModel& part : surviving) {
    expected = expected.Union(part.model);
  }
  EXPECT_EQ(merged.value().model.pairs(), expected.pairs());
  // Day 0 kept all its ranges; its daily model matches the full merge.
  DependencyModel day0;
  for (const PartialModel& part : surviving) {
    if (part.shard.day == 0) day0 = day0.Union(part.model);
  }
  EXPECT_EQ(merged.value().daily[0].pairs(), day0.pairs());
}

TEST(PartialModelMergeTest, EmptyPartsYieldZeroCoverage) {
  auto merged = MergePartialModels(2, 2, {});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().coverage.covered_cells(), 0);
  EXPECT_DOUBLE_EQ(merged.value().coverage.fraction(), 0.0);
  EXPECT_TRUE(merged.value().model.empty());
  EXPECT_EQ(merged.value().daily.size(), 2u);
}

TEST(PartialModelMergeTest, RejectsMismatchedGridsHashesAndBounds) {
  Rng rng(3);
  std::vector<PartialModel> parts = RandomCorpus(&rng, 2, 2, 5);

  std::vector<PartialModel> wrong_grid = parts;
  wrong_grid[1].num_ranges = 3;
  EXPECT_EQ(MergePartialModels(2, 2, wrong_grid).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<PartialModel> wrong_hash = parts;
  wrong_hash[2].state_hash = 6;
  EXPECT_EQ(MergePartialModels(2, 2, wrong_hash).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<PartialModel> out_of_bounds = parts;
  out_of_bounds[0].shard.day = 2;
  EXPECT_EQ(MergePartialModels(2, 2, out_of_bounds).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartialModelSerializationTest, PartialModelBytesRoundTrip) {
  Rng rng(21);
  PartialModel part;
  part.shard = {3, 1};
  part.num_days = 7;
  part.num_ranges = 4;
  part.state_hash = 0xDEADBEEFCAFEF00DULL;
  part.model = RandomModel(&rng, 10);

  auto parsed = ParsePartialModelBytes(PartialModelBytes(part));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().shard, part.shard);
  EXPECT_EQ(parsed.value().num_days, part.num_days);
  EXPECT_EQ(parsed.value().num_ranges, part.num_ranges);
  EXPECT_EQ(parsed.value().state_hash, part.state_hash);
  EXPECT_EQ(parsed.value().model.pairs(), part.model.pairs());
}

TEST(PartialModelSerializationTest, CorruptPartialBytesFailToParse) {
  PartialModel part;
  part.shard = {0, 0};
  part.num_days = 1;
  part.num_ranges = 1;
  part.state_hash = 1;
  part.model.Insert(MakeUnorderedPair("a", "b"));
  std::string bytes = PartialModelBytes(part);
  // Flip a byte in the middle: the container CRC must catch it.
  bytes[bytes.size() / 2] ^= 0x5A;
  EXPECT_FALSE(ParsePartialModelBytes(std::move(bytes)).ok());
}

TEST(PartialModelSerializationTest, MergedModelBytesRoundTrip) {
  Rng rng(99);
  std::vector<PartialModel> parts = RandomCorpus(&rng, 2, 3, 4);
  parts.erase(parts.begin() + 4);  // one missing cell
  auto merged = MergePartialModels(2, 3, parts);
  ASSERT_TRUE(merged.ok());
  auto parsed = ParseMergedModelBytes(MergedModelBytes(merged.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().model.pairs(), merged.value().model.pairs());
  ASSERT_EQ(parsed.value().daily.size(), merged.value().daily.size());
  for (size_t i = 0; i < parsed.value().daily.size(); ++i) {
    EXPECT_EQ(parsed.value().daily[i].pairs(),
              merged.value().daily[i].pairs());
  }
  EXPECT_EQ(parsed.value().coverage.covered, merged.value().coverage.covered);
  EXPECT_EQ(MergedModelBytes(parsed.value()),
            MergedModelBytes(merged.value()));
}

TEST(CoverageReportTest, JsonNamesTheMissingCells) {
  CoverageReport coverage;
  coverage.num_days = 2;
  coverage.num_ranges = 2;
  coverage.covered = {1, 0, 1, 1};
  const std::string json = coverage.ToJson();
  EXPECT_NE(json.find("\"covered_cells\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_cells\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("[0, 1]"), std::string::npos) << json;
}

}  // namespace
}  // namespace logmine::core
