#include "core/l2_direction.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

// Builds one session from (ts, source-id) pairs.
Session MakeSession(const std::vector<std::pair<TimeMs, uint32_t>>& entries) {
  Session session;
  session.user = 0;
  for (const auto& [ts, source] : entries) {
    session.entries.push_back(SessionLogEntry{ts, source, 0});
  }
  return session;
}

DirectionConfig FastConfig() {
  DirectionConfig config;
  config.pause = 1000;
  config.min_runs = 5;
  return config;
}

TEST(DirectionTest, CallerBeforeCalleeDetected) {
  // 12 runs, each "0 then 1" separated by long pauses.
  std::vector<Session> sessions;
  std::vector<std::pair<TimeMs, uint32_t>> entries;
  TimeMs t = 0;
  for (int run = 0; run < 12; ++run) {
    entries.push_back({t, 0});
    entries.push_back({t + 100, 1});
    t += 10000;  // pause > 1000 ends the run
  }
  sessions.push_back(MakeSession(entries));
  L2DirectionDetector detector(FastConfig());
  const auto estimates = detector.Estimate(sessions, {{0, 1}});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].first_a, 12);
  EXPECT_EQ(estimates[0].first_b, 0);
  EXPECT_EQ(estimates[0].direction, CallDirection::kAToB);
  EXPECT_LT(estimates[0].p_value, 0.001);
}

TEST(DirectionTest, ReversedOrderGivesBToA) {
  std::vector<Session> sessions;
  std::vector<std::pair<TimeMs, uint32_t>> entries;
  TimeMs t = 0;
  for (int run = 0; run < 10; ++run) {
    entries.push_back({t, 7});      // the higher id leads
    entries.push_back({t + 50, 3});
    t += 60000;
  }
  sessions.push_back(MakeSession(entries));
  L2DirectionDetector detector(FastConfig());
  const auto estimates = detector.Estimate(sessions, {{3, 7}});
  ASSERT_EQ(estimates.size(), 1u);
  // a = 3, b = 7; 7 always first -> B-to-A.
  EXPECT_EQ(estimates[0].direction, CallDirection::kBToA);
}

TEST(DirectionTest, BalancedOrderStaysUndecided) {
  std::vector<Session> sessions;
  std::vector<std::pair<TimeMs, uint32_t>> entries;
  TimeMs t = 0;
  for (int run = 0; run < 10; ++run) {
    if (run % 2 == 0) {
      entries.push_back({t, 0});
      entries.push_back({t + 100, 1});
    } else {
      entries.push_back({t, 1});
      entries.push_back({t + 100, 0});
    }
    t += 10000;
  }
  sessions.push_back(MakeSession(entries));
  L2DirectionDetector detector(FastConfig());
  const auto estimates = detector.Estimate(sessions, {{0, 1}});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].direction, CallDirection::kUndecided);
  EXPECT_GT(estimates[0].p_value, 0.5);
}

TEST(DirectionTest, TooFewRunsStaysUndecided) {
  std::vector<Session> sessions;
  sessions.push_back(MakeSession({{0, 0}, {100, 1}}));
  L2DirectionDetector detector(FastConfig());
  const auto estimates = detector.Estimate(sessions, {{0, 1}});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].direction, CallDirection::kUndecided);
  EXPECT_EQ(estimates[0].first_a, 1);
}

TEST(DirectionTest, RunsRequireBothMembers) {
  // Runs containing only one of the pair contribute nothing.
  std::vector<Session> sessions;
  std::vector<std::pair<TimeMs, uint32_t>> entries;
  TimeMs t = 0;
  for (int run = 0; run < 20; ++run) {
    entries.push_back({t, 0});  // alone
    t += 10000;
  }
  sessions.push_back(MakeSession(entries));
  L2DirectionDetector detector(FastConfig());
  const auto estimates = detector.Estimate(sessions, {{0, 1}});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].first_a + estimates[0].first_b, 0);
}

TEST(DirectionTest, PauseBoundaryRespected) {
  // Within one run the pair appears once; the "1 then 0" later comes in
  // a separate run because of the pause, yielding one vote each way.
  std::vector<Session> sessions;
  sessions.push_back(MakeSession({
      {0, 0}, {100, 1},       // run 1: 0 first
      {5000, 1}, {5100, 0},   // run 2: 1 first
  }));
  DirectionConfig config = FastConfig();
  config.min_runs = 1;
  L2DirectionDetector detector(config);
  const auto estimates = detector.Estimate(sessions, {{0, 1}});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].first_a, 1);
  EXPECT_EQ(estimates[0].first_b, 1);
  EXPECT_EQ(estimates[0].direction, CallDirection::kUndecided);
}

TEST(DirectionTest, DuplicateAndSwappedQueriesDeduplicated) {
  std::vector<Session> sessions;
  sessions.push_back(MakeSession({{0, 0}, {100, 1}}));
  L2DirectionDetector detector(FastConfig());
  const auto estimates =
      detector.Estimate(sessions, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(estimates.size(), 1u);
}

}  // namespace
}  // namespace logmine::core
