#include "core/l2_cooccurrence_miner.h"

#include <gtest/gtest.h>

#include <string>

#include "util/executor.h"

namespace logmine::core {
namespace {

LogRecord Rec(TimeMs ts, std::string source, std::string user) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.user = std::move(user);
  record.message = "x";
  return record;
}

// The paper's running example (figure 3): one session where the client
// A2 calls A1, then twice A3, which in turn calls A4. The log sequence is
// a2 a1 a2 a3 a4 a2 a3 a4 [pause 0.5s] a2.
LogStore PaperExampleStore() {
  LogStore store;
  const std::vector<std::pair<TimeMs, const char*>> logs = {
      {0, "A2"},   {100, "A1"}, {200, "A2"}, {300, "A3"}, {400, "A4"},
      {500, "A2"}, {600, "A3"}, {700, "A4"}, {1200, "A2"},
  };
  for (const auto& [ts, source] : logs) {
    EXPECT_TRUE(store.Append(Rec(ts, source, "user")).ok());
  }
  store.BuildIndex();
  return store;
}

L2Config PermissiveConfig(TimeMs timeout) {
  L2Config config;
  config.timeout = timeout;
  config.min_cooccurrence = 1;
  config.min_cooccurrence_per_session = 0;
  config.session.min_logs = 2;
  config.session.max_gap = 60 * kMillisPerMinute;
  return config;
}

const L2PairScore* FindScore(const L2Result& result, const LogStore& store,
                             std::string_view a, std::string_view b) {
  for (const L2PairScore& score : result.scored) {
    if (store.source_name(score.a) == a && store.source_name(score.b) == b) {
      return &score;
    }
  }
  return nullptr;
}

TEST(L2MinerTest, PaperExampleBigramCounts) {
  const LogStore store = PaperExampleStore();
  L2CooccurrenceMiner miner(PermissiveConfig(/*timeout=*/0));  // infinity
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  // All 8 bigrams of the paper's example (none dropped at infinity).
  EXPECT_EQ(result.value().num_bigrams, 8);
  // Observed types: (A2,A1),(A1,A2),(A2,A3)x2,(A3,A4)x2,(A4,A2)x2.
  EXPECT_EQ(result.value().scored.size(), 5u);
}

TEST(L2MinerTest, PaperExampleContingencyTableForA2A3) {
  // Figure 4: the table for (A, B) = (A2, A3) is [[2, 0], [1, 5]].
  const LogStore store = PaperExampleStore();
  L2CooccurrenceMiner miner(PermissiveConfig(0));
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  const L2PairScore* score =
      FindScore(result.value(), store, "A2", "A3");
  ASSERT_NE(score, nullptr);
  EXPECT_EQ(score->table.o11, 2);
  EXPECT_EQ(score->table.o12, 1);
  EXPECT_EQ(score->table.o21, 0);
  EXPECT_EQ(score->table.o22, 5);
}

TEST(L2MinerTest, PaperExampleTimeoutDropsLastBigram) {
  // "the last bigram (A4, A2) would be ignored for any timeout value
  // between 0 and 0.5 seconds" — the gap before the final a2 is 500 ms.
  const LogStore store = PaperExampleStore();
  L2CooccurrenceMiner miner(PermissiveConfig(/*timeout=*/400));
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_bigrams, 7);
  const L2PairScore* score =
      FindScore(result.value(), store, "A4", "A2");
  ASSERT_NE(score, nullptr);
  EXPECT_EQ(score->table.o11, 1);  // only the first (a4, a2) remains
}

TEST(L2MinerTest, SameSourceBigramsSkipped) {
  LogStore store;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Append(Rec(i * 10, "A", "u")).ok());
  }
  store.BuildIndex();
  L2CooccurrenceMiner miner(PermissiveConfig(0));
  auto result = miner.Mine(store, 0, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_bigrams, 0);
  EXPECT_TRUE(result.value().scored.empty());
}

TEST(L2MinerTest, DetectsStrongAssociation) {
  // 40 sessions of the pattern C -> S (caller/callee adjacency), plus
  // background pairs, must yield a significant (C, S) dependency.
  LogStore store;
  TimeMs t = 0;
  for (int s = 0; s < 40; ++s) {
    const std::string user = "u" + std::to_string(s);
    ASSERT_TRUE(store.Append(Rec(t, "C", user)).ok());
    ASSERT_TRUE(store.Append(Rec(t + 50, "S", user)).ok());
    ASSERT_TRUE(store.Append(Rec(t + 400, "X", user)).ok());
    ASSERT_TRUE(store.Append(Rec(t + 800, "Y", user)).ok());
    t += 10000;
  }
  store.BuildIndex();
  L2Config config = PermissiveConfig(1000);
  config.min_cooccurrence = 5;
  L2CooccurrenceMiner miner(config);
  auto result = miner.Mine(store, 0, t + 1000);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps = result.value().Dependencies(store);
  EXPECT_TRUE(deps.Contains(MakeUnorderedPair("C", "S")));
}

TEST(L2MinerTest, MinCooccurrenceFloorFiltersRarePairs) {
  const LogStore store = PaperExampleStore();
  L2Config config = PermissiveConfig(0);
  config.min_cooccurrence = 2;
  L2CooccurrenceMiner miner(config);
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  // Only the three pair types with o11 = 2 survive the floor.
  EXPECT_EQ(result.value().scored.size(), 3u);
}

TEST(L2MinerTest, PerSessionFloorScalesWithSessionCount) {
  const LogStore store = PaperExampleStore();
  L2Config config = PermissiveConfig(0);
  config.min_cooccurrence = 1;
  config.min_cooccurrence_per_session = 3.0;  // 1 session -> floor 3
  L2CooccurrenceMiner miner(config);
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().scored.empty());  // all o11 <= 2
}

TEST(L2MinerTest, DependenciesAreUndirected) {
  L2Result result;
  L2PairScore forward;
  forward.a = 1;
  forward.b = 0;
  forward.dependent = true;
  result.scored.push_back(forward);
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(0, "Alpha", "")).ok());
  ASSERT_TRUE(store.Append(Rec(1, "Beta", "")).ok());
  const DependencyModel deps = result.Dependencies(store);
  EXPECT_TRUE(deps.Contains(MakeUnorderedPair("Alpha", "Beta")));
}

TEST(L2MinerTest, RequiresBuiltIndex) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(0, "A", "u")).ok());
  L2CooccurrenceMiner miner(PermissiveConfig(0));
  EXPECT_FALSE(miner.Mine(store, 0, 100).ok());
}

TEST(L2MinerTest, RejectsBadAlpha) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(0, "A", "u")).ok());
  store.BuildIndex();
  L2Config config = PermissiveConfig(0);
  config.alpha = 1.5;
  L2CooccurrenceMiner miner(config);
  EXPECT_FALSE(miner.Mine(store, 0, 100).ok());
}

// A store big enough that the cancellable overload's cooperative stop
// checkpoints (session build, bigram count, scoring) actually fire:
// ten users, thousands of logs each, sources mixed so that nearly
// every adjacent pair is a distinct scored type.
LogStore BigMixedStore() {
  LogStore store;
  TimeMs t = 0;
  for (int user = 0; user < 10; ++user) {
    const std::string name = "u" + std::to_string(user);
    for (int i = 0; i < 3000; ++i) {
      const int source = (i * i + 13 * user + i) % 211;
      EXPECT_TRUE(
          store.Append(Rec(t, "S" + std::to_string(source), name)).ok());
      t += 10;
    }
  }
  store.BuildIndex();
  return store;
}

TEST(L2MinerTest, PreCancelledTokenStopsTheRun) {
  const LogStore store = PaperExampleStore();
  L2CooccurrenceMiner miner(PermissiveConfig(0));
  CancelToken token;
  token.Cancel();
  RunOptions options;
  options.cancel = &token;
  auto result = miner.Mine(store, 0, 10000, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status();
}

TEST(L2MinerTest, TinyDeadlineSurfacesAsDeadlineExceeded) {
  const LogStore store = BigMixedStore();
  L2Config config = PermissiveConfig(1000);
  config.min_cooccurrence = 1;
  config.num_threads = 1;
  L2CooccurrenceMiner miner(config);
  RunOptions options;
  options.deadline = std::chrono::milliseconds(1);
  auto result = miner.Mine(store, 0, 10 * 3000 * 10 + 1000, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

TEST(L2MinerTest, DefaultOptionsMatchThePlainOverload) {
  const LogStore store = PaperExampleStore();
  L2CooccurrenceMiner miner(PermissiveConfig(0));
  auto plain = miner.Mine(store, 0, 10000);
  auto optioned = miner.Mine(store, 0, 10000, RunOptions{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optioned.ok());
  EXPECT_EQ(plain.value().num_bigrams, optioned.value().num_bigrams);
  ASSERT_EQ(plain.value().scored.size(), optioned.value().scored.size());
  for (size_t i = 0; i < plain.value().scored.size(); ++i) {
    const L2PairScore& a = plain.value().scored[i];
    const L2PairScore& b = optioned.value().scored[i];
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.table.o11, b.table.o11);
    EXPECT_DOUBLE_EQ(a.score, b.score);
    EXPECT_EQ(a.dependent, b.dependent);
  }
}

TEST(L2MinerTest, PearsonVariantRuns) {
  const LogStore store = PaperExampleStore();
  L2Config config = PermissiveConfig(0);
  config.test = AssociationTest::kPearson;
  L2CooccurrenceMiner miner(config);
  auto result = miner.Mine(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().scored.size(), 5u);
}

}  // namespace
}  // namespace logmine::core
