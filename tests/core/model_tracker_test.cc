#include "core/model_tracker.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

DependencyModel Model(std::initializer_list<NamePair> pairs) {
  DependencyModel model;
  for (const NamePair& pair : pairs) model.Insert(pair);
  return model;
}

ModelTrackerConfig FastConfig() {
  ModelTrackerConfig config;
  config.confirm_after = 2;
  config.stale_after = 2;
  config.retire_after = 4;
  return config;
}

TEST(ModelTrackerTest, ConfirmationRequiresConsecutiveSightings) {
  ModelTracker tracker(FastConfig());
  auto u1 = tracker.Observe(Model({{"A", "B"}}));
  EXPECT_TRUE(u1.confirmed.empty());
  EXPECT_TRUE(tracker.ActiveModel().empty());  // still a candidate
  auto u2 = tracker.Observe(Model({{"A", "B"}}));
  ASSERT_EQ(u2.confirmed.size(), 1u);
  EXPECT_EQ(u2.confirmed[0], (NamePair{"A", "B"}));
  EXPECT_TRUE(tracker.ActiveModel().Contains({"A", "B"}));
}

TEST(ModelTrackerTest, BrokenStreakRestartsConfirmation) {
  ModelTracker tracker(FastConfig());
  tracker.Observe(Model({{"A", "B"}}));
  tracker.Observe(Model({}));  // gap
  auto u3 = tracker.Observe(Model({{"A", "B"}}));
  EXPECT_TRUE(u3.confirmed.empty());  // streak restarted at 1
  auto u4 = tracker.Observe(Model({{"A", "B"}}));
  EXPECT_EQ(u4.confirmed.size(), 1u);
}

TEST(ModelTrackerTest, StaleThenRetired) {
  ModelTracker tracker(FastConfig());
  tracker.Observe(Model({{"A", "B"}}));
  tracker.Observe(Model({{"A", "B"}}));  // confirmed
  // Unseen for stale_after=2 observations -> stale (still in the model).
  tracker.Observe(Model({}));
  auto u4 = tracker.Observe(Model({}));
  EXPECT_TRUE(u4.retired.empty());
  EXPECT_TRUE(tracker.ActiveModel().Contains({"A", "B"}));
  EXPECT_EQ(tracker.tracked().at({"A", "B"}).state,
            DependencyState::kStale);
  // Unseen for retire_after=4 -> retired and out of the model.
  tracker.Observe(Model({}));
  auto u6 = tracker.Observe(Model({}));
  ASSERT_EQ(u6.retired.size(), 1u);
  EXPECT_FALSE(tracker.ActiveModel().Contains({"A", "B"}));
}

TEST(ModelTrackerTest, StaleRevivesOnSighting) {
  ModelTracker tracker(FastConfig());
  tracker.Observe(Model({{"A", "B"}}));
  tracker.Observe(Model({{"A", "B"}}));
  tracker.Observe(Model({}));
  tracker.Observe(Model({}));  // stale now
  auto u5 = tracker.Observe(Model({{"A", "B"}}));
  ASSERT_EQ(u5.revived.size(), 1u);
  EXPECT_EQ(tracker.tracked().at({"A", "B"}).state,
            DependencyState::kActive);
}

TEST(ModelTrackerTest, RetiredMustReEarnConfirmation) {
  ModelTrackerConfig config = FastConfig();
  ModelTracker tracker(config);
  tracker.Observe(Model({{"A", "B"}}));
  tracker.Observe(Model({{"A", "B"}}));
  for (int i = 0; i < 6; ++i) tracker.Observe(Model({}));  // retired
  EXPECT_EQ(tracker.tracked().at({"A", "B"}).state,
            DependencyState::kRetired);
  auto u = tracker.Observe(Model({{"A", "B"}}));
  EXPECT_TRUE(u.revived.empty());  // candidate again, not yet back
  EXPECT_FALSE(tracker.ActiveModel().Contains({"A", "B"}));
  auto u2 = tracker.Observe(Model({{"A", "B"}}));
  EXPECT_EQ(u2.confirmed.size(), 1u);
}

TEST(ModelTrackerTest, ImmediateConfirmationWithThresholdOne) {
  ModelTrackerConfig config = FastConfig();
  config.confirm_after = 1;
  ModelTracker tracker(config);
  auto u = tracker.Observe(Model({{"X", "Y"}}));
  EXPECT_EQ(u.confirmed.size(), 1u);
}

TEST(ModelTrackerTest, TracksManyPairsIndependently) {
  ModelTracker tracker(FastConfig());
  tracker.Observe(Model({{"A", "B"}, {"C", "D"}}));
  tracker.Observe(Model({{"A", "B"}}));
  EXPECT_TRUE(tracker.ActiveModel().Contains({"A", "B"}));
  EXPECT_FALSE(tracker.ActiveModel().Contains({"C", "D"}));
  EXPECT_EQ(tracker.num_observations(), 2);
}

TEST(ModelTrackerTest, NoiseOneDayWonderNeverEntersModel) {
  // The motivating property: a single-day mining artifact never pollutes
  // the maintained model.
  ModelTracker tracker(FastConfig());
  for (int day = 0; day < 10; ++day) {
    DependencyModel daily = Model({{"Real", "Pair"}});
    if (day == 4) daily.Insert({"Noise", "Pair"});
    tracker.Observe(daily);
  }
  EXPECT_TRUE(tracker.ActiveModel().Contains({"Pair", "Real"}) ||
              tracker.ActiveModel().Contains({"Real", "Pair"}));
  EXPECT_FALSE(tracker.ActiveModel().Contains({"Noise", "Pair"}));
}

}  // namespace
}  // namespace logmine::core
