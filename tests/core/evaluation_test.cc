#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

DependencyModel Model(std::initializer_list<NamePair> pairs) {
  DependencyModel model;
  for (const NamePair& pair : pairs) model.Insert(pair);
  return model;
}

TEST(EvaluateTest, CountsConfusion) {
  const DependencyModel predicted =
      Model({{"A", "B"}, {"C", "D"}, {"E", "F"}});
  const DependencyModel reference = Model({{"A", "B"}, {"C", "D"}, {"G", "H"}});
  const ConfusionCounts counts = Evaluate(predicted, reference, 100);
  EXPECT_EQ(counts.true_positives, 2);
  EXPECT_EQ(counts.false_positives, 1);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_EQ(counts.positives(), 3);
  EXPECT_EQ(counts.true_negatives(), 96);
  EXPECT_NEAR(counts.tp_ratio(), 2.0 / 3, 1e-12);
  EXPECT_NEAR(counts.recall(), 2.0 / 3, 1e-12);
  // 1 FP over 100 - 3 unrelated pairs.
  EXPECT_NEAR(counts.false_positive_rate(), 1.0 / 97, 1e-12);
}

TEST(EvaluateTest, EmptyPrediction) {
  const ConfusionCounts counts =
      Evaluate(DependencyModel{}, Model({{"A", "B"}}), 10);
  EXPECT_EQ(counts.true_positives, 0);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_EQ(counts.tp_ratio(), 0.0);
  EXPECT_EQ(counts.recall(), 0.0);
}

TEST(EvaluateTest, EmptyReference) {
  const ConfusionCounts counts =
      Evaluate(Model({{"A", "B"}}), DependencyModel{}, 10);
  EXPECT_EQ(counts.false_positives, 1);
  EXPECT_EQ(counts.recall(), 0.0);
}

TEST(EvaluateTest, DefaultUniverse) {
  const ConfusionCounts counts =
      Evaluate(Model({{"A", "B"}}), Model({{"C", "D"}}), 0);
  EXPECT_EQ(counts.universe, 2);
}

TEST(EvaluateTest, PaperScaleNumbers) {
  // §4.5's arithmetic: 1431 pairs, 178 dependent, 25 FP over 1253
  // unrelated pairs is a ~2% error rate.
  DependencyModel predicted;
  DependencyModel reference;
  for (int i = 0; i < 178; ++i) {
    reference.Insert({"r" + std::to_string(i), "x"});
  }
  for (int i = 0; i < 40; ++i) {
    predicted.Insert({"r" + std::to_string(i), "x"});  // 40 TP
  }
  for (int i = 0; i < 25; ++i) {
    predicted.Insert({"f" + std::to_string(i), "x"});  // 25 FP
  }
  const ConfusionCounts counts = Evaluate(predicted, reference, 1431);
  EXPECT_NEAR(counts.false_positive_rate(), 25.0 / 1253.0, 1e-12);
  EXPECT_NEAR(counts.false_positive_rate(), 0.02, 0.001);
}

TEST(DailySeriesTest, ExtractsVectors) {
  DailySeries series;
  series.day_labels = {"d1", "d2"};
  ConfusionCounts day1;
  day1.true_positives = 30;
  day1.false_positives = 10;
  ConfusionCounts day2;
  day2.true_positives = 40;
  day2.false_positives = 20;
  series.days = {day1, day2};
  EXPECT_EQ(series.TruePositives(), (std::vector<double>{30, 40}));
  EXPECT_EQ(series.FalsePositives(), (std::vector<double>{10, 20}));
  EXPECT_NEAR(series.TpRatios()[0], 0.75, 1e-12);
  EXPECT_NEAR(series.TpRatios()[1], 2.0 / 3, 1e-12);
}

}  // namespace
}  // namespace logmine::core
