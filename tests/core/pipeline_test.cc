#include "core/pipeline.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

LogStore TinyStore() {
  LogStore store;
  for (int i = 0; i < 20; ++i) {
    LogRecord record;
    record.client_ts = i * 100;
    record.server_ts = record.client_ts;
    record.source = i % 2 == 0 ? "A" : "B";
    record.user = "u";
    record.message = i % 2 == 0 ? "(SRVX) call()" : "processing";
    EXPECT_TRUE(store.Append(record).ok());
  }
  store.BuildIndex();
  return store;
}

ServiceVocabulary TinyVocab() {
  ServiceVocabulary vocabulary;
  vocabulary.entries.push_back({"SRVX", "http://h/srvx"});
  return vocabulary;
}

TEST(PipelineTest, RunsAllThreeTechniques) {
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.l1.minlogs = 1;
  config.l1.test.sample_size = 5;
  config.l2.min_cooccurrence = 1;
  config.l2.min_cooccurrence_per_session = 0;
  config.l2.session.min_logs = 2;
  MiningPipeline pipeline(TinyVocab(), config);
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().l1.has_value());
  EXPECT_TRUE(result.value().l2.has_value());
  EXPECT_TRUE(result.value().l3.has_value());
  // The L3 citation must surface.
  EXPECT_TRUE(result.value().l3->Dependencies(store, TinyVocab())
                  .Contains({"A", "SRVX"}));
}

TEST(PipelineTest, AgrawalBaselineOptIn) {
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.run_l1 = config.run_l2 = config.run_l3 = false;
  config.run_agrawal = true;
  config.agrawal.minlogs = 1;
  MiningPipeline pipeline(TinyVocab(), config);
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().agrawal.has_value());
  EXPECT_FALSE(result.value().l1.has_value());
  // Default config leaves the baseline off.
  MiningPipeline default_pipeline(TinyVocab(), PipelineConfig{});
  auto default_result = default_pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(default_result.ok());
  EXPECT_FALSE(default_result.value().agrawal.has_value());
}

TEST(PipelineTest, SelectiveExecution) {
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.run_l1 = false;
  config.run_l2 = false;
  MiningPipeline pipeline(TinyVocab(), config);
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().l1.has_value());
  EXPECT_FALSE(result.value().l2.has_value());
  EXPECT_TRUE(result.value().l3.has_value());
  // Disabled miners report OK status (nothing to do, nothing failed).
  EXPECT_TRUE(result.value().l1_status.ok());
  EXPECT_TRUE(result.value().l2_status.ok());
  EXPECT_TRUE(result.value().all_ok());
}

TEST(PipelineTest, RequiresBuiltIndex) {
  LogStore store;
  LogRecord record;
  record.source = "A";
  ASSERT_TRUE(store.Append(record).ok());
  MiningPipeline pipeline(TinyVocab(), PipelineConfig{});
  EXPECT_FALSE(pipeline.Run(store, 0, 100).ok());
}

TEST(PipelineTest, FailingMinerYieldsPartialResults) {
  // Fail-safe contract: an empty vocabulary sinks L3, but L1 and L2
  // still deliver their models; the failure is reported per-miner.
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.l1.minlogs = 1;
  config.l1.test.sample_size = 5;
  config.l2.min_cooccurrence = 1;
  config.l2.min_cooccurrence_per_session = 0;
  config.l2.session.min_logs = 2;
  MiningPipeline pipeline(ServiceVocabulary{}, config);  // empty vocabulary
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().l1.has_value());
  EXPECT_TRUE(result.value().l2.has_value());
  EXPECT_FALSE(result.value().l3.has_value());
  EXPECT_TRUE(result.value().l1_status.ok());
  EXPECT_TRUE(result.value().l2_status.ok());
  EXPECT_FALSE(result.value().l3_status.ok());
  EXPECT_FALSE(result.value().all_ok());
  EXPECT_EQ(result.value().first_error().code(),
            result.value().l3_status.code());
}

TEST(PipelineTest, PreCancelledRunSkipsEveryMiner) {
  const LogStore store = TinyStore();
  MiningPipeline pipeline(TinyVocab(), PipelineConfig{});
  CancelToken token;
  token.Cancel();
  auto result = pipeline.Run(store, 0, 10000, &token);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().l1.has_value());
  EXPECT_FALSE(result.value().l2.has_value());
  EXPECT_FALSE(result.value().l3.has_value());
  EXPECT_EQ(result.value().l1_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.value().l2_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.value().l3_status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(result.value().all_ok());
}

TEST(PipelineTest, ExpiredDeadlineSkipsEveryMiner) {
  // A deadline of 0 means "no deadline"; a negative budget has already
  // expired by the time the miners are scheduled.
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.deadline_ms = -1;
  MiningPipeline pipeline(TinyVocab(), config);
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().l1.has_value());
  EXPECT_EQ(result.value().l1_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.value().l3_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result.value().all_ok());
}

TEST(PipelineTest, RunWithoutObsContextAttachesNoSnapshot) {
  const LogStore store = TinyStore();
  MiningPipeline pipeline(TinyVocab(), PipelineConfig{});
  auto result = pipeline.Run(store, 0, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().metrics.has_value());
}

TEST(PipelineTest, RunAttachesMetricsSnapshotToResult) {
  const LogStore store = TinyStore();
  PipelineConfig config;
  config.l1.minlogs = 1;
  config.l1.test.sample_size = 5;
  config.l2.min_cooccurrence = 1;
  config.l2.min_cooccurrence_per_session = 0;
  config.l2.session.min_logs = 2;
  MiningPipeline pipeline(TinyVocab(), config);

  obs::ObsContext context;
  // Install globally too, so the miners' own layer counters land in the
  // same registry the pipeline snapshots — the way the demo and bench
  // binaries run.
  obs::ScopedGlobalObs scoped(&context);
  auto result = pipeline.Run(store, 0, 10000, nullptr, &context);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().metrics.has_value());

  const obs::MetricsSnapshot& snap = *result.value().metrics;
  EXPECT_EQ(snap.Value("pipeline.runs"), 1);
  EXPECT_EQ(snap.Value("pipeline.miners_ok"), 3);
  EXPECT_EQ(snap.Value("pipeline.miners_failed"), 0);
  EXPECT_EQ(snap.Value("l1.runs"), 1);
  EXPECT_EQ(snap.Value("l2.runs"), 1);
  EXPECT_EQ(snap.Value("l3.runs"), 1);
  EXPECT_GT(snap.Value("l3.logs_scanned"), 0);
  const obs::MetricsSnapshot::Entry* run_ns = snap.Find("pipeline.run_ns");
  ASSERT_NE(run_ns, nullptr);
  EXPECT_EQ(run_ns->hist.count, 1);
  // The flight recorder saw the run span plus the per-miner spans.
  EXPECT_GE(context.trace().total_recorded(), 4u);
}

TEST(PipelineTest, ExplicitObsContextWorksWithoutGlobalInstall) {
  const LogStore store = TinyStore();
  MiningPipeline pipeline(TinyVocab(), PipelineConfig{});
  obs::ObsContext context;
  ASSERT_EQ(obs::Global(), nullptr);
  auto result = pipeline.Run(store, 0, 10000, nullptr, &context);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().metrics.has_value());
  // Pipeline-level counters land in the explicit context even though no
  // global context is installed; layer counters (l1.runs & co) go to the
  // global context and are dropped here.
  EXPECT_EQ(result.value().metrics->Value("pipeline.runs"), 1);
  EXPECT_EQ(result.value().metrics->Value("pipeline.miners_ok"), 3);
}

}  // namespace
}  // namespace logmine::core
