// Snapshot round-trip properties: for randomized instances of every
// resumable-state type, Decode(Encode(x)) == x, and corrupt or
// truncated payloads are rejected instead of half-decoded.

#include "core/serialization.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::core {
namespace {

std::string RandomName(Rng* rng) {
  static const char* kStems[] = {"adt",  "lab",    "pacs", "billing",
                                 "ris",  "portal", "lis",  "pharmacy"};
  return std::string(kStems[rng->UniformInt(0, 7)]) + "-" +
         std::to_string(rng->UniformInt(0, 999));
}

DependencyModel RandomModel(Rng* rng, int max_pairs) {
  DependencyModel model;
  const int64_t pairs = rng->UniformInt(0, max_pairs);
  for (int64_t i = 0; i < pairs; ++i) {
    model.Insert(MakeUnorderedPair(RandomName(rng), RandomName(rng)));
  }
  return model;
}

ConfusionCounts RandomCounts(Rng* rng) {
  ConfusionCounts counts;
  counts.true_positives = rng->UniformInt(0, 500);
  counts.false_positives = rng->UniformInt(0, 100);
  counts.false_negatives = rng->UniformInt(0, 100);
  counts.universe = rng->UniformInt(1000, 5000);
  return counts;
}

/// Encodes via one writer section, reparses, returns the cursor payload
/// round-trip through the full container (header/CRC included).
template <typename EncodeFn>
std::string EncodeToSnapshot(const EncodeFn& encode) {
  SnapshotWriter w;
  w.BeginSection("x");
  encode(&w);
  w.EndSection();
  return std::move(w).Finish();
}

template <typename T, typename EncodeFn, typename DecodeFn>
T RoundTrip(const EncodeFn& encode, const DecodeFn& decode) {
  const std::string bytes = EncodeToSnapshot(encode);
  auto reader = SnapshotReader::Parse(bytes);
  EXPECT_TRUE(reader.ok()) << reader.status();
  auto cursor = reader.value().Section("x");
  EXPECT_TRUE(cursor.ok());
  auto value = decode(&cursor.value());
  EXPECT_TRUE(value.ok()) << value.status();
  EXPECT_TRUE(cursor.value().ExpectEnd().ok());
  return std::move(value).value();
}

TEST(SerializationTest, DependencyModelRoundTripsRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const DependencyModel model = RandomModel(&rng, 40);
    const DependencyModel decoded = RoundTrip<DependencyModel>(
        [&](SnapshotWriter* w) { EncodeDependencyModel(model, w); },
        [](SectionCursor* c) { return DecodeDependencyModel(c); });
    EXPECT_EQ(decoded.pairs(), model.pairs());
  }
}

TEST(SerializationTest, ConfusionCountsAndDailySeriesRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    DailySeries series;
    const int64_t days = rng.UniformInt(0, 9);
    for (int64_t d = 0; d < days; ++d) {
      series.day_labels.push_back("2005-12-" + std::to_string(6 + d));
      series.days.push_back(RandomCounts(&rng));
    }
    const DailySeries decoded = RoundTrip<DailySeries>(
        [&](SnapshotWriter* w) { EncodeDailySeries(series, w); },
        [](SectionCursor* c) { return DecodeDailySeries(c); });
    EXPECT_EQ(decoded.day_labels, series.day_labels);
    ASSERT_EQ(decoded.days.size(), series.days.size());
    for (size_t d = 0; d < series.days.size(); ++d) {
      EXPECT_EQ(decoded.days[d].true_positives,
                series.days[d].true_positives);
      EXPECT_EQ(decoded.days[d].false_positives,
                series.days[d].false_positives);
      EXPECT_EQ(decoded.days[d].false_negatives,
                series.days[d].false_negatives);
      EXPECT_EQ(decoded.days[d].universe, series.days[d].universe);
    }
  }
}

TEST(SerializationTest, SessionBuildStatsRoundTrip) {
  SessionBuildStats stats;
  stats.num_sessions = 123;
  stats.logs_considered = 45678;
  stats.logs_with_context = 34567;
  stats.logs_assigned = 23456;
  stats.assigned_fraction = 0.5135;
  const SessionBuildStats decoded = RoundTrip<SessionBuildStats>(
      [&](SnapshotWriter* w) { EncodeSessionBuildStats(stats, w); },
      [](SectionCursor* c) { return DecodeSessionBuildStats(c); });
  EXPECT_EQ(decoded.num_sessions, stats.num_sessions);
  EXPECT_EQ(decoded.logs_considered, stats.logs_considered);
  EXPECT_EQ(decoded.logs_with_context, stats.logs_with_context);
  EXPECT_EQ(decoded.logs_assigned, stats.logs_assigned);
  EXPECT_EQ(decoded.assigned_fraction, stats.assigned_fraction);
}

TEST(SerializationTest, ModelTrackerRoundTripsMidStream) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    ModelTrackerConfig config;
    config.confirm_after = rng.UniformInt(1, 3);
    config.stale_after = rng.UniformInt(2, 5);
    config.retire_after = rng.UniformInt(5, 9);
    ModelTracker tracker(config);
    const int64_t observations = rng.UniformInt(0, 12);
    for (int64_t o = 0; o < observations; ++o) {
      tracker.Observe(RandomModel(&rng, 15));
    }

    ModelTracker decoded = RoundTrip<ModelTracker>(
        [&](SnapshotWriter* w) { EncodeModelTracker(tracker, w); },
        [](SectionCursor* c) { return DecodeModelTracker(c); });
    EXPECT_EQ(decoded.num_observations(), tracker.num_observations());
    EXPECT_EQ(decoded.config().confirm_after, config.confirm_after);
    EXPECT_EQ(decoded.config().stale_after, config.stale_after);
    EXPECT_EQ(decoded.config().retire_after, config.retire_after);
    ASSERT_EQ(decoded.tracked().size(), tracker.tracked().size());
    auto expected = tracker.tracked().begin();
    for (const auto& [pair, dep] : decoded.tracked()) {
      EXPECT_EQ(pair, expected->first);
      EXPECT_EQ(dep.state, expected->second.state);
      EXPECT_EQ(dep.first_seen, expected->second.first_seen);
      EXPECT_EQ(dep.last_seen, expected->second.last_seen);
      EXPECT_EQ(dep.times_seen, expected->second.times_seen);
      EXPECT_EQ(dep.confirm_streak, expected->second.confirm_streak);
      ++expected;
    }

    // The restored tracker behaves identically from here on.
    const DependencyModel next = RandomModel(&rng, 15);
    ModelUpdate original_update = tracker.Observe(next);
    ModelUpdate decoded_update = decoded.Observe(next);
    EXPECT_EQ(original_update.confirmed, decoded_update.confirmed);
    EXPECT_EQ(original_update.retired, decoded_update.retired);
    EXPECT_EQ(original_update.revived, decoded_update.revived);
    EXPECT_EQ(tracker.ActiveModel().pairs(), decoded.ActiveModel().pairs());
  }
}

TEST(SerializationTest, L1ConfigRoundTrip) {
  L1Config config;
  config.slot_length = 30 * kMillisPerMinute;
  config.adaptive_slots = true;
  config.adaptive.alpha = 0.02;
  config.adaptive.probe_bins = 12;
  config.baseline = L1Baseline::kIntensityProportional;
  config.baseline_jitter = 777;
  config.minlogs = 55;
  config.th_pr = 0.7;
  config.th_s = 0.2;
  config.test.sample_size = 300;
  config.test.level = 0.99;
  config.seed = 1234;
  config.num_threads = 4;
  config.prune_support = false;
  config.pair_chunk = 64;
  const L1Config decoded = RoundTrip<L1Config>(
      [&](SnapshotWriter* w) { EncodeL1Config(config, w); },
      [](SectionCursor* c) { return DecodeL1Config(c); });
  EXPECT_EQ(decoded.slot_length, config.slot_length);
  EXPECT_EQ(decoded.adaptive_slots, config.adaptive_slots);
  EXPECT_EQ(decoded.adaptive.min_slot, config.adaptive.min_slot);
  EXPECT_EQ(decoded.adaptive.max_slot, config.adaptive.max_slot);
  EXPECT_EQ(decoded.adaptive.alpha, config.adaptive.alpha);
  EXPECT_EQ(decoded.adaptive.probe_bins, config.adaptive.probe_bins);
  EXPECT_EQ(decoded.adaptive.min_events, config.adaptive.min_events);
  EXPECT_EQ(decoded.baseline, config.baseline);
  EXPECT_EQ(decoded.baseline_jitter, config.baseline_jitter);
  EXPECT_EQ(decoded.minlogs, config.minlogs);
  EXPECT_EQ(decoded.th_pr, config.th_pr);
  EXPECT_EQ(decoded.th_s, config.th_s);
  EXPECT_EQ(decoded.test.sample_size, config.test.sample_size);
  EXPECT_EQ(decoded.test.level, config.test.level);
  EXPECT_EQ(decoded.seed, config.seed);
  EXPECT_EQ(decoded.num_threads, config.num_threads);
  EXPECT_EQ(decoded.prune_support, config.prune_support);
  EXPECT_EQ(decoded.pair_chunk, config.pair_chunk);
  EXPECT_EQ(ConfigFingerprint(decoded), ConfigFingerprint(config));
}

TEST(SerializationTest, L2ConfigRoundTrip) {
  L2Config config;
  config.session.max_gap = 10 * kMillisPerMinute;
  config.session.min_logs = 3;
  config.timeout = 2500;
  config.test = AssociationTest::kPearson;
  config.alpha = 0.01;
  config.min_cooccurrence = 9;
  config.min_cooccurrence_per_session = 0.125;
  config.num_threads = 2;
  const L2Config decoded = RoundTrip<L2Config>(
      [&](SnapshotWriter* w) { EncodeL2Config(config, w); },
      [](SectionCursor* c) { return DecodeL2Config(c); });
  EXPECT_EQ(decoded.session.max_gap, config.session.max_gap);
  EXPECT_EQ(decoded.session.min_logs, config.session.min_logs);
  EXPECT_EQ(decoded.timeout, config.timeout);
  EXPECT_EQ(decoded.test, config.test);
  EXPECT_EQ(decoded.alpha, config.alpha);
  EXPECT_EQ(decoded.min_cooccurrence, config.min_cooccurrence);
  EXPECT_EQ(decoded.min_cooccurrence_per_session,
            config.min_cooccurrence_per_session);
  EXPECT_EQ(decoded.num_threads, config.num_threads);
  EXPECT_EQ(ConfigFingerprint(decoded), ConfigFingerprint(config));
}

TEST(SerializationTest, L3ConfigRoundTrip) {
  L3Config config;
  config.stop_patterns = {"received * from *", "incoming ?", ""};
  config.use_stop_patterns = false;
  config.min_citations = 3;
  config.num_threads = 8;
  const L3Config decoded = RoundTrip<L3Config>(
      [&](SnapshotWriter* w) { EncodeL3Config(config, w); },
      [](SectionCursor* c) { return DecodeL3Config(c); });
  EXPECT_EQ(decoded.stop_patterns, config.stop_patterns);
  EXPECT_EQ(decoded.use_stop_patterns, config.use_stop_patterns);
  EXPECT_EQ(decoded.min_citations, config.min_citations);
  EXPECT_EQ(decoded.num_threads, config.num_threads);
  EXPECT_EQ(ConfigFingerprint(decoded), ConfigFingerprint(config));
}

TEST(SerializationTest, FingerprintSeesEveryResultRelevantField) {
  // Each single-field tweak must move the fingerprint...
  const L1Config l1;
  {
    L1Config tweaked = l1;
    tweaked.th_pr += 0.01;
    EXPECT_NE(ConfigFingerprint(tweaked), ConfigFingerprint(l1));
  }
  {
    L1Config tweaked = l1;
    tweaked.seed += 1;
    EXPECT_NE(ConfigFingerprint(tweaked), ConfigFingerprint(l1));
  }
  const L2Config l2;
  {
    L2Config tweaked = l2;
    tweaked.timeout += 1;
    EXPECT_NE(ConfigFingerprint(tweaked), ConfigFingerprint(l2));
  }
  const L3Config l3;
  {
    L3Config tweaked = l3;
    tweaked.stop_patterns.pop_back();
    EXPECT_NE(ConfigFingerprint(tweaked), ConfigFingerprint(l3));
  }
  // ...and the three techniques never collide on defaults.
  EXPECT_NE(ConfigFingerprint(l1), ConfigFingerprint(l2));
  EXPECT_NE(ConfigFingerprint(l2), ConfigFingerprint(l3));
}

TEST(SerializationTest, FingerprintIgnoresThreadCount) {
  // Results are bit-identical for any thread count (PR 1), so a resumed
  // run may change parallelism without invalidating its checkpoints.
  L1Config l1;
  l1.num_threads = 1;
  L1Config l1_pool = l1;
  l1_pool.num_threads = 0;
  EXPECT_EQ(ConfigFingerprint(l1), ConfigFingerprint(l1_pool));
  L2Config l2;
  l2.num_threads = 1;
  L2Config l2_pool = l2;
  l2_pool.num_threads = 8;
  EXPECT_EQ(ConfigFingerprint(l2), ConfigFingerprint(l2_pool));
  L3Config l3;
  l3.num_threads = 1;
  L3Config l3_pool = l3;
  l3_pool.num_threads = 8;
  EXPECT_EQ(ConfigFingerprint(l3), ConfigFingerprint(l3_pool));
}

TEST(SerializationTest, FingerprintIgnoresSchedulingKnobs) {
  // Pruning and chunking change only how the work is scheduled, never
  // the result bytes (ParallelDeterminismTest.L1PrunedMatchesUnpruned),
  // so checkpoints survive toggling them.
  L1Config l1;
  L1Config tuned = l1;
  tuned.prune_support = !l1.prune_support;
  tuned.pair_chunk = l1.pair_chunk * 4;
  EXPECT_EQ(ConfigFingerprint(l1), ConfigFingerprint(tuned));
}

TEST(SerializationTest, CorruptPayloadsAreRejectedNotHalfDecoded) {
  // An implausible pair count must fail fast instead of reserving.
  SnapshotWriter w;
  w.BeginSection("x");
  w.PutU64(uint64_t{1} << 40);  // claimed pair count
  w.EndSection();
  const std::string bytes = std::move(w).Finish();
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  SectionCursor c = reader.value().Section("x").value();
  EXPECT_EQ(DecodeDependencyModel(&c).status().code(),
            StatusCode::kParseError);

  // Every strict prefix of a tracker payload must fail to decode: the
  // decoder consumes exactly what the encoder wrote, so any missing
  // byte surfaces as a bounds-checked ParseError, never a partial
  // tracker. Extract the raw section payload from the known container
  // layout (8-byte header, 13-byte section prefix for name "x", 8-byte
  // footer) and decode from progressively truncated cursors.
  ModelTracker tracker{ModelTrackerConfig{}};
  DependencyModel model;
  model.Insert(MakeUnorderedPair("a", "b"));
  tracker.Observe(model);
  const std::string tracker_bytes = EncodeToSnapshot(
      [&](SnapshotWriter* w) { EncodeModelTracker(tracker, w); });
  const size_t prefix = 8 + 4 + 1 + 8;
  const std::string payload =
      tracker_bytes.substr(prefix, tracker_bytes.size() - prefix - 8);
  {
    // Sanity: the extracted payload decodes whole.
    SectionCursor full{std::string_view(payload)};
    ASSERT_TRUE(DecodeModelTracker(&full).ok());
    ASSERT_TRUE(full.ExpectEnd().ok());
  }
  for (size_t keep = 0; keep < payload.size(); ++keep) {
    SectionCursor truncated{std::string_view(payload).substr(0, keep)};
    EXPECT_EQ(DecodeModelTracker(&truncated).status().code(),
              StatusCode::kParseError)
        << "tracker payload prefix of " << keep << " bytes decoded";
  }
}

}  // namespace
}  // namespace logmine::core
