#include "core/l1_activity_miner.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::core {
namespace {

// Appends `count` logs of `source` uniformly over [begin, end).
void AddUniform(LogStore* store, const std::string& source, TimeMs begin,
                TimeMs end, int count, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    LogRecord record;
    record.client_ts = rng->UniformInt(begin, end - 1);
    record.server_ts = record.client_ts;
    record.source = source;
    record.message = "x";
    ASSERT_TRUE(store->Append(record).ok());
  }
}

// Appends logs of `follower` 30-150 ms after each log of `leader`.
void AddFollower(LogStore* store, const LogStore& base,
                 LogStore::SourceId leader, const std::string& follower,
                 Rng* rng) {
  for (TimeMs t : base.SourceTimestamps(leader)) {
    LogRecord record;
    record.client_ts = t + rng->UniformInt(30, 150);
    record.server_ts = record.client_ts;
    record.source = follower;
    record.message = "y";
    ASSERT_TRUE(store->Append(record).ok());
  }
}

L1Config FastConfig() {
  L1Config config;
  config.slot_length = kMillisPerHour;
  config.minlogs = 50;
  config.test.sample_size = 100;
  return config;
}

TEST(L1MinerTest, DetectsCallerCalleePairAndSkipsIndependents) {
  const TimeMs horizon = 6 * kMillisPerHour;
  Rng rng(101);
  LogStore store;
  AddUniform(&store, "Caller", 0, horizon, 600, &rng);
  AddUniform(&store, "Loner", 0, horizon, 600, &rng);
  store.BuildIndex();
  AddFollower(&store, store, store.FindSource("Caller").value(), "Callee",
              &rng);
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps = result.value().Dependencies(store);
  EXPECT_TRUE(deps.Contains(MakeUnorderedPair("Caller", "Callee")));
  EXPECT_FALSE(deps.Contains(MakeUnorderedPair("Caller", "Loner")));
  EXPECT_FALSE(deps.Contains(MakeUnorderedPair("Callee", "Loner")));
}

TEST(L1MinerTest, SupportAndRatioBookkeeping) {
  const TimeMs horizon = 4 * kMillisPerHour;
  Rng rng(102);
  LogStore store;
  AddUniform(&store, "A", 0, horizon, 400, &rng);
  // B is active only in the first two slots.
  AddUniform(&store, "B", 0, 2 * kMillisPerHour, 200, &rng);
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().slots_total, 4);
  ASSERT_EQ(result.value().pairs.size(), 1u);
  const L1PairResult& pair = result.value().pairs[0];
  EXPECT_EQ(pair.slots_supported, 2);  // B misses minlogs in slots 3-4
  EXPECT_LE(pair.slots_positive, pair.slots_supported);
}

TEST(L1MinerTest, MinlogsSkipsSparseSources) {
  const TimeMs horizon = 2 * kMillisPerHour;
  Rng rng(103);
  LogStore store;
  AddUniform(&store, "Busy", 0, horizon, 500, &rng);
  AddUniform(&store, "Sparse", 0, horizon, 20, &rng);  // < minlogs per slot
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().pairs.empty());  // pair never supported
}

TEST(L1MinerTest, SupportThresholdGatesDecision) {
  const TimeMs horizon = 10 * kMillisPerHour;
  Rng rng(104);
  LogStore store;
  // Correlated pair, but only active in 2 of 10 slots.
  AddUniform(&store, "A", 0, 2 * kMillisPerHour, 400, &rng);
  store.BuildIndex();
  AddFollower(&store, store, store.FindSource("A").value(), "B", &rng);
  store.BuildIndex();

  L1Config config = FastConfig();
  config.th_s = 0.3;  // requires >= 3 of 10 slots
  L1ActivityMiner miner(config);
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().pairs.size(), 1u);
  EXPECT_EQ(result.value().pairs[0].slots_supported, 2);
  EXPECT_FALSE(result.value().pairs[0].dependent);  // support too low

  config.th_s = 0.2;  // 2 of 10 slots suffice
  L1ActivityMiner looser(config);
  auto result2 = looser.Mine(store, 0, horizon);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2.value().pairs[0].dependent);
}

TEST(L1MinerTest, DeterministicAcrossRuns) {
  const TimeMs horizon = 3 * kMillisPerHour;
  Rng rng(105);
  LogStore store;
  AddUniform(&store, "A", 0, horizon, 300, &rng);
  AddUniform(&store, "B", 0, horizon, 300, &rng);
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  auto first = miner.Mine(store, 0, horizon);
  auto second = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.value().pairs.size(), second.value().pairs.size());
  for (size_t i = 0; i < first.value().pairs.size(); ++i) {
    EXPECT_EQ(first.value().pairs[i].slots_positive,
              second.value().pairs[i].slots_positive);
  }
}

TEST(L1MinerTest, ParallelMiningIsBitIdenticalToSerial) {
  const TimeMs horizon = 6 * kMillisPerHour;
  Rng rng(211);
  LogStore store;
  for (int s = 0; s < 6; ++s) {
    AddUniform(&store, "App" + std::to_string(s), 0, horizon, 500, &rng);
  }
  store.BuildIndex();
  AddFollower(&store, store, store.FindSource("App0").value(), "Echo", &rng);
  store.BuildIndex();

  L1Config serial = FastConfig();
  serial.num_threads = 1;
  L1Config parallel = FastConfig();
  parallel.num_threads = 4;
  auto a = L1ActivityMiner(serial).Mine(store, 0, horizon);
  auto b = L1ActivityMiner(parallel).Mine(store, 0, horizon);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().pairs.size(), b.value().pairs.size());
  for (size_t i = 0; i < a.value().pairs.size(); ++i) {
    EXPECT_EQ(a.value().pairs[i].a, b.value().pairs[i].a);
    EXPECT_EQ(a.value().pairs[i].b, b.value().pairs[i].b);
    EXPECT_EQ(a.value().pairs[i].slots_supported,
              b.value().pairs[i].slots_supported);
    EXPECT_EQ(a.value().pairs[i].slots_positive,
              b.value().pairs[i].slots_positive);
    EXPECT_EQ(a.value().pairs[i].dependent, b.value().pairs[i].dependent);
  }
  // num_threads = 0 (auto) must also agree.
  L1Config automatic = FastConfig();
  automatic.num_threads = 0;
  auto c = L1ActivityMiner(automatic).Mine(store, 0, horizon);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().Dependencies(store).pairs(),
            a.value().Dependencies(store).pairs());
}

TEST(L1MinerTest, PairRangesPartitionTheFullResult) {
  // Property behind the sharded sweep: for any slice count, the
  // per-slice results are disjoint, their union is the unsliced result,
  // and every shared pair is byte-identical — randomness is keyed by
  // (seed, slot, source), never by which pairs ride along.
  const TimeMs horizon = 6 * kMillisPerHour;
  Rng rng(311);
  LogStore store;
  for (int s = 0; s < 7; ++s) {
    AddUniform(&store, "App" + std::to_string(s), 0, horizon, 500, &rng);
  }
  store.BuildIndex();
  AddFollower(&store, store, store.FindSource("App1").value(), "Echo", &rng);
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  auto full = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full.value().pairs.empty());

  for (uint32_t count : {1u, 2u, 3u, 5u, 64u}) {
    std::vector<L1PairResult> combined;
    int64_t tested = 0, pruned = 0;
    DependencyModel deps_union;
    for (uint32_t index = 0; index < count; ++index) {
      auto slice = miner.Mine(store, 0, horizon, PairRange{index, count});
      ASSERT_TRUE(slice.ok()) << slice.status();
      EXPECT_EQ(slice.value().slots_total, full.value().slots_total);
      combined.insert(combined.end(), slice.value().pairs.begin(),
                      slice.value().pairs.end());
      tested += slice.value().pairs_tested;
      pruned += slice.value().pairs_pruned;
      deps_union = deps_union.Union(slice.value().Dependencies(store));
    }
    // Slices are contiguous in (a, b) rank order, so concatenating them
    // in index order reproduces the full listing exactly.
    ASSERT_EQ(combined.size(), full.value().pairs.size()) << count;
    for (size_t i = 0; i < combined.size(); ++i) {
      EXPECT_EQ(combined[i].a, full.value().pairs[i].a);
      EXPECT_EQ(combined[i].b, full.value().pairs[i].b);
      EXPECT_EQ(combined[i].slots_supported,
                full.value().pairs[i].slots_supported);
      EXPECT_EQ(combined[i].slots_positive,
                full.value().pairs[i].slots_positive);
      EXPECT_EQ(combined[i].dependent, full.value().pairs[i].dependent);
    }
    EXPECT_EQ(tested, full.value().pairs_tested) << count;
    EXPECT_EQ(pruned, full.value().pairs_pruned) << count;
    EXPECT_EQ(deps_union.pairs(), full.value().Dependencies(store).pairs())
        << count;
  }
}

TEST(L1MinerTest, RejectsInvalidPairRange) {
  Rng rng(312);
  LogStore store;
  AddUniform(&store, "A", 0, kMillisPerHour, 100, &rng);
  store.BuildIndex();
  L1ActivityMiner miner(FastConfig());
  EXPECT_FALSE(miner.Mine(store, 0, kMillisPerHour, PairRange{0, 0}).ok());
  EXPECT_FALSE(miner.Mine(store, 0, kMillisPerHour, PairRange{2, 2}).ok());
}

TEST(L1MinerTest, RequiresIndexAndValidInterval) {
  LogStore store;
  LogRecord record;
  record.source = "A";
  ASSERT_TRUE(store.Append(record).ok());
  L1ActivityMiner miner(FastConfig());
  EXPECT_FALSE(miner.Mine(store, 0, 100).ok());  // index not built
  store.BuildIndex();
  EXPECT_FALSE(miner.Mine(store, 100, 100).ok());  // empty interval
}

TEST(L1MinerTest, TestSlotExposesBothSamples) {
  const TimeMs horizon = kMillisPerHour;
  Rng rng(106);
  LogStore store;
  AddUniform(&store, "A", 0, horizon, 400, &rng);
  store.BuildIndex();
  AddFollower(&store, store, store.FindSource("A").value(), "B", &rng);
  store.BuildIndex();

  L1ActivityMiner miner(FastConfig());
  const auto outcome = miner.TestSlot(
      store, store.FindSource("A").value(), store.FindSource("B").value(),
      0, horizon, /*salt=*/1);
  EXPECT_TRUE(outcome.positive);
  EXPECT_FALSE(outcome.sample_random.empty());
  EXPECT_FALSE(outcome.sample_target.empty());
}

TEST(L1MinerTest, FalsePositiveRateOnIndependentLandscapeIsLow) {
  // Property: many independent sources, no pair should be declared
  // dependent (the per-slot test is 95%-level but the both-directions +
  // th_pr composition makes pair-level false positives rare).
  const TimeMs horizon = 6 * kMillisPerHour;
  Rng rng(107);
  LogStore store;
  for (int s = 0; s < 8; ++s) {
    AddUniform(&store, "App" + std::to_string(s), 0, horizon, 700, &rng);
  }
  store.BuildIndex();
  L1ActivityMiner miner(FastConfig());
  auto result = miner.Mine(store, 0, horizon);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Dependencies(store).size(), 0u);
}

}  // namespace
}  // namespace logmine::core
