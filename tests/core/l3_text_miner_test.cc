#include "core/l3_text_miner.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::core {
namespace {

ServiceVocabulary Vocab() {
  ServiceVocabulary vocabulary;
  vocabulary.entries.push_back(
      {"DPINOTIFICATION", "http://srv01.hug.ch:9980/dpinotification"});
  vocabulary.entries.push_back(
      {"UPSRV2", "http://srv02.hug.ch:9980/upsrv2"});
  vocabulary.entries.push_back(
      {"LABRES", "http://srv03.hug.ch:9980/labres"});
  return vocabulary;
}

LogRecord Rec(TimeMs ts, std::string source, std::string message) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.message = std::move(message);
  return record;
}

LogStore MakeStore(const std::vector<LogRecord>& records) {
  LogStore store;
  for (const LogRecord& record : records) {
    EXPECT_TRUE(store.Append(record).ok());
  }
  store.BuildIndex();
  return store;
}

TEST(L3MinerTest, PaperExampleMessagesMatch) {
  // Both log shapes from §3.3 must produce the citation.
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA",
          "Invoke externalService [fct [notify] "
          "server [srv01.hug.ch:9980/dpinotification]]"),
      Rec(10, "AppB", "(DPINOTIFICATION) notify( $myparams )"),
  });
  L3TextMiner miner(vocabulary, L3Config{});
  auto result = miner.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_TRUE(deps.Contains({"AppA", "DPINOTIFICATION"}));
  EXPECT_TRUE(deps.Contains({"AppB", "DPINOTIFICATION"}));
}

TEST(L3MinerTest, CitationByIdAndByUrl) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA", "(DPINOTIFICATION) notify()"),
      Rec(10, "AppB", "-> url http://srv02.hug.ch:9980/upsrv2/store id=4"),
      Rec(20, "AppC", "nothing to see here"),
  });
  L3TextMiner miner(vocabulary, L3Config{});
  auto result = miner.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_TRUE(deps.Contains({"AppA", "DPINOTIFICATION"}));
  EXPECT_TRUE(deps.Contains({"AppB", "UPSRV2"}));
}

TEST(L3MinerTest, MatchingIsCaseInsensitiveAndWholeToken) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA", "calling labres.query for patient 1234"),
      // Substring but not a whole token: must NOT match LABRES.
      Rec(10, "AppB", "calling labres2migration.query"),
      Rec(20, "AppC", "token LABRESX is unrelated"),
  });
  L3TextMiner miner(vocabulary, L3Config{});
  auto result = miner.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_EQ(deps.size(), 1u);
  EXPECT_TRUE(deps.Contains({"AppA", "LABRES"}));
}

TEST(L3MinerTest, StopPatternsSuppressServerSideLogs) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "NotifSrv", "Received call notify from ws-004 (DPINOTIFICATION)"),
      Rec(10, "AppA", "(DPINOTIFICATION) notify()"),
  });
  L3TextMiner with_stop(vocabulary, L3Config{});
  auto result = with_stop.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().logs_stopped, 1);
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_EQ(deps.size(), 1u);
  EXPECT_FALSE(deps.Contains({"NotifSrv", "DPINOTIFICATION"}));

  L3Config no_stop;
  no_stop.use_stop_patterns = false;
  L3TextMiner without(vocabulary, no_stop);
  auto result2 = without.Mine(store, 0, 100);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2.value().logs_stopped, 0);
  EXPECT_TRUE(result2.value()
                  .Dependencies(store, vocabulary)
                  .Contains({"NotifSrv", "DPINOTIFICATION"}));
}

TEST(L3MinerTest, DefaultStopPatternsCoverKnownFormats) {
  L3TextMiner miner(Vocab(), L3Config{});
  EXPECT_TRUE(miner.IsStopped("Received call notify from ws-001 (X)"));
  EXPECT_TRUE(miner.IsStopped("x incoming request store (Y) client=h"));
  EXPECT_TRUE(miner.IsStopped("handling fct query for h grp Z"));
  EXPECT_TRUE(miner.IsStopped("serve Z.query <- ws-003"));
  EXPECT_TRUE(miner.IsStopped("request dispatched to worker: Z/f job=1"));
  // The sixth provider-side family deliberately evades the list.
  EXPECT_FALSE(miner.IsStopped("EXEC query caller=ws-001 group=Z"));
  EXPECT_FALSE(miner.IsStopped("ordinary message"));
  EXPECT_EQ(DefaultStopPatterns().size(), 10u);  // as deployed at HUG
}

TEST(L3MinerTest, MinCitationsThreshold) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA", "(LABRES) fetch()"),
      Rec(10, "AppA", "(LABRES) fetch()"),
      Rec(20, "AppB", "(LABRES) fetch()"),
  });
  L3Config config;
  config.min_citations = 2;
  L3TextMiner miner(vocabulary, config);
  auto result = miner.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_TRUE(deps.Contains({"AppA", "LABRES"}));
  EXPECT_FALSE(deps.Contains({"AppB", "LABRES"}));
}

TEST(L3MinerTest, CitationCountsAccumulate) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA", "(LABRES) fetch() and again LABRES"),  // dedup per log
      Rec(10, "AppA", "(LABRES) fetch()"),
  });
  L3TextMiner miner(vocabulary, L3Config{});
  auto result = miner.Mine(store, 0, 100);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().citations.size(), 1u);
  EXPECT_EQ(result.value().citations[0].count, 2);
}

TEST(L3MinerTest, TimeWindowRespected) {
  const ServiceVocabulary vocabulary = Vocab();
  const LogStore store = MakeStore({
      Rec(0, "AppA", "(LABRES) fetch()"),
      Rec(1000, "AppB", "(LABRES) fetch()"),
  });
  L3TextMiner miner(vocabulary, L3Config{});
  auto result = miner.Mine(store, 0, 500);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().logs_scanned, 1);
  const DependencyModel deps =
      result.value().Dependencies(store, vocabulary);
  EXPECT_FALSE(deps.Contains({"AppB", "LABRES"}));
}

TEST(L3MinerTest, EmptyVocabularyFails) {
  const LogStore store = MakeStore({Rec(0, "AppA", "x")});
  L3TextMiner miner(ServiceVocabulary{}, L3Config{});
  EXPECT_FALSE(miner.Mine(store, 0, 100).ok());
}

TEST(L3MinerTest, CitedEntriesDeduplicated) {
  L3TextMiner miner(Vocab(), L3Config{});
  const auto cited =
      miner.CitedEntries("LABRES labres LaBrEs UPSRV2 and LABRES again");
  EXPECT_EQ(cited.size(), 2u);
}

TEST(L3MinerTest, FusedScanMatchesScalarPath) {
  // The SIMD fused scan must agree with IsStopped + CitedEntries on the
  // stop decision and the cited-entry set for arbitrary messages. Fuzz
  // with fragments engineered to stress every fast-path boundary: ids
  // in every case, ids embedded in longer tokens (must not match), stop
  // needles and near-misses, and lengths crossing the 512-byte
  // stack-buffer cutoff.
  const ServiceVocabulary vocabulary = Vocab();
  L3TextMiner miner(vocabulary, L3Config{});
  if (!miner.fused_scan_ok()) GTEST_SKIP() << "fused scan not available";
  const std::vector<std::string> fragments = {
      "DPINOTIFICATION", "dpinotification", "DpiNotification",
      "UPSRV2",          "upsrv2x",         "xupsrv2",
      "LABRES",          "labres",          "LABRES,",
      "_LABRES",         "http://srv03.hug.ch:9980/labres",
      "Received",        "call",            "Received call transfer",
      "sent keepalive",  "to peer",         "(notify)",
      "[srv01]",         "id=42",           "==",
      "",                "a",               "9980"};
  Rng rng(20051206);
  L3TextMiner::ScanScratch scratch;
  std::vector<size_t> fused_cited;
  for (int round = 0; round < 4000; ++round) {
    std::string message;
    const int64_t parts = rng.UniformInt(0, round % 20 == 0 ? 90 : 12);
    for (int64_t i = 0; i < parts; ++i) {
      if (!message.empty() && rng.Bernoulli(0.9)) message += ' ';
      message += fragments[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fragments.size()) - 1))];
    }
    const bool stopped = miner.IsStopped(message);
    fused_cited.clear();
    const bool fused_stopped =
        miner.FusedScan(message, &scratch, &fused_cited);
    ASSERT_EQ(fused_stopped, stopped) << "message=\"" << message << "\"";
    if (stopped) continue;  // partial fused output is discarded
    std::vector<size_t> scalar_cited = miner.CitedEntries(message);
    std::sort(fused_cited.begin(), fused_cited.end());
    std::sort(scalar_cited.begin(), scalar_cited.end());
    ASSERT_EQ(fused_cited, scalar_cited) << "message=\"" << message << "\"";
  }
}

}  // namespace
}  // namespace logmine::core
