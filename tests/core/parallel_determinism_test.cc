// The hard requirement of the shared-executor design: every miner, and
// the pipeline façade over them, must return byte-identical results for
// any thread count. These tests run each on a simulated multi-source
// corpus with num_threads in {1, 2, 4, 8} and compare full result
// structures field by field.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/agrawal_miner.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "core/pipeline.h"
#include "util/rng.h"

namespace logmine::core {
namespace {

constexpr TimeMs kHorizon = 6 * kMillisPerHour;
const int kThreadCounts[] = {1, 2, 4, 8};

ServiceVocabulary Vocab() {
  ServiceVocabulary vocabulary;
  vocabulary.entries.push_back({"BILLING", "http://srv01/billing"});
  vocabulary.entries.push_back({"LABRES", "http://srv02/labres"});
  vocabulary.entries.push_back({"PHARMA", "http://srv03/pharma"});
  return vocabulary;
}

// A corpus exercising every miner: several uniformly active sources, a
// caller/callee pair for L1/Agrawal, user context on most logs for
// L2's sessions, and messages that cite the vocabulary or match stop
// patterns for L3.
LogStore SimulatedCorpus() {
  Rng rng(424242);
  LogStore store;
  auto append = [&](TimeMs ts, const std::string& source,
                    const std::string& user, const std::string& message) {
    LogRecord record;
    record.client_ts = ts;
    record.server_ts = ts;
    record.source = source;
    record.user = user;
    record.message = message;
    ASSERT_TRUE(store.Append(record).ok());
  };
  const std::vector<std::string> messages = {
      "calling BILLING for invoice",
      "lookup in LABRES done",
      "Received call transfer",  // stop pattern
      "sent keepalive to peer",  // stop pattern
      "PHARMA order placed",
      "routine maintenance tick",
  };
  for (int s = 0; s < 6; ++s) {
    const std::string source = "App" + std::to_string(s);
    for (int i = 0; i < 500; ++i) {
      const TimeMs ts = rng.UniformInt(0, kHorizon - 1);
      const std::string user =
          rng.Bernoulli(0.8) ? "user" + std::to_string(rng.UniformInt(0, 7))
                             : "";
      append(ts, source, user,
             messages[static_cast<size_t>(
                 rng.UniformInt(0, static_cast<int64_t>(messages.size()) - 1))]);
    }
  }
  store.BuildIndex();
  // A follower source 30-150 ms behind App0, for the timing miners.
  for (TimeMs t : store.SourceTimestamps(0)) {
    append(t + rng.UniformInt(30, 150), "Echo", "user0",
           "calling BILLING for invoice");
  }
  store.BuildIndex();
  return store;
}

template <typename Config, typename Miner, typename Result>
std::vector<Result> MineAtEachThreadCount(const LogStore& store,
                                          Config config) {
  std::vector<Result> results;
  for (int num_threads : kThreadCounts) {
    config.num_threads = num_threads;
    Miner miner(config);
    auto mined = miner.Mine(store, 0, kHorizon);
    EXPECT_TRUE(mined.ok()) << mined.status();
    results.push_back(std::move(mined).value());
  }
  return results;
}

TEST(ParallelDeterminismTest, L1IdenticalAcrossThreadCounts) {
  const LogStore store = SimulatedCorpus();
  L1Config config;
  config.minlogs = 20;
  config.test.sample_size = 100;
  const auto results =
      MineAtEachThreadCount<L1Config, L1ActivityMiner, L1Result>(store,
                                                                 config);
  const L1Result& reference = results.front();
  for (const L1Result& other : results) {
    ASSERT_EQ(other.pairs.size(), reference.pairs.size());
    EXPECT_EQ(other.slots_total, reference.slots_total);
    for (size_t i = 0; i < reference.pairs.size(); ++i) {
      EXPECT_EQ(other.pairs[i].a, reference.pairs[i].a);
      EXPECT_EQ(other.pairs[i].b, reference.pairs[i].b);
      EXPECT_EQ(other.pairs[i].slots_supported,
                reference.pairs[i].slots_supported);
      EXPECT_EQ(other.pairs[i].slots_positive,
                reference.pairs[i].slots_positive);
      EXPECT_EQ(other.pairs[i].positive_ratio,
                reference.pairs[i].positive_ratio);
      EXPECT_EQ(other.pairs[i].dependent, reference.pairs[i].dependent);
    }
  }
}

// Support pruning only skips tests whose outcome cannot affect the
// result (pairs that cannot reach th_s, whose positives are zeroed in
// finalization either way), so the pruned and unpruned runs must agree
// on every field — at every thread count.
TEST(ParallelDeterminismTest, L1PrunedMatchesUnpruned) {
  LogStore store = SimulatedCorpus();
  // A sparse source active in only the first slot: every pair involving
  // it stays far below th_s, so the prune actually fires.
  {
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
      LogRecord record;
      record.client_ts = record.server_ts =
          rng.UniformInt(0, kMillisPerHour - 1);
      record.source = "Sparse";
      record.message = "routine maintenance tick";
      ASSERT_TRUE(store.Append(record).ok());
    }
    store.BuildIndex();
  }
  L1Config config;
  config.minlogs = 20;
  config.test.sample_size = 100;
  // High enough that the sparse source's pairs get pruned, low enough
  // that the always-on pairs still get tested.
  config.th_s = 0.9;
  config.prune_support = true;
  const auto pruned =
      MineAtEachThreadCount<L1Config, L1ActivityMiner, L1Result>(store,
                                                                 config);
  config.prune_support = false;
  const auto unpruned =
      MineAtEachThreadCount<L1Config, L1ActivityMiner, L1Result>(store,
                                                                 config);
  EXPECT_GT(pruned.front().pairs_pruned, 0);
  EXPECT_GT(pruned.front().pairs_tested, 0);
  EXPECT_EQ(unpruned.front().pairs_pruned, 0);
  for (size_t r = 0; r < pruned.size(); ++r) {
    const L1Result& p = pruned[r];
    const L1Result& u = unpruned[r];
    ASSERT_EQ(p.pairs.size(), u.pairs.size());
    EXPECT_EQ(p.pairs_tested + p.pairs_pruned, u.pairs_tested);
    for (size_t i = 0; i < p.pairs.size(); ++i) {
      EXPECT_EQ(p.pairs[i].a, u.pairs[i].a);
      EXPECT_EQ(p.pairs[i].b, u.pairs[i].b);
      EXPECT_EQ(p.pairs[i].slots_supported, u.pairs[i].slots_supported);
      EXPECT_EQ(p.pairs[i].slots_positive, u.pairs[i].slots_positive);
      EXPECT_EQ(p.pairs[i].positive_ratio, u.pairs[i].positive_ratio);
      EXPECT_EQ(p.pairs[i].dependent, u.pairs[i].dependent);
    }
  }
}

TEST(ParallelDeterminismTest, L2IdenticalAcrossThreadCounts) {
  const LogStore store = SimulatedCorpus();
  L2Config config;
  config.min_cooccurrence = 2;
  config.min_cooccurrence_per_session = 0.0;
  config.session.min_logs = 3;
  const auto results =
      MineAtEachThreadCount<L2Config, L2CooccurrenceMiner, L2Result>(store,
                                                                     config);
  const L2Result& reference = results.front();
  EXPECT_GT(reference.num_bigrams, 0);
  for (const L2Result& other : results) {
    EXPECT_EQ(other.num_bigrams, reference.num_bigrams);
    EXPECT_EQ(other.session_stats.num_sessions,
              reference.session_stats.num_sessions);
    ASSERT_EQ(other.scored.size(), reference.scored.size());
    for (size_t i = 0; i < reference.scored.size(); ++i) {
      EXPECT_EQ(other.scored[i].a, reference.scored[i].a);
      EXPECT_EQ(other.scored[i].b, reference.scored[i].b);
      EXPECT_EQ(other.scored[i].table.o11, reference.scored[i].table.o11);
      EXPECT_EQ(other.scored[i].table.o12, reference.scored[i].table.o12);
      EXPECT_EQ(other.scored[i].table.o21, reference.scored[i].table.o21);
      EXPECT_EQ(other.scored[i].table.o22, reference.scored[i].table.o22);
      EXPECT_EQ(other.scored[i].score, reference.scored[i].score);
      EXPECT_EQ(other.scored[i].p_value, reference.scored[i].p_value);
      EXPECT_EQ(other.scored[i].dependent, reference.scored[i].dependent);
    }
  }
}

TEST(ParallelDeterminismTest, L3IdenticalAcrossThreadCounts) {
  const LogStore store = SimulatedCorpus();
  const ServiceVocabulary vocabulary = Vocab();
  std::vector<L3Result> results;
  for (int num_threads : kThreadCounts) {
    L3Config config;
    config.num_threads = num_threads;
    L3TextMiner miner(vocabulary, config);
    auto mined = miner.Mine(store, 0, kHorizon);
    ASSERT_TRUE(mined.ok()) << mined.status();
    results.push_back(std::move(mined).value());
  }
  const L3Result& reference = results.front();
  EXPECT_GT(reference.logs_scanned, 0);
  EXPECT_GT(reference.logs_stopped, 0);
  ASSERT_FALSE(reference.citations.empty());
  for (const L3Result& other : results) {
    EXPECT_EQ(other.logs_scanned, reference.logs_scanned);
    EXPECT_EQ(other.logs_stopped, reference.logs_stopped);
    ASSERT_EQ(other.citations.size(), reference.citations.size());
    for (size_t i = 0; i < reference.citations.size(); ++i) {
      EXPECT_EQ(other.citations[i].app, reference.citations[i].app);
      EXPECT_EQ(other.citations[i].entry, reference.citations[i].entry);
      EXPECT_EQ(other.citations[i].count, reference.citations[i].count);
      EXPECT_EQ(other.citations[i].dependent,
                reference.citations[i].dependent);
    }
  }
}

TEST(ParallelDeterminismTest, AgrawalIdenticalAcrossThreadCounts) {
  const LogStore store = SimulatedCorpus();
  AgrawalConfig config;
  config.minlogs = 20;
  config.sample_size = 100;
  const auto results =
      MineAtEachThreadCount<AgrawalConfig, AgrawalDelayMiner, AgrawalResult>(
          store, config);
  const AgrawalResult& reference = results.front();
  ASSERT_FALSE(reference.pairs.empty());
  for (const AgrawalResult& other : results) {
    ASSERT_EQ(other.pairs.size(), reference.pairs.size());
    for (size_t i = 0; i < reference.pairs.size(); ++i) {
      EXPECT_EQ(other.pairs[i].a, reference.pairs[i].a);
      EXPECT_EQ(other.pairs[i].b, reference.pairs[i].b);
      EXPECT_EQ(other.pairs[i].slots_supported,
                reference.pairs[i].slots_supported);
      EXPECT_EQ(other.pairs[i].slots_positive,
                reference.pairs[i].slots_positive);
      EXPECT_EQ(other.pairs[i].dependent, reference.pairs[i].dependent);
    }
  }
}

TEST(ParallelDeterminismTest, FullPipelineIdenticalAcrossThreadCounts) {
  const LogStore store = SimulatedCorpus();
  const ServiceVocabulary vocabulary = Vocab();
  std::vector<PipelineResult> results;
  for (int num_threads : kThreadCounts) {
    PipelineConfig config;
    config.run_agrawal = true;
    config.concurrent_miners = num_threads != 1;
    config.l1.minlogs = 20;
    config.l1.test.sample_size = 100;
    config.l1.num_threads = num_threads;
    config.l2.num_threads = num_threads;
    config.l3.num_threads = num_threads;
    config.agrawal.minlogs = 20;
    config.agrawal.sample_size = 100;
    config.agrawal.num_threads = num_threads;
    MiningPipeline pipeline(vocabulary, config);
    auto run = pipeline.Run(store, 0, kHorizon);
    ASSERT_TRUE(run.ok()) << run.status();
    results.push_back(std::move(run).value());
  }
  const PipelineResult& reference = results.front();
  ASSERT_TRUE(reference.l1 && reference.l2 && reference.l3 &&
              reference.agrawal);
  for (const PipelineResult& other : results) {
    ASSERT_TRUE(other.l1 && other.l2 && other.l3 && other.agrawal);
    // Dependency models are the user-visible contract; per-pair
    // statistics are covered by the per-miner tests above.
    EXPECT_EQ(other.l1->Dependencies(store).pairs(),
              reference.l1->Dependencies(store).pairs());
    EXPECT_EQ(other.l2->Dependencies(store).pairs(),
              reference.l2->Dependencies(store).pairs());
    EXPECT_EQ(other.l3->Dependencies(store, vocabulary).pairs(),
              reference.l3->Dependencies(store, vocabulary).pairs());
    EXPECT_EQ(other.agrawal->Dependencies(store).pairs(),
              reference.agrawal->Dependencies(store).pairs());
    // And the raw counts must line up exactly as well.
    ASSERT_EQ(other.l1->pairs.size(), reference.l1->pairs.size());
    EXPECT_EQ(other.l2->num_bigrams, reference.l2->num_bigrams);
    EXPECT_EQ(other.l3->logs_scanned, reference.l3->logs_scanned);
    ASSERT_EQ(other.agrawal->pairs.size(), reference.agrawal->pairs.size());
  }
}

}  // namespace
}  // namespace logmine::core
