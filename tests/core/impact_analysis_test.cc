#include "core/impact_analysis.h"

#include <gtest/gtest.h>

namespace logmine::core {
namespace {

// Chain:  Web -> Api -> Db,  Batch -> Db,  Api -> Cache.
DependencyGraph ChainGraph() {
  DependencyGraph graph;
  graph.AddDependency("Web", "Api");
  graph.AddDependency("Api", "Db");
  graph.AddDependency("Batch", "Db");
  graph.AddDependency("Api", "Cache");
  return graph;
}

TEST(DependencyGraphTest, NodesAndEdges) {
  const DependencyGraph graph = ChainGraph();
  EXPECT_EQ(graph.num_nodes(), 5u);
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_EQ(graph.DependenciesOf("Api"),
            (std::set<std::string>{"Db", "Cache"}));
  EXPECT_EQ(graph.DependentsOf("Db"),
            (std::set<std::string>{"Api", "Batch"}));
  EXPECT_TRUE(graph.DependenciesOf("Db").empty());
  EXPECT_TRUE(graph.DependenciesOf("Unknown").empty());
}

TEST(DependencyGraphTest, SelfEdgesDropped) {
  DependencyGraph graph;
  graph.AddDependency("A", "A");
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(DependencyGraphTest, ImpactSetIsTransitive) {
  const DependencyGraph graph = ChainGraph();
  // If Db fails: Api and Batch break directly, Web transitively.
  EXPECT_EQ(graph.ImpactSet("Db"),
            (std::set<std::string>{"Api", "Batch", "Web"}));
  EXPECT_EQ(graph.ImpactSet("Cache"), (std::set<std::string>{"Api", "Web"}));
  EXPECT_TRUE(graph.ImpactSet("Web").empty());
}

TEST(DependencyGraphTest, DependencyClosure) {
  const DependencyGraph graph = ChainGraph();
  EXPECT_EQ(graph.DependencyClosure("Web"),
            (std::set<std::string>{"Api", "Db", "Cache"}));
  EXPECT_TRUE(graph.DependencyClosure("Db").empty());
}

TEST(DependencyGraphTest, HandlesCycles) {
  DependencyGraph graph;
  graph.AddDependency("A", "B");
  graph.AddDependency("B", "A");  // mutual dependency
  EXPECT_EQ(graph.ImpactSet("A"), (std::set<std::string>{"B"}));
  EXPECT_EQ(graph.DependencyClosure("A"), (std::set<std::string>{"B"}));
}

TEST(DependencyGraphTest, FromAppServiceModel) {
  DependencyModel model;
  model.Insert({"Web", "APISRV"});
  model.Insert({"Web", "UNKNOWN"});  // no owner -> dropped
  model.Insert({"Api", "APISRV"});   // self via owner -> dropped
  const std::map<std::string, std::string> owner = {{"APISRV", "Api"}};
  const DependencyGraph graph =
      DependencyGraph::FromAppServiceModel(model, owner);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.DependenciesOf("Web"), (std::set<std::string>{"Api"}));
}

TEST(DependencyGraphTest, ImpliedAvailability) {
  const DependencyGraph graph = ChainGraph();
  const std::map<std::string, double> availability = {
      {"Web", 0.99}, {"Api", 0.99}, {"Db", 0.9}, {"Cache", 1.0}};
  // Web needs itself, Api, Db, Cache: 0.99 * 0.99 * 0.9 * 1.0.
  EXPECT_NEAR(graph.ImpliedAvailability("Web", availability, 1.0),
              0.99 * 0.99 * 0.9, 1e-12);
  // Db stands alone.
  EXPECT_NEAR(graph.ImpliedAvailability("Db", availability, 1.0), 0.9,
              1e-12);
  // Missing entries use the default.
  EXPECT_NEAR(graph.ImpliedAvailability("Batch", {}, 0.95), 0.95 * 0.95,
              1e-12);
}

TEST(RankRootCausesTest, DirectCauseWinsOverBystanders) {
  const DependencyGraph graph = ChainGraph();
  // Db outage: Api and Batch symptomatic (direct callers).
  const auto ranking = RankRootCauses(graph, {"Api", "Batch"});
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0].component, "Db");
  EXPECT_DOUBLE_EQ(ranking[0].coverage, 1.0);
  EXPECT_DOUBLE_EQ(ranking[0].direct_coverage, 1.0);
}

TEST(RankRootCausesTest, SymptomaticLeafIsItsOwnBestExplanation) {
  const DependencyGraph graph = ChainGraph();
  const auto ranking = RankRootCauses(graph, {"Web"});
  ASSERT_FALSE(ranking.empty());
  // Web itself covers the symptom with zero blast radius; its deeper
  // dependencies also cover it but with larger radius.
  EXPECT_EQ(ranking[0].component, "Web");
  EXPECT_TRUE(ranking[0].symptomatic);
}

TEST(RankRootCausesTest, PartialCoverageRankedBelowFull) {
  const DependencyGraph graph = ChainGraph();
  // Api + Batch symptomatic: Cache only explains Api (via direct dep).
  const auto ranking = RankRootCauses(graph, {"Api", "Batch"});
  double cache_coverage = -1;
  for (const RootCauseCandidate& candidate : ranking) {
    if (candidate.component == "Cache") cache_coverage = candidate.coverage;
  }
  EXPECT_DOUBLE_EQ(cache_coverage, 0.5);
  EXPECT_EQ(ranking[0].component, "Db");
}

TEST(RankRootCausesTest, EmptySymptomsYieldNothing) {
  EXPECT_TRUE(RankRootCauses(ChainGraph(), {}).empty());
}

TEST(RankRootCausesTest, UnexplainableSymptomsExcluded) {
  DependencyGraph graph;
  graph.AddDependency("A", "B");
  const auto ranking = RankRootCauses(graph, {"Zed"});
  // "Zed" is not in the graph: no candidate covers it.
  EXPECT_TRUE(ranking.empty());
}

}  // namespace
}  // namespace logmine::core
