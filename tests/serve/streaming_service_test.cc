#include "serve/streaming_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simulation/service_faults.h"
#include "util/snapshot.h"

namespace logmine::serve {
namespace {

/// Per-test state directory; ctest runs each test case as its own
/// process, so the name keys isolation and remove_all clears leftovers.
std::string FreshStatePath(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("logmine_serve_" + name);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir);
  return (dir / "state.snapshot").string();
}

LogRecord Rec(TimeMs ts, std::string source, std::string user,
              std::string message) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.host = "h";
  record.user = std::move(user);
  record.message = std::move(message);
  return record;
}

EpochBatch Batch(int epoch, std::vector<LogRecord> records = {}) {
  EpochBatch batch;
  batch.begin = epoch * 1000;
  batch.end = batch.begin + 1000;
  batch.records = std::move(records);
  return batch;
}

/// A 1-second epoch grid and a manual clock the test advances by hand.
ServiceConfig TinyConfig(std::shared_ptr<int64_t> clock) {
  ServiceConfig config;
  config.window.epoch_length = 1000;
  config.window.window_epochs = 4;
  config.window.l1.minlogs = 1;
  config.now_ms = [clock] { return *clock; };
  return config;
}

TEST(StreamingServiceTest, CreateValidatesTheConfig) {
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig bad = TinyConfig(clock);
  bad.max_queue_batches = 0;
  EXPECT_FALSE(StreamingMiningService::Create(bad).ok());
  bad = TinyConfig(clock);
  bad.publish_every_epochs = 0;
  EXPECT_FALSE(StreamingMiningService::Create(bad).ok());
  bad = TinyConfig(clock);
  bad.degraded_after_ms = 10'000;
  bad.stale_after_ms = 5'000;  // degradation ladder out of order
  EXPECT_FALSE(StreamingMiningService::Create(bad).ok());
  bad = TinyConfig(clock);
  bad.window.epoch_length = 0;  // window validation propagates
  EXPECT_FALSE(StreamingMiningService::Create(bad).ok());

  auto ok = StreamingMiningService::Create(TinyConfig(clock));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok.value()->CurrentModel(), nullptr);
  EXPECT_FALSE(ok.value()->recovered());
}

TEST(StreamingServiceTest, OverloadShedsTheOldestBatchAndKeepsServing) {
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.max_queue_batches = 2;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  EXPECT_EQ(service.SubmitBatch(Batch(0)).outcome, SubmitOutcome::kAccepted);
  EXPECT_EQ(service.SubmitBatch(Batch(1)).outcome, SubmitOutcome::kAccepted);
  const SubmitResult third = service.SubmitBatch(Batch(2));
  EXPECT_EQ(third.outcome, SubmitOutcome::kAcceptedShedOldest);
  EXPECT_EQ(third.queue_depth, 2u);
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_EQ(service.stats().batches_shed, 1);
  EXPECT_EQ(service.Health().shed_total, 1);

  auto drained = service.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(drained.value(), 2);  // epoch 0 was shed, 1 and 2 processed
  auto model = service.CurrentModel();
  ASSERT_NE(model, nullptr);
  // The freshest data won: the window ends at epoch 2's end.
  EXPECT_EQ(model->models.window_end, 3000);
  EXPECT_EQ(service.stats().epochs_ingested, 2);
}

TEST(StreamingServiceTest, ClockRegressionIsRejectedWithoutSideEffects) {
  auto clock = std::make_shared<int64_t>(0);
  auto created = StreamingMiningService::Create(TinyConfig(clock));
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  EXPECT_EQ(service.SubmitBatch(Batch(1)).outcome, SubmitOutcome::kAccepted);
  // An hour at or before the accepted watermark replays the past.
  EXPECT_EQ(service.SubmitBatch(Batch(1)).outcome,
            SubmitOutcome::kRejectedClockRegression);
  EXPECT_EQ(service.SubmitBatch(Batch(0)).outcome,
            SubmitOutcome::kRejectedClockRegression);
  EXPECT_EQ(service.stats().clock_regressions, 2);
  EXPECT_EQ(service.queue_depth(), 1u);

  auto drained = service.Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value(), 1);
  EXPECT_EQ(service.CurrentModel()->models.window_end, 2000);
}

TEST(StreamingServiceTest, InjectedClockRegressionRejectsTheSubmission) {
  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/1, sim::ServiceFault::kClockRegression});
  const sim::ServiceFaultInjector injector(plan);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.faults = &injector;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  EXPECT_EQ(service.SubmitBatch(Batch(0)).outcome, SubmitOutcome::kAccepted);
  // Submission index 1 is armed: rejected although its hour is fresh.
  EXPECT_EQ(service.SubmitBatch(Batch(1)).outcome,
            SubmitOutcome::kRejectedClockRegression);
  EXPECT_EQ(service.SubmitBatch(Batch(2)).outcome, SubmitOutcome::kAccepted);
  EXPECT_EQ(service.stats().clock_regressions, 1);
}

TEST(StreamingServiceTest, PublishCadenceFollowsTheConfiguredStride) {
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.publish_every_epochs = 2;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  for (int epoch = 0; epoch < 4; ++epoch) {
    service.SubmitBatch(Batch(epoch));
  }
  auto step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kIngested);
  EXPECT_EQ(service.CurrentModel(), nullptr);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPublished);
  auto first = service.CurrentModel();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->number, 1);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kIngested);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPublished);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kIdle);

  auto model = service.CurrentModel();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->number, 2);
  EXPECT_EQ(model->models.window_end, 4000);
  EXPECT_EQ(model->epochs_ingested, 4);
  EXPECT_EQ(model->config_fingerprint, service.config_fingerprint());
  // The published generation proves its own integrity: the stored CRC
  // re-derives from the canonical bytes (the torn-model check).
  EXPECT_EQ(model->self_crc, Crc32(SerializeGeneration(*model)));
  EXPECT_EQ(service.stats().generations_published, 2);
}

TEST(StreamingServiceTest, HealthWalksTheDegradationLadder) {
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.degraded_after_ms = 5'000;
  config.stale_after_ms = 30'000;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  HealthReport report = service.Health();
  EXPECT_EQ(report.state, HealthState::kStarting);
  EXPECT_EQ(report.ms_since_publish, -1);
  EXPECT_EQ(report.generation, 0);

  *clock = 100;
  service.SubmitBatch(Batch(0));
  ASSERT_TRUE(service.Drain().ok());
  report = service.Health();
  EXPECT_EQ(report.state, HealthState::kHealthy);
  EXPECT_EQ(report.generation, 1);
  EXPECT_EQ(report.ms_since_publish, 0);

  *clock = 6'000;
  EXPECT_EQ(service.Health().state, HealthState::kDegraded);
  *clock = 40'000;
  report = service.Health();
  EXPECT_EQ(report.state, HealthState::kStaleServing);
  EXPECT_EQ(report.ms_since_publish, 39'900);

  // A publish heals the service: straight back to healthy.
  service.SubmitBatch(Batch(1));
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_EQ(service.Health().state, HealthState::kHealthy);
  EXPECT_GE(service.stats().health_transitions, 4);

  EXPECT_EQ(HealthStateName(HealthState::kStaleServing), "stale-serving");
}

/// One hour of appA logs citing svc1, which appB provides: the L3 layer
/// plus the owner map yields the directed edge appA -> appB.
std::vector<LogRecord> CitingRecords(int epoch) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Rec(epoch * 1000 + i * 100, "appA", "u",
                          "call to svc1 timed out"));
  }
  return records;
}

ServiceConfig QueryConfig(std::shared_ptr<int64_t> clock) {
  ServiceConfig config = TinyConfig(clock);
  config.window.vocabulary.entries.push_back({"svc1", "http://svc1/api"});
  config.window.l3.use_stop_patterns = false;
  config.entry_owner["svc1"] = "appB";
  return config;
}

TEST(StreamingServiceTest, QueriesWalkThePublishedGraph) {
  auto clock = std::make_shared<int64_t>(0);
  auto created = StreamingMiningService::Create(QueryConfig(clock));
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  // No generation yet: queries fail precondition rather than fabricate.
  EXPECT_EQ(service.WhatDependsOn("appB").status().code(),
            StatusCode::kFailedPrecondition);

  service.SubmitBatch(Batch(0, CitingRecords(0)));
  ASSERT_TRUE(service.Drain().ok());

  auto depends = service.WhatDependsOn("appB");
  ASSERT_TRUE(depends.ok()) << depends.status();
  EXPECT_EQ(depends.value().generation, 1);
  EXPECT_EQ(depends.value().health, HealthState::kHealthy);
  EXPECT_EQ(depends.value().components, std::set<std::string>{"appA"});

  auto impact = service.ImpactOf("appB");
  ASSERT_TRUE(impact.ok()) << impact.status();
  EXPECT_EQ(impact.value().components, std::set<std::string>{"appA"});

  // An unknown component is an empty answer, not an error.
  auto unknown = service.WhatDependsOn("never-logged");
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_TRUE(unknown.value().components.empty());
  // Four queries hit the service, counting the refused early one.
  EXPECT_EQ(service.stats().queries_served, 4);
}

TEST(StreamingServiceTest, QueryDeadlineTripsOnASlowConsumer) {
  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/0, sim::ServiceFault::kSlowConsumer,
                         /*times=*/1, /*slow_ms=*/200});
  const sim::ServiceFaultInjector injector(plan);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = QueryConfig(clock);
  config.faults = &injector;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();
  service.SubmitBatch(Batch(0, CitingRecords(0)));
  ASSERT_TRUE(service.Drain().ok());

  // Query 0 hits the armed slow consumer; its 5 ms deadline fires long
  // before the 200 ms cooperative wait completes.
  QueryOptions options;
  options.deadline_ms = 5;
  auto slow = service.WhatDependsOn("appB", options);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kDeadlineExceeded)
      << slow.status();
  EXPECT_EQ(service.stats().query_deadline_exceeded, 1);

  // Query 1 is unfaulted: same question, instant answer.
  auto fast = service.WhatDependsOn("appB", options);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast.value().components, std::set<std::string>{"appA"});

  // A pre-cancelled caller is refused before any work happens.
  CancelToken token;
  token.Cancel();
  QueryOptions cancelled;
  cancelled.cancel = &token;
  EXPECT_EQ(service.ImpactOf("appB", cancelled).status().code(),
            StatusCode::kCancelled);
}

TEST(StreamingServiceTest, PoisonBatchIsQuarantinedAndServingContinues) {
  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/1, sim::ServiceFault::kPoisonBatch});
  const sim::ServiceFaultInjector injector(plan);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.faults = &injector;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  service.SubmitBatch(Batch(0));
  service.SubmitBatch(Batch(1));  // armed: quarantined at ingest
  service.SubmitBatch(Batch(2));
  auto step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPublished);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPoisoned);
  // The previous generation survived the poison untouched.
  ASSERT_NE(service.CurrentModel(), nullptr);
  EXPECT_EQ(service.CurrentModel()->number, 1);
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPublished);
  EXPECT_EQ(service.stats().batches_poisoned, 1);
  EXPECT_EQ(service.CurrentModel()->models.window_end, 3000);

  // A genuinely malformed batch — a record outside its claimed hour —
  // takes the same quarantine path without any injector.
  EpochBatch malformed = Batch(3);
  malformed.records.push_back(Rec(9'999, "A", "u", "x"));
  service.SubmitBatch(std::move(malformed));
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPoisoned);
  EXPECT_EQ(service.stats().batches_poisoned, 2);
  EXPECT_EQ(service.CurrentModel()->models.window_end, 3000);
}

TEST(StreamingServiceTest, StalledEpochRetriesUntilTheFaultClears) {
  sim::ServiceFaultPlan plan;
  plan.faults.push_back(
      {/*index=*/0, sim::ServiceFault::kStallEpoch, /*times=*/2});
  const sim::ServiceFaultInjector injector(plan);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.faults = &injector;
  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  service.SubmitBatch(Batch(0));
  auto step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kStalled);
  EXPECT_EQ(service.queue_depth(), 1u);  // the batch stays queued
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kStalled);
  // Third attempt: the stall budget is spent, ingest goes through.
  step = service.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value(), StepOutcome::kPublished);
  EXPECT_EQ(service.stats().epochs_stalled, 2);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(StreamingServiceTest, CrashMidPublishRecoversAndResumesNumbering) {
  const std::string state_path = FreshStatePath("crash_recover");
  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/2, sim::ServiceFault::kCrashMidPublish});
  const sim::ServiceFaultInjector injector(plan);
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.state_path = state_path;
  config.faults = &injector;

  auto created = StreamingMiningService::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  {
    StreamingMiningService& service = *created.value();
    for (int epoch = 0; epoch < 4; ++epoch) {
      service.SubmitBatch(Batch(epoch));
    }
    auto drained = service.Drain();
    ASSERT_FALSE(drained.ok());  // the injected death
    EXPECT_EQ(drained.status().code(), StatusCode::kInternal);
    EXPECT_NE(drained.status().message().find("crash-mid-publish"),
              std::string::npos);
    // The in-memory swap never happened; readers still hold gen 2.
    EXPECT_EQ(service.CurrentModel()->number, 2);
    // A dead service refuses further work until rebuilt.
    EXPECT_EQ(service.Step().status().code(),
              StatusCode::kFailedPrecondition);
  }
  created.value().reset();

  // Rebuild from the snapshot: epoch 2 was persisted before the death,
  // so recovery serves generation 3 — the publish the crash tore.
  auto recovered = StreamingMiningService::Create(config);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  StreamingMiningService& service = *recovered.value();
  EXPECT_TRUE(service.recovered());
  ASSERT_NE(service.CurrentModel(), nullptr);
  EXPECT_EQ(service.CurrentModel()->number, 3);
  EXPECT_EQ(service.CurrentModel()->models.window_end, 3000);
  EXPECT_EQ(service.CurrentModel()->self_crc,
            Crc32(SerializeGeneration(*service.CurrentModel())));

  // Blind resubmission of everything is safe: ingested hours bounce off
  // the recovered watermark, only epoch 3 is still new.
  for (int epoch = 0; epoch < 4; ++epoch) {
    const SubmitResult result = service.SubmitBatch(Batch(epoch));
    EXPECT_EQ(result.outcome, epoch < 3
                                  ? SubmitOutcome::kRejectedClockRegression
                                  : SubmitOutcome::kAccepted)
        << epoch;
  }
  auto drained = service.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(drained.value(), 1);
  EXPECT_EQ(service.CurrentModel()->number, 4);  // numbering continued
  EXPECT_EQ(service.CurrentModel()->models.window_end, 4000);
}

TEST(StreamingServiceTest, RecoveryRefusesAForeignConfigFingerprint) {
  const std::string state_path = FreshStatePath("config_mismatch");
  auto clock = std::make_shared<int64_t>(0);
  ServiceConfig config = TinyConfig(clock);
  config.state_path = state_path;
  {
    auto created = StreamingMiningService::Create(config);
    ASSERT_TRUE(created.ok()) << created.status();
    created.value()->SubmitBatch(Batch(0));
    ASSERT_TRUE(created.value()->Drain().ok());
  }
  ServiceConfig drifted = config;
  drifted.window.window_epochs = 8;
  auto refused = StreamingMiningService::Create(drifted);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // The original config still recovers.
  auto recovered = StreamingMiningService::Create(config);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered.value()->recovered());
}

TEST(StreamingServiceTest, WorkerThreadDrainsSubmissionsInTheBackground) {
  auto clock = std::make_shared<int64_t>(0);
  auto created = StreamingMiningService::Create(TinyConfig(clock));
  ASSERT_TRUE(created.ok()) << created.status();
  StreamingMiningService& service = *created.value();

  service.Start();
  service.Start();  // idempotent
  for (int epoch = 0; epoch < 3; ++epoch) {
    service.SubmitBatch(Batch(epoch));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    auto model = service.CurrentModel();
    if (model != nullptr && model->models.window_end == 3000) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  ASSERT_NE(service.CurrentModel(), nullptr);
  EXPECT_EQ(service.CurrentModel()->models.window_end, 3000);
  EXPECT_EQ(service.stats().epochs_ingested, 3);
}

}  // namespace
}  // namespace logmine::serve
