// The sliding-window miner's contract: ingesting a day one epoch at a
// time and aggregating at any point must reproduce a *batch* mine over
// the same window — per-pair evidence, scores, citation counts and the
// derived models — and its serialized state must resume
// byte-identically. Checked across seeds, since both the corpus and the
// L1 test's randomness are seed-dependent.

#include "serve/sliding_window.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "serve/model_publisher.h"
#include "util/snapshot.h"

namespace logmine::serve {
namespace {

eval::Dataset BuildSeededDataset(uint64_t seed) {
  eval::DatasetConfig config;
  config.scenario.seed = seed;
  config.simulation.seed = seed * 31 + 7;
  config.simulation.num_days = 1;
  config.simulation.scale = 0.04;
  auto built = eval::BuildDataset(config);
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built).value();
}

SlidingWindowConfig WindowConfig(const eval::Dataset& dataset) {
  SlidingWindowConfig config;
  config.epoch_length = kMillisPerHour;
  config.window_epochs = 8;
  // Scaled-down corpus: proportionally lower L1 support floor.
  config.l1.minlogs = 6;
  config.vocabulary = dataset.vocabulary;
  return config;
}

/// Deep equality via the canonical byte encoding: two model sets are
/// the same iff they serialize identically inside a generation.
std::string ModelBytes(const WindowModelSet& models) {
  ModelGeneration generation;
  generation.models = models;
  return SerializeGeneration(generation);
}

std::string StateBytes(const SlidingWindowMiner& miner) {
  SnapshotWriter w;
  w.BeginSection("window");
  miner.EncodeState(&w);
  w.EndSection();
  return std::move(w).Finish();
}

/// Asserts MineWindow() equals a fresh batch mine of [window_begin,
/// window_end) with the miner's own (normalized) configs, field by
/// field in the name domain.
void ExpectWindowMatchesBatch(const SlidingWindowMiner& miner,
                              const LogStore& store,
                              const std::string& context) {
  auto mined = miner.MineWindow();
  ASSERT_TRUE(mined.ok()) << context << ": " << mined.status();
  const WindowModelSet& window = mined.value();
  const TimeMs wb = miner.window_begin();
  const TimeMs we = miner.window_end();
  const SlidingWindowConfig& config = miner.config();
  EXPECT_EQ(window.window_begin, wb) << context;
  EXPECT_EQ(window.window_end, we) << context;

  // --- L1 ---
  core::L1ActivityMiner l1_miner(config.l1);
  auto batch_l1 = l1_miner.Mine(store, wb, we);
  ASSERT_TRUE(batch_l1.ok()) << context << ": " << batch_l1.status();
  EXPECT_EQ(window.slots_total, batch_l1.value().slots_total) << context;
  std::map<core::NamePair, const core::L1PairResult*> l1_by_names;
  for (const core::L1PairResult& pair : batch_l1.value().pairs) {
    l1_by_names[core::MakeUnorderedPair(store.source_name(pair.a),
                                        store.source_name(pair.b))] = &pair;
  }
  EXPECT_EQ(window.l1_pairs.size(), l1_by_names.size()) << context;
  for (const WindowPairStat& stat : window.l1_pairs) {
    auto it = l1_by_names.find(stat.names);
    ASSERT_NE(it, l1_by_names.end())
        << context << ": window-only L1 pair " << stat.names.first << " -- "
        << stat.names.second;
    EXPECT_EQ(stat.slots_supported, it->second->slots_supported) << context;
    EXPECT_EQ(stat.slots_positive, it->second->slots_positive) << context;
    EXPECT_DOUBLE_EQ(stat.positive_ratio, it->second->positive_ratio)
        << context;
    EXPECT_EQ(stat.dependent, it->second->dependent)
        << context << ": " << stat.names.first << " -- " << stat.names.second;
  }
  EXPECT_EQ(window.l1.pairs(),
            batch_l1.value().Dependencies(store).pairs())
      << context;

  // --- L2 ---
  core::L2CooccurrenceMiner l2_miner(config.l2);
  auto batch_l2 = l2_miner.Mine(store, wb, we);
  ASSERT_TRUE(batch_l2.ok()) << context << ": " << batch_l2.status();
  EXPECT_EQ(window.num_bigrams, batch_l2.value().num_bigrams) << context;
  EXPECT_EQ(window.session_stats.num_sessions,
            batch_l2.value().session_stats.num_sessions)
      << context;
  EXPECT_EQ(window.session_stats.logs_considered,
            batch_l2.value().session_stats.logs_considered)
      << context;
  EXPECT_EQ(window.session_stats.logs_with_context,
            batch_l2.value().session_stats.logs_with_context)
      << context;
  EXPECT_EQ(window.session_stats.logs_assigned,
            batch_l2.value().session_stats.logs_assigned)
      << context;
  EXPECT_DOUBLE_EQ(window.session_stats.assigned_fraction,
                   batch_l2.value().session_stats.assigned_fraction)
      << context;
  std::map<std::pair<std::string, std::string>, const core::L2PairScore*>
      l2_by_names;
  for (const core::L2PairScore& score : batch_l2.value().scored) {
    l2_by_names[{std::string(store.source_name(score.a)),
                 std::string(store.source_name(score.b))}] = &score;
  }
  EXPECT_EQ(window.l2_scores.size(), l2_by_names.size()) << context;
  for (const WindowL2Score& score : window.l2_scores) {
    auto it = l2_by_names.find({score.a, score.b});
    ASSERT_NE(it, l2_by_names.end())
        << context << ": window-only L2 pair " << score.a << " -> "
        << score.b;
    EXPECT_EQ(score.o11, it->second->table.o11) << context;
    EXPECT_DOUBLE_EQ(score.score, it->second->score) << context;
    EXPECT_DOUBLE_EQ(score.p_value, it->second->p_value) << context;
    EXPECT_EQ(score.dependent, it->second->dependent)
        << context << ": " << score.a << " -> " << score.b;
  }
  EXPECT_EQ(window.l2.pairs(),
            batch_l2.value().Dependencies(store).pairs())
      << context;

  // --- L3 ---
  core::L3TextMiner l3_miner(config.vocabulary, config.l3);
  auto batch_l3 = l3_miner.Mine(store, wb, we);
  ASSERT_TRUE(batch_l3.ok()) << context << ": " << batch_l3.status();
  EXPECT_EQ(window.logs_scanned, batch_l3.value().logs_scanned) << context;
  EXPECT_EQ(window.logs_stopped, batch_l3.value().logs_stopped) << context;
  std::map<std::pair<std::string, std::string>, const core::L3Citation*>
      l3_by_names;
  for (const core::L3Citation& citation : batch_l3.value().citations) {
    l3_by_names[{std::string(store.source_name(citation.app)),
                 config.vocabulary.entries[citation.entry].id}] = &citation;
  }
  EXPECT_EQ(window.citations.size(), l3_by_names.size()) << context;
  for (const WindowCitation& citation : window.citations) {
    auto it = l3_by_names.find({citation.app, citation.entry_id});
    ASSERT_NE(it, l3_by_names.end())
        << context << ": window-only citation " << citation.app << " -> "
        << citation.entry_id;
    EXPECT_EQ(citation.count, it->second->count) << context;
    EXPECT_EQ(citation.dependent, it->second->dependent) << context;
  }
  EXPECT_EQ(window.l3.pairs(),
            batch_l3.value().Dependencies(store, config.vocabulary).pairs())
      << context;

  // --- combined ---
  EXPECT_EQ(window.combined.pairs(), window.l1.Union(window.l2).pairs())
      << context;
}

class SlidingWindowEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlidingWindowEquivalenceTest, StreamingEqualsBatchMining) {
  const eval::Dataset dataset = BuildSeededDataset(GetParam());
  auto created = SlidingWindowMiner::Create(WindowConfig(dataset));
  ASSERT_TRUE(created.ok()) << created.status();
  SlidingWindowMiner miner = std::move(created).value();

  auto batches = SplitIntoEpochBatches(dataset.store, dataset.day_begin(0),
                                       dataset.day_end(0), kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  ASSERT_EQ(batches.value().size(), 24u);

  int epoch = 0;
  for (const EpochBatch& batch : batches.value()) {
    Status ingested = miner.IngestEpoch(batch);
    ASSERT_TRUE(ingested.ok()) << "epoch " << epoch << ": " << ingested;
    ++epoch;
    // Once mid-stream (a full window), once at the day's end (the
    // window has slid 16 epochs past its first position).
    if (epoch == 8 || epoch == 24) {
      ExpectWindowMatchesBatch(
          miner, dataset.store,
          "seed " + std::to_string(GetParam()) + " epoch " +
              std::to_string(epoch));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_EQ(miner.epochs_ingested(), 24);
  EXPECT_EQ(miner.epochs_retained(), 8u);
  EXPECT_EQ(miner.epochs_aged_out(), 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlidingWindowEquivalenceTest,
                         ::testing::Values(7u, 19u, 104729u));

TEST(SlidingWindowTest, StateRoundTripContinuesByteIdentically) {
  const eval::Dataset dataset = BuildSeededDataset(7);
  const SlidingWindowConfig config = WindowConfig(dataset);
  auto created = SlidingWindowMiner::Create(config);
  ASSERT_TRUE(created.ok()) << created.status();
  SlidingWindowMiner original = std::move(created).value();

  auto batches = SplitIntoEpochBatches(dataset.store, dataset.day_begin(0),
                                       dataset.day_end(0), kMillisPerHour);
  ASSERT_TRUE(batches.ok()) << batches.status();
  for (int epoch = 0; epoch < 12; ++epoch) {
    ASSERT_TRUE(original.IngestEpoch(batches.value()[epoch]).ok()) << epoch;
  }

  // Decode a second miner from the first's serialized state.
  const std::string snapshot = StateBytes(original);
  auto reader = SnapshotReader::Parse(snapshot);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto cursor = reader.value().Section("window");
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  auto decoded = SlidingWindowMiner::DecodeState(config, &cursor.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  SlidingWindowMiner resumed = std::move(decoded).value();
  ASSERT_TRUE(cursor.value().ExpectEnd().ok());
  EXPECT_EQ(resumed.epochs_ingested(), original.epochs_ingested());
  EXPECT_EQ(StateBytes(resumed), snapshot);

  // Both continue through the rest of the day; every observable stays
  // byte-identical — the property crash recovery rests on.
  for (int epoch = 12; epoch < 24; ++epoch) {
    ASSERT_TRUE(original.IngestEpoch(batches.value()[epoch]).ok()) << epoch;
    ASSERT_TRUE(resumed.IngestEpoch(batches.value()[epoch]).ok()) << epoch;
  }
  EXPECT_EQ(StateBytes(resumed), StateBytes(original));
  auto mined_original = original.MineWindow();
  auto mined_resumed = resumed.MineWindow();
  ASSERT_TRUE(mined_original.ok()) << mined_original.status();
  ASSERT_TRUE(mined_resumed.ok()) << mined_resumed.status();
  EXPECT_EQ(ModelBytes(mined_resumed.value()),
            ModelBytes(mined_original.value()));

  // A config drift is refused outright.
  SlidingWindowConfig drifted = config;
  drifted.window_epochs = 9;
  auto reparse = SnapshotReader::Parse(snapshot);
  ASSERT_TRUE(reparse.ok());
  auto drifted_cursor = reparse.value().Section("window");
  ASSERT_TRUE(drifted_cursor.ok());
  auto refused =
      SlidingWindowMiner::DecodeState(drifted, &drifted_cursor.value());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

// --- fast synthetic-store cases -------------------------------------

LogRecord Rec(TimeMs ts, std::string source, std::string user,
              std::string message) {
  LogRecord record;
  record.client_ts = ts;
  record.server_ts = ts;
  record.source = std::move(source);
  record.host = "h";
  record.user = std::move(user);
  record.message = std::move(message);
  return record;
}

SlidingWindowConfig TinyConfig() {
  SlidingWindowConfig config;
  config.epoch_length = 1000;
  config.window_epochs = 4;
  config.l1.minlogs = 1;
  return config;
}

TEST(SlidingWindowTest, SplitValidatesAndCoversEmptyEpochs) {
  LogStore store;
  ASSERT_TRUE(store.Append(Rec(100, "A", "u", "x")).ok());
  ASSERT_TRUE(store.Append(Rec(2500, "B", "u", "y")).ok());

  // Index not built yet.
  EXPECT_FALSE(SplitIntoEpochBatches(store, 0, 3000, 1000).ok());
  store.BuildIndex();
  // Range not a whole number of epochs, empty, or bad epoch length.
  EXPECT_FALSE(SplitIntoEpochBatches(store, 0, 2500, 1000).ok());
  EXPECT_FALSE(SplitIntoEpochBatches(store, 1000, 1000, 1000).ok());
  EXPECT_FALSE(SplitIntoEpochBatches(store, 0, 3000, 0).ok());

  auto batches = SplitIntoEpochBatches(store, 0, 3000, 1000);
  ASSERT_TRUE(batches.ok()) << batches.status();
  ASSERT_EQ(batches.value().size(), 3u);
  EXPECT_EQ(batches.value()[0].records.size(), 1u);
  EXPECT_TRUE(batches.value()[1].records.empty());  // an empty hour
  EXPECT_EQ(batches.value()[2].records.size(), 1u);
  EXPECT_EQ(batches.value()[1].begin, 1000);
  EXPECT_EQ(batches.value()[1].end, 2000);
}

TEST(SlidingWindowTest, CreateValidatesAndNormalizesTheConfig) {
  SlidingWindowConfig bad = TinyConfig();
  bad.epoch_length = 0;
  EXPECT_FALSE(SlidingWindowMiner::Create(bad).ok());
  bad = TinyConfig();
  bad.window_epochs = 0;
  EXPECT_FALSE(SlidingWindowMiner::Create(bad).ok());
  bad = TinyConfig();
  bad.l1.adaptive_slots = true;
  EXPECT_FALSE(SlidingWindowMiner::Create(bad).ok());
  bad = TinyConfig();
  bad.l1.th_s = 7;  // an absolute count, not a fraction
  EXPECT_FALSE(SlidingWindowMiner::Create(bad).ok());

  SlidingWindowConfig good = TinyConfig();
  good.l1.slot_length = 999999;  // ignored: one epoch = one slot
  auto miner = SlidingWindowMiner::Create(good);
  ASSERT_TRUE(miner.ok()) << miner.status();
  EXPECT_EQ(miner.value().config().l1.slot_length, 1000);
  EXPECT_NE(miner.value().config().l1.salt_anchor,
            core::L1Config::kNoSaltAnchor);
}

TEST(SlidingWindowTest, IngestRejectsPoisonBatchesAndKeepsState) {
  auto created = SlidingWindowMiner::Create(TinyConfig());
  ASSERT_TRUE(created.ok());
  SlidingWindowMiner miner = std::move(created).value();
  EXPECT_EQ(miner.MineWindow().status().code(),
            StatusCode::kFailedPrecondition);

  EpochBatch good;
  good.begin = 1000;
  good.end = 2000;
  good.records.push_back(Rec(1500, "A", "u", "x"));
  ASSERT_TRUE(miner.IngestEpoch(good).ok());
  EXPECT_EQ(miner.window_begin(), -2000);  // 4 epochs ending at 2000
  EXPECT_EQ(miner.window_end(), 2000);

  // Wrong span.
  EpochBatch bad = good;
  bad.begin = 2000;
  bad.end = 3500;
  EXPECT_FALSE(miner.IngestEpoch(bad).ok());
  // Off the epoch grid.
  bad = good;
  bad.begin = 2500;
  bad.end = 3500;
  EXPECT_FALSE(miner.IngestEpoch(bad).ok());
  // Before the newest ingested epoch (out of order / replay).
  bad = good;
  EXPECT_FALSE(miner.IngestEpoch(bad).ok());
  // Record outside the claimed bounds.
  bad.begin = 2000;
  bad.end = 3000;
  bad.records = {Rec(4500, "A", "u", "x")};
  EXPECT_FALSE(miner.IngestEpoch(bad).ok());

  // None of the rejections touched the window.
  EXPECT_EQ(miner.epochs_ingested(), 1);
  EXPECT_EQ(miner.epochs_retained(), 1u);
  EXPECT_EQ(miner.window_end(), 2000);

  // Epochs may skip hours (an outage): only ordering is enforced.
  EpochBatch later;
  later.begin = 5000;
  later.end = 6000;
  ASSERT_TRUE(miner.IngestEpoch(later).ok());
  EXPECT_EQ(miner.window_end(), 6000);
  // The epoch at 1000 slid out of the 4-epoch window [2000, 6000).
  EXPECT_EQ(miner.epochs_aged_out(), 1);
}

TEST(SlidingWindowTest, WindowAggregatesOnlyRetainedEpochs) {
  SlidingWindowConfig config = TinyConfig();
  config.vocabulary.entries.push_back({"svc1", "http://svc1"});
  config.l1.th_s = 0.25;
  auto created = SlidingWindowMiner::Create(config);
  ASSERT_TRUE(created.ok());
  SlidingWindowMiner miner = std::move(created).value();

  // 6 epochs; epochs 0 and 1 cite svc1, later ones do not.
  for (int e = 0; e < 6; ++e) {
    EpochBatch batch;
    batch.begin = e * 1000;
    batch.end = batch.begin + 1000;
    const std::string message =
        e < 2 ? "call to svc1 failed" : "heartbeat ok";
    for (int i = 0; i < 4; ++i) {
      batch.records.push_back(
          Rec(batch.begin + i * 200, i % 2 == 0 ? "A" : "B",
              "u" + std::to_string(i % 2), message));
    }
    ASSERT_TRUE(miner.IngestEpoch(batch).ok()) << e;
  }
  EXPECT_EQ(miner.epochs_retained(), 4u);
  EXPECT_EQ(miner.epochs_aged_out(), 2);

  auto window = miner.MineWindow();
  ASSERT_TRUE(window.ok()) << window.status();
  // The citing epochs aged out: no svc1 citation survives the slide.
  EXPECT_TRUE(window.value().citations.empty());
  EXPECT_TRUE(window.value().l3.empty());
  EXPECT_EQ(window.value().window_begin, 2000);
  EXPECT_EQ(window.value().window_end, 6000);
}

}  // namespace
}  // namespace logmine::serve
