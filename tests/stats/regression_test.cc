#include "stats/regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::stats {
namespace {

TEST(FitLinearTest, RecoversExactLine) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  auto fit = FitLinear(xs, ys, 0.95);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.value().intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.value().r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.value().slope_stderr, 0.0, 1e-9);
}

TEST(FitLinearTest, KnownNoisyFit) {
  // Hand-checkable data: x = 1..5, y = {2, 4, 5, 4, 5}.
  // sxx = 10, sxy = 6 -> slope 0.6, intercept 2.2; residuals
  // {-0.8, 0.6, 1.0, -0.6, -0.2} -> ss_res = 2.4.
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 5, 4, 5};
  auto fit = FitLinear(xs, ys, 0.95);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().slope, 0.6, 1e-12);
  EXPECT_NEAR(fit.value().intercept, 2.2, 1e-12);
  const double sigma2 = 2.4 / 3.0;
  EXPECT_NEAR(fit.value().slope_stderr, std::sqrt(sigma2 / 10.0), 1e-12);
  // t_{0.975, 3} = 3.182446.
  const double half_width = 3.1824463052842624 * std::sqrt(sigma2 / 10.0);
  EXPECT_NEAR(fit.value().slope_ci_lo, 0.6 - half_width, 1e-6);
  EXPECT_NEAR(fit.value().slope_ci_hi, 0.6 + half_width, 1e-6);
}

TEST(FitLinearTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLinear({1, 2}, {1, 2}, 0.95).ok());        // n < 3
  EXPECT_FALSE(FitLinear({1, 1, 1}, {1, 2, 3}, 0.95).ok());  // constant x
  EXPECT_FALSE(FitLinear({1, 2, 3}, {1, 2}, 0.95).ok());     // size mismatch
  EXPECT_FALSE(FitLinear({1, 2, 3}, {1, 2, 3}, 1.5).ok());   // bad level
}

TEST(FitLinearTest, CiClassificationHelpers) {
  LinearFit fit;
  fit.slope_ci_lo = -0.3;
  fit.slope_ci_hi = -0.1;
  EXPECT_TRUE(fit.SlopeCiStrictlyNegative());
  EXPECT_FALSE(fit.SlopeCiContainsZero());
  fit.slope_ci_hi = 0.1;
  EXPECT_FALSE(fit.SlopeCiStrictlyNegative());
  EXPECT_TRUE(fit.SlopeCiContainsZero());
}

TEST(FitLinearTest, CoverageOfSlopeCi) {
  // Property: the 95% CI for the slope covers the true slope ~95% of the
  // time under Gaussian noise.
  Rng rng(555);
  const double true_slope = -0.25;
  const int trials = 600;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
      const double x = rng.Uniform(0, 1);
      xs.push_back(x);
      ys.push_back(0.6 + true_slope * x + rng.Normal(0, 0.1));
    }
    auto fit = FitLinear(xs, ys, 0.95);
    ASSERT_TRUE(fit.ok());
    if (fit.value().slope_ci_lo <= true_slope &&
        true_slope <= fit.value().slope_ci_hi) {
      ++covered;
    }
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.03);
}

TEST(ResidualsTest, SumToZeroForOlsFit) {
  Rng rng(77);
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(rng.Uniform(0, 10));
    ys.push_back(1 + 2 * xs.back() + rng.Normal(0, 1));
  }
  auto fit = FitLinear(xs, ys, 0.95);
  ASSERT_TRUE(fit.ok());
  const std::vector<double> res = Residuals(fit.value(), xs, ys);
  double sum = 0;
  for (double r : res) sum += r;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(QqCorrelationTest, NormalResidualsNearOne) {
  Rng rng(31);
  std::vector<double> res;
  for (int i = 0; i < 2000; ++i) res.push_back(rng.Normal(0, 1));
  EXPECT_GT(QqNormalCorrelation(res), 0.995);
}

TEST(QqCorrelationTest, HeavyTailedResidualsLower) {
  Rng rng(37);
  std::vector<double> res;
  for (int i = 0; i < 2000; ++i) {
    // Cauchy-like via ratio of normals.
    const double denominator = rng.Normal(0, 1);
    res.push_back(rng.Normal(0, 1) /
                  (std::fabs(denominator) < 0.05 ? 0.05 : denominator));
  }
  EXPECT_LT(QqNormalCorrelation(res), 0.9);
}

TEST(QqCorrelationTest, TinySampleReturnsZero) {
  EXPECT_EQ(QqNormalCorrelation({1.0, 2.0}), 0.0);
}

}  // namespace
}  // namespace logmine::stats
