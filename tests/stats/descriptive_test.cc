#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::stats {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VarianceTest, UnbiasedDenominator) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum sq dev 32, var = 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({3}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_NEAR(Stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7), 1e-12);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7);
}

TEST(QuantileTest, Type7Interpolation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);  // R type-7 convention
}

TEST(BoxplotTest, FiveNumberSummary) {
  const BoxplotStats box = Boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(box.min, 1);
  EXPECT_DOUBLE_EQ(box.max, 9);
  EXPECT_DOUBLE_EQ(box.median, 5);
  EXPECT_DOUBLE_EQ(box.q1, 3);
  EXPECT_DOUBLE_EQ(box.q3, 7);
  EXPECT_EQ(box.num_outliers, 0);
  EXPECT_DOUBLE_EQ(box.whisker_lo, 1);
  EXPECT_DOUBLE_EQ(box.whisker_hi, 9);
}

TEST(BoxplotTest, OutliersBeyondFences) {
  // IQR fences: q1 = 2.5, q3 = 4.5 -> lo fence -0.5, hi fence 7.5.
  const BoxplotStats box = Boxplot({1, 2, 3, 4, 5, 100});
  EXPECT_EQ(box.num_outliers, 1);
  EXPECT_DOUBLE_EQ(box.whisker_hi, 5);
  EXPECT_DOUBLE_EQ(box.max, 100);
}

TEST(SkewnessTest, SymmetricIsZeroRightTailPositive) {
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-12);
  EXPECT_GT(Skewness({1, 1, 1, 1, 10}), 1.0);
  EXPECT_LT(Skewness({-10, 1, 1, 1, 1}), -1.0);
}

TEST(KurtosisTest, NormalSampleNearZero) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Normal(0, 1));
  EXPECT_NEAR(ExcessKurtosis(xs), 0.0, 0.15);
  // Uniform has excess kurtosis -1.2.
  std::vector<double> us;
  for (int i = 0; i < 50000; ++i) us.push_back(rng.Uniform());
  EXPECT_NEAR(ExcessKurtosis(us), -1.2, 0.1);
}

TEST(PearsonCorrelationTest, PerfectAndInverse) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonCorrelationTest, IndependentNearZero) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.Uniform());
    ys.push_back(rng.Uniform());
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.03);
}

}  // namespace
}  // namespace logmine::stats
