#include "stats/point_process.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::stats {
namespace {

TEST(NearestDistanceTest, InteriorAndBoundary) {
  const std::vector<int64_t> ref = {10, 20, 40};
  EXPECT_EQ(NearestDistance(10, ref), 0);
  EXPECT_EQ(NearestDistance(14, ref), 4);
  EXPECT_EQ(NearestDistance(16, ref), 4);
  EXPECT_EQ(NearestDistance(15, ref), 5);   // equidistant
  EXPECT_EQ(NearestDistance(29, ref), 9);
  EXPECT_EQ(NearestDistance(31, ref), 9);
  EXPECT_EQ(NearestDistance(0, ref), 10);   // before first
  EXPECT_EQ(NearestDistance(100, ref), 60); // after last
}

TEST(NearestDistanceTest, SingleElement) {
  const std::vector<int64_t> ref = {5};
  EXPECT_EQ(NearestDistance(5, ref), 0);
  EXPECT_EQ(NearestDistance(-3, ref), 8);
  EXPECT_EQ(NearestDistance(9, ref), 4);
}

TEST(DistancesToNearestTest, PerPoint) {
  const std::vector<int64_t> ref = {0, 100};
  const std::vector<double> d =
      DistancesToNearest(std::vector<int64_t>{0, 10, 60, 100}, ref);
  EXPECT_EQ(d, (std::vector<double>{0, 10, 40, 0}));
}

TEST(UniformPointsTest, BoundsAndCount) {
  Rng rng(5);
  const auto points = UniformPoints(100, 200, 1000, &rng);
  EXPECT_EQ(points.size(), 1000u);
  for (int64_t p : points) {
    EXPECT_GE(p, 100);
    EXPECT_LT(p, 200);
  }
}

TEST(SubsampleTest, SmallInputReturnedWhole) {
  Rng rng(7);
  const std::vector<int64_t> points = {1, 2, 3};
  EXPECT_EQ(Subsample(points, 10, &rng), points);
}

TEST(SubsampleTest, DrawsDistinctElements) {
  Rng rng(9);
  std::vector<int64_t> points(100);
  for (int i = 0; i < 100; ++i) points[static_cast<size_t>(i)] = i;
  auto sample = Subsample(points, 30, &rng);
  EXPECT_EQ(sample.size(), 30u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(DistancesToNearestSortedTest, MatchesBinarySearchVariant) {
  // Property check of the merged sweep against the per-point binary
  // search across random sorted inputs of varied shapes, including
  // duplicates (UniformInt over a small range collides often).
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const size_t np = static_cast<size_t>(rng.UniformInt(0, 40));
    const size_t nr = static_cast<size_t>(rng.UniformInt(1, 20));
    const int64_t range = rng.UniformInt(1, round < 25 ? 30 : 100000);
    std::vector<int64_t> points, ref;
    for (size_t i = 0; i < np; ++i) points.push_back(rng.UniformInt(0, range));
    for (size_t i = 0; i < nr; ++i) ref.push_back(rng.UniformInt(0, range));
    std::sort(points.begin(), points.end());
    std::sort(ref.begin(), ref.end());
    const std::vector<double> expected = DistancesToNearest(points, ref);
    EXPECT_EQ(DistancesToNearestSorted(points, ref), expected);
    std::vector<int64_t> ints;
    DistancesToNearestSorted(points, ref, &ints);
    ASSERT_EQ(ints.size(), expected.size());
    for (size_t i = 0; i < ints.size(); ++i) {
      EXPECT_EQ(static_cast<double>(ints[i]), expected[i]);
    }
  }
}

TEST(DistancesToNearestSortedTest, EmptyPointsAndSingletonRef) {
  const std::vector<int64_t> none;
  const std::vector<int64_t> ref = {5};
  EXPECT_TRUE(DistancesToNearestSorted(none, ref).empty());
  EXPECT_EQ(DistancesToNearestSorted(std::vector<int64_t>{1, 5, 9}, ref),
            (std::vector<double>{4, 0, 4}));
}

// Builds a homogeneous Poisson-ish process on [0, horizon).
std::vector<int64_t> RandomProcess(int64_t horizon, size_t count, Rng* rng) {
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(rng->UniformInt(0, horizon - 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MedianDistanceTestTest, DetectsCorrelatedProcess) {
  Rng rng(42);
  const int64_t horizon = 3600 * 1000;
  const std::vector<int64_t> a = RandomProcess(horizon, 500, &rng);
  // b fires within 50-250 ms after events of a (a caller-callee pattern).
  std::vector<int64_t> b;
  for (size_t i = 0; i < a.size(); i += 2) {
    b.push_back(a[i] + rng.UniformInt(50, 250));
  }
  std::sort(b.begin(), b.end());
  MedianDistanceTestConfig config;
  const auto result = MedianDistanceTest(a, b, 0, horizon, config, &rng);
  EXPECT_TRUE(result.positive);
  EXPECT_LT(result.ci_target.upper, result.ci_random.lower);
}

TEST(MedianDistanceTestTest, RejectsIndependentProcess) {
  // Property sweep over seeds: independent processes must essentially
  // never test positive (one-sided 95% CIs both ways).
  int positives = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(1000 + seed);
    const int64_t horizon = 3600 * 1000;
    const std::vector<int64_t> a = RandomProcess(horizon, 400, &rng);
    const std::vector<int64_t> b = RandomProcess(horizon, 400, &rng);
    MedianDistanceTestConfig config;
    positives += MedianDistanceTest(a, b, 0, horizon, config, &rng).positive;
  }
  EXPECT_LE(positives, 1);
}

TEST(MedianDistanceTestTest, EmptySequencesAreNegative) {
  Rng rng(3);
  MedianDistanceTestConfig config;
  const std::vector<int64_t> none, one{1}, two{2}, pair{1, 2};
  EXPECT_FALSE(MedianDistanceTest(none, pair, 0, 100, config, &rng).positive);
  EXPECT_FALSE(MedianDistanceTest(pair, none, 0, 100, config, &rng).positive);
  EXPECT_FALSE(MedianDistanceTest(one, two, 100, 100, config, &rng).positive);
}

TEST(MedianDistanceTestTest, TinySamplesCannotReachLevel) {
  // With 3 points the 95% order-statistics CI does not exist; the test
  // must return negative rather than crash or fabricate a decision.
  Rng rng(4);
  MedianDistanceTestConfig config;
  config.sample_size = 3;
  const std::vector<int64_t> a = {100, 200, 300};
  const std::vector<int64_t> b = {101, 201, 301};
  EXPECT_FALSE(MedianDistanceTest(a, b, 0, 1000, config, &rng).positive);
}

TEST(MedianDistanceTestTest, OneSidedness) {
  // b far from a ("repelled"): dist(b, A) LARGER than random must not be
  // positive — the test is one-sided by design.
  Rng rng(11);
  std::vector<int64_t> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(i * 10000);       // every 10 s
    b.push_back(i * 10000 + 5000);  // exactly between a's events
  }
  MedianDistanceTestConfig config;
  const auto result = MedianDistanceTest(a, b, 0, 300 * 10000, config, &rng);
  EXPECT_FALSE(result.positive);
}

TEST(MedianDistanceTestWithBaselineTest, DetectsAgainstIntensityBaseline) {
  // A bursty hour: both the pair's activity and the overall stream
  // concentrate in bursts. Against a uniform baseline every co-bursting
  // app looks dependent; against the intensity-proportional baseline the
  // genuinely coupled pair still stands out.
  Rng rng(21);
  std::vector<int64_t> a, b, others;
  for (int burst = 0; burst < 40; ++burst) {
    const int64_t t0 = burst * 90000;
    for (int i = 0; i < 12; ++i) {
      const int64_t t = t0 + rng.UniformInt(0, 4000);
      a.push_back(t);
      b.push_back(t + rng.UniformInt(5, 20));  // tightly coupled to a
      others.push_back(t0 + rng.UniformInt(0, 4000));
    }
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int64_t> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), others.begin(), others.end());
  std::sort(all.begin(), all.end());

  MedianDistanceTestConfig config;
  const auto coupled = MedianDistanceTestWithBaseline(
      a, b, all, /*baseline_jitter=*/250, config, &rng);
  EXPECT_TRUE(coupled.positive);
  // `others` shares the bursts but is not coupled beyond them: the
  // intensity baseline absorbs the burst structure, so no detection.
  std::sort(others.begin(), others.end());
  const auto burst_only = MedianDistanceTestWithBaseline(
      a, others, all, 250, config, &rng);
  EXPECT_FALSE(burst_only.positive);
}

TEST(MedianDistanceTestWithBaselineTest, EmptyInputsNegative) {
  Rng rng(3);
  MedianDistanceTestConfig config;
  const std::vector<int64_t> none, one{1}, two{2};
  EXPECT_FALSE(MedianDistanceTestWithBaseline(none, one, one, 0, config, &rng)
                   .positive);
  EXPECT_FALSE(MedianDistanceTestWithBaseline(one, none, one, 0, config, &rng)
                   .positive);
  EXPECT_FALSE(MedianDistanceTestWithBaseline(one, two, none, 0, config, &rng)
                   .positive);
}

TEST(MedianDistanceTestTest, SamplesExposedForDiagnostics) {
  Rng rng(13);
  const std::vector<int64_t> a = RandomProcess(100000, 200, &rng);
  const std::vector<int64_t> b = RandomProcess(100000, 200, &rng);
  MedianDistanceTestConfig config;
  config.sample_size = 50;
  const auto result = MedianDistanceTest(a, b, 0, 100000, config, &rng);
  EXPECT_EQ(result.sample_random.size(), 50u);
  EXPECT_EQ(result.sample_target.size(), 50u);
}

}  // namespace
}  // namespace logmine::stats
