#include "stats/association_tests.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/contingency.h"

namespace logmine::stats {
namespace {

TEST(ContingencyTest, MarginalsAndExpected) {
  // The paper's running example (figure 4): bigram type (A2, A3) over the
  // 8 bigrams of the example session: o11=2, o12=1, o21=0, o22=5.
  Contingency2x2 t{2, 1, 0, 5};
  EXPECT_EQ(t.r1(), 3);
  EXPECT_EQ(t.r2(), 5);
  EXPECT_EQ(t.c1(), 2);
  EXPECT_EQ(t.c2(), 6);
  EXPECT_EQ(t.n(), 8);
  EXPECT_NEAR(t.e11(), 3.0 * 2.0 / 8.0, 1e-12);
  EXPECT_NEAR(t.e12(), 3.0 * 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(t.e21(), 5.0 * 2.0 / 8.0, 1e-12);
  EXPECT_NEAR(t.e22(), 5.0 * 6.0 / 8.0, 1e-12);
  EXPECT_TRUE(t.IsAttracted());  // 2 > 0.75
}

TEST(ContingencyTest, EmptyTable) {
  Contingency2x2 t;
  EXPECT_EQ(t.n(), 0);
  EXPECT_EQ(t.e11(), 0.0);
  EXPECT_FALSE(t.IsAttracted());
}

TEST(ContingencyTest, ToStringRendersCells) {
  Contingency2x2 t{1, 2, 3, 4};
  EXPECT_EQ(t.ToString(), "[[1, 2], [3, 4]]");
}

TEST(DunningTest, IndependentTableScoresZero) {
  // Perfectly proportional rows: o11/o12 == o21/o22.
  Contingency2x2 t{10, 20, 30, 60};
  EXPECT_NEAR(DunningLogLikelihood(t), 0.0, 1e-9);
  EXPECT_NEAR(PearsonChiSquare(t), 0.0, 1e-9);
}

TEST(DunningTest, HandComputedValue) {
  // G^2 = 2 * sum o * ln(o/e) for [[10, 10], [10, 70]]:
  // r1=20 c1=20 n=100 -> e11=4, e12=16, e21=16, e22=64.
  Contingency2x2 t{10, 10, 10, 70};
  const double expected = 2.0 * (10 * std::log(10 / 4.0) +
                                 10 * std::log(10 / 16.0) +
                                 10 * std::log(10 / 16.0) +
                                 70 * std::log(70 / 64.0));
  EXPECT_NEAR(DunningLogLikelihood(t), expected, 1e-9);
}

TEST(DunningTest, ZeroCellsContributeNothing) {
  Contingency2x2 t{5, 0, 0, 5};
  // G^2 = 2 * (5 ln(5/2.5) + 5 ln(5/2.5)) = 20 ln 2.
  EXPECT_NEAR(DunningLogLikelihood(t), 20.0 * std::log(2.0), 1e-9);
}

TEST(PearsonTest, ClassicTextbookTable) {
  // [[20, 30], [30, 20]]: X^2 = sum (o-e)^2/e with all e = 25 -> 4.
  Contingency2x2 t{20, 30, 30, 20};
  EXPECT_NEAR(PearsonChiSquare(t), 4.0, 1e-9);
}

TEST(DunningVsPearsonTest, AgreeOnBalancedTablesDivergeOnSkewed) {
  // For large balanced tables the two statistics are close.
  Contingency2x2 balanced{120, 80, 80, 120};
  EXPECT_NEAR(DunningLogLikelihood(balanced) / PearsonChiSquare(balanced),
              1.0, 0.05);
  // Heavily skewed table (rare joint events): Pearson explodes relative
  // to G^2 — Dunning's original motivation.
  Contingency2x2 skewed{3, 2, 2, 10000};
  EXPECT_GT(PearsonChiSquare(skewed), 2.0 * DunningLogLikelihood(skewed));
}

TEST(PmiTest, Basics) {
  Contingency2x2 t{10, 10, 10, 70};  // e11 = 4
  EXPECT_NEAR(PointwiseMutualInformation(t), std::log2(10.0 / 4.0), 1e-9);
  Contingency2x2 zero{0, 5, 5, 5};
  EXPECT_EQ(PointwiseMutualInformation(zero), 0.0);
}

TEST(FisherExactTest, KnownHypergeometricTail) {
  // Table [[3, 1], [1, 3]]: marginals r1=4, c1=4, n=8.
  // P(X = 3) = C(4,3) C(4,1) / C(8,4) = 16/70; P(X = 4) = 1/70.
  Contingency2x2 t{3, 1, 1, 3};
  EXPECT_NEAR(FisherExactPValue(t), 17.0 / 70.0, 1e-10);
}

TEST(FisherExactTest, ExtremeTableSmallP) {
  Contingency2x2 t{10, 0, 0, 10};
  // P(X >= 10) = 1 / C(20,10).
  EXPECT_NEAR(FisherExactPValue(t), 1.0 / 184756.0, 1e-12);
}

TEST(FisherExactTest, AgreesWithChiSquareAsymptotically) {
  Contingency2x2 t{60, 40, 40, 60};
  const double fisher = FisherExactPValue(t);
  const double chi = ChiSquarePValue(PearsonChiSquare(t)) / 2.0;  // one-sided
  EXPECT_NEAR(fisher, chi, 0.01);
}

TEST(FisherExactTest, EmptyTableIsOne) {
  EXPECT_EQ(FisherExactPValue(Contingency2x2{}), 1.0);
}

TEST(DescriptiveMeasuresTest, DiceZAndT) {
  Contingency2x2 t{10, 10, 10, 70};  // e11 = 4
  EXPECT_NEAR(DiceCoefficient(t), 2.0 * 10 / (20 + 20), 1e-12);
  EXPECT_NEAR(ZScore(t), (10.0 - 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(TScore(t), (10.0 - 4.0) / std::sqrt(10.0), 1e-12);
  Contingency2x2 zero{0, 0, 0, 0};
  EXPECT_EQ(DiceCoefficient(zero), 0.0);
  EXPECT_EQ(ZScore(zero), 0.0);
  EXPECT_EQ(TScore(zero), 0.0);
}

TEST(PValueTest, MatchesChiSquareTail) {
  EXPECT_NEAR(ChiSquarePValue(3.841458820694124), 0.05, 1e-9);
  EXPECT_NEAR(ChiSquarePValue(6.6348966010212145), 0.01, 1e-9);
  EXPECT_NEAR(ChiSquarePValue(0.0), 1.0, 1e-12);
}

TEST(SignificantAttractionTest, RequiresBothAttractionAndSignificance) {
  // Strong attraction.
  Contingency2x2 attracted{50, 10, 10, 200};
  EXPECT_TRUE(IsSignificantAttraction(
      attracted, DunningLogLikelihood(attracted), 0.01));
  // Strong *repulsion* — significant score but o11 < e11 must be
  // rejected (we only want positive association).
  Contingency2x2 repelled{1, 100, 100, 50};
  EXPECT_GT(DunningLogLikelihood(repelled), 10.0);
  EXPECT_FALSE(IsSignificantAttraction(
      repelled, DunningLogLikelihood(repelled), 0.01));
  // Attracted but not significant.
  Contingency2x2 weak{3, 2, 2, 6};
  EXPECT_FALSE(
      IsSignificantAttraction(weak, DunningLogLikelihood(weak), 0.001));
}

}  // namespace
}  // namespace logmine::stats
