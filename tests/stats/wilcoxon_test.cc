#include "stats/wilcoxon.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logmine::stats {
namespace {

TEST(WilcoxonTest, PaperSevenSameSignedCase) {
  // "The p-value of the signed wilcoxon rank sum test is 0.0156 for any
  // two samples of size 7, such that the values of the one are always
  // below the corresponding value of the other" — exact two-sided
  // p = 2 * (1/2)^7 = 0.015625.
  const std::vector<double> diffs = {1.1, 2.7, 0.4, 3.3, 5.9, 0.8, 1.6};
  auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().exact);
  EXPECT_EQ(result.value().n_used, 7);
  EXPECT_DOUBLE_EQ(result.value().w_plus, 28.0);  // all ranks positive
  EXPECT_NEAR(result.value().p_value, 0.015625, 1e-12);
}

TEST(WilcoxonTest, AllNegativeMirrorsAllPositive) {
  const std::vector<double> diffs = {-1, -2, -3, -4, -5, -6, -7};
  auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().w_plus, 0.0);
  EXPECT_NEAR(result.value().p_value, 0.015625, 1e-12);
}

TEST(WilcoxonTest, OneSidedAlternatives) {
  const std::vector<double> diffs = {1, 2, 3, 4, 5, 6, 7};
  auto greater = WilcoxonSignedRank(diffs, Alternative::kGreater);
  ASSERT_TRUE(greater.ok());
  EXPECT_NEAR(greater.value().p_value, 0.0078125, 1e-12);  // (1/2)^7
  auto less = WilcoxonSignedRank(diffs, Alternative::kLess);
  ASSERT_TRUE(less.ok());
  EXPECT_NEAR(less.value().p_value, 1.0, 1e-12);
}

TEST(WilcoxonTest, ZerosAreDropped) {
  const std::vector<double> diffs = {0, 1, 0, 2, 3, 0};
  auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().n_used, 3);
  EXPECT_DOUBLE_EQ(result.value().w_plus, 6.0);
  EXPECT_NEAR(result.value().p_value, 0.25, 1e-12);  // 2 * (1/2)^3
}

TEST(WilcoxonTest, AllZerosIsAnError) {
  EXPECT_FALSE(
      WilcoxonSignedRank({0, 0, 0}, Alternative::kTwoSided).ok());
  EXPECT_FALSE(WilcoxonSignedRank({}, Alternative::kTwoSided).ok());
}

TEST(WilcoxonTest, KnownSmallExactDistribution) {
  // n = 3, diffs {+1, -2, +3}: ranks 1, 2, 3; W+ = 1 + 3 = 4.
  // Null rank sums over the 8 sign patterns: {0,1,2,3,3,4,5,6}, so
  // P(W+ <= 4) = 6/8 and P(W+ >= 4) = 3/8 -> two-sided p = 2 * 3/8.
  auto result = WilcoxonSignedRank({1, -2, 3}, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().w_plus, 4.0);
  EXPECT_NEAR(result.value().p_value, 0.75, 1e-12);
}

TEST(WilcoxonTest, TiesUseMidranksAndNormalApproximation) {
  const std::vector<double> diffs = {1, 1, 2, 2, 3, 3, -1, -2};
  auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().exact);
  // |d| ranks: the two 1s and the -1 share midrank 2, etc.
  EXPECT_GT(result.value().w_plus, 0.0);
  EXPECT_GT(result.value().p_value, 0.0);
  EXPECT_LE(result.value().p_value, 1.0);
}

TEST(WilcoxonTest, LargeSampleUsesNormalApproximation) {
  std::vector<double> diffs;
  for (int i = 1; i <= 40; ++i) diffs.push_back(i % 2 == 0 ? i : -i);
  auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().exact);
}

TEST(WilcoxonTest, NullIsUniformPValues) {
  // Under H0, p-values should be roughly uniform: check the rejection
  // rate at alpha = 0.1 over repeated symmetric samples.
  Rng rng(99);
  const int trials = 2000;
  int rejected = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> diffs;
    for (int i = 0; i < 15; ++i) diffs.push_back(rng.Normal(0, 1));
    auto result = WilcoxonSignedRank(diffs, Alternative::kTwoSided);
    ASSERT_TRUE(result.ok());
    if (result.value().p_value < 0.1) ++rejected;
  }
  // The exact test is conservative; the rate must not exceed alpha by
  // more than sampling noise.
  EXPECT_LT(static_cast<double>(rejected) / trials, 0.12);
  EXPECT_GT(static_cast<double>(rejected) / trials, 0.04);
}

TEST(WilcoxonTest, DetectsShiftedMedian) {
  Rng rng(7);
  std::vector<double> diffs;
  for (int i = 0; i < 25; ++i) diffs.push_back(rng.Normal(1.0, 1.0));
  auto result = WilcoxonSignedRank(diffs, Alternative::kGreater);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 0.001);
}

TEST(WilcoxonPairedTest, ComputesDifferences) {
  const std::vector<double> xs = {5, 6, 7, 8, 9, 10, 11};
  const std::vector<double> ys = {1, 2, 3, 4, 5, 6, 7};
  auto result = WilcoxonSignedRankPaired(xs, ys, Alternative::kTwoSided);
  ASSERT_TRUE(result.ok());
  // xs - ys is constant +4 -> ties, but all positive.
  EXPECT_DOUBLE_EQ(result.value().w_plus, 28.0);
}

TEST(WilcoxonPairedTest, SizeMismatchRejected) {
  EXPECT_FALSE(
      WilcoxonSignedRankPaired({1, 2}, {1}, Alternative::kTwoSided).ok());
}

}  // namespace
}  // namespace logmine::stats
