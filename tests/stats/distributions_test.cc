#include "stats/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace logmine::stats {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogChooseTest, MatchesPascalTriangle) {
  EXPECT_NEAR(std::exp(LogChoose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogChoose(10, 5)), 252.0, 1e-7);
  EXPECT_NEAR(std::exp(LogChoose(52, 5)), 2598960.0, 1e-2);
  EXPECT_NEAR(std::exp(LogChoose(7, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(LogChoose(7, 7)), 1.0, 1e-12);
}

TEST(BinomialPmfTest, FairCoin) {
  // Bin(7, 1/2): P(X = 0) = 1/128.
  EXPECT_NEAR(BinomialPmf(0, 7, 0.5), 1.0 / 128, 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 7, 0.5), 35.0 / 128, 1e-12);
  EXPECT_NEAR(BinomialPmf(7, 7, 0.5), 1.0 / 128, 1e-12);
}

TEST(BinomialPmfTest, EdgeProbabilities) {
  EXPECT_EQ(BinomialPmf(0, 5, 0.0), 1.0);
  EXPECT_EQ(BinomialPmf(1, 5, 0.0), 0.0);
  EXPECT_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(BinomialPmf(-1, 5, 0.5), 0.0);
  EXPECT_EQ(BinomialPmf(6, 5, 0.5), 0.0);
}

TEST(BinomialPmfTest, SumsToOne) {
  double total = 0;
  for (int k = 0; k <= 20; ++k) total += BinomialPmf(k, 20, 0.3);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BinomialCdfTest, ExactSmallN) {
  // Bin(7, 1/2): P(X <= 0) = 1/128 = 0.0078125 — the paper's 0.984 level.
  EXPECT_NEAR(BinomialCdf(0, 7, 0.5), 0.0078125, 1e-12);
  EXPECT_NEAR(BinomialCdf(3, 7, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(BinomialCdf(7, 7, 0.5), 1.0, 1e-12);
  EXPECT_EQ(BinomialCdf(-1, 7, 0.5), 0.0);
}

TEST(BinomialCdfTest, LargeNMatchesNormalApprox) {
  // For n = 5000 the implementation switches to the normal approximation;
  // check continuity against the exact branch at n = 2000.
  const double exact = BinomialCdf(1000, 2000, 0.5);
  EXPECT_NEAR(exact, 0.5089, 5e-3);
  const double approx = BinomialCdf(2500, 5000, 0.5);
  EXPECT_NEAR(approx, 0.5056, 5e-3);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.995), 2.5758293035489004, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.84134474606854293), 1.0, 1e-8);
}

class NormalRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTripTest, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalRoundTripTest,
                         ::testing::Values(1e-8, 0.001, 0.025, 0.2, 0.5, 0.8,
                                           0.975, 0.999, 1.0 - 1e-8));

TEST(GammaTest, RegularizedGammaIdentities) {
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaQ(1.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(0.5, 0.5) + RegularizedGammaQ(0.5, 0.5), 1.0,
              1e-12);
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(ChiSquareTest, SurvivalKnownValues) {
  // Critical values: P(X > 3.841) = 0.05 and P(X > 6.635) = 0.01 at 1 df.
  EXPECT_NEAR(ChiSquareSf(3.841458820694124, 1.0), 0.05, 1e-9);
  EXPECT_NEAR(ChiSquareSf(6.6348966010212145, 1.0), 0.01, 1e-9);
  // 2 df: sf(x) = exp(-x/2).
  EXPECT_NEAR(ChiSquareSf(4.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_EQ(ChiSquareSf(-1.0, 1.0), 1.0);
}

TEST(ChiSquareTest, QuantileInvertsSf) {
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    for (double df : {1.0, 2.0, 5.0}) {
      const double x = ChiSquareQuantile(p, df);
      EXPECT_NEAR(1.0 - ChiSquareSf(x, df), p, 1e-8)
          << "p=" << p << " df=" << df;
    }
  }
}

TEST(BetaTest, RegularizedBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedBeta(0.3, 1.0, 1.0), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(RegularizedBeta(0.4, 2.0, 2.0), 0.4 * 0.4 * (3 - 0.8), 1e-10);
  EXPECT_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(StudentTTest, CdfKnownValues) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // t distribution with 1 df is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-9);
  // Large df approaches the normal.
  EXPECT_NEAR(StudentTCdf(1.96, 100000.0), NormalCdf(1.96), 1e-4);
}

TEST(StudentTTest, QuantileKnownValues) {
  // Classic t-table values: t_{0.975, 5} = 2.570582, t_{0.975, 166} ~ 1.974.
  EXPECT_NEAR(StudentTQuantile(0.975, 5.0), 2.5705818366147395, 1e-6);
  EXPECT_NEAR(StudentTQuantile(0.975, 166.0), 1.9744, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.5, 9.0), 0.0, 1e-9);
  // Symmetry.
  EXPECT_NEAR(StudentTQuantile(0.05, 7.0), -StudentTQuantile(0.95, 7.0),
              1e-8);
}

}  // namespace
}  // namespace logmine::stats
