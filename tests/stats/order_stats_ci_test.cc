#include "stats/order_stats_ci.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "util/rng.h"

namespace logmine::stats {
namespace {

TEST(MedianCiRanksTest, PaperSevenDayCase) {
  // With 7 daily values, [x_(1), x_(7)] has exact coverage
  // 1 - 2 * (1/2)^7 = 0.984375 — the "0.984 level" quoted throughout §4.
  auto ci = MedianCiRanks(7, 0.98);
  ASSERT_TRUE(ci.ok());
  EXPECT_EQ(ci.value().lower_rank, 1);
  EXPECT_EQ(ci.value().upper_rank, 7);
  EXPECT_NEAR(ci.value().coverage, 0.984375, 1e-12);
}

TEST(MedianCiRanksTest, KnownTextbookRanks) {
  // n = 10, 95%: the classic distribution-free interval is [x_(2), x_(9)]
  // with coverage 1 - 2 * BinCdf(1; 10, 1/2) = 0.978515625.
  auto ci = MedianCiRanks(10, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_EQ(ci.value().lower_rank, 2);
  EXPECT_EQ(ci.value().upper_rank, 9);
  EXPECT_NEAR(ci.value().coverage, 0.978515625, 1e-12);
}

TEST(MedianCiRanksTest, TooSmallSampleFails) {
  // n = 5: [x_(1), x_(5)] covers 1 - 2/32 = 0.9375 < 0.98.
  EXPECT_FALSE(MedianCiRanks(5, 0.98).ok());
  EXPECT_TRUE(MedianCiRanks(5, 0.9).ok());
  EXPECT_FALSE(MedianCiRanks(0, 0.5).ok());
}

TEST(MedianCiRanksTest, InvalidLevelRejected) {
  EXPECT_FALSE(MedianCiRanks(10, 0.0).ok());
  EXPECT_FALSE(MedianCiRanks(10, 1.0).ok());
  EXPECT_FALSE(MedianCiRanks(10, -0.5).ok());
}

TEST(MedianCiRanksTest, TightestValidInterval) {
  // The returned j must be maximal: j+1 must undershoot the level.
  for (int64_t n : {7, 20, 51, 100, 333, 1000}) {
    auto ci = MedianCiRanks(n, 0.95);
    ASSERT_TRUE(ci.ok()) << n;
    const int j = ci.value().lower_rank;
    EXPECT_GE(ci.value().coverage, 0.95);
    EXPECT_EQ(ci.value().upper_rank, static_cast<int>(n) + 1 - j);
    if (j + 1 <= (n + 1) / 2) {
      const double tighter =
          1.0 - 2.0 * BinomialCdf(j, n, 0.5);
      EXPECT_LT(tighter, 0.95) << "n=" << n;
    }
  }
}

TEST(MedianCiRanksTest, SymmetricRanks) {
  for (int64_t n = 6; n <= 200; n += 13) {
    auto ci = MedianCiRanks(n, 0.95);
    ASSERT_TRUE(ci.ok());
    EXPECT_EQ(ci.value().lower_rank + ci.value().upper_rank,
              static_cast<int>(n) + 1);
  }
}

TEST(MedianConfidenceIntervalTest, ValuesFromSortedSample) {
  auto ci = MedianConfidenceInterval({7, 1, 5, 3, 9, 2, 8}, 0.98);
  ASSERT_TRUE(ci.ok());
  // Ranks (1, 7) on the sorted sample {1,2,3,5,7,8,9}.
  EXPECT_DOUBLE_EQ(ci.value().lower, 1);
  EXPECT_DOUBLE_EQ(ci.value().upper, 9);
  EXPECT_DOUBLE_EQ(ci.value().median, 5);
}

TEST(MedianConfidenceIntervalTest, EvenSampleMedianAveraged) {
  auto ci = MedianConfidenceInterval({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci.value().median, 5.5);
  EXPECT_LE(ci.value().lower, ci.value().median);
  EXPECT_GE(ci.value().upper, ci.value().median);
}

class MedianCiCoverageTest : public ::testing::TestWithParam<int> {};

// Property: over many synthetic samples from a continuous distribution
// with known median, the interval must cover the median at a rate no
// lower than the nominal level (it is conservative by construction).
TEST_P(MedianCiCoverageTest, EmpiricalCoverageAtLeastNominal) {
  const int n = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(n));
  const double true_median = 0.0;
  const int trials = 800;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) xs.push_back(rng.Normal(0.0, 3.0));
    auto ci = MedianConfidenceInterval(xs, 0.95);
    ASSERT_TRUE(ci.ok());
    if (ci.value().lower <= true_median && true_median <= ci.value().upper) {
      ++covered;
    }
  }
  const double rate = static_cast<double>(covered) / trials;
  // Allow 2.5 standard errors of slack below the nominal level.
  EXPECT_GE(rate, 0.95 - 2.5 * std::sqrt(0.95 * 0.05 / trials));
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, MedianCiCoverageTest,
                         ::testing::Values(8, 15, 40, 150, 400));

}  // namespace
}  // namespace logmine::stats
