#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace logmine::stats {
namespace {

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.99);
  EXPECT_EQ(h.num_bins(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.underflow(), 0);
  EXPECT_EQ(h.overflow(), 0);
}

TEST(HistogramTest, UnderflowAndOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.Add(-0.1);
  h.Add(10.0);
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.total(), 3);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(BinCountSeriesTest, OneSecondBins) {
  // Figure 1's transformation: events -> logs per second.
  const std::vector<int64_t> events = {0, 500, 999, 1000, 2500, 5999};
  const auto counts = BinCountSeries(events, 0, 6000, 1000);
  EXPECT_EQ(counts, (std::vector<int64_t>{3, 1, 1, 0, 0, 1}));
}

TEST(BinCountSeriesTest, IgnoresOutOfWindowEvents) {
  // -5 is before the window; 200 and 999 are at/after the exclusive end.
  const std::vector<int64_t> events = {-5, 0, 100, 200, 999};
  const auto counts = BinCountSeries(events, 0, 200, 100);
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 1}));
}

TEST(BinCountSeriesTest, PartialLastBin) {
  const auto counts = BinCountSeries({240}, 0, 250, 100);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2], 1);
}

}  // namespace
}  // namespace logmine::stats
