#include "eval/dataset.h"

#include <gtest/gtest.h>

namespace logmine::eval {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.05;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, UniversesMatchPaperArithmetic) {
  // 54 apps -> (54^2 - 54) / 2 = 1431 pairs; 54 x 47 app-entry cells.
  EXPECT_EQ(dataset_->universe_pairs, 1431);
  EXPECT_EQ(dataset_->universe_services, 54 * 47);
}

TEST_F(DatasetTest, ReferencesMirrorScenario) {
  EXPECT_EQ(dataset_->reference_pairs.size(),
            dataset_->scenario.interaction_pairs.size());
  EXPECT_EQ(dataset_->reference_services.size(),
            dataset_->scenario.app_service_deps.size());
}

TEST_F(DatasetTest, VocabularyMatchesDirectory) {
  ASSERT_EQ(dataset_->vocabulary.entries.size(),
            dataset_->scenario.directory.size());
  for (size_t i = 0; i < dataset_->vocabulary.entries.size(); ++i) {
    EXPECT_EQ(dataset_->vocabulary.entries[i].id,
              dataset_->scenario.directory.entry(i).id);
  }
}

TEST_F(DatasetTest, EntryOwnerMapIsComplete) {
  EXPECT_EQ(dataset_->entry_owner.size(),
            dataset_->scenario.directory.size());
  for (const auto& [id, owner] : dataset_->entry_owner) {
    EXPECT_GE(dataset_->scenario.topology.FindApp(owner), 0) << owner;
    EXPECT_TRUE(dataset_->scenario.directory.FindById(id).ok()) << id;
  }
}

TEST_F(DatasetTest, DayWindowsTileTheSimulation) {
  EXPECT_EQ(dataset_->num_days(), 2);
  EXPECT_EQ(dataset_->day_begin(0), dataset_->simulation.start);
  EXPECT_EQ(dataset_->day_end(0), dataset_->day_begin(1));
  EXPECT_GE(dataset_->store.min_ts(),
            dataset_->day_begin(0) - 5000);  // skew slack
  EXPECT_LE(dataset_->store.max_ts(),
            dataset_->day_end(1) + kMillisPerHour);  // async tail slack
}

TEST_F(DatasetTest, StoreIsIndexedAndPopulated) {
  EXPECT_TRUE(dataset_->store.index_built());
  EXPECT_GT(dataset_->store.size(), 5000u);
  EXPECT_EQ(dataset_->store.num_sources(), 54u);
}

}  // namespace
}  // namespace logmine::eval
