#include "eval/dataset.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "log/codec.h"

namespace logmine::eval {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.05;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, UniversesMatchPaperArithmetic) {
  // 54 apps -> (54^2 - 54) / 2 = 1431 pairs; 54 x 47 app-entry cells.
  EXPECT_EQ(dataset_->universe_pairs, 1431);
  EXPECT_EQ(dataset_->universe_services, 54 * 47);
}

TEST_F(DatasetTest, ReferencesMirrorScenario) {
  EXPECT_EQ(dataset_->reference_pairs.size(),
            dataset_->scenario.interaction_pairs.size());
  EXPECT_EQ(dataset_->reference_services.size(),
            dataset_->scenario.app_service_deps.size());
}

TEST_F(DatasetTest, VocabularyMatchesDirectory) {
  ASSERT_EQ(dataset_->vocabulary.entries.size(),
            dataset_->scenario.directory.size());
  for (size_t i = 0; i < dataset_->vocabulary.entries.size(); ++i) {
    EXPECT_EQ(dataset_->vocabulary.entries[i].id,
              dataset_->scenario.directory.entry(i).id);
  }
}

TEST_F(DatasetTest, EntryOwnerMapIsComplete) {
  EXPECT_EQ(dataset_->entry_owner.size(),
            dataset_->scenario.directory.size());
  for (const auto& [id, owner] : dataset_->entry_owner) {
    EXPECT_GE(dataset_->scenario.topology.FindApp(owner), 0) << owner;
    EXPECT_TRUE(dataset_->scenario.directory.FindById(id).ok()) << id;
  }
}

TEST_F(DatasetTest, DayWindowsTileTheSimulation) {
  EXPECT_EQ(dataset_->num_days(), 2);
  EXPECT_EQ(dataset_->day_begin(0), dataset_->simulation.start);
  EXPECT_EQ(dataset_->day_end(0), dataset_->day_begin(1));
  EXPECT_GE(dataset_->store.min_ts(),
            dataset_->day_begin(0) - 5000);  // skew slack
  EXPECT_LE(dataset_->store.max_ts(),
            dataset_->day_end(1) + kMillisPerHour);  // async tail slack
}

TEST_F(DatasetTest, StoreIsIndexedAndPopulated) {
  EXPECT_TRUE(dataset_->store.index_built());
  EXPECT_GT(dataset_->store.size(), 5000u);
  EXPECT_EQ(dataset_->store.num_sources(), 54u);
}


class DatasetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("logmine_dataset_cache_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
    config_.simulation.num_days = 1;
    config_.simulation.scale = 0.02;
    config_.corpus_cache_path = (dir_ / "corpus.lmc").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  DatasetConfig config_;
};

TEST_F(DatasetCacheTest, CachedRebuildIsBitIdentical) {
  auto first = BuildDataset(config_);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(std::filesystem::exists(config_.corpus_cache_path));

  auto second = BuildDataset(config_);
  ASSERT_TRUE(second.ok()) << second.status();
  const Dataset& a = first.value();
  const Dataset& b = second.value();
  ASSERT_EQ(a.store.size(), b.store.size());
  for (size_t i = 0; i < a.store.size(); i += 97) {
    EXPECT_EQ(LineCodec::Encode(a.store.GetRecord(i)),
              LineCodec::Encode(b.store.GetRecord(i)));
  }
  EXPECT_TRUE(b.store.index_built());
  EXPECT_EQ(a.summary.total_logs, b.summary.total_logs);
  EXPECT_EQ(a.summary.logs_per_day, b.summary.logs_per_day);
  EXPECT_EQ(a.summary.context_logs, b.summary.context_logs);
  EXPECT_EQ(a.summary.num_identified_sessions,
            b.summary.num_identified_sessions);
}

TEST_F(DatasetCacheTest, ConfigChangeInvalidatesTheCache) {
  auto first = BuildDataset(config_);
  ASSERT_TRUE(first.ok()) << first.status();
  DatasetConfig changed = config_;
  changed.simulation.seed += 1;
  EXPECT_NE(DatasetFingerprint(config_), DatasetFingerprint(changed));
  auto second = BuildDataset(changed);
  ASSERT_TRUE(second.ok()) << second.status();
  // A different seed simulates a different corpus; a stale-cache hit
  // would hand back the first one.
  ASSERT_NE(first.value().store.size(), 0u);
  ASSERT_NE(second.value().store.size(), 0u);
  EXPECT_NE(LineCodec::Encode(first.value().store.GetRecord(0)),
            LineCodec::Encode(second.value().store.GetRecord(0)));
}

TEST_F(DatasetCacheTest, CorruptCacheFallsBackToSimulation) {
  auto first = BuildDataset(config_);
  ASSERT_TRUE(first.ok()) << first.status();
  {
    std::ofstream out(config_.corpus_cache_path,
                      std::ios::binary | std::ios::trunc);
    out << "LMSNnot really a snapshot";
  }
  auto second = BuildDataset(config_);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first.value().summary.total_logs,
            second.value().summary.total_logs);
}

}  // namespace
}  // namespace logmine::eval
