// Unit-level behavior of the checkpoint/resume layer on a small corpus.
// The exhaustive kill-point sweep lives in
// tests/integration/crash_recovery_test.cc.

#include "eval/resumable_runner.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "eval/daily_runner.h"
#include "eval/dataset.h"

namespace logmine::eval {
namespace {

namespace fs = std::filesystem;

class ResumableRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.1;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  /// A fresh empty checkpoint directory under the test tmpdir.
  static std::string FreshDir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

  static uint64_t L3Hash(const core::L3Config& config,
                         const core::ModelTrackerConfig& tracker) {
    return CheckpointStateHash(core::ConfigFingerprint(config), *dataset_,
                               tracker);
  }

  /// Byte-level fingerprint of a run — the identity the whole layer
  /// guarantees.
  static std::string Bytes(const core::L3Config& config,
                           const ResumableOptions& options,
                           const ResumableDailyResult& run) {
    return CheckpointBytes(Technique::kL3, L3Hash(config, options.tracker),
                           dataset_->num_days(), run);
  }

  static Dataset* dataset_;
};

Dataset* ResumableRunnerTest::dataset_ = nullptr;

TEST_F(ResumableRunnerTest, NoCheckpointDirMatchesPlainDailyRunner) {
  const core::L3Config config;
  auto plain = RunL3Daily(*dataset_, config);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ResumableOptions options;  // checkpoint.dir empty => disabled
  auto resumable = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(resumable.ok()) << resumable.status();

  const ResumableDailyResult& run = resumable.value();
  EXPECT_EQ(run.resume.days_loaded, 0);
  EXPECT_EQ(run.resume.days_mined, 2);
  EXPECT_EQ(run.resume.snapshots_written, 0);
  EXPECT_EQ(run.resume.resumed_from, "");
  ASSERT_EQ(run.result.daily_models.size(),
            plain.value().daily_models.size());
  for (size_t d = 0; d < run.result.daily_models.size(); ++d) {
    EXPECT_EQ(run.result.daily_models[d].pairs(),
              plain.value().daily_models[d].pairs());
    EXPECT_EQ(run.result.series.days[d].true_positives,
              plain.value().series.days[d].true_positives);
    EXPECT_EQ(run.result.series.days[d].false_positives,
              plain.value().series.days[d].false_positives);
  }
  EXPECT_EQ(run.tracker.num_observations(), 2);
}

TEST_F(ResumableRunnerTest, SecondRunLoadsEverythingAndMinesNothing) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_full");

  auto first = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first.value().resume.days_mined, 2);
  EXPECT_EQ(first.value().resume.snapshots_written, 2);

  auto second = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().resume.days_loaded, 2);
  EXPECT_EQ(second.value().resume.days_mined, 0);
  EXPECT_EQ(second.value().resume.snapshots_written, 0);
  EXPECT_NE(second.value().resume.resumed_from, "");

  EXPECT_EQ(Bytes(config, options, first.value()),
            Bytes(config, options, second.value()));
}

TEST_F(ResumableRunnerTest, KeepsOnlyConfiguredGenerations) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_prune");
  options.checkpoint.keep_generations = 2;

  auto run = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(options.checkpoint.dir)) {
    files.push_back(entry.path().filename().string());
  }
  // 2 days => generations 1 and 2, both within the keep window.
  EXPECT_EQ(files.size(), 2u);
}

TEST_F(ResumableRunnerTest, ConfigChangeRefusesToResume) {
  core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_config_mismatch");
  ASSERT_TRUE(RunL3DailyResumable(*dataset_, config, options).ok());

  config.min_citations += 1;  // result-relevant change
  auto resumed = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ResumableRunnerTest, ThreadCountChangeResumesFine) {
  core::L3Config config;
  config.num_threads = 1;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_threads");
  auto first = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(first.ok());

  config.num_threads = 0;  // excluded from the fingerprint (PR 1 contract)
  auto second = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().resume.days_loaded, 2);
}

TEST_F(ResumableRunnerTest, TrackerConfigChangeRefusesToResume) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_tracker_mismatch");
  ASSERT_TRUE(RunL3DailyResumable(*dataset_, config, options).ok());

  options.tracker.confirm_after += 1;
  auto resumed = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ResumableRunnerTest, TruncatedNewestGenerationFallsBack) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_truncated");

  auto reference = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(reference.ok());

  // Truncate the newest generation in place (simulated torn write that
  // somehow reached the final path).
  const fs::path newest = fs::path(options.checkpoint.dir) / "ckpt-000002.snap";
  ASSERT_TRUE(fs::exists(newest));
  const auto full_size = fs::file_size(newest);
  fs::resize_file(newest, full_size / 2);

  auto recovered = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GE(recovered.value().resume.generations_discarded, 1);
  EXPECT_EQ(recovered.value().resume.days_loaded, 1);  // fell back to gen 1
  EXPECT_EQ(recovered.value().resume.days_mined, 1);   // re-mined day 2
  EXPECT_EQ(Bytes(config, options, reference.value()),
            Bytes(config, options, recovered.value()));
}

TEST_F(ResumableRunnerTest, GarbageNewestGenerationFallsBack) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_garbage");
  auto reference = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(reference.ok());

  {
    std::ofstream out(
        fs::path(options.checkpoint.dir) / "ckpt-000099.snap",
        std::ios::binary);
    out << "this is not a snapshot";
  }
  auto recovered = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GE(recovered.value().resume.generations_discarded, 1);
  EXPECT_EQ(recovered.value().resume.days_loaded, 2);
  EXPECT_EQ(Bytes(config, options, reference.value()),
            Bytes(config, options, recovered.value()));
}

TEST_F(ResumableRunnerTest, PreCancelledTokenReturnsCancelled) {
  CancelToken cancel;
  cancel.Cancel();
  ResumableOptions options;
  options.cancel = &cancel;
  auto run = RunL3DailyResumable(*dataset_, core::L3Config{}, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);

  DailyRunOptions daily;
  daily.cancel = &cancel;
  auto plain = RunL3Daily(*dataset_, core::L3Config{}, daily);
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kCancelled);
}

TEST_F(ResumableRunnerTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  ResumableOptions options;
  options.deadline_ms = -1;
  auto run = RunL3DailyResumable(*dataset_, core::L3Config{}, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);

  DailyRunOptions daily;
  daily.deadline_ms = -1;
  for (auto technique : {1, 2, 3}) {
    Status status = Status::OK();
    if (technique == 1) {
      status = RunL1Daily(*dataset_, core::L1Config{}, daily).status();
    } else if (technique == 2) {
      status =
          RunL2Daily(*dataset_, core::L2Config{}, nullptr, daily).status();
    } else {
      status = RunL3Daily(*dataset_, core::L3Config{}, daily).status();
    }
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
        << "technique L" << technique;
  }
}

TEST_F(ResumableRunnerTest, CancelledProgressIsCheckpointedAndResumable) {
  // Kill after day 1's checkpoint via the injector, then finish without
  // it: the second run loads day 1 and mines only day 2.
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_partial");
  sim::CrashInjector injector(
      sim::CrashPlan{sim::KillPoint::kAfterCheckpoint, 0});
  options.crash = &injector;

  auto killed = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(killed.status().code(), StatusCode::kInternal);

  options.crash = nullptr;
  auto finished = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(finished.ok()) << finished.status();
  EXPECT_EQ(finished.value().resume.days_loaded, 1);
  EXPECT_EQ(finished.value().resume.days_mined, 1);

  ResumableOptions clean;
  auto uninterrupted = RunL3DailyResumable(*dataset_, config, clean);
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(Bytes(config, options, uninterrupted.value()),
            Bytes(config, options, finished.value()));
}

TEST_F(ResumableRunnerTest, ObsContextReceivesCheckpointMetricsAndSnapshot) {
  const core::L3Config config;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_obs");
  obs::ObsContext context;
  // The snapshot writer and the day runners report through the global
  // context; install it the way the demo and bench binaries do.
  obs::ScopedGlobalObs scoped(&context);
  options.obs = &context;

  auto first = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first.value().metrics.has_value());
  const obs::MetricsSnapshot& cold = *first.value().metrics;
  EXPECT_EQ(cold.Value("checkpoint.snapshots_written"), 2);
  EXPECT_GT(cold.Value("checkpoint.bytes_written"), 0);
  EXPECT_EQ(cold.Value("checkpoint.snapshots_read"), 0);
  EXPECT_EQ(cold.Value("eval.days_mined"), 2);

  auto second = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(second.value().metrics.has_value());
  const obs::MetricsSnapshot& warm = *second.value().metrics;
  // The context accumulates across runs; the resume shows up as a read.
  EXPECT_EQ(warm.Value("checkpoint.snapshots_read"), 1);
  EXPECT_GT(warm.Value("checkpoint.bytes_read"), 0);
  EXPECT_EQ(warm.Value("eval.days_mined"), 2);  // nothing re-mined
  EXPECT_EQ(second.value().resume.days_loaded, 2);

  // Observability never leaks into the checkpoint identity.
  EXPECT_EQ(Bytes(config, options, first.value()),
            Bytes(config, options, second.value()));
}

TEST_F(ResumableRunnerTest, NoObsContextMeansNoSnapshotAttached) {
  const core::L3Config config;
  ResumableOptions options;  // obs left null
  auto run = RunL3DailyResumable(*dataset_, config, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run.value().metrics.has_value());
}

TEST_F(ResumableRunnerTest, SweepRunsSelectedTechniques) {
  SweepConfig config;
  config.run_l1 = false;  // L1 is the slow one; unit-level skips it
  config.l1.minlogs = 8;
  ResumableOptions options;
  options.checkpoint.dir = FreshDir("resume_sweep");

  auto sweep = RunSweepResumable(*dataset_, config, options);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_FALSE(sweep.value().l1.has_value());
  ASSERT_TRUE(sweep.value().l2.has_value());
  ASSERT_TRUE(sweep.value().l3.has_value());
  EXPECT_EQ(sweep.value().l2->resume.days_mined, 2);
  EXPECT_TRUE(
      fs::exists(fs::path(options.checkpoint.dir) / "l2" / "ckpt-000002.snap"));
  EXPECT_TRUE(
      fs::exists(fs::path(options.checkpoint.dir) / "l3" / "ckpt-000002.snap"));

  // A re-run loads both techniques wholesale.
  auto again = RunSweepResumable(*dataset_, config, options);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again.value().l2->resume.days_loaded, 2);
  EXPECT_EQ(again.value().l3->resume.days_loaded, 2);
  EXPECT_EQ(again.value().l2->resume.days_mined, 0);
  EXPECT_EQ(again.value().l3->resume.days_mined, 0);
}

}  // namespace
}  // namespace logmine::eval
