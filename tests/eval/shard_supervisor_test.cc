// Unit tests of the sharded sweep supervisor over synthetic mine
// functions: each scenario scripts exactly which shard attempts fail,
// hang or dawdle, so the retry / hedge / circuit-breaker machinery can
// be asserted deterministically without a real corpus.

#include "eval/shard_supervisor.h"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"

namespace logmine::eval {
namespace {

using core::DependencyModel;
using core::MakeUnorderedPair;
using core::ShardId;

/// The deterministic model a shard "mines": one pair naming the cell,
/// so the merged model proves which shards contributed.
DependencyModel CellModel(ShardId shard) {
  DependencyModel model;
  model.Insert(MakeUnorderedPair(
      "day" + std::to_string(shard.day),
      "range" + std::to_string(shard.range_index)));
  return model;
}

ShardMineFn CleanMiner() {
  return [](ShardId shard, const ShardContext&) -> Result<DependencyModel> {
    return CellModel(shard);
  };
}

/// Counts attempts per shard across all launches (thread-safe).
class AttemptLog {
 public:
  int Record(ShardId shard) {
    std::lock_guard<std::mutex> lock(mu_);
    return ++counts_[std::make_pair(shard.day, shard.range_index)];
  }
  int count(ShardId shard) {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_[std::make_pair(shard.day, shard.range_index)];
  }

 private:
  std::mutex mu_;
  std::map<std::pair<int, int>, int> counts_;
};

ShardSupervisorConfig FastConfig() {
  ShardSupervisorConfig config;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  config.retry.jitter = 0.0;
  config.poll_ms = 1;
  return config;
}

TEST(ShardSupervisorTest, CleanSweepCoversEveryCellAndMergesExactly) {
  const ShardGrid grid{3, 2};
  auto result = RunShardedSweep(grid, CleanMiner(), FastConfig(), 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kComplete);
  EXPECT_TRUE(result.value().merged.coverage.complete());
  EXPECT_EQ(result.value().stats.shards_completed, 6);
  EXPECT_EQ(result.value().stats.shards_poisoned, 0);
  EXPECT_EQ(result.value().stats.failures, 0);
  DependencyModel expected;
  for (int day = 0; day < 3; ++day) {
    for (int range = 0; range < 2; ++range) {
      expected = expected.Union(CellModel({day, range}));
    }
  }
  EXPECT_EQ(result.value().merged.model.pairs(), expected.pairs());
  // Per-day models hold only that day's ranges.
  EXPECT_EQ(result.value().merged.daily[1].pairs(),
            CellModel({1, 0}).Union(CellModel({1, 1})).pairs());
  ASSERT_EQ(result.value().shards.size(), 6u);
  for (const ShardReport& report : result.value().shards) {
    EXPECT_TRUE(report.covered);
    EXPECT_FALSE(report.poisoned);
    EXPECT_EQ(report.attempts, 1);
  }
}

TEST(ShardSupervisorTest, TransientFailuresRetryToByteIdenticalBytes) {
  const ShardGrid grid{2, 2};
  auto clean = RunShardedSweep(grid, CleanMiner(), FastConfig(), 7);
  ASSERT_TRUE(clean.ok());

  auto log = std::make_shared<AttemptLog>();
  ShardMineFn flaky = [log](ShardId shard,
                            const ShardContext&) -> Result<DependencyModel> {
    // Shard (1, 0) fails its first two attempts, then recovers.
    if (shard == ShardId{1, 0} && log->Record(shard) <= 2) {
      return Status::Internal("flaky worker");
    }
    return CellModel(shard);
  };
  auto retried = RunShardedSweep(grid, flaky, FastConfig(), 7);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried.value().outcome, SweepOutcome::kComplete);
  EXPECT_EQ(retried.value().stats.failures, 2);
  EXPECT_EQ(core::MergedModelBytes(retried.value().merged),
            core::MergedModelBytes(clean.value().merged));
  const ShardReport& report = retried.value().shards[2];  // (1, 0) day-major
  EXPECT_EQ(report.shard, (ShardId{1, 0}));
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.failures, 2);
  EXPECT_EQ(report.attempts, 3);
}

TEST(ShardSupervisorTest, BreakerPoisonsAfterExactlyThresholdFailures) {
  const ShardGrid grid{2, 1};
  auto log = std::make_shared<AttemptLog>();
  ShardMineFn doomed = [log](ShardId shard,
                             const ShardContext&) -> Result<DependencyModel> {
    if (shard.day == 1) {
      log->Record(shard);
      return Status::Internal("permanently broken");
    }
    return CellModel(shard);
  };
  ShardSupervisorConfig config = FastConfig();
  config.breaker_threshold = 4;
  config.retry.max_attempts = 2;  // forces supervisor-level resubmission
  auto result = RunShardedSweep(grid, doomed, config, 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kDegraded);
  // The breaker stopped the shard after exactly `breaker_threshold`
  // distinct failed attempts, no matter how attempts were grouped into
  // backoff runs.
  EXPECT_EQ(log->count({1, 0}), 4);
  EXPECT_EQ(result.value().stats.failures, 4);
  EXPECT_EQ(result.value().stats.breaker_trips, 1);
  EXPECT_EQ(result.value().stats.shards_poisoned, 1);
  EXPECT_GE(result.value().stats.retries, 1);
  const ShardReport& report = result.value().shards[1];
  EXPECT_TRUE(report.poisoned);
  EXPECT_FALSE(report.covered);
  EXPECT_EQ(report.failures, 4);
  EXPECT_NE(report.last_error.find("permanently broken"), std::string::npos);
  // Coverage names exactly the poisoned cell.
  const auto missing = result.value().merged.coverage.MissingCells();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], std::make_pair(1, 0));
}

TEST(ShardSupervisorTest, NonRetryableFailurePoisonsImmediately) {
  const ShardGrid grid{2, 1};
  auto log = std::make_shared<AttemptLog>();
  ShardMineFn broken = [log](ShardId shard,
                             const ShardContext&) -> Result<DependencyModel> {
    if (shard.day == 0) {
      log->Record(shard);
      return Status::InvalidArgument("config rejects this shard");
    }
    return CellModel(shard);
  };
  auto result = RunShardedSweep(grid, broken, FastConfig(), 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kDegraded);
  // No retries for a deterministic failure: one attempt, quarantined.
  EXPECT_EQ(log->count({0, 0}), 1);
  EXPECT_EQ(result.value().stats.retries, 0);
  EXPECT_EQ(result.value().stats.breaker_trips, 0);
  EXPECT_TRUE(result.value().shards[0].poisoned);
}

TEST(ShardSupervisorTest, AllShardsPoisonedIsAFailedSweep) {
  ShardMineFn hopeless = [](ShardId,
                            const ShardContext&) -> Result<DependencyModel> {
    return Status::InvalidArgument("nothing works");
  };
  auto result = RunShardedSweep(ShardGrid{2, 2}, hopeless, FastConfig(), 7);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("all 4 shards poisoned"),
            std::string::npos);
}

TEST(ShardSupervisorTest, DeadlineExceededIsRetryableByDefault) {
  const ShardGrid grid{1, 2};
  auto log = std::make_shared<AttemptLog>();
  ShardMineFn slow_start = [log](
                               ShardId shard,
                               const ShardContext&) -> Result<DependencyModel> {
    // First attempt of (0, 1) trips its deadline; the retry succeeds.
    if (shard == ShardId{0, 1} && log->Record(shard) == 1) {
      return Status::DeadlineExceeded("shard deadline tripped");
    }
    return CellModel(shard);
  };
  auto result = RunShardedSweep(grid, slow_start, FastConfig(), 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kComplete);
  EXPECT_EQ(log->count({0, 1}), 2);
  EXPECT_EQ(result.value().stats.failures, 1);
}

TEST(ShardSupervisorTest, CustomRetryPredicateNarrowsTheDefault) {
  // With a kInternal-only predicate installed, a deadline trip is fatal.
  const ShardGrid grid{1, 2};
  ShardMineFn trips = [](ShardId shard,
                         const ShardContext&) -> Result<DependencyModel> {
    if (shard.range_index == 1) {
      return Status::DeadlineExceeded("always late");
    }
    return CellModel(shard);
  };
  ShardSupervisorConfig config = FastConfig();
  config.retry.retryable = IsRetryable;  // kInternal only
  auto result = RunShardedSweep(grid, trips, config, 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kDegraded);
  EXPECT_EQ(result.value().shards[1].attempts, 1);
  EXPECT_TRUE(result.value().shards[1].poisoned);
}

TEST(ShardSupervisorTest, HedgeRescuesAStuckShard) {
  // Shard (0, 2)'s first attempt blocks until its cancel token fires —
  // only a winning hedge can release it. Success therefore proves the
  // hedge launched, won, and cancelled the stuck twin.
  const ShardGrid grid{1, 3};
  auto log = std::make_shared<AttemptLog>();
  ShardMineFn sticky = [log](ShardId shard,
                             const ShardContext& context)
      -> Result<DependencyModel> {
    if (shard == ShardId{0, 2} && log->Record(shard) == 1) {
      while (context.cancel != nullptr && !context.cancel->cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::Cancelled("first attempt lost the hedge race");
    }
    return CellModel(shard);
  };
  // A private pool with enough workers that the hedge can run while the
  // stuck attempt occupies a thread.
  Executor executor(4);
  ShardSupervisorConfig config = FastConfig();
  config.executor = &executor;
  config.min_hedge_completions = 2;  // the two clean shards qualify
  config.hedge_factor = 1.0;
  config.hedge_min_ms = 5;
  auto result = RunShardedSweep(grid, sticky, config, 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kComplete);
  EXPECT_EQ(result.value().stats.hedges_launched, 1);
  EXPECT_EQ(result.value().stats.hedges_won, 1);
  EXPECT_EQ(result.value().shards[2].hedges, 1);
  // The stuck attempt's Cancelled return is not a failure.
  EXPECT_EQ(result.value().stats.failures, 0);
}

TEST(ShardSupervisorTest, MaxInFlightThrottlesFirstLaunches) {
  auto peak = std::make_shared<std::atomic<int>>(0);
  auto running = std::make_shared<std::atomic<int>>(0);
  ShardMineFn tracked = [peak, running](
                            ShardId shard,
                            const ShardContext&) -> Result<DependencyModel> {
    const int now = running->fetch_add(1) + 1;
    int seen = peak->load();
    while (now > seen && !peak->compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    running->fetch_sub(1);
    return CellModel(shard);
  };
  Executor executor(8);
  ShardSupervisorConfig config = FastConfig();
  config.executor = &executor;
  config.max_in_flight = 2;
  auto result = RunShardedSweep(ShardGrid{4, 2}, tracked, config, 7);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().outcome, SweepOutcome::kComplete);
  EXPECT_LE(peak->load(), 2);
}

TEST(ShardSupervisorTest, RejectsBadGridsAndConfigs) {
  EXPECT_FALSE(RunShardedSweep(ShardGrid{0, 1}, CleanMiner(), {}, 7).ok());
  EXPECT_FALSE(RunShardedSweep(ShardGrid{1, 0}, CleanMiner(), {}, 7).ok());
  EXPECT_FALSE(RunShardedSweep(ShardGrid{1, 1}, ShardMineFn(), {}, 7).ok());
  ShardSupervisorConfig config;
  config.breaker_threshold = 0;
  EXPECT_FALSE(RunShardedSweep(ShardGrid{1, 1}, CleanMiner(), config, 7).ok());
}

TEST(ShardSupervisorTest, SweepOutcomeNamesAreStable) {
  EXPECT_EQ(SweepOutcomeName(SweepOutcome::kComplete), "complete");
  EXPECT_EQ(SweepOutcomeName(SweepOutcome::kDegraded), "degraded");
  EXPECT_EQ(SweepOutcomeName(SweepOutcome::kFailed), "failed");
}

TEST(ShardSupervisorTest, MetricsMirrorTheSweepStats) {
  obs::ObsContext obs;
  auto log = std::make_shared<AttemptLog>();
  ShardMineFn flaky = [log](ShardId shard,
                            const ShardContext&) -> Result<DependencyModel> {
    if (shard == ShardId{0, 0} && log->Record(shard) == 1) {
      return Status::Internal("one flake");
    }
    return CellModel(shard);
  };
  ShardSupervisorConfig config = FastConfig();
  config.obs = &obs;
  auto result = RunShardedSweep(ShardGrid{1, 2}, flaky, config, 7);
  ASSERT_TRUE(result.ok()) << result.status();
  const obs::MetricsSnapshot snapshot = obs.metrics().Snapshot();
  EXPECT_EQ(snapshot.Value("shard.attempts"), 3);
  EXPECT_EQ(snapshot.Value("shard.failures"), 1);
  EXPECT_EQ(snapshot.Value("shard.completed"), 2);
  EXPECT_EQ(snapshot.Value("shard.poisoned"), 0);
  EXPECT_EQ(snapshot.Value("sweep.coverage_permille"), 1000);
}

}  // namespace
}  // namespace logmine::eval
