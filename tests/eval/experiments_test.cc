// Integration tests of the experiment harness on a reduced corpus:
// 2 days at 30% volume (one weekday-ish pair of days). These check the
// *machinery* (windowing, differencing, regression plumbing); the full
// paper-shape assertions live in tests/integration/paper_shape_test.cc.

#include <sstream>

#include <gtest/gtest.h>

#include "core/agrawal_miner.h"
#include "core/l2_direction.h"
#include "eval/daily_runner.h"
#include "eval/dataset.h"
#include "eval/load_experiment.h"
#include "eval/report.h"
#include "eval/timeout_experiment.h"
#include "log/slct.h"

namespace logmine::eval {
namespace {

class ExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.simulation.num_days = 2;
    config.simulation.scale = 0.3;
    auto built = BuildDataset(config);
    ASSERT_TRUE(built.ok()) << built.status();
    dataset_ = new Dataset(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* ExperimentsTest::dataset_ = nullptr;

TEST_F(ExperimentsTest, L3DailyRunnerProducesPerDayCounts) {
  auto result = RunL3Daily(*dataset_, core::L3Config{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().series.days.size(), 2u);
  EXPECT_EQ(result.value().series.day_labels[0], "2005-12-06");
  for (const core::ConfusionCounts& day : result.value().series.days) {
    EXPECT_GT(day.true_positives, 50);
    EXPECT_GT(day.tp_ratio(), 0.8);  // L3 is precise even at small scale
  }
  EXPECT_GE(result.value().UnionModel().size(),
            static_cast<size_t>(
                result.value().series.days[0].positives()));
}

TEST_F(ExperimentsTest, L2DailyRunnerReportsSessionStats) {
  std::vector<core::SessionBuildStats> stats;
  auto result = RunL2Daily(*dataset_, core::L2Config{}, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(stats.size(), 2u);
  for (const core::SessionBuildStats& day : stats) {
    EXPECT_GT(day.num_sessions, 20u);
    EXPECT_GT(day.assigned_fraction, 0.02);
    EXPECT_LT(day.assigned_fraction, 0.2);
  }
}

TEST_F(ExperimentsTest, L1DailyRunnerFindsSomething) {
  core::L1Config config;
  config.minlogs = 20;  // scaled corpus
  auto result = RunL1Daily(*dataset_, config);
  ASSERT_TRUE(result.ok());
  for (const core::ConfusionCounts& day : result.value().series.days) {
    EXPECT_GT(day.true_positives, 3);
    EXPECT_GT(day.tp_ratio(), 0.45);
  }
}

TEST_F(ExperimentsTest, TpRatioCiNeedsEnoughDays) {
  auto result = RunL3Daily(*dataset_, core::L3Config{});
  ASSERT_TRUE(result.ok());
  // Two days cannot support a 98% order-statistics CI.
  EXPECT_FALSE(result.value().TpRatioCi(0.98).ok());
  // A modest level works: [min, max] of 2 days covers 50%.
  EXPECT_TRUE(result.value().TpRatioCi(0.4).ok());
}

TEST_F(ExperimentsTest, TimeoutExperimentDifferencesAndSweep) {
  auto experiment = RunTimeoutExperiment(*dataset_, core::L2Config{},
                                         {300, 1000}, 0.4);
  ASSERT_TRUE(experiment.ok());
  ASSERT_EQ(experiment.value().rows.size(), 2u);
  ASSERT_EQ(experiment.value().daily.size(), 3u);  // 2 finite + infinity
  for (const TimeoutRow& row : experiment.value().rows) {
    // Timeouts must not *increase* the absolute TP count.
    EXPECT_LE(row.tp_diff_median, 0.0);
    EXPECT_GE(row.wilcoxon_p_tp, 0.0);
    EXPECT_LE(row.wilcoxon_p_tpr, 1.0);
  }

  auto sweep =
      RunTimeoutSweepOneDay(*dataset_, core::L2Config{}, 1, {100, 1000, 0});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep.value().size(), 3u);
  // A 0.1 s timeout keeps strictly fewer positives than no timeout.
  EXPECT_LT(sweep.value()[0].positives(), sweep.value()[2].positives());
  EXPECT_FALSE(
      RunTimeoutSweepOneDay(*dataset_, core::L2Config{}, 9, {100}).ok());
}

TEST_F(ExperimentsTest, LoadExperimentProducesHourlySeries) {
  LoadExperimentConfig config;
  config.l1.minlogs = 10;
  config.min_realized = 3;
  auto result = RunLoadExperiment(*dataset_, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().hours.size(), 24u);
  for (const HourPoint& hour : result.value().hours) {
    EXPECT_GE(hour.p1, 0.0);
    EXPECT_LE(hour.p1, 1.0);
    EXPECT_GE(hour.p2, 0.0);
    EXPECT_LE(hour.p2, 1.0);
    EXPECT_GE(hour.realized, config.min_realized);
    EXPECT_GT(hour.num_logs, 0);
  }
  EXPECT_EQ(result.value().fit_p1.n,
            static_cast<int>(result.value().hours.size()));
  EXPECT_GT(result.value().qq_correlation_p1, 0.8);
}

TEST_F(ExperimentsTest, LoadExperimentHonorsExplicitExclusions) {
  LoadExperimentConfig config;
  config.min_realized = 1;
  config.excluded_apps = {"DPIFormidoc"};
  auto result = RunLoadExperiment(*dataset_, config);
  ASSERT_TRUE(result.ok());
  // No assertion on values — just exercising the exclusion path; the
  // scenario-default path is covered above.
  EXPECT_FALSE(result.value().hours.empty());
}

TEST_F(ExperimentsTest, AgrawalBaselineFindsDependenciesOnCorpus) {
  core::AgrawalConfig config;
  config.minlogs = 10;
  core::AgrawalDelayMiner miner(config);
  auto result = miner.Mine(dataset_->store, dataset_->day_begin(0),
                           dataset_->day_end(0));
  ASSERT_TRUE(result.ok());
  const core::ConfusionCounts counts = core::Evaluate(
      result.value().Dependencies(dataset_->store),
      dataset_->reference_pairs, dataset_->universe_pairs);
  EXPECT_GT(counts.true_positives, 5);
  EXPECT_GT(counts.tp_ratio(), 0.4);
}

TEST_F(ExperimentsTest, DirectionRecoveryBeatsCoinFlipOnCorpus) {
  core::L2CooccurrenceMiner l2{core::L2Config{}};
  auto mined = l2.Mine(dataset_->store, dataset_->store.min_ts(),
                       dataset_->store.max_ts() + 1);
  ASSERT_TRUE(mined.ok());
  std::vector<std::pair<LogStore::SourceId, LogStore::SourceId>> pairs;
  for (const core::L2PairScore& score : mined.value().scored) {
    if (score.dependent) pairs.push_back({score.a, score.b});
  }
  ASSERT_GT(pairs.size(), 10u);

  std::map<core::NamePair, std::string> true_caller;
  for (const sim::InvocationEdge& edge : dataset_->scenario.topology.edges) {
    true_caller[core::MakeUnorderedPair(
        dataset_->scenario.topology.apps[static_cast<size_t>(edge.caller)]
            .name,
        dataset_->scenario.topology.apps[static_cast<size_t>(edge.callee)]
            .name)] =
        dataset_->scenario.topology.apps[static_cast<size_t>(edge.caller)]
            .name;
  }
  core::SessionBuilder builder{core::SessionBuilderConfig{}};
  const auto sessions =
      builder.Build(dataset_->store, dataset_->store.min_ts(),
                    dataset_->store.max_ts() + 1, nullptr);
  core::L2DirectionDetector detector{core::DirectionConfig{}};
  int correct = 0, wrong = 0;
  for (const core::DirectionEstimate& estimate :
       detector.Estimate(sessions, pairs)) {
    if (estimate.direction == core::CallDirection::kUndecided) continue;
    const core::NamePair pair = core::MakeUnorderedPair(
        dataset_->store.source_name(estimate.a),
        dataset_->store.source_name(estimate.b));
    auto truth = true_caller.find(pair);
    if (truth == true_caller.end()) continue;
    const std::string predicted =
        estimate.direction == core::CallDirection::kAToB
            ? std::string(dataset_->store.source_name(estimate.a))
            : std::string(dataset_->store.source_name(estimate.b));
    (predicted == truth->second ? correct : wrong) += 1;
  }
  EXPECT_GT(correct + wrong, 5);
  EXPECT_GT(correct, 2 * wrong);  // far better than a coin flip
}

TEST_F(ExperimentsTest, SlctMinesTemplatesFromTheCorpus) {
  SlctClusterer clusterer(SlctConfig{.support = 20, .max_words = 24});
  auto source = dataset_->store.FindSource("DPIPublication");
  ASSERT_TRUE(source.ok());
  const SlctResult result = clusterer.ClusterSource(
      dataset_->store, source.value(), dataset_->store.min_ts(),
      dataset_->store.max_ts() + 1);
  EXPECT_GT(result.templates.size(), 5u);
  // Templates cover the overwhelming majority of the app's messages.
  EXPECT_LT(static_cast<double>(result.outliers) /
                static_cast<double>(result.messages),
            0.2);
}

TEST_F(ExperimentsTest, ReportHelpersRender) {
  auto result = RunL3Daily(*dataset_, core::L3Config{});
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  PrintDailyFigure("Figure 8 (test)", result.value().series, os);
  EXPECT_NE(os.str().find("Figure 8 (test)"), std::string::npos);
  EXPECT_NE(os.str().find("2005-12-06"), std::string::npos);
  EXPECT_NE(os.str().find('#'), std::string::npos);

  stats::MedianCi ci;
  ci.median = 0.7;
  ci.lower = 0.6;
  ci.upper = 0.8;
  ci.coverage = 0.984375;
  EXPECT_EQ(FormatCi(ci, 2), "0.70 [0.60, 0.80] (level 0.9844)");

  stats::LinearFit fit;
  fit.slope = -0.25;
  fit.slope_ci_lo = -0.3;
  fit.slope_ci_hi = -0.2;
  EXPECT_EQ(FormatSlopeCi(fit, 2), "-0.25 [-0.30, -0.20]");
}

}  // namespace
}  // namespace logmine::eval
