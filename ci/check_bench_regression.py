#!/usr/bin/env python3
"""Fails CI when the L1 hot path regresses against the checked-in baseline.

Compares ``l1.ns_per_log`` at 8 threads from a fresh ``perf_pipeline``
report against ``ci/bench_baseline.json``. Raw ns/log is machine
dependent, so the comparison is normalized by the seed-style serial
reference time measured in the *same* run on both sides: a runner that
is 2x slower overall is 2x slower on the reference too, and the ratio
cancels the machine out. The guard trips only when the normalized L1
cost grew by more than ``--tolerance`` (default 20%).

Also asserts the two correctness flags the bench computes:
``results_match_seed_reference`` and
``l1_pruning.pruned_matches_unpruned`` must both be true — a fast but
wrong hot path must never pass.

Usage: check_bench_regression.py --current BENCH_pipeline.json \
           [--baseline ci/bench_baseline.json] [--tolerance 0.20]
"""

import argparse
import json
import sys


def l1_cost(report: dict) -> float:
    """Normalized L1 cost: ns/log at 8 threads over the serial reference."""
    ns_per_log = report["l1"]["8"]["ns_per_log"]
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return ns_per_log / reference_ms


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", default="ci/bench_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    if not current.get("results_match_seed_reference"):
        failures.append("results_match_seed_reference is false")
    pruning = current.get("l1_pruning", {})
    if not pruning.get("pruned_matches_unpruned"):
        failures.append("l1_pruning.pruned_matches_unpruned is false")

    base = l1_cost(baseline)
    cur = l1_cost(current)
    growth = cur / base - 1.0
    print(
        f"l1.ns_per_log@8 (reference-normalized): baseline {base:.4f}, "
        f"current {cur:.4f}, growth {growth * 100.0:+.1f}% "
        f"(tolerance {args.tolerance * 100.0:.0f}%)"
    )
    if growth > args.tolerance:
        failures.append(
            f"normalized l1.ns_per_log at 8 threads regressed "
            f"{growth * 100.0:.1f}% > {args.tolerance * 100.0:.0f}%"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
