#!/usr/bin/env python3
"""Fails CI when the L1 hot path regresses against the checked-in baseline.

Compares ``l1.ns_per_log`` at 8 threads from a fresh ``perf_pipeline``
report against ``ci/bench_baseline.json``. Raw ns/log is machine
dependent, so the comparison is normalized by the seed-style serial
reference time measured in the *same* run on both sides: a runner that
is 2x slower overall is 2x slower on the reference too, and the ratio
cancels the machine out. The guard trips only when the normalized L1
cost grew by more than ``--tolerance`` (default 20%).

Also asserts the correctness flags the bench computes:
``results_match_seed_reference`` and
``l1_pruning.pruned_matches_unpruned`` must both be true — a fast but
wrong hot path must never pass. When both reports carry a ``sweep``
section (the sharded-sweep supervisor bench), the fault-free sweep must
additionally be complete (coverage 1.0) and byte-equivalent to the
unsliced mine (``model_matches_unsharded``), and its wall time is held
to the same normalized-growth tolerance as the L1 hot path.

When the current report carries an ``obs`` section, the telemetry tax
is additionally held to an absolute budget: the fully instrumented
end-to-end run (metrics + sketches + journal + probe, globally
installed) may cost at most ``--obs-budget`` (default 3%) over the
uninstrumented run measured in the same report. Unlike the hot-path
guards this is not baseline-relative — the budget is the contract.

Usage: check_bench_regression.py --current BENCH_pipeline.json \
           [--baseline ci/bench_baseline.json] [--tolerance 0.20] \
           [--obs-budget 0.03]
"""

import argparse
import json
import sys


def l1_cost(report: dict) -> float:
    """Normalized L1 cost: ns/log at 8 threads over the serial reference."""
    ns_per_log = report["l1"]["8"]["ns_per_log"]
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return ns_per_log / reference_ms


def sweep_cost(report: dict) -> float:
    """Normalized sharded-sweep cost: sweep ms over the serial reference."""
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return report["sweep"]["ms"] / reference_ms


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", default="ci/bench_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--obs-budget", type=float, default=0.03)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    if not current.get("results_match_seed_reference"):
        failures.append("results_match_seed_reference is false")
    pruning = current.get("l1_pruning", {})
    if not pruning.get("pruned_matches_unpruned"):
        failures.append("l1_pruning.pruned_matches_unpruned is false")

    base = l1_cost(baseline)
    cur = l1_cost(current)
    growth = cur / base - 1.0
    print(
        f"l1.ns_per_log@8 (reference-normalized): baseline {base:.4f}, "
        f"current {cur:.4f}, growth {growth * 100.0:+.1f}% "
        f"(tolerance {args.tolerance * 100.0:.0f}%)"
    )
    if growth > args.tolerance:
        failures.append(
            f"normalized l1.ns_per_log at 8 threads regressed "
            f"{growth * 100.0:.1f}% > {args.tolerance * 100.0:.0f}%"
        )

    # Sharded-sweep supervisor section: only checked when both sides
    # have it, so an old baseline stays comparable.
    sweep = current.get("sweep")
    if sweep is not None:
        if not sweep.get("model_matches_unsharded"):
            failures.append("sweep.model_matches_unsharded is false")
        if sweep.get("coverage") != 1.0:
            failures.append(
                f"fault-free sweep coverage is {sweep.get('coverage')}, "
                f"expected 1.0"
            )
        if "sweep" in baseline:
            sweep_base = sweep_cost(baseline)
            sweep_cur = sweep_cost(current)
            sweep_growth = sweep_cur / sweep_base - 1.0
            print(
                f"sweep.ms (reference-normalized): baseline "
                f"{sweep_base:.4f}, current {sweep_cur:.4f}, growth "
                f"{sweep_growth * 100.0:+.1f}% "
                f"(tolerance {args.tolerance * 100.0:.0f}%)"
            )
            if sweep_growth > args.tolerance:
                failures.append(
                    f"normalized sharded-sweep time regressed "
                    f"{sweep_growth * 100.0:.1f}% > "
                    f"{args.tolerance * 100.0:.0f}%"
                )

    # Telemetry budget: the instrumented run in the current report must
    # stay within the absolute overhead budget. Negative fractions
    # (instrumented run measured faster — noise) are fine.
    obs = current.get("obs")
    if obs is not None:
        overhead = obs.get("overhead_fraction")
        if overhead is None:
            failures.append("obs section has no overhead_fraction")
        else:
            print(
                f"obs.overhead_fraction: {overhead * 100.0:+.2f}% "
                f"(budget {args.obs_budget * 100.0:.0f}%)"
            )
            if overhead > args.obs_budget:
                failures.append(
                    f"telemetry overhead {overhead * 100.0:.2f}% exceeds "
                    f"the {args.obs_budget * 100.0:.0f}% budget"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
