#!/usr/bin/env python3
"""Fails CI when the L1 hot path regresses against the checked-in baseline.

Compares ``l1.ns_per_log`` at 8 threads from a fresh ``perf_pipeline``
report against ``ci/bench_baseline.json``. Raw ns/log is machine
dependent, so the comparison is normalized by the seed-style serial
reference time measured in the *same* run on both sides: a runner that
is 2x slower overall is 2x slower on the reference too, and the ratio
cancels the machine out. The guard trips only when the normalized L1
cost grew by more than ``--tolerance`` (default 20%).

Also asserts the correctness flags the bench computes:
``results_match_seed_reference`` and
``l1_pruning.pruned_matches_unpruned`` must both be true — a fast but
wrong hot path must never pass. When both reports carry a ``sweep``
section (the sharded-sweep supervisor bench), the fault-free sweep must
additionally be complete (coverage 1.0) and byte-equivalent to the
unsliced mine (``model_matches_unsharded``), and its wall time is held
to the same normalized-growth tolerance as the L1 hot path.

When the current report carries an ``obs`` section, the telemetry tax
is additionally held to an absolute budget: the fully instrumented
end-to-end run (metrics + sketches + journal + probe, globally
installed) may cost at most ``--obs-budget`` (default 3%) over the
uninstrumented run measured in the same report. Unlike the hot-path
guards this is not baseline-relative — the budget is the contract.

When the current report carries an ``ingest`` section (the mmap +
chunked-decode + columnar corpus bench), four more guards apply:

* correctness flags ``parallel_matches_serial``,
  ``columnar_roundtrip_ok`` and ``autodetect_ok`` must all be true —
  a fast decode that produces different records must never pass;
* the columnar re-read must beat the serial text decode of the same
  corpus by ``--min-columnar-read-speedup`` (default 20x). Both sides
  are measured in the same run, so the ratio is machine independent;
* the chunked decode must beat serial by ``--min-chunked-speedup``
  (default 5x) — but only when the report's
  ``hardware_concurrency`` is at least ``--multicore-threshold``
  (default 8) cores, since parallel speedup is physically unobservable
  on the 1–2-core CI runners. The ratio guards above still hold there;
* when the baseline also has an ``ingest`` section, the
  reference-normalized text-decode and columnar-read costs are held to
  the same ``--tolerance`` growth as the L1 hot path.

Usage: check_bench_regression.py --current BENCH_pipeline.json \
           [--baseline ci/bench_baseline.json] [--tolerance 0.20] \
           [--obs-budget 0.03] [--min-columnar-read-speedup 20] \
           [--min-chunked-speedup 5] [--multicore-threshold 8]
"""

import argparse
import json
import sys


def l1_cost(report: dict) -> float:
    """Normalized L1 cost: ns/log at 8 threads over the serial reference."""
    ns_per_log = report["l1"]["8"]["ns_per_log"]
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return ns_per_log / reference_ms


def sweep_cost(report: dict) -> float:
    """Normalized sharded-sweep cost: sweep ms over the serial reference."""
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return report["sweep"]["ms"] / reference_ms


def ingest_cost(report: dict, sample: str) -> float:
    """Normalized ingest cost: ns/log of one sample over the reference."""
    reference_ms = report["seed_reference_serial"]["l2_plus_l3_ms"]
    if reference_ms <= 0:
        raise SystemExit("baseline reference time is not positive")
    return report["ingest"][sample]["ns_per_log"] / reference_ms


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", default="ci/bench_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--obs-budget", type=float, default=0.03)
    parser.add_argument("--min-columnar-read-speedup", type=float, default=20.0)
    parser.add_argument("--min-chunked-speedup", type=float, default=5.0)
    parser.add_argument("--multicore-threshold", type=int, default=8)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    if not current.get("results_match_seed_reference"):
        failures.append("results_match_seed_reference is false")
    pruning = current.get("l1_pruning", {})
    if not pruning.get("pruned_matches_unpruned"):
        failures.append("l1_pruning.pruned_matches_unpruned is false")

    base = l1_cost(baseline)
    cur = l1_cost(current)
    growth = cur / base - 1.0
    print(
        f"l1.ns_per_log@8 (reference-normalized): baseline {base:.4f}, "
        f"current {cur:.4f}, growth {growth * 100.0:+.1f}% "
        f"(tolerance {args.tolerance * 100.0:.0f}%)"
    )
    if growth > args.tolerance:
        failures.append(
            f"normalized l1.ns_per_log at 8 threads regressed "
            f"{growth * 100.0:.1f}% > {args.tolerance * 100.0:.0f}%"
        )

    # Sharded-sweep supervisor section: only checked when both sides
    # have it, so an old baseline stays comparable.
    sweep = current.get("sweep")
    if sweep is not None:
        if not sweep.get("model_matches_unsharded"):
            failures.append("sweep.model_matches_unsharded is false")
        if sweep.get("coverage") != 1.0:
            failures.append(
                f"fault-free sweep coverage is {sweep.get('coverage')}, "
                f"expected 1.0"
            )
        if "sweep" in baseline:
            sweep_base = sweep_cost(baseline)
            sweep_cur = sweep_cost(current)
            sweep_growth = sweep_cur / sweep_base - 1.0
            print(
                f"sweep.ms (reference-normalized): baseline "
                f"{sweep_base:.4f}, current {sweep_cur:.4f}, growth "
                f"{sweep_growth * 100.0:+.1f}% "
                f"(tolerance {args.tolerance * 100.0:.0f}%)"
            )
            if sweep_growth > args.tolerance:
                failures.append(
                    f"normalized sharded-sweep time regressed "
                    f"{sweep_growth * 100.0:.1f}% > "
                    f"{args.tolerance * 100.0:.0f}%"
                )

    # Telemetry budget: the instrumented run in the current report must
    # stay within the absolute overhead budget. Negative fractions
    # (instrumented run measured faster — noise) are fine.
    obs = current.get("obs")
    if obs is not None:
        overhead = obs.get("overhead_fraction")
        if overhead is None:
            failures.append("obs section has no overhead_fraction")
        else:
            print(
                f"obs.overhead_fraction: {overhead * 100.0:+.2f}% "
                f"(budget {args.obs_budget * 100.0:.0f}%)"
            )
            if overhead > args.obs_budget:
                failures.append(
                    f"telemetry overhead {overhead * 100.0:.2f}% exceeds "
                    f"the {args.obs_budget * 100.0:.0f}% budget"
                )

    # Ingest section: correctness flags, machine-independent speedup
    # ratios, and baseline-relative normalized throughput.
    ingest = current.get("ingest")
    if ingest is not None:
        for flag in ("parallel_matches_serial", "columnar_roundtrip_ok",
                     "autodetect_ok"):
            if not ingest.get(flag):
                failures.append(f"ingest.{flag} is false")

        columnar_speedup = ingest.get("columnar_read_speedup_vs_text", 0.0)
        print(
            f"ingest.columnar_read_speedup_vs_text: {columnar_speedup:.1f}x "
            f"(minimum {args.min_columnar_read_speedup:.0f}x)"
        )
        if columnar_speedup < args.min_columnar_read_speedup:
            failures.append(
                f"columnar re-read is only {columnar_speedup:.1f}x faster "
                f"than the serial text decode, expected >= "
                f"{args.min_columnar_read_speedup:.0f}x"
            )

        cores = ingest.get("hardware_concurrency", 1)
        chunked_speedup = ingest.get("chunked_speedup", 0.0)
        if cores >= args.multicore_threshold:
            print(
                f"ingest.chunked_speedup: {chunked_speedup:.1f}x on {cores} "
                f"cores (minimum {args.min_chunked_speedup:.0f}x)"
            )
            if chunked_speedup < args.min_chunked_speedup:
                failures.append(
                    f"chunked decode is only {chunked_speedup:.1f}x faster "
                    f"than serial on {cores} cores, expected >= "
                    f"{args.min_chunked_speedup:.0f}x"
                )
        else:
            print(
                f"ingest.chunked_speedup: {chunked_speedup:.1f}x on {cores} "
                f"core(s) — below the {args.multicore_threshold}-core "
                f"threshold, speedup floor not enforced"
            )

        if "ingest" in baseline:
            for sample in ("text_decode_serial", "columnar_read"):
                base_cost = ingest_cost(baseline, sample)
                cur_cost = ingest_cost(current, sample)
                sample_growth = cur_cost / base_cost - 1.0
                print(
                    f"ingest.{sample}.ns_per_log (reference-normalized): "
                    f"baseline {base_cost:.4f}, current {cur_cost:.4f}, "
                    f"growth {sample_growth * 100.0:+.1f}% "
                    f"(tolerance {args.tolerance * 100.0:.0f}%)"
                )
                if sample_growth > args.tolerance:
                    failures.append(
                        f"normalized ingest.{sample} cost regressed "
                        f"{sample_growth * 100.0:.1f}% > "
                        f"{args.tolerance * 100.0:.0f}%"
                    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
