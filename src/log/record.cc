#include "log/record.h"

namespace logmine {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kDebug:
      return "DEBUG";
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARN";
    case Severity::kError:
      return "ERROR";
  }
  return "INFO";
}

bool operator==(const LogRecord& a, const LogRecord& b) {
  return a.client_ts == b.client_ts && a.server_ts == b.server_ts &&
         a.severity == b.severity && a.source == b.source &&
         a.host == b.host && a.user == b.user && a.message == b.message;
}

}  // namespace logmine
