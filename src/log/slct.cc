#include "log/slct.h"

#include <algorithm>
#include <map>

#include "log/filter.h"

namespace logmine {
namespace {

std::vector<std::string_view> WhitespaceWords(std::string_view message,
                                              size_t max_words) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < message.size() && words.size() < max_words) {
    while (i < message.size() && message[i] == ' ') ++i;
    size_t begin = i;
    while (i < message.size() && message[i] != ' ') ++i;
    if (i > begin) words.push_back(message.substr(begin, i - begin));
  }
  return words;
}

}  // namespace

std::string LogTemplate::ToString() const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

SlctResult SlctClusterer::Cluster(
    const std::vector<std::string_view>& messages) const {
  SlctResult result;
  result.messages = static_cast<int64_t>(messages.size());

  // Pass 1: frequencies of (position, word).
  std::map<std::pair<size_t, std::string_view>, int64_t> word_counts;
  for (std::string_view message : messages) {
    const auto words = WhitespaceWords(message, config_.max_words);
    for (size_t pos = 0; pos < words.size(); ++pos) {
      ++word_counts[{pos, words[pos]}];
    }
  }

  // Pass 2: cluster candidates. The candidate key fixes the frequent
  // (position, word) pairs and the word count; infrequent positions are
  // wildcards.
  std::map<std::string, std::pair<int64_t, LogTemplate>> candidates;
  for (std::string_view message : messages) {
    const auto words = WhitespaceWords(message, config_.max_words);
    if (words.empty()) continue;
    LogTemplate tmpl;
    tmpl.tokens.reserve(words.size());
    bool any_frequent = false;
    for (size_t pos = 0; pos < words.size(); ++pos) {
      if (word_counts[{pos, words[pos]}] >= config_.support) {
        tmpl.tokens.emplace_back(words[pos]);
        any_frequent = true;
      } else {
        tmpl.tokens.emplace_back("*");
      }
    }
    if (!any_frequent) continue;  // pure-wildcard candidates are noise
    auto [it, inserted] =
        candidates.try_emplace(tmpl.ToString(), 0, std::move(tmpl));
    ++it->second.first;
  }

  int64_t clustered = 0;
  for (auto& [key, entry] : candidates) {
    if (entry.first >= config_.support) {
      entry.second.count = entry.first;
      clustered += entry.first;
      result.templates.push_back(std::move(entry.second));
    }
  }
  std::sort(result.templates.begin(), result.templates.end(),
            [](const LogTemplate& a, const LogTemplate& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.tokens < b.tokens;
            });
  result.outliers = result.messages - clustered;
  return result;
}

SlctResult SlctClusterer::ClusterSource(const LogStore& store,
                                        LogStore::SourceId source,
                                        TimeMs begin, TimeMs end) const {
  std::vector<std::string_view> messages;
  for (uint32_t idx : IndicesInRange(store, begin, end)) {
    if (store.source_id(idx) == source) {
      messages.push_back(store.message(idx));
    }
  }
  return Cluster(messages);
}

}  // namespace logmine
