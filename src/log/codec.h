#ifndef LOGMINE_LOG_CODEC_H_
#define LOGMINE_LOG_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "log/record.h"
#include "util/result.h"

namespace logmine {

/// Serializes log records to/from the pipe-separated line format used for
/// on-disk corpora and the example binaries:
///
///   client_ts|server_ts|SEVERITY|source|host|user|message
///
/// Timestamps render as "YYYY-MM-DD HH:MM:SS.mmm". Pipe, backslash and
/// newline inside string fields are escaped (`\|`, `\\`, `\n`), so any
/// message round-trips. Decode rejects malformed lines with ParseError
/// instead of guessing.
class LineCodec {
 public:
  static std::string Encode(const LogRecord& record);
  static Result<LogRecord> Decode(std::string_view line);

  /// Encodes many records, one line each, with trailing newline per line.
  static std::string EncodeAll(const std::vector<LogRecord>& records);

  /// Decodes a whole text buffer; empty lines are skipped. Fails on the
  /// first malformed line, reporting its 1-based line number.
  static Result<std::vector<LogRecord>> DecodeAll(std::string_view text);
};

}  // namespace logmine

#endif  // LOGMINE_LOG_CODEC_H_
