#ifndef LOGMINE_LOG_CODEC_H_
#define LOGMINE_LOG_CODEC_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "log/record.h"
#include "util/result.h"

namespace logmine {

/// What DecodeAll does when it meets a malformed line.
enum class DecodePolicy {
  /// Abort the whole decode on the first malformed line (the historical
  /// behaviour; the default).
  kFailFast,
  /// Skip malformed lines, recording each in `IngestStats`, and fail only
  /// when the bad-line fraction exceeds `DecodeOptions::max_bad_fraction`.
  kQuarantine,
};

/// Machine-readable class of a single-line decode failure, used to
/// aggregate `IngestStats` per error kind.
enum class IngestErrorClass {
  kBadEscape = 0,   ///< dangling or unknown backslash escape
  kFieldCount,      ///< not exactly 7 unescaped-pipe-separated fields
  kBadTimestamp,    ///< client or server timestamp failed to parse
  kBadSeverity,     ///< severity name outside DEBUG/INFO/WARN/ERROR
  kEmptySource,     ///< structurally valid line with an empty source field
  /// Malformed *unterminated* final line under
  /// `DecodeOptions::lenient_truncated_tail` — presumed cut off
  /// mid-write rather than corrupt.
  kTruncatedLine,
};
inline constexpr size_t kNumIngestErrorClasses = 6;

/// Stable human-readable name for an error class (e.g. "BadEscape").
std::string_view IngestErrorClassName(IngestErrorClass error_class);

/// Knobs of a lenient (or strict) corpus decode.
struct DecodeOptions {
  DecodePolicy policy = DecodePolicy::kFailFast;
  /// Quarantine mode only: maximum tolerated ratio of malformed to total
  /// non-blank lines. Exceeding it fails the decode (the corpus is too
  /// dirty to trust), but `IngestStats` is still fully populated.
  double max_bad_fraction = 0.0;
  /// How many offending lines to keep verbatim in `IngestStats::samples`.
  size_t max_samples = 10;
  /// When true, a malformed final line with no terminating newline is
  /// quarantined as kTruncatedLine instead of failing the decode — under
  /// *either* policy, and without counting against `max_bad_fraction`.
  /// A file a writer died on (WriteCorpusFile is atomic, but foreign
  /// corpora and live tails are not) loses at most that one cut-off
  /// line instead of the whole file. Interior damage still fails or
  /// quarantines exactly as before.
  bool lenient_truncated_tail = false;
  /// Number of chunks a `DecodeAll` buffer is split into (at newline
  /// boundaries) and decoded concurrently on the shared executor pool.
  /// 0 (the default) = one chunk per pool thread, floored so every chunk
  /// spans at least ~64 KiB — small buffers stay serial; 1 = strictly
  /// serial on the caller; n = exactly n chunks regardless of size.
  /// The decoded records, `IngestStats` (counts, per-class tallies,
  /// first-K samples with their line numbers and byte offsets), error
  /// budget judgement, and any fail-fast error are byte-identical for
  /// every chunk count: per-chunk results merge in index order, the same
  /// deterministic-merge discipline as the sharded miner counters.
  int num_chunks = 0;
};

/// One quarantined line, kept for the first-K sample in `IngestStats`.
struct QuarantinedLine {
  size_t line_number = 0;  ///< 1-based
  size_t byte_offset = 0;  ///< offset of the line start in the input
  IngestErrorClass error_class = IngestErrorClass::kFieldCount;
  std::string error;  ///< the per-line decode error message
  std::string text;   ///< the offending line, verbatim
};

/// Report of a corpus decode: how many lines were seen, decoded and
/// quarantined, broken down by error class, plus a first-K sample of the
/// offending lines. Populated by `LineCodec::DecodeAll` (and by
/// `ReadCorpusFile`) under either policy. Repeated `DecodeAll` calls
/// against the same struct *accumulate* (counts add, samples keep
/// filling up to the call's `max_samples`), so a multi-file ingest can
/// report one combined health summary; zero-initialize to start fresh.
struct IngestStats {
  size_t lines_total = 0;        ///< non-blank lines seen
  size_t records_decoded = 0;    ///< lines that produced a record
  size_t lines_quarantined = 0;  ///< malformed lines skipped
  std::array<size_t, kNumIngestErrorClasses> by_class{};
  std::vector<QuarantinedLine> samples;  ///< first-K offenders

  /// lines_quarantined / lines_total; 0 on an empty input.
  double bad_fraction() const;

  /// Adds `other`'s counts into this report; `other`'s samples are
  /// appended until `samples` holds `max_samples` entries.
  void MergeFrom(const IngestStats& other, size_t max_samples);

  /// Multi-line human-readable report (counts per class + samples).
  std::string ToString() const;
};

/// Serializes log records to/from the pipe-separated line format used for
/// on-disk corpora and the example binaries:
///
///   client_ts|server_ts|SEVERITY|source|host|user|message
///
/// Timestamps render as "YYYY-MM-DD HH:MM:SS.mmm". Pipe, backslash and
/// newline inside string fields are escaped (`\|`, `\\`, `\n`), so any
/// message round-trips. Decode rejects malformed lines with ParseError
/// instead of guessing.
class LineCodec {
 public:
  static std::string Encode(const LogRecord& record);
  static Result<LogRecord> Decode(std::string_view line);

  /// As `Decode`, but on failure also reports which error class the line
  /// falls into (when `error_class` is non-null).
  static Result<LogRecord> Decode(std::string_view line,
                                  IngestErrorClass* error_class);

  /// Encodes many records, one line each, with trailing newline per line.
  static std::string EncodeAll(const std::vector<LogRecord>& records);

  /// Decodes a whole text buffer; empty lines are skipped. Fails on the
  /// first malformed line, reporting its 1-based line number and byte
  /// offset (fail-fast policy).
  static Result<std::vector<LogRecord>> DecodeAll(std::string_view text);

  /// Policy-driven variant. Under kFailFast it behaves exactly like the
  /// overload above; under kQuarantine malformed lines are skipped and
  /// tallied, and the decode fails only when the bad-line fraction
  /// exceeds `options.max_bad_fraction` (judged on this call's lines
  /// alone). `stats`, when non-null, is *accumulated into* under both
  /// policies (under kFailFast up to the failure) — see IngestStats.
  static Result<std::vector<LogRecord>> DecodeAll(std::string_view text,
                                                  const DecodeOptions& options,
                                                  IngestStats* stats);
};

}  // namespace logmine

#endif  // LOGMINE_LOG_CODEC_H_
