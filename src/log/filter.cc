#include "log/filter.h"

#include <algorithm>
#include <cassert>

namespace logmine {

std::vector<uint32_t> IndicesInRange(const LogStore& store, TimeMs begin,
                                     TimeMs end) {
  assert(store.index_built());
  const std::vector<uint32_t>& order = store.TimeOrder();
  auto lo = std::lower_bound(order.begin(), order.end(), begin,
                             [&store](uint32_t idx, TimeMs t) {
                               return store.client_ts(idx) < t;
                             });
  auto hi = std::lower_bound(lo, order.end(), end,
                             [&store](uint32_t idx, TimeMs t) {
                               return store.client_ts(idx) < t;
                             });
  return {lo, hi};
}

std::vector<uint32_t> IndicesWhere(
    const LogStore& store,
    const std::function<bool(const LogStore&, size_t)>& predicate) {
  assert(store.index_built());
  std::vector<uint32_t> out;
  for (uint32_t idx : store.TimeOrder()) {
    if (predicate(store, idx)) out.push_back(idx);
  }
  return out;
}

LogStore SliceByTime(const LogStore& store, TimeMs begin, TimeMs end) {
  LogStore out;
  for (uint32_t idx : IndicesInRange(store, begin, end)) {
    Status s = out.Append(store.GetRecord(idx));
    assert(s.ok());
    (void)s;
  }
  out.BuildIndex();
  return out;
}

std::vector<int64_t> CountsPerSource(const LogStore& store, TimeMs begin,
                                     TimeMs end) {
  assert(store.index_built());
  std::vector<int64_t> counts(store.num_sources(), 0);
  for (size_t s = 0; s < store.num_sources(); ++s) {
    counts[s] =
        store.CountInRange(static_cast<LogStore::SourceId>(s), begin, end);
  }
  return counts;
}

}  // namespace logmine
