#ifndef LOGMINE_LOG_FILTER_H_
#define LOGMINE_LOG_FILTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "log/store.h"
#include "util/time_util.h"

namespace logmine {

/// Record indices with client_ts in [begin, end), in time order.
/// Pre-condition: store.index_built().
std::vector<uint32_t> IndicesInRange(const LogStore& store, TimeMs begin,
                                     TimeMs end);

/// Record indices (time-ordered) matching an arbitrary predicate over the
/// store row. Pre-condition: store.index_built().
std::vector<uint32_t> IndicesWhere(
    const LogStore& store,
    const std::function<bool(const LogStore&, size_t)>& predicate);

/// Copies all records of `store` with client_ts in [begin, end) into a
/// fresh store (dictionary ids are re-interned). Used by the per-day
/// evaluation runner. The result has its index built.
LogStore SliceByTime(const LogStore& store, TimeMs begin, TimeMs end);

/// Per-source log counts within [begin, end); the load measure of §4.9.
std::vector<int64_t> CountsPerSource(const LogStore& store, TimeMs begin,
                                     TimeMs end);

}  // namespace logmine

#endif  // LOGMINE_LOG_FILTER_H_
