#ifndef LOGMINE_LOG_COLUMNAR_H_
#define LOGMINE_LOG_COLUMNAR_H_

#include <string>
#include <string_view>

#include "log/store.h"
#include "util/result.h"
#include "util/snapshot.h"

namespace logmine {

/// Payload version of the columnar corpus sections. Bump when a column
/// layout changes; the container version is util/snapshot's.
inline constexpr uint32_t kColumnarVersion = 1;

/// Knobs of a columnar read.
struct ColumnarReadOptions {
  /// When false the free-text message column — usually the bulk of the
  /// file — is never decoded (and its blob never copied): every record's
  /// message reads back empty. The L1/L2 miners consume only timestamps
  /// and ids, so their load path skips the text entirely.
  bool load_messages = true;
};

/// Binary columnar corpus format
/// -----------------------------
///
/// The interchange format stays the pipe-separated text of log/codec.h;
/// this is the *fast* on-disk shape: decode once, re-read at memcpy
/// speed. It reuses the snapshot container (magic "LMSN", named
/// length-prefixed sections, footer CRC — util/snapshot.h), so any
/// truncation or bit rot is a detectable ParseError, and readers skip
/// sections they do not want. Sections:
///
///   cmeta  u32 columnar version | u64 num_records |
///          u32 num_sources | u32 num_hosts | u32 num_users
///   ctime  varint column: per record, zigzag(client_ts - prev client_ts)
///          then zigzag(server_ts - client_ts) — deltas are small, so
///          the 8-byte timestamps shrink to ~2 bytes each
///   cids   varint columns: severity, source_id, host_id+1, user_id+1
///          (0 encodes the kNoHost / kNoUser sentinel)
///   cdict  the three intern dictionaries, length-prefixed strings
///   ctext  varint message lengths, then the concatenated message blob —
///          last and self-contained so a reader can skip the text column
///          without touching its bytes
///
/// A text corpus and its columnar encoding are losslessly convertible in
/// both directions: decode text -> LogStore -> EncodeColumnar, and
/// DecodeColumnar -> LogStore -> LineCodec::EncodeAll reproduce each
/// other record-for-record (dictionary ids follow first-appearance
/// order, the same order text ingest interns them).

/// Serializes `store`'s columns (records + dictionaries; indexes are
/// rebuilt on load) into a finished snapshot container.
std::string EncodeColumnar(const LogStore& store);

/// Parses a buffer produced by `EncodeColumnar` back into a store.
/// ParseError on any corruption (bad CRC, truncated section, id out of
/// range); FailedPrecondition on a version mismatch.
Result<LogStore> DecodeColumnar(std::string bytes,
                                const ColumnarReadOptions& options = {});

/// Composable halves of Encode/DecodeColumnar, for writers that embed
/// the corpus sections in a larger snapshot (the eval dataset cache adds
/// its own sections alongside). `AppendColumnarSections` must be called
/// between sections, not inside one.
void AppendColumnarSections(const LogStore& store, SnapshotWriter* writer);
Result<LogStore> DecodeColumnarSections(const SnapshotReader& reader,
                                        const ColumnarReadOptions& options);

/// Writes `store` to `path` in columnar form, atomically and durably
/// (util/snapshot's WriteFileAtomic discipline).
Status WriteColumnarFile(const std::string& path, const LogStore& store);

/// Reads a columnar corpus file. NotFound when absent; ParseError when
/// corrupt.
Result<LogStore> ReadColumnarFile(const std::string& path,
                                  const ColumnarReadOptions& options = {});

/// True when `bytes` starts with the snapshot container magic — the
/// format autodetection ReadCorpusFile uses: columnar corpora start
/// with "LMSN", text corpora with a timestamp digit.
bool LooksColumnar(std::string_view bytes);

}  // namespace logmine

#endif  // LOGMINE_LOG_COLUMNAR_H_
