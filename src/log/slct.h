#ifndef LOGMINE_LOG_SLCT_H_
#define LOGMINE_LOG_SLCT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "log/store.h"
#include "util/time_util.h"

namespace logmine {

/// A mined message template: fixed words at fixed positions, "*" where
/// the cluster's messages vary.
struct LogTemplate {
  std::vector<std::string> tokens;
  int64_t count = 0;

  /// Renders "request processed in * ms".
  std::string ToString() const;
};

/// SLCT parameters.
struct SlctConfig {
  /// A (position, word) pair or candidate template must occur at least
  /// this often to survive.
  int64_t support = 10;
  /// Messages longer than this many words are truncated for clustering.
  size_t max_words = 32;
};

/// Clustering outcome.
struct SlctResult {
  std::vector<LogTemplate> templates;  ///< sorted by descending count
  int64_t outliers = 0;  ///< messages not matching any template
  int64_t messages = 0;
};

/// Simple Logfile Clustering Tool (Vaarandi 2003), the log-message
/// clustering algorithm the paper cites as a candidate preprocessing
/// step for its miners (§2.2, §5): two passes over the data — first
/// count (position, word) frequencies, then form a cluster candidate per
/// message from its frequent words and keep candidates with enough
/// support.
class SlctClusterer {
 public:
  explicit SlctClusterer(SlctConfig config) : config_(config) {}

  /// Clusters free-text messages (whitespace word tokenization).
  SlctResult Cluster(const std::vector<std::string_view>& messages) const;

  /// Convenience: clusters the messages of one source in [begin, end).
  /// Pre-condition: store.index_built().
  SlctResult ClusterSource(const LogStore& store, LogStore::SourceId source,
                           TimeMs begin, TimeMs end) const;

 private:
  SlctConfig config_;
};

}  // namespace logmine

#endif  // LOGMINE_LOG_SLCT_H_
