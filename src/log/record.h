#ifndef LOGMINE_LOG_RECORD_H_
#define LOGMINE_LOG_RECORD_H_

#include <string>
#include <string_view>

#include "util/time_util.h"

namespace logmine {

/// Severity of a log message. The miners ignore severity, but the
/// simulator emits realistic mixes and the codec round-trips it.
enum class Severity {
  kDebug = 0,
  kInfo,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity severity);

/// A single entry of the centralized logging system.
///
/// Mirrors the paper's HUG log schema: two timestamps with 1 ms
/// resolution (client-side creation — the one the miners use, because the
/// server-side one is distorted by client buffering), a structured source
/// identifier, optional user/workstation context (present on the minority
/// of logs that can be tied to a user session), and a free-text message.
struct LogRecord {
  TimeMs client_ts = 0;  ///< creation time on the emitting machine
  TimeMs server_ts = 0;  ///< reception time at the log server
  Severity severity = Severity::kInfo;
  std::string source;    ///< emitting application or module
  std::string host;      ///< client machine / server name (may be empty)
  std::string user;      ///< user id (empty when no session context)
  std::string message;   ///< unstructured free text
};

bool operator==(const LogRecord& a, const LogRecord& b);

}  // namespace logmine

#endif  // LOGMINE_LOG_RECORD_H_
