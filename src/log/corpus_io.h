#ifndef LOGMINE_LOG_CORPUS_IO_H_
#define LOGMINE_LOG_CORPUS_IO_H_

#include <string>

#include "log/codec.h"
#include "log/store.h"
#include "util/result.h"

namespace logmine {

/// Writes all records of `store` to `path` in the line format
/// (LineCodec), one record per line, in time order when the index is
/// built (insertion order otherwise).
///
/// Crash-safe: the data is written to a temporary file in the same
/// directory and renamed into place, so an interrupted run leaves either
/// the previous corpus or the complete new one — never a truncated file
/// that a later lenient read would silently half-load.
Status WriteCorpusFile(const LogStore& store, const std::string& path);

/// Reads a corpus written by `WriteCorpusFile` (or any line-format file)
/// into a fresh store with its index built. Fail-fast: the first
/// malformed line aborts the read.
Result<LogStore> ReadCorpusFile(const std::string& path);

/// Policy-driven variant: under `DecodePolicy::kQuarantine` malformed
/// lines are skipped (within `options.max_bad_fraction`) and tallied into
/// `stats` (optional) instead of aborting the read.
Result<LogStore> ReadCorpusFile(const std::string& path,
                                const DecodeOptions& options,
                                IngestStats* stats = nullptr);

}  // namespace logmine

#endif  // LOGMINE_LOG_CORPUS_IO_H_
