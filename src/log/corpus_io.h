#ifndef LOGMINE_LOG_CORPUS_IO_H_
#define LOGMINE_LOG_CORPUS_IO_H_

#include <string>

#include "log/store.h"
#include "util/result.h"

namespace logmine {

/// Writes all records of `store` to `path` in the line format
/// (LineCodec), one record per line, in time order when the index is
/// built (insertion order otherwise).
Status WriteCorpusFile(const LogStore& store, const std::string& path);

/// Reads a corpus written by `WriteCorpusFile` (or any line-format file)
/// into a fresh store with its index built.
Result<LogStore> ReadCorpusFile(const std::string& path);

}  // namespace logmine

#endif  // LOGMINE_LOG_CORPUS_IO_H_
