#ifndef LOGMINE_LOG_CORPUS_IO_H_
#define LOGMINE_LOG_CORPUS_IO_H_

#include <string>

#include "log/codec.h"
#include "log/store.h"
#include "util/result.h"

namespace logmine {

/// Writes all records of `store` to `path` in the line format
/// (LineCodec), one record per line, in time order when the index is
/// built (insertion order otherwise).
///
/// Crash-safe and durable (util/snapshot's WriteFileAtomic): the data
/// goes to a sibling tmp file, is fsynced, renamed into place, and the
/// parent directory is fsynced — an interrupted run leaves either the
/// previous corpus or the complete new one, never a truncated file that
/// a later lenient read would silently half-load, and never a stray tmp.
Status WriteCorpusFile(const LogStore& store, const std::string& path);

/// Reads a corpus into a fresh store with its index built, autodetecting
/// the format by magic bytes: a file starting with the snapshot
/// container magic "LMSN" is read as a binary columnar corpus
/// (log/columnar.h), anything else as line-format text. Text files are
/// memory-mapped and decoded in parallel chunks
/// (`DecodeOptions::num_chunks`); the result is byte-identical to a
/// serial decode. Fail-fast: the first malformed line aborts the read.
Result<LogStore> ReadCorpusFile(const std::string& path);

/// Policy-driven variant: under `DecodePolicy::kQuarantine` malformed
/// lines are skipped (within `options.max_bad_fraction`) and tallied into
/// `stats` (optional) instead of aborting the read. Columnar files have
/// no per-line failure mode — the policy is moot and `stats` untouched;
/// any corruption fails the read (the container CRC sees to it).
Result<LogStore> ReadCorpusFile(const std::string& path,
                                const DecodeOptions& options,
                                IngestStats* stats = nullptr);

}  // namespace logmine

#endif  // LOGMINE_LOG_CORPUS_IO_H_
