#include "log/codec.h"

#include <array>

#include "util/string_util.h"

namespace logmine {
namespace {

void AppendEscaped(std::string_view field, std::string* out) {
  for (char c : field) {
    switch (c) {
      case '|':
        *out += "\\|";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Splits a line on unescaped '|' and unescapes each field.
Result<std::vector<std::string>> SplitEscaped(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status::ParseError("dangling escape at end of line");
      }
      const char next = line[++i];
      switch (next) {
        case '|':
          current += '|';
          break;
        case '\\':
          current += '\\';
          break;
        case 'n':
          current += '\n';
          break;
        default:
          return Status::ParseError(std::string("unknown escape: \\") + next);
      }
    } else if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Severity> ParseSeverity(std::string_view name) {
  static constexpr std::array<Severity, 4> kAll = {
      Severity::kDebug, Severity::kInfo, Severity::kWarning,
      Severity::kError};
  for (Severity s : kAll) {
    if (name == SeverityName(s)) return s;
  }
  return Status::ParseError("unknown severity: " + std::string(name));
}

}  // namespace

std::string LineCodec::Encode(const LogRecord& record) {
  std::string out;
  out.reserve(64 + record.message.size());
  out += FormatTime(record.client_ts);
  out += '|';
  out += FormatTime(record.server_ts);
  out += '|';
  out += SeverityName(record.severity);
  out += '|';
  AppendEscaped(record.source, &out);
  out += '|';
  AppendEscaped(record.host, &out);
  out += '|';
  AppendEscaped(record.user, &out);
  out += '|';
  AppendEscaped(record.message, &out);
  return out;
}

Result<LogRecord> LineCodec::Decode(std::string_view line) {
  auto fields_or = SplitEscaped(line);
  if (!fields_or.ok()) return fields_or.status();
  const std::vector<std::string>& fields = fields_or.value();
  if (fields.size() != 7) {
    return Status::ParseError("expected 7 fields, got " +
                              std::to_string(fields.size()));
  }
  LogRecord record;
  auto client = ParseTime(fields[0]);
  if (!client.ok()) return client.status();
  record.client_ts = client.value();
  auto server = ParseTime(fields[1]);
  if (!server.ok()) return server.status();
  record.server_ts = server.value();
  auto severity = ParseSeverity(fields[2]);
  if (!severity.ok()) return severity.status();
  record.severity = severity.value();
  record.source = fields[3];
  record.host = fields[4];
  record.user = fields[5];
  record.message = fields[6];
  if (record.source.empty()) {
    return Status::ParseError("empty source field");
  }
  return record;
}

std::string LineCodec::EncodeAll(const std::vector<LogRecord>& records) {
  std::string out;
  for (const LogRecord& record : records) {
    out += Encode(record);
    out += '\n';
  }
  return out;
}

Result<std::vector<LogRecord>> LineCodec::DecodeAll(std::string_view text) {
  std::vector<LogRecord> out;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (!Trim(line).empty()) {
      auto record = Decode(line);
      if (!record.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  record.status().message());
      }
      out.push_back(std::move(record).value());
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace logmine
