#include "log/codec.h"

#include <algorithm>
#include <array>
#include <iterator>

#include "obs/obs.h"
#include "util/executor.h"
#include "util/string_util.h"

namespace logmine {
namespace {

void AppendEscaped(std::string_view field, std::string* out) {
  for (char c : field) {
    switch (c) {
      case '|':
        *out += "\\|";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Splits a line on unescaped '|' and unescapes each field.
Result<std::vector<std::string>> SplitEscaped(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status::ParseError("dangling escape at end of line");
      }
      const char next = line[++i];
      switch (next) {
        case '|':
          current += '|';
          break;
        case '\\':
          current += '\\';
          break;
        case 'n':
          current += '\n';
          break;
        default:
          return Status::ParseError(std::string("unknown escape: \\") + next);
      }
    } else if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Severity> ParseSeverity(std::string_view name) {
  static constexpr std::array<Severity, 4> kAll = {
      Severity::kDebug, Severity::kInfo, Severity::kWarning,
      Severity::kError};
  for (Severity s : kAll) {
    if (name == SeverityName(s)) return s;
  }
  return Status::ParseError("unknown severity: " + std::string(name));
}

void SetClass(IngestErrorClass* out, IngestErrorClass value) {
  if (out != nullptr) *out = value;
}

// The per-class quarantine metrics sit adjacent in the Metric enum, in
// IngestErrorClass order, so class c maps to kIngestQuarantinedBadEscape+c.
static_assert(
    static_cast<uint32_t>(obs::Metric::kIngestQuarantinedTruncatedLine) -
        static_cast<uint32_t>(obs::Metric::kIngestQuarantinedBadEscape) ==
    kNumIngestErrorClasses - 1);

// Publishes one call's tally into the ambient metrics registry.
void EmitIngestMetrics(const IngestStats& tally, size_t bytes) {
  obs::ObsContext* ctx = obs::Global();
  if (ctx == nullptr) return;
  obs::MetricsRegistry& metrics = ctx->metrics();
  metrics.Add(obs::Metric::kIngestLinesTotal,
              static_cast<int64_t>(tally.lines_total));
  metrics.Add(obs::Metric::kIngestRecordsDecoded,
              static_cast<int64_t>(tally.records_decoded));
  metrics.Add(obs::Metric::kIngestLinesQuarantined,
              static_cast<int64_t>(tally.lines_quarantined));
  metrics.Add(obs::Metric::kIngestBytesDecoded, static_cast<int64_t>(bytes));
  for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
    if (tally.by_class[c] == 0) continue;
    metrics.Add(static_cast<obs::Metric>(
                    static_cast<uint32_t>(
                        obs::Metric::kIngestQuarantinedBadEscape) +
                    c),
                static_cast<int64_t>(tally.by_class[c]));
  }
}

}  // namespace

std::string_view IngestErrorClassName(IngestErrorClass error_class) {
  switch (error_class) {
    case IngestErrorClass::kBadEscape:
      return "BadEscape";
    case IngestErrorClass::kFieldCount:
      return "FieldCount";
    case IngestErrorClass::kBadTimestamp:
      return "BadTimestamp";
    case IngestErrorClass::kBadSeverity:
      return "BadSeverity";
    case IngestErrorClass::kEmptySource:
      return "EmptySource";
    case IngestErrorClass::kTruncatedLine:
      return "TruncatedLine";
  }
  return "Unknown";
}

double IngestStats::bad_fraction() const {
  if (lines_total == 0) return 0.0;
  return static_cast<double>(lines_quarantined) /
         static_cast<double>(lines_total);
}

void IngestStats::MergeFrom(const IngestStats& other, size_t max_samples) {
  lines_total += other.lines_total;
  records_decoded += other.records_decoded;
  lines_quarantined += other.lines_quarantined;
  for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
    by_class[c] += other.by_class[c];
  }
  for (const QuarantinedLine& sample : other.samples) {
    if (samples.size() >= max_samples) break;
    samples.push_back(sample);
  }
}

std::string IngestStats::ToString() const {
  std::string out = "ingest: " + std::to_string(records_decoded) +
                    " decoded, " + std::to_string(lines_quarantined) +
                    " quarantined of " + std::to_string(lines_total) +
                    " lines";
  if (lines_quarantined > 0) {
    out += " (";
    bool first = true;
    for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
      if (by_class[c] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string(
                 IngestErrorClassName(static_cast<IngestErrorClass>(c))) +
             "=" + std::to_string(by_class[c]);
    }
    out += ")";
  }
  for (const QuarantinedLine& sample : samples) {
    out += "\n  line " + std::to_string(sample.line_number) + " (byte " +
           std::to_string(sample.byte_offset) + ") [" +
           std::string(IngestErrorClassName(sample.error_class)) +
           "]: " + sample.error;
  }
  return out;
}

std::string LineCodec::Encode(const LogRecord& record) {
  std::string out;
  out.reserve(64 + record.message.size());
  out += FormatTime(record.client_ts);
  out += '|';
  out += FormatTime(record.server_ts);
  out += '|';
  out += SeverityName(record.severity);
  out += '|';
  AppendEscaped(record.source, &out);
  out += '|';
  AppendEscaped(record.host, &out);
  out += '|';
  AppendEscaped(record.user, &out);
  out += '|';
  AppendEscaped(record.message, &out);
  return out;
}

Result<LogRecord> LineCodec::Decode(std::string_view line) {
  return Decode(line, nullptr);
}

Result<LogRecord> LineCodec::Decode(std::string_view line,
                                    IngestErrorClass* error_class) {
  auto fields_or = SplitEscaped(line);
  if (!fields_or.ok()) {
    SetClass(error_class, IngestErrorClass::kBadEscape);
    return fields_or.status();
  }
  const std::vector<std::string>& fields = fields_or.value();
  if (fields.size() != 7) {
    SetClass(error_class, IngestErrorClass::kFieldCount);
    return Status::ParseError("expected 7 fields, got " +
                              std::to_string(fields.size()));
  }
  LogRecord record;
  auto client = ParseTime(fields[0]);
  if (!client.ok()) {
    SetClass(error_class, IngestErrorClass::kBadTimestamp);
    return client.status();
  }
  record.client_ts = client.value();
  auto server = ParseTime(fields[1]);
  if (!server.ok()) {
    SetClass(error_class, IngestErrorClass::kBadTimestamp);
    return server.status();
  }
  record.server_ts = server.value();
  auto severity = ParseSeverity(fields[2]);
  if (!severity.ok()) {
    SetClass(error_class, IngestErrorClass::kBadSeverity);
    return severity.status();
  }
  record.severity = severity.value();
  record.source = fields[3];
  record.host = fields[4];
  record.user = fields[5];
  record.message = fields[6];
  if (record.source.empty()) {
    SetClass(error_class, IngestErrorClass::kEmptySource);
    return Status::ParseError("empty source field");
  }
  return record;
}

std::string LineCodec::EncodeAll(const std::vector<LogRecord>& records) {
  std::string out;
  for (const LogRecord& record : records) {
    out += Encode(record);
    out += '\n';
  }
  return out;
}

Result<std::vector<LogRecord>> LineCodec::DecodeAll(std::string_view text) {
  return DecodeAll(text, DecodeOptions{}, nullptr);
}

namespace {

// One chunk's decode output, with chunk-local line numbers and byte
// offsets; the merge below rebases them into global coordinates. Keeping
// everything per-chunk (including the fail-fast failure, recorded rather
// than returned early) is what makes the merged result byte-identical to
// the serial decode for any chunk count.
struct ChunkOutcome {
  std::vector<LogRecord> records;
  IngestStats tally;
  /// Physical lines the chunk spans (newline-terminated lines, plus an
  /// unterminated final line) — the rebase amount for the next chunk's
  /// line numbers.
  size_t physical_lines = 0;
  bool failed = false;       ///< kFailFast hit a malformed line
  size_t fail_line = 0;      ///< 1-based, chunk-local
  size_t fail_offset = 0;    ///< chunk-local byte offset
  std::string fail_message;  ///< the per-line decode error
};

// The decode loop proper over one chunk. `allow_truncated_tail` is the
// lenient-tail option scoped to the chunk holding the buffer's final
// bytes — interior chunks always end at a newline so the condition could
// not fire there anyway, but scoping it keeps that an invariant rather
// than a coincidence. No budget judgement here: the budget is a
// whole-buffer property, applied once after the merge.
void DecodeChunk(std::string_view text, const DecodeOptions& options,
                 bool allow_truncated_tail, ChunkOutcome* out) {
  IngestStats* tally = &out->tally;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // The empty view after a trailing newline is an artifact of the
    // scan, not a physical line; it must not shift later chunks' line
    // numbers.
    if (start < text.size()) ++out->physical_lines;
    ++line_no;
    if (!Trim(line).empty()) {
      ++tally->lines_total;
      IngestErrorClass error_class = IngestErrorClass::kFieldCount;
      auto record = LineCodec::Decode(line, &error_class);
      if (record.ok()) {
        ++tally->records_decoded;
        out->records.push_back(std::move(record).value());
      } else {
        // A malformed line that runs to the end of the buffer with no
        // terminating newline is, under the lenient-tail option,
        // presumed cut off mid-write: it gets its own class and is
        // quarantined under either policy.
        const bool truncated_tail =
            allow_truncated_tail && end == text.size();
        if (truncated_tail) error_class = IngestErrorClass::kTruncatedLine;
        ++tally->lines_quarantined;
        ++tally->by_class[static_cast<size_t>(error_class)];
        if (tally->samples.size() < options.max_samples) {
          tally->samples.push_back({line_no, start, error_class,
                                    record.status().message(),
                                    std::string(line)});
        }
        if (options.policy == DecodePolicy::kFailFast && !truncated_tail) {
          out->failed = true;
          out->fail_line = line_no;
          out->fail_offset = start;
          out->fail_message = record.status().message();
          return;
        }
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
}

// Splits `text` into at most `target` pieces whose boundaries sit just
// past a newline, so every line lives wholly inside one chunk. The
// boundaries depend only on (text, target) — never on scheduling — which
// is one half of what makes the parallel decode deterministic (the other
// half is the in-order merge below).
std::vector<std::string_view> SplitAtLineBoundaries(std::string_view text,
                                                    size_t target) {
  std::vector<std::string_view> chunks;
  size_t start = 0;
  for (size_t i = 1; i < target && start < text.size(); ++i) {
    const size_t nominal = text.size() * i / target;
    if (nominal <= start) continue;  // a long line swallowed this boundary
    const size_t nl = text.find('\n', nominal);
    if (nl == std::string_view::npos) break;  // tail is one final chunk
    chunks.push_back(text.substr(start, nl + 1 - start));
    start = nl + 1;
  }
  chunks.push_back(text.substr(start));
  return chunks;
}

size_t EffectiveChunks(const DecodeOptions& options, size_t text_size) {
  if (options.num_chunks == 1) return 1;
  if (options.num_chunks > 1) return static_cast<size_t>(options.num_chunks);
  // Auto: one chunk per pool thread (workers + the calling thread),
  // floored so each chunk spans enough bytes to amortize the fan-out.
  constexpr size_t kMinChunkBytes = 64 * 1024;
  const size_t pool =
      static_cast<size_t>(Executor::Shared().num_workers()) + 1;
  const size_t cap = std::max<size_t>(size_t{1}, text_size / kMinChunkBytes);
  return std::min(pool, cap);
}

// Splits, decodes every chunk (concurrently when more than one), and
// merges outcomes in index order into `tally` / the returned records.
// The merged records, stats, samples (with rebased line numbers and byte
// offsets), budget judgement and fail-fast error are identical to a
// single-chunk decode of the same buffer: in fail-fast mode every chunk
// before the first failed one is clean, so merging clean chunks in order
// and stopping at the failure reproduces the serial scan's stats exactly.
Result<std::vector<LogRecord>> DecodeAllImpl(std::string_view text,
                                             const DecodeOptions& options,
                                             IngestStats* tally) {
  const size_t target = EffectiveChunks(options, text.size());
  const std::vector<std::string_view> chunks =
      SplitAtLineBoundaries(text, target);
  std::vector<ChunkOutcome> outcomes(chunks.size());
  if (chunks.size() == 1) {
    DecodeChunk(chunks[0], options, options.lenient_truncated_tail,
                &outcomes[0]);
  } else {
    obs::Count(obs::Metric::kIngestParallelDecodes);
    Executor::Shared().ParallelFor(chunks.size(), [&](size_t i) {
      DecodeChunk(chunks[i], options,
                  options.lenient_truncated_tail && i + 1 == chunks.size(),
                  &outcomes[i]);
    });
  }
  obs::Count(obs::Metric::kIngestChunksDecoded,
             static_cast<int64_t>(chunks.size()));

  std::vector<LogRecord> out;
  size_t total_records = 0;
  for (const ChunkOutcome& outcome : outcomes) {
    total_records += outcome.records.size();
  }
  out.reserve(total_records);
  size_t line_base = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ChunkOutcome& outcome = outcomes[i];
    const size_t byte_base =
        static_cast<size_t>(chunks[i].data() - text.data());
    for (QuarantinedLine& sample : outcome.tally.samples) {
      sample.line_number += line_base;
      sample.byte_offset += byte_base;
    }
    tally->MergeFrom(outcome.tally, options.max_samples);
    out.insert(out.end(), std::make_move_iterator(outcome.records.begin()),
               std::make_move_iterator(outcome.records.end()));
    if (outcome.failed) {
      // Later chunks' work (if any ran) is discarded unmerged, exactly
      // as if the serial scan had stopped at this line.
      return Status::ParseError(
          "line " + std::to_string(line_base + outcome.fail_line) +
          " (byte " + std::to_string(byte_base + outcome.fail_offset) +
          "): " + outcome.fail_message);
    }
    line_base += outcome.physical_lines;
  }

  // The budget judges *interior* damage; a lenient truncated tail is
  // expected operational wear (at most one line) and never tips a file
  // over it.
  const size_t budget_bad =
      tally->lines_quarantined -
      tally->by_class[static_cast<size_t>(IngestErrorClass::kTruncatedLine)];
  const double budget_fraction =
      tally->lines_total == 0
          ? 0.0
          : static_cast<double>(budget_bad) /
                static_cast<double>(tally->lines_total);
  if (budget_fraction > options.max_bad_fraction && budget_bad > 0) {
    return Status::ParseError(
        "quarantined " + std::to_string(budget_bad) + " of " +
        std::to_string(tally->lines_total) +
        " lines; bad fraction exceeds budget " +
        std::to_string(options.max_bad_fraction));
  }
  return out;
}

}  // namespace

Result<std::vector<LogRecord>> LineCodec::DecodeAll(
    std::string_view text, const DecodeOptions& options, IngestStats* stats) {
  LOGMINE_SPAN_GLOBAL("ingest/decode_all", obs::Metric::kIngestDecodeNs);
  IngestStats local;
  auto result = DecodeAllImpl(text, options, &local);
  EmitIngestMetrics(local, text.size());
  if (stats != nullptr) stats->MergeFrom(local, options.max_samples);
  return result;
}

}  // namespace logmine
