#include "log/corpus_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "log/codec.h"

namespace logmine {

Status WriteCorpusFile(const LogStore& store, const std::string& path) {
  // Write to a sibling temp file and rename into place: rename within a
  // directory is atomic, so readers never observe a truncated corpus.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open for writing: " + tmp_path);
    }
    auto write_record = [&out](const LogRecord& record) {
      out << LineCodec::Encode(record) << '\n';
    };
    if (store.index_built()) {
      for (uint32_t idx : store.TimeOrder()) write_record(store.GetRecord(idx));
    } else {
      for (size_t i = 0; i < store.size(); ++i)
        write_record(store.GetRecord(i));
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("write failed: " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename to " + path + " failed: " + ec.message());
  }
  return Status::OK();
}

Result<LogStore> ReadCorpusFile(const std::string& path) {
  return ReadCorpusFile(path, DecodeOptions{}, nullptr);
}

Result<LogStore> ReadCorpusFile(const std::string& path,
                                const DecodeOptions& options,
                                IngestStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Files are where a writer can die mid-line (foreign corpora, live
  // tails); tolerate exactly that and nothing more. In-memory decodes
  // via DecodeAll keep the strict default.
  DecodeOptions file_options = options;
  file_options.lenient_truncated_tail = true;
  auto records = LineCodec::DecodeAll(buffer.str(), file_options, stats);
  if (!records.ok()) return records.status();
  LogStore store;
  for (const LogRecord& record : records.value()) {
    LOGMINE_RETURN_IF_ERROR(store.Append(record));
  }
  store.BuildIndex();
  return store;
}

}  // namespace logmine
