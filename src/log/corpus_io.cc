#include "log/corpus_io.h"

#include <fstream>
#include <sstream>

#include "log/codec.h"

namespace logmine {

Status WriteCorpusFile(const LogStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  auto write_record = [&out](const LogRecord& record) {
    out << LineCodec::Encode(record) << '\n';
  };
  if (store.index_built()) {
    for (uint32_t idx : store.TimeOrder()) write_record(store.GetRecord(idx));
  } else {
    for (size_t i = 0; i < store.size(); ++i) write_record(store.GetRecord(i));
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<LogStore> ReadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto records = LineCodec::DecodeAll(buffer.str());
  if (!records.ok()) return records.status();
  LogStore store;
  for (const LogRecord& record : records.value()) {
    LOGMINE_RETURN_IF_ERROR(store.Append(record));
  }
  store.BuildIndex();
  return store;
}

}  // namespace logmine
