#include "log/corpus_io.h"

#include <string_view>

#include "log/codec.h"
#include "log/columnar.h"
#include "util/mmap_file.h"
#include "util/snapshot.h"

namespace logmine {

Status WriteCorpusFile(const LogStore& store, const std::string& path) {
  std::string out;
  auto write_record = [&out, &store](size_t i) {
    out += LineCodec::Encode(store.GetRecord(i));
    out += '\n';
  };
  if (store.index_built()) {
    for (uint32_t idx : store.TimeOrder()) write_record(idx);
  } else {
    for (size_t i = 0; i < store.size(); ++i) write_record(i);
  }
  return WriteFileAtomic(path, out);
}

Result<LogStore> ReadCorpusFile(const std::string& path) {
  return ReadCorpusFile(path, DecodeOptions{}, nullptr);
}

Result<LogStore> ReadCorpusFile(const std::string& path,
                                const DecodeOptions& options,
                                IngestStats* stats) {
  LOGMINE_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  const std::string_view text = file.view();
  if (LooksColumnar(text)) {
    LOGMINE_ASSIGN_OR_RETURN(LogStore store, ReadColumnarFile(path));
    store.BuildIndex();
    return store;
  }
  // Files are where a writer can die mid-line (foreign corpora, live
  // tails); tolerate exactly that and nothing more. In-memory decodes
  // via DecodeAll keep the strict default.
  DecodeOptions file_options = options;
  file_options.lenient_truncated_tail = true;
  auto records = LineCodec::DecodeAll(text, file_options, stats);
  if (!records.ok()) return records.status();
  LogStore store;
  LOGMINE_RETURN_IF_ERROR(store.AppendBatch(records.value()));
  store.BuildIndex();
  return store;
}

}  // namespace logmine
