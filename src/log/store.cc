#include "log/store.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/obs.h"

namespace logmine {

uint32_t LogStore::Intern(std::string_view name,
                          std::vector<std::string>* names,
                          std::map<std::string, uint32_t, std::less<>>* index) {
  auto it = index->find(name);
  if (it != index->end()) return it->second;
  const auto id = static_cast<uint32_t>(names->size());
  names->emplace_back(name);
  index->emplace(std::string(name), id);
  return id;
}

Status LogStore::Append(const LogRecord& record) {
  if (record.source.empty()) {
    return Status::InvalidArgument("log record without source");
  }
  client_ts_.push_back(record.client_ts);
  server_ts_.push_back(record.server_ts);
  severity_.push_back(record.severity);
  source_ids_.push_back(Intern(record.source, &source_names_, &source_index_));
  host_ids_.push_back(record.host.empty()
                          ? kNoHost
                          : Intern(record.host, &host_names_, &host_index_));
  user_ids_.push_back(record.user.empty()
                          ? kNoUser
                          : Intern(record.user, &user_names_, &user_index_));
  message_data_ += record.message;
  message_ends_.push_back(message_data_.size());
  index_built_ = false;
  return Status::OK();
}

void LogStore::Reserve(size_t additional, size_t message_bytes) {
  const size_t total = size() + additional;
  client_ts_.reserve(total);
  server_ts_.reserve(total);
  severity_.reserve(total);
  source_ids_.reserve(total);
  host_ids_.reserve(total);
  user_ids_.reserve(total);
  message_ends_.reserve(total);
  if (message_bytes > 0) {
    message_data_.reserve(message_data_.size() + message_bytes);
  }
}

Status LogStore::AppendBatch(std::span<const LogRecord> records) {
  size_t message_bytes = 0;
  for (const LogRecord& record : records) {
    message_bytes += record.message.size();
  }
  Reserve(records.size(), message_bytes);
  for (const LogRecord& record : records) {
    if (Status s = Append(record); !s.ok()) return s;
  }
  return Status::OK();
}

Result<LogStore> LogStore::FromColumns(Columns&& columns) {
  const size_t n = columns.client_ts.size();
  if (columns.server_ts.size() != n || columns.severity.size() != n ||
      columns.source_ids.size() != n || columns.host_ids.size() != n ||
      columns.user_ids.size() != n ||
      (!columns.message_ends.empty() && columns.message_ends.size() != n)) {
    return Status::InvalidArgument("ragged columns: record vectors disagree");
  }
  if (columns.message_ends.empty()) {
    if (!columns.message_data.empty()) {
      return Status::InvalidArgument(
          "message arena without message offsets");
    }
  } else {
    size_t prev_end = 0;
    for (size_t end : columns.message_ends) {
      if (end < prev_end) {
        return Status::InvalidArgument("message offsets not monotone");
      }
      prev_end = end;
    }
    if (prev_end != columns.message_data.size()) {
      return Status::InvalidArgument(
          "message offsets disagree with the arena size");
    }
  }
  LogStore store;
  auto build_index =
      [](const std::vector<std::string>& names, std::string_view what,
         bool allow_empty,
         std::map<std::string, uint32_t, std::less<>>* index) -> Status {
    for (size_t i = 0; i < names.size(); ++i) {
      if (!allow_empty && names[i].empty()) {
        return Status::InvalidArgument("empty " + std::string(what) +
                                       " dictionary entry");
      }
      if (!index->emplace(names[i], static_cast<uint32_t>(i)).second) {
        return Status::InvalidArgument("duplicate " + std::string(what) +
                                       " dictionary entry: " + names[i]);
      }
    }
    return Status::OK();
  };
  if (Status s = build_index(columns.source_names, "source", false,
                             &store.source_index_);
      !s.ok()) {
    return s;
  }
  if (Status s =
          build_index(columns.host_names, "host", false, &store.host_index_);
      !s.ok()) {
    return s;
  }
  if (Status s =
          build_index(columns.user_names, "user", false, &store.user_index_);
      !s.ok()) {
    return s;
  }
  for (size_t i = 0; i < n; ++i) {
    if (columns.source_ids[i] >= columns.source_names.size()) {
      return Status::InvalidArgument("source id out of range at record " +
                                     std::to_string(i));
    }
    if (columns.host_ids[i] != kNoHost &&
        columns.host_ids[i] >= columns.host_names.size()) {
      return Status::InvalidArgument("host id out of range at record " +
                                     std::to_string(i));
    }
    if (columns.user_ids[i] != kNoUser &&
        columns.user_ids[i] >= columns.user_names.size()) {
      return Status::InvalidArgument("user id out of range at record " +
                                     std::to_string(i));
    }
  }
  store.client_ts_ = std::move(columns.client_ts);
  store.server_ts_ = std::move(columns.server_ts);
  store.severity_ = std::move(columns.severity);
  store.source_ids_ = std::move(columns.source_ids);
  store.host_ids_ = std::move(columns.host_ids);
  store.user_ids_ = std::move(columns.user_ids);
  store.message_data_ = std::move(columns.message_data);
  store.message_ends_ = std::move(columns.message_ends);
  if (store.message_ends_.empty()) store.message_ends_.assign(n, 0);
  store.source_names_ = std::move(columns.source_names);
  store.host_names_ = std::move(columns.host_names);
  store.user_names_ = std::move(columns.user_names);
  return store;
}

LogRecord LogStore::GetRecord(size_t i) const {
  LogRecord record;
  record.client_ts = client_ts_[i];
  record.server_ts = server_ts_[i];
  record.severity = severity_[i];
  record.source = source_names_[source_ids_[i]];
  if (host_ids_[i] != kNoHost) record.host = host_names_[host_ids_[i]];
  if (user_ids_[i] != kNoUser) record.user = user_names_[user_ids_[i]];
  record.message = message(i);
  return record;
}

Result<LogStore::SourceId> LogStore::FindSource(std::string_view name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown source: " + std::string(name));
  }
  return it->second;
}

void LogStore::BuildIndex() {
  if (index_built_) return;
  LOGMINE_SPAN_GLOBAL("store/build_index", obs::Metric::kStoreIndexBuildNs);
  obs::Count(obs::Metric::kStoreIndexBuilds);
  obs::Count(obs::Metric::kStoreRecordsIndexed, static_cast<int64_t>(size()));
  source_timestamps_.assign(source_names_.size(), {});
  for (size_t i = 0; i < size(); ++i) {
    source_timestamps_[source_ids_[i]].push_back(client_ts_[i]);
  }
  for (auto& ts : source_timestamps_) {
    std::sort(ts.begin(), ts.end());
  }
  time_order_.resize(size());
  std::iota(time_order_.begin(), time_order_.end(), 0u);
  std::stable_sort(time_order_.begin(), time_order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return client_ts_[a] < client_ts_[b];
                   });
  index_built_ = true;
}

const std::vector<TimeMs>& LogStore::SourceTimestamps(SourceId source) const {
  assert(index_built_);
  return source_timestamps_[source];
}

const std::vector<uint32_t>& LogStore::TimeOrder() const {
  assert(index_built_);
  return time_order_;
}

std::span<const TimeMs> LogStore::SourceTimestampsInRange(SourceId source,
                                                          TimeMs begin,
                                                          TimeMs end) const {
  assert(index_built_);
  obs::Count(obs::Metric::kStoreRangeQueries);
  const std::vector<TimeMs>& ts = source_timestamps_[source];
  auto lo = std::lower_bound(ts.begin(), ts.end(), begin);
  auto hi = std::lower_bound(lo, ts.end(), end);
  return {lo, hi};
}

int64_t LogStore::CountInRange(SourceId source, TimeMs begin,
                               TimeMs end) const {
  assert(index_built_);
  obs::Count(obs::Metric::kStoreRangeQueries);
  const std::vector<TimeMs>& ts = source_timestamps_[source];
  auto lo = std::lower_bound(ts.begin(), ts.end(), begin);
  auto hi = std::lower_bound(ts.begin(), ts.end(), end);
  return hi - lo;
}

TimeMs LogStore::min_ts() const {
  if (empty()) return 0;
  if (index_built_) return client_ts_[time_order_.front()];
  return *std::min_element(client_ts_.begin(), client_ts_.end());
}

TimeMs LogStore::max_ts() const {
  if (empty()) return 0;
  if (index_built_) return client_ts_[time_order_.back()];
  return *std::max_element(client_ts_.begin(), client_ts_.end());
}

}  // namespace logmine
