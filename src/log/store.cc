#include "log/store.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/obs.h"

namespace logmine {

uint32_t LogStore::Intern(std::string_view name,
                          std::vector<std::string>* names,
                          std::map<std::string, uint32_t, std::less<>>* index) {
  auto it = index->find(name);
  if (it != index->end()) return it->second;
  const auto id = static_cast<uint32_t>(names->size());
  names->emplace_back(name);
  index->emplace(std::string(name), id);
  return id;
}

Status LogStore::Append(const LogRecord& record) {
  if (record.source.empty()) {
    return Status::InvalidArgument("log record without source");
  }
  client_ts_.push_back(record.client_ts);
  server_ts_.push_back(record.server_ts);
  severity_.push_back(record.severity);
  source_ids_.push_back(Intern(record.source, &source_names_, &source_index_));
  host_ids_.push_back(record.host.empty()
                          ? kNoHost
                          : Intern(record.host, &host_names_, &host_index_));
  user_ids_.push_back(record.user.empty()
                          ? kNoUser
                          : Intern(record.user, &user_names_, &user_index_));
  messages_.push_back(record.message);
  index_built_ = false;
  return Status::OK();
}

LogRecord LogStore::GetRecord(size_t i) const {
  LogRecord record;
  record.client_ts = client_ts_[i];
  record.server_ts = server_ts_[i];
  record.severity = severity_[i];
  record.source = source_names_[source_ids_[i]];
  if (host_ids_[i] != kNoHost) record.host = host_names_[host_ids_[i]];
  if (user_ids_[i] != kNoUser) record.user = user_names_[user_ids_[i]];
  record.message = messages_[i];
  return record;
}

Result<LogStore::SourceId> LogStore::FindSource(std::string_view name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown source: " + std::string(name));
  }
  return it->second;
}

void LogStore::BuildIndex() {
  if (index_built_) return;
  LOGMINE_SPAN_GLOBAL("store/build_index", obs::Metric::kStoreIndexBuildNs);
  obs::Count(obs::Metric::kStoreIndexBuilds);
  obs::Count(obs::Metric::kStoreRecordsIndexed, static_cast<int64_t>(size()));
  source_timestamps_.assign(source_names_.size(), {});
  for (size_t i = 0; i < size(); ++i) {
    source_timestamps_[source_ids_[i]].push_back(client_ts_[i]);
  }
  for (auto& ts : source_timestamps_) {
    std::sort(ts.begin(), ts.end());
  }
  time_order_.resize(size());
  std::iota(time_order_.begin(), time_order_.end(), 0u);
  std::stable_sort(time_order_.begin(), time_order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return client_ts_[a] < client_ts_[b];
                   });
  index_built_ = true;
}

const std::vector<TimeMs>& LogStore::SourceTimestamps(SourceId source) const {
  assert(index_built_);
  return source_timestamps_[source];
}

const std::vector<uint32_t>& LogStore::TimeOrder() const {
  assert(index_built_);
  return time_order_;
}

std::span<const TimeMs> LogStore::SourceTimestampsInRange(SourceId source,
                                                          TimeMs begin,
                                                          TimeMs end) const {
  assert(index_built_);
  obs::Count(obs::Metric::kStoreRangeQueries);
  const std::vector<TimeMs>& ts = source_timestamps_[source];
  auto lo = std::lower_bound(ts.begin(), ts.end(), begin);
  auto hi = std::lower_bound(lo, ts.end(), end);
  return {lo, hi};
}

int64_t LogStore::CountInRange(SourceId source, TimeMs begin,
                               TimeMs end) const {
  assert(index_built_);
  obs::Count(obs::Metric::kStoreRangeQueries);
  const std::vector<TimeMs>& ts = source_timestamps_[source];
  auto lo = std::lower_bound(ts.begin(), ts.end(), begin);
  auto hi = std::lower_bound(ts.begin(), ts.end(), end);
  return hi - lo;
}

TimeMs LogStore::min_ts() const {
  if (empty()) return 0;
  if (index_built_) return client_ts_[time_order_.front()];
  return *std::min_element(client_ts_.begin(), client_ts_.end());
}

TimeMs LogStore::max_ts() const {
  if (empty()) return 0;
  if (index_built_) return client_ts_[time_order_.back()];
  return *std::max_element(client_ts_.begin(), client_ts_.end());
}

}  // namespace logmine
