#include "log/columnar.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/mmap_file.h"

namespace logmine {
namespace {

constexpr std::string_view kContainerMagic = "LMSN";

// --- LEB128 varints with zigzag for signed deltas ---------------------

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutZigzag(std::string* out, int64_t v) {
  PutVarint(out, (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63));
}

// Raw varint reader for the per-record decode loops: they run several
// varints per record over the whole corpus, so failure is signalled by
// a bool and the (cold) Status is only built by the caller. The
// one-byte case — almost every severity, id and delta — never enters
// the loop.
inline bool GetVarint(const unsigned char** p, const unsigned char* end,
                      uint64_t* v) {
  if (*p < end && **p < 0x80) {
    *v = *(*p)++;
    return true;
  }
  uint64_t out = 0;
  for (int shift = 0; shift < 64 && *p < end; shift += 7) {
    const unsigned char byte = *(*p)++;
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  return false;  // truncated or overlong
}

inline bool GetZigzag(const unsigned char** p, const unsigned char* end,
                      int64_t* v) {
  uint64_t raw;
  if (!GetVarint(p, end, &raw)) return false;
  *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

const unsigned char* ColumnBegin(std::string_view column) {
  return reinterpret_cast<const unsigned char*>(column.data());
}

// 0 encodes the kNoHost/kNoUser sentinel, real ids shift up by one — so
// the common no-context case costs one byte instead of five.
uint64_t EncodeOptionalId(uint32_t id) {
  return id == UINT32_MAX ? 0 : static_cast<uint64_t>(id) + 1;
}

Result<uint32_t> DecodeOptionalId(uint64_t encoded) {
  if (encoded == 0) return UINT32_MAX;
  if (encoded > UINT32_MAX) {
    return Status::ParseError("columnar id out of range");
  }
  return static_cast<uint32_t>(encoded - 1);
}

void PutDictionary(SnapshotWriter* writer, size_t count,
                   std::string_view (LogStore::*name)(uint32_t) const,
                   const LogStore& store) {
  for (size_t i = 0; i < count; ++i) {
    writer->PutString((store.*name)(static_cast<uint32_t>(i)));
  }
}

}  // namespace

bool LooksColumnar(std::string_view bytes) {
  return bytes.size() >= kContainerMagic.size() &&
         bytes.substr(0, kContainerMagic.size()) == kContainerMagic;
}

void AppendColumnarSections(const LogStore& store, SnapshotWriter* writer) {
  const size_t n = store.size();

  writer->BeginSection("cmeta");
  writer->PutU32(kColumnarVersion);
  writer->PutU64(n);
  writer->PutU32(static_cast<uint32_t>(store.num_sources()));
  writer->PutU32(static_cast<uint32_t>(store.num_hosts()));
  writer->PutU32(static_cast<uint32_t>(store.num_users()));
  writer->EndSection();

  std::string column;
  column.reserve(n * 4);
  TimeMs prev_client = 0;
  for (size_t i = 0; i < n; ++i) {
    PutZigzag(&column, store.client_ts(i) - prev_client);
    PutZigzag(&column, store.server_ts(i) - store.client_ts(i));
    prev_client = store.client_ts(i);
  }
  writer->BeginSection("ctime");
  writer->PutString(column);
  writer->EndSection();

  column.clear();
  for (size_t i = 0; i < n; ++i) {
    PutVarint(&column, static_cast<uint64_t>(store.severity(i)));
    PutVarint(&column, store.source_id(i));
    PutVarint(&column, EncodeOptionalId(store.host_id(i)));
    PutVarint(&column, EncodeOptionalId(store.user_id(i)));
  }
  writer->BeginSection("cids");
  writer->PutString(column);
  writer->EndSection();

  writer->BeginSection("cdict");
  PutDictionary(writer, store.num_sources(), &LogStore::source_name, store);
  PutDictionary(writer, store.num_hosts(), &LogStore::host_name, store);
  PutDictionary(writer, store.num_users(), &LogStore::user_name, store);
  writer->EndSection();

  column.clear();
  size_t blob_size = 0;
  for (size_t i = 0; i < n; ++i) {
    PutVarint(&column, store.message(i).size());
    blob_size += store.message(i).size();
  }
  writer->BeginSection("ctext");
  writer->PutString(column);
  std::string blob;
  blob.reserve(blob_size);
  for (size_t i = 0; i < n; ++i) blob += store.message(i);
  writer->PutString(blob);
  writer->EndSection();
}

Result<LogStore> DecodeColumnarSections(const SnapshotReader& reader,
                                        const ColumnarReadOptions& options) {
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor meta, reader.Section("cmeta"));
  LOGMINE_ASSIGN_OR_RETURN(uint32_t version, meta.ReadU32());
  if (version != kColumnarVersion) {
    return Status::FailedPrecondition(
        "columnar corpus version " + std::to_string(version) +
        ", expected " + std::to_string(kColumnarVersion));
  }
  LOGMINE_ASSIGN_OR_RETURN(uint64_t n64, meta.ReadU64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_sources, meta.ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_hosts, meta.ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_users, meta.ReadU32());
  if (Status s = meta.ExpectEnd(); !s.ok()) return s;
  const auto n = static_cast<size_t>(n64);

  LogStore::Columns columns;
  columns.client_ts.reserve(n);
  columns.server_ts.reserve(n);
  columns.severity.reserve(n);
  columns.source_ids.reserve(n);
  columns.host_ids.reserve(n);
  columns.user_ids.reserve(n);

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor time_section,
                           reader.Section("ctime"));
  LOGMINE_ASSIGN_OR_RETURN(std::string time_column,
                           time_section.ReadString());
  if (Status s = time_section.ExpectEnd(); !s.ok()) return s;
  const unsigned char* tp = ColumnBegin(time_column);
  const unsigned char* tend = tp + time_column.size();
  TimeMs prev_client = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t client_delta, server_delta;
    if (!GetZigzag(&tp, tend, &client_delta) ||
        !GetZigzag(&tp, tend, &server_delta)) {
      return Status::ParseError("columnar time column truncated");
    }
    const TimeMs client = prev_client + client_delta;
    columns.client_ts.push_back(client);
    columns.server_ts.push_back(client + server_delta);
    prev_client = client;
  }
  if (tp != tend) {
    return Status::ParseError("columnar time column has trailing bytes");
  }

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor id_section, reader.Section("cids"));
  LOGMINE_ASSIGN_OR_RETURN(std::string id_column, id_section.ReadString());
  if (Status s = id_section.ExpectEnd(); !s.ok()) return s;
  const unsigned char* ip = ColumnBegin(id_column);
  const unsigned char* iend = ip + id_column.size();
  for (size_t i = 0; i < n; ++i) {
    uint64_t severity, source, host, user;
    if (!GetVarint(&ip, iend, &severity) || !GetVarint(&ip, iend, &source) ||
        !GetVarint(&ip, iend, &host) || !GetVarint(&ip, iend, &user)) {
      return Status::ParseError("columnar id column truncated");
    }
    if (severity > static_cast<uint64_t>(Severity::kError)) {
      return Status::ParseError("columnar severity out of range: " +
                                std::to_string(severity));
    }
    columns.severity.push_back(static_cast<Severity>(severity));
    if (source > UINT32_MAX) {
      return Status::ParseError("columnar source id out of range");
    }
    columns.source_ids.push_back(static_cast<uint32_t>(source));
    LOGMINE_ASSIGN_OR_RETURN(uint32_t host_id, DecodeOptionalId(host));
    columns.host_ids.push_back(host_id);
    LOGMINE_ASSIGN_OR_RETURN(uint32_t user_id, DecodeOptionalId(user));
    columns.user_ids.push_back(user_id);
  }
  if (ip != iend) {
    return Status::ParseError("columnar id column has trailing bytes");
  }

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor dict_section,
                           reader.Section("cdict"));
  columns.source_names.reserve(num_sources);
  for (uint32_t i = 0; i < num_sources; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string name, dict_section.ReadString());
    columns.source_names.push_back(std::move(name));
  }
  columns.host_names.reserve(num_hosts);
  for (uint32_t i = 0; i < num_hosts; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string name, dict_section.ReadString());
    columns.host_names.push_back(std::move(name));
  }
  columns.user_names.reserve(num_users);
  for (uint32_t i = 0; i < num_users; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string name, dict_section.ReadString());
    columns.user_names.push_back(std::move(name));
  }
  if (Status s = dict_section.ExpectEnd(); !s.ok()) return s;

  if (options.load_messages) {
    LOGMINE_ASSIGN_OR_RETURN(SectionCursor text_section,
                             reader.Section("ctext"));
    LOGMINE_ASSIGN_OR_RETURN(std::string lengths, text_section.ReadString());
    LOGMINE_ASSIGN_OR_RETURN(std::string blob, text_section.ReadString());
    if (Status s = text_section.ExpectEnd(); !s.ok()) return s;
    // The blob moves into the store wholesale — the lengths only turn
    // into cumulative end offsets, no per-message copy or allocation.
    const unsigned char* lp = ColumnBegin(lengths);
    const unsigned char* lend = lp + lengths.size();
    size_t blob_pos = 0;
    columns.message_ends.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t len;
      if (!GetVarint(&lp, lend, &len)) {
        return Status::ParseError("columnar text-length column truncated");
      }
      if (len > blob.size() - blob_pos) {
        return Status::ParseError("columnar text blob truncated");
      }
      blob_pos += static_cast<size_t>(len);
      columns.message_ends.push_back(blob_pos);
    }
    if (lp != lend) {
      return Status::ParseError(
          "columnar text-length column has trailing bytes");
    }
    if (blob_pos != blob.size()) {
      return Status::ParseError("columnar text blob has trailing bytes");
    }
    columns.message_data = std::move(blob);
  }

  auto store = LogStore::FromColumns(std::move(columns));
  if (!store.ok()) {
    // Shape defects past the CRC mean a logically inconsistent file
    // (hand-built or a writer bug) — surface them as corruption, the
    // same contract as every other defect here.
    return Status::ParseError("columnar corpus inconsistent: " +
                              store.status().message());
  }
  return store;
}

std::string EncodeColumnar(const LogStore& store) {
  SnapshotWriter writer;
  AppendColumnarSections(store, &writer);
  return std::move(writer).Finish();
}

Result<LogStore> DecodeColumnar(std::string bytes,
                                const ColumnarReadOptions& options) {
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(std::move(bytes)));
  return DecodeColumnarSections(reader, options);
}

Status WriteColumnarFile(const std::string& path, const LogStore& store) {
  LOGMINE_SPAN_GLOBAL("ingest/columnar_write",
                      obs::Metric::kIngestColumnarWriteNs);
  const std::string bytes = EncodeColumnar(store);
  if (Status s = WriteFileAtomic(path, bytes); !s.ok()) return s;
  obs::Count(obs::Metric::kIngestColumnarWrites);
  return Status::OK();
}

Result<LogStore> ReadColumnarFile(const std::string& path,
                                  const ColumnarReadOptions& options) {
  LOGMINE_SPAN_GLOBAL("ingest/columnar_read",
                      obs::Metric::kIngestColumnarReadNs);
  LOGMINE_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  obs::Count(obs::Metric::kIngestColumnarReads);
  obs::Count(obs::Metric::kIngestColumnarBytesRead,
             static_cast<int64_t>(file.size()));
  // SnapshotReader owns its buffer, so the mapping is copied once here;
  // still far cheaper than a text decode, and the container CRC needs a
  // full pass anyway.
  return DecodeColumnar(std::string(file.view()), options);
}

}  // namespace logmine
