#ifndef LOGMINE_LOG_STORE_H_
#define LOGMINE_LOG_STORE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "log/record.h"
#include "util/result.h"
#include "util/time_util.h"

namespace logmine {

/// Columnar, append-only store for a log corpus.
///
/// Source, host and user strings are interned into dense ids; timestamps
/// and ids live in flat columns. `BuildIndex` materializes a sorted
/// per-source timestamp index (the access path of the L1 miner) and a
/// global time order (the access path of the session builder). Records
/// may be appended in any order — the simulator emits slightly out of
/// order because of clock skew, exactly like the real system.
///
/// Not thread-safe; build once, then mine.
class LogStore {
 public:
  using SourceId = uint32_t;
  using HostId = uint32_t;
  using UserId = uint32_t;

  /// Sentinel for "no user context on this record".
  static constexpr UserId kNoUser = UINT32_MAX;
  /// Sentinel for "no host recorded".
  static constexpr HostId kNoHost = UINT32_MAX;

  LogStore() = default;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;
  LogStore(LogStore&&) = default;
  LogStore& operator=(LogStore&&) = default;

  /// Appends one record; `record.source` must be non-empty.
  /// Invalidates indexes built earlier.
  Status Append(const LogRecord& record);

  /// Pre-sizes every column for `additional` more records (and, when
  /// `message_bytes` is known, the message arena), so a bulk ingest of
  /// known size pays one allocation per column instead of a doubling
  /// cascade.
  void Reserve(size_t additional, size_t message_bytes = 0);

  /// Appends a whole batch (reserving up front). Stops at the first
  /// invalid record — earlier records stay appended, mirroring a loop
  /// of `Append` calls. Invalidates indexes built earlier.
  Status AppendBatch(std::span<const LogRecord> records);

  /// Raw column material for `FromColumns` — the zero-parse bulk-load
  /// path of the binary columnar corpus reader. All record vectors must
  /// share one length; ids must index into the dictionaries, with
  /// kNoHost / kNoUser as the only out-of-range values allowed.
  /// Message text arrives as one arena (`message_data`) plus the
  /// end offset of each record's message (`message_ends`, one entry per
  /// record, non-decreasing, last == message_data.size()); both may be
  /// left empty when the caller skipped the text column. Dictionary
  /// names must be unique; sources non-empty.
  struct Columns {
    std::vector<TimeMs> client_ts;
    std::vector<TimeMs> server_ts;
    std::vector<Severity> severity;
    std::vector<SourceId> source_ids;
    std::vector<HostId> host_ids;
    std::vector<UserId> user_ids;
    std::string message_data;
    std::vector<size_t> message_ends;
    std::vector<std::string> source_names;
    std::vector<std::string> host_names;
    std::vector<std::string> user_names;
  };

  /// Builds a store directly from column material, validating shape and
  /// id ranges and rebuilding the intern maps — no per-record parse or
  /// re-intern. InvalidArgument on any inconsistency (ragged columns,
  /// id out of range, duplicate or empty dictionary names).
  static Result<LogStore> FromColumns(Columns&& columns);

  /// Number of records.
  size_t size() const { return client_ts_.size(); }
  bool empty() const { return client_ts_.empty(); }

  // --- column accessors (index < size()) ---
  TimeMs client_ts(size_t i) const { return client_ts_[i]; }
  TimeMs server_ts(size_t i) const { return server_ts_[i]; }
  Severity severity(size_t i) const { return severity_[i]; }
  SourceId source_id(size_t i) const { return source_ids_[i]; }
  HostId host_id(size_t i) const { return host_ids_[i]; }
  UserId user_id(size_t i) const { return user_ids_[i]; }
  std::string_view message(size_t i) const {
    const size_t begin = i == 0 ? 0 : message_ends_[i - 1];
    return std::string_view(message_data_)
        .substr(begin, message_ends_[i] - begin);
  }

  /// Reassembles a full record (copying strings).
  LogRecord GetRecord(size_t i) const;

  // --- dictionaries ---
  size_t num_sources() const { return source_names_.size(); }
  size_t num_hosts() const { return host_names_.size(); }
  size_t num_users() const { return user_names_.size(); }
  std::string_view source_name(SourceId id) const {
    return source_names_[id];
  }
  std::string_view host_name(HostId id) const { return host_names_[id]; }
  std::string_view user_name(UserId id) const { return user_names_[id]; }

  /// Looks up a source by exact name.
  Result<SourceId> FindSource(std::string_view name) const;

  // --- indexes ---

  /// Builds (or rebuilds) the per-source sorted timestamp index and the
  /// global time order. Idempotent until the next Append.
  void BuildIndex();
  bool index_built() const { return index_built_; }

  /// Sorted client timestamps of all logs of `source`.
  /// Pre-condition: BuildIndex() has run.
  const std::vector<TimeMs>& SourceTimestamps(SourceId source) const;

  /// Zero-copy view of `source`'s sorted timestamps with client_ts in
  /// [begin, end) — the L1/Agrawal per-slot access path. The view stays
  /// valid until the next Append/BuildIndex.
  /// Pre-condition: BuildIndex() has run.
  std::span<const TimeMs> SourceTimestampsInRange(SourceId source,
                                                  TimeMs begin,
                                                  TimeMs end) const;

  /// Record indices sorted by (client_ts, insertion order).
  /// Pre-condition: BuildIndex() has run.
  const std::vector<uint32_t>& TimeOrder() const;

  /// Number of logs of `source` with client_ts in [begin, end).
  /// Pre-condition: BuildIndex() has run.
  int64_t CountInRange(SourceId source, TimeMs begin, TimeMs end) const;

  /// Earliest / latest client timestamp; 0 on an empty store.
  TimeMs min_ts() const;
  TimeMs max_ts() const;

 private:
  uint32_t Intern(std::string_view name, std::vector<std::string>* names,
                  std::map<std::string, uint32_t, std::less<>>* index);

  std::vector<TimeMs> client_ts_;
  std::vector<TimeMs> server_ts_;
  std::vector<Severity> severity_;
  std::vector<SourceId> source_ids_;
  std::vector<HostId> host_ids_;
  std::vector<UserId> user_ids_;
  // Message text lives in one arena: record i's message is
  // message_data_[end(i-1), end(i)). One allocation for the whole
  // corpus instead of one std::string per record.
  std::string message_data_;
  std::vector<size_t> message_ends_;

  std::vector<std::string> source_names_;
  std::map<std::string, uint32_t, std::less<>> source_index_;
  std::vector<std::string> host_names_;
  std::map<std::string, uint32_t, std::less<>> host_index_;
  std::vector<std::string> user_names_;
  std::map<std::string, uint32_t, std::less<>> user_index_;

  bool index_built_ = false;
  std::vector<std::vector<TimeMs>> source_timestamps_;
  std::vector<uint32_t> time_order_;
};

}  // namespace logmine

#endif  // LOGMINE_LOG_STORE_H_
