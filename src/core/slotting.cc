#include "core/slotting.h"

#include <algorithm>
#include <cassert>

#include "stats/distributions.h"

namespace logmine::core {
namespace {

int64_t CountInWindow(const std::vector<TimeMs>& events, TimeMs begin,
                      TimeMs end) {
  auto lo = std::lower_bound(events.begin(), events.end(), begin);
  auto hi = std::lower_bound(lo, events.end(), end);
  return hi - lo;
}

// True when the event intensity over [begin, end) deviates from uniform
// (chi-square goodness of fit over equal sub-bins).
bool RejectsStationarity(const std::vector<TimeMs>& events, TimeMs begin,
                         TimeMs end, const AdaptiveSlottingConfig& config) {
  const int64_t total = CountInWindow(events, begin, end);
  if (total < config.min_events) return false;
  const double expected =
      static_cast<double>(total) / static_cast<double>(config.probe_bins);
  double x2 = 0.0;
  for (int bin = 0; bin < config.probe_bins; ++bin) {
    const TimeMs bin_begin =
        begin + (end - begin) * bin / config.probe_bins;
    const TimeMs bin_end =
        begin + (end - begin) * (bin + 1) / config.probe_bins;
    const double observed =
        static_cast<double>(CountInWindow(events, bin_begin, bin_end));
    x2 += (observed - expected) * (observed - expected) / expected;
  }
  return stats::ChiSquareSf(x2,
                            static_cast<double>(config.probe_bins - 1)) <
         config.alpha;
}

void SplitRecursively(const std::vector<TimeMs>& events, TimeMs begin,
                      TimeMs end, const AdaptiveSlottingConfig& config,
                      std::vector<TimeSlot>* out) {
  const TimeMs length = end - begin;
  const bool can_split = length / 2 >= config.min_slot;
  if (can_split &&
      (length > config.max_slot ||
       RejectsStationarity(events, begin, end, config))) {
    const TimeMs mid = begin + length / 2;
    SplitRecursively(events, begin, mid, config, out);
    SplitRecursively(events, mid, end, config, out);
    return;
  }
  out->push_back(TimeSlot{begin, end});
}

}  // namespace

std::vector<TimeSlot> MakeSlots(TimeMs begin, TimeMs end,
                                TimeMs slot_length) {
  assert(slot_length > 0);
  std::vector<TimeSlot> slots;
  for (TimeMs t = begin; t < end; t += slot_length) {
    slots.push_back(TimeSlot{t, std::min(t + slot_length, end)});
  }
  return slots;
}

std::vector<TimeSlot> MakeAdaptiveSlots(const std::vector<TimeMs>& events,
                                        TimeMs begin, TimeMs end,
                                        const AdaptiveSlottingConfig& config) {
  assert(config.min_slot > 0 && config.max_slot >= config.min_slot);
  std::vector<TimeSlot> slots;
  if (begin >= end) return slots;
  SplitRecursively(events, begin, end, config, &slots);
  return slots;
}

}  // namespace logmine::core
