#ifndef LOGMINE_CORE_DEPENDENCY_H_
#define LOGMINE_CORE_DEPENDENCY_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace logmine::core {

/// A pair of component names. For L1/L2 the pair is *unordered*
/// (normalize with `MakeUnorderedPair`); for L3 it is the ordered
/// (application, service entry) dependency.
using NamePair = std::pair<std::string, std::string>;

/// Normalizes an application pair so that first <= second.
NamePair MakeUnorderedPair(std::string_view a, std::string_view b);

/// A discovered (or reference) dependency model: a set of name pairs.
/// Whether pairs are ordered is a property of the producing technique.
class DependencyModel {
 public:
  DependencyModel() = default;
  explicit DependencyModel(std::set<NamePair> pairs)
      : pairs_(std::move(pairs)) {}

  void Insert(NamePair pair) { pairs_.insert(std::move(pair)); }
  bool Contains(const NamePair& pair) const { return pairs_.count(pair) > 0; }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::set<NamePair>& pairs() const { return pairs_; }

  /// Pairs present here but not in `other`.
  std::vector<NamePair> Minus(const DependencyModel& other) const;

  /// Set union (used to combine per-day models, §4.8).
  DependencyModel Union(const DependencyModel& other) const;

  /// Set intersection.
  DependencyModel Intersect(const DependencyModel& other) const;

  /// Renders "a -- b" lines, sorted; for debugging and examples.
  std::string ToString() const;

  /// Graphviz DOT rendering (undirected when `directed` is false).
  std::string ToDot(std::string_view graph_name, bool directed) const;

 private:
  std::set<NamePair> pairs_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_DEPENDENCY_H_
