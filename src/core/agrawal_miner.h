#ifndef LOGMINE_CORE_AGRAWAL_MINER_H_
#define LOGMINE_CORE_AGRAWAL_MINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dependency.h"
#include "log/store.h"
#include "util/result.h"

namespace logmine::core {

/// Configuration of the Agrawal et al. baseline (the activity-period
/// technique the paper positions itself against in §1.3/§2.1): "one
/// builds histograms of delays and performs a chi-square test to measure
/// the deviation from a uniformly random distribution".
struct AgrawalConfig {
  /// Local application window (same slotting as L1 for comparability).
  TimeMs slot_length = kMillisPerHour;
  int64_t minlogs = 30;
  /// Delays beyond this window are discarded (the technique looks for
  /// "typical values" of short invocation delays).
  TimeMs max_delay = 5000;
  int num_bins = 20;
  /// Significance level of the per-slot chi-square test.
  double alpha = 0.01;
  /// Pair-level aggregation over slots, mirroring L1's pr/s thresholds.
  double th_pr = 0.6;
  double th_s = 0.3;
  /// Random baseline sample size per slot.
  size_t sample_size = 400;
  uint64_t seed = 13;
  /// Parallelism cap for the slot loop, which runs on the shared
  /// `Executor` pool. Every (slot, pair) test is salt-seeded, so
  /// results are identical for any thread count.
  /// 1 = serial on the calling thread; 0 = use the whole pool.
  int num_threads = 0;
};

/// Per ordered pair outcome.
struct AgrawalPairResult {
  LogStore::SourceId a = 0;  ///< the potential antecedent (callee B follows A)
  LogStore::SourceId b = 0;
  int slots_total = 0;
  int slots_supported = 0;
  int slots_positive = 0;
  double positive_ratio = 0.0;
  bool dependent = false;
};

struct AgrawalResult {
  std::vector<AgrawalPairResult> pairs;  ///< ordered pairs with support
  int slots_total = 0;

  /// Undirected model for evaluation against the paper's reference:
  /// a pair is dependent when either direction is.
  DependencyModel Dependencies(const LogStore& store) const;
};

/// Baseline miner: for each ordered pair (A, B) and each slot, the
/// delays from B's logs back to the most recent preceding A log are
/// binned into a histogram and compared, with a two-sample chi-square
/// test, against the same statistic computed from uniformly random
/// points. Dependent invocations concentrate mass at short "typical"
/// delays; independent activity reproduces the random shape.
///
/// As the original authors observe (and §2.1 recounts), accuracy decays
/// with the degree of parallelism — the compare_l1_agrawal bench
/// reproduces that contrast against L1.
class AgrawalDelayMiner {
 public:
  explicit AgrawalDelayMiner(AgrawalConfig config) : config_(config) {}

  /// Mines [begin, end); pre-condition: store.index_built().
  Result<AgrawalResult> Mine(const LogStore& store, TimeMs begin,
                             TimeMs end) const;

  /// The per-slot test for one ordered pair, exposed for unit tests:
  /// returns true when B's delays-to-previous-A deviate significantly
  /// from the random baseline. `a` and `b` are sorted timestamp
  /// sequences local to the slot (zero-copy views into the store's
  /// index; a `std::vector<TimeMs>` converts implicitly).
  bool TestSlot(std::span<const TimeMs> a, std::span<const TimeMs> b,
                TimeMs slot_begin, TimeMs slot_end, uint64_t salt) const;

 private:
  AgrawalConfig config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_AGRAWAL_MINER_H_
