#ifndef LOGMINE_CORE_L3_TEXT_MINER_H_
#define LOGMINE_CORE_L3_TEXT_MINER_H_

#include <string>
#include <vector>

#include "core/dependency.h"
#include "log/store.h"
#include "util/result.h"

namespace logmine::core {

/// The service vocabulary L3 matches against — the projection of the
/// environment's service directory that the miner needs (id + root URL).
struct ServiceVocabulary {
  struct Entry {
    std::string id;
    std::string root_url;
  };
  std::vector<Entry> entries;
};

/// The default stop-pattern list (10 wildcard patterns, like the paper's
/// 10): matches the common formats in which *providers* log calls they
/// receive, so those logs are not misread as client-side citations.
std::vector<std::string> DefaultStopPatterns();

/// Configuration of approach L3 (§3.3).
struct L3Config {
  /// Wildcard patterns ('*'/'?') evaluated against the free text; a
  /// matching log is ignored.
  std::vector<std::string> stop_patterns = DefaultStopPatterns();
  bool use_stop_patterns = true;
  /// Citations required before declaring the dependency (paper: one log
  /// suffices — "If, and only if, there are logs from A referring to S").
  int64_t min_citations = 1;
};

/// Citation counter for one (application, entry) pair.
struct L3Citation {
  LogStore::SourceId app = 0;
  size_t entry = 0;  ///< index into the vocabulary
  int64_t count = 0;
  bool dependent = false;
};

/// Full result of one L3 run.
struct L3Result {
  std::vector<L3Citation> citations;
  int64_t logs_scanned = 0;
  int64_t logs_stopped = 0;  ///< suppressed by stop patterns

  /// Positive decisions as (application name, entry id) pairs.
  DependencyModel Dependencies(const LogStore& store,
                               const ServiceVocabulary& vocabulary) const;
};

/// Approach L3: scan the free-text part of every log for citations of
/// service-directory entries (whole-token, case-insensitive match of the
/// id — which also catches the id inside root URLs) and infer that the
/// log's source depends on the cited entry.
class L3TextMiner {
 public:
  L3TextMiner(ServiceVocabulary vocabulary, L3Config config);

  /// Mines [begin, end); pre-condition: store.index_built().
  Result<L3Result> Mine(const LogStore& store, TimeMs begin,
                        TimeMs end) const;

  /// True when `message` matches one of the active stop patterns.
  bool IsStopped(std::string_view message) const;

  /// Vocabulary entry indices cited in `message` (deduplicated).
  std::vector<size_t> CitedEntries(std::string_view message) const;

 private:
  ServiceVocabulary vocabulary_;
  L3Config config_;
  // Lower-cased id -> entry index.
  std::vector<std::pair<std::string, size_t>> token_index_;  // sorted
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L3_TEXT_MINER_H_
