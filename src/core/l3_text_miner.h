#ifndef LOGMINE_CORE_L3_TEXT_MINER_H_
#define LOGMINE_CORE_L3_TEXT_MINER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "log/store.h"
#include "util/result.h"
#include "util/wildcard.h"

namespace logmine::core {

/// The service vocabulary L3 matches against — the projection of the
/// environment's service directory that the miner needs (id + root URL).
struct ServiceVocabulary {
  struct Entry {
    std::string id;
    std::string root_url;
  };
  std::vector<Entry> entries;
};

/// The default stop-pattern list (10 wildcard patterns, like the paper's
/// 10): matches the common formats in which *providers* log calls they
/// receive, so those logs are not misread as client-side citations.
std::vector<std::string> DefaultStopPatterns();

/// Configuration of approach L3 (§3.3).
struct L3Config {
  /// Wildcard patterns ('*'/'?') evaluated against the free text; a
  /// matching log is ignored.
  std::vector<std::string> stop_patterns = DefaultStopPatterns();
  bool use_stop_patterns = true;
  /// Citations required before declaring the dependency (paper: one log
  /// suffices — "If, and only if, there are logs from A referring to S").
  int64_t min_citations = 1;
  /// Parallelism cap for the sharded message scan, which runs on the
  /// shared `Executor` pool. Citation counts are additive and shard
  /// boundaries fixed, so results are identical for any thread count.
  /// 1 = serial on the calling thread; 0 = use the whole pool.
  int num_threads = 0;
};

/// Citation counter for one (application, entry) pair.
struct L3Citation {
  LogStore::SourceId app = 0;
  size_t entry = 0;  ///< index into the vocabulary
  int64_t count = 0;
  bool dependent = false;
};

/// Full result of one L3 run.
struct L3Result {
  std::vector<L3Citation> citations;
  int64_t logs_scanned = 0;
  int64_t logs_stopped = 0;  ///< suppressed by stop patterns

  /// Positive decisions as (application name, entry id) pairs.
  DependencyModel Dependencies(const LogStore& store,
                               const ServiceVocabulary& vocabulary) const;
};

/// Approach L3: scan the free-text part of every log for citations of
/// service-directory entries (whole-token, case-insensitive match of the
/// id — which also catches the id inside root URLs) and infer that the
/// log's source depends on the cited entry.
class L3TextMiner {
 public:
  L3TextMiner(ServiceVocabulary vocabulary, L3Config config);

  /// Mines [begin, end); pre-condition: store.index_built().
  Result<L3Result> Mine(const LogStore& store, TimeMs begin,
                        TimeMs end) const;

  /// True when `message` matches one of the active stop patterns.
  bool IsStopped(std::string_view message) const;

  /// Vocabulary entry indices cited in `message` (deduplicated).
  std::vector<size_t> CitedEntries(std::string_view message) const;

  /// Reusable buffers of the fused scan; one per scanning thread.
  struct ScanScratch {
    std::string padded;            ///< message copy + NUL padding
    std::vector<uint64_t> ident;   ///< identifier-char bitmask, 64 B/word
    std::vector<uint64_t> cand;    ///< stop-needle candidate bitmask
    std::string lower;             ///< lower-cased token scratch
  };

  /// One-pass replacement for IsStopped + AppendCitedEntries (§3.3 scan,
  /// DESIGN.md §11): builds the identifier-run and stop-needle-candidate
  /// bitmasks with one SIMD sweep over the message, resolves the stop
  /// decision from the candidate bits, then walks the identifier runs.
  /// Returns true when the message is stopped (then `out` may hold
  /// partial results the caller must discard); otherwise appends the
  /// cited entry indices, already deduplicated but in citation order
  /// (AppendCitedEntries + sort + unique yields the same set).
  /// Byte-for-byte equivalent to the scalar pair — see the equivalence
  /// test in tests/core/l3_text_miner_test.cc. Only callable when
  /// `fused_scan_ok()`.
  bool FusedScan(std::string_view message, ScanScratch* scratch,
                 std::vector<size_t>* out) const;

  /// True when FusedScan supports the configured stop patterns (SSE2
  /// build and at most kMaxProbes infix needles).
  bool fused_scan_ok() const { return fused_scan_ok_; }

 private:
  // Appends (unsorted, possibly duplicated) cited entry indices to
  // `out`, lower-casing tokens into `lower_scratch` — the
  // allocation-free inner loop shared by `CitedEntries` and `Mine`.
  void AppendCitedEntries(std::string_view message,
                          std::string* lower_scratch,
                          std::vector<size_t>* out) const;

  ServiceVocabulary vocabulary_;
  L3Config config_;
  // The stop patterns, precompiled: one prefix/suffix/substring scan
  // per pattern instead of a generic backtracking wildcard match per
  // message.
  WildcardSet stop_matcher_;
  // Lower-cased id -> entry index.
  std::vector<std::pair<std::string, size_t>> token_index_;  // sorted
  // Prefilter over the token index: bit L of entry c is set when some
  // id starts with lower-cased byte c and has length L. Almost every
  // token of a typical message fails this check, skipping the
  // lower-casing and binary search entirely.
  std::array<uint64_t, 256> token_length_masks_{};

  // Open-addressed hash over the lower-cased ids, probed by FusedScan
  // without materializing the lower-cased token: token_buckets_[b]
  // holds index+1 into token_index_ (0 = empty), power-of-two sized,
  // linear probing. Duplicate lower-cased ids keep the entry
  // `lower_bound` on token_index_ would find (first in sort order).
  std::vector<uint32_t> token_buckets_;
  uint32_t token_bucket_mask_ = 0;

  // FusedScan's per-needle probes: the first byte (and second, when the
  // needle has one) of each infix stop needle. A position is a stop
  // candidate only when both probe bytes match — needles almost never
  // share a two-byte prefix with random text, so verification calls are
  // rare.
  static constexpr size_t kMaxProbes = 16;
  struct NeedleProbe {
    char first = 0;
    char second = 0;
    bool has_second = false;
  };
  std::vector<NeedleProbe> probes_;
  bool fused_scan_ok_ = false;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L3_TEXT_MINER_H_
