#include "core/agrawal_miner.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <tuple>

#include "core/slotting.h"
#include "obs/obs.h"
#include "stats/distributions.h"
#include "stats/point_process.h"
#include "util/executor.h"
#include "util/rng.h"

namespace logmine::core {
namespace {

// Delay from each point of `points` back to the most recent element of
// `antecedent` (sorted); points with no antecedent or delay > max_delay
// are dropped.
std::vector<TimeMs> DelaysToPrevious(std::span<const TimeMs> points,
                                     std::span<const TimeMs> antecedent,
                                     TimeMs max_delay) {
  std::vector<TimeMs> delays;
  delays.reserve(points.size());
  for (TimeMs t : points) {
    auto it = std::upper_bound(antecedent.begin(), antecedent.end(), t);
    if (it == antecedent.begin()) continue;
    const TimeMs delay = t - *(it - 1);
    if (delay <= max_delay) delays.push_back(delay);
  }
  return delays;
}

// Two-sample chi-square statistic over `num_bins` equal-width delay bins:
//   X^2 = sum_i (sqrt(n2/n1) O1i - sqrt(n1/n2) O2i)^2 / (O1i + O2i)
// (the classic form that tolerates unequal sample sizes), df = bins - 1.
double TwoSampleChiSquare(const std::vector<TimeMs>& observed,
                          const std::vector<TimeMs>& baseline,
                          TimeMs max_delay, int num_bins, int* df) {
  std::vector<int64_t> o1(static_cast<size_t>(num_bins), 0);
  std::vector<int64_t> o2(static_cast<size_t>(num_bins), 0);
  const double width =
      static_cast<double>(max_delay) / static_cast<double>(num_bins);
  for (TimeMs d : observed) {
    const auto bin = std::min<size_t>(
        static_cast<size_t>(static_cast<double>(d) / width),
        static_cast<size_t>(num_bins) - 1);
    ++o1[bin];
  }
  for (TimeMs d : baseline) {
    const auto bin = std::min<size_t>(
        static_cast<size_t>(static_cast<double>(d) / width),
        static_cast<size_t>(num_bins) - 1);
    ++o2[bin];
  }
  const double n1 = static_cast<double>(observed.size());
  const double n2 = static_cast<double>(baseline.size());
  const double k1 = std::sqrt(n2 / n1);
  const double k2 = std::sqrt(n1 / n2);
  double x2 = 0.0;
  int used_bins = 0;
  for (int i = 0; i < num_bins; ++i) {
    const auto idx = static_cast<size_t>(i);
    const double total = static_cast<double>(o1[idx] + o2[idx]);
    if (total == 0) continue;  // empty in both samples: drop the bin
    ++used_bins;
    const double diff = k1 * static_cast<double>(o1[idx]) -
                        k2 * static_cast<double>(o2[idx]);
    x2 += diff * diff / total;
  }
  *df = std::max(used_bins - 1, 1);
  return x2;
}

}  // namespace

bool AgrawalDelayMiner::TestSlot(std::span<const TimeMs> a,
                                 std::span<const TimeMs> b,
                                 TimeMs slot_begin, TimeMs slot_end,
                                 uint64_t salt) const {
  if (a.empty() || b.empty() || slot_begin >= slot_end) return false;
  const std::vector<TimeMs> observed =
      DelaysToPrevious(b, a, config_.max_delay);
  if (observed.size() < 20) return false;  // not enough delay mass

  Rng rng(config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
  const std::vector<TimeMs> random_points = stats::UniformPoints(
      slot_begin, slot_end, config_.sample_size, &rng);
  std::vector<TimeMs> sorted_random = random_points;
  std::sort(sorted_random.begin(), sorted_random.end());
  const std::vector<TimeMs> baseline =
      DelaysToPrevious(sorted_random, a, config_.max_delay);
  if (baseline.size() < 20) return false;

  int df = 1;
  const double x2 = TwoSampleChiSquare(observed, baseline,
                                       config_.max_delay, config_.num_bins,
                                       &df);
  return stats::ChiSquareSf(x2, static_cast<double>(df)) < config_.alpha;
}

Result<AgrawalResult> AgrawalDelayMiner::Mine(const LogStore& store,
                                              TimeMs begin, TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (begin >= end) {
    return Status::InvalidArgument("empty mining interval");
  }
  LOGMINE_SPAN_GLOBAL("agrawal/mine", obs::Metric::kAgrawalMineNs);
  obs::Count(obs::Metric::kAgrawalRuns);
  const std::vector<TimeSlot> slots = MakeSlots(begin, end,
                                                config_.slot_length);
  const auto num_sources = static_cast<uint32_t>(store.num_sources());

  AgrawalResult result;
  result.slots_total = static_cast<int>(slots.size());
  // O(num_sources^2) merge scratch, thread_local so repeated Mine calls
  // reuse one buffer (mirrors the L1 accumulator).
  thread_local std::vector<size_t> pair_index;
  pair_index.assign(static_cast<size_t>(num_sources) * num_sources,
                    SIZE_MAX);
  std::vector<AgrawalPairResult> acc;
  auto pair_slot = [&](uint32_t a, uint32_t b) -> AgrawalPairResult& {
    const size_t key = static_cast<size_t>(a) * num_sources + b;
    if (pair_index[key] == SIZE_MAX) {
      pair_index[key] = acc.size();
      AgrawalPairResult fresh;
      fresh.a = a;
      fresh.b = b;
      fresh.slots_total = static_cast<int>(slots.size());
      acc.push_back(fresh);
    }
    return acc[pair_index[key]];
  };

  // Per-slot testing on the shared executor: every (slot, pair) test
  // seeds its RNG from a salt derived only from (slot, a, b), so the
  // outcome is independent of scheduling and thread count. Outcomes
  // merge serially in slot order.
  struct SlotOutcome {
    std::vector<std::tuple<uint32_t, uint32_t, bool>> pairs;
  };
  std::vector<SlotOutcome> outcomes(slots.size());
  auto process_slot = [&](size_t slot_idx) {
    const TimeSlot& slot = slots[slot_idx];
    std::vector<uint32_t> usable;
    std::vector<std::span<const TimeMs>> local(num_sources);
    for (uint32_t s = 0; s < num_sources; ++s) {
      const std::span<const TimeMs> view =
          store.SourceTimestampsInRange(s, slot.begin, slot.end);
      if (static_cast<int64_t>(view.size()) >= config_.minlogs) {
        local[s] = view;
        usable.push_back(s);
      }
    }
    for (uint32_t a : usable) {
      for (uint32_t b : usable) {
        if (a == b) continue;
        const uint64_t salt = slot_idx * num_sources * num_sources +
                              static_cast<uint64_t>(a) * num_sources + b;
        const bool positive =
            TestSlot(local[a], local[b], slot.begin, slot.end, salt);
        outcomes[slot_idx].pairs.emplace_back(a, b, positive);
      }
    }
  };
  Executor::Shared().ParallelFor(slots.size(), process_slot,
                                 config_.num_threads);

  for (const SlotOutcome& outcome : outcomes) {
    for (const auto& [a, b, positive] : outcome.pairs) {
      AgrawalPairResult& pr = pair_slot(a, b);
      ++pr.slots_supported;
      if (positive) ++pr.slots_positive;
    }
  }

  const double min_support = config_.th_s * static_cast<double>(slots.size());
  for (AgrawalPairResult& pr : acc) {
    pr.positive_ratio =
        pr.slots_supported == 0
            ? 0.0
            : static_cast<double>(pr.slots_positive) /
                  static_cast<double>(pr.slots_supported);
    pr.dependent = static_cast<double>(pr.slots_supported) >= min_support &&
                   pr.positive_ratio >= config_.th_pr;
  }
  result.pairs = std::move(acc);
  return result;
}

DependencyModel AgrawalResult::Dependencies(const LogStore& store) const {
  DependencyModel model;
  for (const AgrawalPairResult& pr : pairs) {
    if (pr.dependent) {
      model.Insert(MakeUnorderedPair(store.source_name(pr.a),
                                     store.source_name(pr.b)));
    }
  }
  return model;
}

}  // namespace logmine::core
