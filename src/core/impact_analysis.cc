#include "core/impact_analysis.h"

#include <algorithm>
#include <deque>

namespace logmine::core {
namespace {

// Breadth-first closure over an adjacency map, excluding the start node.
std::set<std::string> Closure(
    const std::map<std::string, std::set<std::string>>& adjacency,
    const std::string& start) {
  std::set<std::string> visited;
  std::deque<std::string> frontier = {start};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const std::string& next : it->second) {
      if (next != start && visited.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  return visited;
}

}  // namespace

void DependencyGraph::AddDependency(const std::string& from,
                                    const std::string& to) {
  if (from == to) return;
  nodes_.insert(from);
  nodes_.insert(to);
  depends_on_[from].insert(to);
  depended_by_[to].insert(from);
}

DependencyGraph DependencyGraph::FromAppServiceModel(
    const DependencyModel& model,
    const std::map<std::string, std::string>& entry_owner) {
  DependencyGraph graph;
  for (const NamePair& pair : model.pairs()) {
    auto owner = entry_owner.find(pair.second);
    if (owner == entry_owner.end()) continue;
    graph.AddDependency(pair.first, owner->second);
  }
  return graph;
}

size_t DependencyGraph::num_edges() const {
  size_t total = 0;
  for (const auto& [node, targets] : depends_on_) total += targets.size();
  return total;
}

std::set<std::string> DependencyGraph::DependenciesOf(
    const std::string& component) const {
  auto it = depends_on_.find(component);
  return it == depends_on_.end() ? std::set<std::string>{} : it->second;
}

std::set<std::string> DependencyGraph::DependentsOf(
    const std::string& component) const {
  auto it = depended_by_.find(component);
  return it == depended_by_.end() ? std::set<std::string>{} : it->second;
}

std::set<std::string> DependencyGraph::ImpactSet(
    const std::string& failed) const {
  return Closure(depended_by_, failed);
}

std::set<std::string> DependencyGraph::DependencyClosure(
    const std::string& component) const {
  return Closure(depends_on_, component);
}

double DependencyGraph::ImpliedAvailability(
    const std::string& component,
    const std::map<std::string, double>& component_availability,
    double default_availability) const {
  auto availability_of = [&](const std::string& name) {
    auto it = component_availability.find(name);
    return it == component_availability.end() ? default_availability
                                              : it->second;
  };
  double product = availability_of(component);
  for (const std::string& dependency : DependencyClosure(component)) {
    product *= availability_of(dependency);
  }
  return product;
}

std::vector<RootCauseCandidate> RankRootCauses(
    const DependencyGraph& graph, const std::set<std::string>& symptomatic) {
  std::vector<RootCauseCandidate> candidates;
  if (symptomatic.empty()) return candidates;
  for (const std::string& component : graph.nodes()) {
    RootCauseCandidate candidate;
    candidate.component = component;
    candidate.symptomatic = symptomatic.count(component) > 0;
    const std::set<std::string> impact = graph.ImpactSet(component);
    const std::set<std::string> direct = graph.DependentsOf(component);
    candidate.blast_radius = static_cast<int64_t>(impact.size());
    int64_t covered = 0, covered_directly = 0;
    for (const std::string& symptom : symptomatic) {
      if (symptom == component || impact.count(symptom)) ++covered;
      if (symptom == component || direct.count(symptom)) {
        ++covered_directly;
      }
    }
    candidate.coverage = static_cast<double>(covered) /
                         static_cast<double>(symptomatic.size());
    candidate.direct_coverage = static_cast<double>(covered_directly) /
                                static_cast<double>(symptomatic.size());
    if (covered > 0) candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RootCauseCandidate& a, const RootCauseCandidate& b) {
              if (a.coverage != b.coverage) return a.coverage > b.coverage;
              if (a.direct_coverage != b.direct_coverage) {
                return a.direct_coverage > b.direct_coverage;
              }
              if (a.blast_radius != b.blast_radius) {
                return a.blast_radius < b.blast_radius;
              }
              if (a.symptomatic != b.symptomatic) return a.symptomatic;
              return a.component < b.component;
            });
  return candidates;
}

}  // namespace logmine::core
