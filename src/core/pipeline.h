#ifndef LOGMINE_CORE_PIPELINE_H_
#define LOGMINE_CORE_PIPELINE_H_

#include <optional>

#include "core/agrawal_miner.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "log/store.h"
#include "obs/obs.h"
#include "util/executor.h"
#include "util/result.h"

namespace logmine::core {

/// Which techniques a pipeline run executes.
struct PipelineConfig {
  bool run_l1 = true;
  bool run_l2 = true;
  bool run_l3 = true;
  /// The delay-histogram baseline is off by default.
  bool run_agrawal = false;
  /// Schedule the enabled miners concurrently on the shared `Executor`
  /// (they only read the store, and each is deterministic regardless of
  /// scheduling). Set false to run them strictly in sequence.
  bool concurrent_miners = true;
  /// Wall-clock budget for the whole run in milliseconds; 0 = none, and
  /// a negative budget has already expired when the run starts.
  /// Cooperative: miners that have not *started* when the budget expires
  /// are skipped with DeadlineExceeded status; a running miner finishes.
  int64_t deadline_ms = 0;
  L1Config l1;
  L2Config l2;
  L3Config l3;
  AgrawalConfig agrawal;
};

/// Combined output of one pipeline run. Each enabled miner contributes a
/// (result, status) pair: exactly one of "result present, status OK" or
/// "result absent, status explains why" holds. Disabled miners have an
/// absent result and an OK status.
struct PipelineResult {
  std::optional<L1Result> l1;
  std::optional<L2Result> l2;
  std::optional<L3Result> l3;
  std::optional<AgrawalResult> agrawal;

  Status l1_status;
  Status l2_status;
  Status l3_status;
  Status agrawal_status;

  /// Merged metrics of the run's explicit `ObsContext`, taken after the
  /// miners quiesced. Absent when `Run` was not handed a context.
  std::optional<obs::MetricsSnapshot> metrics;

  /// True when every enabled miner produced a result.
  bool all_ok() const {
    return l1_status.ok() && l2_status.ok() && l3_status.ok() &&
           agrawal_status.ok();
  }

  /// First non-OK miner status in L1, L2, L3, Agrawal order (matching
  /// the historical fail-fast error), or OK when all succeeded.
  Status first_error() const {
    if (!l1_status.ok()) return l1_status;
    if (!l2_status.ok()) return l2_status;
    if (!l3_status.ok()) return l3_status;
    return agrawal_status;
  }
};

/// Façade running any subset of the three techniques over one interval —
/// the one-call public entry point used by the examples.
///
/// Fail-safe semantics: a miner that fails (or is skipped by
/// cancellation / the run deadline) does not abort the run. `Run`
/// returns a non-OK Result only for run-level preconditions (index not
/// built); per-miner failures land in `PipelineResult::*_status` next to
/// whatever sibling models did succeed, so one broken technique still
/// yields a partial dependency model. A miner that throws is contained
/// the same way (Internal status) and cannot poison its siblings.
///
/// Example:
///   MiningPipeline pipeline(vocabulary, PipelineConfig{});
///   auto result = pipeline.Run(store, store.min_ts(), store.max_ts() + 1);
///   if (result.ok() && result.value().all_ok()) { ... }
class MiningPipeline {
 public:
  MiningPipeline(ServiceVocabulary vocabulary, PipelineConfig config);

  /// Pre-condition: store.index_built().
  /// `cancel`, when non-null, cooperatively stops the run: miners that
  /// have not started when it fires are skipped with Cancelled status.
  /// `obs_context`, when non-null, receives the run's spans and counters
  /// (in addition to whatever global context the low layers see), and
  /// `PipelineResult::metrics` carries its merged snapshot; when null the
  /// run records into the global context only and the snapshot is absent.
  Result<PipelineResult> Run(const LogStore& store, TimeMs begin, TimeMs end,
                             const CancelToken* cancel = nullptr,
                             obs::ObsContext* obs_context = nullptr) const;

  /// Convenience fast path: loads `path` via `ReadCorpusFile` — format
  /// autodetection (binary columnar or text) and parallel chunked text
  /// decode included — then runs over the corpus's whole time interval.
  /// The load shares the run's fail-safe story: a corpus that fails to
  /// read returns its read error here, before any miner starts.
  Result<PipelineResult> RunFromCorpusFile(
      const std::string& path, const CancelToken* cancel = nullptr,
      obs::ObsContext* obs_context = nullptr) const;

  const PipelineConfig& config() const { return config_; }
  const ServiceVocabulary& vocabulary() const { return vocabulary_; }

 private:
  ServiceVocabulary vocabulary_;
  PipelineConfig config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_PIPELINE_H_
