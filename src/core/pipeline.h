#ifndef LOGMINE_CORE_PIPELINE_H_
#define LOGMINE_CORE_PIPELINE_H_

#include <optional>

#include "core/agrawal_miner.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "log/store.h"
#include "util/result.h"

namespace logmine::core {

/// Which techniques a pipeline run executes.
struct PipelineConfig {
  bool run_l1 = true;
  bool run_l2 = true;
  bool run_l3 = true;
  /// The delay-histogram baseline is off by default.
  bool run_agrawal = false;
  /// Schedule the enabled miners concurrently on the shared `Executor`
  /// (they only read the store, and each is deterministic regardless of
  /// scheduling). Set false to run them strictly in sequence.
  bool concurrent_miners = true;
  L1Config l1;
  L2Config l2;
  L3Config l3;
  AgrawalConfig agrawal;
};

/// Combined output of one pipeline run.
struct PipelineResult {
  std::optional<L1Result> l1;
  std::optional<L2Result> l2;
  std::optional<L3Result> l3;
  std::optional<AgrawalResult> agrawal;
};

/// Façade running any subset of the three techniques over one interval —
/// the one-call public entry point used by the examples.
///
/// Example:
///   MiningPipeline pipeline(vocabulary, PipelineConfig{});
///   auto result = pipeline.Run(store, store.min_ts(), store.max_ts() + 1);
class MiningPipeline {
 public:
  MiningPipeline(ServiceVocabulary vocabulary, PipelineConfig config);

  /// Pre-condition: store.index_built().
  Result<PipelineResult> Run(const LogStore& store, TimeMs begin,
                             TimeMs end) const;

  const PipelineConfig& config() const { return config_; }
  const ServiceVocabulary& vocabulary() const { return vocabulary_; }

 private:
  ServiceVocabulary vocabulary_;
  PipelineConfig config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_PIPELINE_H_
