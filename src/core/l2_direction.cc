#include "core/l2_direction.h"

#include <algorithm>
#include <map>

#include "stats/distributions.h"

namespace logmine::core {

std::vector<DirectionEstimate> L2DirectionDetector::Estimate(
    const std::vector<Session>& sessions,
    const std::vector<std::pair<LogStore::SourceId, LogStore::SourceId>>&
        pairs) const {
  // Normalize the queried pairs and map them to accumulator slots.
  std::map<std::pair<uint32_t, uint32_t>, size_t> index;
  std::vector<DirectionEstimate> estimates;
  estimates.reserve(pairs.size());
  for (const auto& [raw_a, raw_b] : pairs) {
    const uint32_t a = std::min(raw_a, raw_b);
    const uint32_t b = std::max(raw_a, raw_b);
    if (index.count({a, b})) continue;
    index[{a, b}] = estimates.size();
    DirectionEstimate estimate;
    estimate.a = a;
    estimate.b = b;
    estimates.push_back(estimate);
  }

  // Scan each uninterrupted run once; for every queried pair remember
  // which member appeared first *after both members are known to occur*:
  // the paper's rule keys on the first adjacent bigram of the type, which
  // within a run is equivalent to the first time the two sources appear
  // adjacently; we use the first occurrence order of the two sources in
  // the run, the natural run-level reading of "first element of the
  // first pair".
  for (const Session& session : sessions) {
    size_t run_start = 0;
    for (size_t i = 0; i <= session.entries.size(); ++i) {
      const bool run_ends =
          i == session.entries.size() ||
          (i > 0 && session.entries[i].ts - session.entries[i - 1].ts >=
                        config_.pause);
      if (!run_ends) continue;
      // Process run [run_start, i).
      std::map<uint32_t, size_t> first_seen;
      for (size_t j = run_start; j < i; ++j) {
        first_seen.emplace(session.entries[j].source, j);
      }
      for (DirectionEstimate& estimate : estimates) {
        auto fa = first_seen.find(estimate.a);
        auto fb = first_seen.find(estimate.b);
        if (fa == first_seen.end() || fb == first_seen.end()) continue;
        if (fa->second < fb->second) {
          ++estimate.first_a;
        } else {
          ++estimate.first_b;
        }
      }
      run_start = i;
    }
  }

  // Exact two-sided sign test per pair.
  for (DirectionEstimate& estimate : estimates) {
    const int64_t n = estimate.first_a + estimate.first_b;
    if (n < config_.min_runs) continue;
    const int64_t k = std::min(estimate.first_a, estimate.first_b);
    estimate.p_value =
        std::min(1.0, 2.0 * stats::BinomialCdf(k, n, 0.5));
    if (estimate.p_value < config_.alpha) {
      estimate.direction = estimate.first_a > estimate.first_b
                               ? CallDirection::kAToB
                               : CallDirection::kBToA;
    }
  }
  return estimates;
}

}  // namespace logmine::core
