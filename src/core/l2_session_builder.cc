#include "core/l2_session_builder.h"

#include <cassert>
#include <map>

#include "log/filter.h"
#include "obs/obs.h"

namespace logmine::core {

std::vector<Session> SessionBuilder::Build(const LogStore& store,
                                           TimeMs begin, TimeMs end,
                                           SessionBuildStats* stats) const {
  // Default options can neither cancel nor time out, so the status is
  // always OK.
  return Build(store, begin, end, RunOptions{}, stats).value();
}

Result<std::vector<Session>> SessionBuilder::Build(
    const LogStore& store, TimeMs begin, TimeMs end,
    const RunOptions& options, SessionBuildStats* stats) const {
  assert(store.index_built());
  LOGMINE_SPAN_GLOBAL("l2/build_sessions", obs::Metric::kL2SessionBuildNs);
  const auto deadline = StopDeadline(options);
  const bool stoppable =
      options.cancel != nullptr ||
      deadline != std::chrono::steady_clock::time_point::max();
  std::vector<Session> sessions;
  std::map<LogStore::UserId, Session> open;
  SessionBuildStats local;

  auto finalize = [&](Session&& session) {
    if (session.entries.size() >= config_.min_logs) {
      local.logs_assigned += static_cast<int64_t>(session.entries.size());
      sessions.push_back(std::move(session));
    }
  };

  for (uint32_t idx : IndicesInRange(store, begin, end)) {
    if (stoppable && (local.logs_considered & 1023) == 0) {
      LOGMINE_RETURN_IF_ERROR(
          CheckStop(options.cancel, deadline, "session build"));
    }
    ++local.logs_considered;
    const LogStore::UserId user = store.user_id(idx);
    if (user == LogStore::kNoUser) continue;
    ++local.logs_with_context;
    const TimeMs ts = store.client_ts(idx);
    auto it = open.find(user);
    if (it != open.end() && ts - it->second.entries.back().ts > config_.max_gap) {
      finalize(std::move(it->second));
      open.erase(it);
      it = open.end();
    }
    if (it == open.end()) {
      Session fresh;
      fresh.user = user;
      it = open.emplace(user, std::move(fresh)).first;
    }
    it->second.entries.push_back(
        SessionLogEntry{ts, store.source_id(idx), idx});
  }
  for (auto& [user, session] : open) {
    finalize(std::move(session));
  }

  local.num_sessions = sessions.size();
  local.assigned_fraction =
      local.logs_considered == 0
          ? 0.0
          : static_cast<double>(local.logs_assigned) /
                static_cast<double>(local.logs_considered);
  obs::Count(obs::Metric::kL2SessionsBuilt,
             static_cast<int64_t>(local.num_sessions));
  obs::Count(obs::Metric::kL2SessionLogsAssigned, local.logs_assigned);
  if (stats != nullptr) *stats = local;
  return sessions;
}

}  // namespace logmine::core
