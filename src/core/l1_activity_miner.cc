#include "core/l1_activity_miner.h"

#include <algorithm>
#include <array>
#include <bit>
#include <optional>
#include <span>
#include <utility>

#include "core/slotting.h"
#include "obs/obs.h"
#include "stats/order_stats_ci.h"
#include "util/executor.h"
#include "util/rng.h"

namespace logmine::core {

stats::MedianDistanceTestResult L1ActivityMiner::TestSlot(
    const LogStore& store, LogStore::SourceId a, LogStore::SourceId b,
    TimeMs begin, TimeMs end, uint64_t salt) const {
  const std::span<const int64_t> ts_a =
      store.SourceTimestampsInRange(a, begin, end);
  const std::span<const int64_t> ts_b =
      store.SourceTimestampsInRange(b, begin, end);
  Rng rng(config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
  return stats::MedianDistanceTest(ts_a, ts_b, begin, end, config_.test,
                                   &rng);
}

namespace {

// Per-(slot, source) products of the precompute fan-out, shared by every
// test in the slot that involves the source (DESIGN.md §11): the sorted
// subsample of the source's own timestamps (its S_b when it is the
// target), the merged "near set" — the timestamps within distance
// < lower(CI_r) of some log of this source, as disjoint closed integer
// intervals (all a test against this reference reads of CI_r), and the
// upper CI rank for |S_b| (all it reads of CI_b — see the rank-count
// identity at the phase-1b loop).
struct SlotSourceRef {
  std::vector<int64_t> sub_sorted;
  /// The near set's interval boundaries, flattened: strictly increasing
  /// values s_0, e_0+1, s_1, e_1+1, ..., INT64_MAX (sentinel), where
  /// the disjoint closed intervals [s_i, e_i] cover exactly the
  /// timestamps whose nearest log of this source is closer than the
  /// baseline CI lower endpoint. p is inside iff #{ boundaries <= p }
  /// is odd — the flat form the phase-1b merge-walk consumes. Empty
  /// when the endpoint could not be computed (or is <= 1 ms) — every
  /// test against this reference is negative then.
  std::vector<int64_t> near_bounds;
  /// Total width of the near intervals — a proxy for how likely a test
  /// against this reference is positive. Phase 1b evaluates the
  /// narrower-reference direction first so the short-circuit AND
  /// usually stops after the direction more likely to be negative.
  int64_t near_total = 0;
  int test_upper_rank = 0;  ///< upper rank at n = |sub_sorted|; 0 = no CI
};

// One (slot, pair) test of the fine-grained fan-out.
struct PairTest {
  uint32_t slot = 0;
  uint32_t a = 0;
  uint32_t b = 0;
};

// Sorts `v`, whose values all lie in [lo, hi): one bucket pass on the
// top eight bits of the offset leaves the array nearly sorted (about
// one element per bucket at baseline sample sizes), and one insertion
// pass finishes it — several times cheaper than introsort for the
// uniform baseline draw, with identical output (any correct sort of
// the same multiset yields the same array).
void SortBounded(std::vector<int64_t>* v, int64_t lo, int64_t hi) {
  const size_t n = v->size();
  if (n < 64) {
    std::sort(v->begin(), v->end());
    return;
  }
  const auto width = static_cast<uint64_t>(hi - lo);
  const int bits = std::bit_width(width > 1 ? width - 1 : uint64_t{1});
  const int shift = bits > 8 ? bits - 8 : 0;
  std::array<uint32_t, 257> counts{};
  for (const int64_t p : *v) {
    ++counts[(static_cast<uint64_t>(p - lo) >> shift) + 1];
  }
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  std::vector<int64_t> scratch(n);
  for (const int64_t p : *v) {
    scratch[counts[static_cast<uint64_t>(p - lo) >> shift]++] = p;
  }
  for (size_t i = 1; i < n; ++i) {
    const int64_t x = scratch[i];
    size_t j = i;
    for (; j > 0 && scratch[j - 1] > x; --j) scratch[j] = scratch[j - 1];
    scratch[j] = x;
  }
  v->swap(scratch);
}

}  // namespace

Result<L1Result> L1ActivityMiner::Mine(const LogStore& store, TimeMs begin,
                                       TimeMs end) const {
  return Mine(store, begin, end, PairRange{});
}

Result<L1Result> L1ActivityMiner::Mine(const LogStore& store, TimeMs begin,
                                       TimeMs end, PairRange range) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (begin >= end) {
    return Status::InvalidArgument("empty mining interval");
  }
  if (range.count < 1 || range.index >= range.count) {
    return Status::InvalidArgument(
        "pair range " + std::to_string(range.index) + " outside [0, " +
        std::to_string(range.count) + ")");
  }
  const bool anchored = config_.salt_anchor != L1Config::kNoSaltAnchor;
  if (anchored && config_.adaptive_slots) {
    return Status::InvalidArgument(
        "salt_anchor requires the fixed slot grid (adaptive_slots=false)");
  }
  LOGMINE_SPAN_GLOBAL("l1/mine", obs::Metric::kL1MineNs);
  obs::Count(obs::Metric::kL1Runs);
  // All-source timestamps in the window, needed by both the adaptive
  // slotting and the intensity-proportional baseline.
  std::vector<TimeMs> all_events;
  if (config_.adaptive_slots ||
      config_.baseline == L1Baseline::kIntensityProportional) {
    size_t total = 0;
    for (uint32_t s = 0; s < store.num_sources(); ++s) {
      total += static_cast<size_t>(store.CountInRange(s, begin, end));
    }
    all_events.reserve(total);
    for (uint32_t s = 0; s < store.num_sources(); ++s) {
      const std::span<const TimeMs> local = store.SourceTimestampsInRange(
          static_cast<LogStore::SourceId>(s), begin, end);
      all_events.insert(all_events.end(), local.begin(), local.end());
    }
    std::sort(all_events.begin(), all_events.end());
  }
  const std::vector<TimeSlot> slots =
      config_.adaptive_slots
          ? MakeAdaptiveSlots(all_events, begin, end, config_.adaptive)
          : MakeSlots(begin, end, config_.slot_length);
  const auto num_sources = static_cast<uint32_t>(store.num_sources());
  const size_t ns = num_sources;
  const size_t num_slots = slots.size();

  L1Result result;
  result.slots_total = static_cast<int>(num_slots);
  obs::Count(obs::Metric::kL1SlotsTotal, static_cast<int64_t>(num_slots));
  if (num_sources == 0) return result;

  // Phase 0 — activity census (cheap): zero-copy views of every
  // (slot, source) slice of the store's sorted index, the per-slot
  // usable-source lists, and, from those, the exact per-pair support —
  // the number of slots where both sources clear `minlogs`. Support
  // depends on counts only, never on test outcomes, so it is known
  // before a single test runs; that is what pruning keys off.
  std::vector<std::span<const int64_t>> views(num_slots * ns);
  std::vector<std::vector<uint32_t>> usable(num_slots);
  std::vector<std::span<const int64_t>> slot_events(num_slots);
  std::vector<int32_t> support(ns * ns, 0);
  for (size_t slot_idx = 0; slot_idx < num_slots; ++slot_idx) {
    const TimeSlot& slot = slots[slot_idx];
    for (uint32_t s = 0; s < num_sources; ++s) {
      const std::span<const int64_t> view =
          store.SourceTimestampsInRange(s, slot.begin, slot.end);
      if (static_cast<int64_t>(view.size()) >= config_.minlogs) {
        views[slot_idx * ns + s] = view;
        usable[slot_idx].push_back(s);
      }
    }
    if (config_.baseline == L1Baseline::kIntensityProportional) {
      auto lo = std::lower_bound(all_events.begin(), all_events.end(),
                                 slot.begin);
      auto hi = std::lower_bound(lo, all_events.end(), slot.end);
      slot_events[slot_idx] = {lo, hi};
    }
    for (size_t i = 0; i < usable[slot_idx].size(); ++i) {
      for (size_t j = i + 1; j < usable[slot_idx].size(); ++j) {
        ++support[usable[slot_idx][i] * ns + usable[slot_idx][j]];
      }
    }
  }

  // A pair can only be dependent when its support reaches th_s * n; a
  // pair whose *maximum attainable* support (= its exact support, known
  // from the census) falls short is skipped entirely when pruning is on.
  const double min_support =
      config_.th_s * static_cast<double>(num_slots);
  auto reaches_support = [&](int32_t supported) {
    return static_cast<double>(supported) >= min_support;
  };
  // Pair-range sharding: rank pairs (a < b) lexicographically and keep
  // only this shard's contiguous slice of ranks. Pairs outside the
  // slice are another shard's work — never tested, never listed, not
  // even counted as pruned, so per-shard results partition the full
  // run's result exactly.
  const uint64_t total_pairs =
      static_cast<uint64_t>(ns) * (ns - 1) / 2;
  const uint64_t range_lo = total_pairs * range.index / range.count;
  const uint64_t range_hi = total_pairs * (range.index + 1) / range.count;
  auto in_range = [&](uint32_t a, uint32_t b) {
    if (range.count == 1) return true;
    const uint64_t rank = static_cast<uint64_t>(a) * (ns - 1) -
                          static_cast<uint64_t>(a) * (a - 1) / 2 +
                          (b - a - 1);
    return rank >= range_lo && rank < range_hi;
  };
  std::vector<uint8_t> tested(ns * ns, 0);
  for (uint32_t a = 0; a < num_sources; ++a) {
    for (uint32_t b = a + 1; b < num_sources; ++b) {
      const size_t key = a * ns + b;
      if (support[key] == 0 || !in_range(a, b)) continue;
      tested[key] = !config_.prune_support || reaches_support(support[key]);
      if (tested[key]) {
        ++result.pairs_tested;
      } else {
        ++result.pairs_pruned;
      }
    }
  }
  obs::Count(obs::Metric::kL1PairsTested, result.pairs_tested);
  obs::Count(obs::Metric::kL1PairsPruned, result.pairs_pruned);

  // Flatten the surviving work: one PairTest per (slot, tested pair),
  // in (slot, a, b) order, and one precompute job per (slot, source)
  // that at least one surviving test touches.
  std::vector<PairTest> items;
  std::vector<std::pair<uint32_t, uint32_t>> ref_jobs;
  {
    std::vector<uint8_t> needed(ns, 0);
    for (size_t slot_idx = 0; slot_idx < num_slots; ++slot_idx) {
      std::fill(needed.begin(), needed.end(), 0);
      for (size_t i = 0; i < usable[slot_idx].size(); ++i) {
        for (size_t j = i + 1; j < usable[slot_idx].size(); ++j) {
          const uint32_t a = usable[slot_idx][i];
          const uint32_t b = usable[slot_idx][j];
          if (!tested[a * ns + b]) continue;
          items.push_back({static_cast<uint32_t>(slot_idx), a, b});
          needed[a] = needed[b] = 1;
        }
      }
      for (uint32_t s : usable[slot_idx]) {
        if (needed[s]) {
          ref_jobs.emplace_back(static_cast<uint32_t>(slot_idx), s);
        }
      }
    }
  }
  obs::Count(obs::Metric::kL1SlotTests, static_cast<int64_t>(items.size()));

  // Median-CI ranks depend only on (n, level); every sample here has at
  // most `sample_size` points, so one serial pass caches them all.
  // Entries are nullopt when the level is unreachable at that n (the
  // test is negative then).
  const size_t sample_size = config_.test.sample_size;
  std::vector<std::optional<stats::MedianCi>> ranks_by_n;
  ranks_by_n.resize(std::min<size_t>(sample_size, 4096) + 1);
  for (size_t n = 1; n < ranks_by_n.size(); ++n) {
    auto ranks =
        stats::MedianCiRanks(static_cast<int64_t>(n), config_.test.level);
    if (ranks.ok()) ranks_by_n[n] = ranks.value();
  }
  auto ranks_for = [&](size_t n) -> std::optional<stats::MedianCi> {
    if (n == 0) return std::nullopt;
    if (n < ranks_by_n.size()) return ranks_by_n[n];
    auto ranks =
        stats::MedianCiRanks(static_cast<int64_t>(n), config_.test.level);
    if (!ranks.ok()) return std::nullopt;
    return ranks.value();
  };

  // Phase 1a — per-(slot, source) precompute on the shared executor:
  // each job draws from an RNG stream keyed by (seed, slot, source) via
  // Rng::Fork, so its products are independent of scheduling, thread
  // count, and of which *other* jobs pruning kept. Per job: the
  // baseline points (uniform, or a jittered subsample of the slot's
  // overall stream), their distances to the source via one merged
  // sweep, the lower CI endpoint of those distances (one nth_element,
  // not a sort) expanded into the merged near-interval set every test
  // against this reference scans, and the sorted reservoir subsample of
  // the source's own timestamps (the S_b every test of this target
  // reuses). Distances and the CI endpoint are integral millisecond
  // values, so "distance < lower" is exactly "inside [t-(L-1), t+(L-1)]
  // for some log t" and the interval form loses nothing.
  std::vector<SlotSourceRef> refs(num_slots * ns);
  const Rng master(config_.seed);
  Executor::Shared().ParallelFor(
      ref_jobs.size(),
      [&](size_t job_idx) {
        const auto [slot_idx, s] = ref_jobs[job_idx];
        const TimeSlot& slot = slots[slot_idx];
        const std::span<const int64_t> view = views[slot_idx * ns + s];
        SlotSourceRef& ref = refs[slot_idx * ns + s];
        // Anchored: key the stream by (source name, absolute slot) so
        // the draw is invariant under window position and store
        // composition; otherwise the historic (relative slot, dense id)
        // key, which keeps seed-reference results byte-identical.
        Rng rng =
            anchored
                ? master.Fork(store.source_name(s))
                      .Fork(static_cast<uint64_t>(
                          (slot.begin - config_.salt_anchor) /
                          config_.slot_length))
                : master.Fork(static_cast<uint64_t>(slot_idx) * ns + s);
        std::vector<int64_t> baseline;
        if (config_.baseline == L1Baseline::kIntensityProportional) {
          baseline =
              stats::Subsample(slot_events[slot_idx], sample_size, &rng);
          if (config_.baseline_jitter > 0) {
            for (int64_t& point : baseline) {
              point += rng.UniformInt(-config_.baseline_jitter,
                                      config_.baseline_jitter);
            }
          }
        } else {
          baseline =
              stats::UniformPoints(slot.begin, slot.end, sample_size, &rng);
        }
        if (!view.empty() && !baseline.empty()) {
          if (config_.baseline == L1Baseline::kIntensityProportional) {
            // Jittered subsamples arrive nearly (or fully) sorted.
            if (!std::is_sorted(baseline.begin(), baseline.end())) {
              std::sort(baseline.begin(), baseline.end());
            }
          } else {
            SortBounded(&baseline, slot.begin, slot.end);
          }
          std::vector<int64_t> dists;
          stats::DistancesToNearestSorted(baseline, view, &dists);
          if (auto ranks = ranks_for(dists.size())) {
            const auto lo = static_cast<size_t>(ranks->lower_rank);
            std::nth_element(dists.begin(),
                             dists.begin() + static_cast<ptrdiff_t>(lo - 1),
                             dists.end());
            // dist < lower <=> dist <= radius, with closed intervals
            // merged whenever they touch or overlap so the flattened
            // boundary list is strictly increasing.
            const int64_t radius = dists[lo - 1] - 1;
            if (radius >= 0) {
              int64_t cur_start = view.front() - radius;
              int64_t cur_end = view.front() + radius;
              for (int64_t t : view.subspan(1)) {
                if (t - radius <= cur_end + 1) {
                  cur_end = t + radius;
                } else {
                  ref.near_bounds.push_back(cur_start);
                  ref.near_bounds.push_back(cur_end + 1);
                  ref.near_total += cur_end + 1 - cur_start;
                  cur_start = t - radius;
                  cur_end = t + radius;
                }
              }
              ref.near_bounds.push_back(cur_start);
              ref.near_bounds.push_back(cur_end + 1);
              ref.near_total += cur_end + 1 - cur_start;
              ref.near_bounds.push_back(INT64_MAX);  // merge sentinel
            }
          }
        }
        ref.sub_sorted = stats::Subsample(view, sample_size, &rng);
        // Selection-sampled subsamples of the (sorted) view come back in
        // pool order; only the reservoir path needs the sort.
        if (!std::is_sorted(ref.sub_sorted.begin(), ref.sub_sorted.end())) {
          std::sort(ref.sub_sorted.begin(), ref.sub_sorted.end());
        }
        if (auto ranks = ranks_for(ref.sub_sorted.size())) {
          ref.test_upper_rank = ranks->upper_rank;
        }
        // Sentinel for the phase-1b walk: both inner loops terminate on
        // it without an index bounds check (every interval bound is
        // below INT64_MAX).
        ref.sub_sorted.push_back(INT64_MAX);
      },
      config_.num_threads);

  // Phase 1b — the tests, resharded to (slot, pair-range) work items:
  // `pair_chunk` consecutive PairTests per item, so a handful of heavy
  // slots spread across the whole pool instead of serializing it. No
  // RNG draws happen here at all (every sample was fixed in phase 1a),
  // and each item writes only its own outcome slot, so any schedule
  // produces the same bytes. A pair is positive when B's subsample sits
  // closer to A than the baseline does (upper CI_b < lower CI_r) in
  // *both* directions. The comparison uses the order-statistic identity
  //   x_(r) < L  <=>  #{ x_i < L } >= r,
  // so each direction is one merge-walk of S_b's points against A's
  // flattened near intervals — no distance array, no selection, no
  // touching A's view — that short-circuits the moment the outcome is
  // decided (`need` hits, or more misses than the budget allows).
  auto direction_positive = [](const SlotSourceRef& target,
                               const SlotSourceRef& reference) {
    if (reference.near_bounds.empty() || target.test_upper_rank == 0) {
      return false;
    }
    const int64_t* pts = target.sub_sorted.data();  // sentinel-terminated
    const int64_t* bounds = reference.near_bounds.data();
    const size_t need = static_cast<size_t>(target.test_upper_rank);
    const size_t n = target.sub_sorted.size() - 1;  // minus the sentinel
    // Merge-walk points and boundary pairs, each touched once; resolves
    // as soon as `need` points hit (positive) or more than n - need
    // points miss (negative) — whichever comes first. Both arrays end
    // in an INT64_MAX sentinel, so neither inner loop needs an index
    // bounds check: the point sentinel compares ≥ every bound and the
    // bound sentinel ends the outer loop.
    size_t misses_left = n - need;
    size_t count = 0;
    size_t i = 0;
    for (size_t j = 0; bounds[j] != INT64_MAX; j += 2) {
      const int64_t start = bounds[j];
      const int64_t past = bounds[j + 1];
      while (pts[i] < start) {
        if (misses_left == 0) return false;
        --misses_left;
        ++i;
      }
      while (pts[i] < past) {
        ++count;
        ++i;
      }
      if (count >= need) return true;
      if (pts[i] == INT64_MAX) break;
    }
    return false;  // the points after the last interval are all misses
  };
  std::vector<uint8_t> positive(items.size(), 0);
  Executor::Shared().ParallelForChunks(
      items.size(), std::max<size_t>(config_.pair_chunk, 1),
      [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t k = chunk_begin; k < chunk_end; ++k) {
          const PairTest& item = items[k];
          const size_t base = static_cast<size_t>(item.slot) * ns;
          const SlotSourceRef& ref_a = refs[base + item.a];
          const SlotSourceRef& ref_b = refs[base + item.b];
          // Evaluate the narrower-reference direction first: it is the
          // one more likely negative, so the short-circuit AND usually
          // skips the other walk. && is commutative here, so the
          // outcome (and the result bytes) do not depend on the order.
          const bool positive_both =
              ref_a.near_total <= ref_b.near_total
                  ? direction_positive(ref_b, ref_a) &&
                        direction_positive(ref_a, ref_b)
                  : direction_positive(ref_a, ref_b) &&
                        direction_positive(ref_b, ref_a);
          if (positive_both) positive[k] = 1;
        }
      },
      config_.num_threads);

  // Phase 2 — serial merge in (a, b) order. Support comes straight from
  // the census (identical for tested and pruned pairs); positives
  // accumulate from the outcome array in item order.
  std::vector<size_t> pair_index(ns * ns, SIZE_MAX);
  result.pairs.reserve(
      static_cast<size_t>(result.pairs_tested + result.pairs_pruned));
  for (uint32_t a = 0; a < num_sources; ++a) {
    for (uint32_t b = a + 1; b < num_sources; ++b) {
      const size_t key = a * ns + b;
      if (support[key] == 0 || !in_range(a, b)) continue;
      pair_index[key] = result.pairs.size();
      L1PairResult pr;
      pr.a = a;
      pr.b = b;
      pr.slots_total = static_cast<int>(num_slots);
      pr.slots_supported = support[key];
      result.pairs.push_back(pr);
    }
  }
  for (size_t k = 0; k < items.size(); ++k) {
    if (positive[k]) {
      ++result.pairs[pair_index[items[k].a * ns + items[k].b]]
            .slots_positive;
    }
  }
  for (L1PairResult& pr : result.pairs) {
    // Positivity is only defined for pairs that can reach the support
    // threshold; zeroing the rest here keeps the pruned and unpruned
    // paths byte-identical (the unpruned path may have tested them).
    if (!reaches_support(pr.slots_supported)) pr.slots_positive = 0;
    pr.positive_ratio =
        pr.slots_supported == 0
            ? 0.0
            : static_cast<double>(pr.slots_positive) /
                  static_cast<double>(pr.slots_supported);
    pr.dependent = reaches_support(pr.slots_supported) &&
                   pr.positive_ratio >= config_.th_pr;
  }
  return result;
}

DependencyModel L1Result::Dependencies(const LogStore& store) const {
  DependencyModel model;
  for (const L1PairResult& pr : pairs) {
    if (pr.dependent) {
      model.Insert(MakeUnorderedPair(store.source_name(pr.a),
                                     store.source_name(pr.b)));
    }
  }
  return model;
}

}  // namespace logmine::core
