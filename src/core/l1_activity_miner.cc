#include "core/l1_activity_miner.h"

#include <algorithm>
#include <span>
#include <tuple>

#include "core/slotting.h"
#include "obs/obs.h"
#include "util/executor.h"
#include "util/rng.h"

namespace logmine::core {

stats::MedianDistanceTestResult L1ActivityMiner::TestSlot(
    const LogStore& store, LogStore::SourceId a, LogStore::SourceId b,
    TimeMs begin, TimeMs end, uint64_t salt) const {
  const std::span<const int64_t> ts_a =
      store.SourceTimestampsInRange(a, begin, end);
  const std::span<const int64_t> ts_b =
      store.SourceTimestampsInRange(b, begin, end);
  Rng rng(config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
  return stats::MedianDistanceTest(ts_a, ts_b, begin, end, config_.test,
                                   &rng);
}

Result<L1Result> L1ActivityMiner::Mine(const LogStore& store, TimeMs begin,
                                       TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (begin >= end) {
    return Status::InvalidArgument("empty mining interval");
  }
  LOGMINE_SPAN_GLOBAL("l1/mine", obs::Metric::kL1MineNs);
  obs::Count(obs::Metric::kL1Runs);
  // All-source timestamps in the window, needed by both the adaptive
  // slotting and the intensity-proportional baseline.
  std::vector<TimeMs> all_events;
  if (config_.adaptive_slots ||
      config_.baseline == L1Baseline::kIntensityProportional) {
    size_t total = 0;
    for (uint32_t s = 0; s < store.num_sources(); ++s) {
      total += static_cast<size_t>(store.CountInRange(s, begin, end));
    }
    all_events.reserve(total);
    for (uint32_t s = 0; s < store.num_sources(); ++s) {
      const std::span<const TimeMs> local = store.SourceTimestampsInRange(
          static_cast<LogStore::SourceId>(s), begin, end);
      all_events.insert(all_events.end(), local.begin(), local.end());
    }
    std::sort(all_events.begin(), all_events.end());
  }
  const std::vector<TimeSlot> slots =
      config_.adaptive_slots
          ? MakeAdaptiveSlots(all_events, begin, end, config_.adaptive)
          : MakeSlots(begin, end, config_.slot_length);
  const auto num_sources = static_cast<uint32_t>(store.num_sources());

  L1Result result;
  result.slots_total = static_cast<int>(slots.size());
  // Accumulators indexed by pair key a * num_sources + b (a < b). The
  // O(num_sources^2) scratch is thread_local so repeated Mine calls
  // (the daily runner, the hourly load experiment) reuse one buffer.
  std::vector<L1PairResult> acc;
  acc.reserve(static_cast<size_t>(num_sources) * (num_sources - 1) / 2);
  thread_local std::vector<size_t> pair_index;
  pair_index.assign(static_cast<size_t>(num_sources) * num_sources,
                    SIZE_MAX);
  auto pair_slot = [&](uint32_t a, uint32_t b) -> L1PairResult& {
    const size_t key = static_cast<size_t>(a) * num_sources + b;
    if (pair_index[key] == SIZE_MAX) {
      pair_index[key] = acc.size();
      L1PairResult fresh;
      fresh.a = a;
      fresh.b = b;
      fresh.slots_total = static_cast<int>(slots.size());
      acc.push_back(fresh);
    }
    return acc[pair_index[key]];
  };

  // Phase 1 — per-slot testing on the shared executor: every
  // (slot, pair) test draws from an RNG stream keyed by
  // (seed, slot, a, b), so the outcome is independent of scheduling and
  // thread count.
  struct SlotOutcome {
    // (a, b, both_directions_positive) per supported pair.
    std::vector<std::tuple<uint32_t, uint32_t, bool>> pairs;
  };
  std::vector<SlotOutcome> outcomes(slots.size());
  const Rng master(config_.seed);
  auto process_slot = [&](size_t slot_idx) {
    const TimeSlot& slot = slots[slot_idx];
    // Sources active enough in this slot, with zero-copy views of their
    // timestamps in the store's sorted index.
    std::vector<uint32_t> usable;
    std::vector<std::span<const int64_t>> local(num_sources);
    for (uint32_t s = 0; s < num_sources; ++s) {
      const std::span<const int64_t> view =
          store.SourceTimestampsInRange(s, slot.begin, slot.end);
      if (static_cast<int64_t>(view.size()) >= config_.minlogs) {
        local[s] = view;
        usable.push_back(s);
      }
    }
    // Intensity-proportional baseline: the slot's slice of the overall
    // log stream.
    std::span<const int64_t> slot_events;
    if (config_.baseline == L1Baseline::kIntensityProportional) {
      auto lo = std::lower_bound(all_events.begin(), all_events.end(),
                                 slot.begin);
      auto hi = std::lower_bound(lo, all_events.end(), slot.end);
      slot_events = {lo, hi};
    }
    auto run_test = [&](std::span<const int64_t> from,
                        std::span<const int64_t> to, Rng* rng) {
      if (config_.baseline == L1Baseline::kIntensityProportional) {
        return stats::MedianDistanceTestWithBaseline(
            from, to, slot_events, config_.baseline_jitter, config_.test,
            rng);
      }
      return stats::MedianDistanceTest(from, to, slot.begin, slot.end,
                                       config_.test, rng);
    };
    for (size_t i = 0; i < usable.size(); ++i) {
      for (size_t j = i + 1; j < usable.size(); ++j) {
        const uint32_t a = usable[i];
        const uint32_t b = usable[j];
        const uint64_t fork_key =
            (static_cast<uint64_t>(slot_idx) * num_sources + a) *
                num_sources + b;
        Rng rng_ab = master.Fork(fork_key);
        bool positive = false;
        const auto forward = run_test(local[a], local[b], &rng_ab);
        if (forward.positive) {  // needs both directions
          positive = run_test(local[b], local[a], &rng_ab).positive;
        }
        outcomes[slot_idx].pairs.emplace_back(a, b, positive);
      }
    }
  };

  Executor::Shared().ParallelFor(slots.size(), process_slot,
                                 config_.num_threads);

  // Phase 2 — serial merge in slot order (deterministic accumulation).
  obs::Count(obs::Metric::kL1SlotsTotal, static_cast<int64_t>(slots.size()));
  for (const SlotOutcome& outcome : outcomes) {
    obs::Count(obs::Metric::kL1SlotTests,
               static_cast<int64_t>(outcome.pairs.size()));
    for (const auto& [a, b, positive] : outcome.pairs) {
      L1PairResult& pr = pair_slot(a, b);
      ++pr.slots_supported;
      if (positive) ++pr.slots_positive;
    }
  }

  const double min_support = config_.th_s * static_cast<double>(slots.size());
  for (L1PairResult& pr : acc) {
    pr.positive_ratio =
        pr.slots_supported == 0
            ? 0.0
            : static_cast<double>(pr.slots_positive) /
                  static_cast<double>(pr.slots_supported);
    pr.dependent = static_cast<double>(pr.slots_supported) >= min_support &&
                   pr.positive_ratio >= config_.th_pr;
  }
  result.pairs = std::move(acc);
  return result;
}

DependencyModel L1Result::Dependencies(const LogStore& store) const {
  DependencyModel model;
  for (const L1PairResult& pr : pairs) {
    if (pr.dependent) {
      model.Insert(MakeUnorderedPair(store.source_name(pr.a),
                                     store.source_name(pr.b)));
    }
  }
  return model;
}

}  // namespace logmine::core
