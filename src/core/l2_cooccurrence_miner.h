#ifndef LOGMINE_CORE_L2_COOCCURRENCE_MINER_H_
#define LOGMINE_CORE_L2_COOCCURRENCE_MINER_H_

#include <vector>

#include "core/dependency.h"
#include "core/l2_session_builder.h"
#include "log/store.h"
#include "stats/contingency.h"
#include "util/result.h"

namespace logmine::core {

/// Which asymptotic-chi-square association test scores the contingency
/// tables; the paper adopts Dunning's log-likelihood (via Evert's UCS)
/// for its robustness on heavily skewed tables, with Pearson as the
/// classical alternative.
enum class AssociationTest {
  kDunning,
  kPearson,
};

/// Configuration of approach L2 (§3.2).
struct L2Config {
  SessionBuilderConfig session;
  /// Bigram timeout in milliseconds; <= 0 means infinity (no timeout).
  /// Paper default: 1 second.
  TimeMs timeout = 1000;
  AssociationTest test = AssociationTest::kDunning;
  /// Significance level of the association decision.
  double alpha = 0.001;
  /// Joint frequency (o11) below which a pair type is not even scored —
  /// guards the asymptotic test against one-off co-occurrences. The
  /// effective floor adapts to the evidence volume but not to the
  /// timeout: max(min_cooccurrence, min_cooccurrence_per_session *
  /// #sessions).
  int64_t min_cooccurrence = 5;
  double min_cooccurrence_per_session = 0.045;
  /// Parallelism cap for the sharded bigram count, which runs on the
  /// shared `Executor` pool. Counts are additive and shard boundaries
  /// fixed, so results are identical for any thread count.
  /// 1 = serial on the calling thread; 0 = use the whole pool.
  int num_threads = 0;
};

/// Score of one *ordered* bigram type (A, B).
struct L2PairScore {
  LogStore::SourceId a = 0;
  LogStore::SourceId b = 0;
  stats::Contingency2x2 table;
  double score = 0.0;    ///< G^2 or X^2
  double p_value = 1.0;
  bool dependent = false;
};

/// Full result of one L2 run.
struct L2Result {
  std::vector<L2PairScore> scored;  ///< all pair types meeting min_cooccurrence
  SessionBuildStats session_stats;
  int64_t num_bigrams = 0;

  /// Positive decisions as an *unordered* model: a pair is dependent when
  /// either direction tests significant (the paper does not consider
  /// direction in the L1/L2 reference model).
  DependencyModel Dependencies(const LogStore& store) const;
};

/// Approach L2: reconstruct user sessions, extract bigrams of immediately
/// succeeding logs (dropping same-source pairs and gaps beyond the
/// timeout), build a 2x2 contingency table per bigram type, and test for
/// association.
class L2CooccurrenceMiner {
 public:
  explicit L2CooccurrenceMiner(L2Config config) : config_(config) {}

  /// Mines [begin, end); pre-condition: store.index_built().
  Result<L2Result> Mine(const LogStore& store, TimeMs begin,
                        TimeMs end) const;

  /// Cancellable/deadlined variant: `options.cancel`/`options.deadline`
  /// are observed inside the session build, the sharded bigram count
  /// and the scoring loop, so one wall-clock budget covers the whole
  /// pass (`options.max_parallelism` is ignored — `L2Config::
  /// num_threads` stays the parallelism knob). Output on OK is
  /// identical to the plain overload.
  Result<L2Result> Mine(const LogStore& store, TimeMs begin, TimeMs end,
                        const RunOptions& options) const;

  /// Bigram extraction on pre-built sessions — exposed for tests and the
  /// timeout experiment, which re-mines the same sessions under several
  /// timeouts.
  Result<L2Result> MineSessions(const LogStore& store,
                                const std::vector<Session>& sessions) const;

  /// Store-free core: sessions already carry the source ids; all the
  /// store contributed was its source count (accumulator sizing and
  /// marginal vectors). The sliding-window miner (src/serve) feeds
  /// sessions rebuilt from its own compacted columns through this.
  Result<L2Result> MineSessions(size_t num_sources,
                                const std::vector<Session>& sessions,
                                const RunOptions& options = {}) const;

 private:
  L2Config config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L2_COOCCURRENCE_MINER_H_
