#include "core/l3_text_miner.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "log/filter.h"
#include "obs/obs.h"
#include "util/executor.h"
#include "util/flat_counter.h"
#include "util/string_util.h"

namespace logmine::core {
namespace {

// Logs per scanning shard: message scanning is cheap per log, so use
// coarse chunks to keep scheduling overhead negligible.
constexpr size_t kLogsPerShard = 4096;

uint64_t CitationKey(uint32_t app, size_t entry) {
  return (static_cast<uint64_t>(app) << 32) |
         static_cast<uint64_t>(entry & 0xffffffffu);
}

// The identifier alphabet of TokenizeIdentifiers, inlined so the scan
// below needs no per-message vector of token views.
bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// FNV-1a over the lower-cased bytes of [p, p + len) — the hash of the
// token as it would look after lower-casing, computed without writing
// the lower-cased copy anywhere.
uint64_t HashLowered(const char* p, size_t len) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(LowerChar(p[i]));
    h *= 1099511628211ULL;
  }
  return h;
}

#if defined(__SSE2__)
// Byte-lane mask of the bytes of `v` inside [lo, hi]: wrapping subtract
// shifts the range to start at zero, then the saturating subtract is
// zero exactly for in-range lanes (out-of-range lanes, including those
// that wrapped below `lo`, stay positive).
inline __m128i InRange(__m128i v, char lo, char hi) {
  const __m128i shifted = _mm_sub_epi8(v, _mm_set1_epi8(lo));
  const __m128i excess =
      _mm_subs_epu8(shifted, _mm_set1_epi8(static_cast<char>(hi - lo)));
  return _mm_cmpeq_epi8(excess, _mm_setzero_si128());
}

// Byte-lane mask of the identifier alphabet [A-Za-z0-9_]; OR-ing 0x20
// folds upper case onto lower case and maps nothing else into [a-z].
inline __m128i IdentLanes(__m128i v) {
  const __m128i folded = _mm_or_si128(v, _mm_set1_epi8(0x20));
  __m128i ident = InRange(folded, 'a', 'z');
  ident = _mm_or_si128(ident, InRange(v, '0', '9'));
  return _mm_or_si128(ident, _mm_cmpeq_epi8(v, _mm_set1_epi8('_')));
}
#endif

}  // namespace

std::vector<std::string> DefaultStopPatterns() {
  // One pattern per known provider-side log family, plus a few defensive
  // entries; ten patterns, as deployed at HUG.
  return {
      "Received call *",
      "*incoming request*",
      "handling fct *",
      "serve *<-*",
      "*dispatched to worker*",
      "*ping from*",
      "*registration renewed*",
      "ACK *",
      "*keepalive*",
      "*subscribed listener*",
  };
}

L3TextMiner::L3TextMiner(ServiceVocabulary vocabulary, L3Config config)
    : vocabulary_(std::move(vocabulary)),
      config_(std::move(config)),
      stop_matcher_(config_.stop_patterns) {
  token_index_.reserve(vocabulary_.entries.size());
  for (size_t i = 0; i < vocabulary_.entries.size(); ++i) {
    token_index_.emplace_back(ToLower(vocabulary_.entries[i].id), i);
  }
  std::sort(token_index_.begin(), token_index_.end());
  for (const auto& [id, index] : token_index_) {
    if (id.empty() || id.size() >= 64) continue;  // tokens never match
    token_length_masks_[static_cast<unsigned char>(id.front())] |=
        uint64_t{1} << id.size();
  }
  const size_t bucket_count = std::bit_ceil(token_index_.size() * 4 + 4);
  token_buckets_.assign(bucket_count, 0);
  token_bucket_mask_ = static_cast<uint32_t>(bucket_count - 1);
  for (uint32_t i = 0; i < token_index_.size(); ++i) {
    const std::string& key = token_index_[i].first;  // already lower-cased
    size_t b = HashLowered(key.data(), key.size()) & token_bucket_mask_;
    bool duplicate = false;
    while (token_buckets_[b] != 0) {
      if (token_index_[token_buckets_[b] - 1].first == key) {
        duplicate = true;  // first entry in sort order wins
        break;
      }
      b = (b + 1) & token_bucket_mask_;
    }
    if (!duplicate) token_buckets_[b] = i + 1;
  }
#if defined(__SSE2__)
  fused_scan_ok_ = stop_matcher_.infix_needles().size() <= kMaxProbes;
  if (fused_scan_ok_) {
    for (const std::string& needle : stop_matcher_.infix_needles()) {
      NeedleProbe probe;
      probe.first = needle.front();  // needles are never empty
      if (needle.size() >= 2) {
        probe.second = needle[1];
        probe.has_second = true;
      }
      probes_.push_back(probe);
    }
  }
#endif
}

bool L3TextMiner::IsStopped(std::string_view message) const {
  if (!config_.use_stop_patterns) return false;
  return stop_matcher_.MatchesAny(message);
}

void L3TextMiner::AppendCitedEntries(std::string_view message,
                                     std::string* lower_scratch,
                                     std::vector<size_t>* out) const {
  const size_t n = message.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentChar(message[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    while (i < n && IsIdentChar(message[i])) ++i;
    const size_t len = i - begin;
    // No id shares this token's first byte and length — which is true
    // of almost every token — so skip it without lower-casing.
    const auto first = static_cast<unsigned char>(LowerChar(message[begin]));
    if (len >= 64 || ((token_length_masks_[first] >> len) & 1) == 0) {
      continue;
    }
    lower_scratch->assign(message.substr(begin, len));
    for (char& c : *lower_scratch) c = LowerChar(c);
    auto it = std::lower_bound(
        token_index_.begin(), token_index_.end(), *lower_scratch,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != token_index_.end() && it->first == *lower_scratch) {
      out->push_back(it->second);
    }
  }
}

bool L3TextMiner::FusedScan(std::string_view message, ScanScratch* scratch,
                            std::vector<size_t>* out) const {
#if !defined(__SSE2__)
  (void)message;
  (void)scratch;
  (void)out;
  return false;  // unreachable: fused_scan_ok() is false without SSE2
#else
  const bool stop_active =
      config_.use_stop_patterns && stop_matcher_.size() > 0;
  if (stop_active && stop_matcher_.MatchesAnyNonInfix(message)) return true;
  const size_t n = message.size();
  if (n == 0) return false;
  const size_t words = (n + 63) / 64;
  // Copy and NUL-pad the message so every 16-byte load below — including
  // the one-byte-ahead load the pair probes use — stays in bounds. NUL
  // is not an identifier char, so the padding also terminates the last
  // identifier run for free; a probe byte of NUL could raise spurious
  // candidates past the end, which the `pos < n` filter drops. Typical
  // messages (a few dozen bytes) stay entirely on the stack — the
  // per-message cost is what dominates this scan, not the bytes.
  constexpr size_t kStackWords = 8;  // up to 512-byte messages
  alignas(16) char stack_buf[kStackWords * 64 + 16];
  uint64_t stack_ident[kStackWords];
  uint64_t stack_cand[kStackWords];
  const char* data;
  uint64_t* ident_words;
  uint64_t* cand_words;
  if (words <= kStackWords) {
    std::memcpy(stack_buf, message.data(), n);
    std::memset(stack_buf + n, 0, words * 64 + 16 - n);
    data = stack_buf;
    ident_words = stack_ident;
    cand_words = stack_cand;
  } else {
    std::string& padded = scratch->padded;
    padded.assign(message);
    padded.append(words * 64 + 16 - n, '\0');
    scratch->ident.resize(words);
    scratch->cand.resize(words);
    data = padded.data();
    ident_words = scratch->ident.data();
    cand_words = scratch->cand.data();
  }

  const bool scan_needles = stop_active && !probes_.empty();
  __m128i probe_first[kMaxProbes];
  __m128i probe_second[kMaxProbes];
  bool probe_pair[kMaxProbes];
  const size_t num_probes = scan_needles ? probes_.size() : 0;
  for (size_t p = 0; p < num_probes; ++p) {
    probe_first[p] = _mm_set1_epi8(probes_[p].first);
    probe_second[p] = _mm_set1_epi8(probes_[p].second);
    probe_pair[p] = probes_[p].has_second;
  }

  // One SIMD sweep builds both bitmasks, 16 bytes per step: bit i of
  // `ident` marks an identifier byte, bit i of `cand` a position where
  // some needle's first two bytes match — the only positions the (much
  // slower) full needle comparison ever runs at. Quarters past the end
  // of the message hold only padding, so they are skipped outright.
  for (size_t w = 0; w < words; ++w) {
    uint64_t ident = 0;
    uint64_t cand = 0;
    for (size_t q = 0; q < 4; ++q) {
      const size_t off = w * 64 + q * 16;
      if (off >= n) break;  // padding only: contributes no bits
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data + off));
      ident |= static_cast<uint64_t>(
                   static_cast<uint32_t>(_mm_movemask_epi8(IdentLanes(v))))
               << (q * 16);
      if (scan_needles) {
        const __m128i v1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(data + off + 1));
        __m128i hits = _mm_setzero_si128();
        for (size_t p = 0; p < num_probes; ++p) {
          __m128i hit = _mm_cmpeq_epi8(v, probe_first[p]);
          if (probe_pair[p]) {
            hit = _mm_and_si128(hit, _mm_cmpeq_epi8(v1, probe_second[p]));
          }
          hits = _mm_or_si128(hits, hit);
        }
        cand |= static_cast<uint64_t>(
                    static_cast<uint32_t>(_mm_movemask_epi8(hits)))
                << (q * 16);
      }
    }
    ident_words[w] = ident;
    cand_words[w] = cand;
  }

  if (scan_needles) {
    for (size_t w = 0; w < words; ++w) {
      uint64_t m = cand_words[w];
      while (m != 0) {
        const size_t pos =
            w * 64 + static_cast<size_t>(std::countr_zero(m));
        m &= m - 1;
        if (pos < n && stop_matcher_.InfixMatchesAt(message, pos)) {
          return true;
        }
      }
    }
  }

  auto handle_token = [&](size_t begin, size_t len) {
    const auto first =
        static_cast<unsigned char>(LowerChar(message[begin]));
    if (len >= 64 || ((token_length_masks_[first] >> len) & 1) == 0) {
      return;
    }
    // Hash probe with on-the-fly lower-casing: no copy of the token is
    // ever written, and 47-entry vocabularies resolve in ~1 probe.
    const char* tok = message.data() + begin;
    size_t b = HashLowered(tok, len) & token_bucket_mask_;
    while (true) {
      const uint32_t slot = token_buckets_[b];
      if (slot == 0) return;  // not in the vocabulary
      const auto& [key, index] = token_index_[slot - 1];
      if (key.size() == len) {
        size_t k = 0;
        while (k < len && key[k] == LowerChar(tok[k])) ++k;
        if (k == len) {
          // Dedup at push time (out holds this message's few entries),
          // so the caller needs no sort+unique pass per message.
          for (size_t seen : *out) {
            if (seen == index) return;
          }
          out->push_back(index);
          return;
        }
      }
      b = (b + 1) & token_bucket_mask_;
    }
  };

  if (words == 1) {
    // The common case: every identifier run sits inside one word (bits
    // at or past n are zero), so runs pop straight out of two counts.
    uint64_t m = ident_words[0];
    while (m != 0) {
      const int begin = std::countr_zero(m);
      const uint64_t from_begin = m >> begin;
      const int len = std::countr_one(from_begin);
      handle_token(static_cast<size_t>(begin), static_cast<size_t>(len));
      if (begin + len >= 64) break;
      m &= (~uint64_t{0}) << (begin + len);
    }
    return false;
  }

  // Long messages: walk the identifier runs across words; `next` finds
  // the first set (or clear) bit at or after `from`, clamped to n.
  auto next = [&](size_t from, bool want_set) -> size_t {
    size_t w = from >> 6;
    if (w >= words) return n;
    uint64_t m = want_set ? ident_words[w] : ~ident_words[w];
    m &= (~uint64_t{0}) << (from & 63);
    while (m == 0) {
      if (++w == words) return n;
      m = want_set ? ident_words[w] : ~ident_words[w];
    }
    const size_t pos =
        (w << 6) + static_cast<size_t>(std::countr_zero(m));
    return pos < n ? pos : n;
  };
  size_t i = next(0, true);
  while (i < n) {
    const size_t end = next(i + 1, false);
    handle_token(i, end - i);
    i = next(end, true);
  }
  return false;
#endif
}

std::vector<size_t> L3TextMiner::CitedEntries(std::string_view message) const {
  std::vector<size_t> cited;
  std::string scratch;
  AppendCitedEntries(message, &scratch, &cited);
  std::sort(cited.begin(), cited.end());
  cited.erase(std::unique(cited.begin(), cited.end()), cited.end());
  return cited;
}

Result<L3Result> L3TextMiner::Mine(const LogStore& store, TimeMs begin,
                                   TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (vocabulary_.entries.empty()) {
    return Status::FailedPrecondition("empty service vocabulary");
  }
  LOGMINE_SPAN_GLOBAL("l3/mine", obs::Metric::kL3MineNs);
  obs::Count(obs::Metric::kL3Runs);
  L3Result result;
  const std::vector<uint32_t> indices = IndicesInRange(store, begin, end);

  // Sharded scan on the shared executor: each shard counts citations
  // into its own flat table; shard boundaries depend only on the log
  // count and counting is additive, so the merged result is identical
  // for any thread count.
  struct ShardCounts {
    FlatCounter citations{64};
    int64_t scanned = 0;
    int64_t stopped = 0;
  };
  const size_t num_shards =
      (indices.size() + kLogsPerShard - 1) / kLogsPerShard;
  std::vector<ShardCounts> shards(num_shards);
  Executor::Shared().ParallelForChunks(
      indices.size(), kLogsPerShard,
      [&](size_t shard_begin, size_t shard_end) {
        ShardCounts& shard = shards[shard_begin / kLogsPerShard];
        ScanScratch scratch;
        std::vector<size_t> cited;
        const bool fused = fused_scan_ok();
        for (size_t i = shard_begin; i < shard_end; ++i) {
          const uint32_t idx = indices[i];
          ++shard.scanned;
          const std::string_view message = store.message(idx);
          cited.clear();
          if (fused) {
            if (FusedScan(message, &scratch, &cited)) {
              ++shard.stopped;
              continue;
            }
          } else {
            if (IsStopped(message)) {
              ++shard.stopped;
              continue;
            }
            AppendCitedEntries(message, &scratch.lower, &cited);
            // FusedScan dedups at push time; this path dedups here.
            std::sort(cited.begin(), cited.end());
            cited.erase(std::unique(cited.begin(), cited.end()),
                        cited.end());
          }
          for (size_t entry : cited) {
            shard.citations.Add(CitationKey(store.source_id(idx), entry), 1);
          }
        }
      },
      config_.num_threads);

  FlatCounter counts(64);
  for (const ShardCounts& shard : shards) {
    result.logs_scanned += shard.scanned;
    result.logs_stopped += shard.stopped;
    counts.MergeFrom(shard.citations);
  }

  const std::vector<std::pair<uint64_t, int64_t>> entries =
      counts.SortedEntries();  // ascending (app, entry) — the map order
  result.citations.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    L3Citation citation;
    citation.app = static_cast<uint32_t>(key >> 32);
    citation.entry = static_cast<size_t>(key & 0xffffffffu);
    citation.count = count;
    citation.dependent = count >= config_.min_citations;
    result.citations.push_back(citation);
  }
  obs::Count(obs::Metric::kL3LogsScanned, result.logs_scanned);
  obs::Count(obs::Metric::kL3LogsStopped, result.logs_stopped);
  int64_t total_citations = 0;
  for (const L3Citation& citation : result.citations) {
    total_citations += citation.count;
  }
  obs::Count(obs::Metric::kL3CitationsCounted, total_citations);
  return result;
}

DependencyModel L3Result::Dependencies(
    const LogStore& store, const ServiceVocabulary& vocabulary) const {
  DependencyModel model;
  for (const L3Citation& citation : citations) {
    if (citation.dependent) {
      model.Insert({std::string(store.source_name(citation.app)),
                    vocabulary.entries[citation.entry].id});
    }
  }
  return model;
}

}  // namespace logmine::core
