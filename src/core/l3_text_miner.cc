#include "core/l3_text_miner.h"

#include <algorithm>

#include "log/filter.h"
#include "obs/obs.h"
#include "util/executor.h"
#include "util/flat_counter.h"
#include "util/string_util.h"

namespace logmine::core {
namespace {

// Logs per scanning shard: message scanning is cheap per log, so use
// coarse chunks to keep scheduling overhead negligible.
constexpr size_t kLogsPerShard = 4096;

uint64_t CitationKey(uint32_t app, size_t entry) {
  return (static_cast<uint64_t>(app) << 32) |
         static_cast<uint64_t>(entry & 0xffffffffu);
}

// The identifier alphabet of TokenizeIdentifiers, inlined so the scan
// below needs no per-message vector of token views.
bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::vector<std::string> DefaultStopPatterns() {
  // One pattern per known provider-side log family, plus a few defensive
  // entries; ten patterns, as deployed at HUG.
  return {
      "Received call *",
      "*incoming request*",
      "handling fct *",
      "serve *<-*",
      "*dispatched to worker*",
      "*ping from*",
      "*registration renewed*",
      "ACK *",
      "*keepalive*",
      "*subscribed listener*",
  };
}

L3TextMiner::L3TextMiner(ServiceVocabulary vocabulary, L3Config config)
    : vocabulary_(std::move(vocabulary)),
      config_(std::move(config)),
      stop_matcher_(config_.stop_patterns) {
  token_index_.reserve(vocabulary_.entries.size());
  for (size_t i = 0; i < vocabulary_.entries.size(); ++i) {
    token_index_.emplace_back(ToLower(vocabulary_.entries[i].id), i);
  }
  std::sort(token_index_.begin(), token_index_.end());
  for (const auto& [id, index] : token_index_) {
    if (id.empty() || id.size() >= 64) continue;  // tokens never match
    token_length_masks_[static_cast<unsigned char>(id.front())] |=
        uint64_t{1} << id.size();
  }
}

bool L3TextMiner::IsStopped(std::string_view message) const {
  if (!config_.use_stop_patterns) return false;
  return stop_matcher_.MatchesAny(message);
}

void L3TextMiner::AppendCitedEntries(std::string_view message,
                                     std::string* lower_scratch,
                                     std::vector<size_t>* out) const {
  const size_t n = message.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentChar(message[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    while (i < n && IsIdentChar(message[i])) ++i;
    const size_t len = i - begin;
    // No id shares this token's first byte and length — which is true
    // of almost every token — so skip it without lower-casing.
    const auto first = static_cast<unsigned char>(LowerChar(message[begin]));
    if (len >= 64 || ((token_length_masks_[first] >> len) & 1) == 0) {
      continue;
    }
    lower_scratch->assign(message.substr(begin, len));
    for (char& c : *lower_scratch) c = LowerChar(c);
    auto it = std::lower_bound(
        token_index_.begin(), token_index_.end(), *lower_scratch,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != token_index_.end() && it->first == *lower_scratch) {
      out->push_back(it->second);
    }
  }
}

std::vector<size_t> L3TextMiner::CitedEntries(std::string_view message) const {
  std::vector<size_t> cited;
  std::string scratch;
  AppendCitedEntries(message, &scratch, &cited);
  std::sort(cited.begin(), cited.end());
  cited.erase(std::unique(cited.begin(), cited.end()), cited.end());
  return cited;
}

Result<L3Result> L3TextMiner::Mine(const LogStore& store, TimeMs begin,
                                   TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (vocabulary_.entries.empty()) {
    return Status::FailedPrecondition("empty service vocabulary");
  }
  LOGMINE_SPAN_GLOBAL("l3/mine", obs::Metric::kL3MineNs);
  obs::Count(obs::Metric::kL3Runs);
  L3Result result;
  const std::vector<uint32_t> indices = IndicesInRange(store, begin, end);

  // Sharded scan on the shared executor: each shard counts citations
  // into its own flat table; shard boundaries depend only on the log
  // count and counting is additive, so the merged result is identical
  // for any thread count.
  struct ShardCounts {
    FlatCounter citations{64};
    int64_t scanned = 0;
    int64_t stopped = 0;
  };
  const size_t num_shards =
      (indices.size() + kLogsPerShard - 1) / kLogsPerShard;
  std::vector<ShardCounts> shards(num_shards);
  Executor::Shared().ParallelForChunks(
      indices.size(), kLogsPerShard,
      [&](size_t shard_begin, size_t shard_end) {
        ShardCounts& shard = shards[shard_begin / kLogsPerShard];
        std::string lower_scratch;
        std::vector<size_t> cited;
        for (size_t i = shard_begin; i < shard_end; ++i) {
          const uint32_t idx = indices[i];
          ++shard.scanned;
          const std::string_view message = store.message(idx);
          if (IsStopped(message)) {
            ++shard.stopped;
            continue;
          }
          cited.clear();
          AppendCitedEntries(message, &lower_scratch, &cited);
          std::sort(cited.begin(), cited.end());
          cited.erase(std::unique(cited.begin(), cited.end()), cited.end());
          for (size_t entry : cited) {
            shard.citations.Add(CitationKey(store.source_id(idx), entry), 1);
          }
        }
      },
      config_.num_threads);

  FlatCounter counts(64);
  for (const ShardCounts& shard : shards) {
    result.logs_scanned += shard.scanned;
    result.logs_stopped += shard.stopped;
    counts.MergeFrom(shard.citations);
  }

  const std::vector<std::pair<uint64_t, int64_t>> entries =
      counts.SortedEntries();  // ascending (app, entry) — the map order
  result.citations.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    L3Citation citation;
    citation.app = static_cast<uint32_t>(key >> 32);
    citation.entry = static_cast<size_t>(key & 0xffffffffu);
    citation.count = count;
    citation.dependent = count >= config_.min_citations;
    result.citations.push_back(citation);
  }
  obs::Count(obs::Metric::kL3LogsScanned, result.logs_scanned);
  obs::Count(obs::Metric::kL3LogsStopped, result.logs_stopped);
  int64_t total_citations = 0;
  for (const L3Citation& citation : result.citations) {
    total_citations += citation.count;
  }
  obs::Count(obs::Metric::kL3CitationsCounted, total_citations);
  return result;
}

DependencyModel L3Result::Dependencies(
    const LogStore& store, const ServiceVocabulary& vocabulary) const {
  DependencyModel model;
  for (const L3Citation& citation : citations) {
    if (citation.dependent) {
      model.Insert({std::string(store.source_name(citation.app)),
                    vocabulary.entries[citation.entry].id});
    }
  }
  return model;
}

}  // namespace logmine::core
