#include "core/l3_text_miner.h"

#include <algorithm>
#include <map>

#include "log/filter.h"
#include "util/string_util.h"

namespace logmine::core {

std::vector<std::string> DefaultStopPatterns() {
  // One pattern per known provider-side log family, plus a few defensive
  // entries; ten patterns, as deployed at HUG.
  return {
      "Received call *",
      "*incoming request*",
      "handling fct *",
      "serve *<-*",
      "*dispatched to worker*",
      "*ping from*",
      "*registration renewed*",
      "ACK *",
      "*keepalive*",
      "*subscribed listener*",
  };
}

L3TextMiner::L3TextMiner(ServiceVocabulary vocabulary, L3Config config)
    : vocabulary_(std::move(vocabulary)), config_(std::move(config)) {
  token_index_.reserve(vocabulary_.entries.size());
  for (size_t i = 0; i < vocabulary_.entries.size(); ++i) {
    token_index_.emplace_back(ToLower(vocabulary_.entries[i].id), i);
  }
  std::sort(token_index_.begin(), token_index_.end());
}

bool L3TextMiner::IsStopped(std::string_view message) const {
  if (!config_.use_stop_patterns) return false;
  for (const std::string& pattern : config_.stop_patterns) {
    if (WildcardMatch(pattern, message)) return true;
  }
  return false;
}

std::vector<size_t> L3TextMiner::CitedEntries(std::string_view message) const {
  std::vector<size_t> cited;
  for (std::string_view token : TokenizeIdentifiers(message)) {
    const std::string lower = ToLower(token);
    auto it = std::lower_bound(
        token_index_.begin(), token_index_.end(), lower,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != token_index_.end() && it->first == lower) {
      cited.push_back(it->second);
    }
  }
  std::sort(cited.begin(), cited.end());
  cited.erase(std::unique(cited.begin(), cited.end()), cited.end());
  return cited;
}

Result<L3Result> L3TextMiner::Mine(const LogStore& store, TimeMs begin,
                                   TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (vocabulary_.entries.empty()) {
    return Status::FailedPrecondition("empty service vocabulary");
  }
  L3Result result;
  std::map<std::pair<uint32_t, size_t>, int64_t> counts;
  for (uint32_t idx : IndicesInRange(store, begin, end)) {
    ++result.logs_scanned;
    const std::string_view message = store.message(idx);
    if (IsStopped(message)) {
      ++result.logs_stopped;
      continue;
    }
    for (size_t entry : CitedEntries(message)) {
      ++counts[{store.source_id(idx), entry}];
    }
  }
  result.citations.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    L3Citation citation;
    citation.app = key.first;
    citation.entry = key.second;
    citation.count = count;
    citation.dependent = count >= config_.min_citations;
    result.citations.push_back(citation);
  }
  return result;
}

DependencyModel L3Result::Dependencies(
    const LogStore& store, const ServiceVocabulary& vocabulary) const {
  DependencyModel model;
  for (const L3Citation& citation : citations) {
    if (citation.dependent) {
      model.Insert({std::string(store.source_name(citation.app)),
                    vocabulary.entries[citation.entry].id});
    }
  }
  return model;
}

}  // namespace logmine::core
