#ifndef LOGMINE_CORE_L2_SESSION_BUILDER_H_
#define LOGMINE_CORE_L2_SESSION_BUILDER_H_

#include <cstdint>
#include <vector>

#include "log/store.h"
#include "util/executor.h"
#include "util/result.h"
#include "util/time_util.h"

namespace logmine::core {

/// One log inside a reconstructed user session: only source and time are
/// used downstream — "a session is treated as an ordered sequence of
/// activity statements by different applications".
struct SessionLogEntry {
  TimeMs ts = 0;
  LogStore::SourceId source = 0;
  uint32_t record_index = 0;
};

/// A reconstructed user session.
struct Session {
  LogStore::UserId user = 0;
  std::vector<SessionLogEntry> entries;  ///< ordered by ts

  TimeMs start() const { return entries.empty() ? 0 : entries.front().ts; }
  TimeMs end() const { return entries.empty() ? 0 : entries.back().ts; }
};

/// Session reconstruction parameters. The paper's exact algorithm is
/// site-specific; we group context-bearing logs per user and split on
/// inactivity, which matches its observable outputs (session counts,
/// fraction of logs assigned).
struct SessionBuilderConfig {
  /// A gap longer than this ends the user's current session.
  TimeMs max_gap = 30 * kMillisPerMinute;
  /// Sessions with fewer logs are discarded as noise.
  size_t min_logs = 5;
};

/// Aggregate statistics of one build, mirroring §4.6's reporting.
struct SessionBuildStats {
  size_t num_sessions = 0;
  int64_t logs_considered = 0;  ///< logs in the interval
  int64_t logs_with_context = 0;
  int64_t logs_assigned = 0;    ///< in a surviving session
  double assigned_fraction = 0.0;
};

/// Groups the context-bearing logs of [begin, end) into user sessions.
class SessionBuilder {
 public:
  explicit SessionBuilder(SessionBuilderConfig config) : config_(config) {}

  /// Pre-condition: store.index_built(). `stats` may be null.
  std::vector<Session> Build(const LogStore& store, TimeMs begin, TimeMs end,
                             SessionBuildStats* stats) const;

  /// Cancellable/deadlined variant: `options.cancel` and
  /// `options.deadline` are checked every ~1k logs, so a long build
  /// returns Cancelled/DeadlineExceeded within a bounded slice of work
  /// instead of overrunning its budget. Output on OK is identical to
  /// the plain overload; `stats` is only written on OK.
  Result<std::vector<Session>> Build(const LogStore& store, TimeMs begin,
                                     TimeMs end, const RunOptions& options,
                                     SessionBuildStats* stats) const;

 private:
  SessionBuilderConfig config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L2_SESSION_BUILDER_H_
