#include "core/model_tracker.h"

namespace logmine::core {

ModelUpdate ModelTracker::Observe(const DependencyModel& observed) {
  ++observation_;
  ModelUpdate update;

  // Seen pairs: create candidates, advance streaks, revive stale ones.
  for (const NamePair& pair : observed.pairs()) {
    TrackedDependency& entry = tracked_[pair];
    if (entry.times_seen == 0) {
      entry.first_seen = observation_;
      entry.state = DependencyState::kCandidate;
    }
    const bool consecutive = entry.last_seen == observation_ - 1;
    ++entry.times_seen;
    switch (entry.state) {
      case DependencyState::kCandidate:
        entry.confirm_streak = consecutive ? entry.confirm_streak + 1 : 1;
        if (entry.confirm_streak >= config_.confirm_after) {
          entry.state = DependencyState::kActive;
          update.confirmed.push_back(pair);
        }
        break;
      case DependencyState::kStale:
        entry.state = DependencyState::kActive;
        update.revived.push_back(pair);
        break;
      case DependencyState::kRetired:
        // A retired pair must re-earn confirmation like a new one.
        entry.state = DependencyState::kCandidate;
        entry.confirm_streak = 1;
        if (entry.confirm_streak >= config_.confirm_after) {
          entry.state = DependencyState::kActive;
          update.revived.push_back(pair);
        }
        break;
      case DependencyState::kActive:
        break;
    }
    entry.last_seen = observation_;
  }

  // Unseen pairs: age out.
  for (auto& [pair, entry] : tracked_) {
    if (entry.last_seen == observation_) continue;
    const int64_t unseen = observation_ - entry.last_seen;
    switch (entry.state) {
      case DependencyState::kActive:
        if (unseen >= config_.stale_after) {
          entry.state = DependencyState::kStale;
        }
        break;
      case DependencyState::kStale:
        if (unseen >= config_.retire_after) {
          entry.state = DependencyState::kRetired;
          update.retired.push_back(pair);
        }
        break;
      case DependencyState::kCandidate:
        entry.confirm_streak = 0;  // streak broken
        break;
      case DependencyState::kRetired:
        break;
    }
  }
  return update;
}

DependencyModel ModelTracker::ActiveModel() const {
  DependencyModel model;
  for (const auto& [pair, entry] : tracked_) {
    if (entry.state == DependencyState::kActive ||
        entry.state == DependencyState::kStale) {
      model.Insert(pair);
    }
  }
  return model;
}

}  // namespace logmine::core
