#include "core/dependency.h"

#include <algorithm>

namespace logmine::core {

NamePair MakeUnorderedPair(std::string_view a, std::string_view b) {
  if (b < a) std::swap(a, b);
  return {std::string(a), std::string(b)};
}

std::vector<NamePair> DependencyModel::Minus(
    const DependencyModel& other) const {
  std::vector<NamePair> out;
  for (const NamePair& p : pairs_) {
    if (!other.Contains(p)) out.push_back(p);
  }
  return out;
}

DependencyModel DependencyModel::Union(const DependencyModel& other) const {
  DependencyModel out(pairs_);
  for (const NamePair& p : other.pairs_) out.Insert(p);
  return out;
}

DependencyModel DependencyModel::Intersect(
    const DependencyModel& other) const {
  DependencyModel out;
  for (const NamePair& p : pairs_) {
    if (other.Contains(p)) out.Insert(p);
  }
  return out;
}

std::string DependencyModel::ToString() const {
  std::string out;
  for (const NamePair& p : pairs_) {
    out += p.first;
    out += " -- ";
    out += p.second;
    out += '\n';
  }
  return out;
}

std::string DependencyModel::ToDot(std::string_view graph_name,
                                   bool directed) const {
  std::string out = directed ? "digraph " : "graph ";
  out += graph_name;
  out += " {\n";
  const char* arrow = directed ? " -> " : " -- ";
  for (const NamePair& p : pairs_) {
    out += "  \"" + p.first + "\"" + arrow + "\"" + p.second + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace logmine::core
