#ifndef LOGMINE_CORE_L2_DIRECTION_H_
#define LOGMINE_CORE_L2_DIRECTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/l2_session_builder.h"
#include "log/store.h"

namespace logmine::core {

/// Which way a dependent pair's invocation points.
enum class CallDirection {
  kAToB,
  kBToA,
  kUndecided,
};

/// Directionality estimate for one unordered pair (a < b by source id).
struct DirectionEstimate {
  LogStore::SourceId a = 0;
  LogStore::SourceId b = 0;
  /// Number of uninterrupted runs whose *first* {a,b} bigram starts with
  /// a, respectively b.
  int64_t first_a = 0;
  int64_t first_b = 0;
  /// Two-sided exact sign-test p-value of the 50:50 null.
  double p_value = 1.0;
  CallDirection direction = CallDirection::kUndecided;
};

/// Configuration of the direction heuristic.
struct DirectionConfig {
  /// A gap of at least this length ends a "sequence of logs that is not
  /// interrupted by a pause" (the paper suggests the L2 timeout).
  TimeMs pause = 1000;
  /// Significance level of the sign test.
  double alpha = 0.05;
  /// Minimum number of decided runs before attempting a verdict.
  int64_t min_runs = 8;
};

/// Implements the §5 proposal for recovering invocation direction from
/// sessions: "one could try counting the number of times the first
/// element of the first pair of the given type is an instance of A,
/// respectively B, in a sequence of logs that is not interrupted by a
/// pause of at least the length of the timeout parameter". The caller
/// logs the invocation before the callee processes it, so within an
/// uninterrupted burst the caller's log systematically comes first.
class L2DirectionDetector {
 public:
  explicit L2DirectionDetector(DirectionConfig config) : config_(config) {}

  /// Estimates the direction of each given unordered pair from the
  /// sessions (as built by SessionBuilder).
  std::vector<DirectionEstimate> Estimate(
      const std::vector<Session>& sessions,
      const std::vector<std::pair<LogStore::SourceId, LogStore::SourceId>>&
          pairs) const;

 private:
  DirectionConfig config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L2_DIRECTION_H_
