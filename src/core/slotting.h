#ifndef LOGMINE_CORE_SLOTTING_H_
#define LOGMINE_CORE_SLOTTING_H_

#include <vector>

#include "util/time_util.h"

namespace logmine::core {

/// A half-open time slot [begin, end).
struct TimeSlot {
  TimeMs begin = 0;
  TimeMs end = 0;
  TimeMs length() const { return end - begin; }
};

/// Divides [begin, end) into consecutive slots of `slot_length`; the last
/// slot is truncated when the interval is not a multiple. This is the
/// local-stationarity device of §3.1: the test runs per slot so that the
/// large-scale dependence of every application on the overall load (time
/// of day) cannot masquerade as pairwise dependence.
std::vector<TimeSlot> MakeSlots(TimeMs begin, TimeMs end, TimeMs slot_length);

/// Parameters of the adaptive variant (§5: "create time slots adaptively
/// by measuring the degree of stationarity with existing statistical
/// tests").
struct AdaptiveSlottingConfig {
  TimeMs min_slot = 15 * kMillisPerMinute;
  TimeMs max_slot = 4 * kMillisPerHour;
  /// A slot splits while a chi-square goodness-of-fit test over
  /// `probe_bins` sub-bins rejects uniform event intensity at this level.
  double alpha = 0.01;
  int probe_bins = 8;
  /// Slots with fewer events are never split (the test has no power).
  int64_t min_events = 200;
};

/// Recursively splits [begin, end) until each slot is locally stationary
/// (uniform intensity not rejected), no longer than `max_slot`, and no
/// shorter than `min_slot`. `events` is the sorted sequence of all log
/// timestamps in the interval (any source) — the intensity being probed.
std::vector<TimeSlot> MakeAdaptiveSlots(const std::vector<TimeMs>& events,
                                        TimeMs begin, TimeMs end,
                                        const AdaptiveSlottingConfig& config);

}  // namespace logmine::core

#endif  // LOGMINE_CORE_SLOTTING_H_
