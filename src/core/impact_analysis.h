#ifndef LOGMINE_CORE_IMPACT_ANALYSIS_H_
#define LOGMINE_CORE_IMPACT_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/dependency.h"

namespace logmine::core {

/// A *directed* dependency graph over component names: an edge A -> B
/// means "A depends on B" (A calls B, A breaks when B breaks). This is
/// the artifact the paper's §1.1 motivates mining in the first place —
/// the substrate for root cause analysis, fault detection, impact
/// prediction and availability requirements determination.
class DependencyGraph {
 public:
  DependencyGraph() = default;

  /// Adds the directed dependency `from -> to` (idempotent).
  void AddDependency(const std::string& from, const std::string& to);

  /// Builds the graph from an L3-style (application, service entry)
  /// model plus the entry -> providing-application mapping: each
  /// (A, S) pair becomes A -> owner(S). Self-edges are dropped.
  static DependencyGraph FromAppServiceModel(
      const DependencyModel& model,
      const std::map<std::string, std::string>& entry_owner);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const;
  const std::set<std::string>& nodes() const { return nodes_; }

  /// Direct dependencies of `component` (what it calls).
  std::set<std::string> DependenciesOf(const std::string& component) const;

  /// Direct dependents of `component` (who calls it).
  std::set<std::string> DependentsOf(const std::string& component) const;

  /// All components transitively *dependent on* `failed` — the impact
  /// prediction of §1.1: who is affected when `failed` goes down.
  /// Excludes `failed` itself.
  std::set<std::string> ImpactSet(const std::string& failed) const;

  /// All components `component` transitively depends on (its closure).
  std::set<std::string> DependencyClosure(const std::string& component) const;

  /// Availability requirements determination: the availability implied
  /// for `component` if every component in its dependency closure (and
  /// itself) fails independently with the given per-component
  /// availability. Components absent from the map use
  /// `default_availability`.
  double ImpliedAvailability(
      const std::string& component,
      const std::map<std::string, double>& component_availability,
      double default_availability) const;

 private:
  std::set<std::string> nodes_;
  std::map<std::string, std::set<std::string>> depends_on_;
  std::map<std::string, std::set<std::string>> depended_by_;
};

/// One root-cause candidate with its evidence.
struct RootCauseCandidate {
  std::string component;
  /// Fraction of the symptomatic components that transitively depend on
  /// this candidate (1.0 = explains every symptom).
  double coverage = 0;
  /// Fraction of the symptomatic components that *directly* depend on
  /// this candidate — failing calls surface as direct symptoms, so this
  /// separates the true cause from upstream/downstream bystanders in a
  /// dense graph.
  double direct_coverage = 0;
  /// Size of the candidate's impact set — smaller means a more
  /// parsimonious explanation at equal coverage.
  int64_t blast_radius = 0;
  bool symptomatic = false;  ///< the candidate itself shows symptoms
};

/// Root cause analysis (§1.1's headline application): ranks components
/// by how well their failure would explain the observed `symptomatic`
/// set — first by transitive symptom coverage, then by *direct*
/// coverage (symptoms call the cause directly), then by the smallest
/// blast radius (the most specific explanation).
std::vector<RootCauseCandidate> RankRootCauses(
    const DependencyGraph& graph, const std::set<std::string>& symptomatic);

}  // namespace logmine::core

#endif  // LOGMINE_CORE_IMPACT_ANALYSIS_H_
