#ifndef LOGMINE_CORE_PARTIAL_MODEL_H_
#define LOGMINE_CORE_PARTIAL_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dependency.h"
#include "util/result.h"

namespace logmine::core {

/// One cell of a (day × pair-range) shard grid. `range_index` addresses
/// a contiguous slice of the unordered source-pair universe (see
/// `PairRange` in core/l1_activity_miner.h); a grid with one range per
/// day degenerates to plain per-day sharding.
struct ShardId {
  int32_t day = 0;
  int32_t range_index = 0;
};

inline bool operator==(const ShardId& a, const ShardId& b) {
  return a.day == b.day && a.range_index == b.range_index;
}
inline bool operator<(const ShardId& a, const ShardId& b) {
  return a.day != b.day ? a.day < b.day : a.range_index < b.range_index;
}

/// The dependency model one shard task mined, plus enough provenance to
/// refuse merging pieces of different sweeps: grid dimensions and the
/// sweep's state hash (config × dataset × grid fingerprint). This is
/// the unit a sharded sweep persists, retries and finally merges —
/// losing some of them must degrade the merged model, never corrupt it.
struct PartialModel {
  ShardId shard;
  int32_t num_days = 0;
  int32_t num_ranges = 0;
  uint64_t state_hash = 0;
  DependencyModel model;
};

/// Which cells of the shard grid made it into a merged model. Cells are
/// addressed day-major: `covered[day * num_ranges + range_index]`.
struct CoverageReport {
  int32_t num_days = 0;
  int32_t num_ranges = 0;
  std::vector<uint8_t> covered;

  int total_cells() const { return num_days * num_ranges; }
  int covered_cells() const;
  /// Covered fraction in [0, 1]; 1 for an empty grid.
  double fraction() const;
  bool complete() const { return covered_cells() == total_cells(); }
  bool IsCovered(int day, int range_index) const;
  /// Missing (day, range_index) cells in day-major order.
  std::vector<std::pair<int, int>> MissingCells() const;
  /// JSON object for CI artifacts: dimensions, counts, fraction and the
  /// explicit missing-cell list.
  std::string ToJson() const;
};

/// The result of merging surviving partial models: the union model, one
/// per-day model (union of that day's covered ranges — partial when
/// some ranges of the day are missing), and the coverage report that
/// says exactly which cells the models are missing.
struct MergedPartialModel {
  DependencyModel model;
  std::vector<DependencyModel> daily;
  CoverageReport coverage;
};

/// Merges partial models over a `num_days` × `num_ranges` grid. Order
/// independent and duplicate tolerant (set union commutes, a hedged
/// shard delivering twice is a no-op), so any permutation of `parts`
/// yields byte-identical serialized output. Fails with InvalidArgument
/// when a part's grid dimensions or state hash disagree with the rest,
/// or a shard id falls outside the grid — mixing shards of different
/// sweeps must be loud, not silently wrong.
Result<MergedPartialModel> MergePartialModels(
    int num_days, int num_ranges, const std::vector<PartialModel>& parts);

}  // namespace logmine::core

#endif  // LOGMINE_CORE_PARTIAL_MODEL_H_
