#include "core/l2_cooccurrence_miner.h"

#include <algorithm>
#include <vector>

#include "obs/obs.h"
#include "stats/association_tests.h"
#include "util/executor.h"
#include "util/flat_counter.h"

namespace logmine::core {
namespace {

// Sessions per counting shard: large enough that shard bookkeeping is
// noise, small enough to load-balance a skewed session-length mix.
constexpr size_t kSessionsPerShard = 256;

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<L2Result> L2CooccurrenceMiner::Mine(const LogStore& store,
                                           TimeMs begin, TimeMs end) const {
  return Mine(store, begin, end, RunOptions{});
}

Result<L2Result> L2CooccurrenceMiner::Mine(const LogStore& store,
                                           TimeMs begin, TimeMs end,
                                           const RunOptions& options) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  // One budget for the whole pass: pin the deadline here, hand the
  // remainder to each phase.
  const auto deadline = StopDeadline(options);
  SessionBuilder builder(config_.session);
  SessionBuildStats stats;
  LOGMINE_ASSIGN_OR_RETURN(
      const std::vector<Session> sessions,
      builder.Build(store, begin, end, RemainingOptions(options, deadline),
                    &stats));
  auto result = MineSessions(store.num_sources(), sessions,
                             RemainingOptions(options, deadline));
  if (!result.ok()) return result.status();
  L2Result out = std::move(result).value();
  out.session_stats = stats;
  return out;
}

Result<L2Result> L2CooccurrenceMiner::MineSessions(
    const LogStore& store, const std::vector<Session>& sessions) const {
  return MineSessions(store.num_sources(), sessions);
}

Result<L2Result> L2CooccurrenceMiner::MineSessions(
    size_t num_sources, const std::vector<Session>& sessions,
    const RunOptions& options) const {
  if (config_.alpha <= 0.0 || config_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  LOGMINE_SPAN_GLOBAL("l2/mine", obs::Metric::kL2MineNs);
  obs::Count(obs::Metric::kL2Runs);
  const auto deadline = StopDeadline(options);
  L2Result result;

  // First pass: joint bigram frequencies, sharded over sessions on the
  // shared executor. Each shard owns an open-addressing accumulator;
  // shard boundaries depend only on the session count, and counts are
  // additive, so the merged table is identical for any thread count.
  // The number of distinct pair types is bounded by num_sources^2 —
  // size the accumulators so typical days never rehash.
  const size_t expected_pairs =
      std::min<size_t>(num_sources * num_sources, 1u << 12);
  const size_t num_shards =
      (sessions.size() + kSessionsPerShard - 1) / kSessionsPerShard;
  std::vector<FlatCounter> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards.emplace_back(expected_pairs);
  }
  // The chunked loop rides the cancellable ParallelFor so a cancel or
  // an expired budget stops claiming shards mid-count; parallelism
  // stays the config's knob.
  RunOptions count_options = RemainingOptions(options, deadline);
  count_options.max_parallelism = config_.num_threads;
  LOGMINE_RETURN_IF_ERROR(Executor::Shared().ParallelFor(
      num_shards,
      [&](size_t shard_idx) {
        const size_t begin = shard_idx * kSessionsPerShard;
        const size_t end =
            std::min(begin + kSessionsPerShard, sessions.size());
        FlatCounter& joint = shards[shard_idx];
        for (size_t s = begin; s < end; ++s) {
          const Session& session = sessions[s];
          for (size_t i = 0; i + 1 < session.entries.size(); ++i) {
            const SessionLogEntry& lhs = session.entries[i];
            const SessionLogEntry& rhs = session.entries[i + 1];
            if (lhs.source == rhs.source) continue;
            if (config_.timeout > 0 && rhs.ts - lhs.ts > config_.timeout) {
              continue;
            }
            joint.Add(PairKey(lhs.source, rhs.source), 1);
          }
        }
      },
      count_options));
  FlatCounter joint(expected_pairs);
  for (const FlatCounter& shard : shards) {
    joint.MergeFrom(shard);  // shard order; addition commutes anyway
  }

  // Marginals and the grand total follow from the joint table.
  std::vector<int64_t> first_marginal(num_sources, 0);
  std::vector<int64_t> second_marginal(num_sources, 0);
  int64_t total = 0;
  const std::vector<std::pair<uint64_t, int64_t>> entries =
      joint.SortedEntries();  // ascending (a, b) — the std::map order
  for (const auto& [key, count] : entries) {
    first_marginal[key >> 32] += count;
    second_marginal[key & 0xffffffffu] += count;
    total += count;
  }
  result.num_bigrams = total;

  // Second pass: contingency table + test per observed pair type.
  const int64_t floor = std::max<int64_t>(
      config_.min_cooccurrence,
      static_cast<int64_t>(config_.min_cooccurrence_per_session *
                           static_cast<double>(sessions.size())));
  size_t scored_seen = 0;
  for (const auto& [key, o11] : entries) {
    if ((scored_seen++ & 255) == 0) {
      LOGMINE_RETURN_IF_ERROR(
          CheckStop(options.cancel, deadline, "L2 scoring"));
    }
    if (o11 < floor) continue;
    const auto a = static_cast<uint32_t>(key >> 32);
    const auto b = static_cast<uint32_t>(key & 0xffffffffu);
    L2PairScore score;
    score.a = a;
    score.b = b;
    score.table.o11 = o11;
    score.table.o12 = first_marginal[a] - o11;
    score.table.o21 = second_marginal[b] - o11;
    score.table.o22 = total - first_marginal[a] - second_marginal[b] + o11;
    score.score = config_.test == AssociationTest::kDunning
                      ? stats::DunningLogLikelihood(score.table)
                      : stats::PearsonChiSquare(score.table);
    score.p_value = stats::ChiSquarePValue(score.score);
    score.dependent = stats::IsSignificantAttraction(score.table, score.score,
                                                     config_.alpha);
    result.scored.push_back(score);
  }
  obs::Count(obs::Metric::kL2BigramsCounted, result.num_bigrams);
  obs::Count(obs::Metric::kL2PairsScored,
             static_cast<int64_t>(result.scored.size()));
  return result;
}

DependencyModel L2Result::Dependencies(const LogStore& store) const {
  DependencyModel model;
  for (const L2PairScore& score : scored) {
    if (score.dependent) {
      model.Insert(MakeUnorderedPair(store.source_name(score.a),
                                     store.source_name(score.b)));
    }
  }
  return model;
}

}  // namespace logmine::core
