#include "core/l2_cooccurrence_miner.h"

#include <algorithm>
#include <map>

#include "stats/association_tests.h"

namespace logmine::core {

Result<L2Result> L2CooccurrenceMiner::Mine(const LogStore& store,
                                           TimeMs begin, TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  SessionBuilder builder(config_.session);
  SessionBuildStats stats;
  const std::vector<Session> sessions =
      builder.Build(store, begin, end, &stats);
  auto result = MineSessions(store, sessions);
  if (!result.ok()) return result.status();
  L2Result out = std::move(result).value();
  out.session_stats = stats;
  return out;
}

Result<L2Result> L2CooccurrenceMiner::MineSessions(
    const LogStore& store, const std::vector<Session>& sessions) const {
  if (config_.alpha <= 0.0 || config_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  L2Result result;

  // First pass: joint and marginal bigram frequencies.
  std::map<std::pair<uint32_t, uint32_t>, int64_t> joint;
  std::map<uint32_t, int64_t> first_marginal;
  std::map<uint32_t, int64_t> second_marginal;
  int64_t total = 0;
  for (const Session& session : sessions) {
    for (size_t i = 0; i + 1 < session.entries.size(); ++i) {
      const SessionLogEntry& lhs = session.entries[i];
      const SessionLogEntry& rhs = session.entries[i + 1];
      if (lhs.source == rhs.source) continue;
      if (config_.timeout > 0 && rhs.ts - lhs.ts > config_.timeout) continue;
      ++joint[{lhs.source, rhs.source}];
      ++first_marginal[lhs.source];
      ++second_marginal[rhs.source];
      ++total;
    }
  }
  result.num_bigrams = total;

  // Second pass: contingency table + test per observed pair type.
  const int64_t floor = std::max<int64_t>(
      config_.min_cooccurrence,
      static_cast<int64_t>(config_.min_cooccurrence_per_session *
                           static_cast<double>(sessions.size())));
  for (const auto& [pair, o11] : joint) {
    if (o11 < floor) continue;
    L2PairScore score;
    score.a = pair.first;
    score.b = pair.second;
    score.table.o11 = o11;
    score.table.o12 = first_marginal[pair.first] - o11;
    score.table.o21 = second_marginal[pair.second] - o11;
    score.table.o22 = total - first_marginal[pair.first] -
                      second_marginal[pair.second] + o11;
    score.score = config_.test == AssociationTest::kDunning
                      ? stats::DunningLogLikelihood(score.table)
                      : stats::PearsonChiSquare(score.table);
    score.p_value = stats::ChiSquarePValue(score.score);
    score.dependent = stats::IsSignificantAttraction(score.table, score.score,
                                                     config_.alpha);
    result.scored.push_back(score);
  }
  (void)store;
  return result;
}

DependencyModel L2Result::Dependencies(const LogStore& store) const {
  DependencyModel model;
  for (const L2PairScore& score : scored) {
    if (score.dependent) {
      model.Insert(MakeUnorderedPair(store.source_name(score.a),
                                     store.source_name(score.b)));
    }
  }
  return model;
}

}  // namespace logmine::core
