#ifndef LOGMINE_CORE_MODEL_TRACKER_H_
#define LOGMINE_CORE_MODEL_TRACKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/dependency.h"

namespace logmine::core {

/// Lifecycle state of a tracked dependency.
enum class DependencyState {
  kCandidate,  ///< seen, but not yet confirmed
  kActive,     ///< part of the current model
  kStale,      ///< active but unseen recently
  kRetired,    ///< expired from the model
};

/// Per-dependency bookkeeping.
struct TrackedDependency {
  DependencyState state = DependencyState::kCandidate;
  int64_t first_seen = 0;   ///< observation index of first sighting
  int64_t last_seen = 0;    ///< observation index of last sighting
  int64_t times_seen = 0;
  int64_t confirm_streak = 0;  ///< consecutive sightings while candidate
};

/// One observation's worth of changes.
struct ModelUpdate {
  std::vector<NamePair> confirmed;  ///< candidate -> active
  std::vector<NamePair> retired;    ///< active/stale -> retired
  std::vector<NamePair> revived;    ///< retired/stale -> active again
};

/// Tracker parameters.
struct ModelTrackerConfig {
  /// Consecutive observations a pair must appear in before joining the
  /// model (suppresses one-off mining noise).
  int64_t confirm_after = 2;
  /// Observations an active pair may go unseen before turning stale.
  int64_t stale_after = 3;
  /// Observations unseen before a stale pair is retired.
  int64_t retire_after = 7;
};

/// Maintains a dependency model over a stream of per-period mining
/// results (e.g. one L3 run per day) — the paper's motivating problem:
/// "in complex and fast evolving environments it is practically
/// unfeasible to keep such a model up-to-date manually". Hysteresis
/// separates mining noise (a dependency missing one day because it was
/// not exercised) from real landscape movement (an interface
/// decommissioned for good).
///
/// Example:
///   ModelTracker tracker{ModelTrackerConfig{}};
///   for (const DependencyModel& daily : daily_models) {
///     ModelUpdate update = tracker.Observe(daily);
///     // alert on update.confirmed / update.retired
///   }
///   DependencyModel current = tracker.ActiveModel();
class ModelTracker {
 public:
  explicit ModelTracker(ModelTrackerConfig config) : config_(config) {}

  /// Restores a tracker from externally persisted state (the checkpoint
  /// layer, see core/serialization.h). Continuing a restored tracker is
  /// indistinguishable from never having stopped.
  ModelTracker(ModelTrackerConfig config,
               std::map<NamePair, TrackedDependency> tracked,
               int64_t num_observations)
      : config_(config),
        tracked_(std::move(tracked)),
        observation_(num_observations) {}

  /// Feeds the next period's mined model; returns what changed.
  ModelUpdate Observe(const DependencyModel& observed);

  /// The currently confirmed model (active + stale pairs).
  DependencyModel ActiveModel() const;

  /// Number of observations fed so far.
  int64_t num_observations() const { return observation_; }

  const ModelTrackerConfig& config() const { return config_; }

  /// Full bookkeeping, for inspection.
  const std::map<NamePair, TrackedDependency>& tracked() const {
    return tracked_;
  }

 private:
  ModelTrackerConfig config_;
  std::map<NamePair, TrackedDependency> tracked_;
  int64_t observation_ = 0;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_MODEL_TRACKER_H_
