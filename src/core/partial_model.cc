#include "core/partial_model.h"

#include <algorithm>
#include <string>

namespace logmine::core {

int CoverageReport::covered_cells() const {
  return static_cast<int>(
      std::count(covered.begin(), covered.end(), uint8_t{1}));
}

double CoverageReport::fraction() const {
  const int total = total_cells();
  if (total == 0) return 1.0;
  return static_cast<double>(covered_cells()) / static_cast<double>(total);
}

bool CoverageReport::IsCovered(int day, int range_index) const {
  if (day < 0 || day >= num_days || range_index < 0 ||
      range_index >= num_ranges) {
    return false;
  }
  const size_t cell = static_cast<size_t>(day) * num_ranges + range_index;
  return cell < covered.size() && covered[cell] != 0;
}

std::vector<std::pair<int, int>> CoverageReport::MissingCells() const {
  std::vector<std::pair<int, int>> missing;
  for (int day = 0; day < num_days; ++day) {
    for (int range = 0; range < num_ranges; ++range) {
      if (!IsCovered(day, range)) missing.emplace_back(day, range);
    }
  }
  return missing;
}

std::string CoverageReport::ToJson() const {
  std::string out = "{\"num_days\": " + std::to_string(num_days) +
                    ", \"num_ranges\": " + std::to_string(num_ranges) +
                    ", \"covered_cells\": " + std::to_string(covered_cells()) +
                    ", \"total_cells\": " + std::to_string(total_cells()) +
                    ", \"fraction\": " + std::to_string(fraction()) +
                    ", \"missing\": [";
  bool first = true;
  for (const auto& [day, range] : MissingCells()) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(day) + ", " + std::to_string(range) + "]";
  }
  out += "]}";
  return out;
}

Result<MergedPartialModel> MergePartialModels(
    int num_days, int num_ranges, const std::vector<PartialModel>& parts) {
  if (num_days < 0 || num_ranges < 1) {
    return Status::InvalidArgument(
        "merge grid must have num_days >= 0 and num_ranges >= 1, got " +
        std::to_string(num_days) + " x " + std::to_string(num_ranges));
  }
  MergedPartialModel merged;
  merged.coverage.num_days = num_days;
  merged.coverage.num_ranges = num_ranges;
  merged.coverage.covered.assign(
      static_cast<size_t>(num_days) * num_ranges, 0);
  merged.daily.resize(static_cast<size_t>(num_days));

  for (const PartialModel& part : parts) {
    if (part.num_days != num_days || part.num_ranges != num_ranges) {
      return Status::InvalidArgument(
          "partial model for shard (" + std::to_string(part.shard.day) +
          ", " + std::to_string(part.shard.range_index) +
          ") was mined over a " + std::to_string(part.num_days) + " x " +
          std::to_string(part.num_ranges) + " grid, merging into " +
          std::to_string(num_days) + " x " + std::to_string(num_ranges));
    }
    if (!parts.empty() && part.state_hash != parts.front().state_hash) {
      return Status::InvalidArgument(
          "partial models come from different sweeps (state hash " +
          std::to_string(part.state_hash) + " vs " +
          std::to_string(parts.front().state_hash) +
          "); refusing to merge");
    }
    if (part.shard.day < 0 || part.shard.day >= num_days ||
        part.shard.range_index < 0 || part.shard.range_index >= num_ranges) {
      return Status::InvalidArgument(
          "shard (" + std::to_string(part.shard.day) + ", " +
          std::to_string(part.shard.range_index) + ") outside the " +
          std::to_string(num_days) + " x " + std::to_string(num_ranges) +
          " grid");
    }
    const size_t cell =
        static_cast<size_t>(part.shard.day) * num_ranges +
        part.shard.range_index;
    merged.coverage.covered[cell] = 1;
    // Set union commutes and is idempotent: any arrival order — and a
    // hedged shard landing twice — produces the same merged sets.
    merged.daily[static_cast<size_t>(part.shard.day)] =
        merged.daily[static_cast<size_t>(part.shard.day)].Union(part.model);
    merged.model = merged.model.Union(part.model);
  }
  return merged;
}

}  // namespace logmine::core
