#include "core/evaluation.h"

namespace logmine::core {

double ConfusionCounts::tp_ratio() const {
  const int64_t pos = positives();
  return pos == 0 ? 0.0
                  : static_cast<double>(true_positives) /
                        static_cast<double>(pos);
}

double ConfusionCounts::recall() const {
  const int64_t actual = true_positives + false_negatives;
  return actual == 0 ? 0.0
                     : static_cast<double>(true_positives) /
                           static_cast<double>(actual);
}

double ConfusionCounts::false_positive_rate() const {
  const int64_t unrelated = universe - true_positives - false_negatives;
  return unrelated <= 0 ? 0.0
                        : static_cast<double>(false_positives) /
                              static_cast<double>(unrelated);
}

ConfusionCounts Evaluate(const DependencyModel& predicted,
                         const DependencyModel& reference, int64_t universe) {
  ConfusionCounts out;
  for (const NamePair& pair : predicted.pairs()) {
    if (reference.Contains(pair)) {
      ++out.true_positives;
    } else {
      ++out.false_positives;
    }
  }
  out.false_negatives =
      static_cast<int64_t>(reference.size()) - out.true_positives;
  out.universe = universe > 0
                     ? universe
                     : static_cast<int64_t>(reference.size() +
                                            predicted.size());
  return out;
}

std::vector<double> DailySeries::TpRatios() const {
  std::vector<double> out;
  out.reserve(days.size());
  for (const ConfusionCounts& day : days) out.push_back(day.tp_ratio());
  return out;
}

std::vector<double> DailySeries::TruePositives() const {
  std::vector<double> out;
  out.reserve(days.size());
  for (const ConfusionCounts& day : days) {
    out.push_back(static_cast<double>(day.true_positives));
  }
  return out;
}

std::vector<double> DailySeries::FalsePositives() const {
  std::vector<double> out;
  out.reserve(days.size());
  for (const ConfusionCounts& day : days) {
    out.push_back(static_cast<double>(day.false_positives));
  }
  return out;
}

}  // namespace logmine::core
