#ifndef LOGMINE_CORE_L1_ACTIVITY_MINER_H_
#define LOGMINE_CORE_L1_ACTIVITY_MINER_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/slotting.h"
#include "log/store.h"
#include "stats/point_process.h"
#include "util/result.h"

namespace logmine::core {

/// How L1's per-slot test models "random" points (§5 discusses replacing
/// the homogeneous baseline with one proportional to the total load).
enum class L1Baseline {
  kUniform,                ///< the paper's main method
  kIntensityProportional,  ///< §5 refinement: sample the overall log stream
};

/// Configuration of approach L1 (§3.1): logs as an activity measure.
struct L1Config {
  /// Slot length for local application of the test (paper: 1 hour,
  /// n = 24 slots per day).
  TimeMs slot_length = kMillisPerHour;
  /// When true, slots are chosen adaptively by a stationarity test (§5)
  /// instead of the fixed grid above.
  bool adaptive_slots = false;
  AdaptiveSlottingConfig adaptive;
  L1Baseline baseline = L1Baseline::kUniform;
  /// Jitter applied to intensity-proportional baseline points.
  TimeMs baseline_jitter = 250;
  /// Slots where either application has fewer logs are skipped. The
  /// paper uses 100 at full production volume (~10 M logs/day); at our
  /// default ~1/30 volume the equivalent threshold is proportionally
  /// lower, floored for test power.
  int64_t minlogs = 30;
  /// Decision thresholds: positive-ratio threshold over supported slots
  /// and minimum support as a *fraction* of all slots
  /// (paper: th_pr = 0.6, th_s = 0.3).
  double th_pr = 0.6;
  double th_s = 0.3;
  /// The per-slot median-distance test (sample size, CI level 0.95).
  stats::MedianDistanceTestConfig test;
  /// Seed of the random sampling inside the test.
  uint64_t seed = 7;
  /// Parallelism cap for the mining fan-out, which runs on the shared
  /// `Executor` pool. Results are bit-identical for any thread count:
  /// every random draw comes from an RNG stream keyed by
  /// (seed, slot, source), never by thread or schedule.
  /// 1 = serial on the calling thread; 0 = use the whole pool.
  int num_threads = 1;
  /// Support pruning (DESIGN.md §11): pairs whose maximum attainable
  /// supported-slot count — the number of slots where both sources are
  /// active enough — cannot reach `th_s * slots` are reported with their
  /// exact support but never tested. Because positivity is only defined
  /// for pairs that can reach the support threshold (their positives are
  /// reported as 0 either way), toggling this cannot change the result;
  /// it only skips provably irrelevant work.
  bool prune_support = true;
  /// (slot, pair) tests per parallel work item. Fine-grained resharding
  /// keeps heavy slots from serializing the fan-out; chunk boundaries
  /// depend only on the test count and this grain, so results stay
  /// deterministic for any thread count.
  size_t pair_chunk = 16;
  /// Sentinel for `salt_anchor`: RNG streams keyed by window-relative
  /// slot index and dense source id (the historic behavior).
  static constexpr TimeMs kNoSaltAnchor = INT64_MIN;
  /// When set (any value != kNoSaltAnchor), the per-(slot, source) RNG
  /// streams are keyed by the source *name* and the slot's absolute
  /// number on the `slot_length` grid anchored here:
  ///   abs_slot = (slot.begin - salt_anchor) / slot_length.
  /// Per-slot outcomes then no longer depend on where the mining window
  /// starts or which other sources the store happens to contain — the
  /// property the sliding-window miner (src/serve) needs so that
  /// ingesting one epoch at a time reproduces a batch mine over the
  /// same window byte-for-byte. Incompatible with `adaptive_slots`
  /// (adaptive boundaries are window-dependent by construction).
  TimeMs salt_anchor = kNoSaltAnchor;
};

/// Per-pair outcome of L1.
struct L1PairResult {
  LogStore::SourceId a = 0;
  LogStore::SourceId b = 0;
  int slots_total = 0;      ///< n
  int slots_supported = 0;  ///< s: slots where both apps have >= minlogs
  /// p: supported slots positive in *both* directions. Always 0 for
  /// pairs whose support cannot reach `th_s * slots` — those pairs can
  /// never be dependent, so they are skipped by support pruning, and the
  /// unpruned path reports them identically.
  int slots_positive = 0;
  double positive_ratio = 0.0;  ///< pr = p / s (0 when s = 0)
  bool dependent = false;
};

/// Full result: one entry per unordered source pair with any support,
/// ordered by (a, b).
struct L1Result {
  std::vector<L1PairResult> pairs;
  int slots_total = 0;
  /// Pairs (with support > 0) that went through per-slot testing vs
  /// pairs skipped entirely by support pruning; tested + pruned =
  /// pairs.size(). Mirrored into the l1.pairs_tested / l1.pairs_pruned
  /// metrics.
  int64_t pairs_tested = 0;
  int64_t pairs_pruned = 0;

  /// The positive decisions as an unordered-name dependency model.
  DependencyModel Dependencies(const LogStore& store) const;
};

/// One contiguous slice of the unordered source-pair universe — the
/// pair-range axis of a (day × pair-range) sharded sweep. Pairs (a, b)
/// with a < b are ranked in (a, b) lexicographic order over the store's
/// sources; slice `index` of `count` keeps ranks in
/// [total * index / count, total * (index + 1) / count). Every pair
/// lands in exactly one slice, so the union of per-slice results over
/// all indices equals the unsliced result — the invariant the partial
/// merge layer builds on.
struct PairRange {
  uint32_t index = 0;
  uint32_t count = 1;  ///< number of slices; 1 = the whole universe
};

/// Approach L1: for every pair of applications, compare per slot the
/// nearest-log distance of B's timestamps to A against uniformly random
/// points (order-statistics median CIs, one-sided); a pair is dependent
/// when the test is positive in both directions in enough slots.
class L1ActivityMiner {
 public:
  explicit L1ActivityMiner(L1Config config) : config_(config) {}

  /// Mines [begin, end) of `store` (index must be built).
  Result<L1Result> Mine(const LogStore& store, TimeMs begin,
                        TimeMs end) const;

  /// Pair-range-sharded variant: tests only the pairs in `range`'s
  /// slice, skipping every other pair's precompute and testing work.
  /// Per-pair outcomes are byte-identical to the unsliced run — all
  /// randomness is keyed by (seed, slot, source), never by which pairs
  /// share the shard — so the slices of one day partition its full
  /// result exactly.
  Result<L1Result> Mine(const LogStore& store, TimeMs begin, TimeMs end,
                        PairRange range) const;

  /// Runs the per-slot test for a single ordered pair on one slot —
  /// exposed for diagnostics and the figure 2 boxplot bench.
  stats::MedianDistanceTestResult TestSlot(const LogStore& store,
                                           LogStore::SourceId a,
                                           LogStore::SourceId b, TimeMs begin,
                                           TimeMs end, uint64_t salt) const;

 private:
  L1Config config_;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_L1_ACTIVITY_MINER_H_
