#ifndef LOGMINE_CORE_EVALUATION_H_
#define LOGMINE_CORE_EVALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dependency.h"

namespace logmine::core {

/// Confusion counts of a discovered model against a reference model.
/// `universe` is the number of possible pairs (e.g. 1431 for 54 apps),
/// needed for the true-negative count and classification error rate.
struct ConfusionCounts {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t universe = 0;

  int64_t positives() const { return true_positives + false_positives; }
  int64_t true_negatives() const {
    return universe - true_positives - false_positives - false_negatives;
  }
  /// Ratio of true positives among positive decisions (the number printed
  /// above the bars in figures 5, 6 and 8). 0 when there are no positives.
  double tp_ratio() const;
  double precision() const { return tp_ratio(); }
  double recall() const;
  /// Classification error among the *unrelated* pairs (§4.5 discusses 25
  /// FP over 1253 unrelated pairs ~ 2%).
  double false_positive_rate() const;
};

/// Compares `predicted` to `reference`. When `universe` is 0 it defaults
/// to reference.size() + predicted.size() (no meaningful TN count).
ConfusionCounts Evaluate(const DependencyModel& predicted,
                         const DependencyModel& reference, int64_t universe);

/// Per-day evaluation series used by the figure benches.
struct DailySeries {
  std::vector<std::string> day_labels;
  std::vector<ConfusionCounts> days;

  std::vector<double> TpRatios() const;
  std::vector<double> TruePositives() const;
  std::vector<double> FalsePositives() const;
};

}  // namespace logmine::core

#endif  // LOGMINE_CORE_EVALUATION_H_
