#include "core/pipeline.h"

#include <chrono>

#include "log/corpus_io.h"
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "util/executor.h"

namespace logmine::core {
namespace {

// Runs one miner closure with full containment: a thrown exception
// becomes an Internal status instead of escaping into the executor loop
// and poisoning sibling miners.
Status RunContained(const std::function<Status()>& task) {
  try {
    return task();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("miner threw: ") + e.what());
  } catch (...) {
    return Status::Internal("miner threw a non-std exception");
  }
}

}  // namespace

MiningPipeline::MiningPipeline(ServiceVocabulary vocabulary,
                               PipelineConfig config)
    : vocabulary_(std::move(vocabulary)), config_(std::move(config)) {}

Result<PipelineResult> MiningPipeline::Run(const LogStore& store, TimeMs begin,
                                           TimeMs end,
                                           const CancelToken* cancel,
                                           obs::ObsContext* obs_context) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  // Pipeline-level spans and counters go to the explicit context when one
  // was handed in, else to the ambient global one; the miners themselves
  // always record into the global context.
  obs::ObsContext* ctx = obs::Effective(obs_context);
  obs::Count(ctx, obs::Metric::kPipelineRuns);
  // One journal root span per run; miner boundaries hang off it as
  // "<run>/<miner>" children.
  std::string run_span;
  if (ctx != nullptr) {
    run_span = ctx->journal().BeginRootSpan("pipeline");
    ctx->journal().Emit(
        run_span, "pipeline_start",
        {obs::JournalField::Num("begin_ms", begin),
         obs::JournalField::Num("end_ms", end)});
  }
  PipelineResult out;
  // The run's wall-clock budget, pinned up front so every miner closure
  // and the skip checks below measure against the same instant.
  const bool has_deadline = config_.deadline_ms != 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.deadline_ms);

  // One (closure, status slot) pair per enabled technique. The store is
  // read-only during mining and each miner is internally deterministic,
  // so the miners can run concurrently on the shared executor. Each
  // status lands in its own slot, so one failing, throwing or skipped
  // miner never discards a sibling's model: callers get partial results
  // plus a per-miner Status.
  std::vector<std::function<Status()>> tasks;
  std::vector<Status*> slots;
  std::vector<const char*> names;
  if (config_.run_l1) {
    tasks.push_back([&]() -> Status {
      LOGMINE_SPAN(ctx, "pipeline/l1");
      L1ActivityMiner miner(config_.l1);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.l1 = std::move(result).value();
      return Status::OK();
    });
    slots.push_back(&out.l1_status);
    names.push_back("l1");
  }
  if (config_.run_l2) {
    tasks.push_back([&]() -> Status {
      LOGMINE_SPAN(ctx, "pipeline/l2");
      L2CooccurrenceMiner miner(config_.l2);
      // L2 is the one miner with cancellable inner loops: give it
      // whatever is left of the pipeline budget so a late-starting L2
      // stops mid-pass instead of overrunning the whole run's deadline.
      RunOptions l2_options;
      l2_options.cancel = cancel;
      if (config_.deadline_ms != 0) {
        l2_options.deadline = std::max(
            std::chrono::milliseconds{1},
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now()));
      }
      auto result = miner.Mine(store, begin, end, l2_options);
      if (!result.ok()) return result.status();
      out.l2 = std::move(result).value();
      return Status::OK();
    });
    slots.push_back(&out.l2_status);
    names.push_back("l2");
  }
  if (config_.run_l3) {
    tasks.push_back([&]() -> Status {
      LOGMINE_SPAN(ctx, "pipeline/l3");
      L3TextMiner miner(vocabulary_, config_.l3);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.l3 = std::move(result).value();
      return Status::OK();
    });
    slots.push_back(&out.l3_status);
    names.push_back("l3");
  }
  if (config_.run_agrawal) {
    tasks.push_back([&]() -> Status {
      LOGMINE_SPAN(ctx, "pipeline/agrawal");
      AgrawalDelayMiner miner(config_.agrawal);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.agrawal = std::move(result).value();
      return Status::OK();
    });
    slots.push_back(&out.agrawal_status);
    names.push_back("agrawal");
  }

  // Cooperative stop: a miner that has not started when the token fires
  // or the budget expires is skipped (its status says so); a miner that
  // already started runs to completion (L2 additionally observes the
  // budget inside its own loops).
  RunOptions options;
  options.max_parallelism = config_.concurrent_miners ? 0 : 1;
  {
    LOGMINE_SPAN(ctx, "pipeline/run", obs::Metric::kPipelineRunNs);
    Executor::Shared().ParallelFor(
        tasks.size(),
        [&](size_t i) {
          if (cancel != nullptr && cancel->cancelled()) {
            *slots[i] = Status::Cancelled("miner skipped: run cancelled");
            return;
          }
          if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
            *slots[i] =
                Status::DeadlineExceeded("miner skipped: run deadline expired");
            return;
          }
          // Where the machine went, per miner: CPU vs wall vs RSS (the
          // trace span above it answers only "how long").
          obs::ResourceProbe::ScopedStage stage(
              ctx != nullptr ? &ctx->probe() : nullptr,
              std::string("pipeline/") + names[i]);
          *slots[i] = RunContained(tasks[i]);
        },
        options);
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    const Status* slot = slots[i];
    obs::Count(ctx, slot->ok() ? obs::Metric::kPipelineMinersOk
                               : obs::Metric::kPipelineMinersFailed);
    if (ctx != nullptr) {
      std::vector<obs::JournalField> fields = {
          obs::JournalField::Str("miner", names[i]),
          obs::JournalField::Flag("ok", slot->ok())};
      if (!slot->ok()) {
        fields.push_back(
            obs::JournalField::Str("code", StatusCodeName(slot->code())));
        fields.push_back(obs::JournalField::Str("error", slot->message()));
      }
      ctx->journal().Emit(run_span + "/" + names[i], "miner_done", fields);
    }
  }
  // Snapshot after the run span closed, so the snapshot sees it.
  if (obs_context != nullptr) {
    out.metrics = obs_context->metrics().Snapshot();
  }
  return out;
}

Result<PipelineResult> MiningPipeline::RunFromCorpusFile(
    const std::string& path, const CancelToken* cancel,
    obs::ObsContext* obs_context) const {
  LOGMINE_ASSIGN_OR_RETURN(LogStore store, ReadCorpusFile(path));
  return Run(store, store.min_ts(), store.max_ts() + 1, cancel, obs_context);
}

}  // namespace logmine::core
