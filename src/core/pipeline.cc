#include "core/pipeline.h"

namespace logmine::core {

MiningPipeline::MiningPipeline(ServiceVocabulary vocabulary,
                               PipelineConfig config)
    : vocabulary_(std::move(vocabulary)), config_(std::move(config)) {}

Result<PipelineResult> MiningPipeline::Run(const LogStore& store, TimeMs begin,
                                           TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  PipelineResult out;
  if (config_.run_l1) {
    L1ActivityMiner miner(config_.l1);
    auto result = miner.Mine(store, begin, end);
    if (!result.ok()) return result.status();
    out.l1 = std::move(result).value();
  }
  if (config_.run_l2) {
    L2CooccurrenceMiner miner(config_.l2);
    auto result = miner.Mine(store, begin, end);
    if (!result.ok()) return result.status();
    out.l2 = std::move(result).value();
  }
  if (config_.run_l3) {
    L3TextMiner miner(vocabulary_, config_.l3);
    auto result = miner.Mine(store, begin, end);
    if (!result.ok()) return result.status();
    out.l3 = std::move(result).value();
  }
  if (config_.run_agrawal) {
    AgrawalDelayMiner miner(config_.agrawal);
    auto result = miner.Mine(store, begin, end);
    if (!result.ok()) return result.status();
    out.agrawal = std::move(result).value();
  }
  return out;
}

}  // namespace logmine::core
