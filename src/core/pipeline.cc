#include "core/pipeline.h"

#include <functional>
#include <vector>

#include "util/executor.h"

namespace logmine::core {

MiningPipeline::MiningPipeline(ServiceVocabulary vocabulary,
                               PipelineConfig config)
    : vocabulary_(std::move(vocabulary)), config_(std::move(config)) {}

Result<PipelineResult> MiningPipeline::Run(const LogStore& store, TimeMs begin,
                                           TimeMs end) const {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  PipelineResult out;

  // One closure per enabled technique. The store is read-only during
  // mining and each miner is internally deterministic, so the miners
  // can run concurrently on the shared executor; statuses are checked
  // afterwards in the fixed L1, L2, L3, Agrawal order, which keeps the
  // reported error identical to the serial path.
  std::vector<std::function<Status()>> tasks;
  if (config_.run_l1) {
    tasks.push_back([&]() -> Status {
      L1ActivityMiner miner(config_.l1);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.l1 = std::move(result).value();
      return Status::OK();
    });
  }
  if (config_.run_l2) {
    tasks.push_back([&]() -> Status {
      L2CooccurrenceMiner miner(config_.l2);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.l2 = std::move(result).value();
      return Status::OK();
    });
  }
  if (config_.run_l3) {
    tasks.push_back([&]() -> Status {
      L3TextMiner miner(vocabulary_, config_.l3);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.l3 = std::move(result).value();
      return Status::OK();
    });
  }
  if (config_.run_agrawal) {
    tasks.push_back([&]() -> Status {
      AgrawalDelayMiner miner(config_.agrawal);
      auto result = miner.Mine(store, begin, end);
      if (!result.ok()) return result.status();
      out.agrawal = std::move(result).value();
      return Status::OK();
    });
  }

  std::vector<Status> statuses(tasks.size(), Status::OK());
  const int parallelism = config_.concurrent_miners ? 0 : 1;
  Executor::Shared().ParallelFor(
      tasks.size(), [&](size_t i) { statuses[i] = tasks[i](); },
      parallelism);
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return out;
}

}  // namespace logmine::core
