#ifndef LOGMINE_CORE_SERIALIZATION_H_
#define LOGMINE_CORE_SERIALIZATION_H_

#include <cstdint>
#include <string_view>

#include "core/dependency.h"
#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l2_session_builder.h"
#include "core/l3_text_miner.h"
#include "core/model_tracker.h"
#include "core/partial_model.h"
#include "util/result.h"
#include "util/snapshot.h"

namespace logmine::core {

/// Binary serialization of the resumable mining state — everything a
/// long-horizon sweep accumulates per day (models, evaluation rows,
/// tracker bookkeeping) plus the miner configs it ran under. Encoders
/// append to an open SnapshotWriter section; decoders consume from a
/// SectionCursor and fail with ParseError on any malformed payload, so
/// a corrupt checkpoint can never load as silently wrong state.
///
/// Every Decode(Encode(x)) round-trips to an equal value — the property
/// the crash-recovery tests build their byte-identity assertion on.

void EncodeDependencyModel(const DependencyModel& model, SnapshotWriter* w);
Result<DependencyModel> DecodeDependencyModel(SectionCursor* c);

void EncodeConfusionCounts(const ConfusionCounts& counts, SnapshotWriter* w);
Result<ConfusionCounts> DecodeConfusionCounts(SectionCursor* c);

void EncodeDailySeries(const DailySeries& series, SnapshotWriter* w);
Result<DailySeries> DecodeDailySeries(SectionCursor* c);

void EncodeSessionBuildStats(const SessionBuildStats& stats,
                             SnapshotWriter* w);
Result<SessionBuildStats> DecodeSessionBuildStats(SectionCursor* c);

/// Tracker state embeds its config: a restored tracker continues under
/// the exact hysteresis thresholds it was built with.
void EncodeModelTracker(const ModelTracker& tracker, SnapshotWriter* w);
Result<ModelTracker> DecodeModelTracker(SectionCursor* c);

void EncodeL1Config(const L1Config& config, SnapshotWriter* w);
Result<L1Config> DecodeL1Config(SectionCursor* c);

void EncodeL2Config(const L2Config& config, SnapshotWriter* w);
Result<L2Config> DecodeL2Config(SectionCursor* c);

void EncodeL3Config(const L3Config& config, SnapshotWriter* w);
Result<L3Config> DecodeL3Config(SectionCursor* c);

void EncodeCoverageReport(const CoverageReport& report, SnapshotWriter* w);
Result<CoverageReport> DecodeCoverageReport(SectionCursor* c);

void EncodePartialModel(const PartialModel& partial, SnapshotWriter* w);
Result<PartialModel> DecodePartialModel(SectionCursor* c);

/// The complete snapshot container (one "partial" section) a shard task
/// round-trips through — and, when a partial directory is configured,
/// the exact bytes it persists. Validating these bytes before accepting
/// a shard's result is what turns an injected (or real) corruption into
/// a retryable failure instead of silently wrong merged state.
std::string PartialModelBytes(const PartialModel& partial);
Result<PartialModel> ParsePartialModelBytes(std::string bytes);

/// Canonical serialized form of a merged, coverage-annotated model
/// (sections "model", "daily", "coverage") — the byte string the chaos
/// harness compares for its byte-identity and coverage-accounting
/// assertions.
std::string MergedModelBytes(const MergedPartialModel& merged);
Result<MergedPartialModel> ParseMergedModelBytes(std::string bytes);

/// Order-sensitive FNV-1a accumulator for config fingerprints.
class Fingerprinter {
 public:
  void MixU64(uint64_t v);
  void MixI64(int64_t v) { MixU64(static_cast<uint64_t>(v)); }
  void MixBool(bool v) { MixU64(v ? 1 : 0); }
  void MixDouble(double v);
  void MixString(std::string_view s);
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
};

/// Fingerprints of every result-relevant config field. A resumed run
/// compares the stored fingerprint against its own config and refuses
/// to mix state mined under different parameters. `num_threads` is
/// deliberately excluded: results are bit-identical for any thread
/// count (the PR 1 determinism contract), so a resume may change
/// parallelism freely.
uint64_t ConfigFingerprint(const L1Config& config);
uint64_t ConfigFingerprint(const L2Config& config);
uint64_t ConfigFingerprint(const L3Config& config);

}  // namespace logmine::core

#endif  // LOGMINE_CORE_SERIALIZATION_H_
