#include "core/serialization.h"

#include <cstring>
#include <map>
#include <set>
#include <utility>

namespace logmine::core {
namespace {

// Guards against absurd counts from a corrupt-but-CRC-valid payload
// (only reachable with a hand-built file) so decoders never attempt a
// multi-gigabyte reserve.
Status CheckCount(uint64_t count, uint64_t limit, const char* what) {
  if (count > limit) {
    return Status::ParseError(std::string("implausible ") + what +
                              " count: " + std::to_string(count));
  }
  return Status::OK();
}

}  // namespace

void EncodeDependencyModel(const DependencyModel& model, SnapshotWriter* w) {
  w->PutU64(model.size());
  for (const NamePair& pair : model.pairs()) {
    w->PutString(pair.first);
    w->PutString(pair.second);
  }
}

Result<DependencyModel> DecodeDependencyModel(SectionCursor* c) {
  LOGMINE_ASSIGN_OR_RETURN(uint64_t count, c->ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(count, 1u << 26, "dependency pair"));
  std::set<NamePair> pairs;
  for (uint64_t i = 0; i < count; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string first, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(std::string second, c->ReadString());
    pairs.emplace(std::move(first), std::move(second));
  }
  return DependencyModel(std::move(pairs));
}

void EncodeConfusionCounts(const ConfusionCounts& counts, SnapshotWriter* w) {
  w->PutI64(counts.true_positives);
  w->PutI64(counts.false_positives);
  w->PutI64(counts.false_negatives);
  w->PutI64(counts.universe);
}

Result<ConfusionCounts> DecodeConfusionCounts(SectionCursor* c) {
  ConfusionCounts counts;
  LOGMINE_ASSIGN_OR_RETURN(counts.true_positives, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(counts.false_positives, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(counts.false_negatives, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(counts.universe, c->ReadI64());
  return counts;
}

void EncodeDailySeries(const DailySeries& series, SnapshotWriter* w) {
  w->PutU64(series.days.size());
  for (size_t i = 0; i < series.days.size(); ++i) {
    w->PutString(i < series.day_labels.size() ? series.day_labels[i] : "");
    EncodeConfusionCounts(series.days[i], w);
  }
}

Result<DailySeries> DecodeDailySeries(SectionCursor* c) {
  LOGMINE_ASSIGN_OR_RETURN(uint64_t count, c->ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(count, 1u << 22, "daily series row"));
  DailySeries series;
  series.day_labels.reserve(count);
  series.days.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string label, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(ConfusionCounts counts, DecodeConfusionCounts(c));
    series.day_labels.push_back(std::move(label));
    series.days.push_back(counts);
  }
  return series;
}

void EncodeSessionBuildStats(const SessionBuildStats& stats,
                             SnapshotWriter* w) {
  w->PutU64(stats.num_sessions);
  w->PutI64(stats.logs_considered);
  w->PutI64(stats.logs_with_context);
  w->PutI64(stats.logs_assigned);
  w->PutDouble(stats.assigned_fraction);
}

Result<SessionBuildStats> DecodeSessionBuildStats(SectionCursor* c) {
  SessionBuildStats stats;
  LOGMINE_ASSIGN_OR_RETURN(uint64_t num_sessions, c->ReadU64());
  stats.num_sessions = static_cast<size_t>(num_sessions);
  LOGMINE_ASSIGN_OR_RETURN(stats.logs_considered, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(stats.logs_with_context, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(stats.logs_assigned, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(stats.assigned_fraction, c->ReadDouble());
  return stats;
}

void EncodeModelTracker(const ModelTracker& tracker, SnapshotWriter* w) {
  const ModelTrackerConfig& config = tracker.config();
  w->PutI64(config.confirm_after);
  w->PutI64(config.stale_after);
  w->PutI64(config.retire_after);
  w->PutI64(tracker.num_observations());
  w->PutU64(tracker.tracked().size());
  for (const auto& [pair, dep] : tracker.tracked()) {
    w->PutString(pair.first);
    w->PutString(pair.second);
    w->PutU32(static_cast<uint32_t>(dep.state));
    w->PutI64(dep.first_seen);
    w->PutI64(dep.last_seen);
    w->PutI64(dep.times_seen);
    w->PutI64(dep.confirm_streak);
  }
}

Result<ModelTracker> DecodeModelTracker(SectionCursor* c) {
  ModelTrackerConfig config;
  LOGMINE_ASSIGN_OR_RETURN(config.confirm_after, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.stale_after, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.retire_after, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(int64_t observations, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t count, c->ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(count, 1u << 26, "tracked dependency"));
  std::map<NamePair, TrackedDependency> tracked;
  for (uint64_t i = 0; i < count; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string first, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(std::string second, c->ReadString());
    TrackedDependency dep;
    LOGMINE_ASSIGN_OR_RETURN(uint32_t state, c->ReadU32());
    if (state > static_cast<uint32_t>(DependencyState::kRetired)) {
      return Status::ParseError("tracked dependency state out of range: " +
                                std::to_string(state));
    }
    dep.state = static_cast<DependencyState>(state);
    LOGMINE_ASSIGN_OR_RETURN(dep.first_seen, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(dep.last_seen, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(dep.times_seen, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(dep.confirm_streak, c->ReadI64());
    tracked.emplace(NamePair(std::move(first), std::move(second)), dep);
  }
  return ModelTracker(config, std::move(tracked), observations);
}

void EncodeCoverageReport(const CoverageReport& report, SnapshotWriter* w) {
  w->PutU32(static_cast<uint32_t>(report.num_days));
  w->PutU32(static_cast<uint32_t>(report.num_ranges));
  w->PutU64(report.covered.size());
  for (uint8_t cell : report.covered) w->PutBool(cell != 0);
}

Result<CoverageReport> DecodeCoverageReport(SectionCursor* c) {
  CoverageReport report;
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_days, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_ranges, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t cells, c->ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(cells, 1u << 26, "coverage cell"));
  report.num_days = static_cast<int32_t>(num_days);
  report.num_ranges = static_cast<int32_t>(num_ranges);
  if (cells != static_cast<uint64_t>(num_days) * num_ranges) {
    return Status::ParseError(
        "coverage bitmap holds " + std::to_string(cells) + " cells for a " +
        std::to_string(num_days) + " x " + std::to_string(num_ranges) +
        " grid");
  }
  report.covered.reserve(cells);
  for (uint64_t i = 0; i < cells; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(bool covered, c->ReadBool());
    report.covered.push_back(covered ? 1 : 0);
  }
  return report;
}

void EncodePartialModel(const PartialModel& partial, SnapshotWriter* w) {
  w->PutU32(static_cast<uint32_t>(partial.shard.day));
  w->PutU32(static_cast<uint32_t>(partial.shard.range_index));
  w->PutU32(static_cast<uint32_t>(partial.num_days));
  w->PutU32(static_cast<uint32_t>(partial.num_ranges));
  w->PutU64(partial.state_hash);
  EncodeDependencyModel(partial.model, w);
}

Result<PartialModel> DecodePartialModel(SectionCursor* c) {
  PartialModel partial;
  LOGMINE_ASSIGN_OR_RETURN(uint32_t day, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t range_index, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_days, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_ranges, c->ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(partial.state_hash, c->ReadU64());
  partial.shard.day = static_cast<int32_t>(day);
  partial.shard.range_index = static_cast<int32_t>(range_index);
  partial.num_days = static_cast<int32_t>(num_days);
  partial.num_ranges = static_cast<int32_t>(num_ranges);
  if (partial.num_ranges < 1 || partial.shard.day >= partial.num_days ||
      partial.shard.range_index >= partial.num_ranges) {
    return Status::ParseError(
        "partial model claims shard (" + std::to_string(day) + ", " +
        std::to_string(range_index) + ") of a " + std::to_string(num_days) +
        " x " + std::to_string(num_ranges) + " grid");
  }
  LOGMINE_ASSIGN_OR_RETURN(partial.model, DecodeDependencyModel(c));
  return partial;
}

std::string PartialModelBytes(const PartialModel& partial) {
  SnapshotWriter w;
  w.BeginSection("partial");
  EncodePartialModel(partial, &w);
  w.EndSection();
  return std::move(w).Finish();
}

Result<PartialModel> ParsePartialModelBytes(std::string bytes) {
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(std::move(bytes)));
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor cursor, reader.Section("partial"));
  LOGMINE_ASSIGN_OR_RETURN(PartialModel partial, DecodePartialModel(&cursor));
  LOGMINE_RETURN_IF_ERROR(cursor.ExpectEnd());
  return partial;
}

std::string MergedModelBytes(const MergedPartialModel& merged) {
  SnapshotWriter w;
  w.BeginSection("model");
  EncodeDependencyModel(merged.model, &w);
  w.EndSection();
  w.BeginSection("daily");
  w.PutU64(merged.daily.size());
  for (const DependencyModel& model : merged.daily) {
    EncodeDependencyModel(model, &w);
  }
  w.EndSection();
  w.BeginSection("coverage");
  EncodeCoverageReport(merged.coverage, &w);
  w.EndSection();
  return std::move(w).Finish();
}

Result<MergedPartialModel> ParseMergedModelBytes(std::string bytes) {
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(std::move(bytes)));
  MergedPartialModel merged;
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor model_cursor,
                           reader.Section("model"));
  LOGMINE_ASSIGN_OR_RETURN(merged.model,
                           DecodeDependencyModel(&model_cursor));
  LOGMINE_RETURN_IF_ERROR(model_cursor.ExpectEnd());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor daily_cursor,
                           reader.Section("daily"));
  LOGMINE_ASSIGN_OR_RETURN(uint64_t num_daily, daily_cursor.ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(num_daily, 1u << 20, "daily model"));
  merged.daily.reserve(num_daily);
  for (uint64_t i = 0; i < num_daily; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(DependencyModel model,
                             DecodeDependencyModel(&daily_cursor));
    merged.daily.push_back(std::move(model));
  }
  LOGMINE_RETURN_IF_ERROR(daily_cursor.ExpectEnd());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor coverage_cursor,
                           reader.Section("coverage"));
  LOGMINE_ASSIGN_OR_RETURN(merged.coverage,
                           DecodeCoverageReport(&coverage_cursor));
  LOGMINE_RETURN_IF_ERROR(coverage_cursor.ExpectEnd());
  return merged;
}

void EncodeL1Config(const L1Config& config, SnapshotWriter* w) {
  w->PutI64(config.slot_length);
  w->PutBool(config.adaptive_slots);
  w->PutI64(config.adaptive.min_slot);
  w->PutI64(config.adaptive.max_slot);
  w->PutDouble(config.adaptive.alpha);
  w->PutU32(static_cast<uint32_t>(config.adaptive.probe_bins));
  w->PutI64(config.adaptive.min_events);
  w->PutU32(static_cast<uint32_t>(config.baseline));
  w->PutI64(config.baseline_jitter);
  w->PutI64(config.minlogs);
  w->PutDouble(config.th_pr);
  w->PutDouble(config.th_s);
  w->PutU64(config.test.sample_size);
  w->PutDouble(config.test.level);
  w->PutU64(config.seed);
  w->PutU32(static_cast<uint32_t>(config.num_threads));
  w->PutBool(config.prune_support);
  w->PutU64(config.pair_chunk);
  w->PutI64(config.salt_anchor);
}

Result<L1Config> DecodeL1Config(SectionCursor* c) {
  L1Config config;
  LOGMINE_ASSIGN_OR_RETURN(config.slot_length, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.adaptive_slots, c->ReadBool());
  LOGMINE_ASSIGN_OR_RETURN(config.adaptive.min_slot, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.adaptive.max_slot, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.adaptive.alpha, c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t probe_bins, c->ReadU32());
  config.adaptive.probe_bins = static_cast<int>(probe_bins);
  LOGMINE_ASSIGN_OR_RETURN(config.adaptive.min_events, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t baseline, c->ReadU32());
  if (baseline > static_cast<uint32_t>(L1Baseline::kIntensityProportional)) {
    return Status::ParseError("L1 baseline out of range: " +
                              std::to_string(baseline));
  }
  config.baseline = static_cast<L1Baseline>(baseline);
  LOGMINE_ASSIGN_OR_RETURN(config.baseline_jitter, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.minlogs, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.th_pr, c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(config.th_s, c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t sample_size, c->ReadU64());
  config.test.sample_size = static_cast<size_t>(sample_size);
  LOGMINE_ASSIGN_OR_RETURN(config.test.level, c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(config.seed, c->ReadU64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_threads, c->ReadU32());
  config.num_threads = static_cast<int>(num_threads);
  LOGMINE_ASSIGN_OR_RETURN(config.prune_support, c->ReadBool());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t pair_chunk, c->ReadU64());
  config.pair_chunk = static_cast<size_t>(pair_chunk);
  LOGMINE_ASSIGN_OR_RETURN(config.salt_anchor, c->ReadI64());
  return config;
}

void EncodeL2Config(const L2Config& config, SnapshotWriter* w) {
  w->PutI64(config.session.max_gap);
  w->PutU64(config.session.min_logs);
  w->PutI64(config.timeout);
  w->PutU32(static_cast<uint32_t>(config.test));
  w->PutDouble(config.alpha);
  w->PutI64(config.min_cooccurrence);
  w->PutDouble(config.min_cooccurrence_per_session);
  w->PutU32(static_cast<uint32_t>(config.num_threads));
}

Result<L2Config> DecodeL2Config(SectionCursor* c) {
  L2Config config;
  LOGMINE_ASSIGN_OR_RETURN(config.session.max_gap, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t min_logs, c->ReadU64());
  config.session.min_logs = static_cast<size_t>(min_logs);
  LOGMINE_ASSIGN_OR_RETURN(config.timeout, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t test, c->ReadU32());
  if (test > static_cast<uint32_t>(AssociationTest::kPearson)) {
    return Status::ParseError("L2 association test out of range: " +
                              std::to_string(test));
  }
  config.test = static_cast<AssociationTest>(test);
  LOGMINE_ASSIGN_OR_RETURN(config.alpha, c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(config.min_cooccurrence, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(config.min_cooccurrence_per_session,
                           c->ReadDouble());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_threads, c->ReadU32());
  config.num_threads = static_cast<int>(num_threads);
  return config;
}

void EncodeL3Config(const L3Config& config, SnapshotWriter* w) {
  w->PutU64(config.stop_patterns.size());
  for (const std::string& pattern : config.stop_patterns) {
    w->PutString(pattern);
  }
  w->PutBool(config.use_stop_patterns);
  w->PutI64(config.min_citations);
  w->PutU32(static_cast<uint32_t>(config.num_threads));
}

Result<L3Config> DecodeL3Config(SectionCursor* c) {
  L3Config config;
  LOGMINE_ASSIGN_OR_RETURN(uint64_t count, c->ReadU64());
  LOGMINE_RETURN_IF_ERROR(CheckCount(count, 1u << 16, "stop pattern"));
  config.stop_patterns.clear();
  config.stop_patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string pattern, c->ReadString());
    config.stop_patterns.push_back(std::move(pattern));
  }
  LOGMINE_ASSIGN_OR_RETURN(config.use_stop_patterns, c->ReadBool());
  LOGMINE_ASSIGN_OR_RETURN(config.min_citations, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t num_threads, c->ReadU32());
  config.num_threads = static_cast<int>(num_threads);
  return config;
}

void Fingerprinter::MixU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xFF;
    hash_ *= 0x100000001B3ULL;  // FNV-1a prime
  }
}

void Fingerprinter::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  MixU64(bits);
}

void Fingerprinter::MixString(std::string_view s) {
  MixU64(s.size());
  for (unsigned char byte : s) {
    hash_ ^= byte;
    hash_ *= 0x100000001B3ULL;
  }
}

uint64_t ConfigFingerprint(const L1Config& config) {
  Fingerprinter fp;
  fp.MixString("L1");
  fp.MixI64(config.slot_length);
  fp.MixBool(config.adaptive_slots);
  fp.MixI64(config.adaptive.min_slot);
  fp.MixI64(config.adaptive.max_slot);
  fp.MixDouble(config.adaptive.alpha);
  fp.MixI64(config.adaptive.probe_bins);
  fp.MixI64(config.adaptive.min_events);
  fp.MixU64(static_cast<uint64_t>(config.baseline));
  fp.MixI64(config.baseline_jitter);
  fp.MixI64(config.minlogs);
  fp.MixDouble(config.th_pr);
  fp.MixDouble(config.th_s);
  fp.MixU64(config.test.sample_size);
  fp.MixDouble(config.test.level);
  fp.MixU64(config.seed);
  // Like the fields above (and unlike the perf-only knobs), the anchor
  // changes which random streams the test draws from, so two runs with
  // different anchors are not resumable into one checkpoint.
  fp.MixI64(config.salt_anchor);
  return fp.digest();
}

uint64_t ConfigFingerprint(const L2Config& config) {
  Fingerprinter fp;
  fp.MixString("L2");
  fp.MixI64(config.session.max_gap);
  fp.MixU64(config.session.min_logs);
  fp.MixI64(config.timeout);
  fp.MixU64(static_cast<uint64_t>(config.test));
  fp.MixDouble(config.alpha);
  fp.MixI64(config.min_cooccurrence);
  fp.MixDouble(config.min_cooccurrence_per_session);
  return fp.digest();
}

uint64_t ConfigFingerprint(const L3Config& config) {
  Fingerprinter fp;
  fp.MixString("L3");
  fp.MixU64(config.stop_patterns.size());
  for (const std::string& pattern : config.stop_patterns) {
    fp.MixString(pattern);
  }
  fp.MixBool(config.use_stop_patterns);
  fp.MixI64(config.min_citations);
  return fp.digest();
}

}  // namespace logmine::core
