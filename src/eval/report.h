#ifndef LOGMINE_EVAL_REPORT_H_
#define LOGMINE_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <string_view>

#include "core/evaluation.h"
#include "stats/order_stats_ci.h"
#include "stats/regression.h"

namespace logmine::eval {

/// Prints a per-day TP/FP figure in the style of the paper's figures
/// 5/6/8: one row per day with counts, the TP ratio, and a stacked ASCII
/// bar (TP as '#', FP as 'x').
void PrintDailyFigure(std::string_view title,
                      const core::DailySeries& series, std::ostream& os);

/// Renders "median [lo, hi] (level L)".
std::string FormatCi(const stats::MedianCi& ci, int digits);

/// Renders "slope [lo, hi]" for a regression fit.
std::string FormatSlopeCi(const stats::LinearFit& fit, int digits);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_REPORT_H_
