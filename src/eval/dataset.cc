#include "eval/dataset.h"

namespace logmine::eval {

core::ServiceVocabulary VocabularyFrom(
    const sim::ServiceDirectory& directory) {
  core::ServiceVocabulary vocabulary;
  vocabulary.entries.reserve(directory.size());
  for (const sim::ServiceEntry& entry : directory.entries()) {
    vocabulary.entries.push_back({entry.id, entry.root_url});
  }
  return vocabulary;
}

Result<Dataset> BuildDataset(const DatasetConfig& config) {
  Dataset dataset;
  auto scenario = sim::BuildHugScenario(config.scenario);
  if (!scenario.ok()) return scenario.status();
  dataset.scenario = std::move(scenario).value();
  dataset.simulation = config.simulation;
  if (dataset.simulation.start == 0) {
    dataset.simulation.start = sim::DefaultSimulationStart();
  }

  sim::Simulator simulator(dataset.scenario.topology,
                           dataset.scenario.directory, dataset.simulation);
  LOGMINE_RETURN_IF_ERROR(simulator.Run(&dataset.store, &dataset.summary));

  dataset.vocabulary = VocabularyFrom(dataset.scenario.directory);
  dataset.reference_pairs =
      core::DependencyModel(dataset.scenario.interaction_pairs);
  dataset.reference_services =
      core::DependencyModel(dataset.scenario.app_service_deps);

  for (const sim::Application& app : dataset.scenario.topology.apps) {
    for (int entry : app.provided_entries) {
      dataset.entry_owner
          [dataset.scenario.directory.entry(static_cast<size_t>(entry)).id] =
          app.name;
    }
  }

  const auto num_apps =
      static_cast<int64_t>(dataset.scenario.topology.apps.size());
  dataset.universe_pairs = num_apps * (num_apps - 1) / 2;
  dataset.universe_services =
      num_apps * static_cast<int64_t>(dataset.scenario.directory.size());
  return dataset;
}

}  // namespace logmine::eval
