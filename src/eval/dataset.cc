#include "eval/dataset.h"

#include <cstring>

#include "log/columnar.h"
#include "util/snapshot.h"

namespace logmine::eval {
namespace {

// FNV-1a, the same mixing discipline as util/rng's seed derivation:
// cheap, stable across platforms, and good enough for a cache key that
// only needs to notice *any* config edit.
class Fingerprinter {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xFF;
      hash_ *= 0x100000001B3ull;
    }
  }
  void Mix(int64_t v) { Mix(static_cast<uint64_t>(v)); }
  void Mix(int v) { Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Mix(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    Mix(bits);
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ull;
};

constexpr uint32_t kCacheVersion = 1;

// Cache sections ride in one snapshot container next to the columnar
// corpus sections: "dsmeta" (version + fingerprint) and "dssum" (the
// SimulationSummary, which is not derivable from the corpus alone).
std::string EncodeCache(uint64_t fingerprint,
                        const sim::SimulationSummary& summary,
                        const LogStore& store) {
  SnapshotWriter writer;
  writer.BeginSection("dsmeta");
  writer.PutU32(kCacheVersion);
  writer.PutU64(fingerprint);
  writer.EndSection();
  writer.BeginSection("dssum");
  writer.PutU64(summary.logs_per_day.size());
  for (int64_t logs : summary.logs_per_day) writer.PutI64(logs);
  writer.PutI64(summary.total_logs);
  writer.PutI64(summary.context_logs);
  writer.PutI64(summary.num_identified_sessions);
  writer.PutI64(summary.num_anonymous_executions);
  writer.PutI64(summary.num_batch_executions);
  writer.EndSection();
  AppendColumnarSections(store, &writer);
  return std::move(writer).Finish();
}

struct CachedCorpus {
  sim::SimulationSummary summary;
  LogStore store;
};

Result<CachedCorpus> DecodeCache(const std::string& path,
                                 uint64_t fingerprint) {
  LOGMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(std::move(bytes)));
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor meta, reader.Section("dsmeta"));
  LOGMINE_ASSIGN_OR_RETURN(uint32_t version, meta.ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint64_t cached_fingerprint, meta.ReadU64());
  if (Status s = meta.ExpectEnd(); !s.ok()) return s;
  if (version != kCacheVersion || cached_fingerprint != fingerprint) {
    return Status::FailedPrecondition("dataset cache is stale");
  }
  CachedCorpus cached;
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor sum, reader.Section("dssum"));
  LOGMINE_ASSIGN_OR_RETURN(uint64_t num_days, sum.ReadU64());
  cached.summary.logs_per_day.reserve(static_cast<size_t>(num_days));
  for (uint64_t i = 0; i < num_days; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(int64_t logs, sum.ReadI64());
    cached.summary.logs_per_day.push_back(logs);
  }
  LOGMINE_ASSIGN_OR_RETURN(cached.summary.total_logs, sum.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(cached.summary.context_logs, sum.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(cached.summary.num_identified_sessions,
                           sum.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(cached.summary.num_anonymous_executions,
                           sum.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(cached.summary.num_batch_executions,
                           sum.ReadI64());
  if (Status s = sum.ExpectEnd(); !s.ok()) return s;
  LOGMINE_ASSIGN_OR_RETURN(cached.store,
                           DecodeColumnarSections(reader, {}));
  cached.store.BuildIndex();
  return cached;
}

}  // namespace

uint64_t DatasetFingerprint(const DatasetConfig& config) {
  Fingerprinter fp;
  fp.Mix(config.scenario.seed);
  const sim::DefectCatalog& defects = config.scenario.defects;
  fp.Mix(defects.unlogged_edges);
  fp.Mix(defects.wrong_name_edges);
  fp.Mix(defects.erroneous_id_edges);
  fp.Mix(defects.server_side_loggers);
  fp.Mix(defects.uncovered_server_side_loggers);
  fp.Mix(defects.exception_edges);
  fp.Mix(defects.coincidence_pairs);
  fp.Mix(defects.rare_edges);
  const sim::SimulationConfig& s = config.simulation;
  fp.Mix(s.start);
  fp.Mix(s.num_days);
  fp.Mix(s.scale);
  fp.Mix(s.seed);
  fp.Mix(s.workload.num_users);
  fp.Mix(s.workload.num_workstations);
  fp.Mix(s.workload.sessions_per_weekday);
  fp.Mix(s.workload.mean_session_minutes);
  fp.Mix(s.workload.think_median_seconds);
  fp.Mix(s.workload.think_log_sigma);
  for (double v : s.profile.weekday) fp.Mix(v);
  for (double v : s.profile.weekend) fp.Mix(v);
  fp.Mix(s.anon_executions_per_weekday);
  fp.Mix(s.batch_executions_per_day);
  fp.Mix(s.coincidence_rate_per_day);
  fp.Mix(s.client_context_prob);
  fp.Mix(s.service_context_prob);
  fp.Mix(s.network_median_ms);
  fp.Mix(s.network_sigma);
  fp.Mix(s.processing_median_ms);
  fp.Mix(s.processing_sigma);
  fp.Mix(s.async_delay_median_ms);
  fp.Mix(s.async_sigma);
  fp.Mix(s.failure_timeout_ms);
  fp.Mix(static_cast<uint64_t>(s.failures.size()));
  for (const sim::FailureWindow& window : s.failures) {
    fp.Mix(window.app);
    fp.Mix(window.begin);
    fp.Mix(window.end);
  }
  return fp.hash();
}

core::ServiceVocabulary VocabularyFrom(
    const sim::ServiceDirectory& directory) {
  core::ServiceVocabulary vocabulary;
  vocabulary.entries.reserve(directory.size());
  for (const sim::ServiceEntry& entry : directory.entries()) {
    vocabulary.entries.push_back({entry.id, entry.root_url});
  }
  return vocabulary;
}

Result<Dataset> BuildDataset(const DatasetConfig& config) {
  Dataset dataset;
  auto scenario = sim::BuildHugScenario(config.scenario);
  if (!scenario.ok()) return scenario.status();
  dataset.scenario = std::move(scenario).value();
  dataset.simulation = config.simulation;
  if (dataset.simulation.start == 0) {
    dataset.simulation.start = sim::DefaultSimulationStart();
  }

  // The simulator run is the expensive step; the corpus cache replaces
  // it with a columnar read when an up-to-date cache exists. Any cache
  // defect — missing, stale fingerprint, corruption — falls through to
  // a fresh simulation; the cache is an accelerator, never a source of
  // truth.
  const uint64_t fingerprint =
      config.corpus_cache_path.empty() ? 0 : DatasetFingerprint(config);
  bool simulated = false;
  if (!config.corpus_cache_path.empty()) {
    auto cached = DecodeCache(config.corpus_cache_path, fingerprint);
    if (cached.ok()) {
      dataset.summary = std::move(cached.value().summary);
      dataset.store = std::move(cached.value().store);
    } else {
      simulated = true;
    }
  } else {
    simulated = true;
  }
  if (simulated) {
    sim::Simulator simulator(dataset.scenario.topology,
                             dataset.scenario.directory, dataset.simulation);
    LOGMINE_RETURN_IF_ERROR(simulator.Run(&dataset.store, &dataset.summary));
    if (!config.corpus_cache_path.empty()) {
      // Best-effort: a read-only cache directory degrades to "no cache",
      // not a failed build.
      (void)WriteFileAtomic(
          config.corpus_cache_path,
          EncodeCache(fingerprint, dataset.summary, dataset.store));
    }
  }

  dataset.vocabulary = VocabularyFrom(dataset.scenario.directory);
  dataset.reference_pairs =
      core::DependencyModel(dataset.scenario.interaction_pairs);
  dataset.reference_services =
      core::DependencyModel(dataset.scenario.app_service_deps);

  for (const sim::Application& app : dataset.scenario.topology.apps) {
    for (int entry : app.provided_entries) {
      dataset.entry_owner
          [dataset.scenario.directory.entry(static_cast<size_t>(entry)).id] =
          app.name;
    }
  }

  const auto num_apps =
      static_cast<int64_t>(dataset.scenario.topology.apps.size());
  dataset.universe_pairs = num_apps * (num_apps - 1) / 2;
  dataset.universe_services =
      num_apps * static_cast<int64_t>(dataset.scenario.directory.size());
  return dataset;
}

}  // namespace logmine::eval
