#include "eval/report.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace logmine::eval {

void PrintDailyFigure(std::string_view title,
                      const core::DailySeries& series, std::ostream& os) {
  os << title << "\n";
  TablePrinter table({"day", "TP", "FP", "pos", "tp-ratio", "bar (#=TP x=FP)"});
  int64_t max_pos = 1;
  for (const core::ConfusionCounts& day : series.days) {
    max_pos = std::max(max_pos, day.positives());
  }
  constexpr int kBarWidth = 40;
  for (size_t i = 0; i < series.days.size(); ++i) {
    const core::ConfusionCounts& day = series.days[i];
    const int total_cells = static_cast<int>(
        static_cast<double>(day.positives()) / static_cast<double>(max_pos) *
            kBarWidth +
        0.5);
    const int tp_cells =
        day.positives() == 0
            ? 0
            : static_cast<int>(static_cast<double>(day.true_positives) /
                                   static_cast<double>(day.positives()) *
                                   total_cells +
                               0.5);
    std::string bar(static_cast<size_t>(tp_cells), '#');
    bar.append(static_cast<size_t>(std::max(0, total_cells - tp_cells)), 'x');
    table.AddRow({series.day_labels[i], std::to_string(day.true_positives),
                  std::to_string(day.false_positives),
                  std::to_string(day.positives()),
                  FormatDouble(day.tp_ratio(), 2), bar});
  }
  table.Print(os);
}

std::string FormatCi(const stats::MedianCi& ci, int digits) {
  return FormatDouble(ci.median, digits) + " [" +
         FormatDouble(ci.lower, digits) + ", " +
         FormatDouble(ci.upper, digits) + "] (level " +
         FormatDouble(ci.coverage, 4) + ")";
}

std::string FormatSlopeCi(const stats::LinearFit& fit, int digits) {
  return FormatDouble(fit.slope, digits) + " [" +
         FormatDouble(fit.slope_ci_lo, digits) + ", " +
         FormatDouble(fit.slope_ci_hi, digits) + "]";
}

}  // namespace logmine::eval
