#ifndef LOGMINE_EVAL_RESUMABLE_RUNNER_H_
#define LOGMINE_EVAL_RESUMABLE_RUNNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/model_tracker.h"
#include "eval/daily_runner.h"
#include "obs/obs.h"
#include "simulation/crash_injector.h"
#include "util/retry.h"

namespace logmine::eval {

/// Which technique a checkpoint stream belongs to; stored in every
/// snapshot so a file can never be resumed by the wrong sweep.
enum class Technique : uint32_t { kL1 = 1, kL2 = 2, kL3 = 3 };

std::string_view TechniqueName(Technique technique);

/// Where and how a resumable sweep persists its progress.
struct CheckpointConfig {
  /// Checkpoint directory; empty disables checkpointing entirely (the
  /// sweep then behaves exactly like the plain daily runner).
  std::string dir;
  /// Completed generations kept on disk. Must be >= 2 so that a corrupt
  /// newest generation always has a valid predecessor to fall back to.
  int keep_generations = 2;
  /// Retry policy applied to every checkpoint read/write, so transient
  /// filesystem failures do not abort a multi-day sweep.
  RetryPolicy retry;
};

/// Controls of one resumable run.
struct ResumableOptions {
  CheckpointConfig checkpoint;
  /// Hysteresis parameters of the ModelTracker fed one observation per
  /// completed day (the paper's moving-landscape device, maintained
  /// incrementally across process restarts).
  core::ModelTrackerConfig tracker;
  const CancelToken* cancel = nullptr;
  /// Day-granular wall-clock budget; 0 = none, negative = already
  /// expired (see DailyRunOptions). Progress made before expiry is
  /// checkpointed, so a deadline is a pause, not a loss.
  int64_t deadline_ms = 0;
  /// Test-only kill-point harness; null in production.
  sim::CrashInjector* crash = nullptr;
  /// Observability context, optional. When non-null the run's checkpoint
  /// reads and per-day mining record into it (in addition to any global
  /// context the low layers consult) and the final
  /// `ResumableDailyResult::metrics` carries its merged snapshot.
  obs::ObsContext* obs = nullptr;
};

/// How a resumable run got to its result.
struct ResumeInfo {
  int days_loaded = 0;   ///< days recovered from a checkpoint
  int days_mined = 0;    ///< days mined by this process
  int generations_discarded = 0;  ///< corrupt/truncated/stale snapshots
  int snapshots_written = 0;
  std::string resumed_from;  ///< path of the generation loaded; "" = fresh
};

/// A daily sweep result plus the incremental state that rides along.
struct ResumableDailyResult {
  DailyRunResult result;
  /// One entry per day (L2 sweeps only; empty otherwise).
  std::vector<core::SessionBuildStats> session_stats;
  /// Fed one Observe(model) per completed day, surviving restarts.
  core::ModelTracker tracker{core::ModelTrackerConfig{}};
  ResumeInfo resume;
  /// Merged metrics of `ResumableOptions::obs`, taken after the sweep
  /// finished; absent when no context was provided. Never serialized
  /// into checkpoints (snapshot byte-identity is observability-blind).
  std::optional<obs::MetricsSnapshot> metrics;
};

/// Checkpointed variants of RunL{1,2,3}Daily: the sweep writes one
/// snapshot generation after every completed day, and on startup scans
/// `checkpoint.dir`, discards truncated / corrupt / stale-version
/// generations (falling back to the newest valid one) and resumes from
/// there. A run killed at any instant and restarted produces a final
/// result byte-identical to an uninterrupted run — the property
/// tests/integration/crash_recovery_test.cc asserts for every kill
/// point. A valid checkpoint whose config fingerprint does not match
/// `config` fails the run with FailedPrecondition: state mined under
/// different parameters is never silently mixed.
Result<ResumableDailyResult> RunL1DailyResumable(
    const Dataset& dataset, const core::L1Config& config,
    const ResumableOptions& options);
Result<ResumableDailyResult> RunL2DailyResumable(
    const Dataset& dataset, const core::L2Config& config,
    const ResumableOptions& options);
Result<ResumableDailyResult> RunL3DailyResumable(
    const Dataset& dataset, const core::L3Config& config,
    const ResumableOptions& options);

/// The canonical serialized form of a (possibly partial) sweep — the
/// exact bytes written as a checkpoint generation, and the fingerprint
/// the crash-recovery tests compare for byte-identity. `state_hash`
/// must combine the config and dataset fingerprints (the runners use
/// CheckpointStateHash).
std::string CheckpointBytes(Technique technique, uint64_t state_hash,
                            int num_days, const ResumableDailyResult& run);

/// Combined fingerprint of (miner config, dataset identity, tracker
/// config): a resume refuses checkpoints mined from a different corpus
/// or under different hysteresis thresholds just as it refuses a
/// different miner config.
uint64_t CheckpointStateHash(uint64_t config_fingerprint,
                             const Dataset& dataset,
                             const core::ModelTrackerConfig& tracker);

/// Configuration of a multi-technique resumable sweep (the per-day
/// machinery behind figures 5, 6 and 8, run as one restartable unit).
struct SweepConfig {
  bool run_l1 = true;
  bool run_l2 = true;
  bool run_l3 = true;
  core::L1Config l1;
  core::L2Config l2;
  core::L3Config l3;
};

struct SweepResult {
  std::optional<ResumableDailyResult> l1;
  std::optional<ResumableDailyResult> l2;
  std::optional<ResumableDailyResult> l3;
};

/// Runs the enabled techniques in L1, L2, L3 order, each with its own
/// checkpoint stream under `<checkpoint.dir>/<technique>`. A re-run
/// after a crash skips completed techniques entirely (their final
/// generation holds every day) and resumes the interrupted one. The
/// kBetweenMiners kill point fires at technique boundaries (index =
/// number of completed techniques - 1).
Result<SweepResult> RunSweepResumable(const Dataset& dataset,
                                      const SweepConfig& config,
                                      const ResumableOptions& options);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_RESUMABLE_RUNNER_H_
