#include "eval/timeout_experiment.h"

#include "core/l2_session_builder.h"
#include "stats/order_stats_ci.h"
#include "stats/wilcoxon.h"

namespace logmine::eval {
namespace {

// Evaluates L2 with `timeout` on pre-built sessions of one day.
Result<core::ConfusionCounts> EvaluateWithTimeout(
    const Dataset& dataset, const core::L2Config& base_config,
    const std::vector<core::Session>& sessions, TimeMs timeout) {
  core::L2Config config = base_config;
  config.timeout = timeout;
  core::L2CooccurrenceMiner miner(config);
  auto mined = miner.MineSessions(dataset.store, sessions);
  if (!mined.ok()) return mined.status();
  return core::Evaluate(mined.value().Dependencies(dataset.store),
                        dataset.reference_pairs, dataset.universe_pairs);
}

}  // namespace

Result<TimeoutExperimentResult> RunTimeoutExperiment(
    const Dataset& dataset, const core::L2Config& base_config,
    const std::vector<TimeMs>& finite_timeouts, double ci_level) {
  TimeoutExperimentResult out;
  out.timeouts = finite_timeouts;
  out.timeouts.push_back(0);  // infinity sentinel, mined last
  out.daily.resize(out.timeouts.size());

  core::SessionBuilder builder(base_config.session);
  for (int day = 0; day < dataset.num_days(); ++day) {
    const std::vector<core::Session> sessions = builder.Build(
        dataset.store, dataset.day_begin(day), dataset.day_end(day), nullptr);
    for (size_t t = 0; t < out.timeouts.size(); ++t) {
      auto counts =
          EvaluateWithTimeout(dataset, base_config, sessions, out.timeouts[t]);
      if (!counts.ok()) return counts.status();
      out.daily[t].push_back(counts.value());
    }
  }

  const size_t inf_index = out.timeouts.size() - 1;
  for (size_t t = 0; t + 1 < out.timeouts.size(); ++t) {
    TimeoutRow row;
    row.timeout = out.timeouts[t];
    std::vector<double> tpr_diffs, tp_diffs;
    for (int day = 0; day < dataset.num_days(); ++day) {
      const core::ConfusionCounts& with_to =
          out.daily[t][static_cast<size_t>(day)];
      const core::ConfusionCounts& inf =
          out.daily[inf_index][static_cast<size_t>(day)];
      tpr_diffs.push_back(with_to.tp_ratio() - inf.tp_ratio());
      tp_diffs.push_back(static_cast<double>(with_to.true_positives) -
                         static_cast<double>(inf.true_positives));
    }
    auto tpr_ci = stats::MedianConfidenceInterval(tpr_diffs, ci_level);
    if (!tpr_ci.ok()) return tpr_ci.status();
    auto tp_ci = stats::MedianConfidenceInterval(tp_diffs, ci_level);
    if (!tp_ci.ok()) return tp_ci.status();
    row.tpr_diff_median = tpr_ci.value().median;
    row.tpr_diff_lo = tpr_ci.value().lower;
    row.tpr_diff_hi = tpr_ci.value().upper;
    row.tp_diff_median = tp_ci.value().median;
    row.tp_diff_lo = tp_ci.value().lower;
    row.tp_diff_hi = tp_ci.value().upper;

    auto w_tpr = stats::WilcoxonSignedRank(tpr_diffs,
                                           stats::Alternative::kTwoSided);
    row.wilcoxon_p_tpr = w_tpr.ok() ? w_tpr.value().p_value : 1.0;
    auto w_tp =
        stats::WilcoxonSignedRank(tp_diffs, stats::Alternative::kTwoSided);
    row.wilcoxon_p_tp = w_tp.ok() ? w_tp.value().p_value : 1.0;
    out.rows.push_back(row);
  }
  return out;
}

Result<std::vector<core::ConfusionCounts>> RunTimeoutSweepOneDay(
    const Dataset& dataset, const core::L2Config& base_config, int day,
    const std::vector<TimeMs>& timeouts) {
  if (day < 0 || day >= dataset.num_days()) {
    return Status::InvalidArgument("day out of range");
  }
  core::SessionBuilder builder(base_config.session);
  const std::vector<core::Session> sessions = builder.Build(
      dataset.store, dataset.day_begin(day), dataset.day_end(day), nullptr);
  std::vector<core::ConfusionCounts> out;
  for (TimeMs timeout : timeouts) {
    auto counts =
        EvaluateWithTimeout(dataset, base_config, sessions, timeout);
    if (!counts.ok()) return counts.status();
    out.push_back(counts.value());
  }
  return out;
}

}  // namespace logmine::eval
