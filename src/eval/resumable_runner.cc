#include "eval/resumable_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/serialization.h"
#include "util/snapshot.h"

namespace logmine::eval {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kPrefix = "ckpt-";
constexpr std::string_view kSuffix = ".snap";

std::string GenerationFileName(int generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06d.snap", generation);
  return buf;
}

std::string GenerationPath(const std::string& dir, int generation) {
  return (fs::path(dir) / GenerationFileName(generation)).string();
}

/// Generation number encoded in a checkpoint file name, or -1 when the
/// name is not one of ours (tmp leftovers, stray files).
int ParseGeneration(const std::string& name) {
  if (name.size() <= kPrefix.size() + kSuffix.size()) return -1;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return -1;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return -1;
  }
  int generation = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    generation = generation * 10 + (name[i] - '0');
  }
  return generation > 0 ? generation : -1;
}

/// Newest-first list of (generation, path) checkpoint candidates.
std::vector<std::pair<int, std::string>> ListGenerations(
    const std::string& dir) {
  std::vector<std::pair<int, std::string>> generations;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const int generation = ParseGeneration(entry.path().filename().string());
    if (generation > 0) {
      generations.emplace_back(generation, entry.path().string());
    }
  }
  std::sort(generations.begin(), generations.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return generations;
}

void PruneGenerations(const std::string& dir, int current_generation,
                      int keep_generations) {
  const int keep = std::max(2, keep_generations);
  for (const auto& [generation, path] : ListGenerations(dir)) {
    if (generation <= current_generation - keep) {
      std::error_code ec;
      fs::remove(path, ec);  // best-effort; a leftover is just re-pruned
    }
  }
}

/// The torn write a kMidSnapshotWrite crash leaves behind: half the
/// snapshot, straight at the final path (as if the platform had no
/// atomic rename, or the disk corrupted the sector after the fact).
void WriteTornSnapshot(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
}

/// Decodes one checkpoint into `run`. ParseError-class defects mean
/// "discard this generation"; a FailedPrecondition means "refuse the
/// run" (state written under a different config/dataset).
Status DecodeCheckpoint(const std::string& bytes, Technique technique,
                        uint64_t state_hash, int num_days,
                        ResumableDailyResult* run, int* days_completed) {
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(bytes));
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor meta, reader.Section("meta"));
  LOGMINE_ASSIGN_OR_RETURN(uint32_t stored_technique, meta.ReadU32());
  if (stored_technique != static_cast<uint32_t>(technique)) {
    return Status::ParseError("checkpoint belongs to technique " +
                              std::to_string(stored_technique));
  }
  LOGMINE_ASSIGN_OR_RETURN(uint64_t stored_hash, meta.ReadU64());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t stored_num_days, meta.ReadU32());
  LOGMINE_ASSIGN_OR_RETURN(uint32_t completed, meta.ReadU32());
  LOGMINE_RETURN_IF_ERROR(meta.ExpectEnd());
  if (stored_hash != state_hash ||
      stored_num_days != static_cast<uint32_t>(num_days)) {
    return Status::FailedPrecondition(
        "checkpoint was written under a different config/dataset "
        "(fingerprint " +
        std::to_string(stored_hash) + " over " +
        std::to_string(stored_num_days) + " days, this run is " +
        std::to_string(state_hash) + " over " + std::to_string(num_days) +
        "); refusing to resume — pick a fresh checkpoint dir or restore "
        "the original parameters");
  }
  if (completed < 1 || completed > static_cast<uint32_t>(num_days)) {
    return Status::ParseError("checkpoint claims " +
                              std::to_string(completed) + " completed days");
  }

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor series_cursor,
                           reader.Section("series"));
  LOGMINE_ASSIGN_OR_RETURN(run->result.series,
                           core::DecodeDailySeries(&series_cursor));
  LOGMINE_RETURN_IF_ERROR(series_cursor.ExpectEnd());
  if (run->result.series.days.size() != completed) {
    return Status::ParseError("checkpoint series length mismatch");
  }

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor models_cursor,
                           reader.Section("models"));
  LOGMINE_ASSIGN_OR_RETURN(uint64_t num_models, models_cursor.ReadU64());
  if (num_models != completed) {
    return Status::ParseError("checkpoint model count mismatch");
  }
  run->result.daily_models.clear();
  run->result.daily_models.reserve(num_models);
  for (uint64_t i = 0; i < num_models; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(core::DependencyModel model,
                             core::DecodeDependencyModel(&models_cursor));
    run->result.daily_models.push_back(std::move(model));
  }
  LOGMINE_RETURN_IF_ERROR(models_cursor.ExpectEnd());

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor sessions_cursor,
                           reader.Section("sessions"));
  LOGMINE_ASSIGN_OR_RETURN(uint64_t num_sessions, sessions_cursor.ReadU64());
  if (num_sessions != 0 && num_sessions != completed) {
    return Status::ParseError("checkpoint session-stats count mismatch");
  }
  run->session_stats.clear();
  run->session_stats.reserve(num_sessions);
  for (uint64_t i = 0; i < num_sessions; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(core::SessionBuildStats stats,
                             core::DecodeSessionBuildStats(&sessions_cursor));
    run->session_stats.push_back(stats);
  }
  LOGMINE_RETURN_IF_ERROR(sessions_cursor.ExpectEnd());

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor tracker_cursor,
                           reader.Section("tracker"));
  LOGMINE_ASSIGN_OR_RETURN(run->tracker,
                           core::DecodeModelTracker(&tracker_cursor));
  LOGMINE_RETURN_IF_ERROR(tracker_cursor.ExpectEnd());
  if (run->tracker.num_observations() != static_cast<int64_t>(completed)) {
    return Status::ParseError("checkpoint tracker observation mismatch");
  }

  *days_completed = static_cast<int>(completed);
  return Status::OK();
}

/// Scans the checkpoint directory newest-first for a generation this
/// run can resume from. OK with days_loaded == 0 means "start fresh".
Status LoadNewestValid(const ResumableOptions& options, Technique technique,
                       uint64_t state_hash, int num_days,
                       ResumableDailyResult* run) {
  obs::ObsContext* ctx = obs::Effective(options.obs);
  for (const auto& [generation, path] :
       ListGenerations(options.checkpoint.dir)) {
    std::string bytes;
    const int64_t read_start_ns =
        ctx != nullptr ? obs::MonotonicNowNs() : 0;
    const Status read = RetryWithBackoff(
        options.checkpoint.retry, "read:" + path, [&] {
          auto bytes_or = ReadFileToString(path);
          if (!bytes_or.ok()) return bytes_or.status();
          bytes = std::move(bytes_or).value();
          return Status::OK();
        });
    if (!read.ok()) {
      // Vanished (pruned by a racing writer) or persistently unreadable:
      // either way this generation cannot help; fall back.
      obs::Count(ctx, obs::Metric::kCheckpointGenerationsDiscarded);
      ++run->resume.generations_discarded;
      continue;
    }
    obs::Count(ctx, obs::Metric::kCheckpointSnapshotsRead);
    obs::Count(ctx, obs::Metric::kCheckpointBytesRead,
               static_cast<int64_t>(bytes.size()));
    if (ctx != nullptr) {
      obs::Observe(ctx, obs::Metric::kCheckpointReadNs,
                   obs::MonotonicNowNs() - read_start_ns);
    }
    ResumableDailyResult candidate;
    candidate.tracker = core::ModelTracker(options.tracker);
    int days_completed = 0;
    const Status decoded = DecodeCheckpoint(bytes, technique, state_hash,
                                            num_days, &candidate,
                                            &days_completed);
    if (decoded.code() == StatusCode::kFailedPrecondition) {
      return decoded;  // config/dataset mismatch: refuse, do not fall back
    }
    if (!decoded.ok()) {
      obs::Count(ctx, obs::Metric::kCheckpointGenerationsDiscarded);
      ++run->resume.generations_discarded;
      continue;
    }
    candidate.resume = run->resume;
    candidate.resume.days_loaded = days_completed;
    candidate.resume.resumed_from = path;
    *run = std::move(candidate);
    return Status::OK();
  }
  return Status::OK();
}

template <typename DayFn>
Result<ResumableDailyResult> RunResumable(const Dataset& dataset,
                                          Technique technique,
                                          uint64_t config_fingerprint,
                                          const ResumableOptions& options,
                                          const DayFn& day_fn) {
  using sim::CrashInjector;
  using sim::KillPoint;
  const int num_days = dataset.num_days();
  const uint64_t state_hash =
      CheckpointStateHash(config_fingerprint, dataset, options.tracker);
  const bool checkpointing = !options.checkpoint.dir.empty();

  ResumableDailyResult run;
  run.tracker = core::ModelTracker(options.tracker);
  if (checkpointing) {
    std::error_code ec;
    fs::create_directories(options.checkpoint.dir, ec);
    if (ec) {
      return Status::Internal("cannot create checkpoint dir " +
                              options.checkpoint.dir + ": " + ec.message());
    }
    LOGMINE_RETURN_IF_ERROR(
        LoadNewestValid(options, technique, state_hash, num_days, &run));
  }

  // Journal the resume decision and every day/checkpoint boundary: the
  // crash-recovery property means the journal (flushed per line) is the
  // record of how far a killed run actually got.
  obs::ObsContext* ctx = obs::Effective(options.obs);
  std::string span;
  if (ctx != nullptr) {
    span = ctx->journal().BeginRootSpan("resume");
    ctx->journal().Emit(
        span, "resume_start",
        {obs::JournalField::Str("technique", TechniqueName(technique)),
         obs::JournalField::Num("days_loaded", run.resume.days_loaded),
         obs::JournalField::Num("generations_discarded",
                                run.resume.generations_discarded),
         obs::JournalField::Str("resumed_from", run.resume.resumed_from)});
  }

  const auto start = std::chrono::steady_clock::now();
  for (int day = run.resume.days_loaded; day < num_days; ++day) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled(
          std::string(TechniqueName(technique)) + " sweep cancelled after " +
          std::to_string(day) + " of " + std::to_string(num_days) + " days");
    }
    if (options.deadline_ms != 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (options.deadline_ms < 0 || elapsed >= options.deadline_ms) {
        return Status::DeadlineExceeded(
            std::string(TechniqueName(technique)) +
            " sweep deadline expired after " + std::to_string(day) + " of " +
            std::to_string(num_days) + " days");
      }
    }

    auto outcome = day_fn(day);
    if (!outcome.ok()) return outcome.status();
    DayOutcome& value = outcome.value();
    run.tracker.Observe(value.model);
    if (technique == Technique::kL2) {
      run.session_stats.push_back(value.session_stats);
    }
    run.result.series.day_labels.push_back(std::move(value.label));
    run.result.series.days.push_back(value.counts);
    run.result.daily_models.push_back(std::move(value.model));
    ++run.resume.days_mined;
    if (ctx != nullptr) {
      ctx->journal().Emit(span + "/day" + std::to_string(day), "day_mined");
    }

    if (options.crash != nullptr &&
        options.crash->ShouldKill(KillPoint::kAfterDayMined, day)) {
      return CrashInjector::KilledStatus(KillPoint::kAfterDayMined, day);
    }
    if (checkpointing) {
      const std::string bytes =
          CheckpointBytes(technique, state_hash, num_days, run);
      const int generation = day + 1;
      const std::string path =
          GenerationPath(options.checkpoint.dir, generation);
      if (options.crash != nullptr &&
          options.crash->ShouldKill(KillPoint::kMidSnapshotWrite, day)) {
        WriteTornSnapshot(path, bytes);
        return CrashInjector::KilledStatus(KillPoint::kMidSnapshotWrite, day);
      }
      LOGMINE_RETURN_IF_ERROR(RetryWithBackoff(
          options.checkpoint.retry, "write:" + path,
          [&] { return WriteSnapshotFile(path, bytes); }));
      ++run.resume.snapshots_written;
      if (ctx != nullptr) {
        ctx->journal().Emit(
            span + "/day" + std::to_string(day), "checkpoint_written",
            {obs::JournalField::Num("generation", generation),
             obs::JournalField::Num("bytes",
                                    static_cast<int64_t>(bytes.size()))});
      }
      PruneGenerations(options.checkpoint.dir, generation,
                       options.checkpoint.keep_generations);
    }
    if (options.crash != nullptr &&
        options.crash->ShouldKill(KillPoint::kAfterCheckpoint, day)) {
      return CrashInjector::KilledStatus(KillPoint::kAfterCheckpoint, day);
    }
  }
  if (options.obs != nullptr) {
    run.metrics = options.obs->metrics().Snapshot();
  }
  return run;
}

}  // namespace

std::string_view TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kL1:
      return "l1";
    case Technique::kL2:
      return "l2";
    case Technique::kL3:
      return "l3";
  }
  return "unknown";
}

uint64_t CheckpointStateHash(uint64_t config_fingerprint,
                             const Dataset& dataset,
                             const core::ModelTrackerConfig& tracker) {
  core::Fingerprinter fp;
  fp.MixU64(config_fingerprint);
  fp.MixU64(dataset.simulation.seed);
  fp.MixI64(dataset.simulation.num_days);
  fp.MixDouble(dataset.simulation.scale);
  fp.MixI64(dataset.simulation.start);
  fp.MixU64(dataset.store.size());
  fp.MixI64(dataset.universe_pairs);
  fp.MixI64(dataset.universe_services);
  fp.MixU64(dataset.reference_pairs.size());
  fp.MixU64(dataset.reference_services.size());
  fp.MixI64(tracker.confirm_after);
  fp.MixI64(tracker.stale_after);
  fp.MixI64(tracker.retire_after);
  return fp.digest();
}

std::string CheckpointBytes(Technique technique, uint64_t state_hash,
                            int num_days, const ResumableDailyResult& run) {
  SnapshotWriter w;
  w.BeginSection("meta");
  w.PutU32(static_cast<uint32_t>(technique));
  w.PutU64(state_hash);
  w.PutU32(static_cast<uint32_t>(num_days));
  w.PutU32(static_cast<uint32_t>(run.result.series.days.size()));
  w.EndSection();

  w.BeginSection("series");
  core::EncodeDailySeries(run.result.series, &w);
  w.EndSection();

  w.BeginSection("models");
  w.PutU64(run.result.daily_models.size());
  for (const core::DependencyModel& model : run.result.daily_models) {
    core::EncodeDependencyModel(model, &w);
  }
  w.EndSection();

  w.BeginSection("sessions");
  w.PutU64(run.session_stats.size());
  for (const core::SessionBuildStats& stats : run.session_stats) {
    core::EncodeSessionBuildStats(stats, &w);
  }
  w.EndSection();

  w.BeginSection("tracker");
  core::EncodeModelTracker(run.tracker, &w);
  w.EndSection();
  return std::move(w).Finish();
}

Result<ResumableDailyResult> RunL1DailyResumable(
    const Dataset& dataset, const core::L1Config& config,
    const ResumableOptions& options) {
  return RunResumable(
      dataset, Technique::kL1, core::ConfigFingerprint(config), options,
      [&](int day) { return RunL1Day(dataset, config, day); });
}

Result<ResumableDailyResult> RunL2DailyResumable(
    const Dataset& dataset, const core::L2Config& config,
    const ResumableOptions& options) {
  return RunResumable(
      dataset, Technique::kL2, core::ConfigFingerprint(config), options,
      [&](int day) { return RunL2Day(dataset, config, day); });
}

Result<ResumableDailyResult> RunL3DailyResumable(
    const Dataset& dataset, const core::L3Config& config,
    const ResumableOptions& options) {
  return RunResumable(
      dataset, Technique::kL3, core::ConfigFingerprint(config), options,
      [&](int day) { return RunL3Day(dataset, config, day); });
}

Result<SweepResult> RunSweepResumable(const Dataset& dataset,
                                      const SweepConfig& config,
                                      const ResumableOptions& options) {
  using sim::CrashInjector;
  using sim::KillPoint;
  SweepResult out;
  int completed = 0;
  const auto sub_options = [&](std::string_view technique) {
    ResumableOptions sub = options;
    if (!sub.checkpoint.dir.empty()) {
      sub.checkpoint.dir =
          (fs::path(options.checkpoint.dir) / technique).string();
    }
    return sub;
  };
  const auto boundary = [&]() -> Status {
    const int index = completed - 1;
    if (options.crash != nullptr &&
        options.crash->ShouldKill(KillPoint::kBetweenMiners, index)) {
      return CrashInjector::KilledStatus(KillPoint::kBetweenMiners, index);
    }
    return Status::OK();
  };
  if (config.run_l1) {
    auto run = RunL1DailyResumable(dataset, config.l1, sub_options("l1"));
    if (!run.ok()) return run.status();
    out.l1 = std::move(run).value();
    ++completed;
    LOGMINE_RETURN_IF_ERROR(boundary());
  }
  if (config.run_l2) {
    auto run = RunL2DailyResumable(dataset, config.l2, sub_options("l2"));
    if (!run.ok()) return run.status();
    out.l2 = std::move(run).value();
    ++completed;
    LOGMINE_RETURN_IF_ERROR(boundary());
  }
  if (config.run_l3) {
    auto run = RunL3DailyResumable(dataset, config.l3, sub_options("l3"));
    if (!run.ok()) return run.status();
    out.l3 = std::move(run).value();
    ++completed;
  }
  return out;
}

}  // namespace logmine::eval
