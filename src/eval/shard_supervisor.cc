#include "eval/shard_supervisor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/serialization.h"
#include "eval/resumable_runner.h"
#include "util/snapshot.h"

namespace logmine::eval {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

/// The supervisor's default transient class: worker death, a tripped
/// shard deadline, and a corrupt partial model all deserve a re-mine.
bool SupervisorRetryable(StatusCode code) {
  return code == StatusCode::kInternal ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kParseError;
}

/// One shard's lifecycle. All fields are guarded by the supervisor
/// mutex except `cancel`, which is internally synchronized (attempts
/// poll it lock-free).
struct ShardState {
  enum class Phase { kPending, kRunning, kDone, kPoisoned };

  core::ShardId shard;
  Phase phase = Phase::kPending;
  int attempts = 0;  ///< launches performed (RetryWithBackoff attempts)
  int failures = 0;  ///< distinct failed attempts, the breaker's count
  int hedges = 0;    ///< duplicate launches past the straggler bar
  int in_flight = 0;
  Clock::time_point first_launch;
  core::DependencyModel model;  ///< valid once phase == kDone
  std::string last_error;
  /// Cancelled when the shard reaches a terminal phase, so a losing
  /// hedge twin (or a hung attempt) stops cooperatively.
  CancelToken cancel;
};

struct Completion {
  size_t index = 0;  ///< into Supervisor::states
  Status status = Status::OK();
  bool hedged = false;
  core::DependencyModel model;  ///< valid when status.ok()
  int64_t elapsed_ms = 0;       ///< of the winning attempt
};

struct Supervisor {
  ShardGrid grid;
  const ShardMineFn* mine = nullptr;
  const ShardSupervisorConfig* config = nullptr;
  uint64_t state_hash = 0;
  Executor* executor = nullptr;
  std::function<bool(StatusCode)> retryable;

  /// Journal root span of this sweep ("sweep-<n>"); empty without obs.
  std::string span;

  std::mutex mu;
  std::condition_variable cv;
  /// deque: ShardState holds an atomic (the cancel token) and is
  /// neither movable nor copyable; a deque can still grow in place.
  std::deque<ShardState> states;
  std::deque<Completion> completions;
  std::vector<std::future<void>> futures;
  std::vector<int64_t> latencies_ms;  ///< successful shard durations
  ShardedSweepStats stats;
  int remaining = 0;  ///< shards not yet terminal
  int in_flight_total = 0;
};

/// Journal span of one shard cell under the sweep's root span.
std::string ShardSpan(const Supervisor& sup, const ShardState& state) {
  return sup.span + "/d" + std::to_string(state.shard.day) + ".r" +
         std::to_string(state.shard.range_index);
}

/// Appends one event to the sweep's journal; no-op without obs. The
/// journal has its own (independent) mutex, so emitting while holding
/// the supervisor mutex cannot invert a lock order.
void JournalEmit(const Supervisor& sup, std::string_view span,
                 std::string_view event,
                 std::vector<obs::JournalField> fields = {}) {
  if (sup.config->obs != nullptr) {
    sup.config->obs->journal().Emit(span, event, fields);
  }
}

/// Marks a shard terminal. Caller holds the mutex.
void FinishLocked(Supervisor* sup, ShardState* state,
                  ShardState::Phase terminal) {
  state->phase = terminal;
  state->cancel.Cancel();
  --sup->remaining;
  if (terminal == ShardState::Phase::kDone) {
    ++sup->stats.shards_completed;
    obs::Count(sup->config->obs, obs::Metric::kShardsCompleted);
    JournalEmit(*sup, ShardSpan(*sup, *state), "shard_done",
                {obs::JournalField::Num("attempts", state->attempts),
                 obs::JournalField::Num("failures", state->failures),
                 obs::JournalField::Num("hedges", state->hedges)});
  } else {
    ++sup->stats.shards_poisoned;
    obs::Count(sup->config->obs, obs::Metric::kShardsPoisoned);
    JournalEmit(*sup, ShardSpan(*sup, *state), "shard_poisoned",
                {obs::JournalField::Num("attempts", state->attempts),
                 obs::JournalField::Num("failures", state->failures),
                 obs::JournalField::Str("last_error", state->last_error)});
  }
  sup->cv.notify_all();
}

/// Waits cooperatively: wakes every millisecond to poll the shard's
/// cancel token and the attempt deadline. Returns OK after `wait_ms`
/// uninterrupted milliseconds.
Status CooperativeWait(const ShardState& state, Clock::time_point start,
                       int64_t deadline_ms, int64_t wait_ms) {
  const Clock::time_point until =
      Clock::now() + std::chrono::milliseconds(wait_ms);
  while (Clock::now() < until) {
    if (state.cancel.cancelled()) {
      return Status::Cancelled("shard attempt cancelled mid-wait");
    }
    if (deadline_ms > 0 && ElapsedMs(start) > deadline_ms) {
      return Status::DeadlineExceeded("shard deadline tripped mid-wait");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

/// One attempt of one shard: chaos injection, the mine itself, then the
/// serialize → (maybe corrupt) → parse validation round-trip every
/// surviving model must pass before it may merge. On success stores the
/// validated model into *out_model.
Status AttemptShard(Supervisor* sup, ShardState* state, bool hedged,
                    core::DependencyModel* out_model) {
  const ShardSupervisorConfig& config = *sup->config;
  int attempt_no = 0;
  {
    std::lock_guard<std::mutex> lock(sup->mu);
    // Terminal shard: a retry loop or hedge twin that outlived the
    // decision. Cancelled is outside every retryable class, so the
    // enclosing RetryWithBackoff stops immediately.
    if (state->phase != ShardState::Phase::kRunning) {
      return Status::Cancelled("shard already settled");
    }
    attempt_no = ++state->attempts;
    ++sup->stats.attempts;
  }
  obs::Count(config.obs, obs::Metric::kShardAttempts);
  const Clock::time_point start = Clock::now();
  LOGMINE_SPAN(config.obs, "sweep/shard_attempt");
  // Per-attempt journal span: "<sweep>/d<day>.r<range>/a<attempt>".
  const std::string attempt_span =
      ShardSpan(*sup, *state) + "/a" + std::to_string(attempt_no);
  JournalEmit(*sup, attempt_span, "shard_attempt",
              {obs::JournalField::Flag("hedged", hedged)});

  auto fail = [&](Status status) {
    bool tripped = false;
    {
      std::lock_guard<std::mutex> lock(sup->mu);
      ++state->failures;
      ++sup->stats.failures;
      state->last_error = std::string(status.message());
      // Circuit breaker: too many distinct failures quarantines the
      // shard for good — no retry loop will relaunch it (the entry
      // check above sees kPoisoned and bails).
      if (state->failures >= config.breaker_threshold &&
          state->phase == ShardState::Phase::kRunning) {
        ++sup->stats.breaker_trips;
        tripped = true;
        JournalEmit(*sup, ShardSpan(*sup, *state), "breaker_trip",
                    {obs::JournalField::Num("failures", state->failures)});
        FinishLocked(sup, state, ShardState::Phase::kPoisoned);
      }
    }
    obs::Count(config.obs, obs::Metric::kShardFailures);
    if (tripped) obs::Count(config.obs, obs::Metric::kShardBreakerTrips);
    JournalEmit(*sup, attempt_span, "shard_attempt_failed",
                {obs::JournalField::Str("code", StatusCodeName(status.code())),
                 obs::JournalField::Str("error", status.message())});
    return status;
  };

  // Chaos: the injector decides how this attempt misbehaves.
  sim::ShardFault fault = sim::ShardFault::kNone;
  int64_t fault_slow_ms = 0;
  if (config.faults != nullptr) {
    fault = config.faults->OnAttempt(state->shard.day,
                                     state->shard.range_index, attempt_no);
    if (const sim::ShardFaultSpec* spec = config.faults->SpecFor(
            state->shard.day, state->shard.range_index)) {
      fault_slow_ms = spec->slow_ms;
    }
  }
  switch (fault) {
    case sim::ShardFault::kFailTransient:
      return fail(Status::Internal("injected transient fault (attempt " +
                                   std::to_string(attempt_no) + ")"));
    case sim::ShardFault::kHang: {
      // Never finishes on its own: wait until the deadline (or the
      // supervisor's cancel) trips. Without a deadline the hang is
      // bounded by slow_ms so a misconfigured test cannot wedge.
      const int64_t bound = config.shard_deadline_ms > 0
                                ? config.shard_deadline_ms + 1
                                : std::max<int64_t>(fault_slow_ms, 1);
      const Status waited = CooperativeWait(*state, start,
                                            config.shard_deadline_ms, bound);
      if (!waited.ok() && waited.code() == StatusCode::kCancelled) {
        return waited;  // the shard settled elsewhere; not a failure
      }
      return fail(Status::DeadlineExceeded(
          "injected hang outlived the shard deadline (attempt " +
          std::to_string(attempt_no) + ")"));
    }
    case sim::ShardFault::kSlow: {
      const Status waited = CooperativeWait(*state, start,
                                            config.shard_deadline_ms,
                                            std::max<int64_t>(fault_slow_ms, 1));
      if (!waited.ok()) {
        if (waited.code() == StatusCode::kCancelled) return waited;
        return fail(std::move(waited));
      }
      break;  // then mine normally — slow, not wrong
    }
    case sim::ShardFault::kNone:
    case sim::ShardFault::kCorruptModel:
      break;
  }

  ShardContext context;
  context.cancel = &state->cancel;
  context.deadline_ms = config.shard_deadline_ms;
  context.attempt = attempt_no;
  context.hedged = hedged;
  Result<core::DependencyModel> mined = (*sup->mine)(state->shard, context);
  obs::Observe(config.obs, obs::Metric::kShardAttemptNs, ElapsedNs(start));
  if (!mined.ok()) {
    if (mined.status().code() == StatusCode::kCancelled) {
      return mined.status();  // settled elsewhere; not a failure
    }
    return fail(mined.status());
  }

  // Every surviving model goes through the serialized form — the same
  // bytes a worker process would ship — and must parse back cleanly.
  // This is where a corrupt partial is caught (ParseError, retryable:
  // the model itself is fine, only this copy of it is not).
  core::PartialModel part;
  part.shard = state->shard;
  part.num_days = sup->grid.num_days;
  part.num_ranges = sup->grid.num_ranges;
  part.state_hash = sup->state_hash;
  part.model = std::move(mined).value();
  std::string bytes = core::PartialModelBytes(part);
  if (fault == sim::ShardFault::kCorruptModel) {
    bytes[bytes.size() / 2] ^= 0x5A;  // deterministic torn-write stand-in
  }
  Result<core::PartialModel> parsed =
      core::ParsePartialModelBytes(std::move(bytes));
  if (!parsed.ok()) return fail(parsed.status());

  if (!config.partial_dir.empty()) {
    // Persistence keeps the strict kInternal-only retry class: a parse
    // or deadline failure of the *write* path is not transient I/O.
    RetryPolicy io_policy = config.retry;
    io_policy.retryable = nullptr;
    const std::string path =
        config.partial_dir + "/partial-d" + std::to_string(state->shard.day) +
        "-r" + std::to_string(state->shard.range_index) + ".snap";
    const std::string persist_bytes = core::PartialModelBytes(parsed.value());
    const Status written = RetryWithBackoff(
        io_policy, "shard-partial-write",
        [&] { return WriteSnapshotFile(path, persist_bytes); });
    if (!written.ok()) return fail(written);
  }

  *out_model = std::move(parsed).value().model;
  return Status::OK();
}

void Launch(Supervisor* sup, size_t index, bool hedged);

/// The body of one submission: a full RetryWithBackoff run over
/// AttemptShard, then one Completion for the supervisor loop.
void RunSubmission(Supervisor* sup, size_t index, bool hedged) {
  ShardState* state = &sup->states[index];
  const std::string op_name =
      "shard-d" + std::to_string(state->shard.day) + "-r" +
      std::to_string(state->shard.range_index) + (hedged ? "-hedge" : "");
  RetryPolicy policy = sup->config->retry;
  if (!policy.retryable) policy.retryable = sup->retryable;

  const Clock::time_point start = Clock::now();
  core::DependencyModel model;
  const Status final = RetryWithBackoff(
      policy, op_name, [&] { return AttemptShard(sup, state, hedged, &model); });

  Completion done;
  done.index = index;
  done.status = final;
  done.hedged = hedged;
  done.elapsed_ms = ElapsedMs(start);
  if (final.ok()) done.model = std::move(model);
  {
    std::lock_guard<std::mutex> lock(sup->mu);
    --state->in_flight;
    --sup->in_flight_total;
    sup->completions.push_back(std::move(done));
  }
  sup->cv.notify_all();
}

/// Submits one launch of shard `index`. Caller holds the mutex.
void Launch(Supervisor* sup, size_t index, bool hedged) {
  ShardState* state = &sup->states[index];
  if (state->phase == ShardState::Phase::kPending) {
    state->phase = ShardState::Phase::kRunning;
    state->first_launch = Clock::now();
  }
  ++state->in_flight;
  ++sup->in_flight_total;
  sup->futures.push_back(
      sup->executor->Submit([sup, index, hedged] {
        RunSubmission(sup, index, hedged);
      }));
}

/// Upper estimate of the hedge bar from the completed-shard latencies.
/// Caller holds the mutex.
int64_t HedgeBarMsLocked(const Supervisor& sup) {
  const ShardSupervisorConfig& config = *sup.config;
  std::vector<int64_t> sorted = sup.latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double q = std::clamp(config.hedge_quantile, 0.0, 1.0);
  const size_t at = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  const double bar =
      config.hedge_factor * static_cast<double>(sorted[at]);
  return std::max<int64_t>(config.hedge_min_ms, static_cast<int64_t>(bar));
}

/// Handles one finished submission. Caller holds the mutex.
void ProcessCompletionLocked(Supervisor* sup, Completion* done) {
  const ShardSupervisorConfig& config = *sup->config;
  ShardState* state = &sup->states[done->index];
  if (done->status.ok()) {
    if (state->phase == ShardState::Phase::kRunning) {
      state->model = std::move(done->model);
      sup->latencies_ms.push_back(done->elapsed_ms);
      if (done->hedged) {
        ++sup->stats.hedges_won;
        obs::Count(config.obs, obs::Metric::kShardHedgesWon);
      }
      FinishLocked(sup, state, ShardState::Phase::kDone);
    }
    // Else: the losing twin of a hedge also succeeded — identical model
    // (attempts are pure in the shard id), nothing to do.
    return;
  }
  if (state->phase != ShardState::Phase::kRunning) return;
  // A whole backoff run gave up. Retryable class with breaker headroom:
  // go around again (a fresh submission, so the backoff schedule
  // restarts — deliberately; the shard already waited out a full
  // schedule). Anything else — a non-retryable status, e.g.
  // InvalidArgument from the mine itself — poisons immediately: it
  // would fail identically forever.
  const bool retryable = config.retry.retryable
                             ? config.retry.retryable(done->status.code())
                             : sup->retryable(done->status.code());
  if (retryable && state->failures < config.breaker_threshold) {
    ++sup->stats.retries;
    obs::Count(config.obs, obs::Metric::kShardRetries);
    JournalEmit(*sup, ShardSpan(*sup, *state), "shard_retry",
                {obs::JournalField::Num("failures", state->failures),
                 obs::JournalField::Str("error", done->status.message())});
    Launch(sup, done->index, /*hedged=*/false);
    return;
  }
  // Non-retryable: quarantine without burning the remaining breaker
  // budget — this would fail identically forever. (Threshold trips are
  // counted in AttemptShard, where the breaker lives.)
  state->last_error = done->status.message();
  FinishLocked(sup, state, ShardState::Phase::kPoisoned);
}

/// Launches hedge twins for stragglers. Caller holds the mutex.
void MaybeHedgeLocked(Supervisor* sup) {
  const ShardSupervisorConfig& config = *sup->config;
  if (config.max_hedges_per_shard <= 0) return;
  if (sup->latencies_ms.empty() ||
      static_cast<int>(sup->latencies_ms.size()) <
          config.min_hedge_completions) {
    return;
  }
  const int64_t bar = HedgeBarMsLocked(*sup);
  for (size_t i = 0; i < sup->states.size(); ++i) {
    ShardState& state = sup->states[i];
    if (state.phase != ShardState::Phase::kRunning) continue;
    if (state.in_flight == 0) continue;  // between retry rounds
    if (state.hedges >= config.max_hedges_per_shard) continue;
    if (ElapsedMs(state.first_launch) <= bar) continue;
    ++state.hedges;
    ++sup->stats.hedges_launched;
    obs::Count(config.obs, obs::Metric::kShardHedgesLaunched);
    JournalEmit(*sup, ShardSpan(*sup, state), "shard_hedged",
                {obs::JournalField::Num("bar_ms", bar),
                 obs::JournalField::Num("running_ms",
                                        ElapsedMs(state.first_launch))});
    Launch(sup, i, /*hedged=*/true);
  }
}

}  // namespace

std::string_view SweepOutcomeName(SweepOutcome outcome) {
  switch (outcome) {
    case SweepOutcome::kComplete:
      return "complete";
    case SweepOutcome::kDegraded:
      return "degraded";
    case SweepOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<ShardedSweepResult> RunShardedSweep(
    const ShardGrid& grid, const ShardMineFn& mine,
    const ShardSupervisorConfig& config, uint64_t state_hash) {
  if (grid.num_days < 1 || grid.num_ranges < 1) {
    return Status::InvalidArgument(
        "shard grid must be at least 1x1, got " +
        std::to_string(grid.num_days) + "x" + std::to_string(grid.num_ranges));
  }
  if (!mine) return Status::InvalidArgument("null shard mine function");
  if (config.breaker_threshold < 1) {
    return Status::InvalidArgument("breaker_threshold must be >= 1");
  }
  LOGMINE_SPAN(config.obs, "sweep/run");
  obs::ResourceProbe::ScopedStage sweep_stage(
      config.obs != nullptr ? &config.obs->probe() : nullptr, "eval/sweep");

  Supervisor sup;
  sup.grid = grid;
  sup.mine = &mine;
  sup.config = &config;
  sup.state_hash = state_hash;
  if (config.obs != nullptr) {
    sup.span = config.obs->journal().BeginRootSpan("sweep");
    JournalEmit(sup, sup.span, "sweep_start",
                {obs::JournalField::Num("num_days", grid.num_days),
                 obs::JournalField::Num("num_ranges", grid.num_ranges),
                 obs::JournalField::Num(
                     "state_hash", static_cast<int64_t>(state_hash))});
  }
  sup.executor =
      config.executor != nullptr ? config.executor : &Executor::Shared();
  sup.retryable = SupervisorRetryable;
  for (int day = 0; day < grid.num_days; ++day) {
    for (int range = 0; range < grid.num_ranges; ++range) {
      sup.states.emplace_back().shard = {day, range};
    }
  }
  sup.remaining = grid.cells();

  {
    std::unique_lock<std::mutex> lock(sup.mu);
    size_t next = 0;
    while (sup.remaining > 0) {
      // First launches, throttled by max_in_flight (retries and hedges
      // are not throttled: they replace capacity a failure released).
      while (next < sup.states.size() &&
             (config.max_in_flight <= 0 ||
              sup.in_flight_total < config.max_in_flight)) {
        Launch(&sup, next++, /*hedged=*/false);
      }
      sup.cv.wait_for(
          lock, std::chrono::milliseconds(std::max<int64_t>(config.poll_ms, 1)),
          [&] { return !sup.completions.empty() || sup.remaining == 0; });
      while (!sup.completions.empty()) {
        Completion done = std::move(sup.completions.front());
        sup.completions.pop_front();
        ProcessCompletionLocked(&sup, &done);
      }
      MaybeHedgeLocked(&sup);
    }
  }
  // Every shard is terminal, so no new submissions can appear — but
  // losing hedge twins and cancelled retry loops may still be running,
  // and they touch this stack frame. Drain them all before returning.
  for (size_t i = 0;; ++i) {
    std::future<void> pending;
    {
      std::lock_guard<std::mutex> lock(sup.mu);
      if (i >= sup.futures.size()) break;
      pending = std::move(sup.futures[i]);
    }
    pending.wait();
  }

  ShardedSweepResult result;
  result.state_hash = state_hash;
  std::vector<core::PartialModel> parts;
  for (ShardState& state : sup.states) {
    ShardReport report;
    report.shard = state.shard;
    report.covered = state.phase == ShardState::Phase::kDone;
    report.poisoned = state.phase == ShardState::Phase::kPoisoned;
    report.attempts = state.attempts;
    report.failures = state.failures;
    report.hedges = state.hedges;
    report.last_error = state.last_error;
    result.shards.push_back(std::move(report));
    if (state.phase != ShardState::Phase::kDone) continue;
    core::PartialModel part;
    part.shard = state.shard;
    part.num_days = grid.num_days;
    part.num_ranges = grid.num_ranges;
    part.state_hash = state_hash;
    part.model = std::move(state.model);
    parts.push_back(std::move(part));
  }
  result.stats = sup.stats;

  if (parts.empty()) {
    JournalEmit(sup, sup.span, "sweep_end",
                {obs::JournalField::Str("outcome", "failed"),
                 obs::JournalField::Num("shards_poisoned",
                                        sup.stats.shards_poisoned)});
    if (config.obs != nullptr) {
      // Best-effort: the sweep's failure status stands regardless of
      // whether the bundle made it to disk.
      (void)obs::CapturePostmortem(config.postmortem, config.obs,
                                   "sweep_failed", sup.span, state_hash);
    }
    return Status::Internal(
        "sharded sweep failed: all " + std::to_string(grid.cells()) +
        " shards poisoned (last error: " +
        (sup.states.empty() ? std::string()
                            : sup.states.front().last_error) +
        ")");
  }
  LOGMINE_ASSIGN_OR_RETURN(
      result.merged,
      core::MergePartialModels(grid.num_days, grid.num_ranges, parts));
  result.outcome = result.merged.coverage.complete() ? SweepOutcome::kComplete
                                                     : SweepOutcome::kDegraded;
  if (config.obs != nullptr) {
    config.obs->metrics().Add(
        obs::Metric::kSweepCoveragePermille,
        static_cast<int64_t>(result.merged.coverage.fraction() * 1000.0));
    JournalEmit(
        sup, sup.span, "sweep_end",
        {obs::JournalField::Str("outcome", SweepOutcomeName(result.outcome)),
         obs::JournalField::Num("shards_completed",
                                sup.stats.shards_completed),
         obs::JournalField::Num("shards_poisoned", sup.stats.shards_poisoned),
         obs::JournalField::Num(
             "coverage_permille",
             static_cast<int64_t>(result.merged.coverage.fraction() *
                                  1000.0))});
    if (result.outcome == SweepOutcome::kDegraded) {
      (void)obs::CapturePostmortem(config.postmortem, config.obs,
                                   "sweep_degraded", sup.span, state_hash);
    }
  }
  return result;
}

ShardMineFn MakeL1ShardMiner(const Dataset& dataset,
                             const core::L1Config& config, int num_ranges) {
  return [&dataset, config, num_ranges](
             core::ShardId shard,
             const ShardContext& context) -> Result<core::DependencyModel> {
    if (context.cancel != nullptr && context.cancel->cancelled()) {
      return Status::Cancelled("shard cancelled before mining");
    }
    if (shard.day < 0 || shard.day >= dataset.num_days()) {
      return Status::InvalidArgument("shard day " + std::to_string(shard.day) +
                                     " outside the dataset");
    }
    core::L1ActivityMiner miner(config);
    LOGMINE_ASSIGN_OR_RETURN(
        core::L1Result result,
        miner.Mine(dataset.store, dataset.day_begin(shard.day),
                   dataset.day_end(shard.day),
                   core::PairRange{static_cast<uint32_t>(shard.range_index),
                                   static_cast<uint32_t>(num_ranges)}));
    return result.Dependencies(dataset.store);
  };
}

uint64_t L1SweepStateHash(const Dataset& dataset, const core::L1Config& config,
                          int num_ranges) {
  uint64_t hash = CheckpointStateHash(core::ConfigFingerprint(config), dataset,
                                      core::ModelTrackerConfig{});
  // Mix in the grid: partials sliced differently must not merge.
  hash ^= 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(num_ranges) +
          (hash << 6) + (hash >> 2);
  return hash;
}

Result<ShardedSweepResult> RunL1ShardedSweep(
    const Dataset& dataset, const core::L1Config& config,
    const ShardSupervisorConfig& supervisor) {
  const ShardGrid grid{dataset.num_days(), std::max(supervisor.num_ranges, 1)};
  return RunShardedSweep(
      grid, MakeL1ShardMiner(dataset, config, grid.num_ranges), supervisor,
      L1SweepStateHash(dataset, config, grid.num_ranges));
}

}  // namespace logmine::eval
