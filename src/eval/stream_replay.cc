#include "eval/stream_replay.h"

#include <utility>
#include <vector>

namespace logmine::eval {

Result<StreamReplayReport> ReplayDatasetStream(
    const Dataset& dataset, serve::StreamingMiningService* service,
    const StreamReplayOptions& options) {
  const int day_end =
      options.day_end < 0 ? dataset.num_days() : options.day_end;
  if (options.day_begin < 0 || day_end > dataset.num_days() ||
      options.day_begin > day_end) {
    return Status::InvalidArgument("day range outside the dataset");
  }
  StreamReplayReport report;
  const TimeMs epoch_length = service->config().window.epoch_length;
  for (int day = options.day_begin; day < day_end; ++day) {
    LOGMINE_ASSIGN_OR_RETURN(
        std::vector<serve::EpochBatch> batches,
        serve::SplitIntoEpochBatches(dataset.store, dataset.day_begin(day),
                                     dataset.day_end(day), epoch_length));
    for (serve::EpochBatch& batch : batches) {
      const serve::SubmitResult submitted =
          service->SubmitBatch(std::move(batch));
      ++report.batches_fed;
      switch (submitted.outcome) {
        case serve::SubmitOutcome::kAccepted:
          ++report.accepted;
          break;
        case serve::SubmitOutcome::kAcceptedShedOldest:
          ++report.accepted;
          ++report.shed;
          break;
        case serve::SubmitOutcome::kRejectedClockRegression:
          ++report.rejected;
          break;
      }
      if (options.drain_each_batch) {
        LOGMINE_ASSIGN_OR_RETURN(const int processed, service->Drain());
        report.processed += processed;
      }
    }
  }
  LOGMINE_ASSIGN_OR_RETURN(const int processed, service->Drain());
  report.processed += processed;
  report.final_health = service->Health();
  return report;
}

}  // namespace logmine::eval
