#ifndef LOGMINE_EVAL_STREAM_REPLAY_H_
#define LOGMINE_EVAL_STREAM_REPLAY_H_

#include <cstdint>

#include "eval/dataset.h"
#include "serve/streaming_service.h"
#include "util/result.h"

namespace logmine::eval {

struct StreamReplayOptions {
  /// Day range of the dataset to feed, [day_begin, day_end); -1 = all
  /// remaining days.
  int day_begin = 0;
  int day_end = -1;
  /// When true (default), the service is stepped until idle after each
  /// submission — the "keeping up" regime; when false, batches are
  /// submitted back-to-back and only drained at the end, so a small
  /// queue bound exercises load shedding.
  bool drain_each_batch = true;
};

struct StreamReplayReport {
  int64_t batches_fed = 0;
  int64_t accepted = 0;
  int64_t shed = 0;       ///< submissions that shed an older batch
  int64_t rejected = 0;   ///< clock regressions
  int64_t processed = 0;  ///< batches the service actually worked through
  serve::HealthReport final_health;
};

/// Replays a simulated dataset through a streaming service as the epoch
/// stream a production deployment would see: the corpus split on the
/// service's epoch grid, submitted hour by hour in time order. The
/// service keeps its own state — replaying additional day ranges onto
/// the same service continues its window.
Result<StreamReplayReport> ReplayDatasetStream(
    const Dataset& dataset, serve::StreamingMiningService* service,
    const StreamReplayOptions& options = {});

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_STREAM_REPLAY_H_
