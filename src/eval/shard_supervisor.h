#ifndef LOGMINE_EVAL_SHARD_SUPERVISOR_H_
#define LOGMINE_EVAL_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/l1_activity_miner.h"
#include "core/partial_model.h"
#include "eval/dataset.h"
#include "obs/obs.h"
#include "obs/postmortem.h"
#include "simulation/crash_injector.h"
#include "util/executor.h"
#include "util/result.h"
#include "util/retry.h"

namespace logmine::eval {

/// The shard axes of a sweep: every (day, pair-range) cell is one
/// independently minable, retryable, mergeable task (DESIGN.md §12).
struct ShardGrid {
  int num_days = 1;
  int num_ranges = 1;
  int cells() const { return num_days * num_ranges; }
};

/// What a shard attempt is handed. Attempts must be *pure* in the shard
/// id — re-running one (retry or hedge) yields the same model — and
/// cooperative about the rest: check `cancel` between units of work and
/// give up with DeadlineExceeded once `deadline_ms` of wall clock is
/// spent (<= 0 = no deadline). `attempt` is 1-based and counts every
/// launch of the shard, hedges included.
struct ShardContext {
  const CancelToken* cancel = nullptr;
  int64_t deadline_ms = 0;
  int attempt = 1;
  bool hedged = false;
};

/// One shard's mining function: the supervisor is generic over what a
/// shard actually computes (the L1 binding below is the first user).
using ShardMineFn =
    std::function<Result<core::DependencyModel>(core::ShardId,
                                                const ShardContext&)>;

/// Knobs of one sharded sweep. The defaults favor the paper-scale
/// workloads: retry transients a couple of times with jittered backoff,
/// hedge stragglers once the latency distribution is known, and give up
/// on a shard only after `breaker_threshold` distinct failures.
struct ShardSupervisorConfig {
  /// Pair-range slices per day (the second shard axis); 1 = per-day
  /// sharding only.
  int num_ranges = 1;
  /// Cooperative per-attempt wall-clock budget, passed to the mine
  /// function via ShardContext; <= 0 = none.
  int64_t shard_deadline_ms = 0;
  /// Backoff schedule between attempts of one shard. When `retryable`
  /// is unset the supervisor installs its own classification —
  /// kInternal (worker death), kDeadlineExceeded (tripped shard
  /// deadline) and kParseError (corrupt partial model) are all worth
  /// re-mining. Partial-model *persistence* always keeps the strict
  /// kInternal-only default regardless of this predicate.
  RetryPolicy retry;
  /// Circuit breaker: after this many distinct failed attempts the
  /// shard is quarantined as poisoned and never launched again.
  int breaker_threshold = 3;
  /// Straggler hedging: once `min_hedge_completions` shards have
  /// completed, a shard still running after
  ///   max(hedge_min_ms, hedge_factor * quantile(latencies, hedge_quantile))
  /// gets up to `max_hedges_per_shard` concurrent duplicate launches;
  /// first completion wins, the twin is cancelled.
  int min_hedge_completions = 3;
  double hedge_quantile = 0.9;
  double hedge_factor = 2.0;
  /// Floor under the hedge bar, so sub-millisecond completions at toy
  /// scale do not make every remaining shard a "straggler".
  int64_t hedge_min_ms = 50;
  int max_hedges_per_shard = 1;
  /// Concurrent first launches (retries and hedges ride on top);
  /// 0 = launch every shard immediately.
  int max_in_flight = 0;
  /// Supervisor wake-up period for hedge checks, in milliseconds.
  int64_t poll_ms = 2;
  /// When non-empty, every surviving partial model is also persisted
  /// here as `partial-d<day>-r<range>.snap` (atomic tmp+rename with
  /// kInternal-only retries).
  std::string partial_dir;
  /// Pool to run shard attempts on; nullptr = Executor::Shared().
  Executor* executor = nullptr;
  /// Observability; nullptr = off (see obs/obs.h). With a context the
  /// sweep also journals every shard boundary (attempt, failure, retry,
  /// hedge, breaker trip, terminal phase) under one "sweep-<n>" root
  /// span of the context's journal.
  obs::ObsContext* obs = nullptr;
  /// Dump-on-failure: a sweep ending degraded or failed captures a
  /// postmortem bundle into `postmortem.dir` (empty = disabled;
  /// requires `obs`). See obs/postmortem.h.
  obs::PostmortemOptions postmortem;
  /// Chaos harness: when non-null, every attempt first consults the
  /// injector and misbehaves accordingly (tests only).
  const sim::ShardFaultInjector* faults = nullptr;
};

/// How complete the sweep's merged model is.
enum class SweepOutcome : uint32_t {
  kComplete = 0,  ///< every cell covered
  kDegraded,      ///< some cells poisoned; merged model is partial
  kFailed,        ///< nothing survived (reported as an error Status)
};

std::string_view SweepOutcomeName(SweepOutcome outcome);

/// Per-shard postmortem.
struct ShardReport {
  core::ShardId shard;
  bool covered = false;
  bool poisoned = false;
  int attempts = 0;
  int failures = 0;
  int hedges = 0;
  std::string last_error;  ///< empty when the shard never failed
};

/// Whole-sweep tallies (mirrored into the shard.* metrics).
struct ShardedSweepStats {
  int64_t attempts = 0;
  int64_t failures = 0;
  int64_t retries = 0;  ///< re-submissions after an exhausted backoff run
  int64_t hedges_launched = 0;
  int64_t hedges_won = 0;
  int64_t breaker_trips = 0;
  int64_t shards_completed = 0;
  int64_t shards_poisoned = 0;
};

struct ShardedSweepResult {
  SweepOutcome outcome = SweepOutcome::kComplete;
  /// Union model + per-day models + exact coverage of what survived.
  core::MergedPartialModel merged;
  /// One report per grid cell, in (day, range) order.
  std::vector<ShardReport> shards;
  ShardedSweepStats stats;
  uint64_t state_hash = 0;
};

/// Runs one sharded sweep: launches every cell of `grid` on the
/// executor, retries retryable failures with jittered backoff, hedges
/// stragglers, quarantines shards that keep failing, and merges the
/// surviving partial models (core/partial_model.h) into one
/// coverage-annotated result.
///
/// Determinism: when every shard eventually succeeds the merged bytes
/// are identical to a fault-free run for any schedule, hedge outcome or
/// retry count — attempts are pure in the shard id and the merge is a
/// set union. When shards are lost the coverage report names exactly
/// the missing cells and the merged model is exactly the union of the
/// survivors.
///
/// Returns OK with outcome kComplete or kDegraded; an error Status when
/// no shard survived (kFailed) or the grid is invalid.
Result<ShardedSweepResult> RunShardedSweep(const ShardGrid& grid,
                                           const ShardMineFn& mine,
                                           const ShardSupervisorConfig& config,
                                           uint64_t state_hash);

/// L1 binding: shard (day, range) mines `dataset`'s day with
/// L1ActivityMiner over PairRange{range, num_ranges}. Pure in the shard
/// id (L1's randomness is keyed by (seed, slot, source)), so the merged
/// sweep model of a fully covered run equals the union of unsliced
/// per-day models.
ShardMineFn MakeL1ShardMiner(const Dataset& dataset,
                             const core::L1Config& config, int num_ranges);

/// Fingerprint binding a sharded L1 sweep's partials together: config ×
/// dataset × grid. Partials of a different config, corpus or slicing
/// refuse to merge.
uint64_t L1SweepStateHash(const Dataset& dataset, const core::L1Config& config,
                          int num_ranges);

/// Convenience wrapper: grid = dataset days × config.num_ranges, L1
/// miner, L1 state hash.
Result<ShardedSweepResult> RunL1ShardedSweep(
    const Dataset& dataset, const core::L1Config& config,
    const ShardSupervisorConfig& supervisor);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_SHARD_SUPERVISOR_H_
