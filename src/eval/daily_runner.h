#ifndef LOGMINE_EVAL_DAILY_RUNNER_H_
#define LOGMINE_EVAL_DAILY_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "stats/order_stats_ci.h"
#include "util/executor.h"
#include "util/result.h"

namespace logmine::eval {

/// Per-day evaluation of one technique over the whole test period — the
/// machinery behind figures 5, 6 and 8: apply the technique to each day
/// independently, compare to the reference model, and quantify accuracy
/// with the 0.984-level order-statistics CI for the median TP ratio.
struct DailyRunResult {
  core::DailySeries series;
  std::vector<core::DependencyModel> daily_models;

  /// Median CI of the per-day TP ratios at `level` (paper: 0.98 requested,
  /// 0.984 achieved with 7 days).
  Result<stats::MedianCi> TpRatioCi(double level) const;

  /// Union of the daily models (the basis of §4.8's error taxonomy).
  core::DependencyModel UnionModel() const;
};

/// Optional controls of a multi-day sweep. Checks run at day
/// granularity (the cooperative unit of the sweep): once `cancel` fires
/// or the wall-clock budget is spent, no further day starts and the
/// sweep returns Cancelled / DeadlineExceeded naming how far it got. A
/// day already mining finishes — no state is ever torn mid-day.
struct DailyRunOptions {
  const CancelToken* cancel = nullptr;
  /// Wall-clock budget in milliseconds, measured from the call; 0 =
  /// none, and a negative budget has already expired when the sweep
  /// starts (matching PipelineConfig::deadline_ms).
  int64_t deadline_ms = 0;
};

/// One day's worth of a technique sweep — the checkpointable unit the
/// resumable runner (eval/resumable_runner.h) persists.
struct DayOutcome {
  std::string label;
  core::ConfusionCounts counts;
  core::DependencyModel model;
  core::SessionBuildStats session_stats;  ///< L2 only; default elsewhere
};

/// Mines a single day with each technique. Pre-condition:
/// 0 <= day < dataset.num_days().
Result<DayOutcome> RunL1Day(const Dataset& dataset,
                            const core::L1Config& config, int day);
Result<DayOutcome> RunL2Day(const Dataset& dataset,
                            const core::L2Config& config, int day);
Result<DayOutcome> RunL3Day(const Dataset& dataset,
                            const core::L3Config& config, int day);

/// Runs L1 per day against the app-pair reference.
Result<DailyRunResult> RunL1Daily(const Dataset& dataset,
                                  const core::L1Config& config,
                                  const DailyRunOptions& options = {});

/// Runs L2 per day; `session_stats` (optional) receives one entry per day.
Result<DailyRunResult> RunL2Daily(
    const Dataset& dataset, const core::L2Config& config,
    std::vector<core::SessionBuildStats>* session_stats,
    const DailyRunOptions& options = {});

/// Runs L3 per day against the app-service reference.
Result<DailyRunResult> RunL3Daily(const Dataset& dataset,
                                  const core::L3Config& config,
                                  const DailyRunOptions& options = {});

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_DAILY_RUNNER_H_
