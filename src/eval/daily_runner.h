#ifndef LOGMINE_EVAL_DAILY_RUNNER_H_
#define LOGMINE_EVAL_DAILY_RUNNER_H_

#include <vector>

#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "stats/order_stats_ci.h"
#include "util/result.h"

namespace logmine::eval {

/// Per-day evaluation of one technique over the whole test period — the
/// machinery behind figures 5, 6 and 8: apply the technique to each day
/// independently, compare to the reference model, and quantify accuracy
/// with the 0.984-level order-statistics CI for the median TP ratio.
struct DailyRunResult {
  core::DailySeries series;
  std::vector<core::DependencyModel> daily_models;

  /// Median CI of the per-day TP ratios at `level` (paper: 0.98 requested,
  /// 0.984 achieved with 7 days).
  Result<stats::MedianCi> TpRatioCi(double level) const;

  /// Union of the daily models (the basis of §4.8's error taxonomy).
  core::DependencyModel UnionModel() const;
};

/// Runs L1 per day against the app-pair reference.
Result<DailyRunResult> RunL1Daily(const Dataset& dataset,
                                  const core::L1Config& config);

/// Runs L2 per day; `session_stats` (optional) receives one entry per day.
Result<DailyRunResult> RunL2Daily(
    const Dataset& dataset, const core::L2Config& config,
    std::vector<core::SessionBuildStats>* session_stats);

/// Runs L3 per day against the app-service reference.
Result<DailyRunResult> RunL3Daily(const Dataset& dataset,
                                  const core::L3Config& config);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_DAILY_RUNNER_H_
