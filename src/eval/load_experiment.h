#ifndef LOGMINE_EVAL_LOAD_EXPERIMENT_H_
#define LOGMINE_EVAL_LOAD_EXPERIMENT_H_

#include <set>
#include <string>
#include <vector>

#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "stats/regression.h"
#include "util/result.h"

namespace logmine::eval {

/// Configuration of the §4.9 load experiment.
struct LoadExperimentConfig {
  LoadExperimentConfig() {
    // One-hour windows hold ~1/24 of a day's sessions; the absolute
    // co-occurrence floor and significance level must relax with the
    // window or low-load hours cannot detect anything at all.
    l1.num_threads = 0;  // parallel hourly windows
    l2.min_cooccurrence = 3;
    l2.min_cooccurrence_per_session = 0.22;
    l2.alpha = 0.01;
  }

  core::L1Config l1;
  core::L2Config l2;
  core::L3Config l3;
  /// Applications excluded from the L3-derived ground truth because they
  /// do not log all invocations (4 at HUG). Defaults to the scenario's
  /// record of the unlogged-edge defect when empty and
  /// `use_scenario_exclusions` is true.
  std::set<std::string> excluded_apps;
  bool use_scenario_exclusions = true;
  double regression_level = 0.95;
  /// Hours with fewer realized dependencies than this are skipped (the
  /// percentage would be meaningless).
  int min_realized = 3;
};

/// One hourly observation.
struct HourPoint {
  TimeMs begin = 0;
  int64_t num_logs = 0;   ///< load measure
  int64_t realized = 0;   ///< L3-identified dependency realizations
  double p1 = 0;          ///< fraction of realizations found by L1
  double p2 = 0;          ///< fraction found by L2
  double fp_ratio1 = 0;   ///< FP share among L1 positives that hour
  double fp_ratio2 = 0;   ///< FP share among L2 positives that hour
};

/// Full §4.9 output: hourly series plus the regressions of p1 and p2 on
/// the (rescaled) log count. The paper's claims: the p1 slope CI is
/// strictly negative; the p2 slope CI includes zero; the FP-ratio slope
/// CIs include zero for both.
struct LoadExperimentResult {
  std::vector<HourPoint> hours;
  stats::LinearFit fit_p1;
  stats::LinearFit fit_p2;
  stats::LinearFit fit_fp1;
  stats::LinearFit fit_fp2;
  double qq_correlation_p1 = 0;  ///< residual normality diagnostic
  double qq_correlation_p2 = 0;
};

/// Runs the load experiment over every hour of the dataset: L3 identifies
/// which dependencies were realized (mapped onto app pairs via the
/// directory ownership), then L1 and L2 are scored on the same hour.
Result<LoadExperimentResult> RunLoadExperiment(
    const Dataset& dataset, const LoadExperimentConfig& config);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_LOAD_EXPERIMENT_H_
