#ifndef LOGMINE_EVAL_TIMEOUT_EXPERIMENT_H_
#define LOGMINE_EVAL_TIMEOUT_EXPERIMENT_H_

#include <vector>

#include "core/evaluation.h"
#include "core/l2_cooccurrence_miner.h"
#include "eval/dataset.h"
#include "util/result.h"

namespace logmine::eval {

/// Statistics of one timeout value versus the infinite timeout (one row
/// of the paper's table 2): per-day differences of the TP ratio and of
/// the absolute TP count, each with a median confidence interval, plus
/// the two-sided Wilcoxon signed-rank p-values.
struct TimeoutRow {
  TimeMs timeout = 0;
  double tpr_diff_median = 0;  ///< median of tpr_to - tpr_inf (per day)
  double tpr_diff_lo = 0;
  double tpr_diff_hi = 0;
  double tp_diff_median = 0;   ///< median of tp_to - tp_inf (per day)
  double tp_diff_lo = 0;
  double tp_diff_hi = 0;
  double wilcoxon_p_tpr = 1;
  double wilcoxon_p_tp = 1;
};

/// Full §4.7 experiment output.
struct TimeoutExperimentResult {
  /// Per-timeout (including infinity as the last element) per-day counts.
  std::vector<TimeMs> timeouts;  ///< 0 encodes infinity
  std::vector<std::vector<core::ConfusionCounts>> daily;  ///< [timeout][day]
  std::vector<TimeoutRow> rows;  ///< one per *finite* timeout
};

/// Runs L2 on every day under each finite timeout and under no timeout,
/// then performs the median tests of table 2 at `ci_level` (paper: 0.98).
/// Sessions are built once per day and re-mined per timeout.
Result<TimeoutExperimentResult> RunTimeoutExperiment(
    const Dataset& dataset, const core::L2Config& base_config,
    const std::vector<TimeMs>& finite_timeouts, double ci_level);

/// Figure 7: positives on a single day across a timeout sweep.
Result<std::vector<core::ConfusionCounts>> RunTimeoutSweepOneDay(
    const Dataset& dataset, const core::L2Config& base_config, int day,
    const std::vector<TimeMs>& timeouts);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_TIMEOUT_EXPERIMENT_H_
