#include "eval/load_experiment.h"

#include <algorithm>

#include "log/filter.h"

namespace logmine::eval {
namespace {

// Maps L3 (app, entry) positives onto unordered app pairs via directory
// ownership, skipping excluded apps, unowned entries and self-pairs.
core::DependencyModel RealizedPairs(
    const Dataset& dataset, const core::DependencyModel& l3_positives,
    const std::set<std::string>& excluded) {
  core::DependencyModel out;
  for (const core::NamePair& dep : l3_positives.pairs()) {
    if (excluded.count(dep.first)) continue;
    auto owner = dataset.entry_owner.find(dep.second);
    if (owner == dataset.entry_owner.end()) continue;
    if (owner->second == dep.first) continue;
    if (excluded.count(owner->second)) continue;
    out.Insert(core::MakeUnorderedPair(dep.first, owner->second));
  }
  return out;
}

double FractionFound(const core::DependencyModel& realized,
                     const core::DependencyModel& found) {
  if (realized.empty()) return 0.0;
  int64_t hit = 0;
  for (const core::NamePair& pair : realized.pairs()) {
    if (found.Contains(pair)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(realized.size());
}

double FpRatio(const core::DependencyModel& positives,
               const core::DependencyModel& reference) {
  if (positives.empty()) return 0.0;
  int64_t fp = 0;
  for (const core::NamePair& pair : positives.pairs()) {
    if (!reference.Contains(pair)) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(positives.size());
}

}  // namespace

Result<LoadExperimentResult> RunLoadExperiment(
    const Dataset& dataset, const LoadExperimentConfig& config) {
  std::set<std::string> excluded = config.excluded_apps;
  if (excluded.empty() && config.use_scenario_exclusions) {
    for (int app : dataset.scenario.defects.apps_with_unlogged_invocations) {
      excluded.insert(
          dataset.scenario.topology.apps[static_cast<size_t>(app)].name);
    }
  }

  core::L1Config l1_config = config.l1;
  l1_config.slot_length = kMillisPerHour;  // a single slot per run
  core::L1ActivityMiner l1(l1_config);
  core::L2CooccurrenceMiner l2(config.l2);
  core::L3TextMiner l3(dataset.vocabulary, config.l3);

  LoadExperimentResult out;
  const int num_hours = dataset.num_days() * 24;
  for (int h = 0; h < num_hours; ++h) {
    const TimeMs begin = dataset.simulation.start + h * kMillisPerHour;
    const TimeMs end = begin + kMillisPerHour;

    auto l3_result = l3.Mine(dataset.store, begin, end);
    if (!l3_result.ok()) return l3_result.status();
    const core::DependencyModel realized = RealizedPairs(
        dataset, l3_result.value().Dependencies(dataset.store,
                                                dataset.vocabulary),
        excluded);

    HourPoint point;
    point.begin = begin;
    point.realized = static_cast<int64_t>(realized.size());
    for (int64_t count : CountsPerSource(dataset.store, begin, end)) {
      point.num_logs += count;
    }
    if (point.realized >= config.min_realized) {
      auto l1_result = l1.Mine(dataset.store, begin, end);
      if (!l1_result.ok()) return l1_result.status();
      const core::DependencyModel found1 =
          l1_result.value().Dependencies(dataset.store);

      auto l2_result = l2.Mine(dataset.store, begin, end);
      if (!l2_result.ok()) return l2_result.status();
      const core::DependencyModel found2 =
          l2_result.value().Dependencies(dataset.store);

      point.p1 = FractionFound(realized, found1);
      point.p2 = FractionFound(realized, found2);
      point.fp_ratio1 = FpRatio(found1, dataset.reference_pairs);
      point.fp_ratio2 = FpRatio(found2, dataset.reference_pairs);
      out.hours.push_back(point);
    }
  }
  if (out.hours.size() < 10) {
    return Status::FailedPrecondition(
        "too few usable hours for the load regression");
  }

  // Rescale the load to [0, 1] as in figure 9.
  int64_t max_logs = 1;
  for (const HourPoint& point : out.hours) {
    max_logs = std::max(max_logs, point.num_logs);
  }
  std::vector<double> load, p1, p2, fp1, fp2;
  for (const HourPoint& point : out.hours) {
    load.push_back(static_cast<double>(point.num_logs) /
                   static_cast<double>(max_logs));
    p1.push_back(point.p1);
    p2.push_back(point.p2);
    fp1.push_back(point.fp_ratio1);
    fp2.push_back(point.fp_ratio2);
  }
  auto fit = [&](const std::vector<double>& ys,
                 stats::LinearFit* target) -> Status {
    auto fitted = stats::FitLinear(load, ys, config.regression_level);
    if (!fitted.ok()) return fitted.status();
    *target = fitted.value();
    return Status::OK();
  };
  LOGMINE_RETURN_IF_ERROR(fit(p1, &out.fit_p1));
  LOGMINE_RETURN_IF_ERROR(fit(p2, &out.fit_p2));
  LOGMINE_RETURN_IF_ERROR(fit(fp1, &out.fit_fp1));
  LOGMINE_RETURN_IF_ERROR(fit(fp2, &out.fit_fp2));
  out.qq_correlation_p1 =
      stats::QqNormalCorrelation(stats::Residuals(out.fit_p1, load, p1));
  out.qq_correlation_p2 =
      stats::QqNormalCorrelation(stats::Residuals(out.fit_p2, load, p2));
  return out;
}

}  // namespace logmine::eval
