#include "eval/daily_runner.h"

#include "util/time_util.h"

namespace logmine::eval {
namespace {

std::string DayLabel(TimeMs day_begin) { return FormatDate(day_begin); }

}  // namespace

Result<stats::MedianCi> DailyRunResult::TpRatioCi(double level) const {
  return stats::MedianConfidenceInterval(series.TpRatios(), level);
}

core::DependencyModel DailyRunResult::UnionModel() const {
  core::DependencyModel out;
  for (const core::DependencyModel& model : daily_models) {
    out = out.Union(model);
  }
  return out;
}

Result<DailyRunResult> RunL1Daily(const Dataset& dataset,
                                  const core::L1Config& config) {
  DailyRunResult out;
  core::L1ActivityMiner miner(config);
  for (int day = 0; day < dataset.num_days(); ++day) {
    auto mined =
        miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
    if (!mined.ok()) return mined.status();
    core::DependencyModel model = mined.value().Dependencies(dataset.store);
    out.series.day_labels.push_back(DayLabel(dataset.day_begin(day)));
    out.series.days.push_back(core::Evaluate(model, dataset.reference_pairs,
                                             dataset.universe_pairs));
    out.daily_models.push_back(std::move(model));
  }
  return out;
}

Result<DailyRunResult> RunL2Daily(
    const Dataset& dataset, const core::L2Config& config,
    std::vector<core::SessionBuildStats>* session_stats) {
  DailyRunResult out;
  if (session_stats != nullptr) session_stats->clear();
  core::L2CooccurrenceMiner miner(config);
  for (int day = 0; day < dataset.num_days(); ++day) {
    auto mined =
        miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
    if (!mined.ok()) return mined.status();
    if (session_stats != nullptr) {
      session_stats->push_back(mined.value().session_stats);
    }
    core::DependencyModel model = mined.value().Dependencies(dataset.store);
    out.series.day_labels.push_back(DayLabel(dataset.day_begin(day)));
    out.series.days.push_back(core::Evaluate(model, dataset.reference_pairs,
                                             dataset.universe_pairs));
    out.daily_models.push_back(std::move(model));
  }
  return out;
}

Result<DailyRunResult> RunL3Daily(const Dataset& dataset,
                                  const core::L3Config& config) {
  DailyRunResult out;
  core::L3TextMiner miner(dataset.vocabulary, config);
  for (int day = 0; day < dataset.num_days(); ++day) {
    auto mined =
        miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
    if (!mined.ok()) return mined.status();
    core::DependencyModel model =
        mined.value().Dependencies(dataset.store, dataset.vocabulary);
    out.series.day_labels.push_back(DayLabel(dataset.day_begin(day)));
    out.series.days.push_back(core::Evaluate(
        model, dataset.reference_services, dataset.universe_services));
    out.daily_models.push_back(std::move(model));
  }
  return out;
}

}  // namespace logmine::eval
