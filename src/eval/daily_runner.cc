#include "eval/daily_runner.h"

#include <chrono>

#include "obs/obs.h"
#include "util/time_util.h"

namespace logmine::eval {
namespace {

std::string DayLabel(TimeMs day_begin) { return FormatDate(day_begin); }

Status CheckDay(const Dataset& dataset, int day) {
  if (day < 0 || day >= dataset.num_days()) {
    return Status::OutOfRange("day " + std::to_string(day) +
                              " outside [0, " +
                              std::to_string(dataset.num_days()) + ")");
  }
  return Status::OK();
}

/// Shared sweep loop: runs `day_fn` for every day under the options'
/// cancel/deadline budget and accumulates the outcomes.
template <typename DayFn>
Result<DailyRunResult> RunDaily(
    const Dataset& dataset, const DailyRunOptions& options,
    std::vector<core::SessionBuildStats>* session_stats,
    const DayFn& day_fn) {
  const auto start = std::chrono::steady_clock::now();
  if (session_stats != nullptr) session_stats->clear();
  DailyRunResult out;
  for (int day = 0; day < dataset.num_days(); ++day) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled("daily sweep cancelled after " +
                               std::to_string(day) + " of " +
                               std::to_string(dataset.num_days()) + " days");
    }
    if (options.deadline_ms != 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (options.deadline_ms < 0 || elapsed >= options.deadline_ms) {
        return Status::DeadlineExceeded(
            "daily sweep deadline expired after " + std::to_string(day) +
            " of " + std::to_string(dataset.num_days()) + " days");
      }
    }
    auto outcome = day_fn(day);
    if (!outcome.ok()) return outcome.status();
    DayOutcome& value = outcome.value();
    if (session_stats != nullptr) {
      session_stats->push_back(value.session_stats);
    }
    out.series.day_labels.push_back(std::move(value.label));
    out.series.days.push_back(value.counts);
    out.daily_models.push_back(std::move(value.model));
  }
  return out;
}

}  // namespace

Result<stats::MedianCi> DailyRunResult::TpRatioCi(double level) const {
  return stats::MedianConfidenceInterval(series.TpRatios(), level);
}

core::DependencyModel DailyRunResult::UnionModel() const {
  core::DependencyModel out;
  for (const core::DependencyModel& model : daily_models) {
    out = out.Union(model);
  }
  return out;
}

Result<DayOutcome> RunL1Day(const Dataset& dataset,
                            const core::L1Config& config, int day) {
  LOGMINE_RETURN_IF_ERROR(CheckDay(dataset, day));
  LOGMINE_SPAN_GLOBAL("eval/l1_day", obs::Metric::kEvalDayNs);
  obs::Count(obs::Metric::kEvalDaysMined);
  core::L1ActivityMiner miner(config);
  auto mined =
      miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
  if (!mined.ok()) return mined.status();
  DayOutcome out;
  out.model = mined.value().Dependencies(dataset.store);
  out.label = DayLabel(dataset.day_begin(day));
  out.counts = core::Evaluate(out.model, dataset.reference_pairs,
                              dataset.universe_pairs);
  return out;
}

Result<DayOutcome> RunL2Day(const Dataset& dataset,
                            const core::L2Config& config, int day) {
  LOGMINE_RETURN_IF_ERROR(CheckDay(dataset, day));
  LOGMINE_SPAN_GLOBAL("eval/l2_day", obs::Metric::kEvalDayNs);
  obs::Count(obs::Metric::kEvalDaysMined);
  core::L2CooccurrenceMiner miner(config);
  auto mined =
      miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
  if (!mined.ok()) return mined.status();
  DayOutcome out;
  out.session_stats = mined.value().session_stats;
  out.model = mined.value().Dependencies(dataset.store);
  out.label = DayLabel(dataset.day_begin(day));
  out.counts = core::Evaluate(out.model, dataset.reference_pairs,
                              dataset.universe_pairs);
  return out;
}

Result<DayOutcome> RunL3Day(const Dataset& dataset,
                            const core::L3Config& config, int day) {
  LOGMINE_RETURN_IF_ERROR(CheckDay(dataset, day));
  LOGMINE_SPAN_GLOBAL("eval/l3_day", obs::Metric::kEvalDayNs);
  obs::Count(obs::Metric::kEvalDaysMined);
  core::L3TextMiner miner(dataset.vocabulary, config);
  auto mined =
      miner.Mine(dataset.store, dataset.day_begin(day), dataset.day_end(day));
  if (!mined.ok()) return mined.status();
  DayOutcome out;
  out.model = mined.value().Dependencies(dataset.store, dataset.vocabulary);
  out.label = DayLabel(dataset.day_begin(day));
  out.counts = core::Evaluate(out.model, dataset.reference_services,
                              dataset.universe_services);
  return out;
}

Result<DailyRunResult> RunL1Daily(const Dataset& dataset,
                                  const core::L1Config& config,
                                  const DailyRunOptions& options) {
  return RunDaily(dataset, options, nullptr, [&](int day) {
    return RunL1Day(dataset, config, day);
  });
}

Result<DailyRunResult> RunL2Daily(
    const Dataset& dataset, const core::L2Config& config,
    std::vector<core::SessionBuildStats>* session_stats,
    const DailyRunOptions& options) {
  return RunDaily(dataset, options, session_stats, [&](int day) {
    return RunL2Day(dataset, config, day);
  });
}

Result<DailyRunResult> RunL3Daily(const Dataset& dataset,
                                  const core::L3Config& config,
                                  const DailyRunOptions& options) {
  return RunDaily(dataset, options, nullptr, [&](int day) {
    return RunL3Day(dataset, config, day);
  });
}

}  // namespace logmine::eval
