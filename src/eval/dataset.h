#ifndef LOGMINE_EVAL_DATASET_H_
#define LOGMINE_EVAL_DATASET_H_

#include <map>
#include <string>

#include "core/dependency.h"
#include "core/l3_text_miner.h"
#include "log/store.h"
#include "simulation/hug_scenario.h"
#include "simulation/simulator.h"
#include "util/result.h"

namespace logmine::eval {

/// Everything a reproduction experiment needs: scenario + generated
/// corpus + reference models.
struct Dataset {
  sim::HugScenario scenario;
  sim::SimulationConfig simulation;
  sim::SimulationSummary summary;
  LogStore store;

  core::ServiceVocabulary vocabulary;
  core::DependencyModel reference_pairs;     ///< app-app (L1/L2)
  core::DependencyModel reference_services;  ///< app-entry (L3)
  /// Entry id -> providing application name (maps L3 realizations onto
  /// app pairs in the load experiment).
  std::map<std::string, std::string> entry_owner;

  int64_t universe_pairs = 0;     ///< C(#apps, 2)
  int64_t universe_services = 0;  ///< #apps * #entries

  int num_days() const { return simulation.num_days; }
  TimeMs day_begin(int day) const {
    return simulation.start + day * kMillisPerDay;
  }
  TimeMs day_end(int day) const { return day_begin(day) + kMillisPerDay; }
};

/// Builder configuration; scale both knobs down for fast tests.
struct DatasetConfig {
  sim::HugScenarioConfig scenario;
  sim::SimulationConfig simulation;
  /// When non-empty, the simulated corpus and its summary are cached at
  /// this path in the binary columnar format (log/columnar.h) with a
  /// fingerprint of this whole config embedded. A later BuildDataset
  /// with an identical config loads the corpus from the cache instead of
  /// re-running the simulator — the expensive step — and is bit-identical
  /// to a fresh build. A stale, corrupt or missing cache is rebuilt and
  /// rewritten (atomically); it is never trusted on a fingerprint
  /// mismatch.
  std::string corpus_cache_path;
};

/// Deterministic fingerprint of every field of `config` that shapes the
/// simulated corpus (excluding `corpus_cache_path` itself) — the cache
/// key of `BuildDataset`'s corpus cache.
uint64_t DatasetFingerprint(const DatasetConfig& config);

/// Extracts the L3 matching vocabulary from a simulated directory.
core::ServiceVocabulary VocabularyFrom(const sim::ServiceDirectory& directory);

/// Builds the scenario, runs the simulator and assembles the reference
/// models.
Result<Dataset> BuildDataset(const DatasetConfig& config);

}  // namespace logmine::eval

#endif  // LOGMINE_EVAL_DATASET_H_
