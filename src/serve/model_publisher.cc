#include "serve/model_publisher.h"

#include <utility>

#include "core/serialization.h"
#include "util/snapshot.h"

namespace logmine::serve {
namespace {

void EncodeWindowModelSet(const WindowModelSet& models, SnapshotWriter* w) {
  w->PutI64(models.window_begin);
  w->PutI64(models.window_end);
  w->PutI64(models.slots_total);
  w->PutU64(models.l1_pairs.size());
  for (const WindowPairStat& stat : models.l1_pairs) {
    w->PutString(stat.names.first);
    w->PutString(stat.names.second);
    w->PutI64(stat.slots_supported);
    w->PutI64(stat.slots_positive);
    w->PutDouble(stat.positive_ratio);
    w->PutBool(stat.dependent);
  }
  w->PutU64(models.l2_scores.size());
  for (const WindowL2Score& score : models.l2_scores) {
    w->PutString(score.a);
    w->PutString(score.b);
    w->PutI64(score.o11);
    w->PutDouble(score.score);
    w->PutDouble(score.p_value);
    w->PutBool(score.dependent);
  }
  core::EncodeSessionBuildStats(models.session_stats, w);
  w->PutI64(models.num_bigrams);
  w->PutU64(models.citations.size());
  for (const WindowCitation& citation : models.citations) {
    w->PutString(citation.app);
    w->PutString(citation.entry_id);
    w->PutI64(citation.count);
    w->PutBool(citation.dependent);
  }
  w->PutI64(models.logs_scanned);
  w->PutI64(models.logs_stopped);
  core::EncodeDependencyModel(models.l1, w);
  core::EncodeDependencyModel(models.l2, w);
  core::EncodeDependencyModel(models.l3, w);
  core::EncodeDependencyModel(models.combined, w);
}

Result<WindowModelSet> DecodeWindowModelSet(SectionCursor* c) {
  WindowModelSet models;
  LOGMINE_ASSIGN_OR_RETURN(models.window_begin, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(models.window_end, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(const int64_t slots_total, c->ReadI64());
  models.slots_total = static_cast<int>(slots_total);
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_l1, c->ReadU64());
  models.l1_pairs.reserve(num_l1);
  for (uint64_t i = 0; i < num_l1; ++i) {
    WindowPairStat stat;
    LOGMINE_ASSIGN_OR_RETURN(stat.names.first, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(stat.names.second, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(const int64_t supported, c->ReadI64());
    stat.slots_supported = static_cast<int>(supported);
    LOGMINE_ASSIGN_OR_RETURN(const int64_t positive, c->ReadI64());
    stat.slots_positive = static_cast<int>(positive);
    LOGMINE_ASSIGN_OR_RETURN(stat.positive_ratio, c->ReadDouble());
    LOGMINE_ASSIGN_OR_RETURN(stat.dependent, c->ReadBool());
    models.l1_pairs.push_back(std::move(stat));
  }
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_l2, c->ReadU64());
  models.l2_scores.reserve(num_l2);
  for (uint64_t i = 0; i < num_l2; ++i) {
    WindowL2Score score;
    LOGMINE_ASSIGN_OR_RETURN(score.a, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(score.b, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(score.o11, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(score.score, c->ReadDouble());
    LOGMINE_ASSIGN_OR_RETURN(score.p_value, c->ReadDouble());
    LOGMINE_ASSIGN_OR_RETURN(score.dependent, c->ReadBool());
    models.l2_scores.push_back(std::move(score));
  }
  LOGMINE_ASSIGN_OR_RETURN(models.session_stats,
                           core::DecodeSessionBuildStats(c));
  LOGMINE_ASSIGN_OR_RETURN(models.num_bigrams, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_citations, c->ReadU64());
  models.citations.reserve(num_citations);
  for (uint64_t i = 0; i < num_citations; ++i) {
    WindowCitation citation;
    LOGMINE_ASSIGN_OR_RETURN(citation.app, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(citation.entry_id, c->ReadString());
    LOGMINE_ASSIGN_OR_RETURN(citation.count, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(citation.dependent, c->ReadBool());
    models.citations.push_back(std::move(citation));
  }
  LOGMINE_ASSIGN_OR_RETURN(models.logs_scanned, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(models.logs_stopped, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(models.l1, core::DecodeDependencyModel(c));
  LOGMINE_ASSIGN_OR_RETURN(models.l2, core::DecodeDependencyModel(c));
  LOGMINE_ASSIGN_OR_RETURN(models.l3, core::DecodeDependencyModel(c));
  LOGMINE_ASSIGN_OR_RETURN(models.combined, core::DecodeDependencyModel(c));
  return models;
}

}  // namespace

std::string SerializeGeneration(const ModelGeneration& generation) {
  SnapshotWriter w;
  w.BeginSection("generation");
  w.PutI64(generation.number);
  w.PutI64(generation.window_begin);
  w.PutI64(generation.window_end);
  w.PutI64(generation.epochs_ingested);
  w.PutU64(generation.config_fingerprint);
  EncodeWindowModelSet(generation.models, &w);
  core::EncodeDependencyModel(generation.tracker_active, &w);
  w.EndSection();
  return std::move(w).Finish();
}

Result<ModelGeneration> ParseGeneration(
    const std::string& bytes,
    const std::map<std::string, std::string>& entry_owner) {
  LOGMINE_ASSIGN_OR_RETURN(const SnapshotReader reader,
                           SnapshotReader::Parse(bytes));
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor c, reader.Section("generation"));
  ModelGeneration generation;
  LOGMINE_ASSIGN_OR_RETURN(generation.number, c.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(generation.window_begin, c.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(generation.window_end, c.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(generation.epochs_ingested, c.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(generation.config_fingerprint, c.ReadU64());
  LOGMINE_ASSIGN_OR_RETURN(generation.models, DecodeWindowModelSet(&c));
  LOGMINE_ASSIGN_OR_RETURN(generation.tracker_active,
                           core::DecodeDependencyModel(&c));
  LOGMINE_RETURN_IF_ERROR(c.ExpectEnd());
  generation.graph =
      BuildQueryGraph(generation.models, generation.tracker_active,
                      entry_owner);
  generation.self_crc = Crc32(bytes);
  return generation;
}

core::DependencyGraph BuildQueryGraph(
    const WindowModelSet& models, const core::DependencyModel& tracker_active,
    const std::map<std::string, std::string>& entry_owner) {
  core::DependencyGraph graph;
  // App-app dependencies are undirected (the paper's L1/L2 reference
  // model has no direction), so both query directions get an edge.
  for (const core::NamePair& pair : tracker_active.pairs()) {
    graph.AddDependency(pair.first, pair.second);
    graph.AddDependency(pair.second, pair.first);
  }
  // L3 is directed once entries resolve to their providers.
  for (const core::NamePair& pair : models.l3.pairs()) {
    auto it = entry_owner.find(pair.second);
    if (it == entry_owner.end()) continue;
    if (it->second == pair.first) continue;  // self-edge
    graph.AddDependency(pair.first, it->second);
  }
  return graph;
}

void ModelPublisher::Publish(
    std::shared_ptr<const ModelGeneration> generation) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(generation);
  ++published_;
}

std::shared_ptr<const ModelGeneration> ModelPublisher::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

int64_t ModelPublisher::generations_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace logmine::serve
