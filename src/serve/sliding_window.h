#ifndef LOGMINE_SERVE_SLIDING_WINDOW_H_
#define LOGMINE_SERVE_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/dependency.h"
#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "log/record.h"
#include "log/store.h"
#include "util/executor.h"
#include "util/result.h"
#include "util/snapshot.h"
#include "util/time_util.h"

namespace logmine::serve {

/// One hour (epoch) of logs, the ingest unit of the streaming service.
/// [begin, end) must span exactly one epoch on the configured grid and
/// every record's client_ts must fall inside it — a batch violating
/// either is the "poison batch" the service quarantines.
struct EpochBatch {
  TimeMs begin = 0;
  TimeMs end = 0;
  std::vector<LogRecord> records;
};

/// Splits [begin, end) of `store` into consecutive epoch batches of
/// `epoch_length`; end - begin must be a whole number of epochs
/// (InvalidArgument otherwise). Batches with no records are still
/// returned — an empty hour advances the window. Record order inside a
/// batch follows the store's time order, so feeding the batches through
/// the sliding miner sees logs exactly as a batch mine over the same
/// interval would. Pre-condition: store.index_built().
Result<std::vector<EpochBatch>> SplitIntoEpochBatches(const LogStore& store,
                                                      TimeMs begin, TimeMs end,
                                                      TimeMs epoch_length);

/// Configuration of the sliding-window miner. `Create` normalizes the
/// L1 config: `l1.slot_length` is forced to `epoch_length` (one epoch =
/// one L1 slot) and an unset `l1.salt_anchor` becomes 0, so per-epoch
/// L1 outcomes are window-position-invariant (see L1Config).
struct SlidingWindowConfig {
  /// Epoch (= L1 slot) length; the paper's hourly grid.
  TimeMs epoch_length = kMillisPerHour;
  /// Epochs retained: the model always describes the last
  /// `window_epochs` epochs ending at the newest ingested one.
  int window_epochs = 24;
  core::L1Config l1;
  core::L2Config l2;
  core::L3Config l3;
  core::ServiceVocabulary vocabulary;
};

/// L1 outcome for one source pair over the current window, in the
/// name domain (intern ids are an implementation detail of the miner).
struct WindowPairStat {
  core::NamePair names;  ///< normalized: first <= second
  int slots_supported = 0;
  int slots_positive = 0;
  double positive_ratio = 0.0;
  bool dependent = false;
};

/// L2 score of one *ordered* bigram type over the current window.
struct WindowL2Score {
  std::string a;
  std::string b;
  int64_t o11 = 0;
  double score = 0.0;
  double p_value = 1.0;
  bool dependent = false;
};

/// L3 citation counter over the current window.
struct WindowCitation {
  std::string app;
  std::string entry_id;  ///< vocabulary entry id
  int64_t count = 0;
  bool dependent = false;
};

/// Everything one publish derives from the current window — per-pair
/// evidence plus the name-level dependency models. Equal to what a
/// batch mine over [window_begin, window_end) produces (the equivalence
/// property the serve tests pin down).
struct WindowModelSet {
  TimeMs window_begin = 0;
  TimeMs window_end = 0;
  int slots_total = 0;
  std::vector<WindowPairStat> l1_pairs;  ///< sorted by names
  std::vector<WindowL2Score> l2_scores;  ///< sorted by (a, b)
  core::SessionBuildStats session_stats;
  int64_t num_bigrams = 0;
  std::vector<WindowCitation> citations;  ///< sorted by (app, entry_id)
  int64_t logs_scanned = 0;
  int64_t logs_stopped = 0;
  core::DependencyModel l1;
  core::DependencyModel l2;
  core::DependencyModel l3;
  core::DependencyModel combined;  ///< l1 ∪ l2 (the app-app model)
};

/// Incremental miner behind the streaming service: ingests one epoch at
/// a time, retains compact per-epoch observables (L1 per-slot pair
/// outcomes, L2 context-log columns, L3 citation counters), ages out
/// epochs that slide past the window, and aggregates the retained
/// epochs into a full model set at publish time — no re-mining of old
/// hours, ever.
///
/// Why this decomposition: L1's per-slot outcomes and L3's citation
/// counts are additive over epochs, so they aggregate exactly. L2 is
/// not (sessions straddle epoch boundaries), so the miner keeps the
/// minimal columns session reconstruction needs — (ts, source, user) of
/// context-bearing logs — and rebuilds sessions over the whole window
/// at publish time, which is cheap relative to re-scanning raw logs.
///
/// The full streaming state serializes through util/snapshot, and a
/// decoded miner continues byte-identically to one that never stopped —
/// the property the service's crash recovery rests on.
class SlidingWindowMiner {
 public:
  /// Validates and normalizes `config` (see SlidingWindowConfig).
  static Result<SlidingWindowMiner> Create(SlidingWindowConfig config);

  /// Fingerprint of every result-affecting config field (miner configs,
  /// grid, vocabulary). Persisted state with a different fingerprint is
  /// refused at recovery.
  static uint64_t Fingerprint(const SlidingWindowConfig& config);

  /// Ingests the next epoch: mines the batch's hour in isolation and
  /// appends the compacted observables, then ages out epochs older than
  /// the window. The batch must be aligned to the epoch grid, start at
  /// or after the current window end, and contain only records inside
  /// its bounds — InvalidArgument otherwise (the poison-batch class),
  /// leaving the window untouched.
  Status IngestEpoch(const EpochBatch& batch);

  /// Aggregates the retained epochs into the window's model set.
  /// `options.cancel` / `options.deadline` ride into the L2 session
  /// rebuild and scoring. FailedPrecondition before the first ingest.
  Result<WindowModelSet> MineWindow(const RunOptions& options = {}) const;

  int64_t epochs_ingested() const { return epochs_ingested_; }
  int64_t epochs_aged_out() const { return epochs_aged_out_; }
  size_t epochs_retained() const { return epochs_.size(); }
  /// Window bounds: [end - window_epochs * epoch_length, end), end at
  /// the newest ingested epoch. Both 0 before the first ingest.
  TimeMs window_begin() const;
  TimeMs window_end() const;
  const SlidingWindowConfig& config() const { return config_; }
  uint64_t config_fingerprint() const { return fingerprint_; }

  /// Serializes the full streaming state into the currently open
  /// section of `w` (fingerprint first, so decode can refuse early).
  void EncodeState(SnapshotWriter* w) const;

  /// Restores a miner from `EncodeState` bytes. FailedPrecondition when
  /// the persisted fingerprint does not match `config`'s — resuming
  /// under a different config would silently mix incompatible models.
  static Result<SlidingWindowMiner> DecodeState(
      const SlidingWindowConfig& config, SectionCursor* c);

 private:
  /// L1 outcome of one pair in one epoch; a/b are source intern ids
  /// ordered so that name(a) <= name(b).
  struct EpochPair {
    uint32_t a = 0;
    uint32_t b = 0;
    bool positive = false;
  };
  /// One context-bearing log, compacted to what session rebuild needs.
  struct ContextLog {
    TimeMs ts = 0;
    uint32_t source = 0;
    uint32_t user = 0;
  };
  /// One (app, vocabulary entry) citation counter of one epoch.
  struct EpochCitation {
    uint32_t app = 0;
    uint64_t entry = 0;
    int64_t count = 0;
  };
  /// The retained observables of one ingested epoch.
  struct EpochState {
    TimeMs begin = 0;
    std::vector<EpochPair> l1_pairs;
    int64_t logs_considered = 0;
    std::vector<ContextLog> context;
    std::vector<EpochCitation> citations;
    int64_t logs_scanned = 0;
    int64_t logs_stopped = 0;
  };

  explicit SlidingWindowMiner(SlidingWindowConfig config);

  uint32_t Intern(std::string_view name, std::vector<std::string>* names,
                  std::map<std::string, uint32_t, std::less<>>* index);

  SlidingWindowConfig config_;
  uint64_t fingerprint_ = 0;
  // Source / user names interned across the miner's whole life; epoch
  // states reference them by dense id. Never shrunk — name churn is
  // tiny next to the per-epoch columns.
  std::vector<std::string> source_names_;
  std::map<std::string, uint32_t, std::less<>> source_index_;
  std::vector<std::string> user_names_;
  std::map<std::string, uint32_t, std::less<>> user_index_;
  std::deque<EpochState> epochs_;
  int64_t epochs_ingested_ = 0;
  int64_t epochs_aged_out_ = 0;
};

}  // namespace logmine::serve

#endif  // LOGMINE_SERVE_SLIDING_WINDOW_H_
