#ifndef LOGMINE_SERVE_STREAMING_SERVICE_H_
#define LOGMINE_SERVE_STREAMING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>

#include "core/model_tracker.h"
#include "obs/introspect.h"
#include "obs/obs.h"
#include "obs/postmortem.h"
#include "serve/model_publisher.h"
#include "serve/sliding_window.h"
#include "simulation/service_faults.h"
#include "util/executor.h"
#include "util/result.h"

namespace logmine::serve {

/// The service's degradation ladder, driven by time since the last
/// successful publish: a service that cannot refresh its model keeps
/// answering queries from the newest generation it has (stale-serving
/// beats erroring), but tells its callers how old that model is.
enum class HealthState : uint32_t {
  kStarting = 0,   ///< no generation published yet
  kHealthy,        ///< published within degraded_after_ms
  kDegraded,       ///< published within stale_after_ms
  kStaleServing,   ///< older than stale_after_ms, still serving
};

/// Stable name for logs and test output (e.g. "stale-serving").
std::string_view HealthStateName(HealthState state);

/// What happened to one submitted batch.
enum class SubmitOutcome : uint32_t {
  kAccepted = 0,
  /// The queue was full: the *oldest* queued batch was shed to make
  /// room — under overload the freshest data wins, the model just
  /// skips an hour (an empty slot), and the service keeps serving.
  kAcceptedShedOldest,
  /// The batch starts before an already-ingested epoch (upstream clock
  /// regression / replay); rejected without touching the window.
  kRejectedClockRegression,
};

struct SubmitResult {
  SubmitOutcome outcome = SubmitOutcome::kAccepted;
  size_t queue_depth = 0;  ///< after the submission
};

/// What one Step() call did.
enum class StepOutcome : uint32_t {
  kIdle = 0,    ///< queue empty
  kIngested,    ///< one epoch ingested, no publish due
  kPublished,   ///< one epoch ingested and a new generation published
  kStalled,     ///< injected stall: the batch stays queued
  kPoisoned,    ///< the batch was quarantined; the service keeps serving
};

/// Operational counters (in-memory only — recovery starts them fresh;
/// everything correctness-relevant lives in the persisted state).
struct ServiceStats {
  int64_t batches_submitted = 0;
  int64_t batches_shed = 0;
  int64_t batches_poisoned = 0;
  int64_t clock_regressions = 0;
  int64_t epochs_ingested = 0;
  int64_t epochs_stalled = 0;
  int64_t generations_published = 0;
  int64_t queries_served = 0;
  int64_t query_deadline_exceeded = 0;
  int64_t snapshots_written = 0;
  int64_t health_transitions = 0;
};

struct HealthReport {
  HealthState state = HealthState::kStarting;
  int64_t generation = 0;         ///< 0 = none published
  int64_t ms_since_publish = -1;  ///< -1 = never published
  size_t queue_depth = 0;
  int64_t shed_total = 0;
};

/// Per-query controls; the deadline rides the same CancelToken/deadline
/// machinery as the miners (util/executor.h).
struct QueryOptions {
  /// 0 = use ServiceConfig::default_query_deadline_ms (0 there = none).
  int64_t deadline_ms = 0;
  const CancelToken* cancel = nullptr;
};

struct QueryResult {
  int64_t generation = 0;
  /// Health at answer time — a stale-serving answer is still an answer,
  /// but the caller can see it came from an old model.
  HealthState health = HealthState::kStarting;
  std::set<std::string> components;
};

struct ServiceConfig {
  SlidingWindowConfig window;
  core::ModelTrackerConfig tracker;
  /// Vocabulary entry id -> providing application; when non-empty, L3
  /// pairs become directed edges in the query graph (see
  /// BuildQueryGraph).
  std::map<std::string, std::string> entry_owner;
  /// Bounded ingest queue: a submission beyond this sheds the oldest
  /// queued batch (see SubmitOutcome::kAcceptedShedOldest).
  size_t max_queue_batches = 8;
  /// Publish a new generation every this many ingested epochs.
  int publish_every_epochs = 1;
  /// Health thresholds on time since the last publish.
  int64_t degraded_after_ms = 5'000;
  int64_t stale_after_ms = 30'000;
  int64_t default_query_deadline_ms = 0;
  /// Crash-safe state file; empty = in-memory only (no recovery).
  std::string state_path;
  /// Injectable clock (milliseconds, monotonic) driving the staleness
  /// watchdog — tests substitute a manual clock; the default reads
  /// steady_clock.
  std::function<int64_t()> now_ms;
  /// Metrics/trace sink; nullptr = the ambient global context. With a
  /// context the service also journals every epoch / publish /
  /// quarantine / shed / health boundary under one "serve-<n>" root
  /// span of the context's journal.
  obs::ObsContext* obs = nullptr;
  /// Dump-on-failure: quarantines, injected crashes and health-ladder
  /// regressions capture a postmortem bundle into `postmortem.dir`
  /// (empty = disabled; needs an obs context). See obs/postmortem.h.
  obs::PostmortemOptions postmortem;
  /// When non-empty, Create binds a live introspection endpoint (an
  /// AF_UNIX line-protocol server, obs/introspect.h) at this path,
  /// serving STATUSZ / METRICS / HEALTH / JOURNAL TAIL over the
  /// service's obs context. Requires an obs context.
  std::string introspection_socket;
  /// Chaos: when set, submissions, steps and queries consult the
  /// injector (see simulation/service_faults.h). Not owned.
  const sim::ServiceFaultInjector* faults = nullptr;
};

/// The overload-resilient streaming mining service: feeds epoch batches
/// through the sliding-window miner, publishes immutable model
/// generations through an atomic pointer swap, and degrades gracefully
/// — shedding load, quarantining poison, stale-serving — instead of
/// erroring, under a deterministic chaos harness.
///
/// Threading: SubmitBatch, the query methods, Health and stats are
/// thread-safe and may run concurrently with Step. Step itself is
/// internally serialized (one batch is processed at a time); call it
/// from your own loop, or Start() the built-in worker thread.
///
/// Crash protocol (state_path set): every successful Step persists ONE
/// atomic snapshot — sliding-window state, tracker, the serialized
/// current generation, and the ingest watermark — *before* the
/// in-memory generation swap. A process killed at any instant therefore
/// recovers to a state from which re-feeding the unprocessed batches
/// produces byte-identical snapshots and generations to a run that
/// never crashed (the chaos suite's identity check).
class StreamingMiningService {
 public:
  /// Builds the service; when `state_path` holds a snapshot, recovers
  /// from it (FailedPrecondition if it was written under a different
  /// config fingerprint — serving under a silently changed config is
  /// the one thing recovery must never do).
  static Result<std::unique_ptr<StreamingMiningService>> Create(
      ServiceConfig config);

  ~StreamingMiningService();

  /// Enqueues one epoch batch; never blocks, never errors — overload
  /// sheds the oldest queued batch instead (counted, reported).
  SubmitResult SubmitBatch(EpochBatch batch);

  /// Processes at most one queued batch (ingest + publish when due +
  /// persist). Only a crash fault or an unrecoverable internal error
  /// returns a non-OK status; poison batches and stalls are normal
  /// outcomes. After a crash status the service is dead: rebuild via
  /// Create to recover.
  Result<StepOutcome> Step();

  /// Steps until the queue is idle (stalled batches count as idle once
  /// they stop making progress); returns the number of batches
  /// processed.
  Result<int> Drain();

  /// Starts the built-in worker thread (idempotent); Stop() joins it.
  void Start();
  void Stop();

  /// The latest generation; nullptr before the first publish.
  std::shared_ptr<const ModelGeneration> CurrentModel() const;

  HealthReport Health() const;
  ServiceStats stats() const;
  size_t queue_depth() const;
  /// True when Create restored state from a snapshot file.
  bool recovered() const { return recovered_; }
  uint64_t config_fingerprint() const;
  const ServiceConfig& config() const { return config_; }
  /// The live introspection endpoint; nullptr unless
  /// `introspection_socket` was configured.
  const obs::IntrospectionServer* introspection() const {
    return introspection_.get();
  }

  /// Direct dependents of `component` ("what depends on S?").
  Result<QueryResult> WhatDependsOn(const std::string& component,
                                    const QueryOptions& options = {});
  /// Transitive impact set of `component` failing.
  Result<QueryResult> ImpactOf(const std::string& component,
                               const QueryOptions& options = {});

 private:
  struct QueuedBatch {
    int64_t index = 0;  ///< submission index, the fault injector's key
    int attempts = 0;
    EpochBatch batch;
  };

  explicit StreamingMiningService(ServiceConfig config);

  int64_t NowMs() const;
  sim::ServiceFault FaultOnEpoch(int64_t index, int attempts) const;
  /// Persists the full streaming state (no-op without a state_path).
  Status Persist();
  /// Restores state from `bytes`; called by Create.
  Status Recover(const std::string& bytes);
  Result<QueryResult> Query(const std::string& component, bool transitive,
                            const QueryOptions& options);
  /// Current health; updates the transition counter under stats_mu_ and
  /// journals the transition.
  HealthState ObserveHealth(int64_t now) const;
  /// Step-time watchdog: a health-ladder regression (healthy ->
  /// degraded/stale) journals the slide and captures a postmortem
  /// bundle. Never runs on the query path.
  void CheckHealthRegression();

  ServiceConfig config_;
  obs::ObsContext* obs_ = nullptr;  ///< effective sink
  std::string journal_span_;        ///< "serve-<n>"; empty without obs

  std::unique_ptr<SlidingWindowMiner> miner_;  ///< guarded by step_mu_
  core::ModelTracker tracker_;                 ///< guarded by step_mu_
  ModelPublisher publisher_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedBatch> queue_;
  int64_t submit_index_ = 0;
  /// Begin of the newest *accepted* epoch (clock-regression guard);
  /// reset to the ingested watermark on recovery so unprocessed batches
  /// can be resubmitted.
  TimeMs submit_watermark_ = INT64_MIN;

  std::mutex step_mu_;
  TimeMs ingest_watermark_ = INT64_MIN;  ///< newest *ingested* epoch begin
  int epochs_since_publish_ = 0;
  int64_t next_generation_number_ = 1;
  std::string generation_bytes_;  ///< serialized current generation
  bool dead_ = false;             ///< crash fault fired; service is gone
  /// Health observed by the previous Step (the regression watchdog's
  /// baseline); guarded by step_mu_.
  HealthState step_health_ = HealthState::kStarting;

  mutable std::mutex stats_mu_;
  mutable ServiceStats stats_;
  int64_t last_publish_ms_ = -1;
  mutable HealthState last_health_ = HealthState::kStarting;

  bool recovered_ = false;

  std::thread worker_;
  std::atomic<bool> worker_stop_{false};
  bool worker_running_ = false;

  /// Declared last (and reset first in the destructor): its server
  /// thread calls back into the service, so it must die before any
  /// other member.
  std::unique_ptr<obs::IntrospectionServer> introspection_;
};

}  // namespace logmine::serve

#endif  // LOGMINE_SERVE_STREAMING_SERVICE_H_
