#include "serve/sliding_window.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "core/serialization.h"
#include "obs/obs.h"

namespace logmine::serve {
namespace {

// Builds an indexed LogStore holding exactly one epoch's records,
// verifying every record lies inside the batch's bounds.
Result<LogStore> BuildEpochStore(const EpochBatch& batch) {
  LogStore store;
  for (const LogRecord& record : batch.records) {
    if (record.client_ts < batch.begin || record.client_ts >= batch.end) {
      return Status::InvalidArgument(
          "poison batch: record client_ts " +
          std::to_string(record.client_ts) + " outside epoch [" +
          std::to_string(batch.begin) + ", " + std::to_string(batch.end) +
          ")");
    }
    Status appended = store.Append(record);
    if (!appended.ok()) {
      return Status::InvalidArgument("poison batch: " +
                                     std::string(appended.message()));
    }
  }
  store.BuildIndex();
  return store;
}

}  // namespace

Result<std::vector<EpochBatch>> SplitIntoEpochBatches(const LogStore& store,
                                                      TimeMs begin, TimeMs end,
                                                      TimeMs epoch_length) {
  if (!store.index_built()) {
    return Status::FailedPrecondition("LogStore index not built");
  }
  if (epoch_length <= 0 || end <= begin ||
      (end - begin) % epoch_length != 0) {
    return Status::InvalidArgument(
        "[begin, end) must be a positive whole number of epochs");
  }
  const size_t num_epochs =
      static_cast<size_t>((end - begin) / epoch_length);
  std::vector<EpochBatch> batches(num_epochs);
  for (size_t k = 0; k < num_epochs; ++k) {
    batches[k].begin = begin + static_cast<TimeMs>(k) * epoch_length;
    batches[k].end = batches[k].begin + epoch_length;
  }
  for (uint32_t idx : store.TimeOrder()) {
    const TimeMs ts = store.client_ts(idx);
    if (ts < begin || ts >= end) continue;
    const size_t k = static_cast<size_t>((ts - begin) / epoch_length);
    batches[k].records.push_back(store.GetRecord(idx));
  }
  return batches;
}

SlidingWindowMiner::SlidingWindowMiner(SlidingWindowConfig config)
    : config_(std::move(config)), fingerprint_(Fingerprint(config_)) {}

Result<SlidingWindowMiner> SlidingWindowMiner::Create(
    SlidingWindowConfig config) {
  if (config.epoch_length <= 0) {
    return Status::InvalidArgument("epoch_length must be positive");
  }
  if (config.window_epochs < 1) {
    return Status::InvalidArgument("window_epochs must be >= 1");
  }
  if (config.l1.adaptive_slots) {
    return Status::InvalidArgument(
        "sliding windows need the fixed slot grid (adaptive_slots=false)");
  }
  if (config.l1.th_s > 1.0) {
    return Status::InvalidArgument("l1.th_s must be a fraction in [0, 1]");
  }
  // One epoch = one L1 slot, and per-(slot, source) randomness keyed by
  // the absolute grid so each epoch's outcome is independent of the
  // window position it is later aggregated under.
  config.l1.slot_length = config.epoch_length;
  if (config.l1.salt_anchor == core::L1Config::kNoSaltAnchor) {
    config.l1.salt_anchor = 0;
  }
  return SlidingWindowMiner(std::move(config));
}

uint64_t SlidingWindowMiner::Fingerprint(const SlidingWindowConfig& config) {
  core::Fingerprinter fp;
  fp.MixI64(config.epoch_length);
  fp.MixI64(config.window_epochs);
  fp.MixU64(core::ConfigFingerprint(config.l1));
  fp.MixU64(core::ConfigFingerprint(config.l2));
  fp.MixU64(core::ConfigFingerprint(config.l3));
  fp.MixU64(config.vocabulary.entries.size());
  for (const core::ServiceVocabulary::Entry& entry :
       config.vocabulary.entries) {
    fp.MixString(entry.id);
    fp.MixString(entry.root_url);
  }
  return fp.digest();
}

uint32_t SlidingWindowMiner::Intern(
    std::string_view name, std::vector<std::string>* names,
    std::map<std::string, uint32_t, std::less<>>* index) {
  auto it = index->find(name);
  if (it != index->end()) return it->second;
  const auto id = static_cast<uint32_t>(names->size());
  names->emplace_back(name);
  index->emplace(std::string(name), id);
  return id;
}

TimeMs SlidingWindowMiner::window_end() const {
  return epochs_.empty() ? 0 : epochs_.back().begin + config_.epoch_length;
}

TimeMs SlidingWindowMiner::window_begin() const {
  return epochs_.empty()
             ? 0
             : window_end() - static_cast<TimeMs>(config_.window_epochs) *
                                  config_.epoch_length;
}

Status SlidingWindowMiner::IngestEpoch(const EpochBatch& batch) {
  if (batch.end - batch.begin != config_.epoch_length) {
    return Status::InvalidArgument("batch must span exactly one epoch");
  }
  const TimeMs anchored = batch.begin - config_.l1.salt_anchor;
  if (anchored % config_.epoch_length != 0) {
    return Status::InvalidArgument("batch not aligned to the epoch grid");
  }
  if (!epochs_.empty() &&
      batch.begin < epochs_.back().begin + config_.epoch_length) {
    return Status::InvalidArgument(
        "batch begins before the current window end (epochs must arrive "
        "in order)");
  }
  LOGMINE_ASSIGN_OR_RETURN(const LogStore store, BuildEpochStore(batch));

  // Mine the hour in isolation first; state is only touched once every
  // fallible step has succeeded, so a poison batch leaves the window
  // exactly as it was.
  core::L1ActivityMiner l1_miner(config_.l1);
  LOGMINE_ASSIGN_OR_RETURN(const core::L1Result l1,
                           l1_miner.Mine(store, batch.begin, batch.end));
  // An empty vocabulary means there is nothing to cite, not a poison
  // batch: skip L3 instead of quarantining every epoch.
  core::L3Result l3;
  if (!config_.vocabulary.entries.empty()) {
    core::L3TextMiner l3_miner(config_.vocabulary, config_.l3);
    LOGMINE_ASSIGN_OR_RETURN(l3,
                             l3_miner.Mine(store, batch.begin, batch.end));
  }

  EpochState epoch;
  epoch.begin = batch.begin;
  epoch.logs_considered = static_cast<int64_t>(store.size());
  epoch.logs_scanned = l3.logs_scanned;
  epoch.logs_stopped = l3.logs_stopped;
  // L1: one slot, so every listed pair has support 1; keep the
  // positivity bit under ids ordered by *name* — the key the window
  // aggregation groups by.
  epoch.l1_pairs.reserve(l1.pairs.size());
  for (const core::L1PairResult& pr : l1.pairs) {
    if (pr.slots_supported != 1) continue;
    std::string_view name_a = store.source_name(pr.a);
    std::string_view name_b = store.source_name(pr.b);
    if (name_b < name_a) std::swap(name_a, name_b);
    EpochPair pair;
    pair.a = Intern(name_a, &source_names_, &source_index_);
    pair.b = Intern(name_b, &source_names_, &source_index_);
    pair.positive = pr.slots_positive > 0;
    epoch.l1_pairs.push_back(pair);
  }
  // L2: the compact columns session rebuild needs, in the store's time
  // order (ties broken by insertion order, same as a batch mine sees).
  for (uint32_t idx : store.TimeOrder()) {
    const LogStore::UserId user = store.user_id(idx);
    if (user == LogStore::kNoUser) continue;
    ContextLog log;
    log.ts = store.client_ts(idx);
    log.source =
        Intern(store.source_name(store.source_id(idx)), &source_names_,
               &source_index_);
    log.user = Intern(store.user_name(user), &user_names_, &user_index_);
    epoch.context.push_back(log);
  }
  // L3: additive citation counters.
  epoch.citations.reserve(l3.citations.size());
  for (const core::L3Citation& citation : l3.citations) {
    EpochCitation counter;
    counter.app = Intern(store.source_name(citation.app), &source_names_,
                         &source_index_);
    counter.entry = citation.entry;
    counter.count = citation.count;
    epoch.citations.push_back(counter);
  }

  epochs_.push_back(std::move(epoch));
  ++epochs_ingested_;
  const TimeMs keep_from = window_begin();
  while (!epochs_.empty() && epochs_.front().begin < keep_from) {
    epochs_.pop_front();
    ++epochs_aged_out_;
  }
  return Status::OK();
}

Result<WindowModelSet> SlidingWindowMiner::MineWindow(
    const RunOptions& options) const {
  if (epochs_.empty()) {
    return Status::FailedPrecondition("no epochs ingested yet");
  }
  const auto deadline = StopDeadline(options);
  WindowModelSet out;
  out.window_begin = window_begin();
  out.window_end = window_end();
  out.slots_total = config_.window_epochs;

  // --- L1: per-slot outcomes are additive; re-apply the support and
  // ratio thresholds over the whole window, exactly as the batch miner
  // does over its slot grid (missing epochs are slots where no pair has
  // support — they count toward slots_total and nothing else).
  std::map<core::NamePair, std::pair<int, int>> l1_acc;
  for (const EpochState& epoch : epochs_) {
    for (const EpochPair& pair : epoch.l1_pairs) {
      auto& [supported, positive] = l1_acc[core::NamePair(
          source_names_[pair.a], source_names_[pair.b])];
      ++supported;
      if (pair.positive) ++positive;
    }
  }
  const double min_support =
      config_.l1.th_s * static_cast<double>(out.slots_total);
  for (const auto& [names, counts] : l1_acc) {
    WindowPairStat stat;
    stat.names = names;
    stat.slots_supported = counts.first;
    const bool reaches =
        static_cast<double>(stat.slots_supported) >= min_support;
    stat.slots_positive = reaches ? counts.second : 0;
    stat.positive_ratio =
        stat.slots_supported == 0
            ? 0.0
            : static_cast<double>(stat.slots_positive) /
                  static_cast<double>(stat.slots_supported);
    stat.dependent = reaches && stat.positive_ratio >= config_.l1.th_pr;
    if (stat.dependent) out.l1.Insert(stat.names);
    out.l1_pairs.push_back(std::move(stat));
  }

  // --- L2: sessions straddle epoch boundaries, so rebuild them over
  // the concatenated context columns (epoch time ranges are disjoint
  // and stored in order, so the concatenation is the window's time
  // order), replicating SessionBuilder::Build, then score with the
  // store-free miner core.
  std::vector<core::Session> sessions;
  std::map<uint32_t, core::Session> open;
  core::SessionBuildStats stats;
  auto finalize = [&](core::Session&& session) {
    if (session.entries.size() >= config_.l2.session.min_logs) {
      stats.logs_assigned += static_cast<int64_t>(session.entries.size());
      sessions.push_back(std::move(session));
    }
  };
  for (const EpochState& epoch : epochs_) {
    stats.logs_considered += epoch.logs_considered;
    for (const ContextLog& log : epoch.context) {
      if ((stats.logs_with_context & 1023) == 0) {
        LOGMINE_RETURN_IF_ERROR(
            CheckStop(options.cancel, deadline, "window session rebuild"));
      }
      ++stats.logs_with_context;
      auto it = open.find(log.user);
      if (it != open.end() &&
          log.ts - it->second.entries.back().ts > config_.l2.session.max_gap) {
        finalize(std::move(it->second));
        open.erase(it);
        it = open.end();
      }
      if (it == open.end()) {
        core::Session fresh;
        fresh.user = log.user;
        it = open.emplace(log.user, std::move(fresh)).first;
      }
      it->second.entries.push_back(
          core::SessionLogEntry{log.ts, log.source, 0});
    }
  }
  for (auto& [user, session] : open) {
    finalize(std::move(session));
  }
  stats.num_sessions = sessions.size();
  stats.assigned_fraction =
      stats.logs_considered == 0
          ? 0.0
          : static_cast<double>(stats.logs_assigned) /
                static_cast<double>(stats.logs_considered);
  core::L2CooccurrenceMiner l2_miner(config_.l2);
  LOGMINE_ASSIGN_OR_RETURN(
      const core::L2Result l2,
      l2_miner.MineSessions(source_names_.size(), sessions,
                            RemainingOptions(options, deadline)));
  out.session_stats = stats;
  out.num_bigrams = l2.num_bigrams;
  out.l2_scores.reserve(l2.scored.size());
  for (const core::L2PairScore& score : l2.scored) {
    WindowL2Score named;
    named.a = source_names_[score.a];
    named.b = source_names_[score.b];
    named.o11 = score.table.o11;
    named.score = score.score;
    named.p_value = score.p_value;
    named.dependent = score.dependent;
    if (named.dependent) {
      out.l2.Insert(core::MakeUnorderedPair(named.a, named.b));
    }
    out.l2_scores.push_back(std::move(named));
  }
  std::sort(out.l2_scores.begin(), out.l2_scores.end(),
            [](const WindowL2Score& x, const WindowL2Score& y) {
              return std::tie(x.a, x.b) < std::tie(y.a, y.b);
            });

  // --- L3: citation counters are additive; re-apply min_citations over
  // the window totals.
  std::map<std::pair<std::string, std::string>, int64_t> l3_acc;
  for (const EpochState& epoch : epochs_) {
    out.logs_scanned += epoch.logs_scanned;
    out.logs_stopped += epoch.logs_stopped;
    for (const EpochCitation& citation : epoch.citations) {
      l3_acc[{source_names_[citation.app],
              config_.vocabulary.entries[citation.entry].id}] +=
          citation.count;
    }
  }
  for (const auto& [key, count] : l3_acc) {
    WindowCitation citation;
    citation.app = key.first;
    citation.entry_id = key.second;
    citation.count = count;
    citation.dependent = count >= config_.l3.min_citations;
    if (citation.dependent) {
      out.l3.Insert(core::NamePair(citation.app, citation.entry_id));
    }
    out.citations.push_back(std::move(citation));
  }

  out.combined = out.l1.Union(out.l2);
  return out;
}

void SlidingWindowMiner::EncodeState(SnapshotWriter* w) const {
  w->PutU64(fingerprint_);
  w->PutI64(epochs_ingested_);
  w->PutI64(epochs_aged_out_);
  w->PutU64(source_names_.size());
  for (const std::string& name : source_names_) w->PutString(name);
  w->PutU64(user_names_.size());
  for (const std::string& name : user_names_) w->PutString(name);
  w->PutU64(epochs_.size());
  for (const EpochState& epoch : epochs_) {
    w->PutI64(epoch.begin);
    w->PutI64(epoch.logs_considered);
    w->PutI64(epoch.logs_scanned);
    w->PutI64(epoch.logs_stopped);
    w->PutU64(epoch.l1_pairs.size());
    for (const EpochPair& pair : epoch.l1_pairs) {
      w->PutU32(pair.a);
      w->PutU32(pair.b);
      w->PutBool(pair.positive);
    }
    w->PutU64(epoch.context.size());
    for (const ContextLog& log : epoch.context) {
      w->PutI64(log.ts);
      w->PutU32(log.source);
      w->PutU32(log.user);
    }
    w->PutU64(epoch.citations.size());
    for (const EpochCitation& citation : epoch.citations) {
      w->PutU32(citation.app);
      w->PutU64(citation.entry);
      w->PutI64(citation.count);
    }
  }
}

Result<SlidingWindowMiner> SlidingWindowMiner::DecodeState(
    const SlidingWindowConfig& config, SectionCursor* c) {
  LOGMINE_ASSIGN_OR_RETURN(SlidingWindowMiner miner, Create(config));
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t fingerprint, c->ReadU64());
  if (fingerprint != miner.fingerprint_) {
    return Status::FailedPrecondition(
        "persisted streaming state was produced under a different config "
        "(fingerprint mismatch)");
  }
  LOGMINE_ASSIGN_OR_RETURN(miner.epochs_ingested_, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(miner.epochs_aged_out_, c->ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_sources, c->ReadU64());
  for (uint64_t i = 0; i < num_sources; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string name, c->ReadString());
    miner.Intern(name, &miner.source_names_, &miner.source_index_);
  }
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_users, c->ReadU64());
  for (uint64_t i = 0; i < num_users; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string name, c->ReadString());
    miner.Intern(name, &miner.user_names_, &miner.user_index_);
  }
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_epochs, c->ReadU64());
  for (uint64_t e = 0; e < num_epochs; ++e) {
    EpochState epoch;
    LOGMINE_ASSIGN_OR_RETURN(epoch.begin, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(epoch.logs_considered, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(epoch.logs_scanned, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(epoch.logs_stopped, c->ReadI64());
    LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_pairs, c->ReadU64());
    epoch.l1_pairs.reserve(num_pairs);
    for (uint64_t i = 0; i < num_pairs; ++i) {
      EpochPair pair;
      LOGMINE_ASSIGN_OR_RETURN(pair.a, c->ReadU32());
      LOGMINE_ASSIGN_OR_RETURN(pair.b, c->ReadU32());
      LOGMINE_ASSIGN_OR_RETURN(pair.positive, c->ReadBool());
      if (pair.a >= miner.source_names_.size() ||
          pair.b >= miner.source_names_.size()) {
        return Status::ParseError("epoch pair source id out of range");
      }
      epoch.l1_pairs.push_back(pair);
    }
    LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_context, c->ReadU64());
    epoch.context.reserve(num_context);
    for (uint64_t i = 0; i < num_context; ++i) {
      ContextLog log;
      LOGMINE_ASSIGN_OR_RETURN(log.ts, c->ReadI64());
      LOGMINE_ASSIGN_OR_RETURN(log.source, c->ReadU32());
      LOGMINE_ASSIGN_OR_RETURN(log.user, c->ReadU32());
      if (log.source >= miner.source_names_.size() ||
          log.user >= miner.user_names_.size()) {
        return Status::ParseError("context log id out of range");
      }
      epoch.context.push_back(log);
    }
    LOGMINE_ASSIGN_OR_RETURN(const uint64_t num_citations, c->ReadU64());
    epoch.citations.reserve(num_citations);
    for (uint64_t i = 0; i < num_citations; ++i) {
      EpochCitation citation;
      LOGMINE_ASSIGN_OR_RETURN(citation.app, c->ReadU32());
      LOGMINE_ASSIGN_OR_RETURN(citation.entry, c->ReadU64());
      LOGMINE_ASSIGN_OR_RETURN(citation.count, c->ReadI64());
      if (citation.app >= miner.source_names_.size() ||
          citation.entry >= config.vocabulary.entries.size()) {
        return Status::ParseError("citation id out of range");
      }
      epoch.citations.push_back(citation);
    }
    miner.epochs_.push_back(std::move(epoch));
  }
  return miner;
}

}  // namespace logmine::serve
