#ifndef LOGMINE_SERVE_MODEL_PUBLISHER_H_
#define LOGMINE_SERVE_MODEL_PUBLISHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/dependency.h"
#include "core/impact_analysis.h"
#include "serve/sliding_window.h"
#include "util/result.h"
#include "util/time_util.h"

namespace logmine::serve {

/// One immutable published model: everything a query needs, frozen at
/// publish time. Readers hold a shared_ptr to a generation and never
/// see it change; the service swaps in the next generation atomically.
struct ModelGeneration {
  /// 1-based publish counter, monotonic across crash recoveries.
  int64_t number = 0;
  TimeMs window_begin = 0;
  TimeMs window_end = 0;
  /// Lifetime epochs ingested when this generation was mined.
  int64_t epochs_ingested = 0;
  /// Fingerprint of the producing config (SlidingWindowMiner::
  /// Fingerprint); queries against a service restarted under a
  /// different config can never silently mix generations.
  uint64_t config_fingerprint = 0;
  /// The window's full evidence + models.
  WindowModelSet models;
  /// The hysteresis-confirmed model (ModelTracker::ActiveModel after
  /// observing this window) — what alerts and queries should trust.
  core::DependencyModel tracker_active;
  /// Query substrate, prebuilt so queries are pure lookups.
  core::DependencyGraph graph;
  /// CRC-32 of SerializeGeneration(*this) at publish time. A reader
  /// can re-derive it to prove the generation it holds is whole — the
  /// torn-model check of the chaos suite.
  uint32_t self_crc = 0;
};

/// Canonical byte encoding of a generation (everything except `graph`,
/// which is derived, and `self_crc`, which is derived *from* these
/// bytes). Two runs that produce byte-equal generations are
/// indistinguishable — the crash-recovery identity the serve tests pin.
std::string SerializeGeneration(const ModelGeneration& generation);

/// Inverse of SerializeGeneration: rebuilds the generation, re-derives
/// `graph` from the models and `entry_owner` (see BuildQueryGraph) and
/// recomputes `self_crc`. ParseError on malformed bytes.
Result<ModelGeneration> ParseGeneration(
    const std::string& bytes,
    const std::map<std::string, std::string>& entry_owner);

/// The directed query graph of a generation: when `entry_owner` maps
/// vocabulary entries to providing applications, L3's (app, entry)
/// pairs become app -> owner edges and the tracker-confirmed app-app
/// pairs are added in both directions (L1/L2 are undirected); with no
/// owner map, only the undirected app-app edges remain.
core::DependencyGraph BuildQueryGraph(
    const WindowModelSet& models, const core::DependencyModel& tracker_active,
    const std::map<std::string, std::string>& entry_owner);

/// Atomic generation swap: writers publish a complete immutable
/// generation; concurrent readers always get either the previous or
/// the next one, never a mix. The lock covers only the pointer swap —
/// readers keep the generation alive via shared ownership and query it
/// lock-free afterwards.
class ModelPublisher {
 public:
  void Publish(std::shared_ptr<const ModelGeneration> generation);
  /// The latest published generation; nullptr before the first publish.
  std::shared_ptr<const ModelGeneration> Current() const;
  int64_t generations_published() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelGeneration> current_;
  int64_t published_ = 0;
};

}  // namespace logmine::serve

#endif  // LOGMINE_SERVE_MODEL_PUBLISHER_H_
