#include "serve/streaming_service.h"

#include <chrono>
#include <utility>

#include "core/serialization.h"
#include "util/snapshot.h"

namespace logmine::serve {
namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStaleServing:
      return "stale-serving";
  }
  return "unknown";
}

StreamingMiningService::StreamingMiningService(ServiceConfig config)
    : config_(std::move(config)),
      obs_(obs::Effective(config_.obs)),
      tracker_(config_.tracker) {
  if (!config_.now_ms) config_.now_ms = SteadyNowMs;
  if (obs_ != nullptr) {
    journal_span_ = obs_->journal().BeginRootSpan("serve");
  }
}

Result<std::unique_ptr<StreamingMiningService>>
StreamingMiningService::Create(ServiceConfig config) {
  if (config.max_queue_batches < 1) {
    return Status::InvalidArgument("max_queue_batches must be >= 1");
  }
  if (config.publish_every_epochs < 1) {
    return Status::InvalidArgument("publish_every_epochs must be >= 1");
  }
  if (config.degraded_after_ms <= 0 ||
      config.stale_after_ms <= config.degraded_after_ms) {
    return Status::InvalidArgument(
        "need 0 < degraded_after_ms < stale_after_ms");
  }
  auto service = std::unique_ptr<StreamingMiningService>(
      new StreamingMiningService(std::move(config)));
  LOGMINE_ASSIGN_OR_RETURN(
      SlidingWindowMiner miner,
      SlidingWindowMiner::Create(service->config_.window));
  service->miner_ =
      std::make_unique<SlidingWindowMiner>(std::move(miner));
  if (!service->config_.state_path.empty()) {
    Result<std::string> bytes =
        ReadFileToString(service->config_.state_path);
    if (bytes.ok()) {
      LOGMINE_RETURN_IF_ERROR(service->Recover(bytes.value()));
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      return bytes.status();
    }
  }
  if (service->obs_ != nullptr) {
    service->obs_->journal().Emit(
        service->journal_span_, "service_start",
        {obs::JournalField::Flag("recovered", service->recovered_),
         obs::JournalField::Num(
             "config_fingerprint",
             static_cast<int64_t>(service->miner_->config_fingerprint()))});
  }
  if (!service->config_.introspection_socket.empty()) {
    if (service->obs_ == nullptr) {
      return Status::InvalidArgument(
          "introspection_socket requires an obs context "
          "(ServiceConfig::obs or an installed global one)");
    }
    // The health handler runs on the server thread against the live
    // service; the server is reset first in the destructor, so the
    // callback can never outlive its target.
    StreamingMiningService* raw = service.get();
    obs::IntrospectionHandlers handlers =
        obs::MakeObsHandlers(service->obs_, [raw] {
          const HealthReport report = raw->Health();
          std::string line(HealthStateName(report.state));
          line += " generation=" + std::to_string(report.generation);
          line += " ms_since_publish=" +
                  std::to_string(report.ms_since_publish);
          line += " queue_depth=" + std::to_string(report.queue_depth);
          line += " shed=" + std::to_string(report.shed_total);
          return line;
        });
    LOGMINE_ASSIGN_OR_RETURN(
        service->introspection_,
        obs::IntrospectionServer::Start(service->config_.introspection_socket,
                                        std::move(handlers)));
  }
  return service;
}

StreamingMiningService::~StreamingMiningService() {
  // The introspection server's thread calls Health() on this service;
  // join it before any state it reads starts dying.
  introspection_.reset();
  Stop();
}

int64_t StreamingMiningService::NowMs() const { return config_.now_ms(); }

sim::ServiceFault StreamingMiningService::FaultOnEpoch(int64_t index,
                                                       int attempts) const {
  return config_.faults == nullptr
             ? sim::ServiceFault::kNone
             : config_.faults->OnEpoch(index, attempts);
}

SubmitResult StreamingMiningService::SubmitBatch(EpochBatch batch) {
  SubmitResult result;
  std::lock_guard<std::mutex> lock(queue_mu_);
  const int64_t index = submit_index_++;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.batches_submitted;
  }
  obs::Count(obs_, obs::Metric::kServeBatchesSubmitted);
  // A batch at or before an already-accepted epoch means the upstream
  // clock ran backwards (or replayed) — injectable as chaos, too.
  // submit_watermark_ >= the ingested watermark always (accepted-at
  // covers ingested, and recovery resets it to the ingested one).
  const bool regressed =
      batch.begin <= submit_watermark_ ||
      FaultOnEpoch(index, 1) == sim::ServiceFault::kClockRegression;
  if (regressed) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.clock_regressions;
    }
    obs::Count(obs_, obs::Metric::kServeClockRegressions);
    if (obs_ != nullptr) {
      obs_->journal().Emit(
          journal_span_ + "/e" + std::to_string(index), "clock_regression",
          {obs::JournalField::Num("begin_ms", batch.begin),
           obs::JournalField::Num("watermark_ms", submit_watermark_)});
    }
    result.outcome = SubmitOutcome::kRejectedClockRegression;
    result.queue_depth = queue_.size();
    return result;
  }
  submit_watermark_ = batch.begin;
  if (queue_.size() >= config_.max_queue_batches) {
    const int64_t shed_index = queue_.front().index;
    queue_.pop_front();
    obs::Count(obs_, obs::Metric::kServeQueueDepth, -1);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.batches_shed;
    }
    obs::Count(obs_, obs::Metric::kServeBatchesShed);
    if (obs_ != nullptr) {
      obs_->journal().Emit(
          journal_span_ + "/e" + std::to_string(shed_index), "batch_shed",
          {obs::JournalField::Num("queue_depth",
                                  static_cast<int64_t>(queue_.size()))});
    }
    result.outcome = SubmitOutcome::kAcceptedShedOldest;
  }
  QueuedBatch queued;
  queued.index = index;
  queued.batch = std::move(batch);
  queue_.push_back(std::move(queued));
  result.queue_depth = queue_.size();
  obs::Count(obs_, obs::Metric::kServeQueueDepth, 1);
  queue_cv_.notify_one();
  return result;
}

Result<StepOutcome> StreamingMiningService::Step() {
  std::lock_guard<std::mutex> step_lock(step_mu_);
  if (dead_) {
    return Status::FailedPrecondition(
        "service crashed; rebuild via Create to recover");
  }
  CheckHealthRegression();
  QueuedBatch work;
  sim::ServiceFault fault = sim::ServiceFault::kNone;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.empty()) return StepOutcome::kIdle;
    QueuedBatch& front = queue_.front();
    ++front.attempts;
    fault = FaultOnEpoch(front.index, front.attempts);
    if (fault == sim::ServiceFault::kStallEpoch) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.epochs_stalled;
      }
      if (obs_ != nullptr) {
        obs_->journal().Emit(
            journal_span_ + "/e" + std::to_string(front.index),
            "epoch_stalled",
            {obs::JournalField::Num("attempts", front.attempts)});
      }
      return StepOutcome::kStalled;
    }
    work = std::move(front);
    queue_.pop_front();
    obs::Count(obs_, obs::Metric::kServeQueueDepth, -1);
  }
  const std::string epoch_span =
      journal_span_ + "/e" + std::to_string(work.index);

  auto quarantine = [&]() -> StepOutcome {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.batches_poisoned;
    }
    obs::Count(obs_, obs::Metric::kServeBatchesPoisoned);
    if (obs_ != nullptr) {
      obs_->journal().Emit(
          epoch_span, "batch_quarantined",
          {obs::JournalField::Num("attempts", work.attempts)});
      (void)obs::CapturePostmortem(config_.postmortem, obs_,
                                   "batch_quarantined", epoch_span,
                                   miner_->config_fingerprint());
    }
    return StepOutcome::kPoisoned;
  };
  if (fault == sim::ServiceFault::kPoisonBatch) return quarantine();

  const int64_t aged_before = miner_->epochs_aged_out();
  {
    LOGMINE_SPAN(obs_, "serve/ingest", obs::Metric::kServeIngestNs);
    Status ingested = miner_->IngestEpoch(work.batch);
    // A malformed batch is quarantined like an injected poison batch:
    // count it, drop it, keep serving the current generation.
    if (!ingested.ok()) return quarantine();
  }
  ingest_watermark_ = work.batch.begin;
  ++epochs_since_publish_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.epochs_ingested;
  }
  obs::Count(obs_, obs::Metric::kServeEpochsIngested);
  const int64_t aged = miner_->epochs_aged_out() - aged_before;
  if (aged > 0) obs::Count(obs_, obs::Metric::kServeEpochsAgedOut, aged);
  if (obs_ != nullptr) {
    obs_->journal().Emit(
        epoch_span, "epoch_ingested",
        {obs::JournalField::Num("begin_ms", work.batch.begin),
         obs::JournalField::Num("attempts", work.attempts),
         obs::JournalField::Num("aged_out", aged)});
  }

  const bool publish_due =
      epochs_since_publish_ >= config_.publish_every_epochs;
  std::shared_ptr<ModelGeneration> generation;
  if (publish_due) {
    LOGMINE_SPAN(obs_, "serve/publish", obs::Metric::kServePublishNs);
    LOGMINE_ASSIGN_OR_RETURN(WindowModelSet models, miner_->MineWindow());
    tracker_.Observe(models.combined);
    generation = std::make_shared<ModelGeneration>();
    generation->number = next_generation_number_;
    generation->window_begin = models.window_begin;
    generation->window_end = models.window_end;
    generation->epochs_ingested = miner_->epochs_ingested();
    generation->config_fingerprint = miner_->config_fingerprint();
    generation->models = std::move(models);
    generation->tracker_active = tracker_.ActiveModel();
    generation->graph =
        BuildQueryGraph(generation->models, generation->tracker_active,
                        config_.entry_owner);
    generation_bytes_ = SerializeGeneration(*generation);
    generation->self_crc = Crc32(generation_bytes_);
    ++next_generation_number_;
    epochs_since_publish_ = 0;
  }

  // Persist-then-swap: the snapshot hits disk (atomically) before any
  // reader can see the new generation, so a crash at any instant leaves
  // a state file from which recovery reproduces exactly what readers
  // were able to observe.
  LOGMINE_RETURN_IF_ERROR(Persist());
  if (fault == sim::ServiceFault::kCrashMidPublish) {
    dead_ = true;
    if (obs_ != nullptr) {
      obs_->journal().Emit(epoch_span, "crash_mid_publish");
      (void)obs::CapturePostmortem(config_.postmortem, obs_,
                                   "crash_mid_publish", epoch_span,
                                   miner_->config_fingerprint());
    }
    return sim::ServiceFaultInjector::KilledStatus(work.index);
  }
  if (generation != nullptr) {
    publisher_.Publish(generation);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.generations_published;
      last_publish_ms_ = NowMs();
    }
    obs::Count(obs_, obs::Metric::kServeGenerationsPublished);
    if (obs_ != nullptr) {
      obs_->journal().Emit(
          epoch_span, "generation_published",
          {obs::JournalField::Num("generation", generation->number),
           obs::JournalField::Num("epochs_ingested",
                                  generation->epochs_ingested)});
    }
    return StepOutcome::kPublished;
  }
  return StepOutcome::kIngested;
}

Result<int> StreamingMiningService::Drain() {
  int processed = 0;
  for (;;) {
    LOGMINE_ASSIGN_OR_RETURN(const StepOutcome outcome, Step());
    if (outcome == StepOutcome::kIdle || outcome == StepOutcome::kStalled) {
      return processed;
    }
    ++processed;
  }
}

void StreamingMiningService::Start() {
  if (worker_running_) return;
  worker_stop_.store(false);
  worker_running_ = true;
  worker_ = std::thread([this]() {
    while (!worker_stop_.load()) {
      Result<StepOutcome> outcome = Step();
      if (!outcome.ok()) return;  // crashed or dead: the loop is over
      if (outcome.value() == StepOutcome::kIdle ||
          outcome.value() == StepOutcome::kStalled) {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait_for(lock, std::chrono::milliseconds(5));
      }
    }
  });
}

void StreamingMiningService::Stop() {
  if (!worker_running_) return;
  worker_stop_.store(true);
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  worker_running_ = false;
}

std::shared_ptr<const ModelGeneration> StreamingMiningService::CurrentModel()
    const {
  return publisher_.Current();
}

HealthState StreamingMiningService::ObserveHealth(int64_t now) const {
  HealthState state = HealthState::kStarting;
  HealthState previous = HealthState::kStarting;
  bool transitioned = false;
  int64_t age = -1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (last_publish_ms_ >= 0) {
      age = now - last_publish_ms_;
      state = age < config_.degraded_after_ms ? HealthState::kHealthy
              : age < config_.stale_after_ms  ? HealthState::kDegraded
                                              : HealthState::kStaleServing;
    }
    if (state != last_health_) {
      previous = last_health_;
      last_health_ = state;
      ++stats_.health_transitions;
      transitioned = true;
    }
  }
  // Journal the boundary outside stats_mu_: the journal flushes to disk
  // per line, and the query path shares this lock.
  if (transitioned) {
    obs::Count(obs_, obs::Metric::kServeHealthTransitions);
    if (obs_ != nullptr) {
      obs_->journal().Emit(
          journal_span_, "health_transition",
          {obs::JournalField::Str("from", HealthStateName(previous)),
           obs::JournalField::Str("to", HealthStateName(state)),
           obs::JournalField::Num("ms_since_publish", age)});
    }
  }
  return state;
}

void StreamingMiningService::CheckHealthRegression() {
  const HealthState health = ObserveHealth(NowMs());
  // A slide down the ladder from a published state (healthy -> degraded,
  // degraded -> stale-serving, ...) is the "model stopped refreshing"
  // postmortem trigger; climbing back up just resets the baseline.
  if (step_health_ != HealthState::kStarting && health > step_health_ &&
      obs_ != nullptr) {
    (void)obs::CapturePostmortem(config_.postmortem, obs_,
                                 "health_regression", journal_span_,
                                 miner_->config_fingerprint());
  }
  step_health_ = health;
}

HealthReport StreamingMiningService::Health() const {
  HealthReport report;
  report.state = ObserveHealth(NowMs());
  const std::shared_ptr<const ModelGeneration> current = publisher_.Current();
  report.generation = current == nullptr ? 0 : current->number;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    report.ms_since_publish =
        last_publish_ms_ < 0 ? -1 : NowMs() - last_publish_ms_;
    report.shed_total = stats_.batches_shed;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    report.queue_depth = queue_.size();
  }
  return report;
}

ServiceStats StreamingMiningService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t StreamingMiningService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

uint64_t StreamingMiningService::config_fingerprint() const {
  return miner_->config_fingerprint();
}

Result<QueryResult> StreamingMiningService::Query(
    const std::string& component, bool transitive,
    const QueryOptions& options) {
  LOGMINE_SPAN(obs_, "serve/query", obs::Metric::kServeQueryNs);
  obs::Count(obs_, obs::Metric::kServeQueries);
  int64_t query_index;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    query_index = stats_.queries_served++;
  }
  RunOptions run;
  run.cancel = options.cancel;
  const int64_t deadline_ms = options.deadline_ms > 0
                                  ? options.deadline_ms
                                  : config_.default_query_deadline_ms;
  if (deadline_ms > 0) run.deadline = std::chrono::milliseconds(deadline_ms);
  const auto deadline = StopDeadline(run);

  auto fail = [&](Status status) -> Status {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.query_deadline_exceeded;
      obs::Count(obs_, obs::Metric::kServeQueryDeadlineExceeded);
    }
    return status;
  };

  // Slow-consumer chaos: wait out the injected latency cooperatively,
  // so a per-query deadline or cancellation trips exactly as it would
  // against a genuinely slow downstream.
  if (config_.faults != nullptr &&
      config_.faults->OnQuery(query_index) ==
          sim::ServiceFault::kSlowConsumer) {
    const sim::ServiceFaultSpec* spec =
        config_.faults->SpecFor(query_index, sim::ServiceFault::kSlowConsumer);
    const auto slow_until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(spec == nullptr ? 0 : spec->slow_ms);
    while (std::chrono::steady_clock::now() < slow_until) {
      Status stop = CheckStop(options.cancel, deadline, "query");
      if (!stop.ok()) return fail(stop);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const std::shared_ptr<const ModelGeneration> generation =
      publisher_.Current();
  if (generation == nullptr) {
    return Status::FailedPrecondition("no model generation published yet");
  }
  QueryResult result;
  result.generation = generation->number;
  result.health = ObserveHealth(NowMs());
  result.components = transitive ? generation->graph.ImpactSet(component)
                                 : generation->graph.DependentsOf(component);
  Status stop = CheckStop(options.cancel, deadline, "query");
  if (!stop.ok()) return fail(stop);
  return result;
}

Result<QueryResult> StreamingMiningService::WhatDependsOn(
    const std::string& component, const QueryOptions& options) {
  return Query(component, /*transitive=*/false, options);
}

Result<QueryResult> StreamingMiningService::ImpactOf(
    const std::string& component, const QueryOptions& options) {
  return Query(component, /*transitive=*/true, options);
}

Status StreamingMiningService::Persist() {
  if (config_.state_path.empty()) return Status::OK();
  SnapshotWriter w;
  w.BeginSection("service");
  w.PutU64(miner_->config_fingerprint());
  w.PutI64(ingest_watermark_);
  w.PutI64(epochs_since_publish_);
  w.PutI64(next_generation_number_);
  w.EndSection();
  w.BeginSection("window");
  miner_->EncodeState(&w);
  w.EndSection();
  w.BeginSection("tracker");
  core::EncodeModelTracker(tracker_, &w);
  w.EndSection();
  if (!generation_bytes_.empty()) {
    w.BeginSection("generation");
    w.PutString(generation_bytes_);
    w.EndSection();
  }
  LOGMINE_RETURN_IF_ERROR(
      WriteSnapshotFile(config_.state_path, std::move(w).Finish()));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshots_written;
  }
  obs::Count(obs_, obs::Metric::kServeStateSnapshotsWritten);
  return Status::OK();
}

Status StreamingMiningService::Recover(const std::string& bytes) {
  LOGMINE_ASSIGN_OR_RETURN(const SnapshotReader reader,
                           SnapshotReader::Parse(bytes));
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor service, reader.Section("service"));
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t fingerprint, service.ReadU64());
  if (fingerprint != miner_->config_fingerprint()) {
    return Status::FailedPrecondition(
        "refusing recovery: state file was written under a different "
        "config (fingerprint mismatch)");
  }
  LOGMINE_ASSIGN_OR_RETURN(ingest_watermark_, service.ReadI64());
  LOGMINE_ASSIGN_OR_RETURN(const int64_t since_publish, service.ReadI64());
  epochs_since_publish_ = static_cast<int>(since_publish);
  LOGMINE_ASSIGN_OR_RETURN(next_generation_number_, service.ReadI64());
  LOGMINE_RETURN_IF_ERROR(service.ExpectEnd());

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor window, reader.Section("window"));
  LOGMINE_ASSIGN_OR_RETURN(
      SlidingWindowMiner miner,
      SlidingWindowMiner::DecodeState(config_.window, &window));
  LOGMINE_RETURN_IF_ERROR(window.ExpectEnd());
  *miner_ = std::move(miner);

  LOGMINE_ASSIGN_OR_RETURN(SectionCursor tracker, reader.Section("tracker"));
  LOGMINE_ASSIGN_OR_RETURN(core::ModelTracker restored,
                           core::DecodeModelTracker(&tracker));
  LOGMINE_RETURN_IF_ERROR(tracker.ExpectEnd());
  tracker_ = std::move(restored);

  if (reader.HasSection("generation")) {
    LOGMINE_ASSIGN_OR_RETURN(SectionCursor cursor,
                             reader.Section("generation"));
    LOGMINE_ASSIGN_OR_RETURN(generation_bytes_, cursor.ReadString());
    LOGMINE_RETURN_IF_ERROR(cursor.ExpectEnd());
    LOGMINE_ASSIGN_OR_RETURN(
        ModelGeneration generation,
        ParseGeneration(generation_bytes_, config_.entry_owner));
    if (generation.config_fingerprint != miner_->config_fingerprint()) {
      return Status::FailedPrecondition(
          "refusing recovery: persisted generation carries a different "
          "config fingerprint");
    }
    publisher_.Publish(
        std::make_shared<ModelGeneration>(std::move(generation)));
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Recovery is a fresh publish from the reader's perspective: the
    // staleness clock restarts now, and the degradation ladder reflects
    // how long the *recovered* service goes without a newer model.
    last_publish_ms_ = NowMs();
  }
  // Unprocessed batches died with the old process; their epochs are
  // after the ingested watermark, so the feeder may resubmit them.
  submit_watermark_ = ingest_watermark_;
  recovered_ = true;
  obs::Count(obs_, obs::Metric::kServeRecoveries);
  return Status::OK();
}

}  // namespace logmine::serve
