#ifndef LOGMINE_STATS_WILCOXON_H_
#define LOGMINE_STATS_WILCOXON_H_

#include <vector>

#include "util/result.h"

namespace logmine::stats {

/// Alternative hypothesis for the signed-rank test of zero median.
enum class Alternative {
  kTwoSided,
  kLess,     ///< median of the differences < 0
  kGreater,  ///< median of the differences > 0
};

/// Result of a Wilcoxon signed-rank test.
struct WilcoxonResult {
  double w_plus = 0;    ///< sum of ranks of the positive differences
  double p_value = 1;
  int n_used = 0;       ///< sample size after dropping exact zeros
  bool exact = false;   ///< exact permutation distribution was used
};

/// Wilcoxon signed-rank test for a zero median of `diffs`.
///
/// Zeros are dropped (Wilcoxon's convention); ties receive midranks. The
/// exact permutation distribution is used when n <= 25 and there are no
/// ties; otherwise a normal approximation with tie correction applies.
///
/// For the paper's table 2: seven same-signed differences give the exact
/// two-sided p-value 2 * (1/2)^7 = 0.015625.
logmine::Result<WilcoxonResult> WilcoxonSignedRank(
    const std::vector<double>& diffs, Alternative alternative);

/// Convenience: paired test on x - y.
logmine::Result<WilcoxonResult> WilcoxonSignedRankPaired(
    const std::vector<double>& xs, const std::vector<double>& ys,
    Alternative alternative);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_WILCOXON_H_
